// Package tuplespace is the public surface of the Linda tuple space
// ([Gel85]), the paper's §6.3 baseline of publish/subscribe: Out / Rd /
// In over ordered value sequences matched by templates, plus the
// JavaSpaces-style Notify callback. A per-domain space is reachable
// from the unified facade via Domain.TupleSpace.
package tuplespace

import internal "govents/internal/tuplespace"

// Space is a tuple space; create standalone with New or per domain via
// Domain.TupleSpace.
type Space = internal.Space

// Tuple is an ordered sequence of values.
type Tuple = internal.Tuple

// Template is an ordered sequence of match fields.
type Template = internal.Template

// Field is one template position: an actual (Val), a formal (Type) or
// a wildcard (Any).
type Field = internal.Field

// New returns an empty tuple space.
func New() *Space { return internal.New() }

// Val builds an actual: the field matches only an equal value.
func Val(v any) Field { return internal.Val(v) }

// Type builds a formal: the field matches any value of exactly type T.
func Type[T any]() Field { return internal.Type[T]() }

// Any builds a wildcard matching any value.
func Any() Field { return internal.Any() }
