package govents

import (
	"log/slog"
	"time"

	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/durable"
	"govents/internal/multicast"
	"govents/internal/obvent"
	"govents/internal/store"
	"govents/internal/telemetry"
)

// OverloadPolicy selects what a bounded dispatch lane does once its
// in-memory queue is full (see WithLaneQueueBound, WithOverloadPolicy).
type OverloadPolicy = core.OverloadPolicy

const (
	// OverloadBlock applies backpressure: the enqueue blocks until the
	// lane drains a slot. No event is lost; a saturated lane slows the
	// path feeding it (the wire reader or the local publish loop)
	// instead of growing without bound. This is the default.
	OverloadBlock = core.OverloadBlock
	// OverloadDropOldest sheds the oldest queued envelope to admit the
	// newest. Sheds are counted in DispatchStats.Shed and under the
	// telemetry drop reason "overload_shed".
	OverloadDropOldest = core.OverloadDropOldest
	// OverloadSpill overflows to a per-lane durable segment log under
	// the domain's durability directory and drains it back, oldest
	// first, once the lane catches up — latency degrades, delivery does
	// not. Requires WithDurability.
	OverloadSpill = core.OverloadSpill
)

// SyncPolicy selects when the durable event log flushes appended
// records to stable storage (see WithDurabilityTuning).
type SyncPolicy = durable.SyncPolicy

const (
	// SyncAlways fsyncs after every appended record: no acknowledged
	// event is ever lost, at the cost of one disk sync per publish.
	SyncAlways = durable.SyncAlways
	// SyncBatch fsyncs on segment roll and close only, letting the OS
	// batch writes: a crash may lose the tail of the active segment,
	// which certified redelivery then repairs from the publishers.
	SyncBatch = durable.SyncBatch
)

// RetentionPolicy schedules automatic durable-log compaction (see
// DurabilityTuning.Retention). The zero value disables the ticker;
// CompactDurable remains available for manual compaction either way.
type RetentionPolicy struct {
	// Interval is the period of the background retention tick; each
	// tick runs the same snapshot+compact pass as CompactDurable.
	// Ticks are jittered ±10% so a fleet of domains restarted together
	// does not compact in lockstep. Zero disables the ticker.
	Interval time.Duration
	// MaxBytes makes retention size-based: when set, a tick compacts
	// only while the durable logs' on-disk size exceeds MaxBytes.
	// Zero compacts on every tick (purely time-based).
	MaxBytes int64
}

// DurabilityTuning adjusts the durable event log (see WithDurability).
// The zero value selects the defaults: 1 MiB segments, SyncAlways, no
// retention ticker.
type DurabilityTuning struct {
	// SegmentBytes is the size threshold at which the log rolls to a
	// new segment file; compaction reclaims whole sealed segments.
	SegmentBytes int64
	// Sync is the fsync policy for appended records.
	Sync SyncPolicy
	// Retention schedules automatic background compaction. Compaction
	// only ever drops fully-acknowledged sealed segments — events still
	// owed to any durable consumer are retained regardless of policy.
	Retention RetentionPolicy
}

// Placement selects where migratable remote filters are evaluated
// (paper §2.3.2, §3.3.3).
type Placement int

const (
	// AtSubscriber ships every matching-typed obvent to the
	// subscriber's node, which filters locally (the unoptimized
	// baseline).
	AtSubscriber Placement = iota + 1
	// AtPublisher evaluates migrated filters at the publishing node
	// and sends only to nodes with at least one passing subscription,
	// saving bandwidth. Unordered classes prune per message; ordered
	// and gossip classes prune through the interest-aware multicast
	// protocols (see WithOrderedPruning); certified classes address
	// their durable subscribers explicitly.
	AtPublisher
)

// Tuning adjusts the dissemination protocol timers. The zero value
// selects defaults suited to real networks; tests and simulations
// shorten the intervals.
type Tuning struct {
	// RetransmitInterval is the period between retransmissions of
	// unacknowledged messages (reliable, certified and total-order
	// classes).
	RetransmitInterval time.Duration
	// RetransmitLimit bounds retransmission attempts per message for
	// reliable classes; 0 means retry forever.
	RetransmitLimit int
	// GossipPeriod, GossipFanout and GossipRounds tune the gossip
	// protocol used for unreliable classes when WithGossipUnreliable
	// is set.
	GossipPeriod time.Duration
	GossipFanout int
	GossipRounds int
	// GossipRandomEdges is the floor of uniformly random peers each
	// interest-biased gossip round contacts per event in addition to
	// the interested fanout — the anti-entropy edges that keep rumors
	// crossing interest boundaries. It only applies while ordered
	// pruning is on (see WithOrderedPruning). 0 selects the default
	// (1); negative disables the floor.
	GossipRandomEdges int
	// GossipSeed seeds gossip peer selection (0 = fixed default,
	// keeping runs reproducible).
	GossipSeed int64
}

// config collects the Open options.
type config struct {
	transport    Transport
	rmiTransport Transport
	peers        []string
	placement    Placement
	lanes        int
	registry     *obvent.Registry
	adTTL        time.Duration
	tuning       Tuning
	durableID    string
	durDir       string
	durTuning    DurabilityTuning
	certLog      store.Log
	certDedup    store.Set
	gossip       bool
	naive        bool
	pruneOff     bool
	metricsAddr  string
	traceHook    func(TraceEvent)
	traceEvery   int
	logger       *slog.Logger
	teleOff      bool
	laneBound    int
	policy       OverloadPolicy
	stallBudget  time.Duration
	mailbox      int
}

// An Option configures a Domain at Open.
type Option func(*config)

// WithTransport makes the domain distributed: it joins the
// publish/subscribe domain reachable over tr (DACE, paper §4.2)
// instead of the in-process loopback. Ownership of tr transfers to the
// Domain, which closes it on Close. Obtain a transport from ListenTCP
// (real sockets) or govents/netsim (simulated network).
func WithTransport(tr Transport) Option {
	return func(c *config) { c.transport = tr }
}

// WithPeers installs the initial domain membership: the transport
// addresses of every node, including this one. Without it the domain
// starts alone; use Domain.SetPeers for later membership changes.
func WithPeers(peers ...string) Option {
	return func(c *config) { c.peers = append([]string(nil), peers...) }
}

// WithPlacement selects remote-filter placement (default AtPublisher:
// filters migrate to publishing nodes and prune traffic at the source).
func WithPlacement(p Placement) Option {
	return func(c *config) { c.placement = p }
}

// WithDispatchLanes sets the number of parallel dispatch lanes for
// FIFO and unordered traffic. Zero (the default) means GOMAXPROCS.
// Causal, total-order and prioritary obvents always drain through one
// additional serial lane, so their delivery semantics are unaffected;
// FIFO traffic runs parallel per publisher (FIFO only promises
// per-publisher order, which publisher-hashed lanes preserve).
func WithDispatchLanes(n int) Option {
	return func(c *config) { c.lanes = n }
}

// WithLaneQueueBound caps every dispatch lane's in-memory queue at n
// envelopes. A full lane applies the domain's overload policy
// (WithOverloadPolicy) instead of growing without bound. Zero (the
// default) keeps the queues unbounded.
func WithLaneQueueBound(n int) Option {
	return func(c *config) { c.laneBound = n }
}

// WithOverloadPolicy selects what a bounded dispatch lane
// (WithLaneQueueBound) does once full: OverloadBlock (backpressure,
// the default), OverloadDropOldest (shed with counted reason), or
// OverloadSpill (overflow to per-lane durable segment logs under the
// durability directory — requires WithDurability — drained once the
// lane catches up). Without a queue bound the policy is idle.
func WithOverloadPolicy(p OverloadPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithSlowConsumerBudget enables per-subscription slow-consumer
// isolation: a subscription whose handler has been stuck longer than
// stall while deliveries queue behind it is quarantined — its queue
// becomes a bounded mailbox of the given size (<= 0 selects 1024)
// whose overflow is dropped for that subscription only, counted in
// DispatchStats.SlowConsumerDrops and under the telemetry drop reason
// "slow_consumer" (ErrSlowConsumer). The subscription leaves
// quarantine once its handler resumes and the mailbox half-drains.
// Other subscriptions, lane draining and Close are never blocked by a
// quarantined consumer. A zero stall disables isolation (the default).
func WithSlowConsumerBudget(stall time.Duration, mailbox int) Option {
	return func(c *config) { c.stallBudget, c.mailbox = stall, mailbox }
}

// WithRegistry makes the domain use a shared obvent type registry
// (useful when several domains in one process must agree on type
// names). By default each domain owns a fresh registry.
func WithRegistry(reg *obvent.Registry) Option {
	return func(c *config) { c.registry = reg }
}

// WithAdTTL enables ad-stream GC on a distributed domain: the node
// re-advertises its subscription state as a liveness heartbeat several
// times per TTL and drops any peer's routing entries once that peer
// has been silent for the TTL, even without a membership change — so a
// crashed node stops being owed events, certified deliveries and
// routing-table memory. Set the same TTL on every domain member: a
// node without it sends no heartbeats and would be wrongly expired.
func WithAdTTL(d time.Duration) Option {
	return func(c *config) { c.adTTL = d }
}

// WithTuning adjusts the dissemination protocol timers.
func WithTuning(t Tuning) Option {
	return func(c *config) { c.tuning = t }
}

// WithGossipUnreliable routes unreliable classes through the gossip
// protocol instead of plain best-effort fanout (scales to large
// domains under loss at per-node cost independent of group size).
func WithGossipUnreliable() Option {
	return func(c *config) { c.gossip = true }
}

// WithDurableID sets the domain's default durable identity for
// certified subscriptions activated without one (paper §3.4.1).
func WithDurableID(id string) Option {
	return func(c *config) { c.durableID = id }
}

// WithDurability gives the domain a durability directory: certified
// delivery state — the publisher-side outbox and the subscriber-side
// inbox of every certified class — moves to per-class append-only
// segment logs under dir, so it survives crash-restart, not just
// disconnection. A domain reopened on the same directory resumes where
// the crashed incarnation stopped: unacknowledged outbox events are
// retransmitted, and SubscribeDurable replays the events a durable
// subscription missed while the process was down before going live.
//
// The directory belongs to one domain member; reopening it under a new
// transport address orphans the previous incarnation's outbox
// consumers. WithDurability supersedes WithCertifiedStores for the
// certified classes; it requires WithTransport.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithDurabilityTuning adjusts the durable event log's segment size and
// fsync policy. It only has effect together with WithDurability.
func WithDurabilityTuning(t DurabilityTuning) Option {
	return func(c *config) { c.durTuning = t }
}

// WithCertifiedStores installs stable storage for certified delivery:
// log is the publisher-side outbox, dedup the subscriber-side
// delivered-set. Defaults are in-memory; pass the file-backed
// implementations of govents/store to survive crashes.
func WithCertifiedStores(log store.Log, dedup store.Set) Option {
	return func(c *config) { c.certLog, c.certDedup = log, dedup }
}

// WithRMI attaches a remote-method-invocation runtime (paper §5.4) to
// the domain over its own transport endpoint, reachable from
// Domain.RMI — so one process composes publish/subscribe and RMI, e.g.
// obvents carrying rmi.Ref values that handlers invoke synchronously.
// Ownership of tr transfers to the Domain.
func WithRMI(tr Transport) Option {
	return func(c *config) { c.rmiTransport = tr }
}

// WithOrderedPruning toggles interest-aware pruning of the ordered
// (FIFO/Causal/Total) and gossip classes. It defaults to on: data
// frames go only to nodes the routing plane marks interested — for
// total order the sequencer filters after stamping, keeping the global
// sequence gap-free — while the rest receive amortized skip markers,
// so delivery cost scales with interest size instead of group size.
// Pruning fails open (an unevaluable event or unknown node counts as
// interested) and preserves every class's ordering contract; the saved
// traffic shows in Stats as PrunedSends/SkipFrames. Pass false to
// revert to full-group broadcasts with subscriber-side filtering.
func WithOrderedPruning(enabled bool) Option {
	return func(c *config) { c.pruneOff = !enabled }
}

// WithMetricsAddr starts an HTTP metrics endpoint on addr (e.g.
// "127.0.0.1:0") when the domain opens and stops it on Close. The
// endpoint serves /metrics (Prometheus text exposition of the per-stage
// latency histograms, drop counters and lane gauges), /debug/vars
// (expvar) and /debug/pprof (the runtime profiler). The effective
// address, including a kernel-chosen port, is available from
// Domain.MetricsAddr.
func WithMetricsAddr(addr string) Option {
	return func(c *config) { c.metricsAddr = addr }
}

// WithTraceHook installs a per-event trace callback: hook receives one
// TraceEvent per sampled delivered event and one per failure outcome
// (expiry, decode error, handler panic — failures always fire,
// regardless of sampling). every is the delivered-event sampling rate
// (1 = every event, n = one in n; <=0 means 1). The hook runs on hot
// dispatch goroutines: it must be fast and must not call back into the
// Domain.
func WithTraceHook(hook func(TraceEvent), every int) Option {
	return func(c *config) { c.traceHook, c.traceEvery = hook, every }
}

// WithTelemetry toggles per-stage latency measurement (default on).
// Passing false turns the telemetry plane off: Histograms returns empty
// snapshots and the hot paths skip timestamping entirely, one atomic
// load per event. Drop counters and trace hooks stay live either way.
func WithTelemetry(enabled bool) Option {
	return func(c *config) { c.teleOff = !enabled }
}

// WithLogger installs the domain's diagnostics logger, receiving
// anomalies that have no error-return path to the application —
// recovered handler panics, undecodable frames, failed certified
// redeliveries, file-log replay skips. The default discards them.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// WithNaiveDispatch disables the indexed dispatch pipeline in favor of
// the unindexed per-subscription reference path. Delivery semantics
// are identical; this exists as the transparency oracle for tests and
// benchmarks, not for production use.
func WithNaiveDispatch() Option {
	return func(c *config) { c.naive = true }
}

// distributedOnly names the set options that are meaningless without a
// transport, so Open can reject them instead of dropping them silently.
func (c *config) distributedOnly() []string {
	var bad []string
	if len(c.peers) > 0 {
		bad = append(bad, "WithPeers")
	}
	if c.placement != 0 {
		bad = append(bad, "WithPlacement")
	}
	if c.adTTL != 0 {
		bad = append(bad, "WithAdTTL")
	}
	if c.tuning != (Tuning{}) {
		bad = append(bad, "WithTuning")
	}
	if c.gossip {
		bad = append(bad, "WithGossipUnreliable")
	}
	if c.durableID != "" {
		bad = append(bad, "WithDurableID")
	}
	if c.certLog != nil || c.certDedup != nil {
		bad = append(bad, "WithCertifiedStores")
	}
	if c.durDir != "" {
		bad = append(bad, "WithDurability")
	}
	if c.pruneOff {
		bad = append(bad, "WithOrderedPruning")
	}
	return bad
}

// daceConfig renders the options into the substrate configuration.
// tele and log are the domain's telemetry plane and logger, dur the
// opened durability manager (nil without WithDurability) — all built by
// Open and shared with the engine.
func (c *config) daceConfig(tele *telemetry.Plane, log *slog.Logger, dur *durable.Manager) dace.Config {
	placement := dace.AtPublisher
	if c.placement == AtSubscriber {
		placement = dace.AtSubscriber
	}
	return dace.Config{
		Placement:        placement,
		GossipUnreliable: c.gossip,
		CertLog:          c.certLog,
		CertDedup:        c.certDedup,
		Durable:          dur,
		DurableID:        c.durableID,
		AdTTL:            c.adTTL,
		NoOrderedPruning: c.pruneOff,
		Telemetry:        tele,
		Logger:           log,
		Multicast: multicast.Options{
			RetransmitInterval: c.tuning.RetransmitInterval,
			RetransmitLimit:    c.tuning.RetransmitLimit,
			GossipPeriod:       c.tuning.GossipPeriod,
			GossipFanout:       c.tuning.GossipFanout,
			GossipRounds:       c.tuning.GossipRounds,
			GossipRandomEdges:  c.tuning.GossipRandomEdges,
			Seed:               c.tuning.GossipSeed,
		},
	}
}
