// Telemetry-plane integration at the public API: per-stage latency
// histograms populated across two simulated-network nodes, the
// Prometheus/expvar scrape surface, trace-hook outcomes (delivered and
// handler panic), drop-reason counters, and the telemetry-off switch.
package govents_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"govents"
	"govents/netsim"
	"govents/workload"
)

// openTelemetryPair opens a publisher and subscriber domain on one
// simulated network, the subscriber with extra options.
func openTelemetryPair(t *testing.T, subOpts ...govents.Option) (pub, sub *govents.Domain) {
	t.Helper()
	ctx := context.Background()
	net := netsim.New(netsim.Config{MaxLatency: time.Millisecond, Seed: 11})
	t.Cleanup(func() { _ = net.Close() })

	open := func(addr string, extra ...govents.Option) *govents.Domain {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]govents.Option{
			govents.WithTransport(ep),
			govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
		}, extra...)
		d, err := govents.Open(ctx, addr, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close(context.Background()) })
		workload.RegisterTypes(d.Registry())
		return d
	}
	pub, sub = open("pub"), open("sub", subOpts...)
	for _, d := range []*govents.Domain{pub, sub} {
		if err := d.SetPeers("pub", "sub"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pub.RemoteSubscriptionCount() < 0 {
		time.Sleep(time.Millisecond)
	}
	return pub, sub
}

// publishAndAwait publishes n quotes on pub and waits until the counter
// reaches n.
func publishAndAwait(t *testing.T, pub *govents.Domain, n int, count func() int) {
	t.Helper()
	ctx := context.Background()
	gen := workload.NewQuoteGen(3, 4)
	for i := 0; i < n; i++ {
		if err := pub.Publish(ctx, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && count() < n {
		time.Sleep(time.Millisecond)
	}
	if got := count(); got < n {
		t.Fatalf("delivered %d of %d events", got, n)
	}
}

// TestE2EHistogramAcrossNodes publishes across two simulated-network
// nodes and requires every pipeline stage to have recorded: the
// publisher-side routing and write stages, the subscriber-side wire,
// lane-wait and dispatch stages, and the cross-node end-to-end stage
// timed against the envelope's publish stamp — with nonzero quantiles.
func TestE2EHistogramAcrossNodes(t *testing.T) {
	pub, sub := openTelemetryPair(t)

	var mu sync.Mutex
	delivered := 0
	s, err := govents.Subscribe(sub, nil, func(q workload.StockQuote) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s }()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pub.RemoteSubscriptionCount() < 1 {
		time.Sleep(time.Millisecond)
	}

	const n = 50
	publishAndAwait(t, pub, n, func() int {
		mu.Lock()
		defer mu.Unlock()
		return delivered
	})

	pubStages := pub.Histograms()
	for _, stage := range []string{"publish_to_route", "route_to_write"} {
		snap := pubStages[stage]
		if snap.Count < n {
			t.Errorf("publisher stage %s: count %d, want >= %d", stage, snap.Count, n)
		}
	}
	subStages := sub.Histograms()
	for _, stage := range []string{"wire_to_lane", "lane_wait", "dispatch", "e2e"} {
		snap := subStages[stage]
		if snap.Count < n {
			t.Errorf("subscriber stage %s: count %d, want >= %d", stage, snap.Count, n)
			continue
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if v := snap.Quantile(q); v <= 0 {
				t.Errorf("subscriber stage %s: p%.0f = %d ns, want > 0", stage, q*100, v)
			}
		}
	}
	if len(sub.LaneOccupancies()) == 0 {
		t.Error("subscriber has no lane occupancy gauges")
	}
}

// TestMetricsScrape opens the subscriber with a metrics endpoint and
// scrapes it: /metrics must expose the stage histograms, event counters
// and lane gauges in Prometheus text format, /debug/vars the expvar
// JSON including the govents variable.
func TestMetricsScrape(t *testing.T) {
	pub, sub := openTelemetryPair(t, govents.WithMetricsAddr("127.0.0.1:0"))
	addr := sub.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr is empty with WithMetricsAddr set")
	}

	var mu sync.Mutex
	delivered := 0
	if _, err := govents.Subscribe(sub, nil, func(q workload.StockQuote) {
		mu.Lock()
		delivered++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pub.RemoteSubscriptionCount() < 1 {
		time.Sleep(time.Millisecond)
	}
	publishAndAwait(t, pub, 20, func() int {
		mu.Lock()
		defer mu.Unlock()
		return delivered
	})

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE govents_stage_latency_seconds histogram",
		`govents_stage_latency_seconds_bucket{node="sub",stage="dispatch"`,
		`govents_stage_latency_seconds_bucket{node="sub",stage="e2e"`,
		`le="+Inf"`,
		`govents_stage_latency_seconds_count{node="sub",stage="e2e"}`,
		`govents_events_total{node="sub",kind="delivered"}`,
		"# TYPE govents_lane_depth gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n--- scrape:\n%s", want, metrics)
		}
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"govents"`) || !strings.Contains(vars, `"sub"`) {
		t.Errorf("/debug/vars missing govents export:\n%s", vars)
	}

	// After Close the endpoint must be down.
	if err := sub.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("metrics endpoint still serving after Close")
	}
}

// panicQuote triggers a handler panic on a chosen key.
const panicAmount = 3

// TestTraceHookOutcomes installs an unsampled trace hook on a local
// domain and requires one delivered trace per event plus a
// handler_panic outcome — which must bypass sampling — and the matching
// drop-reason counter.
func TestTraceHookOutcomes(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var events []govents.TraceEvent
	d, err := govents.Open(ctx, "local-traced",
		govents.WithTraceHook(func(ev govents.TraceEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	workload.RegisterTypes(d.Registry())

	var wg sync.WaitGroup
	if _, err := govents.Subscribe(d, nil, func(q workload.StockQuote) {
		defer wg.Done()
		if q.Amount == panicAmount {
			panic("handler exploded")
		}
	}); err != nil {
		t.Fatal(err)
	}

	gen := workload.NewQuoteGen(5, 2)
	const n = 6
	for i := 0; i < n; i++ {
		q := gen.Next()
		q.Amount = i
		wg.Add(1)
		if err := d.Publish(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		total := len(events)
		mu.Unlock()
		if total >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	var deliveredTraces, panicTraces int
	for _, ev := range events {
		switch ev.Outcome {
		case "delivered":
			deliveredTraces++
		case "handler_panic":
			panicTraces++
		}
	}
	mu.Unlock()
	if deliveredTraces != n-1 {
		t.Errorf("delivered traces = %d, want %d", deliveredTraces, n-1)
	}
	if panicTraces != 1 {
		t.Errorf("handler_panic traces = %d, want 1", panicTraces)
	}
	if got := d.DroppedByReason()["handler_panic"]; got != 1 {
		t.Errorf("DroppedByReason[handler_panic] = %d, want 1", got)
	}
	if d.Stats().HandlerPanics != 1 {
		t.Errorf("HandlerPanics = %d, want 1", d.Stats().HandlerPanics)
	}
}

// TestTelemetryOff proves WithTelemetry(false) silences the histograms
// without touching delivery.
func TestTelemetryOff(t *testing.T) {
	ctx := context.Background()
	d, err := govents.Open(ctx, "local-quiet", govents.WithTelemetry(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	workload.RegisterTypes(d.Registry())

	var wg sync.WaitGroup
	if _, err := govents.Subscribe(d, nil, func(q workload.StockQuote) { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewQuoteGen(9, 2)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		if err := d.Publish(ctx, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if d.Stats().Delivered != 10 {
		t.Fatalf("Delivered = %d, want 10", d.Stats().Delivered)
	}
	for stage, snap := range d.Histograms() {
		if snap.Count != 0 {
			t.Errorf("stage %s recorded %d samples with telemetry off", stage, snap.Count)
		}
	}
}
