// Package netsim is the public surface of the simulated network: an
// in-process transport fabric with configurable latency, loss,
// duplication, partitions and crashes, seeded for reproducibility. Use
// it to test distributed govents domains deterministically without
// sockets; govents.ListenTCP provides the real-TCP counterpart with
// the same Transport interface.
package netsim

import internal "govents/internal/netsim"

// Transport is the addressed, connectionless, best-effort messaging
// abstraction shared by simulated endpoints and the TCP transport;
// govents.Open's WithTransport accepts any implementation.
type Transport = internal.Transport

// Handler processes an inbound message.
type Handler = internal.Handler

// Config controls the fault model of a simulated Network.
type Config = internal.Config

// Network is a simulated unreliable network.
type Network = internal.Network

// Endpoint is one simulated transport endpoint.
type Endpoint = internal.Endpoint

// ErrClosed is returned by operations on a closed network or endpoint.
var ErrClosed = internal.ErrClosed

// New creates a simulated network with the given fault model.
func New(cfg Config) *Network { return internal.New(cfg) }
