package govents_test

import (
	"context"
	"fmt"
	"time"

	"govents"
	"govents/filter"
	"govents/obvent"
)

// Quote is an application-defined obvent (paper Figure 2): a plain
// struct made publishable by embedding obvent.Base.
type Quote struct {
	obvent.Base
	Company string
	Price   float64
}

// GetCompany is an accessor usable in migratable filters.
func (q Quote) GetCompany() string { return q.Company }

// GetPrice is an accessor usable in migratable filters.
func (q Quote) GetPrice() float64 { return q.Price }

// Example_quickstart is the paper's running example (§2.3.3) on the
// public API: open a domain, subscribe to a type with a migratable
// filter, publish, receive the one matching clone.
func Example_quickstart() {
	ctx := context.Background()

	// A local domain; add govents.WithTransport(...) to go
	// distributed without changing the rest of the program.
	d, err := govents.Open(ctx, "quickstart")
	if err != nil {
		panic(err)
	}
	defer d.Close(ctx)

	// subscribe (Quote q)
	//   { return q.getPrice() < 100 && q.getCompany().contains("Telco") }
	//   { print("Got offer: ", q.getPrice()) }
	// The subscription is active on return; types register lazily.
	done := make(chan struct{})
	sub, err := govents.Subscribe(d,
		filter.And(
			filter.Path("GetPrice").Lt(filter.Float(100)),
			filter.Path("GetCompany").Contains(filter.Str("Telco")),
		),
		func(q Quote) {
			fmt.Printf("Got offer: %.2f from %s\n", q.Price, q.Company)
			close(done)
		})
	if err != nil {
		panic(err)
	}

	// publish q;
	for _, q := range []Quote{
		{Company: "Acme Corp", Price: 50},      // wrong company
		{Company: "Telco Mobiles", Price: 150}, // too expensive
		{Company: "Telco Mobiles", Price: 80},  // the paper's quote
	} {
		if err := d.Publish(ctx, q); err != nil {
			panic(err)
		}
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		panic("no delivery")
	}
	if err := sub.Deactivate(); err != nil {
		panic(err)
	}
	// Output:
	// Got offer: 80.00 from Telco Mobiles
}
