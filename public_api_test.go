// Public-API tests: subscription lifecycle, error sentinels, handler
// panic isolation and Close draining, all through the govents facade
// only (no internal imports except where a test needs the oracle).
package govents_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"govents"
	"govents/filter"
	"govents/obvent"
)

type apiQuote struct {
	obvent.Base
	Company string
	Price   float64
	N       int
}

func (q apiQuote) GetPrice() float64  { return q.Price }
func (q apiQuote) GetCompany() string { return q.Company }

func openLocal(t *testing.T) *govents.Domain {
	t.Helper()
	d, err := govents.Open(context.Background(), t.Name())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close(context.Background()) })
	return d
}

func waitCount(t *testing.T, what string, c *atomic.Int32, want int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Load() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s: have %d, want %d", what, c.Load(), want)
}

// TestSubscriptionLifecycle drives Activate/Deactivate/re-Activate
// through the public API: Subscribe returns an active handle, nothing
// is delivered while deactivated, and reactivation resumes delivery.
func TestSubscriptionLifecycle(t *testing.T) {
	ctx := context.Background()
	d := openLocal(t)

	var got atomic.Int32
	sub, err := govents.Subscribe(d, nil, func(q apiQuote) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Active() {
		t.Fatal("Subscribe returned an inactive subscription")
	}

	if err := d.Publish(ctx, apiQuote{N: 1}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "first delivery", &got, 1)

	if err := sub.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if sub.Active() {
		t.Fatal("subscription active after Deactivate")
	}
	if err := d.Publish(ctx, apiQuote{N: 2}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // would be delivered by now
	if got.Load() != 1 {
		t.Fatalf("deactivated subscription received an obvent (count %d)", got.Load())
	}

	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ctx, apiQuote{N: 3}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "post-reactivation delivery", &got, 2)

	// Lifecycle misuse fails with the paper's exceptions.
	if err := sub.Activate(); !errors.Is(err, govents.ErrCannotSubscribe) {
		t.Fatalf("double Activate error = %v, want ErrCannotSubscribe", err)
	}
	if err := sub.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Deactivate(); !errors.Is(err, govents.ErrCannotUnsubscribe) {
		t.Fatalf("double Deactivate error = %v, want ErrCannotUnsubscribe", err)
	}
}

// TestTwoPhaseSubscribe pins SubscribeInactive: the paper's form, no
// delivery before Activate.
func TestTwoPhaseSubscribe(t *testing.T) {
	ctx := context.Background()
	d := openLocal(t)

	var got atomic.Int32
	sub, err := govents.SubscribeInactive(d, nil, func(q apiQuote) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if sub.Active() {
		t.Fatal("SubscribeInactive returned an active subscription")
	}
	if err := d.Publish(ctx, apiQuote{N: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("inactive subscription received an obvent")
	}
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ctx, apiQuote{N: 2}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "post-activation delivery", &got, 1)
}

// TestErrorSentinels pins the errors.Is contract of the public
// sentinels across layers.
func TestErrorSentinels(t *testing.T) {
	ctx := context.Background()
	d, err := govents.Open(ctx, "sentinels")
	if err != nil {
		t.Fatal(err)
	}

	// Invalid filter: a zero Expr is structurally malformed.
	_, err = govents.Subscribe(d, &filter.Expr{}, func(q apiQuote) {})
	if !errors.Is(err, govents.ErrBadFilter) || !errors.Is(err, govents.ErrCannotSubscribe) {
		t.Fatalf("bad-filter error = %v, want ErrBadFilter and ErrCannotSubscribe", err)
	}

	// Cancelled context.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := d.Publish(cancelled, apiQuote{}); !errors.Is(err, govents.ErrCannotPublish) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled publish error = %v, want ErrCannotPublish and context.Canceled", err)
	}

	// Closed domain.
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if err := d.Publish(ctx, apiQuote{}); !errors.Is(err, govents.ErrClosed) || !errors.Is(err, govents.ErrCannotPublish) {
		t.Fatalf("publish-after-close error = %v, want ErrClosed and ErrCannotPublish", err)
	}
	if _, err := govents.Subscribe(d, nil, func(q apiQuote) {}); !errors.Is(err, govents.ErrClosed) {
		t.Fatalf("subscribe-after-close error = %v, want ErrClosed", err)
	}
}

// TestHandlerPanicIsolation pins that a panicking handler neither
// kills the process nor starves other subscriptions of the same event,
// and that the panics are counted in the domain stats.
func TestHandlerPanicIsolation(t *testing.T) {
	ctx := context.Background()
	d := openLocal(t)

	var healthy atomic.Int32
	if _, err := govents.Subscribe(d, nil, func(q apiQuote) { panic("handler bug") }); err != nil {
		t.Fatal(err)
	}
	if _, err := govents.Subscribe(d, nil, func(q apiQuote) { healthy.Add(1) }); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := d.Publish(ctx, apiQuote{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, "healthy subscription deliveries", &healthy, 3)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.Stats().HandlerPanics != 3 {
		time.Sleep(time.Millisecond)
	}
	if got := d.Stats().HandlerPanics; got != 3 {
		t.Fatalf("HandlerPanics = %d, want 3", got)
	}

	// The domain is still fully functional.
	if err := d.Publish(ctx, apiQuote{N: 99}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "post-panic delivery", &healthy, 4)
}

// TestCloseDrainsInFlightDeliveries pins Close(ctx) draining: every
// obvent already handed to a subscription executor is handled before
// Close returns.
func TestCloseDrainsInFlightDeliveries(t *testing.T) {
	ctx := context.Background()
	d, err := govents.Open(ctx, "drain")
	if err != nil {
		t.Fatal(err)
	}

	const events = 5
	var handled atomic.Int32
	sub, err := govents.SubscribeInactive(d, nil, func(q apiQuote) {
		time.Sleep(5 * time.Millisecond) // slow handler
		handled.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.SetSingleThreading()
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < events; i++ {
		if err := d.Publish(ctx, apiQuote{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until all events reached the executor (Delivered counts
	// hand-offs, not completed handlers).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.Stats().Delivered < events {
		time.Sleep(time.Millisecond)
	}
	if got := d.Stats().Delivered; got < events {
		t.Fatalf("only %d/%d deliveries reached executors", got, events)
	}

	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := handled.Load(); got != events {
		t.Fatalf("Close returned with %d/%d deliveries handled", got, events)
	}

	// An expired deadline surfaces ctx.Err while shutdown continues in
	// the background — and a later Close waits that shutdown out
	// instead of returning immediately.
	d2, err := govents.Open(ctx, "drain-expired")
	if err != nil {
		t.Fatal(err)
	}
	var handled2 atomic.Int32
	sub2, err := govents.SubscribeInactive(d2, nil, func(q apiQuote) {
		time.Sleep(5 * time.Millisecond)
		handled2.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sub2.SetSingleThreading()
	if err := sub2.Activate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < events; i++ {
		if err := d2.Publish(ctx, apiQuote{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d2.Stats().Delivered < events {
		time.Sleep(time.Millisecond)
	}
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if err := d2.Close(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close with expired ctx = %v, want context.Canceled", err)
	}
	if err := d2.Close(ctx); err != nil {
		t.Fatalf("second Close = %v, want nil after drain", err)
	}
	if got := handled2.Load(); got != events {
		t.Fatalf("second Close returned with %d/%d deliveries handled", got, events)
	}
}

// TestOpenRejectsDistributedOptionsWithoutTransport pins that Open
// fails loudly instead of silently dropping distribution-only options.
func TestOpenRejectsDistributedOptionsWithoutTransport(t *testing.T) {
	_, err := govents.Open(context.Background(), "oops", govents.WithPeers("a", "b"))
	if err == nil {
		t.Fatal("Open with WithPeers but no WithTransport succeeded")
	}
	_, err = govents.Open(context.Background(), "oops", govents.WithDurableID("x"))
	if err == nil {
		t.Fatal("Open with WithDurableID but no WithTransport succeeded")
	}
}

// TestLazyRegistration pins that Publish and Subscribe register obvent
// classes on first use: no explicit Register call anywhere.
func TestLazyRegistration(t *testing.T) {
	ctx := context.Background()
	d := openLocal(t)

	var got atomic.Int32
	if _, err := govents.Subscribe(d, filter.Path("GetPrice").Lt(filter.Float(100)), func(q apiQuote) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ctx, apiQuote{Company: "Telco", Price: 80}); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ctx, apiQuote{Company: "Telco", Price: 120}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "lazily registered delivery", &got, 1)
}
