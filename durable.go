package govents

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"govents/internal/codec"
	"govents/internal/core"
	"govents/internal/obvent"
)

// SubscribeDurable subscribes to certified obvents of type T under a
// stable durable identity — the paper's activate(long id) made
// first-class (§3.4.1). The subscription's lifetime exceeds the hosting
// process: the domain's durability plane (WithDurability) tracks, per
// certified class, which staged events this identity has consumed, and
// a process that crashed or shut down resumes by calling
// SubscribeDurable again with the same identity. Events published while
// the subscriber was down are replayed — synchronously, on the calling
// goroutine, in staging order per class — before the subscription goes
// live, so the handler observes every certified event exactly once
// above the at-least-once transport floor.
//
// The durable identity is claimed for T's conforming classes until the
// subscription is deactivated; a second SubscribeDurable with the same
// identity and overlapping classes fails with ErrDurableConflict. On a
// domain without WithDurability it fails with ErrNoDurability.
func SubscribeDurable[T Obvent](d *Domain, durableID string, handler func(T)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	if durableID == "" {
		return nil, fmt.Errorf("%w: empty durable id", ErrCannotSubscribe)
	}
	if d.node == nil || d.dur == nil {
		return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, ErrNoDurability)
	}
	t := obvent.TypeOf[T]()
	var typeName string
	if t.Kind() == reflect.Struct {
		sample, ok := reflect.New(t).Elem().Interface().(Obvent)
		if !ok {
			return nil, fmt.Errorf("%w: %s is not an obvent class", ErrCannotSubscribe, t)
		}
		name, err := d.reg.Register(sample)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
		typeName = name
	} else {
		name, err := d.reg.RegisterInterface(t)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
		typeName = name
	}

	// The classes owed to this identity right now: every class with
	// durable state on disk that conforms to T, plus T's own class when
	// concrete. Certified classes that appear later start being owed
	// events from their first live delivery (see Manager.AckDelivered).
	classSet := map[string]bool{}
	for _, class := range d.dur.Classes() {
		if d.reg.ConformsTo(class, typeName) {
			classSet[class] = true
		}
	}
	if t.Kind() == reflect.Struct {
		classSet[typeName] = true
	}
	classes := make([]string, 0, len(classSet))
	for class := range classSet {
		classes = append(classes, class)
	}
	sort.Strings(classes)

	if err := d.claimDurable(classes, durableID); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
	}
	done := false
	defer func() {
		if !done {
			d.releaseDurable(classes, durableID)
		}
	}()

	// Park live certified delivery while the backlog replays, so the
	// replayed and live streams never interleave. Events arriving
	// meanwhile are staged durably and queued; they drain after the
	// subscription activates.
	for _, class := range classes {
		d.node.PauseCertified(class)
	}
	defer func() {
		for _, class := range classes {
			d.node.ResumeCertified(class)
		}
	}()

	// seen bridges the replay→live handoff: an event staged during
	// replay can be both replayed (the inbox snapshot caught it) and
	// queued for live delivery; the live wrapper drops the second copy.
	seen := make(map[string]bool)
	var seenMu sync.Mutex
	cod := d.eng.Codec()
	for _, class := range classes {
		ib, err := d.dur.InboxFor(class)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
		if _, err := ib.EnsureCursor(durableID); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
		err = ib.Replay(durableID, func(eventID, origin string, payload []byte) error {
			if env, uerr := codec.Unmarshal(payload); uerr != nil {
				// A poison record must not wedge the subscription
				// forever: drop it, acknowledged, and say so.
				d.log.Warn("govents: durable replay: undecodable envelope; dropping",
					"class", class, "event", eventID, "origin", origin, "err", uerr)
			} else if o, derr := cod.Decode(env); derr != nil {
				d.log.Warn("govents: durable replay: undecodable obvent; dropping",
					"class", class, "event", eventID, "origin", origin, "err", derr)
			} else if v, ok := core.As[T](o); ok {
				handler(v)
			}
			seenMu.Lock()
			seen[eventID] = true
			seenMu.Unlock()
			return ib.Ack(durableID, eventID)
		})
		if err != nil {
			return nil, fmt.Errorf("%w: replay %s: %w", ErrCannotSubscribe, class, err)
		}
	}

	cs, err := d.eng.SubscribeDynamicDelivery(t, nil, nil, func(o obvent.Obvent, del core.Delivery) {
		seenMu.Lock()
		dup := seen[del.EventID]
		if dup {
			delete(seen, del.EventID)
		}
		seenMu.Unlock()
		if dup {
			return // already delivered (and acknowledged) by replay
		}
		if v, ok := core.As[T](o); ok {
			handler(v)
		}
		if sem, ok := d.reg.ClassSemantics(del.Class); !ok || sem.Reliability != obvent.CertifiedDelivery {
			return // only certified deliveries are inbox-tracked
		}
		if aerr := d.dur.AckDelivered(del.Class, durableID, del.EventID); aerr != nil {
			d.log.Warn("govents: durable delivery ack failed; event will replay after restart",
				"class", del.Class, "durable", durableID, "event", del.EventID, "err", aerr)
		}
	})
	if err != nil {
		return nil, err
	}
	sub := &Subscription{s: cs, release: func() { d.releaseDurable(classes, durableID) }}
	if err := cs.ActivateDurable(durableID); err != nil {
		return nil, err
	}
	done = true
	return sub, nil
}

// claimDurable marks durableID active on each class, failing with
// ErrDurableConflict if any (class, identity) pair is already claimed.
func (d *Domain) claimDurable(classes []string, durableID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.durClaims == nil {
		d.durClaims = make(map[string]bool)
	}
	for _, class := range classes {
		if d.durClaims[class+"\x00"+durableID] {
			return fmt.Errorf("%w: %q on class %s", ErrDurableConflict, durableID, class)
		}
	}
	for _, class := range classes {
		d.durClaims[class+"\x00"+durableID] = true
	}
	return nil
}

// releaseDurable frees the (class, identity) claims taken by
// claimDurable.
func (d *Domain) releaseDurable(classes []string, durableID string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, class := range classes {
		delete(d.durClaims, class+"\x00"+durableID)
	}
}

// startRetention launches the background retention ticker
// (DurabilityTuning.Retention): every Interval ± 10% jitter it runs the
// same snapshot+compact pass as CompactDurable — outbox GC up to the
// consumer frontier, inbox compaction behind every cursor — so durable
// disk usage is reclaimed without manual calls. With MaxBytes set the
// tick compacts only while the logs' on-disk size exceeds it. The
// jitter decorrelates a fleet of domains restarted together. Close
// stops the ticker before the durable logs shut down.
func (d *Domain) startRetention(p RetentionPolicy) {
	d.retainStop = make(chan struct{})
	d.retainDone = make(chan struct{})
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	go func() {
		defer close(d.retainDone)
		for {
			wait := p.Interval
			if j := int64(p.Interval / 10); j > 0 {
				wait += time.Duration(rng.Int63n(2*j+1) - j)
			}
			timer := time.NewTimer(wait)
			select {
			case <-d.retainStop:
				timer.Stop()
				return
			case <-timer.C:
			}
			if p.MaxBytes > 0 && d.dur.Stats().Bytes <= p.MaxBytes {
				continue
			}
			if err := d.dur.Compact(); err != nil {
				d.log.Warn("govents: retention compaction failed; will retry next tick",
					"domain", d.name, "err", err)
			}
		}
	}()
}
