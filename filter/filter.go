// Package filter is the public surface of content-based subscription
// filters: first-class, serializable expression trees — the paper's
// deferred code evaluation (§3.3.3–§3.3.4). A filter built here can
// migrate to filtering hosts (the publisher, a broker) and be factored
// with other subscribers' filters; an arbitrary Go closure cannot.
//
// Every type is an alias of the engine-internal implementation, so
// filters flow between the public API and the substrate without
// conversion. Filters are built with a small DSL:
//
//	f := filter.And(
//		filter.Path("GetPrice").Lt(filter.Float(100)),
//		filter.Path("GetCompany").Contains(filter.Str("Telco")),
//	)
//
// the paper's "q.getPrice() < 100 && q.getCompany().indexOf("Telco")
// != -1". Paths name pure accessor methods or fields of the filtered
// obvent; the only other operands are primitive constants.
package filter

import internal "govents/internal/filter"

// Expr is a filter expression tree; immutable and safe to share.
type Expr = internal.Expr

// PathExpr is an accessor path being built into a condition.
type PathExpr = internal.PathExpr

// Operandable is anything usable as a comparison operand: a Path or a
// constant (Int, Float, Str, Bool).
type Operandable = internal.Operandable

// CmpOp is a leaf comparison operator.
type CmpOp = internal.CmpOp

// Comparison operators. String operators apply to string operands only.
const (
	OpEq        = internal.OpEq
	OpNe        = internal.OpNe
	OpLt        = internal.OpLt
	OpLe        = internal.OpLe
	OpGt        = internal.OpGt
	OpGe        = internal.OpGe
	OpContains  = internal.OpContains
	OpHasPrefix = internal.OpHasPrefix
	OpHasSuffix = internal.OpHasSuffix
)

// ErrInvalid is wrapped by every validation failure of a structurally
// malformed expression; govents.ErrBadFilter is the same sentinel.
var ErrInvalid = internal.ErrInvalid

// Path starts a condition on an accessor path: a dot-separated chain of
// pure accessor methods or exported fields ("GetPrice", "Inner.Name").
func Path(p string) PathExpr { return internal.Path(p) }

// Int builds an integer constant operand.
func Int(v int64) Operandable { return internal.Int(v) }

// Float builds a float constant operand.
func Float(v float64) Operandable { return internal.Float(v) }

// Str builds a string constant operand.
func Str(v string) Operandable { return internal.Str(v) }

// Bool builds a boolean constant operand.
func Bool(v bool) Operandable { return internal.Bool(v) }

// True is the always-true filter (subscribe to every instance).
func True() *Expr { return internal.True() }

// False is the always-false filter.
func False() *Expr { return internal.False() }

// And combines children conjunctively.
func And(children ...*Expr) *Expr { return internal.And(children...) }

// Or combines children disjunctively.
func Or(children ...*Expr) *Expr { return internal.Or(children...) }

// Not negates child.
func Not(child *Expr) *Expr { return internal.Not(child) }

// Evaluate applies a filter to a value (the subscriber-side reference
// semantics; filtering hosts use the factored compound matcher).
func Evaluate(e *Expr, obj any) (bool, error) { return internal.Evaluate(e, obj) }

// Normalize returns the canonical structural form of e: And/Or children
// sorted and deduplicated, so semantically identical filters compare
// equal.
func Normalize(e *Expr) *Expr { return internal.Normalize(e) }

// Marshal serializes an expression for migration to a filtering host.
func Marshal(e *Expr) ([]byte, error) { return internal.Marshal(e) }

// MarshalCanonical serializes Normalize(e): identical filters produce
// byte-identical encodings regardless of how subscribers wrote them.
func MarshalCanonical(e *Expr) ([]byte, error) { return internal.MarshalCanonical(e) }

// Unmarshal reconstructs and validates an expression from the wire.
func Unmarshal(data []byte) (*Expr, error) { return internal.Unmarshal(data) }
