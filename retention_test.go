// Retention schedule tests: the background compaction ticker
// (DurabilityTuning.Retention) must actually reclaim fully-acknowledged
// sealed segments — without any manual CompactDurable call — and must
// never drop a record still owed to a durable consumer, no matter how
// many ticks elapse while the consumer is down.
package govents_test

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"govents"
	"govents/netsim"
)

// retentionGroup opens a 2-node group with tiny durable segments (so
// sealed segments exist to reclaim) and a fast retention ticker.
func retentionGroup(t *testing.T) *govents.DomainGroup {
	t.Helper()
	g, err := govents.OpenGroup(context.Background(), 2, govents.GroupConfig{
		Net:        netsim.Config{MaxLatency: time.Millisecond, Seed: 7},
		Durability: t.TempDir(),
		Options: func(i int, addr string) []govents.Option {
			return []govents.Option{
				govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
				govents.WithDurabilityTuning(govents.DurabilityTuning{
					SegmentBytes: 256,
					Retention:    govents.RetentionPolicy{Interval: 20 * time.Millisecond},
				}),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close(context.Background()) })
	return g
}

// TestRetentionCompactsAndPreservesUnacked runs the full property: a
// consumed backlog is reclaimed by the ticker alone, then a crash takes
// the durable consumer away while publishing continues across many
// retention ticks — and the reborn consumer still receives every owed
// event, exactly the published set.
func TestRetentionCompactsAndPreservesUnacked(t *testing.T) {
	ctx := context.Background()
	g := retentionGroup(t)

	durable := newRecorder()
	subscribe := func(d *govents.Domain) {
		t.Helper()
		if _, err := govents.SubscribeDurable(d, "sub-1", func(e chaosTick) {
			durable.record(e.Pub, e.Seq)
		}); err != nil {
			t.Fatal(err)
		}
	}
	subscribe(g.Domain(1))
	waitFor(t, "subscription ad at publisher", func() bool {
		return g.Domain(0).RemoteSubscriptionCount() >= 1
	})

	var published []string
	seq := 0
	publish := func(n int, lockstep bool) {
		t.Helper()
		for i := 0; i < n; i++ {
			k := tickKey("node-0", seq)
			if err := g.Domain(0).Publish(ctx, chaosTick{Pub: "node-0", Seq: seq}); err != nil {
				t.Fatal(err)
			}
			published = append(published, k)
			if lockstep {
				waitFor(t, "delivery of "+k, func() bool { return durable.has(k) })
			}
			seq++
		}
	}

	// Phase A: a fully-consumed backlog large enough to seal several
	// 256-byte segments. Every record is staged, delivered and acked, so
	// the retention ticker — never called manually — must reclaim the
	// sealed prefix on both sides.
	publish(40, true)
	waitFor(t, "retention ticker reclaiming consumed segments", func() bool {
		return g.Domain(0).DurableStats().ReclaimedRecords > 0
	})

	// Phase B: the consumer crashes; publishing continues long enough
	// for many retention ticks to fire against the un-acked backlog.
	if err := g.Crash(ctx, 1); err != nil {
		t.Fatal(err)
	}
	publish(30, false)
	time.Sleep(150 * time.Millisecond) // ≥ several Interval=20ms ticks

	// Phase C: rebirth. Every event published while the consumer was
	// down must still be on disk — retention compacts only behind the
	// consumer frontier — and replay must deliver the exact set.
	d1, err := g.Restart(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	subscribe(d1)
	want := append([]string(nil), published...)
	sort.Strings(want)
	waitFor(t, "owed events after rebirth across retention ticks", func() bool {
		return durable.hasAll(want)
	})
	if got := durable.keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("delivery set mismatch after retention:\n got %v\nwant %v", got, want)
	}
}
