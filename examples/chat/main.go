// Chat: causally ordered obvents across a simulated network (paper
// §3.1.2, CausalOrder semantics). A reply can never be delivered
// before the message it answers, even to third parties on slow links —
// the QoS is composed onto the obvent type itself by embedding
// obvent.CausalOrderBase (LP4, multiple subtyping).
package main

import (
	"fmt"
	"sync"
	"time"

	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
)

// ChatMessage is a causally ordered obvent: its type declares the
// delivery semantics.
type ChatMessage struct {
	obvent.Base
	obvent.CausalOrderBase
	From string
	Text string
}

func main() {
	net := netsim.New(netsim.Config{MaxLatency: 3 * time.Millisecond, Seed: 2})
	defer net.Close()

	names := []string{"alice", "bob", "carol"}
	engines := make(map[string]*core.Engine)
	nodes := make(map[string]*dace.Node)
	for _, name := range names {
		ep, err := net.NewEndpoint(name)
		if err != nil {
			panic(err)
		}
		reg := obvent.NewRegistry()
		reg.MustRegister(ChatMessage{})
		node := dace.NewNode(ep, reg, dace.Config{
			Multicast: multicast.Options{RetransmitInterval: 5 * time.Millisecond},
		})
		engines[name] = core.NewEngine(name, node, core.WithRegistry(reg))
		nodes[name] = node
		defer engines[name].Close()
	}
	for _, node := range nodes {
		node.SetPeers(names)
	}

	// Everyone subscribes; bob answers alice's question from inside
	// his handler (a causal dependency).
	var mu sync.Mutex
	timelines := make(map[string][]string)
	var wg sync.WaitGroup
	wg.Add(6) // 2 messages x 3 participants
	for _, name := range names {
		name := name
		sub, err := core.Subscribe(engines[name], nil, func(m ChatMessage) {
			mu.Lock()
			timelines[name] = append(timelines[name], fmt.Sprintf("%s: %s", m.From, m.Text))
			mu.Unlock()
			fmt.Printf("[%s] %s: %s\n", name, m.From, m.Text)
			if name == "bob" && m.From == "alice" {
				if err := core.Publish(engines["bob"], ChatMessage{From: "bob", Text: "the spot price is 80"}); err != nil {
					panic(err)
				}
			}
			wg.Done()
		})
		if err != nil {
			panic(err)
		}
		if err := sub.Activate(); err != nil {
			panic(err)
		}
	}
	waitUntil(func() bool {
		for _, n := range nodes {
			if n.RemoteSubscriptionCount() < 2 {
				return false
			}
		}
		return true
	})

	if err := core.Publish(engines["alice"], ChatMessage{From: "alice", Text: "what is the spot price?"}); err != nil {
		panic(err)
	}
	wg.Wait()

	// Carol (and everyone) must have alice's question before bob's
	// answer: the causal guarantee.
	mu.Lock()
	defer mu.Unlock()
	for name, tl := range timelines {
		if len(tl) != 2 || tl[0] != "alice: what is the spot price?" {
			panic(fmt.Sprintf("%s saw out-of-causal-order timeline: %v", name, tl))
		}
	}
	fmt.Println("chat: causal order held at every participant: ok")
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	panic("timeout")
}
