// Chat: causally ordered obvents across a simulated network (paper
// §3.1.2, CausalOrder semantics) on the public govents API. A reply can
// never be delivered before the message it answers, even to third
// parties on slow links — the QoS is composed onto the obvent type
// itself by embedding obvent.CausalOrderBase (LP4, multiple subtyping).
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"govents"
	"govents/netsim"
	"govents/obvent"
)

// ChatMessage is a causally ordered obvent: its type declares the
// delivery semantics.
type ChatMessage struct {
	obvent.Base
	obvent.CausalOrderBase
	From string
	Text string
}

func main() {
	ctx := context.Background()
	net := netsim.New(netsim.Config{MaxLatency: 3 * time.Millisecond, Seed: 2})
	defer net.Close()

	names := []string{"alice", "bob", "carol"}
	domains := make(map[string]*govents.Domain)
	for _, name := range names {
		ep, err := net.NewEndpoint(name)
		if err != nil {
			panic(err)
		}
		d, err := govents.Open(ctx, name,
			govents.WithTransport(ep),
			govents.WithPeers(names...),
			govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
		)
		if err != nil {
			panic(err)
		}
		domains[name] = d
		defer d.Close(ctx)
	}

	// Everyone subscribes; bob answers alice's question from inside
	// his handler (a causal dependency). Subscriptions are active on
	// return — no separate Activate step.
	var mu sync.Mutex
	timelines := make(map[string][]string)
	var wg sync.WaitGroup
	wg.Add(6) // 2 messages x 3 participants
	for _, name := range names {
		name := name
		_, err := govents.Subscribe(domains[name], nil, func(m ChatMessage) {
			mu.Lock()
			timelines[name] = append(timelines[name], fmt.Sprintf("%s: %s", m.From, m.Text))
			mu.Unlock()
			fmt.Printf("[%s] %s: %s\n", name, m.From, m.Text)
			if name == "bob" && m.From == "alice" {
				if err := domains["bob"].Publish(ctx, ChatMessage{From: "bob", Text: "the spot price is 80"}); err != nil {
					panic(err)
				}
			}
			wg.Done()
		})
		if err != nil {
			panic(err)
		}
	}
	waitUntil(func() bool {
		for _, d := range domains {
			if d.RemoteSubscriptionCount() < 2 {
				return false
			}
		}
		return true
	})

	if err := domains["alice"].Publish(ctx, ChatMessage{From: "alice", Text: "what is the spot price?"}); err != nil {
		panic(err)
	}
	wg.Wait()

	// Carol (and everyone) must have alice's question before bob's
	// answer: the causal guarantee.
	mu.Lock()
	defer mu.Unlock()
	for name, tl := range timelines {
		if len(tl) != 2 || tl[0] != "alice: what is the spot price?" {
			panic(fmt.Sprintf("%s saw out-of-causal-order timeline: %v", name, tl))
		}
	}
	fmt.Println("chat: causal order held at every participant: ok")
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	panic("timeout")
}
