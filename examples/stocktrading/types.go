// The stock-trading scenario of the paper's Figures 1, 2 and 8: the
// obvent hierarchy, plus psc-liftable filter functions. Run
//
//	go run ./cmd/psc -dir examples/stocktrading
//
// to regenerate psc_generated.go (the Figure 6 typed adapters and the
// lifted filter expressions).
package main

import (
	"strings"

	"govents/obvent"
	"govents/rmi"
)

// StockObvent is the hierarchy root (paper Figure 1).
type StockObvent struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

// GetCompany returns the company (accessor for migratable filters).
func (s StockObvent) GetCompany() string { return s.Company }

// GetPrice returns the price.
func (s StockObvent) GetPrice() float64 { return s.Price }

// GetAmount returns the amount.
func (s StockObvent) GetAmount() int { return s.Amount }

// StockQuote carries, per the paper's Figure 8, a reference to the
// stock market remote object so a broker can buy synchronously over
// RMI from inside the handler.
type StockQuote struct {
	StockObvent
	Market rmi.Ref
}

// StockRequest is the purchase-request branch of the hierarchy.
type StockRequest struct {
	StockObvent
	Broker string
}

// SpotPrice requests an immediate purchase.
type SpotPrice struct {
	StockRequest
}

// MarketPrice requests a purchase once a criterion is met; it is
// reliable so brokers do not lose standing orders.
type MarketPrice struct {
	obvent.Base
	obvent.ReliableBase
	StockRequest
	LimitPrice float64
}

// GetLimitPrice returns the request's limit.
func (m MarketPrice) GetLimitPrice() float64 { return m.LimitPrice }

//psc:filter
func CheapTelco(q StockQuote) bool {
	return q.GetPrice() < 100 && strings.Contains(q.GetCompany(), "Telco")
}

//psc:filter
func BulkOffers(q StockQuote) bool {
	return q.GetAmount() >= 50 && q.GetPrice() < 500
}
