// Quickstart: the paper's two primitives (§2.3.3) in their simplest
// form on the public govents API — a local Domain, one typed
// subscription with a migratable filter, one publication.
//
//	paper construct                        govents call
//	------------------------------------   ----------------------------------
//	subscribe (StockQuote q)               govents.SubscribeInactive(d, f, h)
//	  {filter} {handler}                     (Subscribe activates immediately)
//	s.activate();                          sub.Activate()
//	publish q;                             d.Publish(ctx, q)
//	s.deactivate();                        sub.Deactivate()
package main

import (
	"context"
	"fmt"
	"time"

	"govents"
	"govents/filter"
	"govents/obvent"
)

// StockQuote is an application-defined obvent (paper Figure 2): a plain
// struct made publishable by embedding obvent.Base.
type StockQuote struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

// GetCompany is an accessor usable in migratable filters (LP2:
// subscriptions go through the type's interface, not its
// representation).
func (q StockQuote) GetCompany() string { return q.Company }

// GetPrice is an accessor usable in migratable filters.
func (q StockQuote) GetPrice() float64 { return q.Price }

func main() {
	ctx := context.Background()

	// A local domain: the engine over the in-process loopback. Add
	// govents.WithTransport to join a distributed domain instead —
	// the rest of the program would not change.
	d, err := govents.Open(ctx, "quickstart")
	if err != nil {
		panic(err)
	}
	defer d.Close(ctx)

	// subscribe (StockQuote q)
	//   { return q.getPrice() < 100 && q.getCompany().contains("Telco") }
	//   { print("Got offer: ", q.getPrice()) }
	//
	// The two-phase form; plain Subscribe would skip the explicit
	// Activate. The StockQuote class is registered lazily.
	done := make(chan struct{})
	sub, err := govents.SubscribeInactive(d,
		filter.And(
			filter.Path("GetPrice").Lt(filter.Float(100)),
			filter.Path("GetCompany").Contains(filter.Str("Telco")),
		),
		func(q StockQuote) {
			fmt.Printf("Got offer: %.2f (%s x%d)\n", q.Price, q.Company, q.Amount)
			close(done)
		})
	if err != nil {
		panic(err)
	}
	if err := sub.Activate(); err != nil {
		panic(err)
	}

	// publish q;
	quotes := []StockQuote{
		{Company: "Acme Corp", Price: 50, Amount: 5},       // wrong company
		{Company: "Telco Mobiles", Price: 150, Amount: 20}, // too expensive
		{Company: "Telco Mobiles", Price: 80, Amount: 10},  // the paper's quote
	}
	for _, q := range quotes {
		if err := d.Publish(ctx, q); err != nil {
			panic(err)
		}
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		panic("no delivery")
	}
	if err := sub.Deactivate(); err != nil {
		panic(err)
	}
	fmt.Println("quickstart: ok")
}
