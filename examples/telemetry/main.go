// Telemetry: the transmission semantics of paper §3.1.2 on the public
// govents API — Timely obvents that expire in transit, and Prioritary
// obvents that overtake lower-priority backlog. Both semantics are
// composed onto the types by embedding (LP4).
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"govents"
	"govents/obvent"
)

// SensorReading is a timely obvent: stale readings are worthless and
// must be dropped rather than delivered (TTL).
type SensorReading struct {
	obvent.Base
	obvent.TimelyBase
	Sensor string
	Value  float64
}

// Alarm is a prioritary obvent: it overtakes queued readings.
type Alarm struct {
	obvent.Base
	obvent.PriorityBase
	Msg string
}

func main() {
	ctx := context.Background()
	d, err := govents.Open(ctx, "telemetry")
	must(err)
	defer d.Close(ctx)

	// --- Timely: an expired reading is dropped at dispatch ---
	var mu sync.Mutex
	var readings []SensorReading
	_, err = govents.Subscribe(d, nil, func(r SensorReading) {
		mu.Lock()
		defer mu.Unlock()
		readings = append(readings, r)
	})
	must(err)

	must(d.Publish(ctx, SensorReading{
		TimelyBase: obvent.TimelyBase{TTL: time.Millisecond, BirthTime: time.Now().Add(-time.Second)},
		Sensor:     "stale", Value: 1,
	}))
	must(d.Publish(ctx, SensorReading{
		TimelyBase: obvent.TimelyBase{TTL: time.Minute},
		Sensor:     "fresh", Value: 2,
	}))
	waitUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(readings) == 1
	})
	mu.Lock()
	fmt.Printf("timely: delivered %q, dropped the expired reading\n", readings[0].Sensor)
	mu.Unlock()
	if st := d.Stats(); st.Expired != 1 {
		panic(fmt.Sprintf("expected 1 expired envelope in stats, got %d", st.Expired))
	}

	// --- Prioritary: alarms overtake backlog ---
	var order []string
	block := make(chan struct{})
	first := make(chan struct{}, 1)
	var omu sync.Mutex
	subA, err := govents.SubscribeInactive(d, nil, func(a Alarm) {
		select {
		case first <- struct{}{}:
			<-block // hold the dispatcher so backlog accumulates
		default:
		}
		omu.Lock()
		order = append(order, a.Msg)
		omu.Unlock()
	})
	must(err)
	subA.SetSingleThreading()
	must(subA.Activate())

	must(d.Publish(ctx, Alarm{Msg: "blocker", PriorityBase: obvent.PriorityBase{Prio: 0}}))
	waitUntil(func() bool { return len(first) == 1 })
	must(d.Publish(ctx, Alarm{Msg: "minor glitch", PriorityBase: obvent.PriorityBase{Prio: 1}}))
	must(d.Publish(ctx, Alarm{Msg: "FIRE", PriorityBase: obvent.PriorityBase{Prio: 9}}))
	time.Sleep(20 * time.Millisecond)
	close(block)
	waitUntil(func() bool {
		omu.Lock()
		defer omu.Unlock()
		return len(order) == 3
	})
	omu.Lock()
	fmt.Printf("priority: delivery order after blocker: %q then %q\n", order[1], order[2])
	if order[1] != "FIRE" {
		panic("priority did not overtake")
	}
	omu.Unlock()
	fmt.Println("telemetry: ok")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	panic("timeout")
}
