// Telemetry: the observability plane on the public govents API — the
// per-stage latency histograms every Domain records, sampled per-event
// tracing (WithTraceHook), drop-reason accounting, the injectable
// diagnostics logger (WithLogger), and the HTTP metrics surface
// (WithMetricsAddr: Prometheus text on /metrics, expvar, pprof).
//
// The workload publishes timely sensor readings (one pre-expired, so a
// drop shows up with its reason) and one reading whose handler panics
// (recovered, counted, logged) — then prints what the plane saw.
package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"govents"
	"govents/obvent"
)

// SensorReading is a timely obvent: stale readings are worthless and
// must be dropped rather than delivered (TTL).
type SensorReading struct {
	obvent.Base
	obvent.TimelyBase
	Sensor string
	Value  float64
}

func main() {
	ctx := context.Background()

	// Every trace event the plane emits lands here: delivered events
	// are sampled (1 in 2), failure outcomes always fire.
	var tmu sync.Mutex
	var traces []govents.TraceEvent
	d, err := govents.Open(ctx, "telemetry",
		govents.WithMetricsAddr("127.0.0.1:0"),
		govents.WithTraceHook(func(ev govents.TraceEvent) {
			tmu.Lock()
			traces = append(traces, ev)
			tmu.Unlock()
		}, 2),
		govents.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))),
	)
	must(err)
	defer d.Close(ctx)
	fmt.Printf("metrics surface: http://%s/metrics\n", d.MetricsAddr())

	var mu sync.Mutex
	delivered := 0
	_, err = govents.Subscribe(d, nil, func(r SensorReading) {
		mu.Lock()
		delivered++
		mu.Unlock()
		if r.Sensor == "broken" {
			panic("sensor handler exploded") // recovered, counted, logged
		}
	})
	must(err)

	// One pre-expired reading (dropped with reason "expired"), one
	// whose handler panics, and a healthy stream.
	must(d.Publish(ctx, SensorReading{
		TimelyBase: obvent.TimelyBase{TTL: time.Millisecond, BirthTime: time.Now().Add(-time.Second)},
		Sensor:     "stale", Value: 1,
	}))
	must(d.Publish(ctx, SensorReading{
		TimelyBase: obvent.TimelyBase{TTL: time.Minute},
		Sensor:     "broken", Value: 2,
	}))
	for i := 0; i < 40; i++ {
		must(d.Publish(ctx, SensorReading{
			TimelyBase: obvent.TimelyBase{TTL: time.Minute},
			Sensor:     fmt.Sprintf("probe-%02d", i), Value: float64(i),
		}))
	}
	waitUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered >= 41 // all but the expired reading
	})

	// The per-stage latency histograms: publish→deliver decomposed.
	fmt.Printf("%-12s %8s %12s %12s %12s\n", "stage", "count", "p50", "p99", "max")
	stages := d.Histograms()
	for _, name := range []string{"lane_wait", "dispatch", "e2e"} {
		snap := stages[name]
		fmt.Printf("%-12s %8d %12v %12v %12v\n",
			name, snap.Count, snap.Quantile(0.5), snap.Quantile(0.99), time.Duration(snap.Max))
	}

	// Drop accounting: the expired reading and the recovered panic.
	dropped := d.DroppedByReason()
	reasons := make([]string, 0, len(dropped))
	for r, n := range dropped {
		if n > 0 {
			reasons = append(reasons, fmt.Sprintf("%s=%d", r, n))
		}
	}
	sort.Strings(reasons)
	fmt.Printf("dropped: %v\n", reasons)
	if dropped["expired"] != 1 || dropped["handler_panic"] != 1 {
		panic("expected exactly one expired and one handler_panic drop")
	}

	// Traces: sampled delivered spans plus the always-on failure spans.
	tmu.Lock()
	byOutcome := map[string]int{}
	for _, ev := range traces {
		byOutcome[ev.Outcome]++
	}
	tmu.Unlock()
	fmt.Printf("traces: delivered=%d (sampled 1-in-2) expired=%d handler_panic=%d\n",
		byOutcome["delivered"], byOutcome["expired"], byOutcome["handler_panic"])
	if byOutcome["expired"] != 1 || byOutcome["handler_panic"] != 1 {
		panic("failure outcomes must bypass trace sampling")
	}

	// The same numbers, scraped over HTTP in Prometheus text format.
	resp, err := http.Get("http://" + d.MetricsAddr() + "/metrics")
	must(err)
	body, err := io.ReadAll(resp.Body)
	must(err)
	_ = resp.Body.Close()
	for _, line := range []string{
		`govents_dropped_total{node="telemetry",reason="expired"} 1`,
		`govents_dropped_total{node="telemetry",reason="handler_panic"} 1`,
	} {
		if !strings.Contains(string(body), line) {
			panic("scrape missing " + line)
		}
	}
	fmt.Println("telemetry: ok")
}


func must(err error) {
	if err != nil {
		panic(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	panic("timeout")
}
