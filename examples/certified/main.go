// Certified delivery across a subscriber crash (paper §3.1.2 Certified
// semantics + §3.4.1 durable activation): a trade-settlement feed whose
// subscriber crashes mid-stream, restarts, re-activates its
// subscription under the same durable identity, and receives every
// trade it missed — exactly once, thanks to a file-backed dedup set and
// a file-backed publisher outbox (real stable storage on disk).
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/store"
)

// Settlement is a certified obvent: its type demands that disconnected
// subscribers eventually deliver it.
type Settlement struct {
	obvent.Base
	obvent.CertifiedBase
	TradeID int
	Amount  float64
}

func main() {
	dir, err := os.MkdirTemp("", "govents-certified")
	must(err)
	defer os.RemoveAll(dir)

	net := netsim.New(netsim.Config{})
	defer net.Close()

	// Publisher with a file-backed outbox (survives anything).
	outbox, err := store.OpenFileLog(filepath.Join(dir, "outbox.log"))
	must(err)
	pubEp, err := net.NewEndpoint("settler")
	must(err)
	pubReg := obvent.NewRegistry()
	pubReg.MustRegister(Settlement{})
	pubNode := dace.NewNode(pubEp, pubReg, dace.Config{
		CertLog:   outbox,
		Multicast: multicast.Options{RetransmitInterval: 5 * time.Millisecond},
	})
	pub := core.NewEngine("settler", pubNode, core.WithRegistry(pubReg))
	defer pub.Close()

	// Subscriber with a file-backed dedup set (its stable storage).
	dedupPath := filepath.Join(dir, "delivered.set")
	var mu sync.Mutex
	var received []int

	startSubscriber := func(addr string) (*core.Engine, *dace.Node) {
		dedup, err := store.OpenFileSet(dedupPath)
		must(err)
		ep, err := net.NewEndpoint(addr)
		must(err)
		reg := obvent.NewRegistry()
		reg.MustRegister(Settlement{})
		node := dace.NewNode(ep, reg, dace.Config{
			CertDedup: dedup,
			DurableID: "settlement-desk", // paper: activate(id)
			Multicast: multicast.Options{RetransmitInterval: 5 * time.Millisecond},
		})
		eng := core.NewEngine(addr, node, core.WithRegistry(reg))
		sub, err := core.Subscribe(eng, nil, func(s Settlement) {
			mu.Lock()
			received = append(received, s.TradeID)
			mu.Unlock()
			fmt.Printf("[desk@%s] settled trade %d (%.2f)\n", addr, s.TradeID, s.Amount)
		})
		must(err)
		must(sub.ActivateDurable("settlement-desk"))
		return eng, node
	}

	subEng, subNode := startSubscriber("desk-1")
	pubNode.SetPeers([]string{"settler", "desk-1"})
	subNode.SetPeers([]string{"settler", "desk-1"})
	waitUntil(func() bool { return pubNode.RemoteSubscriptionCount() >= 1 })

	// Trades 1-2 arrive normally.
	for i := 1; i <= 2; i++ {
		must(core.Publish(pub, Settlement{TradeID: i, Amount: float64(100 * i)}))
	}
	waitUntil(func() bool { mu.Lock(); defer mu.Unlock(); return len(received) == 2 })

	// The desk crashes. Trades 3-4 are published while it is down.
	fmt.Println("[desk] CRASH")
	net.Crash("desk-1")
	_ = subEng.Close()
	for i := 3; i <= 4; i++ {
		must(core.Publish(pub, Settlement{TradeID: i, Amount: float64(100 * i)}))
	}
	time.Sleep(50 * time.Millisecond)

	// The desk restarts at a NEW address with the same durable
	// identity and the same on-disk dedup set.
	fmt.Println("[desk] RESTART at desk-2")
	_, subNode2 := startSubscriber("desk-2")
	pubNode.SetPeers([]string{"settler", "desk-2"})
	subNode2.SetPeers([]string{"settler", "desk-2"})

	waitUntil(func() bool { mu.Lock(); defer mu.Unlock(); return len(received) == 4 })
	time.Sleep(50 * time.Millisecond) // redeliveries would land by now

	mu.Lock()
	seen := make(map[int]int)
	for _, id := range received {
		seen[id]++
	}
	mu.Unlock()
	for id := 1; id <= 4; id++ {
		if seen[id] != 1 {
			panic(fmt.Sprintf("trade %d delivered %d times", id, seen[id]))
		}
	}
	fmt.Println("certified: all 4 trades delivered exactly once across the crash: ok")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	panic("timeout")
}
