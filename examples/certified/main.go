// Certified delivery across a subscriber crash (paper §3.1.2 Certified
// semantics + §3.4.1 durable activation) on the public govents API: a
// trade-settlement feed whose subscriber crashes mid-stream, restarts,
// re-activates its subscription under the same durable identity, and
// receives every trade it missed — exactly once, thanks to a
// file-backed dedup set and a file-backed publisher outbox
// (govents.WithCertifiedStores, real stable storage on disk).
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"govents"
	"govents/netsim"
	"govents/obvent"
	"govents/store"
)

// Settlement is a certified obvent: its type demands that disconnected
// subscribers eventually deliver it.
type Settlement struct {
	obvent.Base
	obvent.CertifiedBase
	TradeID int
	Amount  float64
}

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "govents-certified")
	must(err)
	defer os.RemoveAll(dir)

	net := netsim.New(netsim.Config{})
	defer net.Close()

	// Publisher with a file-backed outbox (survives anything).
	outbox, err := store.OpenFileLog(filepath.Join(dir, "outbox.log"))
	must(err)
	pubEp, err := net.NewEndpoint("settler")
	must(err)
	pub, err := govents.Open(ctx, "settler",
		govents.WithTransport(pubEp),
		govents.WithCertifiedStores(outbox, nil),
		govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
	)
	must(err)
	defer pub.Close(ctx)

	// Subscriber with a file-backed dedup set (its stable storage).
	dedupPath := filepath.Join(dir, "delivered.set")
	var mu sync.Mutex
	var received []int

	startSubscriber := func(addr string) *govents.Domain {
		dedup, err := store.OpenFileSet(dedupPath)
		must(err)
		ep, err := net.NewEndpoint(addr)
		must(err)
		d, err := govents.Open(ctx, addr,
			govents.WithTransport(ep),
			govents.WithCertifiedStores(nil, dedup),
			govents.WithDurableID("settlement-desk"), // paper: activate(id)
			govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
		)
		must(err)
		sub, err := govents.SubscribeInactive(d, nil, func(s Settlement) {
			mu.Lock()
			received = append(received, s.TradeID)
			mu.Unlock()
			fmt.Printf("[desk@%s] settled trade %d (%.2f)\n", addr, s.TradeID, s.Amount)
		})
		must(err)
		must(sub.ActivateDurable("settlement-desk"))
		return d
	}

	desk := startSubscriber("desk-1")
	must(pub.SetPeers("settler", "desk-1"))
	must(desk.SetPeers("settler", "desk-1"))
	waitUntil(func() bool { return pub.RemoteSubscriptionCount() >= 1 })

	// Trades 1-2 arrive normally.
	for i := 1; i <= 2; i++ {
		must(pub.Publish(ctx, Settlement{TradeID: i, Amount: float64(100 * i)}))
	}
	waitUntil(func() bool { mu.Lock(); defer mu.Unlock(); return len(received) == 2 })

	// The desk crashes. Trades 3-4 are published while it is down.
	fmt.Println("[desk] CRASH")
	net.Crash("desk-1")
	_ = desk.Close(ctx)
	for i := 3; i <= 4; i++ {
		must(pub.Publish(ctx, Settlement{TradeID: i, Amount: float64(100 * i)}))
	}
	time.Sleep(50 * time.Millisecond)

	// The desk restarts at a NEW address with the same durable
	// identity and the same on-disk dedup set.
	fmt.Println("[desk] RESTART at desk-2")
	desk2 := startSubscriber("desk-2")
	defer desk2.Close(ctx)
	must(pub.SetPeers("settler", "desk-2"))
	must(desk2.SetPeers("settler", "desk-2"))

	waitUntil(func() bool { mu.Lock(); defer mu.Unlock(); return len(received) == 4 })
	time.Sleep(50 * time.Millisecond) // redeliveries would land by now

	mu.Lock()
	seen := make(map[int]int)
	for _, id := range received {
		seen[id]++
	}
	mu.Unlock()
	for id := 1; id <= 4; id++ {
		if seen[id] != 1 {
			panic(fmt.Sprintf("trade %d delivered %d times", id, seen[id]))
		}
	}
	fmt.Println("certified: all 4 trades delivered exactly once across the crash: ok")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	panic("timeout")
}
