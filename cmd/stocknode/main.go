// Command stocknode runs one govents domain member over real TCP
// sockets: a publisher streaming synthetic stock quotes or a subscriber
// with a migratable price/company filter. It demonstrates the full
// public API — Domain, DACE dissemination, multicast protocols, TCP
// transport — outside the simulator.
//
// Start a subscriber, then a publisher:
//
//	stocknode -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002 \
//	          -mode sub -max-price 100 -company Company-001
//	stocknode -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7002 \
//	          -mode pub -count 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"govents"
	"govents/filter"
	"govents/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stocknode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7001", "TCP listen address")
	peersFlag := flag.String("peers", "", "comma-separated peer addresses (including self)")
	mode := flag.String("mode", "sub", "pub or sub")
	count := flag.Int("count", 20, "pub: quotes to publish")
	rate := flag.Duration("rate", 50*time.Millisecond, "pub: publish interval")
	maxPrice := flag.Float64("max-price", 0, "sub: only quotes cheaper than this (0 = all)")
	company := flag.String("company", "", "sub: only quotes for this company (empty = all)")
	seed := flag.Int64("seed", 42, "pub: workload seed")
	lanes := flag.Int("lanes", 0, "parallel dispatch lanes (0 = GOMAXPROCS)")
	placementFlag := flag.String("placement", "publisher", "remote filter placement: subscriber or publisher")
	adTTL := flag.Duration("ad-ttl", 0, "ad-stream GC TTL (0 = disabled; set uniformly on all nodes)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address and print per-stage latency quantiles on exit (empty = off)")
	flag.Parse()

	ctx := context.Background()

	var placement govents.Placement
	switch *placementFlag {
	case "publisher":
		placement = govents.AtPublisher
	case "subscriber":
		placement = govents.AtSubscriber
	default:
		return fmt.Errorf("unknown -placement %q (want subscriber or publisher)", *placementFlag)
	}

	tr, err := govents.ListenTCP(*listen)
	if err != nil {
		return err
	}
	peers := []string{tr.Addr()}
	if *peersFlag != "" {
		peers = strings.Split(*peersFlag, ",")
	}

	opts := []govents.Option{
		govents.WithTransport(tr),
		govents.WithPeers(peers...),
		govents.WithPlacement(placement),
		govents.WithDispatchLanes(*lanes),
		govents.WithAdTTL(*adTTL),
	}
	if *metricsAddr != "" {
		opts = append(opts, govents.WithMetricsAddr(*metricsAddr))
	}
	d, err := govents.Open(ctx, tr.Addr(), opts...)
	if err != nil {
		return err
	}
	defer d.Close(ctx)
	if *metricsAddr != "" {
		fmt.Printf("metrics: http://%s/metrics\n", d.MetricsAddr())
		defer printStageLatencies(d)
	}
	workload.RegisterTypes(d.Registry())
	fmt.Printf("stocknode: %s mode=%s peers=%v\n", d.Addr(), *mode, peers)

	switch *mode {
	case "pub":
		// Give subscription advertisements a moment to arrive.
		time.Sleep(300 * time.Millisecond)
		gen := workload.NewQuoteGen(*seed, 10)
		for i := 0; i < *count; i++ {
			q := gen.Next()
			if err := d.Publish(ctx, q); err != nil {
				return err
			}
			fmt.Printf("published %-12s %8.2f x%-3d\n", q.Company, q.Price, q.Amount)
			time.Sleep(*rate)
		}
		// Let retransmissions drain.
		time.Sleep(300 * time.Millisecond)
		printRoutingStats(d)
		return nil

	case "sub":
		var conj []*filter.Expr
		if *maxPrice > 0 {
			conj = append(conj, filter.Path("GetPrice").Lt(filter.Float(*maxPrice)))
		}
		if *company != "" {
			conj = append(conj, filter.Path("GetCompany").Eq(filter.Str(*company)))
		}
		var f *filter.Expr
		if len(conj) > 0 {
			f = filter.And(conj...)
		}
		sub, err := govents.Subscribe(d, f, func(q workload.StockQuote) {
			fmt.Printf("received  %-12s %8.2f x%-3d\n", q.Company, q.Price, q.Amount)
		})
		if err != nil {
			return err
		}
		fmt.Println("subscribed; ctrl-c to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		st := d.Stats()
		fmt.Printf("dispatch: lanes=%d in=%d matched=%d delivered=%d expired=%d decode-errors=%d panics=%d\n",
			d.DispatchLanes(), st.EventsIn, st.Matched, st.Delivered, st.Expired, st.DecodeErrors, st.HandlerPanics)
		fmt.Printf("wire: compiles=%d rejects=%d encodes=%d decodes=%d gob-enc=%d gob-dec=%d downgrades=%d partial-decodes=%d materializations=%d\n",
			st.WireCompiles, st.WireRejects, st.WireEncodes, st.WireDecodes,
			st.GobPayloadEncodes, st.GobPayloadDecodes, st.WireDowngrades,
			st.PartialDecodes, st.WireMaterializations)
		for _, l := range d.LaneStats() {
			name := fmt.Sprintf("lane %d ", l.Lane)
			if l.Serial {
				name = "serial "
			}
			fmt.Printf("  %-8s routed=%-6d dispatched=%-6d delivered=%-6d queued=%d\n",
				name, l.Enqueued, l.Stats.EventsIn, l.Stats.Delivered, l.Queued)
		}
		printRoutingStats(d)
		return sub.Deactivate()

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// printStageLatencies dumps the telemetry plane's per-stage latency
// quantiles in pipeline order, skipping stages that never ran.
func printStageLatencies(d *govents.Domain) {
	stages := d.Histograms()
	fmt.Printf("stage latencies: %-18s %10s %10s %10s %10s %10s\n",
		"", "count", "p50", "p90", "p99", "max")
	for _, name := range []string{"publish_to_route", "route_to_write", "wire_to_lane", "lane_wait", "dispatch", "e2e"} {
		snap := stages[name]
		if snap.Count == 0 {
			continue
		}
		fmt.Printf("  %-32s %10d %10v %10v %10v %10v\n",
			name, snap.Count, snap.Quantile(0.5), snap.Quantile(0.9), snap.Quantile(0.99),
			time.Duration(snap.Max))
	}
	dropped := d.DroppedByReason()
	var total uint64
	for _, n := range dropped {
		total += n
	}
	if total > 0 {
		fmt.Printf("dropped:")
		for _, reason := range []string{"expired", "decode_error", "handler_panic", "executor_closed"} {
			if n := dropped[reason]; n > 0 {
				fmt.Printf(" %s=%d", reason, n)
			}
		}
		fmt.Println()
	}
}

// printRoutingStats dumps the domain's routing-plane counters, overall
// and broken out per obvent class.
func printRoutingStats(d *govents.Domain) {
	st := d.RoutingStats()
	fmt.Printf("routing: ads-applied=%d ads-stale=%d ads-deferred=%d ads-heartbeat=%d ads-rejected=%d nodes-expired=%d plans=%d events=%d compound-evals=%d pruned=%d fallback=%d partial-decodes=%d materializations=%d\n",
		st.AdsApplied, st.AdsStale, st.AdsDeferred, st.AdsRefreshed, st.AdsRejected, st.NodesExpired, st.PlansCompiled,
		st.EventsRouted, st.CompoundEvals, st.NodesPruned, st.FallbackEvals, st.PartialDecodes, st.WireMaterializations)
	byClass := d.RoutingStatsByClass()
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cs := byClass[c]
		if cs.EventsRouted == 0 {
			continue
		}
		fmt.Printf("  %-40s events=%-6d compound-evals=%-6d pruned=%-6d fallback=%d\n",
			c, cs.EventsRouted, cs.CompoundEvals, cs.NodesPruned, cs.FallbackEvals)
	}
}
