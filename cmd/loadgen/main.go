// Command loadgen regenerates the experiment series of EXPERIMENTS.md:
// for each experiment it runs the workload sweep and prints one table
// of rows. The paper's evaluation is qualitative (it publishes no
// measurement tables); these experiments validate each of its
// performance claims on the simulated substrate — see DESIGN.md §4.
//
// The whole harness runs on the public govents API: domains over the
// simulated network, public filter/workload/matching packages, and the
// baseline abstractions (topics, content, tuple space, RMI).
//
// Usage:
//
//	loadgen            # run all experiments
//	loadgen -exp C1    # run one experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govents"
	"govents/content"
	"govents/filter"
	"govents/matching"
	"govents/netsim"
	"govents/rmi"
	"govents/tuplespace"
	"govents/workload"
)

var ctx = context.Background()

// defaultPlacement is the filter placement experiments use unless they
// pin one explicitly (set by -placement).
var defaultPlacement = govents.AtSubscriber

// showMetrics makes closeAll print each run's folded per-stage latency
// quantiles (set by -metrics).
var showMetrics = false

func main() {
	exp := flag.String("exp", "all", "experiment to run: C1, C2, C3, C4, C5, C6, C7, C8, C9, C10 or all")
	placement := flag.String("placement", "subscriber", "default remote filter placement: subscriber or publisher")
	metrics := flag.Bool("metrics", false, "print per-stage latency quantiles (p50/p90/p99/max) after each run")
	flag.Parse()
	showMetrics = *metrics

	switch *placement {
	case "subscriber":
		defaultPlacement = govents.AtSubscriber
	case "publisher":
		defaultPlacement = govents.AtPublisher
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -placement %q (want subscriber or publisher)\n", *placement)
		os.Exit(2)
	}

	experiments := map[string]func(){
		"C1": expC1, "C2": expC2, "C3": expC3,
		"C4": expC4, "C5": expC5, "C6": expC6,
		"C7": expC7, "C8": expC8, "C9": expC9,
		"C10": expC10,
	}
	if *exp == "all" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			experiments[n]()
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "loadgen: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func fastTuning() govents.Tuning {
	return govents.Tuning{RetransmitInterval: 5 * time.Millisecond, GossipPeriod: 3 * time.Millisecond}
}

// domain builds n connected govents domains over a netsim network.
func domain(net *netsim.Network, n int, opts ...govents.Option) []*govents.Domain {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%02d", i)
	}
	domains := make([]*govents.Domain, n)
	for i, addr := range addrs {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			panic(err)
		}
		all := append([]govents.Option{
			govents.WithTransport(ep),
			govents.WithPlacement(defaultPlacement),
			govents.WithTuning(fastTuning()),
		}, opts...)
		d, err := govents.Open(ctx, addr, all...)
		if err != nil {
			panic(err)
		}
		workload.RegisterTypes(d.Registry())
		domains[i] = d
	}
	for _, d := range domains {
		if err := d.SetPeers(addrs...); err != nil {
			panic(err)
		}
	}
	return domains
}

func closeAll(domains []*govents.Domain) {
	if showMetrics {
		printStageQuantiles(domains)
	}
	for _, d := range domains {
		_ = d.Close(ctx)
	}
}

// stageOrder lists the pipeline stages in flow order for printing.
var stageOrder = []string{"publish_to_route", "route_to_write", "wire_to_lane", "lane_wait", "dispatch", "e2e"}

// printStageQuantiles folds the per-stage latency histograms of all
// domains in a run and prints one quantile row per populated stage.
func printStageQuantiles(domains []*govents.Domain) {
	folded := map[string]govents.StageSnapshot{}
	for _, d := range domains {
		for name, snap := range d.Histograms() {
			merged := folded[name]
			merged.Merge(snap)
			folded[name] = merged
		}
	}
	fmt.Printf("    %-18s %10s %12s %12s %12s %12s\n", "stage", "count", "p50", "p90", "p99", "max")
	for _, name := range stageOrder {
		snap := folded[name]
		if snap.Count == 0 {
			continue
		}
		fmt.Printf("    %-18s %10d %12v %12v %12v %12v\n",
			name, snap.Count, snap.Quantile(0.5), snap.Quantile(0.9), snap.Quantile(0.99),
			time.Duration(snap.Max))
	}
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// --- C1: filter placement & factoring (paper §2.3.2) ---

func expC1() {
	fmt.Println("\n== C1a: remote (publisher-side) vs local (subscriber-side) filtering ==")
	fmt.Println("claim: migrating filters to the publisher saves network messages (§2.3.2)")
	fmt.Printf("%-12s %14s %14s %8s\n", "selectivity", "msgs@subscr", "msgs@publshr", "saving")

	for _, selectivity := range []float64{0.01, 0.10, 0.50, 1.00} {
		run := func(p govents.Placement) (int64, govents.RoutingStats, govents.DispatchStats) {
			net := netsim.New(netsim.Config{})
			defer net.Close()
			domains := domain(net, 2, govents.WithPlacement(p))
			defer closeAll(domains)

			var got atomic.Int64
			threshold := 1000 * selectivity // prices uniform in [1,1000)
			f := filter.Path("GetPrice").Lt(filter.Float(threshold))
			if _, err := govents.Subscribe(domains[1], f, func(q workload.StockQuote) { got.Add(1) }); err != nil {
				panic(err)
			}
			waitUntil(5*time.Second, func() bool { return domains[0].RemoteSubscriptionCount() >= 1 })
			net.Settle()
			net.ResetStats()

			gen := workload.NewQuoteGen(1, 20)
			const quotes = 200
			want := int64(0)
			for i := 0; i < quotes; i++ {
				q := gen.Next()
				if q.Price < threshold {
					want++
				}
				_ = domains[0].Publish(ctx, q)
			}
			waitUntil(10*time.Second, func() bool { return got.Load() == want })
			net.Settle()
			sent, _, _, _ := net.Stats()
			return sent, domains[0].RoutingStats(), domains[0].Stats()
		}
		atSub, _, _ := run(govents.AtSubscriber)
		atPub, rst, dst := run(govents.AtPublisher)
		fmt.Printf("%-12.2f %14d %14d %7.1f%%\n", selectivity, atSub, atPub, 100*(1-float64(atPub)/float64(atSub)))
		fmt.Printf("             routing@publisher: events=%d compound-evals=%d pruned=%d fallback=%d plans=%d ads=%d partial-decodes=%d materializations=%d\n",
			rst.EventsRouted, rst.CompoundEvals, rst.NodesPruned, rst.FallbackEvals, rst.PlansCompiled, rst.AdsApplied,
			rst.PartialDecodes, rst.WireMaterializations)
		fmt.Printf("             wire@publisher:    encodes=%d gob-encodes=%d downgrades=%d\n",
			dst.WireEncodes, dst.GobPayloadEncodes, dst.WireDowngrades)
	}

	fmt.Println("\n== C1b: compound filter factoring ([ASS+99]) ==")
	fmt.Println("claim: factoring redundant filters of many subscribers improves matching")
	fmt.Printf("%-8s %12s %12s %8s %12s\n", "subs", "naive ns/ev", "compound", "speedup", "uniqueconds")
	gen := workload.NewQuoteGen(2, 20)
	for _, subs := range []int{10, 100, 1000} {
		c := matching.New()
		for i, spec := range gen.Interests(subs) {
			if err := c.Add(fmt.Sprintf("s%04d", i), spec.Filter()); err != nil {
				panic(err)
			}
		}
		q := gen.Next()
		const evs = 2000
		start := time.Now()
		for i := 0; i < evs; i++ {
			c.MatchNaive(q)
		}
		naive := time.Since(start).Nanoseconds() / evs
		start = time.Now()
		for i := 0; i < evs; i++ {
			c.Match(q)
		}
		compound := time.Since(start).Nanoseconds() / evs
		st := c.Stats()
		fmt.Printf("%-8d %12d %12d %7.1fx %6d/%d\n", subs, naive, compound,
			float64(naive)/float64(compound), st.UniqueConds, st.TotalConds)
	}
}

// --- C2: cost of delivery semantics (paper §3.1.2) ---

func expC2() {
	fmt.Println("\n== C2: cost of composable delivery semantics (§3.1.2) ==")
	fmt.Println("claim: stronger semantics cost more; the application pays only for what the type requests")
	fmt.Printf("%-12s %14s %14s\n", "semantics", "events/sec", "wire msgs/ev")

	publish := map[string]func(d *govents.Domain, q workload.StockObvent) error{
		"unreliable": func(d *govents.Domain, q workload.StockObvent) error {
			return d.Publish(ctx, workload.StockQuote{StockObvent: q})
		},
		"reliable": func(d *govents.Domain, q workload.StockObvent) error {
			return d.Publish(ctx, workload.QuoteReliable{StockObvent: q})
		},
		"fifo": func(d *govents.Domain, q workload.StockObvent) error {
			return d.Publish(ctx, workload.QuoteFIFO{StockObvent: q})
		},
		"causal": func(d *govents.Domain, q workload.StockObvent) error {
			return d.Publish(ctx, workload.QuoteCausal{StockObvent: q})
		},
		"total": func(d *govents.Domain, q workload.StockObvent) error {
			return d.Publish(ctx, workload.QuoteTotal{StockObvent: q})
		},
		"certified": func(d *govents.Domain, q workload.StockObvent) error {
			return d.Publish(ctx, workload.QuoteCertified{StockObvent: q})
		},
	}
	order := []string{"unreliable", "reliable", "fifo", "causal", "total", "certified"}

	for _, sem := range order {
		net := netsim.New(netsim.Config{})
		domains := domain(net, 4)

		var got atomic.Int64
		for _, d := range domains[1:] {
			if _, err := govents.Subscribe(d, nil, func(o workload.StockObvent) { got.Add(1) }); err != nil {
				panic(err)
			}
		}
		waitUntil(5*time.Second, func() bool { return domains[0].RemoteSubscriptionCount() >= 3 })
		net.Settle()
		net.ResetStats()

		gen := workload.NewQuoteGen(3, 10)
		const events = 200
		want := int64(events * 3)
		start := time.Now()
		for i := 0; i < events; i++ {
			if err := publish[sem](domains[0], gen.Next().StockObvent); err != nil {
				panic(err)
			}
		}
		ok := waitUntil(30*time.Second, func() bool { return got.Load() >= want })
		elapsed := time.Since(start)
		net.Settle()
		sent, _, _, _ := net.Stats()
		rate := float64(events) / elapsed.Seconds()
		if !ok {
			fmt.Printf("%-12s INCOMPLETE (%d/%d)\n", sem, got.Load(), want)
		} else {
			fmt.Printf("%-12s %14.0f %14.1f\n", sem, rate, float64(sent)/events)
		}
		closeAll(domains)
		_ = net.Close()
	}
}

// --- C3: gossip scalability (paper §4.2, [EGH+01]) ---

func expC3() {
	fmt.Println("\n== C3: gossip dissemination vs group size under 20% loss ==")
	fmt.Println("claim: gossip delivers with high probability at per-node cost independent of group size")
	fmt.Printf("%-8s %14s %14s %16s\n", "nodes", "delivery%", "msgs/node", "reliable msgs/node")

	for _, n := range []int{8, 16, 32, 64} {
		// Gossip run.
		gossipRatio, gossipMsgs := gossipRun(n, true)
		// Reliable unicast-fanout run (publisher pays O(n) + retries).
		_, relMsgs := gossipRun(n, false)
		fmt.Printf("%-8d %13.1f%% %14.1f %16.1f\n", n, gossipRatio*100, gossipMsgs, relMsgs)
	}
}

func gossipRun(n int, gossip bool) (ratio float64, msgsPerNode float64) {
	net := netsim.New(netsim.Config{LossRate: 0.2, Seed: int64(n)})
	defer net.Close()
	tuning := fastTuning()
	// lpbcast-style provisioning: fanout ~ log2(n)+2, generous rounds —
	// per-node cost still stays flat while delivery probability holds.
	tuning.GossipFanout = 2
	for m := n; m > 1; m /= 2 {
		tuning.GossipFanout++
	}
	tuning.GossipRounds = 12
	opts := []govents.Option{govents.WithTuning(tuning)}
	if gossip {
		opts = append(opts, govents.WithGossipUnreliable())
	}
	domains := domain(net, n, opts...)
	defer closeAll(domains)

	var got atomic.Int64
	for _, d := range domains[1:] {
		var err error
		if gossip {
			_, err = govents.Subscribe(d, nil, func(q workload.StockQuote) { got.Add(1) })
		} else {
			_, err = govents.Subscribe(d, nil, func(q workload.QuoteReliable) { got.Add(1) })
		}
		if err != nil {
			panic(err)
		}
	}
	waitUntil(10*time.Second, func() bool { return domains[0].RemoteSubscriptionCount() >= n-1 })
	net.Settle()
	net.ResetStats()

	gen := workload.NewQuoteGen(5, 5)
	const events = 10
	for i := 0; i < events; i++ {
		if gossip {
			_ = domains[0].Publish(ctx, gen.Next())
		} else {
			_ = domains[0].Publish(ctx, workload.QuoteReliable{StockObvent: gen.Next().StockObvent})
		}
	}
	want := int64(events * (n - 1))
	waitUntil(15*time.Second, func() bool { return got.Load() >= want })
	net.Settle()
	sent, _, _, _ := net.Stats()
	return float64(got.Load()) / float64(want), float64(sent) / float64(events) / float64(n)
}

// --- C4: subscription-scheme baselines (paper §2.3.2, §5, §6) ---

func expC4() {
	fmt.Println("\n== C4: matching cost across subscription schemes ==")
	fmt.Println("claim: type-based+filters buys content selectivity at modest cost over topics;")
	fmt.Println("       tuple spaces and attribute maps are weakly typed baselines")
	fmt.Printf("%-22s %14s\n", "scheme (1000 subs)", "ns/event")

	const subs = 1000
	gen := workload.NewQuoteGen(7, 20)
	specs := gen.Interests(subs)
	q := gen.Next()
	const evs = 2000

	// Type-based + compound filters (this paper).
	comp := matching.New()
	for i, s := range specs {
		_ = comp.Add(fmt.Sprintf("s%d", i), s.Filter())
	}
	start := time.Now()
	for i := 0; i < evs; i++ {
		comp.Match(q)
	}
	fmt.Printf("%-22s %14d\n", "type-based+compound", time.Since(start).Nanoseconds()/evs)

	// Topic-based: company as topic; price selectivity inexpressible.
	// The sibling abstractions hang off one local domain facade.
	local, err := govents.Open(ctx, "c4-baselines")
	if err != nil {
		panic(err)
	}
	defer local.Close(ctx)
	tb := local.Topics()
	for _, s := range specs {
		_, _ = tb.Subscribe("stocks."+s.Company, func(string, any) {})
	}
	start = time.Now()
	for i := 0; i < evs; i++ {
		tb.Publish("stocks."+q.Company, q)
	}
	fmt.Printf("%-22s %14d   (cannot express price predicate)\n", "topic-based", time.Since(start).Nanoseconds()/evs)

	// Content-based attribute maps.
	cb := content.New()
	for _, s := range specs {
		_, _ = cb.Subscribe([]content.Pred{
			{Attr: "company", Op: content.Eq, Val: s.Company},
			{Attr: "price", Op: content.Lt, Val: s.MaxPrice},
		}, func(content.Event) {})
	}
	ev := content.Event{"company": q.Company, "price": q.Price, "amount": q.Amount}
	start = time.Now()
	for i := 0; i < evs; i++ {
		cb.Publish(ev)
	}
	fmt.Printf("%-22s %14d   (encapsulation broken: raw attributes)\n", "content attr-value", time.Since(start).Nanoseconds()/evs)

	// Tuple space notify.
	ts := local.TupleSpace()
	for _, s := range specs {
		// Template matching has no range predicates: only exact
		// values/types (paper §5.1.2), so subscribe to the company
		// only.
		ts.Notify(tuplespace.Template{tuplespace.Val(s.Company), tuplespace.Type[float64]()}, func(tuplespace.Tuple) {})
	}
	start = time.Now()
	for i := 0; i < evs; i++ {
		_ = ts.Out(tuplespace.Tuple{q.Company, q.Price})
	}
	fmt.Printf("%-22s %14d   (templates: no range predicates)\n", "tuple space", time.Since(start).Nanoseconds()/evs)
}

// --- C5: thread policies (paper §3.3.5) ---

func expC5() {
	fmt.Println("\n== C5: handler thread policies under blocking handlers ==")
	fmt.Println("claim: multi-threading raises throughput for blocking handlers; single-threading serializes")
	fmt.Printf("%-16s %14s\n", "policy", "events/sec")

	for _, policy := range []string{"single", "multi(4)", "multi(unbounded)"} {
		d, err := govents.Open(ctx, "c5")
		if err != nil {
			panic(err)
		}
		const events = 64
		var wg sync.WaitGroup
		wg.Add(events)
		sub, err := govents.SubscribeInactive(d, nil, func(q workload.StockQuote) {
			time.Sleep(2 * time.Millisecond) // simulated I/O
			wg.Done()
		})
		if err != nil {
			panic(err)
		}
		switch policy {
		case "single":
			sub.SetSingleThreading()
		case "multi(4)":
			sub.SetMultiThreading(4)
		default:
			sub.SetMultiThreading(0)
		}
		if err := sub.Activate(); err != nil {
			panic(err)
		}
		gen := workload.NewQuoteGen(11, 5)
		start := time.Now()
		for i := 0; i < events; i++ {
			_ = d.Publish(ctx, gen.Next())
		}
		wg.Wait()
		fmt.Printf("%-16s %14.0f\n", policy, events/time.Since(start).Seconds())
		_ = d.Close(ctx)
	}
}

// --- C6: RMI vs publish/subscribe fanout (paper §5.4) ---

func expC6() {
	fmt.Println("\n== C6: notifying N receivers: RMI loop vs one publish ==")
	fmt.Println("claim: pub/sub scales to many receivers; RPC couples the sender to each receiver")
	fmt.Printf("%-8s %16s %16s\n", "N", "rmi ms/round", "pubsub ms/round")

	for _, n := range []int{1, 4, 16, 64} {
		rmiMs := rmiFanout(n)
		psMs := pubsubFanout(n)
		fmt.Printf("%-8d %16.2f %16.2f\n", n, rmiMs, psMs)
	}
}

func rmiFanout(n int) float64 {
	net := netsim.New(netsim.Config{MinLatency: 200 * time.Microsecond, MaxLatency: 400 * time.Microsecond})
	defer net.Close()
	callerEp, _ := net.NewEndpoint("caller")
	caller := rmi.New(callerEp, rmi.Options{})
	defer caller.Close()

	proxies := make([]*rmi.Proxy, n)
	for i := 0; i < n; i++ {
		ep, _ := net.NewEndpoint(fmt.Sprintf("recv-%02d", i))
		rt := rmi.New(ep, rmi.Options{})
		defer rt.Close()
		if err := rt.Bind("sink", &sink{}); err != nil {
			panic(err)
		}
		proxies[i] = caller.Dial(ep.Addr(), "sink")
	}

	const rounds = 20
	start := time.Now()
	for r := 0; r < rounds; r++ {
		// Synchronous RPC to every receiver, one by one (the paper's
		// point: the invoker blocks per receiver).
		for _, p := range proxies {
			if err := p.Call("Notify", []any{"quote", 80.0}); err != nil {
				panic(err)
			}
		}
	}
	return float64(time.Since(start).Milliseconds()) / rounds
}

// sink is the RMI receiver.
type sink struct{}

// Notify accepts a notification.
func (s *sink) Notify(what string, price float64) {}

func pubsubFanout(n int) float64 {
	net := netsim.New(netsim.Config{MinLatency: 200 * time.Microsecond, MaxLatency: 400 * time.Microsecond})
	defer net.Close()
	domains := domain(net, n+1)
	defer closeAll(domains)
	var got atomic.Int64
	for _, d := range domains[1:] {
		if _, err := govents.Subscribe(d, nil, func(q workload.QuoteReliable) { got.Add(1) }); err != nil {
			panic(err)
		}
	}
	waitUntil(10*time.Second, func() bool { return domains[0].RemoteSubscriptionCount() >= n })

	const rounds = 20
	gen := workload.NewQuoteGen(13, 5)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		want := got.Load() + int64(n)
		_ = domains[0].Publish(ctx, workload.QuoteReliable{StockObvent: gen.Next().StockObvent})
		waitUntil(10*time.Second, func() bool { return got.Load() >= want })
	}
	return float64(time.Since(start).Milliseconds()) / rounds
}

// --- C7: interest-aware sparse multicast (ordered & gossip classes) ---

func expC7() {
	fmt.Println("\n== C7: sparse interest: routing-aware ordered & gossip multicast ==")
	fmt.Println("claim: with pruning on (default), ordered/gossip wire cost tracks the interested set, not the group size")
	fmt.Printf("%-8s %-8s %12s %14s %8s %14s %13s\n", "class", "density", "msgs/ev", "msgs/ev(off)", "saving", "pruned-sends", "skip-frames")

	const n = 16
	for _, class := range []string{"fifo", "total", "gossip"} {
		for _, subs := range []int{1, 2, n - 1} {
			pruned, rst := sparseRun(class, n, subs, true)
			full, _ := sparseRun(class, n, subs, false)
			fmt.Printf("%-8s %3d/%-4d %12.1f %14.1f %7.1f%% %14d %13d\n",
				class, subs, n-1, pruned, full, 100*(1-pruned/full), rst.PrunedSends, rst.SkipFrames)
		}
	}
}

// sparseRun publishes one class to a domain where only `subs` of the
// n-1 other nodes subscribed, returning wire messages per event and the
// folded pruning counters (FIFO/causal prune at the publisher, total
// order at the sequencer).
func sparseRun(class string, n, subs int, prune bool) (msgsPerEvent float64, rst govents.RoutingStats) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	opts := []govents.Option{govents.WithOrderedPruning(prune)}
	if class == "gossip" {
		opts = append(opts, govents.WithGossipUnreliable())
	}
	domains := domain(net, n, opts...)
	defer closeAll(domains)

	var got atomic.Int64
	for _, d := range domains[1 : 1+subs] {
		var err error
		switch class {
		case "fifo":
			_, err = govents.Subscribe(d, nil, func(q workload.QuoteFIFO) { got.Add(1) })
		case "total":
			_, err = govents.Subscribe(d, nil, func(q workload.QuoteTotal) { got.Add(1) })
		default:
			_, err = govents.Subscribe(d, nil, func(q workload.StockQuote) { got.Add(1) })
		}
		if err != nil {
			panic(err)
		}
	}
	waitUntil(10*time.Second, func() bool { return domains[0].RemoteSubscriptionCount() >= subs })
	net.Settle()
	net.ResetStats()

	gen := workload.NewQuoteGen(17, 5)
	const events = 50
	for i := 0; i < events; i++ {
		q := gen.Next().StockObvent
		var err error
		switch class {
		case "fifo":
			err = domains[0].Publish(ctx, workload.QuoteFIFO{StockObvent: q})
		case "total":
			err = domains[0].Publish(ctx, workload.QuoteTotal{StockObvent: q})
		default:
			err = domains[0].Publish(ctx, workload.StockQuote{StockObvent: q})
		}
		if err != nil {
			panic(err)
		}
	}
	want := int64(events * subs)
	waitUntil(30*time.Second, func() bool { return got.Load() >= want })
	net.Settle()
	sent, _, _, _ := net.Stats()
	for _, d := range domains {
		st := d.RoutingStats()
		rst.PrunedSends += st.PrunedSends
		rst.SkipFrames += st.SkipFrames
	}
	return float64(sent) / events, rst
}

// --- C8: per-stage pipeline latency (telemetry plane) ---

func expC8() {
	fmt.Println("\n== C8: per-stage pipeline latency across two nodes ==")
	fmt.Println("claim: the telemetry plane decomposes delivery latency into pipeline stages;")
	fmt.Println("       end-to-end ~ publish-side + wire + lane-wait + dispatch")
	fmt.Printf("%-10s %-18s %10s %12s %12s %12s %12s\n", "class", "stage", "count", "p50", "p90", "p99", "max")

	for _, class := range []string{"unreliable", "fifo"} {
		net := netsim.New(netsim.Config{MinLatency: 200 * time.Microsecond, MaxLatency: 400 * time.Microsecond})
		domains := domain(net, 2)
		pub, sub := domains[0], domains[1]

		var got atomic.Int64
		var err error
		if class == "fifo" {
			_, err = govents.Subscribe(sub, nil, func(q workload.QuoteFIFO) { got.Add(1) })
		} else {
			_, err = govents.Subscribe(sub, nil, func(q workload.StockQuote) { got.Add(1) })
		}
		if err != nil {
			panic(err)
		}
		waitUntil(5*time.Second, func() bool { return pub.RemoteSubscriptionCount() >= 1 })
		net.Settle()

		gen := workload.NewQuoteGen(23, 5)
		const events = 500
		for i := 0; i < events; i++ {
			q := gen.Next().StockObvent
			if class == "fifo" {
				err = pub.Publish(ctx, workload.QuoteFIFO{StockObvent: q})
			} else {
				err = pub.Publish(ctx, workload.StockQuote{StockObvent: q})
			}
			if err != nil {
				panic(err)
			}
		}
		waitUntil(30*time.Second, func() bool { return got.Load() >= events })
		net.Settle()

		pubStages, subStages := pub.Histograms(), sub.Histograms()
		for _, name := range stageOrder {
			snap := pubStages[name]
			if sub := subStages[name]; sub.Count > snap.Count {
				snap = sub // wire/lane/dispatch/e2e live on the subscriber
			}
			if snap.Count == 0 {
				continue
			}
			fmt.Printf("%-10s %-18s %10d %12v %12v %12v %12v\n",
				class, name, snap.Count, snap.Quantile(0.5), snap.Quantile(0.9), snap.Quantile(0.99),
				time.Duration(snap.Max))
		}
		closeAll(domains)
		_ = net.Close()
	}
}

// --- C9: durable subscriptions: crash, catch-up, resume (paper §3.1.2, §3.4.1) ---

func expC9() {
	fmt.Println("\n== C9: durable subscriptions: crash, catch-up, resume ==")
	fmt.Println("claim: a durable identity recovers every certified event published while its host was")
	fmt.Println("       down — across a publisher crash too — and catch-up cost tracks the missed backlog")
	fmt.Printf("%-8s %8s %10s %10s %12s %12s\n", "sync", "missed", "caught", "staged", "catch-up", "per-event")

	for _, pol := range []struct {
		name string
		sync govents.SyncPolicy
	}{{"always", govents.SyncAlways}, {"batch", govents.SyncBatch}} {
		for _, missed := range []int{50, 200, 800} {
			caught, staged, catchUp := durableRun(pol.sync, missed)
			fmt.Printf("%-8s %8d %10d %10d %12v %12v\n",
				pol.name, missed, caught, staged, catchUp.Round(time.Microsecond),
				(catchUp / time.Duration(missed)).Round(time.Microsecond))
		}
	}
}

// durableRun publishes a warm-up batch to a live durable subscriber,
// crashes the subscriber, publishes `missed` more certified events,
// crash-restarts the publisher (the owed backlog must come back from
// its recovered outbox), then restarts the subscriber under the same
// durable identity and times the catch-up until every missed event has
// been delivered.
func durableRun(sync govents.SyncPolicy, missed int) (caught int64, staged uint64, catchUp time.Duration) {
	dir, err := os.MkdirTemp("", "loadgen-c9-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	g, err := govents.OpenGroup(ctx, 2, govents.GroupConfig{
		Durability: dir,
		Options: func(i int, addr string) []govents.Option {
			return []govents.Option{
				govents.WithTuning(fastTuning()),
				govents.WithDurabilityTuning(govents.DurabilityTuning{Sync: sync}),
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer g.Close(ctx)

	var got atomic.Int64
	subscribe := func(d *govents.Domain) {
		if _, err := govents.SubscribeDurable(d, "c9-sub", func(q workload.QuoteCertified) { got.Add(1) }); err != nil {
			panic(err)
		}
	}
	subscribe(g.Domain(1))
	if !waitUntil(10*time.Second, func() bool { return g.Domain(0).RemoteSubscriptionCount() >= 1 }) {
		panic("C9: subscription ad never reached the publisher")
	}

	gen := workload.NewQuoteGen(29, 5)
	publish := func(n int) {
		for i := 0; i < n; i++ {
			if err := g.Domain(0).Publish(ctx, workload.QuoteCertified{StockObvent: gen.Next().StockObvent}); err != nil {
				panic(err)
			}
		}
	}

	const warm = 5
	publish(warm)
	if !waitUntil(10*time.Second, func() bool { return got.Load() >= warm }) {
		panic("C9: warm-up batch never delivered")
	}

	// Subscriber down: the backlog accumulates, owed to its durable
	// identity, in the publisher's on-disk outbox.
	if err := g.Crash(ctx, 1); err != nil {
		panic(err)
	}
	publish(missed)

	// The publisher crashes too; the backlog must survive on disk.
	if err := g.Crash(ctx, 0); err != nil {
		panic(err)
	}
	if _, err := g.Restart(ctx, 0); err != nil {
		panic(err)
	}

	d1, err := g.Restart(ctx, 1)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	subscribe(d1)
	total := int64(warm + missed)
	if !waitUntil(time.Minute, func() bool { return got.Load() >= total }) {
		panic(fmt.Sprintf("C9: caught only %d of %d after restart", got.Load(), total))
	}
	catchUp = time.Since(start)
	g.Settle()
	return got.Load() - warm, d1.DurableStats().Staged, catchUp
}

// --- C10: overload resilience: bounded lanes, policies, slow consumers ---

func expC10() {
	fmt.Println("\n== C10: overload: hot publisher + wedged consumer under each policy ==")
	fmt.Println("claim: bounded lanes degrade explicitly — Block backpressures losslessly, DropOldest")
	fmt.Println("       sheds newest-preserving, Spill overflows to disk and recovers — while the")
	fmt.Println("       wedged consumer is quarantined and never blocks its co-hosted subscriptions")
	fmt.Printf("%-12s %8s %10s %8s %8s %8s %8s %12s %12s\n",
		"policy", "sent", "delivered", "shed", "spilled", "quarant", "drops", "e2e-p50", "e2e-p99")

	for _, pol := range []struct {
		name   string
		policy govents.OverloadPolicy
	}{
		{"block", govents.OverloadBlock},
		{"drop-oldest", govents.OverloadDropOldest},
		{"spill", govents.OverloadSpill},
	} {
		r := overloadRun(pol.policy)
		fmt.Printf("%-12s %8d %10d %8d %8d %8d %8d %12v %12v\n",
			pol.name, r.sent, r.delivered, r.shed, r.spilled, r.quarantines, r.slowDrops,
			r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond))
	}

	fmt.Println("\n== C10b: late-joining durable subscriber: returning identity vs old log ==")
	fmt.Println("claim: a returning durable identity backfills its whole owed log before going live,")
	fmt.Println("       at a cost tracking the log size; a fresh identity owes no history and joins")
	fmt.Println("       in constant time regardless of how old the log is")
	fmt.Printf("%8s %10s %12s %12s %12s\n", "log", "backfilled", "backfill", "per-event", "fresh-join")
	for _, logSize := range []int{100, 400, 1600} {
		caught, backfill, freshJoin := lateJoinRun(logSize)
		fmt.Printf("%8d %10d %12v %12v %12v\n",
			logSize, caught, backfill.Round(time.Microsecond),
			(backfill / time.Duration(logSize)).Round(time.Microsecond),
			freshJoin.Round(time.Microsecond))
	}
}

type overloadResult struct {
	sent, delivered        int
	shed, spilled          uint64
	quarantines, slowDrops uint64
	p50, p99               time.Duration
}

// overloadRun drives one hot-publisher burst at a consumer node hosting
// a wedged (never-returning) subscription next to a healthy one, with
// bounded lanes under the given policy, and reports the shed/spill
// accounting plus the healthy subscription's end-to-end latency.
func overloadRun(policy govents.OverloadPolicy) overloadResult {
	const burst = 4000
	net := netsim.New(netsim.Config{MaxLatency: 200 * time.Microsecond, Seed: 10})
	defer net.Close()

	newNode := func(addr string, opts ...govents.Option) *govents.Domain {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			panic(err)
		}
		d, err := govents.Open(ctx, addr, append([]govents.Option{
			govents.WithTransport(ep), govents.WithTuning(fastTuning()),
		}, opts...)...)
		if err != nil {
			panic(err)
		}
		workload.RegisterTypes(d.Registry())
		return d
	}

	conOpts := []govents.Option{
		govents.WithTelemetry(true),
		govents.WithDispatchLanes(4),
		govents.WithLaneQueueBound(256),
		govents.WithOverloadPolicy(policy),
		govents.WithSlowConsumerBudget(5*time.Millisecond, 256),
	}
	if policy == govents.OverloadSpill {
		dir, err := os.MkdirTemp("", "loadgen-c10-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		conOpts = append(conOpts, govents.WithDurability(dir))
	}
	pub := newNode("node-00")
	con := newNode("node-01", conOpts...)
	defer pub.Close(ctx)
	defer con.Close(ctx)
	for _, d := range []*govents.Domain{pub, con} {
		if err := d.SetPeers("node-00", "node-01"); err != nil {
			panic(err)
		}
	}

	release := make(chan struct{})
	defer close(release)
	wedged, err := govents.Subscribe(con, nil, func(q workload.QuoteReliable) { <-release })
	if err != nil {
		panic(err)
	}
	wedged.SetSingleThreading()
	var got atomic.Int64
	if _, err := govents.Subscribe(con, nil, func(q workload.QuoteReliable) { got.Add(1) }); err != nil {
		panic(err)
	}
	if !waitUntil(10*time.Second, func() bool { return pub.RemoteSubscriptionCount() >= 2 }) {
		panic("C10: subscription ads never reached the publisher")
	}

	gen := workload.NewQuoteGen(31, 5)
	for i := 0; i < burst; i++ {
		if err := pub.Publish(ctx, workload.QuoteReliable{StockObvent: gen.Next().StockObvent}); err != nil {
			panic(err)
		}
	}

	// Wait for the lanes to drain fully (memory and spill). Under the
	// lossless policies that means every event reached the healthy
	// subscription; under DropOldest the survivors did.
	if !waitUntil(time.Minute, func() bool {
		for _, l := range con.LaneStats() {
			if l.Queued != 0 || l.SpillBacklog != 0 {
				return false
			}
		}
		st := con.Stats()
		return got.Load()+int64(st.Shed) >= burst
	}) {
		panic(fmt.Sprintf("C10: lanes never drained under %v: got=%d stats=%+v",
			policy, got.Load(), con.Stats()))
	}

	st := con.Stats()
	r := overloadResult{
		sent: burst, delivered: int(got.Load()),
		shed: st.Shed, spilled: st.Spilled,
		quarantines: st.Quarantines, slowDrops: st.SlowConsumerDrops,
	}
	if e2e, ok := con.Histograms()["e2e"]; ok && e2e.Count > 0 {
		r.p50, r.p99 = e2e.Quantile(0.5), e2e.Quantile(0.99)
	}
	return r
}

// lateJoinRun builds an old certified log of logSize events — fully
// consumed by a resident durable subscriber while a second durable
// identity sits deactivated, owed everything — then times (a) the
// returning identity's synchronous backfill of the whole log and (b) a
// brand-new identity's join, which owes no history and goes live
// immediately (a fresh cursor starts at the log head by design).
func lateJoinRun(logSize int) (caught int64, backfill, freshJoin time.Duration) {
	dir, err := os.MkdirTemp("", "loadgen-c10b-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	g, err := govents.OpenGroup(ctx, 2, govents.GroupConfig{
		Durability: dir,
		Options: func(i int, addr string) []govents.Option {
			return []govents.Option{govents.WithTuning(fastTuning())}
		},
	})
	if err != nil {
		panic(err)
	}
	defer g.Close(ctx)

	var resident atomic.Int64
	if _, err := govents.SubscribeDurable(g.Domain(1), "resident", func(q workload.QuoteCertified) {
		resident.Add(1)
	}); err != nil {
		panic(err)
	}
	// The late joiner claims its identity up front (creating its durable
	// cursor), then leaves before anything is published.
	var late atomic.Int64
	lateSub, err := govents.SubscribeDurable(g.Domain(1), "late-joiner", func(q workload.QuoteCertified) {
		late.Add(1)
	})
	if err != nil {
		panic(err)
	}
	if err := lateSub.Deactivate(); err != nil {
		panic(err)
	}
	if !waitUntil(10*time.Second, func() bool { return g.Domain(0).RemoteSubscriptionCount() >= 1 }) {
		panic("C10b: subscription ad never reached the publisher")
	}

	gen := workload.NewQuoteGen(37, 5)
	for i := 0; i < logSize; i++ {
		if err := g.Domain(0).Publish(ctx, workload.QuoteCertified{StockObvent: gen.Next().StockObvent}); err != nil {
			panic(err)
		}
	}
	if !waitUntil(time.Minute, func() bool { return resident.Load() >= int64(logSize) }) {
		panic(fmt.Sprintf("C10b: resident consumed only %d of %d", resident.Load(), logSize))
	}

	// The identity returns: SubscribeDurable replays the whole owed log
	// synchronously before the subscription goes live.
	start := time.Now()
	if _, err := govents.SubscribeDurable(g.Domain(1), "late-joiner", func(q workload.QuoteCertified) {
		late.Add(1)
	}); err != nil {
		panic(err)
	}
	if !waitUntil(time.Minute, func() bool { return late.Load() >= int64(logSize) }) {
		panic(fmt.Sprintf("C10b: late joiner backfilled only %d of %d", late.Load(), logSize))
	}
	backfill = time.Since(start)

	// A brand-new identity against the same old log: no owed history, so
	// the join is log-size independent.
	start = time.Now()
	if _, err := govents.SubscribeDurable(g.Domain(1), "fresh", func(q workload.QuoteCertified) {}); err != nil {
		panic(err)
	}
	freshJoin = time.Since(start)
	g.Settle()
	return late.Load(), backfill, freshJoin
}
