// Command loadgen regenerates the experiment series of EXPERIMENTS.md:
// for each experiment it runs the workload sweep and prints one table
// of rows. The paper's evaluation is qualitative (it publishes no
// measurement tables); these experiments validate each of its
// performance claims on the simulated substrate — see DESIGN.md §4.
//
// Usage:
//
//	loadgen            # run all experiments
//	loadgen -exp C1    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govents/internal/content"
	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/filter"
	"govents/internal/matching"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/rmi"
	"govents/internal/routing"
	"govents/internal/topics"
	"govents/internal/tuplespace"
	"govents/internal/workload"
)

// defaultPlacement is the filter placement experiments use unless they
// pin one explicitly (set by -placement).
var defaultPlacement = dace.AtSubscriber

func main() {
	exp := flag.String("exp", "all", "experiment to run: C1, C2, C3, C4, C5, C6 or all")
	placement := flag.String("placement", "subscriber", "default remote filter placement: subscriber or publisher")
	flag.Parse()

	switch *placement {
	case "subscriber":
		defaultPlacement = dace.AtSubscriber
	case "publisher":
		defaultPlacement = dace.AtPublisher
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -placement %q (want subscriber or publisher)\n", *placement)
		os.Exit(2)
	}

	experiments := map[string]func(){
		"C1": expC1, "C2": expC2, "C3": expC3,
		"C4": expC4, "C5": expC5, "C6": expC6,
	}
	if *exp == "all" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			experiments[n]()
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "loadgen: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func fastOpts() multicast.Options {
	return multicast.Options{RetransmitInterval: 5 * time.Millisecond, GossipPeriod: 3 * time.Millisecond}
}

// domain builds n dace nodes + engines over a netsim network.
func domain(net *netsim.Network, n int, cfg dace.Config) (nodes []*dace.Node, engines []*core.Engine) {
	if cfg.Placement == 0 {
		cfg.Placement = defaultPlacement
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("node-%02d", i)
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			panic(err)
		}
		reg := obvent.NewRegistry()
		workload.RegisterTypes(reg)
		dn := dace.NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, core.WithRegistry(reg))
		nodes = append(nodes, dn)
		engines = append(engines, eng)
		addrs[i] = addr
	}
	for _, dn := range nodes {
		dn.SetPeers(addrs)
	}
	return nodes, engines
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// --- C1: filter placement & factoring (paper §2.3.2) ---

func expC1() {
	fmt.Println("\n== C1a: remote (publisher-side) vs local (subscriber-side) filtering ==")
	fmt.Println("claim: migrating filters to the publisher saves network messages (§2.3.2)")
	fmt.Printf("%-12s %14s %14s %8s\n", "selectivity", "msgs@subscr", "msgs@publshr", "saving")

	for _, selectivity := range []float64{0.01, 0.10, 0.50, 1.00} {
		run := func(p dace.Placement) (int64, routing.Stats) {
			net := netsim.New(netsim.Config{})
			defer net.Close()
			cfg := dace.Config{Placement: p, Multicast: fastOpts()}
			nodes, engines := domain(net, 2, cfg)
			defer engines[0].Close()
			defer engines[1].Close()

			var got atomic.Int64
			threshold := 1000 * selectivity // prices uniform in [1,1000)
			f := filter.Path("GetPrice").Lt(filter.Float(threshold))
			sub, err := core.Subscribe(engines[1], f, func(q workload.StockQuote) { got.Add(1) })
			if err != nil {
				panic(err)
			}
			if err := sub.Activate(); err != nil {
				panic(err)
			}
			waitUntil(5*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= 1 })
			net.Settle()
			net.ResetStats()

			gen := workload.NewQuoteGen(1, 20)
			const quotes = 200
			want := int64(0)
			for i := 0; i < quotes; i++ {
				q := gen.Next()
				if q.Price < threshold {
					want++
				}
				_ = core.Publish(engines[0], q)
			}
			waitUntil(10*time.Second, func() bool { return got.Load() == want })
			net.Settle()
			sent, _, _, _ := net.Stats()
			return sent, nodes[0].RoutingStats()
		}
		atSub, _ := run(dace.AtSubscriber)
		atPub, rst := run(dace.AtPublisher)
		fmt.Printf("%-12.2f %14d %14d %7.1f%%\n", selectivity, atSub, atPub, 100*(1-float64(atPub)/float64(atSub)))
		fmt.Printf("             routing@publisher: events=%d compound-evals=%d pruned=%d fallback=%d plans=%d ads=%d\n",
			rst.EventsRouted, rst.CompoundEvals, rst.NodesPruned, rst.FallbackEvals, rst.PlansCompiled, rst.AdsApplied)
	}

	fmt.Println("\n== C1b: compound filter factoring ([ASS+99]) ==")
	fmt.Println("claim: factoring redundant filters of many subscribers improves matching")
	fmt.Printf("%-8s %12s %12s %8s %12s\n", "subs", "naive ns/ev", "compound", "speedup", "uniqueconds")
	gen := workload.NewQuoteGen(2, 20)
	for _, subs := range []int{10, 100, 1000} {
		c := matching.New()
		for i, spec := range gen.Interests(subs) {
			if err := c.Add(fmt.Sprintf("s%04d", i), spec.Filter()); err != nil {
				panic(err)
			}
		}
		q := gen.Next()
		const evs = 2000
		start := time.Now()
		for i := 0; i < evs; i++ {
			c.MatchNaive(q)
		}
		naive := time.Since(start).Nanoseconds() / evs
		start = time.Now()
		for i := 0; i < evs; i++ {
			c.Match(q)
		}
		compound := time.Since(start).Nanoseconds() / evs
		st := c.Stats()
		fmt.Printf("%-8d %12d %12d %7.1fx %6d/%d\n", subs, naive, compound,
			float64(naive)/float64(compound), st.UniqueConds, st.TotalConds)
	}
}

// --- C2: cost of delivery semantics (paper §3.1.2) ---

func expC2() {
	fmt.Println("\n== C2: cost of composable delivery semantics (§3.1.2) ==")
	fmt.Println("claim: stronger semantics cost more; the application pays only for what the type requests")
	fmt.Printf("%-12s %14s %14s\n", "semantics", "events/sec", "wire msgs/ev")

	publish := map[string]func(e *core.Engine, q workload.StockObvent) error{
		"unreliable": func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.StockQuote{StockObvent: q})
		},
		"reliable": func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteReliable{StockObvent: q})
		},
		"fifo": func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteFIFO{StockObvent: q})
		},
		"causal": func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteCausal{StockObvent: q})
		},
		"total": func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteTotal{StockObvent: q})
		},
		"certified": func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteCertified{StockObvent: q})
		},
	}
	order := []string{"unreliable", "reliable", "fifo", "causal", "total", "certified"}

	for _, sem := range order {
		net := netsim.New(netsim.Config{})
		cfg := dace.Config{Multicast: fastOpts()}
		nodes, engines := domain(net, 4, cfg)

		var got atomic.Int64
		for _, e := range engines[1:] {
			sub, err := core.Subscribe(e, nil, func(o workload.StockObvent) { got.Add(1) })
			if err != nil {
				panic(err)
			}
			_ = sub.Activate()
		}
		waitUntil(5*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= 3 })
		net.Settle()
		net.ResetStats()

		gen := workload.NewQuoteGen(3, 10)
		const events = 200
		want := int64(events * 3)
		start := time.Now()
		for i := 0; i < events; i++ {
			if err := publish[sem](engines[0], gen.Next().StockObvent); err != nil {
				panic(err)
			}
		}
		ok := waitUntil(30*time.Second, func() bool { return got.Load() >= want })
		elapsed := time.Since(start)
		net.Settle()
		sent, _, _, _ := net.Stats()
		rate := float64(events) / elapsed.Seconds()
		if !ok {
			fmt.Printf("%-12s INCOMPLETE (%d/%d)\n", sem, got.Load(), want)
		} else {
			fmt.Printf("%-12s %14.0f %14.1f\n", sem, rate, float64(sent)/events)
		}
		for _, e := range engines {
			_ = e.Close()
		}
		_ = net.Close()
	}
}

// --- C3: gossip scalability (paper §4.2, [EGH+01]) ---

func expC3() {
	fmt.Println("\n== C3: gossip dissemination vs group size under 20% loss ==")
	fmt.Println("claim: gossip delivers with high probability at per-node cost independent of group size")
	fmt.Printf("%-8s %14s %14s %16s\n", "nodes", "delivery%", "msgs/node", "reliable msgs/node")

	for _, n := range []int{8, 16, 32, 64} {
		// Gossip run.
		gossipRatio, gossipMsgs := gossipRun(n, true)
		// Reliable unicast-fanout run (publisher pays O(n) + retries).
		_, relMsgs := gossipRun(n, false)
		fmt.Printf("%-8d %13.1f%% %14.1f %16.1f\n", n, gossipRatio*100, gossipMsgs, relMsgs)
	}
}

func gossipRun(n int, gossip bool) (ratio float64, msgsPerNode float64) {
	net := netsim.New(netsim.Config{LossRate: 0.2, Seed: int64(n)})
	defer net.Close()
	opts := fastOpts()
	// lpbcast-style provisioning: fanout ~ log2(n)+2, generous rounds —
	// per-node cost still stays flat while delivery probability holds.
	opts.GossipFanout = 2
	for m := n; m > 1; m /= 2 {
		opts.GossipFanout++
	}
	opts.GossipRounds = 12
	cfg := dace.Config{GossipUnreliable: gossip, Multicast: opts}
	if !gossip {
		// Force the reliable path for the comparison.
		cfg.GossipUnreliable = false
	}
	nodes, engines := domain(net, n, cfg)
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()

	var got atomic.Int64
	for _, e := range engines[1:] {
		var sub *core.Subscription
		var err error
		if gossip {
			sub, err = core.Subscribe(e, nil, func(q workload.StockQuote) { got.Add(1) })
		} else {
			sub, err = core.Subscribe(e, nil, func(q workload.QuoteReliable) { got.Add(1) })
		}
		if err != nil {
			panic(err)
		}
		_ = sub.Activate()
	}
	waitUntil(10*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= n-1 })
	net.Settle()
	net.ResetStats()

	gen := workload.NewQuoteGen(5, 5)
	const events = 10
	for i := 0; i < events; i++ {
		if gossip {
			_ = core.Publish(engines[0], gen.Next())
		} else {
			_ = core.Publish(engines[0], workload.QuoteReliable{StockObvent: gen.Next().StockObvent})
		}
	}
	want := int64(events * (n - 1))
	waitUntil(15*time.Second, func() bool { return got.Load() >= want })
	net.Settle()
	sent, _, _, _ := net.Stats()
	return float64(got.Load()) / float64(want), float64(sent) / float64(events) / float64(n)
}

// --- C4: subscription-scheme baselines (paper §2.3.2, §5, §6) ---

func expC4() {
	fmt.Println("\n== C4: matching cost across subscription schemes ==")
	fmt.Println("claim: type-based+filters buys content selectivity at modest cost over topics;")
	fmt.Println("       tuple spaces and attribute maps are weakly typed baselines")
	fmt.Printf("%-22s %14s\n", "scheme (1000 subs)", "ns/event")

	const subs = 1000
	gen := workload.NewQuoteGen(7, 20)
	specs := gen.Interests(subs)
	q := gen.Next()
	const evs = 2000

	// Type-based + compound filters (this paper).
	comp := matching.New()
	for i, s := range specs {
		_ = comp.Add(fmt.Sprintf("s%d", i), s.Filter())
	}
	start := time.Now()
	for i := 0; i < evs; i++ {
		comp.Match(q)
	}
	fmt.Printf("%-22s %14d\n", "type-based+compound", time.Since(start).Nanoseconds()/evs)

	// Topic-based: company as topic; price selectivity inexpressible.
	tb := topics.New()
	for _, s := range specs {
		_, _ = tb.Subscribe("stocks."+s.Company, func(string, any) {})
	}
	start = time.Now()
	for i := 0; i < evs; i++ {
		tb.Publish("stocks."+q.Company, q)
	}
	fmt.Printf("%-22s %14d   (cannot express price predicate)\n", "topic-based", time.Since(start).Nanoseconds()/evs)

	// Content-based attribute maps.
	cb := content.New()
	for _, s := range specs {
		_, _ = cb.Subscribe([]content.Pred{
			{Attr: "company", Op: content.Eq, Val: s.Company},
			{Attr: "price", Op: content.Lt, Val: s.MaxPrice},
		}, func(content.Event) {})
	}
	ev := content.Event{"company": q.Company, "price": q.Price, "amount": q.Amount}
	start = time.Now()
	for i := 0; i < evs; i++ {
		cb.Publish(ev)
	}
	fmt.Printf("%-22s %14d   (encapsulation broken: raw attributes)\n", "content attr-value", time.Since(start).Nanoseconds()/evs)

	// Tuple space notify.
	ts := tuplespace.New()
	for _, s := range specs {
		_ = s
		_ = ts
		// Template matching has no range predicates: only exact
		// values/types (paper §5.1.2), so subscribe to the company
		// only.
		ts.Notify(tuplespace.Template{tuplespace.Val(s.Company), tuplespace.Type[float64]()}, func(tuplespace.Tuple) {})
	}
	start = time.Now()
	for i := 0; i < evs; i++ {
		_ = ts.Out(tuplespace.Tuple{q.Company, q.Price})
	}
	fmt.Printf("%-22s %14d   (templates: no range predicates)\n", "tuple space", time.Since(start).Nanoseconds()/evs)
	ts.Close()
}

// --- C5: thread policies (paper §3.3.5) ---

func expC5() {
	fmt.Println("\n== C5: handler thread policies under blocking handlers ==")
	fmt.Println("claim: multi-threading raises throughput for blocking handlers; single-threading serializes")
	fmt.Printf("%-16s %14s\n", "policy", "events/sec")

	for _, policy := range []string{"single", "multi(4)", "multi(unbounded)"} {
		e := core.NewEngine("c5", core.NewLocal())
		workload.RegisterTypes(e.Registry())
		const events = 64
		var wg sync.WaitGroup
		wg.Add(events)
		sub, err := core.Subscribe(e, nil, func(q workload.StockQuote) {
			time.Sleep(2 * time.Millisecond) // simulated I/O
			wg.Done()
		})
		if err != nil {
			panic(err)
		}
		switch policy {
		case "single":
			sub.SetSingleThreading()
		case "multi(4)":
			sub.SetMultiThreading(4)
		default:
			sub.SetMultiThreading(0)
		}
		_ = sub.Activate()
		gen := workload.NewQuoteGen(11, 5)
		start := time.Now()
		for i := 0; i < events; i++ {
			_ = core.Publish(e, gen.Next())
		}
		wg.Wait()
		fmt.Printf("%-16s %14.0f\n", policy, events/time.Since(start).Seconds())
		_ = e.Close()
	}
}

// --- C6: RMI vs publish/subscribe fanout (paper §5.4) ---

func expC6() {
	fmt.Println("\n== C6: notifying N receivers: RMI loop vs one publish ==")
	fmt.Println("claim: pub/sub scales to many receivers; RPC couples the sender to each receiver")
	fmt.Printf("%-8s %16s %16s\n", "N", "rmi ms/round", "pubsub ms/round")

	for _, n := range []int{1, 4, 16, 64} {
		rmiMs := rmiFanout(n)
		psMs := pubsubFanout(n)
		fmt.Printf("%-8d %16.2f %16.2f\n", n, rmiMs, psMs)
	}
}

func rmiFanout(n int) float64 {
	net := netsim.New(netsim.Config{MinLatency: 200 * time.Microsecond, MaxLatency: 400 * time.Microsecond})
	defer net.Close()
	callerEp, _ := net.NewEndpoint("caller")
	caller := rmi.New(callerEp, rmi.Options{})
	defer caller.Close()

	proxies := make([]*rmi.Proxy, n)
	for i := 0; i < n; i++ {
		ep, _ := net.NewEndpoint(fmt.Sprintf("recv-%02d", i))
		rt := rmi.New(ep, rmi.Options{})
		defer rt.Close()
		if err := rt.Bind("sink", &sink{}); err != nil {
			panic(err)
		}
		proxies[i] = caller.Dial(ep.Addr(), "sink")
	}

	const rounds = 20
	start := time.Now()
	for r := 0; r < rounds; r++ {
		// Synchronous RPC to every receiver, one by one (the paper's
		// point: the invoker blocks per receiver).
		for _, p := range proxies {
			if err := p.Call("Notify", []any{"quote", 80.0}); err != nil {
				panic(err)
			}
		}
	}
	return float64(time.Since(start).Milliseconds()) / rounds
}

// sink is the RMI receiver.
type sink struct{}

// Notify accepts a notification.
func (s *sink) Notify(what string, price float64) {}

func pubsubFanout(n int) float64 {
	net := netsim.New(netsim.Config{MinLatency: 200 * time.Microsecond, MaxLatency: 400 * time.Microsecond})
	defer net.Close()
	cfg := dace.Config{Multicast: fastOpts()}
	nodes, engines := domain(net, n+1, cfg)
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	var got atomic.Int64
	for _, e := range engines[1:] {
		sub, err := core.Subscribe(e, nil, func(q workload.QuoteReliable) { got.Add(1) })
		if err != nil {
			panic(err)
		}
		_ = sub.Activate()
	}
	waitUntil(10*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= n })

	const rounds = 20
	gen := workload.NewQuoteGen(13, 5)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		want := got.Load() + int64(n)
		_ = core.Publish(engines[0], workload.QuoteReliable{StockObvent: gen.Next().StockObvent})
		waitUntil(10*time.Second, func() bool { return got.Load() >= want })
	}
	return float64(time.Since(start).Milliseconds()) / rounds
}
