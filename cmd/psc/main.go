// Command psc is the publish/subscribe precompiler (paper §4): the
// counterpart of Java's rmic for type-based publish/subscribe. It scans
// a Go package for obvent classes and //psc:filter functions, generates
// typed adapters (paper Figure 6) and lifted filter expressions
// (§4.4.3), and reports filters that violate the mobility restrictions
// of §3.3.4.
//
// Usage:
//
//	psc -dir ./examples/stocktrading [-out psc_generated.go] [-check]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"govents/psc"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "package directory to scan")
	out := flag.String("out", "", "output file (default <dir>/psc_generated.go)")
	check := flag.Bool("check", false, "check filters only; do not generate")
	flag.Parse()

	res, err := psc.Scan(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psc:", err)
		return 2
	}

	fmt.Printf("psc: package %s: %d obvent classes, %d migratable filters, %d violations\n",
		res.Package, len(res.Classes), len(res.Filters), len(res.Violations))
	for _, c := range res.Classes {
		qos := "default"
		if len(c.QoS) > 0 {
			qos = fmt.Sprint(c.QoS)
		}
		fmt.Printf("  class  %-24s qos=%s\n", c.Name, qos)
	}
	for _, f := range res.Filters {
		fmt.Printf("  filter %-24s -> %sExpr()\n", f.Name, f.Name)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(os.Stderr, "  LOCAL-ONLY %s\n", v.Error())
	}

	if *check {
		if len(res.Violations) > 0 {
			return 1
		}
		return 0
	}

	path := *out
	if path == "" {
		path = filepath.Join(*dir, "psc_generated.go")
	}
	src, err := psc.Generate(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psc:", err)
		return 2
	}
	if err := os.WriteFile(path, src, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "psc:", err)
		return 2
	}
	fmt.Printf("psc: wrote %s\n", path)
	if len(res.Violations) > 0 {
		return 1
	}
	return 0
}
