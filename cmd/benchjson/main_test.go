package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: govents
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDispatch/indexed/subs=1000/sel=1pct-8         	     200	   2712345 ns/op	        10.00 matches/op	 1490800 B/op	   14908 allocs/op
BenchmarkDispatchParallel/lanes=4-8                    	     500	     67757 ns/op	        10.00 matches/op	   13487 B/op	     255 allocs/op
PASS
ok  	govents	62.943s
`

func TestParseBench(t *testing.T) {
	var echoed strings.Builder
	got, err := parseBench(strings.NewReader(sampleOutput), &echoed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks (%v), want 2", len(got), sortedNames(got))
	}
	r, ok := got["BenchmarkDispatch/indexed/subs=1000/sel=1pct-8"]
	if !ok {
		t.Fatalf("missing dispatch benchmark; got %v", sortedNames(got))
	}
	if r.Iterations != 200 {
		t.Errorf("iterations = %d, want 200", r.Iterations)
	}
	want := map[string]float64{"ns/op": 2712345, "matches/op": 10, "B/op": 1490800, "allocs/op": 14908}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %q = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
	if !strings.Contains(echoed.String(), "PASS") {
		t.Error("input not echoed through")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok govents 1s\n"), nil); err == nil {
		t.Fatal("expected an error when no benchmark lines are present")
	}
}

func TestCheckGate(t *testing.T) {
	results := map[string]benchResult{
		"BenchmarkDispatchOverhead/telemetry=on-8":  {Iterations: 100, Metrics: map[string]float64{"ns/op": 1030}},
		"BenchmarkDispatchOverhead/telemetry=off-8": {Iterations: 100, Metrics: map[string]float64{"ns/op": 1000}},
	}
	var log strings.Builder
	// The names omit the GOMAXPROCS suffix, as a CI invocation would.
	pass := "BenchmarkDispatchOverhead/telemetry=on:ns/op,BenchmarkDispatchOverhead/telemetry=off:ns/op<=1.05"
	if err := checkGate(results, pass, &log); err != nil {
		t.Errorf("gate at 1.05 failed on ratio 1.03: %v", err)
	}
	if !strings.Contains(log.String(), "1.030") {
		t.Errorf("gate log missing ratio: %q", log.String())
	}
	fail := "BenchmarkDispatchOverhead/telemetry=on:ns/op,BenchmarkDispatchOverhead/telemetry=off:ns/op<=1.02"
	if err := checkGate(results, fail, &log); err == nil {
		t.Error("gate at 1.02 passed on ratio 1.03")
	}
	for _, bad := range []string{
		"nonsense",
		"A:ns/op,B:ns/op<=1.0", // unknown benchmarks
		"BenchmarkDispatchOverhead/telemetry=on:zops,BenchmarkDispatchOverhead/telemetry=off:ns/op<=1.0", // unknown metric
	} {
		if err := checkGate(results, bad, &log); err == nil {
			t.Errorf("spec %q passed, want error", bad)
		}
	}
}
