// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON map (benchmark name -> metric -> value), so CI
// can archive per-PR performance trajectories as artifacts:
//
//	go test -run='^$' -bench='^BenchmarkDispatch' -benchmem . | benchjson -out BENCH_dispatch.json
//
// Every input line is echoed to stdout, so the human-readable log
// survives in CI; only the parsed results go to the -out file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("out", "", "JSON output file (default stdout, after the echoed log)")
	flag.Parse()

	results, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchResult is the parsed form of one benchmark output line.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBench reads `go test -bench` output from r, echoing every line to
// echo, and returns the benchmark lines parsed into name -> result. A
// benchmark line looks like
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// i.e. a name, an iteration count, then value/unit pairs. Units become
// the metric keys ("ns/op", "allocs/op", custom ReportMetric units).
// Duplicate names (e.g. -count > 1) keep the last occurrence.
func parseBench(r io.Reader, echo io.Writer) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... FAIL" status lines
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		results[fields[0]] = benchResult{Iterations: iters, Metrics: metrics}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return results, nil
}

// sortedNames is a debugging aid kept exported-in-package for tests.
func sortedNames(m map[string]benchResult) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
