// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON map (benchmark name -> metric -> value), so CI
// can archive per-PR performance trajectories as artifacts:
//
//	go test -run='^$' -bench='^BenchmarkDispatch' -benchmem . | benchjson -out BENCH_dispatch.json
//
// Every input line is echoed to stdout, so the human-readable log
// survives in CI; only the parsed results go to the -out file.
//
// -gate turns benchjson into a CI regression gate on top of the parse:
//
//	... | benchjson -out BENCH.json \
//	      -gate 'BenchmarkDispatchOverhead/telemetry=on:ns/op,BenchmarkDispatchOverhead/telemetry=off:ns/op<=1.05'
//
// asserts that the first metric is at most FACTOR times the second and
// exits nonzero otherwise. The flag repeats.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gateFlags collects repeated -gate specs.
type gateFlags []string

func (g *gateFlags) String() string { return strings.Join(*g, "; ") }

func (g *gateFlags) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	out := flag.String("out", "", "JSON output file (default stdout, after the echoed log)")
	var gates gateFlags
	flag.Var(&gates, "gate", "ratio assertion 'BENCH_A:unit,BENCH_B:unit<=FACTOR' (repeatable); fail when metric A exceeds FACTOR × metric B")
	flag.Parse()

	results, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	failed := false
	for _, spec := range gates {
		if err := checkGate(results, spec, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: gate:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// gateSpec matches 'A:unit,B:unit<=FACTOR'.
var gateSpec = regexp.MustCompile(`^([^,]+):([^,:]+),([^,]+):([^,:]+)<=([0-9.]+)$`)

// checkGate evaluates one -gate assertion against the parsed results.
func checkGate(results map[string]benchResult, spec string, log io.Writer) error {
	m := gateSpec.FindStringSubmatch(spec)
	if m == nil {
		return fmt.Errorf("malformed spec %q (want 'BENCH_A:unit,BENCH_B:unit<=FACTOR')", spec)
	}
	factor, err := strconv.ParseFloat(m[5], 64)
	if err != nil {
		return fmt.Errorf("bad factor in %q: %v", spec, err)
	}
	num, err := lookupMetric(results, m[1], m[2])
	if err != nil {
		return err
	}
	den, err := lookupMetric(results, m[3], m[4])
	if err != nil {
		return err
	}
	if den == 0 {
		return fmt.Errorf("%s:%s is zero; ratio undefined", m[3], m[4])
	}
	ratio := num / den
	fmt.Fprintf(log, "gate: %s = %.3f (limit %.3f)\n", spec, ratio, factor)
	if ratio > factor {
		return fmt.Errorf("%s: ratio %.3f exceeds %.3f", spec, ratio, factor)
	}
	return nil
}

// procSuffix is the "-8" GOMAXPROCS suffix go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// lookupMetric finds a benchmark by name — with or without the
// GOMAXPROCS suffix — and returns the named metric.
func lookupMetric(results map[string]benchResult, bench, unit string) (float64, error) {
	r, ok := results[bench]
	if !ok {
		for name, candidate := range results {
			if procSuffix.ReplaceAllString(name, "") == bench {
				r, ok = candidate, true
				break
			}
		}
	}
	if !ok {
		return 0, fmt.Errorf("benchmark %q not in input", bench)
	}
	v, ok := r.Metrics[unit]
	if !ok {
		return 0, fmt.Errorf("benchmark %q has no metric %q", bench, unit)
	}
	return v, nil
}

// benchResult is the parsed form of one benchmark output line.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBench reads `go test -bench` output from r, echoing every line to
// echo, and returns the benchmark lines parsed into name -> result. A
// benchmark line looks like
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// i.e. a name, an iteration count, then value/unit pairs. Units become
// the metric keys ("ns/op", "allocs/op", custom ReportMetric units).
// Duplicate names (e.g. -count > 1) keep the last occurrence.
func parseBench(r io.Reader, echo io.Writer) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... FAIL" status lines
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		results[fields[0]] = benchResult{Iterations: iters, Metrics: metrics}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return results, nil
}

// sortedNames is a debugging aid kept exported-in-package for tests.
func sortedNames(m map[string]benchResult) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
