// Package topics is the public surface of topic-based (subject-based)
// publish/subscribe, the "pure static subscription scheme" baseline of
// paper §2.3.2: dot-separated hierarchies with "*" (one level) and "#"
// (remaining levels) wildcards. A per-domain bus is reachable from the
// unified facade via Domain.Topics.
package topics

import internal "govents/internal/topics"

// Bus is a topic-based publish/subscribe engine; create standalone
// with New or per domain via Domain.Topics.
type Bus = internal.Bus

// Handler receives the payload of a matching publication.
type Handler = internal.Handler

// New returns an empty bus.
func New() *Bus { return internal.New() }

// Match reports whether a topic pattern matches a concrete topic.
func Match(pattern, topic string) bool { return internal.Match(pattern, topic) }
