// Package rmi is the public surface of the remote-method-invocation
// substrate (paper §5.4): the synchronous interaction paradigm the
// paper positions as complementary to publish/subscribe. Ref values
// travel inside obvents, enabling the paper's Figure 8 scenario — a
// stock quote carries a reference to the market on which a broker then
// synchronously buys. Attach a Runtime to a govents Domain with
// govents.WithRMI, or run one standalone with New.
package rmi

import (
	"govents/internal/netsim"
	internal "govents/internal/rmi"
)

// Runtime is one process's RMI endpoint: it exports objects under
// names (Bind) and invokes remote ones through proxies (Dial, Resolve).
type Runtime = internal.Runtime

// Options tunes a Runtime (DGC mode, lease periods, call timeout).
type Options = internal.Options

// Proxy is an invocable handle on a remote object.
type Proxy = internal.Proxy

// Ref is a serializable remote reference — the value placed inside
// obvents when passing objects by reference (paper §5.4.1).
type Ref = internal.Ref

// DGCMode selects the distributed garbage collection scheme.
type DGCMode = internal.DGCMode

// DGC schemes: pinned reproduces the Java RMI caveat the paper
// criticizes (§5.4.2); leased implements the [CNH99] remedy.
const (
	DGCPinned = internal.DGCPinned
	DGCLeased = internal.DGCLeased
)

// Errors returned by remote invocations.
var (
	ErrNoSuchObject = internal.ErrNoSuchObject
	ErrNoSuchMethod = internal.ErrNoSuchMethod
	ErrBadArguments = internal.ErrBadArguments
	ErrTimeout      = internal.ErrTimeout
	ErrClosed       = internal.ErrClosed
)

// New creates an RMI runtime over a transport endpoint.
func New(tr netsim.Transport, opts Options) *Runtime { return internal.New(tr, opts) }
