// Package govents is the public, unified API of the repository: the
// paper's type-based publish/subscribe primitives (conf_icdcs_DammEG04,
// §2.3.3) and their sibling abstractions — tuple spaces, topics, RMI —
// composed behind one Domain facade over a shared substrate.
//
// # The two primitives
//
// The paper integrates publish and subscribe into the language. The Go
// rendering maps its constructs one-to-one:
//
//	paper (§2.3.3)                              govents
//	------------------------------------------  ----------------------------------------
//	class StockQuote extends Obvent {...}       type StockQuote struct { obvent.Base; ... }
//	Subscription s =
//	  subscribe (StockQuote q)                  s, err := govents.SubscribeInactive(d,
//	    { return q.getPrice() < 100; }            filter.Path("GetPrice").Lt(filter.Float(100)),
//	    { print(q.getPrice()); };                 func(q StockQuote) { fmt.Println(q.Price) })
//	s.activate();                               err = s.Activate()
//	publish q;                                  err = d.Publish(ctx, q)
//	s.deactivate();                             err = s.Deactivate()
//
// Most applications use Subscribe, which returns the subscription
// already active; SubscribeInactive keeps the paper's explicit
// two-phase form. Subscribing to a type receives all of its subtypes
// (type-based matching, §2.2): supertypes by struct embedding or
// interface satisfaction.
//
// # Domains
//
// A Domain is one process's membership in a govents domain, opened
// local (in-process loopback) or distributed (DACE, §4.2) over any
// Transport:
//
//	d, err := govents.Open(ctx, "quoter")                          // local
//	d, err := govents.Open(ctx, "quoter",
//	        govents.WithTransport(tr), govents.WithPeers(addrs...)) // distributed
//
// Distributed domains advertise subscriptions reflexively (ads are
// themselves obvents), compile advertised filters into publisher-side
// routing plans (WithPlacement), shard inbound dispatch across lanes
// (WithDispatchLanes), garbage-collect silent peers (WithAdTTL), and
// honor the QoS semantics composed onto obvent types by embedding:
// reliable, certified, FIFO/causal/total order, timeliness, priority
// (§3.1.2).
//
// Delivery errors surface as wrapped sentinels (ErrClosed,
// ErrUnregistered, ErrBadFilter, ErrCannotPublish, ...); discriminate
// with errors.Is.
//
// # The wire format
//
// Event payloads travel in a compact per-class binary encoding compiled
// once per class (varint integers, raw IEEE floats, length-prefixed
// strings — no per-event type metadata), replacing gob on the hot path.
// Classes the compiler cannot prove encodable (interfaces, channels,
// time.Time fields, recursion) keep gob transparently, and peers
// negotiate per destination: a publisher transcodes to gob for exactly
// the peers that have not advertised wire capability, so one legacy
// process never downgrades the rest of the domain. On the routing and
// matching path, plans whose filters reference only structural fields
// evaluate by partial decode — extracting just those fields from the
// encoded bytes — and the event is materialized only for actual
// matches and deliveries. Domain.Stats exposes the codec counters
// (WireEncodes, GobPayloadEncodes, WireDowngrades, PartialDecodes,
// ...). The psc generator emits reflection-free typed codecs for
// eligible classes, registered via RegisterWireCodec; hand-written
// codecs can use the same hook with NewWireDecoder and the
// AppendWire* helpers, and must produce byte-identical encodings to
// the compiled program (the generated ones are differentially tested).
//
// # Interest-aware multicast
//
// Every dissemination class prunes to the interested subset of the
// domain, not just the unordered ones. FIFO and causal publishers
// consult the routing plane and ship data frames only to nodes with a
// passing subscription; for total order the publication routes to the
// sequencer, which filters after stamping, so the global sequence stays
// gap-free. Pruned nodes keep their per-origin sequences (and causal
// clocks) advancing through lightweight skip markers: every data frame
// carries the sequence range it covers for its destination, and
// destinations with no follow-up data get amortized skip frames on the
// retransmission tick. Gossip classes bias their per-round fanout
// toward interested nodes while keeping a configurable floor of
// uniformly random edges (Tuning.GossipRandomEdges) so rumors still
// cross interest boundaries. Pruning fails open — an unevaluable event
// or unknown node counts as interested — and preserves each class's
// ordering contract exactly; WithOrderedPruning(false) restores
// full-group broadcasts. RoutingStats reports the saved traffic as
// PrunedSends and SkipFrames.
//
// # Overload and flow control
//
// Inbound dispatch degrades gracefully instead of growing without
// bound. WithLaneQueueBound caps every dispatch lane's in-memory
// queue, and WithOverloadPolicy selects what a full lane does:
// OverloadBlock (the default) applies backpressure to the intake,
// OverloadDropOldest sheds the oldest queued envelope with a counted
// reason, and OverloadSpill overflows to a per-lane durable segment
// log (requires WithDurability) that drains back — in order — once
// the lane catches up, so bursts cost latency rather than loss.
// FIFO-ordered traffic dispatches on per-publisher parallel sub-lanes
// (only causal, total and prioritary classes serialize), and idle
// lanes steal whole-publisher batches from overloaded siblings
// through a loan protocol that preserves each publisher's delivery
// order exactly.
//
// One stuck handler cannot stall the rest of the domain:
// WithSlowConsumerBudget(stall, mailbox) quarantines a subscription
// whose handler exceeds its stall budget onto a private bounded
// mailbox; ordered deliveries beyond the mailbox are dropped for that
// subscription only, counted under ErrSlowConsumer, and the
// subscription rejoins normal dispatch once it drains. Domain.Stats
// exposes the accounting (Shed, Spilled, SpillDrained, Steals,
// StolenEvents, Quarantines, SlowConsumerDrops) and Domain.LaneStats
// the per-lane depths, bounds and policies.
//
// # Durability
//
// Certified delivery (§3.1.2) promises that "even if a notifiable
// temporarily disconnects or fails, it will eventually deliver the
// obvent"; the paper keeps the promise with obvents logged to stable
// storage and subscriptions that outlive their hosting process —
// activate(long id), §3.4.1. The durability plane renders both:
//
//	d, err := govents.Open(ctx, "quoter",
//	        govents.WithTransport(tr),
//	        govents.WithDurability("/var/lib/quoter"))  // the plane's root dir
//	sub, err := govents.SubscribeDurable(d, "quoter-1", // activate(id)
//	        func(q QuoteCertified) { ... })
//
// WithDurability gives the domain a per-class segment log under the
// directory: an append-only, CRC-framed, size-rolled publisher outbox
// (write-ahead of any transmission) and a subscriber-side staging inbox
// that records every certified arrival durably BEFORE acknowledging it
// to the publisher. It supersedes WithCertifiedStores for certified
// classes. Sync policy (fsync per record vs batched) and segment size
// come from WithDurabilityTuning; Domain.DurableStats exposes the
// plane's counters and Domain.CompactDurable drops fully consumed
// segments. DurabilityTuning.Retention schedules that compaction on a
// jittered background ticker instead — reclaiming only behind the
// slowest consumer frontier, never a record still owed to a durable
// identity — and DurableStats reports the reclaimed bytes and records.
//
// SubscribeDurable is the paper's activate(long id): the subscription
// is owned by the durable identity, not the process. A new incarnation
// that subscribes under the same identity first replays — synchronously,
// before going live — every staged event the identity has not consumed,
// then resumes live delivery, so the handler observes each certified
// event published during the downtime exactly once above the
// at-least-once transport floor. Identities are claimed per class
// (ErrDurableConflict on collision; ErrNoDurability without
// WithDurability) and released by Subscription.Deactivate. The
// DomainGroup harness (OpenGroup) drives crash-restart, partition and
// torn-log chaos schedules against exactly these guarantees.
//
// # Observability
//
// Every Domain records per-stage latency histograms on the delivery
// pipeline — lock-free, log-bucketed, on by default (WithTelemetry(false)
// turns them off). Domain.Histograms returns the snapshots keyed by
// stage:
//
//	stage             span
//	----------------  -------------------------------------------------
//	publish_to_route  Publish accepted → routing plan resolved
//	route_to_write    destinations resolved → transport write returned
//	wire_to_lane      frame off the wire → decoded and lane-enqueued
//	lane_wait         lane enqueue → lane dequeue (queueing delay)
//	dispatch          lane dequeue → handler returned
//	e2e               publisher's Publish → handler returned, cross-node
//
// The e2e stage is timed against a publish timestamp carried in the
// envelope; peers predating it simply produce no e2e samples, and their
// own pipelines are unaffected. WithMetricsAddr serves the histograms,
// drop counters and lane-depth gauges as Prometheus text on /metrics
// (plus expvar on /debug/vars and the profiler under /debug/pprof);
// Domain.MetricsAddr reports the bound address. WithTraceHook streams
// sampled per-event TraceEvent records — failure outcomes (expired,
// decode_error, handler_panic, executor_closed) bypass sampling and are
// also counted in Domain.DroppedByReason. WithLogger injects an
// *slog.Logger for anomalies that have no error-return path (recovered
// handler panics, undecodable frames, failed certified redeliveries);
// the default discards them.
//
// # The abstraction family
//
// The same Domain reaches the paper's comparison abstractions — the
// tuple space (§6.3) via Domain.TupleSpace, topic-based
// publish/subscribe (§2.3.2) via Domain.Topics, and RMI (§5.4) via
// Domain.RMI — so one process composes interaction styles over one
// substrate. Subpackages govents/filter and govents/obvent carry the
// filter DSL and the obvent markers; govents/netsim and govents/store
// supply the simulated network and certified-delivery stable storage.
package govents
