module govents

go 1.24
