// Package psc is the public surface of the publish/subscribe
// precompiler (paper §4): the counterpart of Java's rmic. It scans a Go
// package for obvent classes and //psc:filter functions, generates
// typed adapters (paper Figure 6) against the public govents API, and
// reports filters that violate the mobility restrictions of §3.3.4.
// Command psc is the CLI front end.
package psc

import internal "govents/internal/psc"

// Result is the outcome of scanning one package directory.
type Result = internal.Result

// Class is a discovered obvent class.
type Class = internal.Class

// FilterFunc is a discovered //psc:filter function with its lifted
// expression source.
type FilterFunc = internal.FilterFunc

// Violation reports a filter that breaks the mobility restrictions.
type Violation = internal.Violation

// Scan parses the package in dir and discovers obvent classes and
// filter functions.
func Scan(dir string) (*Result, error) { return internal.Scan(dir) }

// Generate renders the adapters-and-filters file for a scan result.
func Generate(res *Result) ([]byte, error) { return internal.Generate(res) }
