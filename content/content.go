// Package content is the public surface of attribute-map content-based
// publish/subscribe, the weakly typed baseline the paper contrasts
// with type-based matching (§5.1): events are string-keyed attribute
// maps, subscriptions are conjunctions of attribute predicates.
package content

import internal "govents/internal/content"

// Bus is an attribute-map content-based publish/subscribe engine.
type Bus = internal.Bus

// Event is a published attribute map.
type Event = internal.Event

// Handler receives matching events.
type Handler = internal.Handler

// Pred is one attribute predicate.
type Pred = internal.Pred

// Op is a predicate operator.
type Op = internal.Op

// Predicate operators.
const (
	Eq     = internal.Eq
	Ne     = internal.Ne
	Lt     = internal.Lt
	Le     = internal.Le
	Gt     = internal.Gt
	Ge     = internal.Ge
	Exists = internal.Exists
)

// New returns an empty bus.
func New() *Bus { return internal.New() }
