package govents

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"govents/internal/telemetry"
)

// metricsServer is the HTTP export surface started by WithMetricsAddr:
// hand-written Prometheus text exposition on /metrics, expvar on
// /debug/vars and the runtime profiler on /debug/pprof. It owns its
// listener so ":0" addresses work and Close can unblock Serve.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
	d   *Domain

	mu     sync.Mutex
	closed bool
}

// expvarDomains is the process-wide set of domains exporting through
// /debug/vars. expvar.Publish panics on duplicate names, so the
// "govents" variable is published once and folds in whichever domains
// are currently serving metrics.
var (
	expvarMu      sync.Mutex
	expvarDomains = map[*Domain]bool{}
	expvarOnce    sync.Once
)

func expvarSnapshot() any {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	out := map[string]any{}
	for d := range expvarDomains {
		out[d.Name()] = map[string]any{
			"stats":   d.Stats(),
			"dropped": d.DroppedByReason(),
			"stages":  d.Histograms(),
		}
	}
	return out
}

func startMetricsServer(addr string, d *Domain) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	ms := &metricsServer{ln: ln, d: d}

	// A dedicated mux: mounting pprof on http.DefaultServeMux would
	// leak profiling endpoints into any other server in the process.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", ms.serveMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms.srv = &http.Server{Handler: mux}

	expvarOnce.Do(func() {
		expvar.Publish("govents", expvar.Func(expvarSnapshot))
	})
	expvarMu.Lock()
	expvarDomains[d] = true
	expvarMu.Unlock()

	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

func (ms *metricsServer) addr() string { return ms.ln.Addr().String() }

func (ms *metricsServer) close() {
	ms.mu.Lock()
	if ms.closed {
		ms.mu.Unlock()
		return
	}
	ms.closed = true
	ms.mu.Unlock()
	expvarMu.Lock()
	delete(expvarDomains, ms.d)
	expvarMu.Unlock()
	_ = ms.srv.Close()
}

// serveMetrics writes the Prometheus text exposition format (version
// 0.0.4) by hand — the repo takes no client-library dependency. Bucket
// counts are cumulative per the format; nanosecond histogram bounds are
// exported in seconds. Empty trailing buckets are elided (per-scrape
// sparse histograms), keeping 64-bucket stages readable.
func (ms *metricsServer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	node := promEscape(ms.d.Name())

	b.WriteString("# HELP govents_stage_latency_seconds Per-stage pipeline latency.\n")
	b.WriteString("# TYPE govents_stage_latency_seconds histogram\n")
	stages := ms.d.Histograms()
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := stages[name]
		base := fmt.Sprintf(`node=%q,stage=%q`, node, name)
		var cum uint64
		top := len(snap.Buckets) - 1
		for top > 0 && snap.Buckets[top] == 0 {
			top--
		}
		for i := 0; i <= top; i++ {
			cum += snap.Buckets[i]
			if snap.Buckets[i] == 0 && i != top {
				continue
			}
			le := float64(telemetry.BucketBound(i)) / 1e9
			fmt.Fprintf(&b, "govents_stage_latency_seconds_bucket{%s,le=%q} %d\n",
				base, fmt.Sprintf("%g", le), cum)
		}
		fmt.Fprintf(&b, "govents_stage_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", base, snap.Count)
		fmt.Fprintf(&b, "govents_stage_latency_seconds_sum{%s} %g\n", base, float64(snap.Sum)/1e9)
		fmt.Fprintf(&b, "govents_stage_latency_seconds_count{%s} %d\n", base, snap.Count)
	}

	st := ms.d.Stats()
	b.WriteString("# HELP govents_events_total Cumulative dispatch counters.\n")
	b.WriteString("# TYPE govents_events_total counter\n")
	for _, c := range []struct {
		kind string
		v    uint64
	}{
		{"in", st.EventsIn},
		{"matched", st.Matched},
		{"delivered", st.Delivered},
	} {
		fmt.Fprintf(&b, "govents_events_total{node=%q,kind=%q} %d\n", node, c.kind, c.v)
	}

	b.WriteString("# HELP govents_dropped_total Events dropped, by reason.\n")
	b.WriteString("# TYPE govents_dropped_total counter\n")
	dropped := ms.d.DroppedByReason()
	reasons := make([]string, 0, len(dropped))
	for reason := range dropped {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(&b, "govents_dropped_total{node=%q,reason=%q} %d\n", node, promEscape(reason), dropped[reason])
	}

	b.WriteString("# HELP govents_lane_depth Last-sampled dispatch lane queue depth.\n")
	b.WriteString("# TYPE govents_lane_depth gauge\n")
	for _, lo := range ms.d.LaneOccupancies() {
		fmt.Fprintf(&b, "govents_lane_depth{node=%q,lane=\"%d\"} %d\n", node, lo.Lane, lo.Depth)
	}

	_, _ = w.Write([]byte(b.String()))
}

// promEscape sanitizes a label value (quotes and backslashes are the
// only characters the %q verb does not already handle per the format).
func promEscape(s string) string {
	return strings.NewReplacer("\n", `\n`).Replace(s)
}
