// DomainGroup chaos schedules: crash-restart property tests of the
// durability plane. A durable subscriber is partitioned, healed,
// crashed and reborn while a certified feed keeps publishing — the
// publisher crashes and recovers too — and the delivered stream is
// checked against an always-up oracle: delivery-set equality over the
// whole run, exactly-once in clean runs, per-publisher order over the
// lockstep-published segments, and set-completeness (duplicates
// allowed) when a torn ack-log tail is injected.
package govents_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"govents"
	"govents/netsim"
	"govents/obvent"
)

// chaosTick is the certified event of the chaos schedules.
type chaosTick struct {
	obvent.Base
	obvent.CertifiedBase
	Pub string
	Seq int
}

// recorder accumulates deliveries with duplicate accounting.
type recorder struct {
	mu    sync.Mutex
	count map[string]int
	order []string // unique keys in first-delivery order
}

func newRecorder() *recorder { return &recorder{count: make(map[string]int)} }

func tickKey(pub string, seq int) string { return fmt.Sprintf("%s/%d", pub, seq) }

func (r *recorder) record(pub string, seq int) {
	k := tickKey(pub, seq)
	r.mu.Lock()
	r.count[k]++
	if r.count[k] == 1 {
		r.order = append(r.order, k)
	}
	r.mu.Unlock()
}

func (r *recorder) has(k string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count[k] > 0
}

func (r *recorder) hasAll(keys []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		if r.count[k] == 0 {
			return false
		}
	}
	return true
}

func (r *recorder) hasAny(keys []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		if r.count[k] > 0 {
			return true
		}
	}
	return false
}

// keys returns the sorted unique delivered keys.
func (r *recorder) keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.count))
	for k := range r.count {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// dups counts deliveries beyond the first, summed over all keys.
func (r *recorder) dups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := 0
	for _, c := range r.count {
		d += c - 1
	}
	return d
}

// orderRestricted returns the first-delivery order restricted to keys.
func (r *recorder) orderRestricted(keys []string) []string {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, k := range r.order {
		if want[k] {
			out = append(out, k)
		}
	}
	return out
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout. The simulated network has millisecond latencies; 10s is an
// eternity that still bounds a wedged schedule.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func chaosGroup(t *testing.T, n int) *govents.DomainGroup {
	t.Helper()
	g, err := govents.OpenGroup(context.Background(), n, govents.GroupConfig{
		Net:        netsim.Config{MaxLatency: time.Millisecond, Seed: 11},
		Durability: t.TempDir(),
		Options: func(i int, addr string) []govents.Option {
			return []govents.Option{
				govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close(context.Background()) })
	return g
}

// TestDomainGroupCertifiedChaosSchedule drives the full schedule:
// partition → heal → subscriber crash → publisher crash → both reborn
// → live again, asserting the delivery-set and ordering invariants.
func TestDomainGroupCertifiedChaosSchedule(t *testing.T) {
	ctx := context.Background()
	g := chaosGroup(t, 3)

	oracle, durable := newRecorder(), newRecorder()
	if _, err := govents.Subscribe(g.Domain(2), nil, func(e chaosTick) {
		oracle.record(e.Pub, e.Seq)
	}); err != nil {
		t.Fatal(err)
	}
	subscribeDurable := func(d *govents.Domain) {
		t.Helper()
		if _, err := govents.SubscribeDurable(d, "sub-1", func(e chaosTick) {
			durable.record(e.Pub, e.Seq)
		}); err != nil {
			t.Fatal(err)
		}
	}
	subscribeDurable(g.Domain(1))
	waitFor(t, "subscription ads at publisher", func() bool {
		return g.Domain(0).RemoteSubscriptionCount() >= 2
	})

	var published []string
	seq := 0
	publish := func(n int, lockstep bool) []string {
		t.Helper()
		batch := make([]string, 0, n)
		for i := 0; i < n; i++ {
			k := tickKey("node-0", seq)
			if err := g.Domain(0).Publish(ctx, chaosTick{Pub: "node-0", Seq: seq}); err != nil {
				t.Fatal(err)
			}
			published = append(published, k)
			batch = append(batch, k)
			if lockstep {
				waitFor(t, "lockstep delivery of "+k, func() bool {
					return durable.has(k) && oracle.has(k)
				})
			}
			seq++
		}
		return batch
	}

	// Phase A: live lockstep — each event confirmed at both subscribers
	// before the next publish, pinning per-publisher delivery order.
	batchA := publish(5, true)

	// Phase B: the durable subscriber is partitioned away. The oracle
	// keeps receiving; the durable subscriber catches up only after the
	// heal, through certified retransmission.
	g.Partition([]int{0, 2}, []int{1})
	batchB := publish(4, false)
	waitFor(t, "oracle during partition", func() bool { return oracle.hasAll(batchB) })
	if durable.hasAny(batchB) {
		t.Fatal("partitioned subscriber received events through the partition")
	}
	g.Heal()
	waitFor(t, "durable catch-up after heal", func() bool { return durable.hasAll(batchB) })

	// Phase C: subscriber crash. Everything published while it is down
	// is owed to its durable identity.
	if err := g.Crash(ctx, 1); err != nil {
		t.Fatal(err)
	}
	batchC := publish(4, false)
	waitFor(t, "oracle during subscriber crash", func() bool { return oracle.hasAll(batchC) })

	// The publisher crashes too: its outbox — batch C still pending for
	// sub-1 — must come back from disk.
	if err := g.Crash(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Restart(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// Subscriber rebirth: a new incarnation presents the same durable
	// identity and receives everything it missed — from the restarted
	// publisher's recovered outbox, without any new publish.
	d1, err := g.Restart(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	subscribeDurable(d1)
	waitFor(t, "missed events after restart", func() bool { return durable.hasAll(batchC) })

	// Phase D: live lockstep from the restarted publisher.
	batchD := publish(4, true)

	// Delivery-set invariant: both subscribers saw exactly the
	// published set — nothing lost across partition, crash or restart,
	// nothing invented.
	want := append([]string(nil), published...)
	sort.Strings(want)
	if got := durable.keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("durable delivery set mismatch:\n got %v\nwant %v", got, want)
	}
	if got := oracle.keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("oracle delivery set mismatch:\n got %v\nwant %v", got, want)
	}

	// Exactly-once invariant: with no loss, duplication or torn state,
	// the durable inbox dedup suppresses every redelivery.
	if d := durable.dups(); d != 0 {
		t.Errorf("durable subscriber saw %d duplicate deliveries in a clean run", d)
	}
	if d := oracle.dups(); d != 0 {
		t.Errorf("oracle saw %d duplicate deliveries in a clean run", d)
	}

	// Per-publisher order over the lockstep segments (delivery order of
	// retransmitted backlog is unordered by design — certified is a
	// reliability contract, not an ordering one).
	live := append(append([]string(nil), batchA...), batchD...)
	if got := durable.orderRestricted(live); !reflect.DeepEqual(got, live) {
		t.Errorf("durable lockstep delivery order mismatch:\n got %v\nwant %v", got, live)
	}

	// The durability plane actually carried the run.
	if ds := d1.DurableStats(); ds.Staged == 0 || ds.Acked == 0 {
		t.Errorf("subscriber durability plane idle: %+v", ds)
	}
	if ds := g.Domain(0).DurableStats(); ds.Appends == 0 {
		t.Errorf("publisher durability plane idle: %+v", ds)
	}
}

// TestDomainGroupTornAckTailRecovers injects the torn-tail fault into
// the durable subscriber's inbox ack log between incarnations: the lost
// acknowledgement tail regresses the cursor, so the rebirth replays the
// affected events from the local segment log. Duplicates are allowed
// (at-least-once floor); the delivery set must still be exactly the
// published set, and the log must report both the torn tail and the
// replay.
func TestDomainGroupTornAckTailRecovers(t *testing.T) {
	ctx := context.Background()
	g := chaosGroup(t, 2)

	durable := newRecorder()
	subscribe := func(d *govents.Domain) {
		t.Helper()
		if _, err := govents.SubscribeDurable(d, "sub-1", func(e chaosTick) {
			durable.record(e.Pub, e.Seq)
		}); err != nil {
			t.Fatal(err)
		}
	}
	subscribe(g.Domain(1))
	waitFor(t, "subscription ad at publisher", func() bool {
		return g.Domain(0).RemoteSubscriptionCount() >= 1
	})

	var published []string
	for seq := 0; seq < 3; seq++ {
		k := tickKey("node-0", seq)
		if err := g.Domain(0).Publish(ctx, chaosTick{Pub: "node-0", Seq: seq}); err != nil {
			t.Fatal(err)
		}
		published = append(published, k)
		waitFor(t, "delivery of "+k, func() bool { return durable.has(k) })
	}

	if err := g.Crash(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Tear the tail of the subscriber's newest inbox ack segment: the
	// final ack record loses its last byte, so recovery must truncate
	// it and regress the cursor past an already-delivered event.
	segs, err := filepath.Glob(filepath.Join(g.DurabilityDir(1), "*", "inbox-acks", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no inbox ack segments found: %v (%v)", segs, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-1); err != nil {
		t.Fatal(err)
	}

	d1, err := g.Restart(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	subscribe(d1) // replays the un-acked tail synchronously

	want := append([]string(nil), published...)
	sort.Strings(want)
	waitFor(t, "set completeness after torn-tail rebirth", func() bool {
		return reflect.DeepEqual(durable.keys(), want)
	})
	// The torn ack means at least one event was delivered again — the
	// at-least-once floor showing through — via the replay path.
	if durable.dups() == 0 {
		t.Error("expected at least one duplicate delivery after the torn ack tail")
	}
	ds := d1.DurableStats()
	if ds.TornTails == 0 {
		t.Errorf("torn tail not detected by the segment log: %+v", ds)
	}
	if ds.Replayed == 0 {
		t.Errorf("no events replayed from the inbox after cursor regression: %+v", ds)
	}
}
