// Package matching is the public surface of the compound filter
// matcher (paper §2.3.2, [ASS+99]): many subscribers' filters factored
// into one indexed structure — shared path resolution, common
// subexpression elimination, threshold binary search — so an event's
// conditions are evaluated once across all subscribers instead of once
// per subscription. The engine and the publisher-side routing plane use
// it internally; it is exported for applications building their own
// filtering hosts or brokers.
package matching

import internal "govents/internal/matching"

// Compound factors many subscriptions' filters into one matcher whose
// Match returns the IDs of subscriptions the event satisfies.
type Compound = internal.Compound

// Stats describe the factoring achieved (unique vs total conditions,
// recompiles).
type Stats = internal.Stats

// New returns an empty compound matcher.
func New() *Compound { return internal.New() }
