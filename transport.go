package govents

import (
	"govents/internal/netsim"
	"govents/internal/transport"
)

// Transport is the point-to-point messaging abstraction a distributed
// Domain runs on: addressed, connectionless, best-effort delivery of
// byte payloads (reliability and ordering are layered above by the
// dissemination protocols). Two implementations ship with the module:
// real TCP sockets (ListenTCP) and the simulated fault-injecting
// network of package govents/netsim.
type Transport = netsim.Transport

// ListenTCP starts a TCP transport bound to addr (e.g. "127.0.0.1:0").
// The effective address, including a kernel-chosen port, is available
// from the returned transport's Addr. Pass the transport to Open via
// WithTransport, which transfers ownership: the Domain closes it.
func ListenTCP(addr string) (Transport, error) { return transport.Listen(addr) }
