// Package workload is the public surface of the synthetic stock-quote
// workload used by the repository's demos, benchmarks and load
// generators: the paper's stock-trading obvent hierarchy (Figures 1/2)
// in every QoS flavor, a seeded quote generator, and seeded subscriber
// interest specs. It is a demo/benchmark aid, not part of the stable
// messaging API.
package workload

import (
	"govents/internal/obvent"
	internal "govents/internal/workload"
)

// The stock-trading obvent hierarchy (paper Figures 1/2), plus one
// quote class per QoS semantics for the delivery-cost experiments.
type (
	StockObvent    = internal.StockObvent
	StockQuote     = internal.StockQuote
	StockRequest   = internal.StockRequest
	SpotPrice      = internal.SpotPrice
	MarketPrice    = internal.MarketPrice
	QuoteReliable  = internal.QuoteReliable
	QuoteFIFO      = internal.QuoteFIFO
	QuoteCausal    = internal.QuoteCausal
	QuoteTotal     = internal.QuoteTotal
	QuoteCertified = internal.QuoteCertified
)

// QuoteGen deterministically generates quotes from a seed.
type QuoteGen = internal.QuoteGen

// InterestSpec is one synthetic subscriber interest (company + price
// cap) with its migratable filter form.
type InterestSpec = internal.InterestSpec

// RegisterTypes registers the whole workload hierarchy with a registry.
func RegisterTypes(reg *obvent.Registry) { internal.RegisterTypes(reg) }

// NewQuoteGen returns a seeded generator over nCompanies companies.
func NewQuoteGen(seed int64, nCompanies int) *QuoteGen { return internal.NewQuoteGen(seed, nCompanies) }
