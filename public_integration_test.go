// Public-API integration: publish → filtered subscribe across two
// Domains over the simulated network, with delivery-set equivalence
// against the internal oracle (per-subscription filter.Evaluate) —
// the transparency check of the whole public pipeline: facade →
// engine → DACE routing → multicast → netsim and back up.
package govents_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"govents"
	"govents/netsim"
	"govents/workload"

	ifilter "govents/internal/filter"
)

// TestPublicAPIDeliverySetMatchesOracle runs the same filtered
// publication stream under both filter placements and requires the
// delivered set to equal the oracle set computed by evaluating the
// subscriber's filter directly — no event delivered that the filter
// rejects, none missing that it accepts.
func TestPublicAPIDeliverySetMatchesOracle(t *testing.T) {
	for _, placement := range []govents.Placement{govents.AtSubscriber, govents.AtPublisher} {
		placement := placement
		name := map[govents.Placement]string{
			govents.AtSubscriber: "AtSubscriber",
			govents.AtPublisher:  "AtPublisher",
		}[placement]
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			net := netsim.New(netsim.Config{MaxLatency: time.Millisecond, Seed: 7})
			defer net.Close()

			open := func(addr string) *govents.Domain {
				ep, err := net.NewEndpoint(addr)
				if err != nil {
					t.Fatal(err)
				}
				d, err := govents.Open(ctx, addr,
					govents.WithTransport(ep),
					govents.WithPlacement(placement),
					govents.WithTuning(govents.Tuning{RetransmitInterval: 5 * time.Millisecond}),
				)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = d.Close(context.Background()) })
				workload.RegisterTypes(d.Registry())
				return d
			}
			pub, sub := open("pub"), open("sub")
			peers := []string{"pub", "sub"}
			if err := pub.SetPeers(peers...); err != nil {
				t.Fatal(err)
			}
			if err := sub.SetPeers(peers...); err != nil {
				t.Fatal(err)
			}

			// The subscriber's interest, via the public facade. The
			// subscription is active on return.
			gen := workload.NewQuoteGen(21, 8)
			spec := gen.Interests(1)[0]
			var mu sync.Mutex
			delivered := make(map[int]int)
			_, err := govents.Subscribe(sub, spec.Filter(), func(q workload.StockQuote) {
				mu.Lock()
				delivered[q.Amount]++
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && pub.RemoteSubscriptionCount() < 1 {
				time.Sleep(time.Millisecond)
			}
			net.Settle()

			// Publish a seeded stream, keying each quote by a unique
			// Amount; compute the oracle set with the internal
			// evaluator on the same values.
			const events = 200
			oracle := make(map[int]bool)
			f := spec.Filter()
			for i := 0; i < events; i++ {
				q := gen.Next()
				q.Amount = i // unique key
				ok, err := ifilter.Evaluate(f, q)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					oracle[i] = true
				}
				if err := pub.Publish(ctx, q); err != nil {
					t.Fatal(err)
				}
			}

			want := len(oracle)
			deadline = time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				mu.Lock()
				n := len(delivered)
				mu.Unlock()
				if n >= want {
					break
				}
				time.Sleep(time.Millisecond)
			}
			net.Settle()

			mu.Lock()
			defer mu.Unlock()
			for key, n := range delivered {
				if !oracle[key] {
					t.Errorf("delivered event %d that the filter rejects", key)
				}
				if n != 1 {
					t.Errorf("event %d delivered %d times", key, n)
				}
			}
			for key := range oracle {
				if delivered[key] == 0 {
					t.Errorf("event %d accepted by the filter but never delivered", key)
				}
			}
			if t.Failed() {
				t.Logf("placement=%v delivered=%d oracle=%d (of %d published, selectivity %s)",
					placement, len(delivered), want, events, fmt.Sprintf("%.2f", float64(want)/events))
			}
		})
	}
}
