package govents

import (
	"context"
	"fmt"
	"log/slog"
	"path/filepath"
	"strings"
	"sync"

	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/durable"
	"govents/internal/obvent"
	"govents/internal/rmi"
	"govents/internal/routing"
	"govents/internal/store"
	"govents/internal/telemetry"
	"govents/internal/topics"
	"govents/internal/transport"
	"govents/internal/tuplespace"
)

// Obvent is the interface of all publishable values: any struct
// embedding obvent.Base satisfies it (see govents/obvent).
type Obvent = obvent.Obvent

// DispatchStats are a domain's cumulative delivery counters (events
// in, expired, matched, delivered, decode errors, recovered handler
// panics), folded across dispatch lanes.
type DispatchStats = core.DispatchStats

// LaneStat is one dispatch lane's routing and delivery counters.
type LaneStat = core.LaneStat

// RoutingStats are a distributed domain's routing-plane counters:
// advertisement ingestion (applied / stale / deferred / heartbeats),
// plan compilation, per-event compound evaluations, pruned
// destinations, and silent-TTL node expiries.
type RoutingStats = routing.Stats

// TraceEvent is one sampled per-event trace record delivered to a
// WithTraceHook callback: event identity, pipeline stage, measured
// duration and outcome.
type TraceEvent = telemetry.TraceEvent

// StageSnapshot is an immutable snapshot of one pipeline stage's
// latency histogram: total count, sum, max and the log-bucketed counts,
// with Quantile and Mean accessors.
type StageSnapshot = telemetry.Snapshot

// LaneOccupancy is one dispatch lane's queue-depth gauge, sampled at
// each dequeue.
type LaneOccupancy = telemetry.LaneOccupancy

// DurableStats are the cumulative counters of a domain's durability
// plane (WithDurability): segment-log sizes and append/sync/compaction
// activity, inbox staging and replay counts, folded over all certified
// classes.
type DurableStats = durable.Stats

// A Domain is one process's membership in a govents domain: the unified
// facade over the publish/subscribe engine, the DACE dissemination
// substrate, publisher-side routing, and the sibling abstractions of
// the paper (tuple space, topics, RMI), all sharing one type registry.
//
// A Domain opened without a transport is local: publications loop back
// to in-process subscriptions only. With WithTransport it joins the
// distributed domain reachable over that transport. All methods are
// safe for concurrent use.
type Domain struct {
	name string
	reg  *obvent.Registry
	eng  *core.Engine
	node *dace.Node       // nil for local domains
	dur  *durable.Manager // nil without WithDurability
	tele *telemetry.Plane
	log  *slog.Logger

	tr      Transport // owned; nil for local domains
	rmiTr   Transport // owned; nil unless WithRMI
	rmiRT   *rmi.Runtime
	metrics *metricsServer // nil unless WithMetricsAddr

	// Retention ticker lifecycle (nil unless DurabilityTuning.Retention
	// set an interval): closing retainStop stops the ticker goroutine,
	// which closes retainDone on exit.
	retainStop chan struct{}
	retainDone chan struct{}

	mu        sync.Mutex
	ts        *tuplespace.Space
	topics    *topics.Bus
	durClaims map[string]bool // active durable IDs, keyed class+"\x00"+id
	closed    bool
	closeDone chan struct{} // closed when background shutdown finishes
	closeErr  error         // valid once closeDone is closed
}

// Open creates a Domain named name. The name identifies the domain
// member in stats, subscription IDs and (for local domains) envelope
// publisher stamps; distributed domains use the transport address on
// the wire. Open is synchronous and fast; ctx is consulted for early
// cancellation.
//
// Obvent classes are registered lazily on first Publish or Subscribe of
// a type; classes a process only ever receives (e.g. subtypes published
// elsewhere and subscribed here through a supertype) must be registered
// explicitly with Register so inbound envelopes can be decoded.
func Open(ctx context.Context, name string, opts ...Option) (*Domain, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	fail := func(err error) (*Domain, error) {
		// Ownership of the transports transferred at WithTransport /
		// WithRMI; a failed Open must not leak them.
		if cfg.transport != nil {
			_ = cfg.transport.Close()
		}
		if cfg.rmiTransport != nil {
			_ = cfg.rmiTransport.Close()
		}
		return nil, fmt.Errorf("govents: open %q: %w", name, err)
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if cfg.transport == nil {
		// Distribution-only options must not be dropped silently: a
		// forgotten WithTransport would otherwise discard, e.g., the
		// certified stable storage without any error.
		if bad := cfg.distributedOnly(); len(bad) > 0 {
			return fail(fmt.Errorf("%s require(s) WithTransport", strings.Join(bad, ", ")))
		}
	}
	if cfg.policy == OverloadSpill && cfg.durDir == "" {
		// Spill needs a durability directory to host the per-lane
		// overflow logs; silently degrading to a lossy policy would
		// betray the "delivery does not degrade" promise of Spill.
		return fail(fmt.Errorf("WithOverloadPolicy(OverloadSpill) requires WithDurability"))
	}
	reg := cfg.registry
	if reg == nil {
		reg = obvent.NewRegistry()
	}
	d := &Domain{name: name, reg: reg}

	// One telemetry plane and one logger span the whole stack: the
	// engine's dispatch lanes, the dissemination substrate and the
	// metrics endpoint all observe the same state.
	d.tele = telemetry.NewPlane()
	d.tele.SetNode(name)
	if cfg.teleOff {
		d.tele.SetEnabled(false)
	}
	if cfg.traceHook != nil {
		d.tele.SetTraceHook(cfg.traceHook, cfg.traceEvery)
	}
	log := cfg.logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	} else {
		// The package-level sinks (file-log replay, TCP transport) have
		// no per-domain hook; the most recent domain's logger wins,
		// which is the common single-domain case.
		store.SetLogger(log)
		transport.SetLogger(log)
	}
	d.log = log

	engOpts := []core.Option{
		core.WithRegistry(reg),
		core.WithTelemetry(d.tele),
		core.WithEngineLogger(log),
	}
	if cfg.lanes != 0 {
		engOpts = append(engOpts, core.WithDispatchLanes(cfg.lanes))
	}
	if cfg.naive {
		engOpts = append(engOpts, core.WithNaiveDispatch())
	}
	if cfg.laneBound > 0 {
		engOpts = append(engOpts, core.WithLaneQueueBound(cfg.laneBound))
	}
	if cfg.policy != OverloadBlock {
		engOpts = append(engOpts, core.WithOverloadPolicy(cfg.policy))
	}
	if cfg.durDir != "" {
		// Host the per-lane overflow logs beside the certified state;
		// the subdirectory only materializes on first spill.
		engOpts = append(engOpts, core.WithSpillDir(filepath.Join(cfg.durDir, "spill")))
	}
	if cfg.stallBudget > 0 {
		engOpts = append(engOpts, core.WithSlowConsumerBudget(cfg.stallBudget, cfg.mailbox))
	}

	if cfg.transport != nil {
		if cfg.durDir != "" {
			// Stable storage opens (and replays) before the substrate
			// comes up, so the first retransmission already consults the
			// recovered state.
			dur, err := durable.Open(durable.Config{
				Dir:          cfg.durDir,
				SegmentBytes: cfg.durTuning.SegmentBytes,
				Sync:         cfg.durTuning.Sync,
				Logger:       log,
			})
			if err != nil {
				return fail(err)
			}
			d.dur = dur
		}
		d.tr = cfg.transport
		d.node = dace.NewNode(cfg.transport, reg, cfg.daceConfig(d.tele, log, d.dur))
		d.eng = core.NewEngine(cfg.transport.Addr(), d.node, engOpts...)
		if len(cfg.peers) > 0 {
			d.node.SetPeers(cfg.peers)
		}
	} else {
		d.eng = core.NewEngine(name, core.NewLocal(), engOpts...)
	}
	if cfg.rmiTransport != nil {
		d.rmiTr = cfg.rmiTransport
		d.rmiRT = rmi.New(cfg.rmiTransport, rmi.Options{Logger: log})
	}
	if cfg.metricsAddr != "" {
		ms, err := startMetricsServer(cfg.metricsAddr, d)
		if err != nil {
			_ = d.eng.Close()
			if d.dur != nil {
				_ = d.dur.Close()
			}
			return fail(err)
		}
		d.metrics = ms
	}
	if d.dur != nil && cfg.durTuning.Retention.Interval > 0 {
		d.startRetention(cfg.durTuning.Retention)
	}
	return d, nil
}

// Name returns the domain member's name.
func (d *Domain) Name() string { return d.name }

// Addr returns the domain member's wire address: the transport address
// for distributed domains, the name for local ones.
func (d *Domain) Addr() string {
	if d.tr != nil {
		return d.tr.Addr()
	}
	return d.name
}

// Registry returns the domain's obvent type registry.
func (d *Domain) Registry() *obvent.Registry { return d.reg }

// Register records the concrete types of the samples as obvent classes
// ahead of use. Publishing and subscribing register types lazily, so
// Register is only needed for classes this process never publishes or
// subscribes directly — typically subtypes published by other nodes
// that must still decode here (type knowledge is per-process).
func (d *Domain) Register(samples ...Obvent) error {
	for _, s := range samples {
		if _, err := d.reg.Register(s); err != nil {
			return fmt.Errorf("govents: register: %w", err)
		}
	}
	return nil
}

// Publish disseminates an obvent to every subscriber with a matching
// subscription — the paper's publish primitive (§3.2), the distributed
// analog of object creation: each subscriber receives a distinct clone.
// Dissemination is asynchronous; a nil error means the obvent was
// accepted by the substrate, not that it was delivered. ctx is
// consulted for cancellation before the obvent is handed down.
func (d *Domain) Publish(ctx context.Context, o Obvent) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCannotPublish, err)
	}
	return d.eng.Publish(o)
}

// SetPeers installs the domain membership (all node transport
// addresses, including this one) and re-advertises local subscriptions
// to it. It fails on a local domain.
func (d *Domain) SetPeers(peers ...string) error {
	if d.node == nil {
		return fmt.Errorf("govents: domain %q is local: no peers", d.name)
	}
	d.node.SetPeers(peers)
	return nil
}

// RemoteSubscriptionCount reports how many remote subscriptions this
// member currently knows — the signal that subscription advertisements
// have propagated. Always zero on a local domain.
func (d *Domain) RemoteSubscriptionCount() int {
	if d.node == nil {
		return 0
	}
	return d.node.RemoteSubscriptionCount()
}

// Stats returns the domain's cumulative delivery counters.
func (d *Domain) Stats() DispatchStats { return d.eng.Stats() }

// Histograms returns an immutable snapshot of the per-stage latency
// histograms, keyed by stage name (publish_to_route, route_to_write,
// wire_to_lane, lane_wait, dispatch, e2e). All durations are
// nanoseconds. Empty histograms mean telemetry is off (WithTelemetry
// false) or the stage has not run — e.g. e2e needs a wire-capable
// remote publisher.
func (d *Domain) Histograms() map[string]StageSnapshot {
	return d.tele.Histograms()
}

// DroppedByReason returns the cumulative count of events dropped per
// reason (expired, decode_error, handler_panic, executor_closed).
func (d *Domain) DroppedByReason() map[string]uint64 {
	return d.tele.DroppedByReason()
}

// LaneOccupancies returns the last-sampled queue depth of each dispatch
// lane (the serial lane has Lane -1, matching LaneStats order).
func (d *Domain) LaneOccupancies() []LaneOccupancy {
	return d.tele.LaneOccupancies()
}

// MetricsAddr returns the effective listen address of the metrics
// endpoint (useful with a ":0" WithMetricsAddr), or "" when the domain
// was opened without one.
func (d *Domain) MetricsAddr() string {
	if d.metrics == nil {
		return ""
	}
	return d.metrics.addr()
}

// LaneStats returns per-lane dispatcher counters: the serial
// (ordered/prioritary) lane first, then each parallel lane.
func (d *Domain) LaneStats() []LaneStat { return d.eng.LaneStats() }

// DispatchLanes returns the number of parallel dispatch lanes.
func (d *Domain) DispatchLanes() int { return d.eng.DispatchLanes() }

// RoutingStats returns the routing-plane counters of a distributed
// domain, folded over all classes. Zero on a local domain.
func (d *Domain) RoutingStats() RoutingStats {
	if d.node == nil {
		return RoutingStats{}
	}
	return d.node.RoutingStats()
}

// RoutingStatsByClass breaks the routing counters out per obvent class.
// Nil on a local domain.
func (d *Domain) RoutingStatsByClass() map[string]RoutingStats {
	if d.node == nil {
		return nil
	}
	return d.node.RoutingStatsByClass()
}

// DurableStats returns the cumulative counters of the durability plane,
// folded over all certified classes. Zero without WithDurability.
func (d *Domain) DurableStats() DurableStats {
	if d.dur == nil {
		return DurableStats{}
	}
	return d.dur.Stats()
}

// CompactDurable reclaims durable log space: fully-acknowledged sealed
// segments of every class's outbox and inbox are dropped after a
// snapshot of the surviving acknowledgement state. It fails with
// ErrNoDurability on a domain opened without WithDurability. Safe to
// call at any time; events still owed to any durable consumer are
// always retained.
func (d *Domain) CompactDurable() error {
	if d.dur == nil {
		return fmt.Errorf("govents: compact %q: %w", d.name, ErrNoDurability)
	}
	if err := d.dur.Compact(); err != nil {
		return fmt.Errorf("govents: compact %q: %w", d.name, err)
	}
	return nil
}

// TupleSpace returns the domain's tuple space (paper §6.3), created
// lazily on first use and closed with the domain. The space is
// in-process: the paper's Linda baseline, reachable from the same
// facade so applications can mix coordination styles.
func (d *Domain) TupleSpace() *tuplespace.Space {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ts == nil {
		d.ts = tuplespace.New()
	}
	return d.ts
}

// Topics returns the domain's topic-based bus (paper §2.3.2), created
// lazily on first use. Like the tuple space, it is the in-process
// baseline abstraction sharing the facade.
func (d *Domain) Topics() *topics.Bus {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.topics == nil {
		d.topics = topics.New()
	}
	return d.topics
}

// RMI returns the domain's remote-method-invocation runtime, or nil if
// the domain was opened without WithRMI.
func (d *Domain) RMI() *rmi.Runtime { return d.rmiRT }

// Close shuts the domain down: it deactivates all subscriptions,
// drains in-flight deliveries, closes the dissemination substrate, the
// owned transports, the RMI runtime and the tuple space. Close is
// idempotent; if ctx expires first, Close returns ctx.Err() while
// shutdown continues in the background, and a later Close call waits
// for that same shutdown to finish.
func (d *Domain) Close(ctx context.Context) error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.closeDone = make(chan struct{})
		ts := d.ts
		go func() {
			if d.metrics != nil {
				d.metrics.close() // stop scrapes before state goes down
			}
			if d.retainStop != nil {
				// Stop the retention ticker before the durable logs
				// close underneath its compaction pass.
				close(d.retainStop)
				<-d.retainDone
			}
			err := d.eng.Close() // drains handlers, closes the disseminator
			if d.dur != nil {
				// After the engine: in-flight certified deliveries may
				// still append acknowledgements until the substrate is
				// down.
				if cerr := d.dur.Close(); err == nil {
					err = cerr
				}
			}
			if ts != nil {
				ts.Close()
			}
			if d.rmiRT != nil {
				if cerr := d.rmiRT.Close(); err == nil {
					err = cerr
				}
			}
			if d.tr != nil {
				if cerr := d.tr.Close(); err == nil {
					err = cerr
				}
			}
			if d.rmiTr != nil {
				if cerr := d.rmiTr.Close(); err == nil {
					err = cerr
				}
			}
			d.closeErr = err
			close(d.closeDone)
		}()
	}
	done := d.closeDone
	d.mu.Unlock()

	select {
	case <-done:
		return d.closeErr
	case <-ctx.Done():
		return fmt.Errorf("govents: close %q: %w", d.name, ctx.Err())
	}
}
