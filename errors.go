package govents

import (
	"govents/internal/codec"
	"govents/internal/core"
	"govents/internal/durable"
	"govents/internal/filter"
)

// Sentinel errors of the public API. Every error returned by a Domain
// or Subscription wraps the relevant sentinel with %w, so callers
// discriminate with errors.Is instead of parsing messages. The
// sentinels are shared with the internal layers: an error produced
// deep in the engine matches the same sentinel up here.
var (
	// ErrClosed reports an operation on a closed Domain (or one whose
	// engine shut down underneath it).
	ErrClosed = core.ErrEngineClosed
	// ErrUnregistered reports an obvent class unknown to the domain's
	// type registry (e.g. decoding an envelope of a never-registered
	// class).
	ErrUnregistered = codec.ErrUnregistered
	// ErrBadFilter reports a structurally invalid filter expression.
	ErrBadFilter = filter.ErrInvalid

	// The notification errors mirror the paper's exception hierarchy
	// (Figure 3): every publish failure wraps ErrCannotPublish, every
	// subscribe failure ErrCannotSubscribe, every deactivation failure
	// ErrCannotUnsubscribe.
	ErrCannotPublish     = core.ErrCannotPublish
	ErrCannotSubscribe   = core.ErrCannotSubscribe
	ErrCannotUnsubscribe = core.ErrCannotUnsubscribe

	// ErrSlowConsumer tags deliveries dropped because a quarantined
	// slow consumer's bounded mailbox overflowed (see
	// WithSlowConsumerBudget). It is an accounting sentinel — the
	// counts appear in DispatchStats.SlowConsumerDrops and under the
	// "slow_consumer" drop reason; handlers never receive it.
	ErrSlowConsumer = core.ErrSlowConsumer

	// ErrNoDurability reports a durable operation (SubscribeDurable,
	// CompactDurable) on a domain opened without WithDurability.
	ErrNoDurability = durable.ErrNoDurability
	// ErrDurableConflict reports a SubscribeDurable with a durable
	// identity already active in this domain member for the same class.
	ErrDurableConflict = durable.ErrDurableConflict
)
