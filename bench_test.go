// Benchmark harness: one benchmark per experiment of DESIGN.md §4.
// The paper's evaluation is qualitative; every one of its performance
// claims is regenerated here as a measurable series (cmd/loadgen prints
// the same series as tables). Shapes, not absolute numbers, are the
// reproduction target.
package govents_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents"

	"govents/internal/accessor"
	"govents/internal/codec"
	"govents/internal/content"
	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/filter"
	"govents/internal/matching"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/rmi"
	"govents/internal/routing"
	"govents/internal/store"
	"govents/internal/telemetry"
	"govents/internal/topics"
	"govents/internal/tuplespace"
	"govents/internal/wire"
	"govents/internal/workload"
)

func fastOpts() multicast.Options {
	return multicast.Options{RetransmitInterval: 5 * time.Millisecond, GossipPeriod: 3 * time.Millisecond}
}

// benchDomain builds n dace nodes + engines over a fresh netsim.
func benchDomain(b *testing.B, net *netsim.Network, n int, cfg dace.Config) ([]*dace.Node, []*core.Engine) {
	b.Helper()
	var nodes []*dace.Node
	var engines []*core.Engine
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("node-%02d", i)
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			b.Fatal(err)
		}
		reg := obvent.NewRegistry()
		workload.RegisterTypes(reg)
		dn := dace.NewNode(ep, reg, cfg)
		engines = append(engines, core.NewEngine(addr, dn, core.WithRegistry(reg)))
		nodes = append(nodes, dn)
		addrs[i] = addr
	}
	for _, dn := range nodes {
		dn.SetPeers(addrs)
	}
	b.Cleanup(func() {
		for _, e := range engines {
			_ = e.Close()
		}
	})
	return nodes, engines
}

func waitUntil(b *testing.B, timeout time.Duration, cond func() bool) {
	b.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatal("bench condition timeout")
}

// --- F1: type-based matching vs hierarchy (paper Figure 1) ---

// BenchmarkF1TypeMatching measures subtype-closed matching throughput:
// the cost of deciding, per published class, whether it conforms to a
// subscribed (super)type at increasing hierarchy distance.
func BenchmarkF1TypeMatching(b *testing.B) {
	reg := obvent.NewRegistry()
	workload.RegisterTypes(reg)
	spot := obvent.TypeName(obvent.TypeOf[workload.SpotPrice]())
	targets := map[string]string{
		"same-class":     spot,
		"parent":         obvent.TypeName(obvent.TypeOf[workload.StockRequest]()),
		"grandparent":    obvent.TypeName(obvent.TypeOf[workload.StockObvent]()),
		"non-conforming": obvent.TypeName(obvent.TypeOf[workload.StockQuote]()),
	}
	for name, target := range targets {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reg.ConformsTo(spot, target)
			}
		})
	}
}

// --- C1: remote filtering & factoring (paper §2.3.2) ---

// BenchmarkC1RemoteFiltering compares network messages per published
// obvent with subscriber-side vs publisher-side filter placement at 10%
// selectivity.
func BenchmarkC1RemoteFiltering(b *testing.B) {
	for _, tc := range []struct {
		name      string
		placement dace.Placement
	}{
		{"at-subscriber", dace.AtSubscriber},
		{"at-publisher", dace.AtPublisher},
	} {
		b.Run(tc.name, func(b *testing.B) {
			net := netsim.New(netsim.Config{})
			defer net.Close()
			nodes, engines := benchDomain(b, net, 2, dace.Config{Placement: tc.placement, Multicast: fastOpts()})
			var got atomic.Int64
			f := filter.Path("GetPrice").Lt(filter.Float(100)) // ~10% of [1,1000)
			sub, err := core.Subscribe(engines[1], f, func(q workload.StockQuote) { got.Add(1) })
			if err != nil {
				b.Fatal(err)
			}
			_ = sub.Activate()
			waitUntil(b, 5*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= 1 })
			net.Settle()
			net.ResetStats()
			gen := workload.NewQuoteGen(1, 20)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.Publish(engines[0], gen.Next()); err != nil {
					b.Fatal(err)
				}
			}
			net.Settle()
			b.StopTimer()
			sent, bytes, _, _ := net.Stats()
			b.ReportMetric(float64(sent)/float64(b.N), "msgs/op")
			b.ReportMetric(float64(bytes)/float64(b.N), "wirebytes/op")
		})
	}
}

// BenchmarkC1Factoring compares naive per-subscription filter
// evaluation against the compound (factored) matcher.
func BenchmarkC1Factoring(b *testing.B) {
	gen := workload.NewQuoteGen(2, 20)
	for _, subs := range []int{10, 100, 1000} {
		c := matching.New()
		for i, spec := range gen.Interests(subs) {
			if err := c.Add(fmt.Sprintf("s%04d", i), spec.Filter()); err != nil {
				b.Fatal(err)
			}
		}
		q := gen.Next()
		b.Run(fmt.Sprintf("naive/subs=%d", subs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.MatchNaive(q)
			}
		})
		b.Run(fmt.Sprintf("compound/subs=%d", subs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Match(q)
			}
		})
	}
}

// --- C2: delivery semantics cost (paper §3.1.2) ---

// BenchmarkC2Semantics measures end-to-end publish+deliver cost per
// delivery semantics on a 4-node domain (3 subscribers).
func BenchmarkC2Semantics(b *testing.B) {
	type pubFn func(e *core.Engine, q workload.StockObvent) error
	cases := []struct {
		name string
		pub  pubFn
	}{
		{"unreliable", func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.StockQuote{StockObvent: q})
		}},
		{"reliable", func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteReliable{StockObvent: q})
		}},
		{"fifo", func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteFIFO{StockObvent: q})
		}},
		{"causal", func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteCausal{StockObvent: q})
		}},
		{"total", func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteTotal{StockObvent: q})
		}},
		{"certified", func(e *core.Engine, q workload.StockObvent) error {
			return core.Publish(e, workload.QuoteCertified{StockObvent: q})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			net := netsim.New(netsim.Config{})
			defer net.Close()
			nodes, engines := benchDomain(b, net, 4, dace.Config{Multicast: fastOpts()})
			var got atomic.Int64
			for _, e := range engines[1:] {
				sub, err := core.Subscribe(e, nil, func(o workload.StockObvent) { got.Add(1) })
				if err != nil {
					b.Fatal(err)
				}
				_ = sub.Activate()
			}
			waitUntil(b, 5*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= 3 })
			net.Settle() // drain control-plane traffic before timing
			net.ResetStats()
			gen := workload.NewQuoteGen(3, 10)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tc.pub(engines[0], gen.Next().StockObvent); err != nil {
					b.Fatal(err)
				}
			}
			want := int64(b.N * 3)
			waitUntil(b, time.Minute, func() bool { return got.Load() >= want })
			b.StopTimer()
			sent, _, _, _ := net.Stats()
			b.ReportMetric(float64(sent)/float64(b.N), "msgs/op")
		})
	}
}

// --- C3: gossip scalability (paper §4.2) ---

// BenchmarkC3Gossip measures time for one publication to saturate
// groups of increasing size through the gossip channel, under 20% loss.
func BenchmarkC3Gossip(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			net := netsim.New(netsim.Config{LossRate: 0.2, Seed: int64(n)})
			defer net.Close()
			opts := fastOpts()
			opts.GossipFanout = 5
			opts.GossipRounds = 10
			nodes, engines := benchDomain(b, net, n, dace.Config{GossipUnreliable: true, Multicast: opts})
			var got atomic.Int64
			for _, e := range engines[1:] {
				sub, err := core.Subscribe(e, nil, func(q workload.StockQuote) { got.Add(1) })
				if err != nil {
					b.Fatal(err)
				}
				_ = sub.Activate()
			}
			waitUntil(b, 10*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= n-1 })
			gen := workload.NewQuoteGen(5, 5)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				want := got.Load() + int64(n-1)*9/10 // 90% saturation
				if err := core.Publish(engines[0], gen.Next()); err != nil {
					b.Fatal(err)
				}
				waitUntil(b, 30*time.Second, func() bool { return got.Load() >= want })
			}
		})
	}
}

// --- C4: subscription-scheme baselines (paper §2.3.2, §5, §6) ---

// BenchmarkC4Baselines measures matching cost per event against 1000
// subscriptions for each subscription scheme.
func BenchmarkC4Baselines(b *testing.B) {
	const subs = 1000
	gen := workload.NewQuoteGen(7, 20)
	specs := gen.Interests(subs)
	q := gen.Next()

	b.Run("type-based-compound", func(b *testing.B) {
		c := matching.New()
		for i, s := range specs {
			if err := c.Add(fmt.Sprintf("s%d", i), s.Filter()); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Match(q)
		}
	})
	b.Run("topic-based", func(b *testing.B) {
		tb := topics.New()
		for _, s := range specs {
			if _, err := tb.Subscribe("stocks."+s.Company, func(string, any) {}); err != nil {
				b.Fatal(err)
			}
		}
		topic := "stocks." + q.Company
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Publish(topic, q)
		}
	})
	b.Run("content-attr-value", func(b *testing.B) {
		cb := content.New()
		for _, s := range specs {
			if _, err := cb.Subscribe([]content.Pred{
				{Attr: "company", Op: content.Eq, Val: s.Company},
				{Attr: "price", Op: content.Lt, Val: s.MaxPrice},
			}, func(content.Event) {}); err != nil {
				b.Fatal(err)
			}
		}
		ev := content.Event{"company": q.Company, "price": q.Price, "amount": q.Amount}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cb.Publish(ev)
		}
	})
	b.Run("tuple-space", func(b *testing.B) {
		ts := tuplespace.New()
		defer ts.Close()
		for _, s := range specs {
			ts.Notify(tuplespace.Template{tuplespace.Val(s.Company), tuplespace.Type[float64]()}, func(tuplespace.Tuple) {})
		}
		tp := tuplespace.Tuple{q.Company, q.Price}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ts.Out(tp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C5: thread policies (paper §3.3.5) ---

// BenchmarkC5ThreadPolicies measures handler throughput with a 200µs
// blocking handler under each thread policy.
func BenchmarkC5ThreadPolicies(b *testing.B) {
	policies := []struct {
		name  string
		apply func(*core.Subscription)
	}{
		{"single", func(s *core.Subscription) { s.SetSingleThreading() }},
		{"multi-4", func(s *core.Subscription) { s.SetMultiThreading(4) }},
		{"multi-unbounded", func(s *core.Subscription) { s.SetMultiThreading(0) }},
	}
	for _, tc := range policies {
		b.Run(tc.name, func(b *testing.B) {
			e := core.NewEngine("c5", core.NewLocal())
			defer e.Close()
			workload.RegisterTypes(e.Registry())
			var wg sync.WaitGroup
			sub, err := core.Subscribe(e, nil, func(q workload.StockQuote) {
				time.Sleep(200 * time.Microsecond)
				wg.Done()
			})
			if err != nil {
				b.Fatal(err)
			}
			tc.apply(sub)
			_ = sub.Activate()
			gen := workload.NewQuoteGen(11, 5)
			b.ResetTimer()
			wg.Add(b.N)
			for i := 0; i < b.N; i++ {
				if err := core.Publish(e, gen.Next()); err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
		})
	}
}

// --- C6: RMI vs publish/subscribe fanout (paper §5.4) ---

// BenchmarkC6RMIvsPubsub measures one notification round to N
// receivers via N synchronous RMI calls vs one reliable publish.
func BenchmarkC6RMIvsPubsub(b *testing.B) {
	latency := netsim.Config{MinLatency: 100 * time.Microsecond, MaxLatency: 200 * time.Microsecond}
	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("rmi/receivers=%d", n), func(b *testing.B) {
			net := netsim.New(latency)
			defer net.Close()
			callerEp, err := net.NewEndpoint("caller")
			if err != nil {
				b.Fatal(err)
			}
			caller := rmi.New(callerEp, rmi.Options{})
			defer caller.Close()
			proxies := make([]*rmi.Proxy, n)
			for i := 0; i < n; i++ {
				ep, err := net.NewEndpoint(fmt.Sprintf("recv-%02d", i))
				if err != nil {
					b.Fatal(err)
				}
				rt := rmi.New(ep, rmi.Options{})
				defer rt.Close()
				if err := rt.Bind("sink", &benchSink{}); err != nil {
					b.Fatal(err)
				}
				proxies[i] = caller.Dial(ep.Addr(), "sink")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range proxies {
					if err := p.Call("Notify", []any{"quote", 80.0}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("pubsub/receivers=%d", n), func(b *testing.B) {
			net := netsim.New(latency)
			defer net.Close()
			nodes, engines := benchDomain(b, net, n+1, dace.Config{Multicast: fastOpts()})
			var got atomic.Int64
			for _, e := range engines[1:] {
				sub, err := core.Subscribe(e, nil, func(q workload.QuoteReliable) { got.Add(1) })
				if err != nil {
					b.Fatal(err)
				}
				_ = sub.Activate()
			}
			waitUntil(b, 10*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= n })
			net.Settle() // drain the subscription-advertisement storm
			gen := workload.NewQuoteGen(13, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				want := got.Load() + int64(n)
				if err := core.Publish(engines[0], workload.QuoteReliable{StockObvent: gen.Next().StockObvent}); err != nil {
					b.Fatal(err)
				}
				waitUntil(b, 30*time.Second, func() bool { return got.Load() >= want })
			}
		})
	}
}

// benchSink is the RMI notification receiver.
type benchSink struct{}

// Notify accepts a notification.
func (s *benchSink) Notify(what string, price float64) {}

// --- C7: engine dispatch pipeline (indexed vs naive) ---

// BenchmarkDispatch measures the engine's per-envelope delivery cost
// end to end (publish → inbox → match → clone → handler) for the naive
// per-subscription path (the seed's dispatch loop, kept behind
// WithNaiveDispatch) against the indexed pipeline (type bucket +
// compound matcher + clone-per-match). Subscriptions hold distinct
// GetPrice thresholds spread over [0, 1000); selectivity is the
// fraction of subscriptions the published quote matches.
func BenchmarkDispatch(b *testing.B) {
	modes := []struct {
		name string
		opts []core.Option
	}{
		{"naive", []core.Option{core.WithNaiveDispatch()}},
		{"indexed", nil},
	}
	for _, subs := range []int{10, 100, 1000} {
		for _, sel := range []struct {
			name string
			frac float64
		}{{"sel=1pct", 0.01}, {"sel=10pct", 0.10}} {
			for _, mode := range modes {
				b.Run(fmt.Sprintf("%s/subs=%d/%s", mode.name, subs, sel.name), func(b *testing.B) {
					benchDispatch(b, subs, sel.frac, mode.opts...)
				})
			}
		}
	}
}

func benchDispatch(b *testing.B, nSubs int, frac float64, opts ...core.Option) {
	e := core.NewEngine("bench-dispatch", core.NewLocal(), opts...)
	defer func() { _ = e.Close() }()
	workload.RegisterTypes(e.Registry())

	var got atomic.Int64
	// Thresholds sit at (i+0.5)*1000/n; placing the price on a grid
	// boundary makes exactly `matches` of them exceed it (at least one,
	// so low-subscriber cells never degenerate to an empty workload).
	matches := int(frac * float64(nSubs))
	if matches < 1 {
		matches = 1
	}
	price := float64(nSubs-matches) * 1000 / float64(nSubs)
	for i := 0; i < nSubs; i++ {
		threshold := (float64(i) + 0.5) * 1000 / float64(nSubs)
		f := filter.Path("GetPrice").Lt(filter.Float(threshold))
		sub, err := core.Subscribe(e, f, func(q workload.StockQuote) { got.Add(1) })
		if err != nil {
			b.Fatal(err)
		}
		if err := sub.Activate(); err != nil {
			b.Fatal(err)
		}
	}
	q := workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: price, Amount: 1}}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Publish(e, q); err != nil {
			b.Fatal(err)
		}
	}
	want := int64(b.N * matches)
	waitUntil(b, time.Minute, func() bool { return got.Load() >= want })
	b.StopTimer()
	b.ReportMetric(float64(matches), "matches/op")
}

// BenchmarkDispatchOverhead is the telemetry overhead gate: the same
// dispatch workload (1000 subscriptions, 1% selectivity) with the
// telemetry plane disabled and enabled. CI asserts the enabled ns/op
// stays within 5% of disabled (benchjson -gate). The enabled run also
// reports the end-to-end latency quantiles its histograms observed, so
// BENCH_dispatch.json carries p50/p99 alongside throughput.
func BenchmarkDispatchOverhead(b *testing.B) {
	b.Run("telemetry=off", func(b *testing.B) {
		benchDispatch(b, 1000, 0.01, core.WithTelemetry(nil))
	})
	b.Run("telemetry=on", func(b *testing.B) {
		p := telemetry.NewPlane()
		benchDispatch(b, 1000, 0.01, core.WithTelemetry(p))
		if e2e := p.StageSnapshot(telemetry.StageE2E); e2e.Count > 0 {
			b.ReportMetric(float64(e2e.Quantile(0.5)), "p50_ns")
			b.ReportMetric(float64(e2e.Quantile(0.99)), "p99_ns")
		}
	})
}

// sinkTap is a Disseminator that exposes the engine's delivery sink for
// direct envelope injection. Benchmarks use it to drive the dispatcher
// from many publisher goroutines at once: the loopback substrate's
// serial queue would otherwise serialize the workload upstream of the
// lanes being measured.
type sinkTap struct{ sink func(*codec.Envelope) }

func (s *sinkTap) PublishEnvelope(env *codec.Envelope) error { s.sink(env); return nil }

func (s *sinkTap) SetSink(sink func(*codec.Envelope)) { s.sink = sink }

func (s *sinkTap) SubscriptionChanged([]core.SubscriptionInfo) error { return nil }

func (s *sinkTap) Close() error { return nil }

// BenchmarkDispatchParallel measures multi-lane dispatch throughput:
// 1000 filtered subscriptions, an unordered workload at 1% selectivity,
// and more concurrent publishers than lanes, delivered straight into the
// engine sink. Envelopes hash by publisher across the parallel lanes, so
// throughput should scale with the lane count on a multi-core runner
// (lanes=1 is the serialized baseline).
func BenchmarkDispatchParallel(b *testing.B) {
	const (
		nSubs      = 1000
		publishers = 8
	)
	for _, lanes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			tap := &sinkTap{}
			e := core.NewEngine("bench-parallel", tap, core.WithDispatchLanes(lanes))
			defer func() { _ = e.Close() }()
			workload.RegisterTypes(e.Registry())

			var got atomic.Int64
			const matches = nSubs / 100
			price := float64(nSubs-matches) * 1000 / float64(nSubs)
			for i := 0; i < nSubs; i++ {
				threshold := (float64(i) + 0.5) * 1000 / float64(nSubs)
				f := filter.Path("GetPrice").Lt(filter.Float(threshold))
				sub, err := core.Subscribe(e, f, func(q workload.StockQuote) { got.Add(1) })
				if err != nil {
					b.Fatal(err)
				}
				if err := sub.Activate(); err != nil {
					b.Fatal(err)
				}
			}

			// One pre-encoded envelope per publisher identity; encoding
			// happens off the clock so only routing+dispatch is measured.
			q := workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: price, Amount: 1}}
			envs := make([]*codec.Envelope, publishers)
			for p := range envs {
				env, err := e.Codec().Encode(q)
				if err != nil {
					b.Fatal(err)
				}
				env.Publisher = fmt.Sprintf("publisher-%02d", p)
				envs[p] = env
			}

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				n := b.N / publishers
				if p < b.N%publishers {
					n++
				}
				wg.Add(1)
				go func(env *codec.Envelope, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						tap.sink(env)
					}
				}(envs[p], n)
			}
			wg.Wait()
			want := int64(b.N) * matches
			waitUntil(b, 5*time.Minute, func() bool { return got.Load() >= want })
			b.StopTimer()
			b.ReportMetric(float64(matches), "matches/op")
		})
	}
}

// BenchmarkOverload measures the bounded-lane layer. The unbounded /
// bounded-idle pair is the CI fast-path gate: with a bound configured
// but never reached, dispatch must stay within 5% of the unbounded
// baseline (benchjson -gate). The policy=* cells saturate a small bound
// with more publishers than lanes and report the per-envelope cost of
// each overload policy under pressure, its shed/spill accounting, and
// the delivered latency p99. Part of the dispatch CI family archived
// into BENCH_dispatch.json.
func BenchmarkOverload(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) { benchDispatch(b, 100, 0.10) })
	b.Run("bounded-idle", func(b *testing.B) {
		benchDispatch(b, 100, 0.10,
			core.WithLaneQueueBound(1<<16), core.WithOverloadPolicy(core.OverloadBlock))
	})
	for _, pol := range []struct {
		name   string
		policy core.OverloadPolicy
	}{
		{"block", core.OverloadBlock},
		{"drop-oldest", core.OverloadDropOldest},
		{"spill", core.OverloadSpill},
	} {
		b.Run("policy="+pol.name, func(b *testing.B) { benchOverloadPolicy(b, pol.policy) })
	}
}

func benchOverloadPolicy(b *testing.B, policy core.OverloadPolicy) {
	const (
		publishers = 8
		lanes      = 2
		bound      = 256
	)
	tap := &sinkTap{}
	p := telemetry.NewPlane()
	opts := []core.Option{
		core.WithDispatchLanes(lanes),
		core.WithLaneQueueBound(bound),
		core.WithOverloadPolicy(policy),
		core.WithTelemetry(p),
	}
	if policy == core.OverloadSpill {
		opts = append(opts, core.WithSpillDir(b.TempDir()))
	}
	e := core.NewEngine("bench-overload", tap, opts...)
	defer func() { _ = e.Close() }()
	workload.RegisterTypes(e.Registry())

	// One subscription doing a fixed slice of work per delivery, so
	// `publishers` producers outrun `lanes` drains and the bound
	// genuinely engages (the handler cost is identical across policies,
	// so the cells compare overload machinery, not handler speed).
	var got atomic.Int64
	sub, err := core.Subscribe(e, nil, func(q workload.StockQuote) {
		h := uint64(14695981039346656037)
		for i := 0; i < 256; i++ {
			h = (h ^ uint64(i)) * 1099511628211
		}
		if h == 0 { // never: keeps the spin from being elided
			return
		}
		got.Add(1)
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sub.Activate(); err != nil {
		b.Fatal(err)
	}

	q := workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: 1, Amount: 1}}
	envs := make([]*codec.Envelope, publishers)
	for i := range envs {
		env, err := e.Codec().Encode(q)
		if err != nil {
			b.Fatal(err)
		}
		env.Publisher = fmt.Sprintf("publisher-%02d", i)
		envs[i] = env
	}

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		n := b.N / publishers
		if i < b.N%publishers {
			n++
		}
		wg.Add(1)
		go func(env *codec.Envelope, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				tap.sink(env)
			}
		}(envs[i], n)
	}
	wg.Wait()
	// Lossless policies deliver everything; DropOldest delivers the
	// survivors — wait for the lanes (memory and spill) to drain fully
	// either way, so the measured interval covers the whole backlog.
	waitUntil(b, 5*time.Minute, func() bool {
		for _, l := range e.LaneStats() {
			if l.Queued != 0 || l.SpillBacklog != 0 {
				return false
			}
		}
		return got.Load()+int64(e.Stats().Shed) >= int64(b.N)
	})
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.Shed)/float64(b.N), "shed/op")
	b.ReportMetric(float64(st.Spilled)/float64(b.N), "spilled/op")
	lat := p.StageSnapshot(telemetry.StageE2E)
	if lat.Count == 0 {
		lat = p.StageSnapshot(telemetry.StageDispatch)
	}
	if lat.Count > 0 {
		b.ReportMetric(float64(lat.Quantile(0.99)), "p99_ns")
	}
}

// --- C8: publisher-side routing plane (paper §2.3.2 at the dissemination layer) ---

// BenchmarkPublisherRouting measures the publisher's per-event
// destination decision with 1000 remote subscriptions spread across 16
// nodes: the per-entry baseline (one filter.Evaluate per advertised
// subscription until its node matches — the pre-routing-plane
// destinationsFor loop) against the compiled routing plan (one compound
// evaluation per event, match IDs are nodes). Part of the dispatch CI
// family; cmd/benchjson archives it into BENCH_dispatch.json.
func BenchmarkPublisherRouting(b *testing.B) {
	const (
		nNodes = 16
		nSubs  = 1000
	)
	for _, sel := range []struct {
		name string
		frac float64
	}{{"sel=1pct", 0.01}, {"sel=10pct", 0.10}} {
		reg := obvent.NewRegistry()
		workload.RegisterTypes(reg)
		class := obvent.TypeName(obvent.TypeOf[workload.StockQuote]())
		tbl := routing.NewTable(reg)
		for n := 0; n < nNodes; n++ {
			var infos []core.SubscriptionInfo
			// Round-robin threshold spread, as in BenchmarkDispatch.
			for i := n; i < nSubs; i += nNodes {
				threshold := (float64(i) + 0.5) * 1000 / nSubs
				data, err := filter.MarshalCanonical(filter.Path("GetPrice").Lt(filter.Float(threshold)))
				if err != nil {
					b.Fatal(err)
				}
				infos = append(infos, core.SubscriptionInfo{
					ID:       fmt.Sprintf("node-%02d/sub-%04d", n, i),
					TypeName: class,
					Filter:   data,
				})
			}
			tbl.ApplySnapshot(fmt.Sprintf("node-%02d", n), 1, infos)
		}
		matches := int(sel.frac * nSubs)
		price := float64(nSubs-matches) * 1000 / nSubs
		var ev any = workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: price, Amount: 1}}

		b.Run(fmt.Sprintf("per-entry/subs=%d/%s", nSubs, sel.name), func(b *testing.B) {
			b.ReportAllocs()
			var nDests int
			for i := 0; i < b.N; i++ {
				nDests = len(tbl.DestinationsNaive(class, ev))
			}
			b.ReportMetric(float64(nDests), "dests/op")
		})
		b.Run(fmt.Sprintf("compound/subs=%d/%s", nSubs, sel.name), func(b *testing.B) {
			b.ReportAllocs()
			decode := func() any { return ev }
			dst := make([]string, 0, nNodes)
			var nDests int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = tbl.Destinations(class, decode, dst[:0])
				nDests = len(dst)
			}
			b.ReportMetric(float64(nDests), "dests/op")
		})
	}
}

// --- micro: primitive costs ---

// BenchmarkPublishLocal measures the publish primitive on the loopback
// substrate end to end (encode + dispatch + decode + handler).
func BenchmarkPublishLocal(b *testing.B) {
	e := core.NewEngine("micro", core.NewLocal())
	defer e.Close()
	workload.RegisterTypes(e.Registry())
	var wg sync.WaitGroup
	sub, err := core.Subscribe(e, nil, func(q workload.StockQuote) { wg.Done() })
	if err != nil {
		b.Fatal(err)
	}
	_ = sub.Activate()
	gen := workload.NewQuoteGen(17, 5)
	q := gen.Next()
	b.ResetTimer()
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		if err := core.Publish(e, q); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkFilterEvaluate measures single-filter evaluation (the
// paper's §2.3.3 example filter).
func BenchmarkFilterEvaluate(b *testing.B) {
	f := filter.And(
		filter.Path("GetPrice").Lt(filter.Float(100)),
		filter.Path("GetCompany").Contains(filter.Str("Telco")),
	)
	q := workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: 80}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filter.Evaluate(f, q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C9: compiled reflection (accessor programs + deep copiers) ---

// BenchmarkAccessor measures per-event accessor-path resolution: the
// reflective name-lookup walk (filter.ResolvePath, the pre-compile hot
// path and retained fallback) against the compiled per-(type, path)
// program (package accessor). "field" is a promoted struct field
// (Price, reached through the embedded StockObvent); "method" is the
// paper's encapsulated accessor form (GetPrice). Part of the dispatch
// CI family; cmd/benchjson archives it into BENCH_dispatch.json.
func BenchmarkAccessor(b *testing.B) {
	q := workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: 80, Amount: 1}}
	rv := reflect.ValueOf(q)
	for _, path := range []struct {
		name string
		segs []string
	}{
		{"field", []string{"Price"}},
		{"method", []string{"GetPrice"}},
	} {
		b.Run("reflective/"+path.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, err := filter.ResolvePath(rv, path.segs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := filter.ValueOf(v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("compiled/"+path.name, func(b *testing.B) {
			prog, err := accessor.Compile(rv.Type(), path.segs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Constant(rv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C10: compact wire format (compiled per-class codec programs) ---

// BenchmarkWireCodec measures payload encoding and decoding for a flat
// class and a pointer-bearing one: the gob baseline (a fresh
// encoder/decoder per event, which is what the envelope payload path
// paid before the wire format) against the compiled per-class wire
// program. Part of the dispatch CI family; cmd/benchjson archives it
// into BENCH_dispatch.json.
func BenchmarkWireCodec(b *testing.B) {
	cases := []struct {
		name string
		v    any
	}{
		{"flat", workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: 80, Amount: 1}}},
		{"pointer-bearing", quoteBook{
			Company: "Telco Mobiles",
			Bids:    []bookLevel{{99, 10}, {98, 25}, {97, 5}},
			Asks:    []bookLevel{{101, 8}, {102, 40}},
			Venue:   &venueInfo{Name: "XETRA", Country: "DE"},
			Meta:    map[string]string{"session": "open", "tier": "1"},
		}},
	}
	for _, tc := range cases {
		rt := reflect.TypeOf(tc.v)
		prog, err := wire.Compile(rt)
		if err != nil {
			b.Fatal(err)
		}
		rv := reflect.ValueOf(tc.v)
		wireData := prog.Append(nil, rv)
		var gobBuf bytes.Buffer
		if err := gob.NewEncoder(&gobBuf).Encode(tc.v); err != nil {
			b.Fatal(err)
		}
		gobData := append([]byte(nil), gobBuf.Bytes()...)

		b.Run("encode/gob/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := gob.NewEncoder(&buf).Encode(tc.v); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len()), "bytes/ev")
		})
		b.Run("encode/wire/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var data []byte
			for i := 0; i < b.N; i++ {
				data = prog.Append(data[:0], rv)
			}
			b.ReportMetric(float64(len(data)), "bytes/ev")
		})
		b.Run("decode/gob/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pv := reflect.New(rt)
				if err := gob.NewDecoder(bytes.NewReader(gobData)).DecodeValue(pv); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/wire/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rv := reflect.New(rt).Elem()
				if err := prog.Decode(wireData, rv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLazyRoute measures the publisher's per-event destination
// decision straight from an encoded envelope, with 1000 remote
// subscriptions spread across 16 nodes: the materializing path (decode
// the event from its payload, then evaluate the compound routing plan —
// what every wire-encoded event paid before lazy partial decode)
// against the lazy path (extract only the plan's referenced fields from
// the compact payload; the event value is never built). Subscriptions
// filter on the promoted Price field — a structural path the wire
// extractor can resolve from bytes. Part of the dispatch CI family.
func BenchmarkLazyRoute(b *testing.B) {
	const (
		nNodes = 16
		nSubs  = 1000
	)
	for _, sel := range []struct {
		name string
		frac float64
	}{{"sel=1pct", 0.01}, {"sel=10pct", 0.10}} {
		reg := obvent.NewRegistry()
		workload.RegisterTypes(reg)
		class := obvent.TypeName(obvent.TypeOf[workload.StockQuote]())
		tbl := routing.NewTable(reg)
		for n := 0; n < nNodes; n++ {
			var infos []core.SubscriptionInfo
			for i := n; i < nSubs; i += nNodes {
				threshold := (float64(i) + 0.5) * 1000 / nSubs
				data, err := filter.MarshalCanonical(filter.Path("Price").Lt(filter.Float(threshold)))
				if err != nil {
					b.Fatal(err)
				}
				infos = append(infos, core.SubscriptionInfo{
					ID:       fmt.Sprintf("node-%02d/sub-%04d", n, i),
					TypeName: class,
					Filter:   data,
				})
			}
			tbl.ApplySnapshot(fmt.Sprintf("node-%02d", n), 1, infos)
		}
		matches := int(sel.frac * nSubs)
		price := float64(nSubs-matches) * 1000 / nSubs
		q := workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco Mobiles", Price: price, Amount: 1}}
		c := codec.New(reg)
		env, err := c.Encode(q)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("materialize/subs=%d/%s", nSubs, sel.name), func(b *testing.B) {
			b.ReportAllocs()
			var src codec.CloneSource
			dec := func() any {
				o, err := src.Clone()
				if err != nil {
					return nil
				}
				return o
			}
			dst := make([]string, 0, nNodes)
			var nDests int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.SourceInto(env, &src); err != nil {
					b.Fatal(err)
				}
				dst = tbl.Destinations(class, dec, dst[:0])
				nDests = len(dst)
			}
			b.ReportMetric(float64(nDests), "dests/op")
		})
		b.Run(fmt.Sprintf("lazy/subs=%d/%s", nSubs, sel.name), func(b *testing.B) {
			b.ReportAllocs()
			var src codec.CloneSource
			full := func() (any, error) { return src.Clone() }
			dst := make([]string, 0, nNodes)
			var nDests int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.SourceInto(env, &src); err != nil {
					b.Fatal(err)
				}
				wp, payload, ok := src.Wire()
				if !ok {
					b.Fatal("envelope is not wire-encoded; the lazy side would silently measure materialization")
				}
				dst = tbl.DestinationsWire(class, wp, payload, full, dst[:0])
				nDests = len(dst)
			}
			st := tbl.Stats()
			b.StopTimer()
			if st.PartialDecodes == 0 {
				b.Fatal("no partial decodes recorded; the plan fell back to materialization")
			}
			b.ReportMetric(float64(nDests), "dests/op")
		})
	}
}

// quoteBook is the pointer-bearing benchmark class: an order book
// snapshot whose clones used to cost a full gob decode each.
type quoteBook struct {
	obvent.Base
	Company string
	Bids    []bookLevel
	Asks    []bookLevel
	Venue   *venueInfo
	Meta    map[string]string
}

type bookLevel struct {
	Price  float64
	Amount int
}

type venueInfo struct {
	Name    string
	Country string
}

// quoteBookGob carries the same payload but adds a recursive marker
// field, which the copier compiler rejects at compile time — pinning
// the gob-decode-per-clone baseline on an identical workload.
type quoteBookGob struct {
	obvent.Base
	Company string
	Bids    []bookLevel
	Asks    []bookLevel
	Venue   *venueInfo
	Meta    map[string]string
	Self    *quoteBookGob // recursive: forces the gob fallback; nil on the wire
}

// BenchmarkClonePointerBearing measures per-subscriber cloning of a
// pointer-bearing class: the gob-decode-per-clone baseline (a class the
// copier compiler rejects) against the compiled deep copier. Flat
// classes are unaffected (they keep the PR 2 value-copy fastpath).
// Part of the dispatch CI family.
func BenchmarkClonePointerBearing(b *testing.B) {
	reg := obvent.NewRegistry()
	reg.MustRegister(quoteBook{})
	reg.MustRegister(quoteBookGob{})
	c := codec.New(reg)

	bids := []bookLevel{{99, 10}, {98, 25}, {97, 5}}
	asks := []bookLevel{{101, 8}, {102, 40}}
	venue := &venueInfo{Name: "XETRA", Country: "DE"}
	meta := map[string]string{"session": "open", "tier": "1"}

	cases := []struct {
		name string
		o    obvent.Obvent
		// mode asserts which clone strategy the class resolved to (via
		// the codec's compile counters), so a silently changed copier
		// admission rule cannot make the two sides measure the same
		// thing. Checked per sub-benchmark: a -bench filter may select
		// either one alone.
		mode func(CopierStats codec.CopierStats) bool
	}{
		{
			"gob-fallback",
			quoteBookGob{Company: "Telco Mobiles", Bids: bids, Asks: asks, Venue: venue, Meta: meta},
			func(st codec.CopierStats) bool { return st.Rejects >= 1 },
		},
		{
			"compiled-copier",
			quoteBook{Company: "Telco Mobiles", Bids: bids, Asks: asks, Venue: venue, Meta: meta},
			func(st codec.CopierStats) bool { return st.Compiles >= 1 },
		},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			env, err := c.Encode(tc.o)
			if err != nil {
				b.Fatal(err)
			}
			src, err := c.Source(env)
			if err != nil {
				b.Fatal(err)
			}
			if !tc.mode(c.CopierStats()) {
				b.Fatalf("CopierStats = %+v: %s no longer resolves to its intended clone mode; results are not comparable", c.CopierStats(), tc.name)
			}
			if _, err := src.Clone(); err != nil { // warm the prototype
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Clone(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sparse multicast: interest-aware ordered & gossip classes ---

// BenchmarkSparseMulticast measures frames and bytes on the wire per
// published event for the interest-aware multicast classes at varying
// subscriber density on a 16-node domain. With ordered pruning on (the
// default), wire cost tracks the interested set instead of the group
// size; prunedsends/op and skipframes/op surface how much of the group
// each event avoided.
func BenchmarkSparseMulticast(b *testing.B) {
	const n = 16
	classes := []struct {
		name string
		cfg  dace.Config
		sub  func(e *core.Engine, c *atomic.Int64) error
		pub  func(e *core.Engine, i int) error
	}{
		{
			name: "class=fifo",
			cfg:  dace.Config{Multicast: fastOpts()},
			sub: func(e *core.Engine, c *atomic.Int64) error {
				s, err := core.Subscribe(e, nil, func(q workload.QuoteFIFO) { c.Add(1) })
				if err != nil {
					return err
				}
				return s.Activate()
			},
			pub: func(e *core.Engine, i int) error {
				return core.Publish(e, workload.QuoteFIFO{StockObvent: workload.StockObvent{Company: "Telco", Price: float64(i)}})
			},
		},
		{
			name: "class=total",
			cfg:  dace.Config{Multicast: fastOpts()},
			sub: func(e *core.Engine, c *atomic.Int64) error {
				s, err := core.Subscribe(e, nil, func(q workload.QuoteTotal) { c.Add(1) })
				if err != nil {
					return err
				}
				return s.Activate()
			},
			pub: func(e *core.Engine, i int) error {
				return core.Publish(e, workload.QuoteTotal{StockObvent: workload.StockObvent{Company: "Telco", Price: float64(i)}})
			},
		},
		{
			name: "class=gossip",
			cfg:  dace.Config{GossipUnreliable: true, Multicast: fastOpts()},
			sub: func(e *core.Engine, c *atomic.Int64) error {
				s, err := core.Subscribe(e, nil, func(q workload.StockQuote) { c.Add(1) })
				if err != nil {
					return err
				}
				return s.Activate()
			},
			pub: func(e *core.Engine, i int) error {
				return core.Publish(e, workload.StockQuote{StockObvent: workload.StockObvent{Company: "Telco", Price: float64(i)}})
			},
		},
	}
	densities := []struct {
		name string
		subs int
	}{
		{"density=1%", 1},       // 1 of 15 possible subscribers
		{"density=10%", 2},      // ~10%
		{"density=100%", n - 1}, // everyone else
	}
	for _, cl := range classes {
		for _, d := range densities {
			b.Run(cl.name+"/"+d.name, func(b *testing.B) {
				net := netsim.New(netsim.Config{})
				defer net.Close()
				nodes, engines := benchDomain(b, net, n, cl.cfg)
				var got atomic.Int64
				for _, e := range engines[1 : 1+d.subs] {
					if err := cl.sub(e, &got); err != nil {
						b.Fatal(err)
					}
				}
				waitUntil(b, 10*time.Second, func() bool { return nodes[0].RemoteSubscriptionCount() >= d.subs })
				net.Settle()
				net.ResetStats()

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := cl.pub(engines[0], i); err != nil {
						b.Fatal(err)
					}
				}
				want := int64(b.N) * int64(d.subs)
				waitUntil(b, 60*time.Second, func() bool { return got.Load() >= want })
				b.StopTimer()
				sent, bytes, _, _ := net.Stats()
				var pruned, skips uint64
				for _, dn := range nodes {
					st := dn.RoutingStats()
					pruned += st.PrunedSends
					skips += st.SkipFrames
				}
				b.ReportMetric(float64(sent)/float64(b.N), "msgs/op")
				b.ReportMetric(float64(bytes)/float64(b.N), "wirebytes/op")
				b.ReportMetric(float64(pruned)/float64(b.N), "prunedsends/op")
				b.ReportMetric(float64(skips)/float64(b.N), "skipframes/op")
			})
		}
	}
}

// --- Durable publish: certified cost under the durability plane ---

// BenchmarkDurablePublish measures certified publish+deliver cost on a
// two-node domain under four configurations: the seed baseline
// (WithCertifiedStores over in-memory stores), the default domain with
// no durability (must stay within the CI gate of the seed — the
// durability plane is pay-for-what-you-use), and the on-disk plane
// under both sync policies, exposing the fsync-per-record price
// (paper §3.4.1).
func BenchmarkDurablePublish(b *testing.B) {
	cases := []struct {
		name    string
		durable bool // subscribe under a durable identity
		opts    func(b *testing.B) []govents.Option
	}{
		{"seed", false, func(b *testing.B) []govents.Option {
			return []govents.Option{govents.WithCertifiedStores(store.NewMemLog(), store.NewMemSet())}
		}},
		{"durable=off", false, func(b *testing.B) []govents.Option { return nil }},
		{"sync=always", true, func(b *testing.B) []govents.Option {
			return []govents.Option{
				govents.WithDurability(b.TempDir()),
				govents.WithDurabilityTuning(govents.DurabilityTuning{Sync: govents.SyncAlways}),
			}
		}},
		{"sync=batch", true, func(b *testing.B) []govents.Option {
			return []govents.Option{
				govents.WithDurability(b.TempDir()),
				govents.WithDurabilityTuning(govents.DurabilityTuning{Sync: govents.SyncBatch}),
			}
		}},
	}
	ctx := context.Background()
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			net := netsim.New(netsim.Config{})
			defer net.Close()
			addrs := []string{"node-00", "node-01"}
			domains := make([]*govents.Domain, len(addrs))
			for i, addr := range addrs {
				ep, err := net.NewEndpoint(addr)
				if err != nil {
					b.Fatal(err)
				}
				opts := append([]govents.Option{
					govents.WithTransport(ep),
					// A long retransmit keeps redelivery ticks out of the
					// timed loop; the zero-latency net acks immediately.
					govents.WithTuning(govents.Tuning{RetransmitInterval: 250 * time.Millisecond}),
				}, tc.opts(b)...)
				d, err := govents.Open(ctx, addr, opts...)
				if err != nil {
					b.Fatal(err)
				}
				workload.RegisterTypes(d.Registry())
				domains[i] = d
			}
			defer func() {
				for _, d := range domains {
					_ = d.Close(ctx)
				}
			}()
			for _, d := range domains {
				if err := d.SetPeers(addrs...); err != nil {
					b.Fatal(err)
				}
			}

			var got atomic.Int64
			handler := func(q workload.QuoteCertified) { got.Add(1) }
			var err error
			if tc.durable {
				_, err = govents.SubscribeDurable(domains[1], "bench-sub", handler)
			} else {
				_, err = govents.Subscribe(domains[1], nil, handler)
			}
			if err != nil {
				b.Fatal(err)
			}
			waitUntil(b, 5*time.Second, func() bool { return domains[0].RemoteSubscriptionCount() >= 1 })
			net.Settle()
			gen := workload.NewQuoteGen(31, 10)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := domains[0].Publish(ctx, workload.QuoteCertified{StockObvent: gen.Next().StockObvent}); err != nil {
					b.Fatal(err)
				}
			}
			want := int64(b.N)
			waitUntil(b, time.Minute, func() bool { return got.Load() >= want })
			b.StopTimer()
		})
	}
}
