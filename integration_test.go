// Cross-module integration tests: the full stack (engine → DACE →
// multicast → transport) over real TCP sockets, and freshness of the
// psc-generated adapters committed in the examples.
package govents_test

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/dace"
	"govents/internal/filter"
	"govents/internal/multicast"
	"govents/internal/obvent"
	"govents/internal/psc"
	"govents/internal/transport"
	"govents/internal/workload"
)

// TestFullStackOverTCP runs a three-node domain on localhost TCP: typed
// subtype-closed subscriptions, a migratable filter applied at the
// publisher, and reliable delivery — the same path cmd/stocknode uses.
func TestFullStackOverTCP(t *testing.T) {
	type tcpNode struct {
		tr     *transport.TCP
		node   *dace.Node
		engine *core.Engine
	}
	mk := func() *tcpNode {
		tr, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		workload.RegisterTypes(reg)
		node := dace.NewNode(tr, reg, dace.Config{
			Placement: dace.AtPublisher,
			Multicast: multicast.Options{RetransmitInterval: 10 * time.Millisecond},
		})
		eng := core.NewEngine(tr.Addr(), node, core.WithRegistry(reg))
		return &tcpNode{tr: tr, node: node, engine: eng}
	}
	pub, subA, subB := mk(), mk(), mk()
	t.Cleanup(func() {
		_ = pub.engine.Close()
		_ = subA.engine.Close()
		_ = subB.engine.Close()
		_ = pub.tr.Close()
		_ = subA.tr.Close()
		_ = subB.tr.Close()
	})
	peers := []string{pub.tr.Addr(), subA.tr.Addr(), subB.tr.Addr()}
	pub.node.SetPeers(peers)
	subA.node.SetPeers(peers)
	subB.node.SetPeers(peers)

	// subA: filtered subscription to the concrete class.
	var cheap atomic.Int32
	sa, err := core.Subscribe(subA.engine,
		filter.Path("GetPrice").Lt(filter.Float(100)),
		func(q workload.StockQuote) { cheap.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Activate(); err != nil {
		t.Fatal(err)
	}
	// subB: supertype subscription — sees every quote.
	var all atomic.Int32
	sb, err := core.Subscribe(subB.engine, nil, func(o workload.StockObvent) { all.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Activate(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for pub.node.RemoteSubscriptionCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if pub.node.RemoteSubscriptionCount() < 2 {
		t.Fatal("subscription ads did not propagate over TCP")
	}

	quotes := []workload.StockQuote{
		{StockObvent: workload.StockObvent{Company: "Telco", Price: 80, Amount: 1}},
		{StockObvent: workload.StockObvent{Company: "Telco", Price: 500, Amount: 1}},
		{StockObvent: workload.StockObvent{Company: "Acme", Price: 50, Amount: 1}},
	}
	for _, q := range quotes {
		if err := core.Publish(pub.engine, q); err != nil {
			t.Fatal(err)
		}
	}

	deadline = time.Now().Add(10 * time.Second)
	for (cheap.Load() != 2 || all.Load() != 3) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cheap.Load() != 2 {
		t.Errorf("filtered subscriber got %d, want 2", cheap.Load())
	}
	if all.Load() != 3 {
		t.Errorf("supertype subscriber got %d, want 3", all.Load())
	}
}

// TestPscGeneratedAdaptersFresh regenerates the stocktrading example's
// adapters and verifies the committed psc_generated.go is up to date
// (the moral equivalent of a go:generate diff check).
func TestPscGeneratedAdaptersFresh(t *testing.T) {
	res, err := psc.Scan("examples/stocktrading")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("example filters violate mobility restrictions: %v", res.Violations)
	}
	want, err := psc.Generate(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("examples/stocktrading/psc_generated.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("examples/stocktrading/psc_generated.go is stale; rerun: go run ./cmd/psc -dir examples/stocktrading")
	}
}

// TestLiftedFilterMatchesHandWrittenSemantics checks that the psc-lifted
// CheapTelco expression accepts/rejects exactly like the Go function it
// was lifted from, over the workload generator.
func TestLiftedFilterMatchesHandWrittenSemantics(t *testing.T) {
	res, err := psc.Scan("examples/stocktrading")
	if err != nil {
		t.Fatal(err)
	}
	var src string
	for _, f := range res.Filters {
		if f.Name == "CheapTelco" {
			src = f.ExprSrc
		}
	}
	want := `filter.And(filter.Path("GetPrice").Lt(filter.Int(100)), filter.Path("GetCompany").Contains(filter.Str("Telco")))`
	if src != want {
		t.Fatalf("lifted CheapTelco = %s", src)
	}
	// Evaluate the equivalent expression against the oracle.
	f := filter.And(
		filter.Path("GetPrice").Lt(filter.Int(100)),
		filter.Path("GetCompany").Contains(filter.Str("Telco")),
	)
	gen := workload.NewQuoteGen(99, 10)
	for i := 0; i < 500; i++ {
		q := gen.Next()
		got, err := filter.Evaluate(f, q)
		if err != nil {
			t.Fatal(err)
		}
		oracle := q.Price < 100 && contains(q.Company, "Telco")
		if got != oracle {
			t.Fatalf("lifted filter disagrees with Go semantics on %+v", q)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
