package govents

import (
	"fmt"
	"reflect"

	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/obvent"
)

// A Subscription is the handle returned by the subscribe primitives: it
// identifies one subscription and controls its lifecycle (paper §3.4)
// and thread semantics (§3.3.5). Subscriptions returned by Subscribe,
// SubscribeLocal and SubscribeFiltered are already active;
// SubscribeInactive returns the paper's two-phase form, activated
// explicitly. Activation and deactivation can be interleaved without
// limit; a deactivated handle stays valid.
type Subscription struct {
	s *core.Subscription
	// release, when set (durable subscriptions), frees the domain's
	// durable-identity claim on deactivation.
	release func()
}

// ID returns the domain-unique subscription identifier.
func (s *Subscription) ID() string { return s.s.ID() }

// TypeName returns the wire name of the subscribed type.
func (s *Subscription) TypeName() string { return s.s.TypeName() }

// Active reports whether the subscription currently receives obvents.
func (s *Subscription) Active() bool { return s.s.Active() }

// Activate starts delivery — the effective action of subscribing
// (§3.4.1). Activating an already active subscription fails with
// ErrCannotSubscribe.
func (s *Subscription) Activate() error { return s.s.Activate() }

// ActivateDurable activates the subscription under a stable durable
// identity: the subscription's lifetime may exceed the hosting
// process, and a recovering process reclaims it — with its missed
// certified obvents — by presenting the same identity (§3.4.1).
func (s *Subscription) ActivateDurable(durableID string) error {
	return s.s.ActivateDurable(durableID)
}

// Deactivate stops delivery — the action of unsubscribing (§3.4.2).
// Deactivating an inactive subscription fails with
// ErrCannotUnsubscribe. Deactivating a durable subscription releases
// its durable-identity claim, letting a later SubscribeDurable in the
// same domain member reclaim the identity.
func (s *Subscription) Deactivate() error {
	if err := s.s.Deactivate(); err != nil {
		return err
	}
	if s.release != nil {
		s.release()
	}
	return nil
}

// SetSingleThreading makes the handler process at most one obvent at a
// time (paper §3.3.5).
func (s *Subscription) SetSingleThreading() { s.s.SetSingleThreading() }

// SetMultiThreading lets the handler process up to maxNb obvents
// concurrently; maxNb <= 0 means unlimited, the paper's default for
// unordered obvents.
func (s *Subscription) SetMultiThreading(maxNb int) { s.s.SetMultiThreading(maxNb) }

// Subscribe is the subscribe primitive (paper §2.3.2, §3.3): it
// combines a subscription to type T — which, by type-based matching,
// also receives all subtypes of T — with an optional migratable filter
// and a typed handler, and activates it immediately. Pass a nil filter
// to receive every instance of T.
//
// The filter is a first-class expression tree (govents/filter) that can
// be shipped to filtering hosts and factored with other subscribers'
// filters; accessors it names must be pure. T may be a struct obvent
// class or an interface (abstract obvent type); struct classes are
// registered lazily.
//
// For the paper's two-phase form — subscribe now, activate later — use
// SubscribeInactive.
func Subscribe[T Obvent](d *Domain, f *filter.Expr, handler func(T)) (*Subscription, error) {
	return subscribe[T](d, f, nil, handler, true)
}

// SubscribeInactive is Subscribe without the implicit activation: the
// returned subscription receives nothing until Activate (or
// ActivateDurable) is called — exactly the paper's
//
//	Subscription s = subscribe (StockQuote q) {filter} {handler};
//	s.activate();
func SubscribeInactive[T Obvent](d *Domain, f *filter.Expr, handler func(T)) (*Subscription, error) {
	return subscribe[T](d, f, nil, handler, false)
}

// SubscribeLocal subscribes with an opaque local predicate — the Go
// analog of a filter closure that violates the mobility restrictions
// of §3.3.4 and therefore runs at the subscriber: full expressive
// power, none of the traffic-saving benefits of a migratable filter.
// The subscription is active.
func SubscribeLocal[T Obvent](d *Domain, pred func(T) bool, handler func(T)) (*Subscription, error) {
	return subscribe[T](d, nil, pred, handler, true)
}

// SubscribeFiltered combines a migratable filter with an additional
// local predicate: the filter prunes traffic at filtering hosts, the
// predicate applies residual opaque logic at the subscriber. The
// subscription is active.
func SubscribeFiltered[T Obvent](d *Domain, f *filter.Expr, pred func(T) bool, handler func(T)) (*Subscription, error) {
	return subscribe[T](d, f, pred, handler, true)
}

// subscribe builds, registers and optionally activates a typed
// subscription.
func subscribe[T Obvent](d *Domain, f *filter.Expr, pred func(T) bool, handler func(T), activate bool) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	t := obvent.TypeOf[T]()
	if t.Kind() == reflect.Struct {
		// Lazy registration: first subscribe of a struct class
		// registers it (interfaces are registered by the engine).
		sample, ok := reflect.New(t).Elem().Interface().(Obvent)
		if !ok {
			return nil, fmt.Errorf("%w: %s is not an obvent class", ErrCannotSubscribe, t)
		}
		if _, err := d.reg.Register(sample); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
	}
	var local func(obvent.Obvent) bool
	if pred != nil {
		local = func(o obvent.Obvent) bool {
			v, ok := core.As[T](o)
			return ok && pred(v)
		}
	}
	cs, err := d.eng.SubscribeDynamic(t, f, local, func(o obvent.Obvent) {
		if v, ok := core.As[T](o); ok {
			handler(v)
		}
	})
	if err != nil {
		return nil, err
	}
	sub := &Subscription{s: cs}
	if activate {
		if err := sub.Activate(); err != nil {
			return nil, err
		}
	}
	return sub, nil
}
