// Package store is the public surface of the stable-storage primitives
// behind certified delivery (paper §3.1.2, §3.4.1): a publisher-side
// outbox Log and a subscriber-side delivered Set, each with an
// in-memory and a file-backed implementation. Pass them to
// govents.Open via WithCertifiedStores so certified obvents survive
// crashes and restarts.
package store

import internal "govents/internal/store"

// Log is the durable publisher outbox for certified obvents.
type Log = internal.Log

// Set is the durable subscriber delivered-set (exactly-once dedup).
type Set = internal.Set

// Entry is one logged certified publication.
type Entry = internal.Entry

// MemLog is an in-memory Log (lost on crash; tests and defaults).
type MemLog = internal.MemLog

// MemSet is an in-memory Set.
type MemSet = internal.MemSet

// FileLog is a file-backed Log (real stable storage).
type FileLog = internal.FileLog

// FileSet is a file-backed Set.
type FileSet = internal.FileSet

// ErrUnknownConsumer is returned for acknowledgements from consumers
// the log was never told about.
var ErrUnknownConsumer = internal.ErrUnknownConsumer

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return internal.NewMemLog() }

// NewMemSet returns an empty in-memory set.
func NewMemSet() *MemSet { return internal.NewMemSet() }

// OpenFileLog opens (creating if absent) a file-backed log.
func OpenFileLog(path string) (*FileLog, error) { return internal.OpenFileLog(path) }

// OpenFileSet opens (creating if absent) a file-backed set.
func OpenFileSet(path string) (*FileSet, error) { return internal.OpenFileSet(path) }
