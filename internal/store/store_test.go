package store

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// logFactory builds a fresh Log for the shared conformance tests.
type logFactory func(t *testing.T) Log

func factories() map[string]logFactory {
	return map[string]logFactory{
		"MemLog": func(t *testing.T) Log { return NewMemLog() },
		"FileLog": func(t *testing.T) Log {
			l, err := OpenFileLog(filepath.Join(t.TempDir(), "log"))
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
	}
}

func TestLogConformance(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			t.Run("AppendAndPending", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				if err := l.RegisterConsumer("c1"); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					if err := l.Append(Entry{ID: fmt.Sprintf("e%d", i), Payload: []byte{byte(i)}}); err != nil {
						t.Fatal(err)
					}
				}
				pend, err := l.Pending("c1")
				if err != nil {
					t.Fatal(err)
				}
				if len(pend) != 3 {
					t.Fatalf("pending = %d, want 3", len(pend))
				}
				for i, e := range pend {
					if e.ID != fmt.Sprintf("e%d", i) {
						t.Errorf("pending[%d] = %q; order must be append order", i, e.ID)
					}
				}
			})

			t.Run("AppendIdempotent", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.RegisterConsumer("c")
				_ = l.Append(Entry{ID: "x", Payload: []byte("1")})
				_ = l.Append(Entry{ID: "x", Payload: []byte("2")})
				pend, _ := l.Pending("c")
				if len(pend) != 1 {
					t.Fatalf("pending = %d, want 1", len(pend))
				}
				if string(pend[0].Payload) != "1" {
					t.Error("duplicate append must not overwrite")
				}
			})

			t.Run("AckRemovesFromPending", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.RegisterConsumer("c")
				_ = l.Append(Entry{ID: "a"})
				_ = l.Append(Entry{ID: "b"})
				if err := l.Ack("c", "a"); err != nil {
					t.Fatal(err)
				}
				pend, _ := l.Pending("c")
				if len(pend) != 1 || pend[0].ID != "b" {
					t.Fatalf("pending = %v", pend)
				}
			})

			t.Run("EntriesOwedToLateConsumers", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.Append(Entry{ID: "before"})
				_ = l.RegisterConsumer("late")
				pend, err := l.Pending("late")
				if err != nil {
					t.Fatal(err)
				}
				if len(pend) != 1 {
					t.Fatal("entries appended before registration must be owed")
				}
			})

			t.Run("UnknownConsumer", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				if _, err := l.Pending("ghost"); !errors.Is(err, ErrUnknownConsumer) {
					t.Errorf("Pending err = %v", err)
				}
				if err := l.Ack("ghost", "x"); !errors.Is(err, ErrUnknownConsumer) {
					t.Errorf("Ack err = %v", err)
				}
			})

			t.Run("GC", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.RegisterConsumer("c1")
				_ = l.RegisterConsumer("c2")
				_ = l.Append(Entry{ID: "a"})
				_ = l.Append(Entry{ID: "b"})
				_ = l.Ack("c1", "a")
				n, err := l.GC()
				if err != nil {
					t.Fatal(err)
				}
				if n != 0 {
					t.Fatalf("GC dropped %d; entry a not acked by c2", n)
				}
				_ = l.Ack("c2", "a")
				n, err = l.GC()
				if err != nil {
					t.Fatal(err)
				}
				if n != 1 {
					t.Fatalf("GC dropped %d, want 1", n)
				}
				pend, _ := l.Pending("c1")
				if len(pend) != 1 || pend[0].ID != "b" {
					t.Fatalf("after GC pending = %v", pend)
				}
			})

			t.Run("GCWithNoConsumersRetains", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.Append(Entry{ID: "a"})
				n, err := l.GC()
				if err != nil {
					t.Fatal(err)
				}
				if n != 0 {
					t.Error("GC must not drop entries when no consumer is registered")
				}
			})

			t.Run("UnregisterConsumer", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.RegisterConsumer("c")
				_ = l.UnregisterConsumer("c")
				if _, err := l.Pending("c"); !errors.Is(err, ErrUnknownConsumer) {
					t.Error("unregistered consumer should be unknown")
				}
			})

			t.Run("Consumers", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.RegisterConsumer("b")
				_ = l.RegisterConsumer("a")
				got, err := l.Consumers()
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 2 || got[0] != "a" || got[1] != "b" {
					t.Fatalf("Consumers = %v", got)
				}
			})

			t.Run("ConcurrentAppendAck", func(t *testing.T) {
				l := mk(t)
				defer l.Close()
				_ = l.RegisterConsumer("c")
				var wg sync.WaitGroup
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < 25; i++ {
							id := fmt.Sprintf("g%d-%d", g, i)
							if err := l.Append(Entry{ID: id}); err != nil {
								t.Errorf("append: %v", err)
							}
							if err := l.Ack("c", id); err != nil {
								t.Errorf("ack: %v", err)
							}
						}
					}(g)
				}
				wg.Wait()
				pend, _ := l.Pending("c")
				if len(pend) != 0 {
					t.Fatalf("pending = %d after all acked", len(pend))
				}
			})
		})
	}
}

func TestFileLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.RegisterConsumer("sub-1")
	_ = l.Append(Entry{ID: "m1", Payload: []byte("hello")})
	_ = l.Append(Entry{ID: "m2", Payload: []byte("world")})
	_ = l.Ack("sub-1", "m1")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state must be fully recovered.
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	pend, err := l2.Pending("sub-1")
	if err != nil {
		t.Fatalf("consumer lost on reopen: %v", err)
	}
	if len(pend) != 1 || pend[0].ID != "m2" || string(pend[0].Payload) != "world" {
		t.Fatalf("recovered pending = %+v", pend)
	}
}

func TestFileLogReopenAppendReopen(t *testing.T) {
	// Multiple open/append/close cycles must yield a replayable log
	// (regression: framed records, not a single gob stream).
	path := filepath.Join(t.TempDir(), "log")
	for i := 0; i < 3; i++ {
		l, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		_ = l.Append(Entry{ID: fmt.Sprintf("m%d", i), Payload: []byte{byte(i)}})
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_ = l.RegisterConsumer("c")
	pend, _ := l.Pending("c")
	if len(pend) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(pend))
	}
}

func TestFileLogGCCompactsDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.RegisterConsumer("c")
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("m%d", i)
		_ = l.Append(Entry{ID: id, Payload: make([]byte, 1024)})
		_ = l.Ack("c", id)
	}
	n, err := l.GC()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("GC dropped %d, want 10", n)
	}
	// Log still usable after compaction.
	_ = l.Append(Entry{ID: "after"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("reopen after GC: %v", err)
	}
	defer l2.Close()
	pend, err := l2.Pending("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || pend[0].ID != "after" {
		t.Fatalf("after GC+reopen pending = %v", pend)
	}
}

func TestOpRoundTripProperty(t *testing.T) {
	ops := []op{
		{kind: opAppend, id: "id", payload: []byte("payload")},
		{kind: opRegister, id: "consumer"},
		{kind: opAck, id: "entry", consumer: "consumer"},
		{kind: opAppend, id: "", payload: nil},
	}
	for _, o := range ops {
		buf := encodeOp(o)
		got, err := readOp(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("readOp(%v): %v", o.kind, err)
		}
		if got.kind != o.kind || got.id != o.id || got.consumer != o.consumer || string(got.payload) != string(o.payload) {
			t.Errorf("round trip: got %+v, want %+v", got, o)
		}
	}
}
