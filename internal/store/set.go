package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Set is a durable set of string IDs. It backs subscriber-side
// deduplication for certified delivery: a subscriber that crashes after
// delivering an obvent but before the publisher saw its acknowledgement
// must not deliver the redelivered copy twice.
type Set interface {
	// Add inserts id (idempotent).
	Add(id string) error
	// Has reports membership.
	Has(id string) (bool, error)
	// Len returns the number of members.
	Len() (int, error)
	// Close releases resources.
	Close() error
}

// MemSet is an in-memory Set.
type MemSet struct {
	mu sync.RWMutex
	m  map[string]bool
}

var _ Set = (*MemSet)(nil)

// NewMemSet returns an empty in-memory set.
func NewMemSet() *MemSet { return &MemSet{m: make(map[string]bool)} }

// Add implements Set.
func (s *MemSet) Add(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = true
	return nil
}

// Has implements Set.
func (s *MemSet) Has(id string) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[id], nil
}

// Len implements Set.
func (s *MemSet) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m), nil
}

// Close implements Set.
func (s *MemSet) Close() error { return nil }

// FileSet is a Set persisted as an append-only file of length-framed
// IDs, replayed at open.
type FileSet struct {
	mu  sync.Mutex
	f   *os.File
	mem map[string]bool
}

var _ Set = (*FileSet)(nil)

// OpenFileSet opens (or creates) a file-backed set at path.
func OpenFileSet(path string) (*FileSet, error) {
	mem := make(map[string]bool)
	if f, err := os.Open(path); err == nil {
		for {
			var lenBuf [4]byte
			if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				_ = f.Close()
				return nil, fmt.Errorf("store: replay set %s: %w", path, err)
			}
			n := binary.BigEndian.Uint32(lenBuf[:])
			if n > 1<<20 {
				_ = f.Close()
				return nil, fmt.Errorf("store: corrupt set record length %d", n)
			}
			b := make([]byte, n)
			if _, err := io.ReadFull(f, b); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("store: truncated set record: %w", err)
			}
			mem[string(b)] = true
		}
		_ = f.Close()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: open set %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open set %s for append: %w", path, err)
	}
	return &FileSet{f: f, mem: mem}, nil
}

// Add implements Set.
func (s *FileSet) Add(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mem[id] {
		return nil
	}
	buf := make([]byte, 0, 4+len(id))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(id)))
	buf = append(buf, id...)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: set add: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: set sync: %w", err)
	}
	s.mem[id] = true
	return nil
}

// Has implements Set.
func (s *FileSet) Has(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem[id], nil
}

// Len implements Set.
func (s *FileSet) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem), nil
}

// Close implements Set.
func (s *FileSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
