// Package store implements the durable substrate for certified obvent
// delivery (paper §3.1.2: "even if a notifiable temporarily disconnects
// or fails, it will eventually deliver the obvent", and §3.4.1: durable
// subscriptions outliving their hosting process, re-identified via
// activate(id)).
//
// Two implementations of the Log interface are provided: MemLog, an
// in-memory log whose lifetime models stable storage in simulated-crash
// tests (the netsim "crash" kills the node, not the store), and FileLog,
// a real append-only operation log on disk replayed at open.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Entry is one durable record: an opaque payload under a unique ID.
type Entry struct {
	ID      string
	Payload []byte
}

// ErrUnknownConsumer is returned when acknowledging or querying a
// consumer that was never registered.
var ErrUnknownConsumer = errors.New("store: unknown consumer")

// Log is a durable append log with per-consumer acknowledgement
// tracking: an entry is retired once every registered consumer has
// acknowledged it. Implementations are safe for concurrent use.
type Log interface {
	// Append stores an entry. Appending an ID that already exists is a
	// no-op (idempotent).
	Append(e Entry) error
	// RegisterConsumer makes the log track acknowledgements for the
	// given durable consumer ID. Registration is idempotent; entries
	// appended before registration are owed to the consumer as well.
	RegisterConsumer(id string) error
	// UnregisterConsumer stops tracking the consumer.
	UnregisterConsumer(id string) error
	// Consumers returns the sorted registered consumer IDs.
	Consumers() ([]string, error)
	// Ack marks the entry acknowledged by the consumer.
	Ack(consumer, entryID string) error
	// Pending returns, in append order, the entries not yet
	// acknowledged by the consumer.
	Pending(consumer string) ([]Entry, error)
	// GC drops entries acknowledged by all registered consumers and
	// returns how many were dropped.
	GC() (int, error)
	// Close releases resources. The log must not be used afterwards.
	Close() error
}

// MemLog is an in-memory Log. The zero value is not usable; create with
// NewMemLog.
type MemLog struct {
	mu        sync.Mutex
	order     []string // entry IDs in append order
	entries   map[string]Entry
	consumers map[string]map[string]bool // consumer -> acked entry IDs
}

var _ Log = (*MemLog)(nil)

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog {
	return &MemLog{
		entries:   make(map[string]Entry),
		consumers: make(map[string]map[string]bool),
	}
}

// Append implements Log.
func (l *MemLog) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.entries[e.ID]; ok {
		return nil
	}
	cp := Entry{ID: e.ID, Payload: append([]byte(nil), e.Payload...)}
	l.entries[e.ID] = cp
	l.order = append(l.order, e.ID)
	return nil
}

// RegisterConsumer implements Log.
func (l *MemLog) RegisterConsumer(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.consumers[id]; !ok {
		l.consumers[id] = make(map[string]bool)
	}
	return nil
}

// UnregisterConsumer implements Log.
func (l *MemLog) UnregisterConsumer(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.consumers, id)
	return nil
}

// Consumers implements Log.
func (l *MemLog) Consumers() ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.consumers))
	for id := range l.consumers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Ack implements Log.
func (l *MemLog) Ack(consumer, entryID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	acked, ok := l.consumers[consumer]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownConsumer, consumer)
	}
	acked[entryID] = true
	return nil
}

// Pending implements Log.
func (l *MemLog) Pending(consumer string) ([]Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	acked, ok := l.consumers[consumer]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownConsumer, consumer)
	}
	var out []Entry
	for _, id := range l.order {
		if !acked[id] {
			e := l.entries[id]
			out = append(out, Entry{ID: e.ID, Payload: append([]byte(nil), e.Payload...)})
		}
	}
	return out, nil
}

// GC implements Log.
func (l *MemLog) GC() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.consumers) == 0 {
		return 0, nil // nobody registered: retain everything
	}
	var kept []string
	dropped := 0
	for _, id := range l.order {
		ackedByAll := true
		for _, acked := range l.consumers {
			if !acked[id] {
				ackedByAll = false
				break
			}
		}
		if ackedByAll {
			delete(l.entries, id)
			for _, acked := range l.consumers {
				delete(acked, id)
			}
			dropped++
		} else {
			kept = append(kept, id)
		}
	}
	l.order = kept
	return dropped, nil
}

// Close implements Log.
func (l *MemLog) Close() error { return nil }

// Len returns the number of live entries (test aid).
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}
