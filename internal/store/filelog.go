package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
)

// pkgLogger receives replay anomalies — operations a FileLog replay had
// to skip — which previously vanished silently. Package-level because
// FileLogs replay inside OpenFileLog, before any caller could inject a
// logger on the instance. Default: discard.
var pkgLogger atomic.Pointer[slog.Logger]

// SetLogger installs the package's diagnostics logger (nil restores the
// discarding default). Safe for concurrent use.
func SetLogger(l *slog.Logger) {
	if l == nil {
		pkgLogger.Store(nil)
		return
	}
	pkgLogger.Store(l)
}

// logger returns the installed logger or a discarding one.
func logger() *slog.Logger {
	if l := pkgLogger.Load(); l != nil {
		return l
	}
	return slog.New(slog.DiscardHandler)
}

// opKind enumerates the record types of the on-disk operation log.
type opKind byte

const (
	opAppend opKind = iota + 1
	opRegister
	opUnregister
	opAck
)

// op is one record of the operation log.
type op struct {
	kind     opKind
	id       string // entry ID (append/ack) or consumer ID (register)
	consumer string // consumer ID for acks
	payload  []byte
}

// encodeOp renders a record as
// [kind u8][idLen u32][id][consumerLen u32][consumer][payloadLen u32][payload].
func encodeOp(o op) []byte {
	buf := make([]byte, 0, 1+12+len(o.id)+len(o.consumer)+len(o.payload))
	buf = append(buf, byte(o.kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(o.id)))
	buf = append(buf, o.id...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(o.consumer)))
	buf = append(buf, o.consumer...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(o.payload)))
	buf = append(buf, o.payload...)
	return buf
}

// readOp decodes one record from r.
func readOp(r io.Reader) (op, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return op{}, err // io.EOF at a record boundary is clean
	}
	readBlob := func() ([]byte, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("store: truncated record: %w", err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > 64<<20 {
			return nil, fmt.Errorf("store: corrupt record length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("store: truncated record body: %w", err)
		}
		return b, nil
	}
	id, err := readBlob()
	if err != nil {
		return op{}, err
	}
	consumer, err := readBlob()
	if err != nil {
		return op{}, err
	}
	payload, err := readBlob()
	if err != nil {
		return op{}, err
	}
	return op{kind: opKind(kind[0]), id: string(id), consumer: string(consumer), payload: payload}, nil
}

// FileLog is a Log persisted as an append-only operation log on disk.
// Every mutation is a length-framed record appended and fsynced; Open
// replays the log to rebuild the state, so a FileLog survives process
// crashes.
//
// FileLog favors simplicity over write performance: it is the stable
// storage backing certified obvents in examples and failure-injection
// tests, not a general-purpose database. GC compacts the on-disk log by
// rewriting it.
type FileLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	mem  *MemLog // authoritative in-memory state
}

var _ Log = (*FileLog)(nil)

// countingReader tracks how many bytes have been consumed, so replay
// knows the byte offset of the last whole record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// OpenFileLog opens (or creates) a file-backed log at path, replaying
// any existing records. A torn tail record — the artifact of a crash
// mid-append — is truncated away rather than failing the open: the torn
// operation was never acknowledged to any caller, while refusing to
// open would lose every recoverable record before it.
func OpenFileLog(path string) (*FileLog, error) {
	mem := NewMemLog()
	if f, err := os.Open(path); err == nil {
		cr := &countingReader{r: f}
		var good int64 // byte offset after the last whole record
		records := 0
		for {
			o, err := readOp(cr)
			if err != nil {
				_ = f.Close()
				if errors.Is(err, io.EOF) && cr.n == good {
					break // clean end at a record boundary
				}
				// Anything else — a short header, short body, or a
				// garbage length — is a torn tail. Keep the longest
				// valid prefix.
				if terr := os.Truncate(path, good); terr != nil {
					return nil, fmt.Errorf("store: truncate torn tail of %s: %w", path, terr)
				}
				logger().Warn("store: truncated torn tail record",
					"path", path, "records", records, "goodBytes", good,
					"tornBytes", cr.n-good, "err", err)
				break
			}
			good = cr.n
			records++
			applyOp(mem, o)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s for append: %w", path, err)
	}
	return &FileLog{path: path, f: f, mem: mem}, nil
}

func applyOp(mem *MemLog, o op) {
	var err error
	switch o.kind {
	case opAppend:
		err = mem.Append(Entry{ID: o.id, Payload: o.payload})
	case opRegister:
		err = mem.RegisterConsumer(o.id)
	case opUnregister:
		err = mem.UnregisterConsumer(o.id)
	case opAck:
		// Ack of an unknown consumer can only appear in a corrupted
		// log; skip it to keep replay total.
		err = mem.Ack(o.consumer, o.id)
	default:
		err = fmt.Errorf("unknown op kind %d", o.kind)
	}
	if err != nil {
		// Replay must stay total — a FileLog that refuses to open loses
		// the recoverable entries too — but skipped operations must not
		// vanish silently.
		logger().Warn("store: skipping unreplayable log record",
			"kind", int(o.kind), "id", o.id, "consumer", o.consumer, "err", err)
	}
}

// write appends an op record durably.
func (l *FileLog) write(o op) error {
	if _, err := l.f.Write(encodeOp(o)); err != nil {
		return fmt.Errorf("store: write log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: sync log: %w", err)
	}
	return nil
}

// Append implements Log.
func (l *FileLog) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.write(op{kind: opAppend, id: e.ID, payload: e.Payload}); err != nil {
		return err
	}
	return l.mem.Append(e)
}

// RegisterConsumer implements Log.
func (l *FileLog) RegisterConsumer(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.write(op{kind: opRegister, id: id}); err != nil {
		return err
	}
	return l.mem.RegisterConsumer(id)
}

// UnregisterConsumer implements Log.
func (l *FileLog) UnregisterConsumer(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.write(op{kind: opUnregister, id: id}); err != nil {
		return err
	}
	return l.mem.UnregisterConsumer(id)
}

// Consumers implements Log.
func (l *FileLog) Consumers() ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mem.Consumers()
}

// Ack implements Log.
func (l *FileLog) Ack(consumer, entryID string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Validate before writing so a bad ack does not pollute the log.
	if _, err := l.mem.Pending(consumer); err != nil {
		return err
	}
	if err := l.write(op{kind: opAck, id: entryID, consumer: consumer}); err != nil {
		return err
	}
	return l.mem.Ack(consumer, entryID)
}

// Pending implements Log.
func (l *FileLog) Pending(consumer string) ([]Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mem.Pending(consumer)
}

// GC implements Log. It compacts the on-disk log by rewriting the
// surviving state to a temporary file and atomically renaming it over
// the old log.
func (l *FileLog) GC() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	dropped, err := l.mem.GC()
	if err != nil {
		return 0, err
	}

	tmp := l.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return dropped, fmt.Errorf("store: gc: %w", err)
	}
	werr := func() error {
		l.mem.mu.Lock()
		defer l.mem.mu.Unlock()
		for c := range l.mem.consumers {
			if _, err := f.Write(encodeOp(op{kind: opRegister, id: c})); err != nil {
				return err
			}
		}
		for _, id := range l.mem.order {
			e := l.mem.entries[id]
			if _, err := f.Write(encodeOp(op{kind: opAppend, id: e.ID, payload: e.Payload})); err != nil {
				return err
			}
		}
		for c, acked := range l.mem.consumers {
			for id := range acked {
				if _, err := f.Write(encodeOp(op{kind: opAck, id: id, consumer: c})); err != nil {
					return err
				}
			}
		}
		return f.Sync()
	}()
	if werr != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return dropped, fmt.Errorf("store: gc rewrite: %w", werr)
	}
	if err := f.Close(); err != nil {
		return dropped, fmt.Errorf("store: gc close: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return dropped, fmt.Errorf("store: gc rename: %w", err)
	}
	_ = l.f.Close()
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return dropped, fmt.Errorf("store: gc reopen: %w", err)
	}
	l.f = nf
	return dropped, nil
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
