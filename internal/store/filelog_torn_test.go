package store

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// recordingHandler captures slog records for assertion.
type recordingHandler struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r.Clone())
	return nil
}

func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func (h *recordingHandler) messages() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.records))
	for i, r := range h.records {
		out[i] = r.Message
	}
	return out
}

// buildTornLog writes a log of n entries and returns its path and full
// byte image.
func buildTornLog(t *testing.T, dir string, n int) (string, []byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RegisterConsumer("sub"); err != nil {
		t.Fatal(err)
	}
	for i := range n {
		e := Entry{ID: fmt.Sprintf("entry-%d", i), Payload: []byte(fmt.Sprintf("payload-%d", i))}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestFileLogTruncatedTailRecovers pins the bugfix: a log whose final
// record was torn by a crash mid-append must still open, keep every
// whole record, and report the truncation through the injected logger.
func TestFileLogTruncatedTailRecovers(t *testing.T) {
	path, data := buildTornLog(t, t.TempDir(), 3)
	// Tear the final record in half.
	lastLen := len(encodeOp(op{kind: opAppend, id: "entry-2", payload: []byte("payload-2")}))
	if err := os.Truncate(path, int64(len(data)-lastLen/2)); err != nil {
		t.Fatal(err)
	}

	h := &recordingHandler{}
	SetLogger(slog.New(h))
	defer SetLogger(nil)

	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("Open failed on torn tail: %v", err)
	}
	defer l.Close()
	pending, err := l.Pending("sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || pending[0].ID != "entry-0" || pending[1].ID != "entry-1" {
		t.Fatalf("recovered entries = %v, want entry-0, entry-1", pending)
	}
	found := false
	for _, msg := range h.messages() {
		if msg == "store: truncated torn tail record" {
			found = true
		}
	}
	if !found {
		t.Fatalf("torn-tail truncation not logged; got %v", h.messages())
	}
	// The log must accept appends after recovery, and the re-appended
	// entry must survive another reopen (the tail is truly gone from
	// disk, not lurking as garbage mid-file).
	if err := l.Append(Entry{ID: "entry-2", Payload: []byte("payload-2")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	pending, err = l2.Pending("sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 3 {
		t.Fatalf("entries after repair+reopen = %d, want 3", len(pending))
	}
}

// TestFileLogTornWriteProperty truncates the log at every byte offset
// of the final record: Open must always succeed and replay exactly the
// longest valid prefix.
func TestFileLogTornWriteProperty(t *testing.T) {
	base := t.TempDir()
	_, data := buildTornLog(t, filepath.Join(base, "ref"), 4)
	lastLen := len(encodeOp(op{kind: opAppend, id: "entry-3", payload: []byte("payload-3")}))
	goodBytes := len(data) - lastLen

	for cut := goodBytes; cut < len(data); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		pending, err := l.Pending("sub")
		if err != nil {
			t.Fatalf("cut at %d: consumer lost: %v", cut, err)
		}
		if len(pending) != 3 {
			t.Fatalf("cut at %d: replayed %d entries, want 3", cut, len(pending))
		}
		for i, e := range pending {
			if e.ID != fmt.Sprintf("entry-%d", i) {
				t.Fatalf("cut at %d: entry[%d] = %q", cut, i, e.ID)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// On-disk file must now end at the last whole record.
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != int64(goodBytes) {
			t.Fatalf("cut at %d: file size %d after recovery, want %d", cut, st.Size(), goodBytes)
		}
	}
}
