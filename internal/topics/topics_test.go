package topics

import (
	"sync/atomic"
	"testing"
)

func TestMatch(t *testing.T) {
	tests := []struct {
		pattern, topic string
		want           bool
	}{
		{"stocks.telco.quotes", "stocks.telco.quotes", true},
		{"stocks.telco.quotes", "stocks.telco.requests", false},
		{"stocks.*.quotes", "stocks.telco.quotes", true},
		{"stocks.*.quotes", "stocks.acme.quotes", true},
		{"stocks.*.quotes", "stocks.quotes", false},
		{"stocks.#", "stocks.telco.quotes", true},
		{"stocks.#", "stocks", true}, // '#' matches zero or more levels
		{"stocks.#", "stocks.x", true},
		{"#", "anything.at.all", true},
		{"stocks", "stocks", true},
		{"stocks", "stocks.telco", false},
		{"*.telco.*", "stocks.telco.quotes", true},
		{"*.telco.*", "stocks.acme.quotes", false},
	}
	for _, tt := range tests {
		if got := Match(tt.pattern, tt.topic); got != tt.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tt.pattern, tt.topic, got, tt.want)
		}
	}
}

func TestPublishSubscribe(t *testing.T) {
	b := New()
	var telco, all atomic.Int32
	cancelTelco, err := b.Subscribe("stocks.telco.*", func(string, any) { telco.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("stocks.#", func(string, any) { all.Add(1) }); err != nil {
		t.Fatal(err)
	}

	if n := b.Publish("stocks.telco.quotes", 80.0); n != 2 {
		t.Errorf("matched %d, want 2", n)
	}
	if n := b.Publish("stocks.acme.quotes", 10.0); n != 1 {
		t.Errorf("matched %d, want 1", n)
	}
	if n := b.Publish("weather.zurich", nil); n != 0 {
		t.Errorf("matched %d, want 0", n)
	}
	if telco.Load() != 1 || all.Load() != 2 {
		t.Errorf("telco=%d all=%d", telco.Load(), all.Load())
	}

	cancelTelco()
	if n := b.Publish("stocks.telco.quotes", 81.0); n != 1 {
		t.Errorf("after cancel matched %d, want 1", n)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New()
	if _, err := b.Subscribe("a..b", nil); err == nil {
		t.Error("empty segment must fail")
	}
	if _, err := b.Subscribe("a.#.b", nil); err == nil {
		t.Error("non-final # must fail")
	}
}

func TestExpressivenessGap(t *testing.T) {
	// The paper's §2.3.2 point: topics cannot express content
	// predicates like "price < 100" — the application must bucket
	// content into topic levels, losing precision. This test documents
	// the workaround's imprecision: a subscriber to the "cheap" bucket
	// misses an 80-priced quote published under another bucket and has
	// no way to express the exact threshold.
	b := New()
	var got atomic.Int32
	_, _ = b.Subscribe("stocks.telco.cheap", func(string, any) { got.Add(1) })
	// Publisher buckets 99.99 as cheap (<100) but 100.01 as mid.
	b.Publish("stocks.telco.cheap", 99.99)
	b.Publish("stocks.telco.mid", 100.01)
	if got.Load() != 1 {
		t.Fatalf("got %d", got.Load())
	}
	// A subscriber wanting "price < 120" cannot: the bucket boundary
	// is fixed by the publisher's topic scheme.
}
