// Package topics implements topic-based (subject-based) publish/
// subscribe, the "pure static subscription scheme" the paper describes
// as the original publish/subscribe variant with "only limited
// expressiveness" (§2.3.2, citing TIB/Rendezvous, iBus, Vitria).
//
// Topics are dot-separated hierarchies ("stocks.telco.quotes"), the
// transposition of Linda's multi-name elements into containment
// relationships (§6.3.2). Subscriptions may use "*" to match exactly
// one level and "#" to match any remaining levels.
//
// The package serves as a baseline for the expressiveness and
// performance comparisons (experiment C4): topic matching is very
// cheap, but selecting on event *content* requires encoding content
// into topic names, which type-based publish/subscribe avoids.
package topics

import (
	"fmt"
	"strings"
	"sync"
)

// Handler receives the payload of a matching publication.
type Handler func(topic string, payload any)

// Bus is a topic-based publish/subscribe engine.
type Bus struct {
	mu     sync.RWMutex
	subs   map[int]*subscription
	nextID int
}

type subscription struct {
	pattern []string
	handler Handler
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{subs: make(map[int]*subscription)}
}

// Subscribe registers a handler for a topic pattern. Patterns are dot
// separated; "*" matches one level, "#" (only at the end) matches any
// number of remaining levels. Returns a cancel function.
func (b *Bus) Subscribe(pattern string, h Handler) (cancel func(), err error) {
	segs := strings.Split(pattern, ".")
	for i, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("topics: empty segment in pattern %q", pattern)
		}
		if s == "#" && i != len(segs)-1 {
			return nil, fmt.Errorf("topics: # only allowed as final segment in %q", pattern)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	b.subs[id] = &subscription{pattern: segs, handler: h}
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs, id)
	}, nil
}

// Publish delivers payload to every subscription whose pattern matches
// the topic. Handlers run synchronously on the caller's goroutine (the
// bus is a matching baseline, not a delivery substrate). It returns the
// number of subscriptions matched.
func (b *Bus) Publish(topic string, payload any) int {
	segs := strings.Split(topic, ".")
	b.mu.RLock()
	var fire []Handler
	for _, s := range b.subs {
		if matchPattern(s.pattern, segs) {
			fire = append(fire, s.handler)
		}
	}
	b.mu.RUnlock()
	for _, h := range fire {
		h(topic, payload)
	}
	return len(fire)
}

// Match reports whether a pattern matches a topic (exposed for tests
// and benchmarks).
func Match(pattern, topic string) bool {
	return matchPattern(strings.Split(pattern, "."), strings.Split(topic, "."))
}

func matchPattern(pattern, topic []string) bool {
	for i, p := range pattern {
		if p == "#" {
			return true // matches all remaining levels (even zero)
		}
		if i >= len(topic) {
			return false
		}
		if p != "*" && p != topic[i] {
			return false
		}
	}
	return len(pattern) == len(topic)
}
