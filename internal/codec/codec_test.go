package codec

import (
	"testing"
	"testing/quick"
	"time"

	"govents/internal/obvent"
)

type quote struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

type nested struct {
	obvent.Base
	Inner quote
	Tags  []string
	Meta  map[string]int
}

type timelyQuote struct {
	obvent.Base
	obvent.TimelyBase
	Price float64
}

type priorityAlert struct {
	obvent.Base
	obvent.PriorityBase
	Msg string
}

type certifiedOrder struct {
	obvent.Base
	obvent.CertifiedBase
	obvent.TotalOrderBase
	N int
}

func newCodec(t *testing.T) *Codec {
	t.Helper()
	reg := obvent.NewRegistry()
	reg.MustRegister(quote{})
	reg.MustRegister(nested{})
	reg.MustRegister(timelyQuote{})
	reg.MustRegister(priorityAlert{})
	reg.MustRegister(certifiedOrder{})
	return New(reg)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := newCodec(t)
	in := quote{Company: "Telco Mobiles", Price: 80, Amount: 10}
	env, err := c.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if env.ID == "" {
		t.Error("envelope must carry an ID")
	}
	out, err := c.Decode(env)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, ok := out.(quote)
	if !ok {
		t.Fatalf("Decode returned %T", out)
	}
	if got != in {
		t.Errorf("round trip = %+v, want %+v", got, in)
	}
}

func TestEncodeDecodeNested(t *testing.T) {
	c := newCodec(t)
	in := nested{
		Inner: quote{Company: "X", Price: 1.5, Amount: 3},
		Tags:  []string{"a", "b"},
		Meta:  map[string]int{"k": 7},
	}
	env, err := c.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := c.Decode(env)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := out.(nested)
	if got.Inner != in.Inner || len(got.Tags) != 2 || got.Meta["k"] != 7 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestEncodePointerObvent(t *testing.T) {
	c := newCodec(t)
	env, err := c.Encode(&quote{Company: "P", Price: 2, Amount: 1})
	if err != nil {
		t.Fatalf("Encode(ptr): %v", err)
	}
	out, err := c.Decode(env)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.(quote).Company != "P" {
		t.Errorf("got %+v", out)
	}
}

func TestEnvelopeSemanticsStamping(t *testing.T) {
	c := newCodec(t)

	env, err := c.Encode(certifiedOrder{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if env.Reliability != obvent.CertifiedDelivery || env.Ordering != obvent.Total {
		t.Errorf("semantics = %v/%v", env.Reliability, env.Ordering)
	}

	env, err = c.Encode(timelyQuote{TimelyBase: obvent.TimelyBase{TTL: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if env.TTL != time.Second {
		t.Errorf("TTL = %v", env.TTL)
	}
	if env.Birth.IsZero() {
		t.Error("Birth must be stamped at encode when zero")
	}

	env, err = c.Encode(priorityAlert{PriorityBase: obvent.PriorityBase{Prio: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !env.HasPriority || env.Priority != 9 {
		t.Errorf("priority = %v/%v", env.HasPriority, env.Priority)
	}
}

func TestEnvelopeExpired(t *testing.T) {
	now := time.Now()
	e := &Envelope{Birth: now, TTL: 10 * time.Millisecond}
	if e.Expired(now) {
		t.Error("fresh envelope must not be expired")
	}
	if !e.Expired(now.Add(20 * time.Millisecond)) {
		t.Error("envelope past TTL must be expired")
	}
	if (&Envelope{}).Expired(now.Add(time.Hour)) {
		t.Error("no TTL means never expired")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	c := newCodec(t)
	if _, err := c.Decode(&Envelope{Type: "no.such.Type"}); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestMarshalUnmarshalEnvelope(t *testing.T) {
	c := newCodec(t)
	env, err := c.Encode(quote{Company: "T", Price: 80, Amount: 10})
	if err != nil {
		t.Fatal(err)
	}
	env.Publisher = "node-1"
	env.Seq = 42
	data, err := Marshal(env)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.ID != env.ID || back.Type != env.Type || back.Seq != 42 || back.Publisher != "node-1" {
		t.Errorf("round trip mismatch: %+v", back)
	}
	out, err := c.Decode(back)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.(quote).Company != "T" {
		t.Errorf("payload lost: %+v", out)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a gob stream")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCloneIsDeepAndDistinct(t *testing.T) {
	c := newCodec(t)
	in := nested{Inner: quote{Company: "X"}, Tags: []string{"t"}, Meta: map[string]int{"k": 1}}
	cl, err := c.Clone(in)
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	got := cl.(nested)
	// Mutating the clone's reference fields must not touch the original
	// (paper §2.1.2 obvent uniqueness).
	got.Tags[0] = "mutated"
	got.Meta["k"] = 99
	if in.Tags[0] != "t" || in.Meta["k"] != 1 {
		t.Error("Clone must deep-copy reference fields")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 32 {
			t.Fatalf("ID length = %d", len(id))
		}
		if seen[id] {
			t.Fatal("duplicate ID")
		}
		seen[id] = true
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := newCodec(t)
	f := func(company string, price float64, amount int) bool {
		in := quote{Company: company, Price: price, Amount: amount}
		env, err := c.Encode(in)
		if err != nil {
			return false
		}
		out, err := c.Decode(env)
		if err != nil {
			return false
		}
		q := out.(quote)
		// NaN never compares equal; compare bit-level semantics via !=
		// only for non-NaN.
		if price != price {
			return q.Price != q.Price
		}
		return q == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeReturnsFreshClones(t *testing.T) {
	c := newCodec(t)
	env, err := c.Encode(nested{Tags: []string{"shared"}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := a.(nested), b.(nested)
	na.Tags[0] = "a-mutation"
	if nb.Tags[0] != "shared" {
		t.Error("two decodes of the same envelope must yield independent clones")
	}
}

func TestCloneSourceProducesDistinctClones(t *testing.T) {
	c := newCodec(t)
	in := nested{Inner: quote{Company: "Acme", Price: 10}, Tags: []string{"a"}, Meta: map[string]int{"k": 1}}
	env, err := c.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	src, err := c.Source(env)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	a, err := src.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	b, err := src.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	na, nb := a.(nested), b.(nested)
	if na.Inner != in.Inner || nb.Inner != in.Inner {
		t.Errorf("clones differ from original: %+v / %+v", na, nb)
	}
	// Obvent local uniqueness: mutating one clone's reference state must
	// not affect the other.
	na.Meta["k"] = 99
	na.Tags[0] = "mutated"
	if nb.Meta["k"] != 1 || nb.Tags[0] != "a" {
		t.Errorf("clones share state: %+v", nb)
	}
}

func TestSourceUnknownType(t *testing.T) {
	c := newCodec(t)
	if _, err := c.Source(&Envelope{Type: "no.such.Class"}); err == nil {
		t.Fatal("Source on unknown class should fail")
	}
}

// flatArrayQuote composes every flat kind the fastpath must accept:
// scalars, strings, a fixed array, and a nested flat struct.
type flatArrayQuote struct {
	obvent.Base
	Inner  quote
	Window [4]float64
	Label  string
}

func TestFlatTypeDetection(t *testing.T) {
	c := newCodec(t)
	cases := []struct {
		name string
		o    obvent.Obvent
		want bool
	}{
		{"scalar+string struct", quote{}, true},
		{"nested flat struct+array", flatArrayQuote{}, true},
		{"slice and map fields", nested{}, false},
		{"timely (time.Time holds a pointer)", timelyQuote{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name, err := c.Registry().NameOf(tc.o)
			if err != nil {
				t.Fatal(err)
			}
			typ, _ := c.Registry().TypeByName(name)
			if got := c.flatType(typ); got != tc.want {
				t.Errorf("flatType(%s) = %v, want %v", name, got, tc.want)
			}
			// The cached second answer agrees.
			if got := c.flatType(typ); got != tc.want {
				t.Errorf("cached flatType(%s) = %v, want %v", name, got, tc.want)
			}
		})
	}
}

// TestCloneFlatFastpathIndependence proves clone independence on the
// pointer-free fastpath: every Clone yields a value equal to the
// original, and clones are fully independent objects (mutating one —
// possible once the receiver holds its own copy — never shows through
// another).
func TestCloneFlatFastpathIndependence(t *testing.T) {
	c := newCodec(t)
	c.Registry().MustRegister(flatArrayQuote{})
	in := flatArrayQuote{
		Inner:  quote{Company: "Acme", Price: 10, Amount: 3},
		Window: [4]float64{1, 2, 3, 4},
		Label:  "spot",
	}
	env, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Source(env)
	if err != nil {
		t.Fatal(err)
	}
	if src.mode != modeFlat {
		t.Fatal("flat class did not take the value-copy fastpath")
	}
	a, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.(flatArrayQuote), b.(flatArrayQuote)
	if fa != in || fb != in {
		t.Errorf("flat clones differ from original: %+v / %+v", fa, fb)
	}
	// Value semantics: each assertion above copied the boxed value, and
	// mutating one copy (including its array) leaves the others intact.
	fa.Window[0] = -1
	fa.Inner.Price = -1
	if fb != in {
		t.Errorf("clone mutated through sibling: %+v", fb)
	}
	cAgain, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if cAgain.(flatArrayQuote) != in {
		t.Errorf("later clone saw earlier mutation: %+v", cAgain)
	}
}

func TestCloneFlatFastpathAllocs(t *testing.T) {
	c := newCodec(t)
	env, err := c.Encode(quote{Company: "Acme", Price: 10, Amount: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Source(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Clone(); err != nil { // decode the prototype
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := src.Clone(); err != nil {
			t.Fatal(err)
		}
	})
	// One boxed value copy per clone; a full gob decode costs dozens.
	if allocs > 2 {
		t.Errorf("flat Clone allocates %.1f per call, want <= 2", allocs)
	}
}

func TestCloneFlatCorruptPayload(t *testing.T) {
	c := newCodec(t)
	env, err := c.Encode(quote{Company: "Acme"})
	if err != nil {
		t.Fatal(err)
	}
	env.Payload = []byte{0xff, 0x00, 0xba, 0xad}
	src, err := c.Source(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // the error must repeat, not be cached away
		if _, err := src.Clone(); err == nil {
			t.Fatalf("clone %d of corrupt payload succeeded", i)
		}
	}
}

// BenchmarkCloneSource pins the satellite's benchmark delta: value-copy
// cloning for flat classes vs the full gob decode for reference-bearing
// ones.
func BenchmarkCloneSource(b *testing.B) {
	reg := obvent.NewRegistry()
	reg.MustRegister(quote{})
	reg.MustRegister(nested{})
	c := New(reg)
	cases := []struct {
		name string
		o    obvent.Obvent
	}{
		{"flat", quote{Company: "Telco Mobiles", Price: 80, Amount: 10}},
		{"gob", nested{Inner: quote{Company: "Telco"}, Tags: []string{"a", "b"}, Meta: map[string]int{"k": 1}}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			env, err := c.Encode(tc.o)
			if err != nil {
				b.Fatal(err)
			}
			src, err := c.Source(env)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Clone(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
