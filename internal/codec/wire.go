package codec

// This file wires the compact per-class binary encoding (internal/wire)
// into the codec. The division of labor mirrors the compiled-copier
// cache: the wire package compiles one immutable codec program per
// class by walking its struct type; this file owns the per-codec cache
// of compile outcomes, the payload-encoding decision on Encode, the
// encoding-aware decode in CloneSource, and the gob transcode used for
// destinations that did not advertise wire capability.
//
// The fallback story is the same conservative one as everywhere else in
// this codebase: a class the wire compiler rejects (custom marshalers,
// interface fields, non-flat map keys, recursive layouts) keeps the
// self-describing gob encoding, and the dissemination layer (dace)
// negotiates the encoding per destination, so a mixed fleet never
// misreads a payload — rejection and legacy peers cost performance,
// never correctness.

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"govents/internal/obvent"
	"govents/internal/wire"
)

// Payload encodings carried in Envelope.Enc.
const (
	// EncGob marks a self-describing gob payload. It is the zero value:
	// envelopes from pre-wire peers (which never set the field) decode
	// as gob, and gob omits zero fields on encode, so a gob-payload
	// envelope is byte-identical to one from a pre-wire peer.
	EncGob uint8 = 0
	// EncWire marks a compact compiled-program payload (internal/wire).
	EncWire uint8 = 1
)

// codecWire is the codec's wire-encoding state (the Codec struct embeds
// it, like codecCopiers).
type codecWire struct {
	// wireProgs caches reflect.Type -> wireEntry; a nil program marks a
	// rejected class, decided once per codec.
	wireProgs sync.Map
	// wireOff disables the compact encoding entirely (legacy emulation
	// and operational escape hatch): encodes fall back to gob and
	// compact payloads are refused, exactly like a pre-wire binary.
	wireOff atomic.Bool

	wireCompiles atomic.Uint64
	wireRejects  atomic.Uint64
	wireEncodes  atomic.Uint64
	wireDecodes  atomic.Uint64
	gobEncodes   atomic.Uint64
	gobDecodes   atomic.Uint64
	downgrades   atomic.Uint64
}

// wireEntry is one class's cached compilation outcome.
type wireEntry struct{ prog *wire.Prog }

// WireStats describes a codec's compact-encoding activity.
type WireStats struct {
	// Compiles / Rejects count per-class wire-program compilation
	// outcomes (each class is decided once).
	Compiles uint64
	Rejects  uint64
	// Encodes / Decodes count compact payload encodes and full compact
	// decodes (materializations). Partial decodes — plan evaluations
	// that never materialized the event — are counted by the matching
	// layer, which owns that decision.
	Encodes uint64
	Decodes uint64
	// GobEncodes / GobDecodes count gob fallback payload traffic
	// (rejected classes, legacy peers, wire-disabled codecs).
	GobEncodes uint64
	GobDecodes uint64
	// Downgrades counts per-destination gob transcodes for peers that
	// did not advertise wire capability.
	Downgrades uint64
}

// WireStats returns the codec's wire-encoding counters.
func (c *Codec) WireStats() WireStats {
	return WireStats{
		Compiles:   c.wireCompiles.Load(),
		Rejects:    c.wireRejects.Load(),
		Encodes:    c.wireEncodes.Load(),
		Decodes:    c.wireDecodes.Load(),
		GobEncodes: c.gobEncodes.Load(),
		GobDecodes: c.gobDecodes.Load(),
		Downgrades: c.downgrades.Load(),
	}
}

// SetWireDisabled switches the codec's compact encoding off (or back
// on). A disabled codec encodes every payload as gob and refuses
// compact payloads with a decode error — observationally a pre-wire
// binary, which is what makes mixed-version interop tests honest.
func (c *Codec) SetWireDisabled(off bool) { c.wireOff.Store(off) }

// WireDisabled reports whether the compact encoding is switched off.
func (c *Codec) WireDisabled() bool { return c.wireOff.Load() }

// wireProgFor returns the compiled wire program for t, compiling and
// caching the outcome on first use; nil means the class is rejected and
// keeps gob. Entries are valid forever: a layout never changes.
func (c *Codec) wireProgFor(t reflect.Type) *wire.Prog {
	if v, ok := c.wireProgs.Load(t); ok {
		return v.(wireEntry).prog
	}
	p, err := wire.Compile(t)
	if err != nil {
		p = nil
	}
	if v, loaded := c.wireProgs.LoadOrStore(t, wireEntry{p}); loaded {
		return v.(wireEntry).prog
	}
	if p != nil {
		c.wireCompiles.Add(1)
	} else {
		c.wireRejects.Add(1)
	}
	return p
}

// encodePayload serializes o with the compact encoding when its class
// compiles (through the class's registered native codec when one
// exists), falling back to gob otherwise.
func (c *Codec) encodePayload(o obvent.Obvent) ([]byte, uint8, error) {
	if !c.wireOff.Load() {
		t := reflect.TypeOf(o)
		for t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		if p := c.wireProgFor(t); p != nil {
			c.wireEncodes.Add(1)
			if nc := p.Native(); nc != nil {
				return nc.Enc(nil, o), EncWire, nil
			}
			v := reflect.ValueOf(o)
			for v.Kind() == reflect.Pointer {
				v = v.Elem()
			}
			return p.Append(nil, v), EncWire, nil
		}
	}
	b, err := encodeValue(o)
	if err == nil {
		c.gobEncodes.Add(1)
	}
	return b, EncGob, err
}

// TranscodeGob returns an envelope carrying e's obvent with a gob
// payload, for a destination that did not advertise wire capability:
// a compact payload is materialized once and re-encoded; a gob-payload
// envelope passes through unchanged (and unallocated). Everything but
// the payload is shared with e.
func (c *Codec) TranscodeGob(e *Envelope) (*Envelope, error) {
	if e.Enc == EncGob {
		return e, nil
	}
	var s CloneSource
	if err := c.SourceInto(e, &s); err != nil {
		return nil, err
	}
	v, err := s.decodeNew()
	if err != nil {
		return nil, err
	}
	o, err := s.box(v)
	if err != nil {
		return nil, err
	}
	payload, err := encodeValue(o)
	if err != nil {
		return nil, fmt.Errorf("codec: transcode %s: %w", e.Type, err)
	}
	c.gobEncodes.Add(1)
	c.downgrades.Add(1)
	out := *e
	out.Payload = payload
	out.Enc = EncGob
	return &out, nil
}

// Wire exposes the compact payload and its compiled program when the
// source is wire-encoded — the inputs to lazy partial evaluation
// (matching's wire match path). ok is false for gob payloads, whose
// only reading is a full decode.
func (s *CloneSource) Wire() (prog *wire.Prog, payload []byte, ok bool) {
	if s.enc != EncWire || s.wp == nil {
		return nil, nil, false
	}
	return s.wp, s.payload, true
}

// Type returns the resolved concrete class of the source's obvent.
func (s *CloneSource) Type() reflect.Type { return s.typ }
