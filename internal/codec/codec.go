// Package codec implements the serialization substrate for obvents
// (paper LM1, "default serialization mechanism"). It plays the role of
// Java serialization in the paper: obvents are "objects that are
// serialized, sent over the wire, and deserialized" (§3.1) without the
// application implementing any specific operations or hooks.
//
// An obvent travels as an Envelope: a self-describing wire record carrying
// the obvent's class name, its gob-encoded state, and the metadata needed
// by the delivery semantics of its type (sequence numbers, vector clock,
// priority, expiry). The envelope is the "reified message" of paper
// §3.1.2 — the obvent reflects its semantics at every moment of the
// transfer.
package codec

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"govents/internal/obvent"
	"govents/internal/vclock"
	"govents/internal/wire"
)

// ErrUnregistered is the sentinel wrapped whenever an envelope names an
// obvent class the local registry does not know: the process cannot
// reconstruct instances of a type it never registered. Detect it with
// errors.Is at any layer.
var ErrUnregistered = errors.New("codec: unregistered obvent class")

// Envelope is the wire representation of a published obvent.
type Envelope struct {
	// ID uniquely identifies this publication (not the clone: every
	// delivery of the same publication shares the ID; every clone is a
	// distinct object).
	ID string
	// Type is the registered wire name of the obvent's concrete class.
	Type string
	// Payload is the serialized obvent value, in the encoding named by
	// Enc.
	Payload []byte
	// Enc identifies the payload encoding: EncGob (the zero value — the
	// legacy self-describing gob encoding, which is also what every
	// pre-wire peer sends, since gob omits zero fields an old envelope
	// and a new gob-payload envelope are byte-identical on the wire) or
	// EncWire (the compact per-class compiled encoding, wire.go).
	Enc uint8

	// Publisher is the node that published the obvent.
	Publisher string
	// Seq is the per-publisher, per-class publication sequence number
	// (FIFO ordering metadata).
	Seq uint64
	// VC is the publisher's vector clock at publication (causal
	// ordering metadata). Nil unless the type requests causal order.
	VC vclock.VC
	// GlobalSeq is the sequencer-assigned total-order number. Zero
	// until a sequencer stamps it.
	GlobalSeq uint64

	// Reliability and Ordering mirror the resolved semantics of the
	// obvent type so that intermediate hosts can route correctly
	// without hosting the Go type.
	Reliability obvent.Reliability
	Ordering    obvent.Ordering

	// Priority is the transmission priority (Prioritary semantics).
	Priority int
	// HasPriority distinguishes priority 0 from "no priority".
	HasPriority bool

	// Birth and TTL describe the validity window (Timely semantics).
	// TTL zero means no expiry.
	Birth time.Time
	TTL   time.Duration

	// PubNanos is the publisher's wall clock (UnixNano) at encode time;
	// subscribers time end-to-end publish→deliver latency against it.
	// Write-once: stamped by Encode, never mutated afterwards (envelopes
	// are shared across concurrent routes). Zero from legacy peers — gob
	// omits zero fields on encode and ignores unknown fields on decode,
	// so the stamp is wire-compatible in both directions, and receivers
	// gate on PubNanos > 0.
	PubNanos int64
}

// Expired reports whether a timely envelope is obsolete at instant now.
func (e *Envelope) Expired(now time.Time) bool {
	if e.TTL == 0 || e.Birth.IsZero() {
		return false
	}
	return now.After(e.Birth.Add(e.TTL))
}

// A Codec encodes and decodes obvents against a type registry.
// Codec is safe for concurrent use.
type Codec struct {
	reg *obvent.Registry

	// flat caches, per concrete class (reflect.Type -> bool), whether a
	// plain value copy of the struct is already a deep copy — i.e. the
	// type transitively contains no reference kinds. A type's layout
	// never changes once registered, so entries are valid forever.
	flat sync.Map

	// codecCopiers is the compiled deep-copier cache for pointer-bearing
	// classes (copier.go).
	codecCopiers

	// codecWire is the compiled wire-codec cache and encoding-negotiation
	// state (wire.go).
	codecWire
}

// New returns a Codec over the given registry.
func New(reg *obvent.Registry) *Codec {
	return &Codec{reg: reg}
}

// Registry returns the codec's obvent type registry.
func (c *Codec) Registry() *obvent.Registry { return c.reg }

// Encode wraps obvent o into an Envelope: it resolves the QoS semantics of
// o's type, stamps timely/priority metadata, and serializes the value.
// Ordering metadata (Seq, VC, GlobalSeq) is left for the dissemination
// layer to fill in.
func (c *Codec) Encode(o obvent.Obvent) (*Envelope, error) {
	name, err := c.reg.NameOf(o)
	if err != nil {
		return nil, fmt.Errorf("codec: encode: %w", err)
	}
	payload, enc, err := c.encodePayload(o)
	if err != nil {
		return nil, fmt.Errorf("codec: encode %s: %w", name, err)
	}
	sem := obvent.Resolve(o)
	env := &Envelope{
		ID:          NewID(),
		Type:        name,
		Payload:     payload,
		Enc:         enc,
		Reliability: sem.Reliability,
		Ordering:    sem.Ordering,
		PubNanos:    time.Now().UnixNano(),
	}
	if sem.Prioritary {
		env.Priority = sem.Priority
		env.HasPriority = true
	}
	if sem.Timely {
		env.TTL = sem.TTL
		env.Birth = sem.Birth
		if env.Birth.IsZero() {
			env.Birth = time.Now()
		}
	}
	return env, nil
}

// Decode reconstructs the obvent carried by an envelope. Each call
// returns a fresh, distinct value: decoding is the paper's "distributed
// object creation" (§2.1.2) — every subscriber receives a new clone.
func (c *Codec) Decode(e *Envelope) (obvent.Obvent, error) {
	s, err := c.Source(e)
	if err != nil {
		return nil, err
	}
	return s.Clone()
}

// A CloneSource produces per-subscriber clones of one envelope. It
// front-loads the registry lookup so that a dispatcher delivering one
// publication to many local subscriptions pays the (read-locked) type
// resolution once and only the clone cost per clone. Three clone
// strategies exist, resolved per class at Source time:
//
//   - modeFlat: pointer-free classes. The payload is gob-decoded once
//     into a prototype; every clone is a single reflect value copy,
//     which is already a deep copy.
//   - modeCopier: pointer-bearing classes with a compiled deep copier
//     (copier.go). The payload is gob-decoded once into a prototype;
//     every clone is one compiled deep copy of it — no per-clone wire
//     decode.
//   - modeGob: classes the copier compiler rejects. Every clone pays
//     the full gob decode, as all classes originally did.
//
// A CloneSource is not safe for concurrent use: it belongs to the one
// dispatch invocation that created it.
type CloneSource struct {
	typ     reflect.Type
	name    string
	payload []byte

	// enc is the payload encoding (Envelope.Enc); wp is the compiled
	// wire program resolved for compact payloads (wire.go).
	enc uint8
	wp  *wire.Prog
	// cw points at the owning codec's wire counters so decode activity
	// is attributed wherever the decode actually happens.
	cw *codecWire

	mode cloneMode
	// copy is the compiled deep copier (modeCopier only).
	copy copyFn
	// proto is the payload decoded once (modeFlat/modeCopier), valid
	// after the first successful Clone.
	proto reflect.Value
}

// cloneMode selects a CloneSource's per-clone strategy.
type cloneMode uint8

const (
	// modeGob decodes the payload per clone (fallback).
	modeGob cloneMode = iota
	// modeFlat value-copies the decoded prototype.
	modeFlat
	// modeCopier deep-copies the decoded prototype with a compiled
	// copier.
	modeCopier
)

// Source resolves the envelope's obvent class for repeated cloning.
func (c *Codec) Source(e *Envelope) (*CloneSource, error) {
	s := new(CloneSource)
	if err := c.SourceInto(e, s); err != nil {
		return nil, err
	}
	return s, nil
}

// SourceInto is Source into caller-owned storage: dispatch loops reuse
// one CloneSource per lane across envelopes instead of allocating one
// per envelope. Any previous state of s is discarded.
func (c *Codec) SourceInto(e *Envelope, s *CloneSource) error {
	t, ok := c.reg.TypeByName(e.Type)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnregistered, e.Type)
	}
	*s = CloneSource{typ: t, name: e.Type, payload: e.Payload, enc: e.Enc, cw: &c.codecWire}
	switch e.Enc {
	case EncGob:
	case EncWire:
		if c.wireOff.Load() {
			// A wire-disabled codec is observationally a pre-wire binary,
			// which could not read this payload either; the negotiation
			// layer exists to keep such payloads from ever being sent here.
			return fmt.Errorf("codec: decode %s: unsupported payload encoding %d", e.Type, e.Enc)
		}
		if s.wp = c.wireProgFor(t); s.wp == nil {
			// Compilation is deterministic per layout, so a compact
			// payload for a class we reject means the peer's layout for
			// this class differs from ours — refuse rather than misread.
			return fmt.Errorf("codec: decode %s: compact payload for a class with no wire program", e.Type)
		}
	default:
		return fmt.Errorf("codec: decode %s: unsupported payload encoding %d", e.Type, e.Enc)
	}
	if c.flatType(t) {
		s.mode = modeFlat
	} else if fn := c.copierFor(t); fn != nil {
		s.mode = modeCopier
		s.copy = fn
	}
	return nil
}

// Clone decodes one fresh obvent value — the paper's distributed object
// creation (§2.1.2): every call yields a distinct object.
func (s *CloneSource) Clone() (obvent.Obvent, error) {
	if s.mode == modeGob {
		v, err := s.decodeNew()
		if err != nil {
			return nil, err
		}
		return s.box(v)
	}
	// Prototype modes: decode the payload once, then clone off the
	// prototype. With no reference kinds (modeFlat), the value copy
	// performed by Interface boxing is already a deep copy — strings are
	// immutable, so sharing their backing bytes is safe. Otherwise
	// (modeCopier) the compiled copier rebuilds the prototype's pointee,
	// slice and map structure with fresh allocations; the prototype is a
	// decoded tree (gob output is always a tree, and the wire decoder
	// likewise allocates every pointee fresh — no aliasing, no cycles),
	// so the copy is indistinguishable from another decode of the
	// payload.
	if !s.proto.IsValid() {
		v, err := s.decodeNew()
		if err != nil {
			return nil, err
		}
		s.proto = v
	}
	if s.mode == modeFlat {
		return s.box(s.proto)
	}
	n := reflect.New(s.typ).Elem()
	s.copy(n, s.proto)
	return s.box(n)
}

// decodeNew materializes the payload into a fresh value of the class,
// honoring the payload encoding: the compiled wire program (through the
// class's registered native codec when one exists) for compact
// payloads, gob otherwise.
func (s *CloneSource) decodeNew() (reflect.Value, error) {
	if s.enc == EncWire {
		if s.wp == nil {
			return reflect.Value{}, fmt.Errorf("codec: decode %s: compact payload for a class with no wire program", s.name)
		}
		if s.cw != nil {
			s.cw.wireDecodes.Add(1)
		}
		if nc := s.wp.Native(); nc != nil {
			o, err := nc.Dec(s.payload)
			if err != nil {
				return reflect.Value{}, fmt.Errorf("codec: decode %s: %w", s.name, err)
			}
			rv := reflect.ValueOf(o)
			for rv.Kind() == reflect.Pointer {
				rv = rv.Elem()
			}
			return rv, nil
		}
		v := reflect.New(s.typ)
		if err := s.wp.Decode(s.payload, v.Elem()); err != nil {
			return reflect.Value{}, fmt.Errorf("codec: decode %s: %w", s.name, err)
		}
		return v.Elem(), nil
	}
	if s.cw != nil {
		s.cw.gobDecodes.Add(1)
	}
	v := reflect.New(s.typ)
	dec := gob.NewDecoder(bytes.NewReader(s.payload))
	if err := dec.DecodeValue(v); err != nil {
		return reflect.Value{}, fmt.Errorf("codec: decode %s: %w", s.name, err)
	}
	return v.Elem(), nil
}

// box converts a decoded value to the Obvent interface (copying it into
// the interface box, which completes the clone's independence).
func (s *CloneSource) box(v reflect.Value) (obvent.Obvent, error) {
	o, ok := v.Interface().(obvent.Obvent)
	if !ok {
		// The registry only holds Obvent types, so this indicates a
		// registry/codec mismatch, not user error.
		return nil, fmt.Errorf("codec: decode: %s is not an obvent", s.name)
	}
	return o, nil
}

// flatType reports (and caches) whether t can use the value-copy clone
// fastpath.
func (c *Codec) flatType(t reflect.Type) bool {
	if v, ok := c.flat.Load(t); ok {
		return v.(bool)
	}
	f := isFlat(t)
	c.flat.Store(t, f)
	return f
}

// isFlat reports whether a value copy of type t is a deep copy: t
// contains, transitively, no kind through which two copies could share
// mutable state. Strings count as flat because their backing bytes are
// immutable. Struct recursion terminates: Go structs cannot contain
// themselves by value.
func isFlat(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return true
	case reflect.Array:
		return isFlat(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isFlat(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		// Pointer, slice, map, chan, func, interface, unsafe.Pointer:
		// a value copy would alias the referent.
		return false
	}
}

// Clone deep-copies an obvent through an encode/decode round trip. It
// implements the per-subscriber cloning that gives the paper's Obvent
// Global/Local Uniqueness properties (§2.1.2).
func (c *Codec) Clone(o obvent.Obvent) (obvent.Obvent, error) {
	e, err := c.Encode(o)
	if err != nil {
		return nil, err
	}
	return c.Decode(e)
}

// Marshal serializes an envelope for transmission.
func Marshal(e *Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("codec: marshal envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes an envelope from the wire.
func Unmarshal(data []byte) (*Envelope, error) {
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("codec: unmarshal envelope: %w", err)
	}
	return &e, nil
}

// NewID returns a fresh 128-bit random identifier.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means the platform is broken; there is
		// no reasonable fallback for uniqueness.
		panic(fmt.Sprintf("codec: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// encodeValue gob-encodes a value via reflection so that concrete types
// need not be gob.Registered globally.
func encodeValue(o obvent.Obvent) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	v := reflect.ValueOf(o)
	for v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	if err := enc.EncodeValue(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
