package codec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"govents/internal/obvent"
)

// The copier menagerie: every supported reference shape, plus the
// layouts that must be rejected to the gob fallback.

type leaf struct {
	Name  string
	Score float64
}

type ptrQuote struct {
	obvent.Base
	Company string
	Detail  *leaf
	Tags    []string
	Scores  []float64
	Meta    map[string]int
	Deep    map[string][]*leaf
	Nest    struct {
		Inner  *leaf
		Matrix [][]int
	}
	Arr     [3]*leaf
	PtrPtr  **leaf
	private *leaf // unexported: gob never moves it; prototype copy is zero
}

type recNode struct {
	obvent.Base
	V    int
	Next *recNode
}

type ifaceEvent struct {
	obvent.Base
	Payload any
}

type chanEvent struct {
	obvent.Base
	C chan int
}

type ptrKeyEvent struct {
	obvent.Base
	M map[*leaf]int
}

type arrPtrKeyEvent struct {
	obvent.Base
	M map[[2]*leaf]string
}

func randLeafPtr(rng *rand.Rand) *leaf {
	if rng.Intn(4) == 0 {
		return nil
	}
	return &leaf{Name: fmt.Sprintf("L%d", rng.Intn(100)), Score: rng.Float64()*100 + 0.5}
}

func randPtrQuote(rng *rand.Rand) ptrQuote {
	q := ptrQuote{
		Company: fmt.Sprintf("co-%d", rng.Intn(50)),
		Detail:  randLeafPtr(rng),
	}
	// Slices: nil, or populated (gob collapses empty-to-nil at field
	// level, so the prototype never carries empty non-nil fields; random
	// lengths start at 1).
	if rng.Intn(3) > 0 {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			q.Tags = append(q.Tags, fmt.Sprintf("t%d", rng.Intn(10)))
			q.Scores = append(q.Scores, rng.Float64())
		}
	}
	if rng.Intn(3) > 0 {
		q.Meta = map[string]int{}
		for i := 0; i < 1+rng.Intn(4); i++ {
			q.Meta[fmt.Sprintf("k%d", i)] = rng.Intn(1000)
		}
	}
	if rng.Intn(3) > 0 {
		// gob rejects nil pointers inside slices/maps (only field-level
		// nils are omitted), so container elements are always non-nil —
		// the same invariant every real payload obeys.
		q.Deep = map[string][]*leaf{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			var ls []*leaf
			for j := 0; j < 1+rng.Intn(3); j++ {
				ls = append(ls, &leaf{Name: fmt.Sprintf("L%d", rng.Intn(100)), Score: rng.Float64()})
			}
			q.Deep[fmt.Sprintf("d%d", i)] = ls
		}
	}
	q.Nest.Inner = randLeafPtr(rng)
	if rng.Intn(2) == 0 {
		q.Nest.Matrix = [][]int{{rng.Intn(9)}, {rng.Intn(9), rng.Intn(9)}}
	}
	// Pointer arrays must be fully populated: gob rejects nil elements
	// even in an otherwise-zero array, so no published value can carry
	// one.
	for i := range q.Arr {
		q.Arr[i] = &leaf{Name: fmt.Sprintf("A%d", i), Score: rng.Float64()}
	}
	if rng.Intn(3) == 0 {
		p := randLeafPtr(rng)
		if p != nil {
			q.PtrPtr = &p
		}
	}
	return q
}

// TestCopierMatchesGobRoundTrip is the randomized equivalence fuzz: for
// a pointer-bearing class, a compiled-copier clone must be
// reflect.DeepEqual to a gob-per-clone decode of the same envelope, for
// every generated value shape (nil pointers, nil/populated slices and
// maps, nested reference kinds, multi-level pointers).
func TestCopierMatchesGobRoundTrip(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(ptrQuote{})
	c := New(reg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		in := randPtrQuote(rng)
		env, err := c.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		src, err := c.Source(env)
		if err != nil {
			t.Fatal(err)
		}
		if src.mode != modeCopier {
			t.Fatalf("ptrQuote resolved to mode %d, want compiled copier", src.mode)
		}
		got, err := src.Clone()
		if err != nil {
			t.Fatal(err)
		}
		// The oracle: the exact decode every clone used to perform.
		oracle := *src
		oracle.mode = modeGob
		want, err := oracle.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d:\ncopier: %+v\ngob:    %+v", i, got, want)
		}
	}
}

// TestCopierCloneIndependence proves obvent local uniqueness (§2.1.2)
// on the copier path: clones share no mutable state with each other or
// with the prototype.
func TestCopierCloneIndependence(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(ptrQuote{})
	c := New(reg)
	in := ptrQuote{
		Company: "Acme",
		Detail:  &leaf{Name: "d", Score: 1},
		Tags:    []string{"a", "b"},
		Meta:    map[string]int{"k": 1},
		Deep:    map[string][]*leaf{"x": {{Name: "deep"}}},
	}
	in.Nest.Inner = &leaf{Name: "n"}
	in.Arr = [3]*leaf{{Name: "a0"}, {Name: "arr"}, {Name: "a2"}}

	env, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Source(env)
	if err != nil {
		t.Fatal(err)
	}
	a, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	qa, qb := a.(ptrQuote), b.(ptrQuote)

	// Mutate everything reachable through references in clone a.
	qa.Detail.Name = "MUT"
	qa.Tags[0] = "MUT"
	qa.Meta["k"] = -1
	qa.Deep["x"][0].Name = "MUT"
	qa.Nest.Inner.Name = "MUT"
	qa.Arr[1].Name = "MUT"

	if qb.Detail.Name != "d" || qb.Tags[0] != "a" || qb.Meta["k"] != 1 ||
		qb.Deep["x"][0].Name != "deep" || qb.Nest.Inner.Name != "n" || qb.Arr[1].Name != "arr" {
		t.Fatalf("mutating clone a leaked into clone b: %+v", qb)
	}
	cAgain, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	qc := cAgain.(ptrQuote)
	if qc.Detail.Name != "d" || qc.Tags[0] != "a" || qc.Deep["x"][0].Name != "deep" {
		t.Fatalf("mutating clone a corrupted the prototype: %+v", qc)
	}
}

// TestCopierRejectsUnsupportedLayouts pins the compile-time fallback
// decisions: recursion, interfaces, chans, and pointer-bearing map keys
// all reject to gob, once, and the rejection is cached.
func TestCopierRejectsUnsupportedLayouts(t *testing.T) {
	reg := obvent.NewRegistry()
	c := New(reg)
	for _, tc := range []struct {
		name string
		typ  reflect.Type
	}{
		{"recursive", reflect.TypeOf(recNode{})},
		{"interface-field", reflect.TypeOf(ifaceEvent{})},
		{"chan-field", reflect.TypeOf(chanEvent{})},
		{"pointer-map-key", reflect.TypeOf(ptrKeyEvent{})},
		{"array-ptr-map-key", reflect.TypeOf(arrPtrKeyEvent{})},
	} {
		if fn := c.copierFor(tc.typ); fn != nil {
			t.Errorf("%s: compiled a copier, want gob fallback", tc.name)
		}
		if fn := c.copierFor(tc.typ); fn != nil { // cached decision
			t.Errorf("%s: second lookup compiled a copier", tc.name)
		}
	}
	st := c.CopierStats()
	if st.Rejects != 5 || st.Compiles != 0 {
		t.Errorf("CopierStats = %+v, want 5 rejects / 0 compiles (cached rejections count once)", st)
	}
}

// TestCopierRejectedClassStillClones proves fail-open: a rejected
// layout that gob can nonetheless move (a recursive list) keeps working
// through the per-clone decode fallback.
func TestCopierRejectedClassStillClones(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(recNode{})
	c := New(reg)
	in := recNode{V: 1, Next: &recNode{V: 2, Next: &recNode{V: 3}}}
	env, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Source(env)
	if err != nil {
		t.Fatal(err)
	}
	if src.mode != modeGob {
		t.Fatalf("recursive class resolved to mode %d, want gob fallback", src.mode)
	}
	o, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	got := o.(recNode)
	if got.V != 1 || got.Next == nil || got.Next.V != 2 || got.Next.Next == nil || got.Next.Next.V != 3 {
		t.Fatalf("gob-fallback clone mangled the list: %+v", got)
	}
}

// TestCopierStatsCount pins the compile counters: one compile per
// class, decided once.
func TestCopierStatsCount(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(ptrQuote{})
	c := New(reg)
	in := ptrQuote{Company: "x", Detail: &leaf{}}
	in.Arr = [3]*leaf{{}, {}, {}} // gob rejects nil pointer-array elements
	env, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Source(env); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CopierStats()
	if st.Compiles != 1 || st.Rejects != 0 {
		t.Errorf("CopierStats = %+v, want exactly 1 compile", st)
	}
}

// BenchmarkClonePointerBearing is the tentpole's clone benchmark: a
// pointer-bearing class cloned through the compiled copier vs the
// gob-decode-per-clone baseline it replaces (acceptance: >= 10x).
func BenchmarkClonePointerBearing(b *testing.B) {
	reg := obvent.NewRegistry()
	reg.MustRegister(ptrQuote{})
	c := New(reg)
	in := ptrQuote{
		Company: "Telco Mobiles",
		Detail:  &leaf{Name: "spot", Score: 80},
		Tags:    []string{"a", "b", "c"},
		Meta:    map[string]int{"k1": 1, "k2": 2},
	}
	in.Nest.Inner = &leaf{Name: "n"}
	in.Arr = [3]*leaf{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	env, err := c.Encode(in)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		force cloneMode
	}{{"gob", modeGob}, {"copier", modeCopier}} {
		b.Run(mode.name, func(b *testing.B) {
			src, err := c.Source(env)
			if err != nil {
				b.Fatal(err)
			}
			if src.mode != modeCopier {
				b.Fatalf("ptrQuote resolved to mode %d, want copier", src.mode)
			}
			src.mode = mode.force
			if _, err := src.Clone(); err != nil { // warm the prototype
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Clone(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// gobCounter is big.Int's pattern: custom gob marshaling that rebuilds
// UNEXPORTED reference state at decode time — invisible to a
// layout-driven copier, whose shallow struct copy would alias it across
// clones. Such types must reject to the gob fallback.
type gobCounter struct {
	vals []int // unexported: only GobDecode populates it
}

func (g gobCounter) GobEncode() ([]byte, error) {
	out := make([]byte, len(g.vals))
	for i, v := range g.vals {
		out[i] = byte(v)
	}
	return out, nil
}

func (g *gobCounter) GobDecode(data []byte) error {
	g.vals = make([]int, len(data))
	for i, b := range data {
		g.vals[i] = int(b)
	}
	return nil
}

type customGobEvent struct {
	obvent.Base
	Name    string
	Counter gobCounter
	Detail  *leaf // pointer-bearing, so the class is not flat
}

// TestCopierRejectsCustomGobMarshalers pins the custom-marshaling
// rejection: a class reaching a GobEncoder/GobDecoder type must take
// the per-clone gob decode (which honors the custom codec), and clones
// must not share the unexported state GobDecode rebuilds.
func TestCopierRejectsCustomGobMarshalers(t *testing.T) {
	reg := obvent.NewRegistry()
	reg.MustRegister(customGobEvent{})
	c := New(reg)
	if fn := c.copierFor(reflect.TypeOf(customGobEvent{})); fn != nil {
		t.Fatal("compiled a copier over a custom gob marshaler, want gob fallback")
	}
	in := customGobEvent{Name: "x", Counter: gobCounter{vals: []int{1, 2, 3}}, Detail: &leaf{Name: "d"}}
	env, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Source(env)
	if err != nil {
		t.Fatal(err)
	}
	if src.mode != modeGob {
		t.Fatalf("mode = %d, want gob fallback", src.mode)
	}
	a, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := a.(customGobEvent), b.(customGobEvent)
	if len(ga.Counter.vals) != 3 || len(gb.Counter.vals) != 3 {
		t.Fatalf("custom decode lost state: %+v / %+v", ga.Counter, gb.Counter)
	}
	ga.Counter.vals[0] = -1
	if gb.Counter.vals[0] != 1 {
		t.Fatal("clones share GobDecode-rebuilt unexported state")
	}

	// Flat custom marshalers stay on the value-copy fastpath: with no
	// reference kinds in the layout, a value copy is complete however
	// the value was decoded.
	st := c.CopierStats()
	if st.Rejects != 1 {
		t.Errorf("CopierStats.Rejects = %d, want 1", st.Rejects)
	}
}
