package codec

// This file implements compiled deep copiers: the pointer-bearing
// counterpart of the flat-class value-copy fastpath. A CloneSource
// decodes an envelope's payload once into a prototype; for classes
// whose layout contains reference kinds, each per-subscriber clone used
// to pay a full gob decode. Instead, the codec compiles — once per
// registered class — a recursive reflect-based copier (struct shallow
// copy + reference-field fix-ups, fresh pointees, fresh slice and map
// backing stores) and each clone becomes one compiled deep copy of the
// prototype.
//
// Transparency: the prototype IS the gob round-trip image of the
// published obvent (it was produced by decoding the payload), and gob
// output is always a tree — every decoded pointer is freshly allocated,
// so the prototype contains no aliasing and no cycles. A faithful deep
// copy of that tree is therefore indistinguishable from another decode
// of the same payload (property-tested against the gob oracle), while
// skipping the wire format entirely.
//
// Compilation is conservative: a class whose layout the copier cannot
// prove safe — interface fields (dynamic types unknown statically),
// chan/func/unsafe.Pointer fields, maps whose keys contain pointers
// (fresh keys would break lookup identity), recursive pointer types
// (value cycles cannot be ruled out by layout alone), or non-flat types
// that opt into custom gob marshaling (GobEncoder/BinaryMarshaler/
// TextMarshaler, big.Int's pattern: GobDecode may rebuild unexported
// reference state invisible to a layout-driven copy) — is rejected at
// compile time and keeps the gob-decode-per-clone fallback. Unexported
// fields transfer by shallow copy: default-encoded gob never moves
// them, so in a prototype they are always zero.

import (
	"encoding"
	"encoding/gob"
	"reflect"
	"sync"
	"sync/atomic"
)

// copyFn deep-copies src into dst. dst must be settable; for struct
// copiers it may alias src's shallow image (the fix-up style below).
type copyFn func(dst, src reflect.Value)

// copierEntry is one class's cached compilation outcome. A nil fn marks
// a rejected class (gob fallback) so rejection is decided once, not per
// envelope.
type copierEntry struct{ fn copyFn }

// CopierStats describes a codec's compiled-copier cache.
type CopierStats struct {
	// Compiles counts classes for which a deep copier was compiled.
	Compiles uint64
	// Rejects counts classes rejected to the gob-per-clone fallback
	// (unsupported layout). Flat classes appear in neither: they use the
	// value-copy fastpath and never request a copier.
	Rejects uint64
}

// CopierStats returns the codec's copier-compilation counters.
func (c *Codec) CopierStats() CopierStats {
	return CopierStats{
		Compiles: c.copierCompiles.Load(),
		Rejects:  c.copierRejects.Load(),
	}
}

// copierFor returns the compiled deep copier for t, compiling and
// caching it on first use. nil means the class is rejected and clones
// must take the gob fallback. Like the flat cache, entries are valid
// forever: a type's layout never changes.
func (c *Codec) copierFor(t reflect.Type) copyFn {
	if v, ok := c.copiers.Load(t); ok {
		return v.(copierEntry).fn
	}
	b := copierBuilder{building: make(map[reflect.Type]bool)}
	fn, ok := b.build(t)
	if !ok {
		fn = nil
	}
	if v, loaded := c.copiers.LoadOrStore(t, copierEntry{fn}); loaded {
		return v.(copierEntry).fn
	}
	if fn != nil {
		c.copierCompiles.Add(1)
	} else {
		c.copierRejects.Add(1)
	}
	return fn
}

// copierBuilder compiles one class, tracking in-progress types to
// detect recursion.
type copierBuilder struct {
	building map[reflect.Type]bool
}

// customGobIfaces are the interfaces gob honors in place of its default
// field-wise encoding (GobEncoder first, then BinaryMarshaler, then
// TextMarshaler, with the matching decode side).
var customGobIfaces = []reflect.Type{
	reflect.TypeOf((*gob.GobEncoder)(nil)).Elem(),
	reflect.TypeOf((*gob.GobDecoder)(nil)).Elem(),
	reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem(),
	reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem(),
	reflect.TypeOf((*encoding.TextMarshaler)(nil)).Elem(),
	reflect.TypeOf((*encoding.TextUnmarshaler)(nil)).Elem(),
}

// hasCustomGob reports whether t (or its pointer type, whose method set
// gob consults for addressable values) opts out of gob's default
// field-wise encoding.
func hasCustomGob(t reflect.Type) bool {
	pt := reflect.PointerTo(t)
	for _, it := range customGobIfaces {
		if t.Implements(it) || pt.Implements(it) {
			return true
		}
	}
	return false
}

// build returns a deep copier for t, or ok == false when t's layout is
// unsupported (the class then keeps the gob fallback).
func (b *copierBuilder) build(t reflect.Type) (copyFn, bool) {
	if isFlat(t) {
		// A value copy of a flat subtree is already a deep copy — even
		// for custom gob marshalers: with no reference kinds anywhere in
		// the layout (unexported fields included), however GobDecode
		// populated the value, copying it copies everything.
		return func(dst, src reflect.Value) { dst.Set(src) }, true
	}
	if hasCustomGob(t) {
		// A custom gob marshaler (big.Int's pattern) can rebuild
		// unexported reference state at decode time, which the
		// layout-driven copier would shallow-alias across clones.
		// Reject to the gob fallback, whose per-clone decode honors the
		// custom codec by construction.
		return nil, false
	}
	if b.building[t] {
		// Recursive pointer type (e.g. type Node struct{ Next *Node }).
		// Prototypes are gob-decoded trees, so value cycles could not
		// actually occur here — but a compiled copier would chase any
		// depth with no cycle check, so recursion is rejected to the
		// gob fallback once, at compile time, as the conservatively
		// cycle-safe choice.
		return nil, false
	}
	b.building[t] = true
	fn, ok := b.buildKind(t)
	delete(b.building, t)
	return fn, ok
}

// buildKind compiles the non-flat, non-recursive kinds.
func (b *copierBuilder) buildKind(t reflect.Type) (copyFn, bool) {
	switch t.Kind() {
	case reflect.Struct:
		return b.buildStruct(t)
	case reflect.Pointer:
		elemFn, ok := b.build(t.Elem())
		if !ok {
			return nil, false
		}
		et := t.Elem()
		return func(dst, src reflect.Value) {
			if src.IsNil() {
				dst.SetZero()
				return
			}
			n := reflect.New(et)
			elemFn(n.Elem(), src.Elem())
			dst.Set(n)
		}, true
	case reflect.Slice:
		et := t.Elem()
		if isFlat(et) {
			return func(dst, src reflect.Value) {
				if src.IsNil() {
					dst.SetZero()
					return
				}
				n := reflect.MakeSlice(t, src.Len(), src.Len())
				reflect.Copy(n, src)
				dst.Set(n)
			}, true
		}
		elemFn, ok := b.build(et)
		if !ok {
			return nil, false
		}
		return func(dst, src reflect.Value) {
			if src.IsNil() {
				dst.SetZero()
				return
			}
			l := src.Len()
			n := reflect.MakeSlice(t, l, l)
			for i := 0; i < l; i++ {
				elemFn(n.Index(i), src.Index(i))
			}
			dst.Set(n)
		}, true
	case reflect.Array:
		// Flat arrays never reach here (isFlat short-circuits).
		elemFn, ok := b.build(t.Elem())
		if !ok {
			return nil, false
		}
		l := t.Len()
		return func(dst, src reflect.Value) {
			for i := 0; i < l; i++ {
				elemFn(dst.Index(i), src.Index(i))
			}
		}, true
	case reflect.Map:
		if !isFlat(t.Key()) {
			// Fresh deep-copied keys would not be == to the originals,
			// changing lookup identity; gob (which rebuilds keys from
			// their flattened values) is the semantics of record here.
			return nil, false
		}
		vt := t.Elem()
		if isFlat(vt) {
			return func(dst, src reflect.Value) {
				if src.IsNil() {
					dst.SetZero()
					return
				}
				n := reflect.MakeMapWithSize(t, src.Len())
				iter := src.MapRange()
				for iter.Next() {
					n.SetMapIndex(iter.Key(), iter.Value())
				}
				dst.Set(n)
			}, true
		}
		valFn, ok := b.build(vt)
		if !ok {
			return nil, false
		}
		return func(dst, src reflect.Value) {
			if src.IsNil() {
				dst.SetZero()
				return
			}
			n := reflect.MakeMapWithSize(t, src.Len())
			iter := src.MapRange()
			for iter.Next() {
				nv := reflect.New(vt).Elem()
				valFn(nv, iter.Value())
				n.SetMapIndex(iter.Key(), nv)
			}
			dst.Set(n)
		}, true
	default:
		// Interface (dynamic type unknown statically), chan, func,
		// unsafe.Pointer: unsupported — gob fallback.
		return nil, false
	}
}

// buildStruct compiles a struct copier: one shallow Set (which finishes
// every flat field, including unexported ones — always zero in a
// gob-decoded prototype) followed by fix-ups of the exported
// reference-bearing fields.
func (b *copierBuilder) buildStruct(t reflect.Type) (copyFn, bool) {
	type fix struct {
		idx int
		fn  copyFn
	}
	var fixes []fix
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if isFlat(f.Type) {
			continue
		}
		if !f.IsExported() {
			// gob neither encodes nor decodes unexported fields, so the
			// prototype's are zero and the shallow copy is exact. (A
			// non-zero unexported reference field could only come from a
			// value that never crossed the codec.)
			continue
		}
		fn, ok := b.build(f.Type)
		if !ok {
			return nil, false
		}
		fixes = append(fixes, fix{idx: i, fn: fn})
	}
	return func(dst, src reflect.Value) {
		dst.Set(src)
		for i := range fixes {
			f := &fixes[i]
			f.fn(dst.Field(f.idx), src.Field(f.idx))
		}
	}, true
}

// Codec copier cache fields (declared here, next to their logic; the
// Codec struct embeds them via codecCopiers).
type codecCopiers struct {
	// copiers caches reflect.Type -> copierEntry.
	copiers sync.Map
	// copierCompiles / copierRejects count compilation outcomes.
	copierCompiles atomic.Uint64
	copierRejects  atomic.Uint64
}
