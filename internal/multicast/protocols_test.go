package multicast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"govents/internal/netsim"
	"govents/internal/store"
)

// testNode bundles a mux and a recorder of deliveries.
type testNode struct {
	mux *Mux

	mu   sync.Mutex
	msgs []delivery
}

type delivery struct {
	origin  string
	payload string
}

func newTestNode(t *testing.T, net *netsim.Network, addr string) *testNode {
	t.Helper()
	ep, err := net.NewEndpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	return &testNode{mux: NewMux(ep)}
}

func (n *testNode) record(origin string, payload []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.msgs = append(n.msgs, delivery{origin: origin, payload: string(payload)})
}

func (n *testNode) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.msgs)
}

func (n *testNode) payloads() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.msgs))
	for i, d := range n.msgs {
		out[i] = d.payload
	}
	return out
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// fastOpts keeps protocol timers tight for tests.
func fastOpts() Options {
	return Options{RetransmitInterval: 5 * time.Millisecond, GossipPeriod: 3 * time.Millisecond}
}

func addrs(nodes []*testNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.mux.Addr()
	}
	return out
}

func TestMuxRouting(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")

	var s1, s2 []string
	var mu sync.Mutex
	b.mux.Handle("s1", func(from string, p []byte) {
		mu.Lock()
		defer mu.Unlock()
		s1 = append(s1, string(p))
	})
	b.mux.Handle("s2", func(from string, p []byte) {
		mu.Lock()
		defer mu.Unlock()
		s2 = append(s2, string(p))
	})
	if err := a.mux.Send("b", "s1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := a.mux.Send("b", "s2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := a.mux.Send("b", "unknown", []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	mu.Lock()
	defer mu.Unlock()
	if len(s1) != 1 || s1[0] != "one" {
		t.Errorf("s1 = %v", s1)
	}
	if len(s2) != 1 || s2[0] != "two" {
		t.Errorf("s2 = %v", s2)
	}
}

func TestBestEffortDeliversToAllOnPerfectNetwork(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := []*testNode{newTestNode(t, net, "a"), newTestNode(t, net, "b"), newTestNode(t, net, "c")}
	var groups []*BestEffort
	for _, n := range nodes {
		n := n
		g := NewBestEffort(n.mux, "cls", n.record)
		groups = append(groups, g)
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	if err := groups[0].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	waitFor(t, time.Second, "all deliveries", func() bool {
		for _, n := range nodes {
			if n.count() != 1 {
				return false
			}
		}
		return true
	})
	for _, n := range nodes {
		n.mu.Lock()
		if n.msgs[0].origin != "a" || n.msgs[0].payload != "hello" {
			t.Errorf("node got %+v", n.msgs[0])
		}
		n.mu.Unlock()
	}
}

func TestBestEffortLosesUnderLoss(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 1.0})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	ga := NewBestEffort(a.mux, "cls", a.record)
	gb := NewBestEffort(b.mux, "cls", b.record)
	defer ga.Close()
	defer gb.Close()
	ga.SetMembers([]string{"a", "b"})
	_ = ga.Broadcast([]byte("x"))
	net.Settle()
	waitFor(t, time.Second, "local delivery", func() bool { return a.count() == 1 })
	if b.count() != 0 {
		t.Error("best effort must not mask total loss")
	}
}

func TestReliableDeliversDespiteLoss(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 0.4, Seed: 3})
	defer net.Close()
	nodes := []*testNode{newTestNode(t, net, "a"), newTestNode(t, net, "b"), newTestNode(t, net, "c")}
	var groups []*Reliable
	for _, n := range nodes {
		n := n
		groups = append(groups, NewReliable(n.mux, "cls", n.record, fastOpts()))
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := groups[0].Broadcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "reliable delivery under loss", func() bool {
		for _, n := range nodes {
			if n.count() != msgs {
				return false
			}
		}
		return true
	})
	waitFor(t, 10*time.Second, "outbox drained", func() bool { return groups[0].Outstanding() == 0 })
}

func TestReliableDedupUnderDuplication(t *testing.T) {
	net := netsim.New(netsim.Config{DupRate: 1.0})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	ga := NewReliable(a.mux, "cls", a.record, fastOpts())
	gb := NewReliable(b.mux, "cls", b.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	ga.SetMembers([]string{"a", "b"})
	gb.SetMembers([]string{"a", "b"})

	for i := 0; i < 10; i++ {
		_ = ga.Broadcast([]byte(fmt.Sprintf("m%d", i)))
	}
	waitFor(t, 5*time.Second, "deliveries", func() bool { return b.count() >= 10 })
	// Allow extra duplicated deliveries to arrive, then verify dedup.
	time.Sleep(50 * time.Millisecond)
	if b.count() != 10 {
		t.Errorf("b delivered %d, want exactly 10 (dedup)", b.count())
	}
}

func TestReliableGivesUpAtRetransmitLimit(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 1.0})
	defer net.Close()
	a := newTestNode(t, net, "a")
	_ = newTestNode(t, net, "b")
	opts := fastOpts()
	opts.RetransmitLimit = 3
	ga := NewReliable(a.mux, "cls", a.record, opts)
	defer ga.Close()
	ga.SetMembers([]string{"a", "b"})
	_ = ga.Broadcast([]byte("x"))
	waitFor(t, 5*time.Second, "give up", func() bool { return ga.Outstanding() == 0 })
}

func TestReliableMemberRemovalClearsPending(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	ga := NewReliable(a.mux, "cls", a.record, fastOpts())
	defer ga.Close()
	ga.SetMembers([]string{"a", "ghost"}) // ghost never acks (doesn't exist)
	_ = ga.Broadcast([]byte("x"))
	if ga.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", ga.Outstanding())
	}
	ga.SetMembers([]string{"a"}) // ghost leaves
	waitFor(t, 5*time.Second, "pending cleared", func() bool { return ga.Outstanding() == 0 })
}

func TestFIFOOrderUnderLossAndLatency(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 0.3, MinLatency: 0, MaxLatency: 3 * time.Millisecond, Seed: 11})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	ga := NewFIFO(a.mux, "cls", a.record, fastOpts())
	gb := NewFIFO(b.mux, "cls", b.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	ga.SetMembers([]string{"a", "b"})
	gb.SetMembers([]string{"a", "b"})

	const msgs = 30
	for i := 0; i < msgs; i++ {
		if err := ga.Broadcast([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "fifo delivery", func() bool { return b.count() == msgs })
	got := b.payloads()
	for i := 0; i < msgs; i++ {
		if want := fmt.Sprintf("m%03d", i); got[i] != want {
			t.Fatalf("position %d = %q, want %q: FIFO order violated", i, got[i], want)
		}
	}
	// Publisher's own deliveries are in order too.
	got = a.payloads()
	for i := 0; i < msgs; i++ {
		if want := fmt.Sprintf("m%03d", i); got[i] != want {
			t.Fatalf("local position %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestFIFOInterleavedPublishers(t *testing.T) {
	net := netsim.New(netsim.Config{MaxLatency: 2 * time.Millisecond, Seed: 5})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	c := newTestNode(t, net, "c")
	ga := NewFIFO(a.mux, "cls", a.record, fastOpts())
	gb := NewFIFO(b.mux, "cls", b.record, fastOpts())
	gc := NewFIFO(c.mux, "cls", c.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	defer gc.Close()
	all := []string{"a", "b", "c"}
	ga.SetMembers(all)
	gb.SetMembers(all)
	gc.SetMembers(all)

	const per = 15
	var wg sync.WaitGroup
	for name, g := range map[string]*FIFO{"a": ga, "b": gb} {
		wg.Add(1)
		go func(name string, g *FIFO) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = g.Broadcast([]byte(fmt.Sprintf("%s%03d", name, i)))
			}
		}(name, g)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, "all delivered at c", func() bool { return c.count() == 2*per })

	// Per-origin order must hold at c even with interleaving.
	c.mu.Lock()
	defer c.mu.Unlock()
	next := map[string]int{"a": 0, "b": 0}
	for _, d := range c.msgs {
		name := d.payload[:1]
		if want := fmt.Sprintf("%s%03d", name, next[name]); d.payload != want {
			t.Fatalf("origin %s out of order: got %q, want %q", name, d.payload, want)
		}
		next[name]++
	}
}

func TestCausalOrderRespectsHappensBefore(t *testing.T) {
	// Topology: a publishes m1; b receives m1 then publishes m2 (which
	// causally depends on m1); c must never deliver m2 before m1, even
	// though the direct a->c link is slow.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	c := newTestNode(t, net, "c")

	// Make a->c slow by partitioning it until m2 reaches c first.
	ga := NewCausal(a.mux, "cls", a.record, fastOpts())
	gb := NewCausal(b.mux, "cls", b.record, fastOpts())
	gc := NewCausal(c.mux, "cls", c.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	defer gc.Close()
	all := []string{"a", "b", "c"}
	ga.SetMembers(all)
	gb.SetMembers(all)
	gc.SetMembers(all)

	net.Partition([]string{"a"}, []string{"c"}) // delay m1 toward c

	if err := ga.Broadcast([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "b delivers m1", func() bool { return b.count() == 1 })
	if err := gb.Broadcast([]byte("m2")); err != nil {
		t.Fatal(err)
	}

	// Give m2 ample time to reach c while m1 is still blocked; c must
	// hold it back.
	waitFor(t, 5*time.Second, "c holds m2", func() bool { return gc.Held() == 1 })
	if c.count() != 0 {
		t.Fatalf("c delivered %d messages while m1 is partitioned away", c.count())
	}

	net.Heal()
	waitFor(t, 5*time.Second, "c delivers both", func() bool { return c.count() == 2 })
	got := c.payloads()
	if got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("c order = %v, want [m1 m2]", got)
	}
}

func TestCausalConcurrentMessagesBothDelivered(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 0.2, Seed: 9})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	c := newTestNode(t, net, "c")
	ga := NewCausal(a.mux, "cls", a.record, fastOpts())
	gb := NewCausal(b.mux, "cls", b.record, fastOpts())
	gc := NewCausal(c.mux, "cls", c.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	defer gc.Close()
	all := []string{"a", "b", "c"}
	ga.SetMembers(all)
	gb.SetMembers(all)
	gc.SetMembers(all)

	// Concurrent publications (no causal relation).
	_ = ga.Broadcast([]byte("from-a"))
	_ = gb.Broadcast([]byte("from-b"))
	waitFor(t, 10*time.Second, "c delivers both", func() bool { return c.count() == 2 })
}

func TestTotalOrderAgreement(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 0.25, MaxLatency: 2 * time.Millisecond, Seed: 17})
	defer net.Close()
	names := []string{"seq", "b", "c", "d"}
	var nodes []*testNode
	for _, name := range names {
		nodes = append(nodes, newTestNode(t, net, name))
	}
	var groups []*Total
	for _, n := range nodes {
		n := n
		groups = append(groups, NewTotal(n.mux, "cls", "seq", n.record, fastOpts()))
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	// Every node publishes concurrently.
	const per = 10
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *Total) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = g.Broadcast([]byte(fmt.Sprintf("n%d-%d", i, j)))
			}
		}(i, g)
	}
	wg.Wait()

	total := per * len(groups)
	waitFor(t, 15*time.Second, "total delivery", func() bool {
		for _, n := range nodes {
			if n.count() != total {
				return false
			}
		}
		return true
	})

	// All nodes must have identical delivery sequences.
	ref := nodes[0].payloads()
	for i, n := range nodes[1:] {
		got := n.payloads()
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("node %d position %d = %q, reference %q: total order violated", i+1, j, got[j], ref[j])
			}
		}
	}
}

func TestCertifiedDeliversAfterSubscriberRestart(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	pub := newTestNode(t, net, "pub")
	sub := newTestNode(t, net, "sub")

	pubLog := store.NewMemLog()
	gp := NewCertified(pub.mux, "cls", pubLog, store.NewMemSet(), pub.record, fastOpts())
	defer gp.Close()
	subDedup := store.NewMemSet() // survives the "crash" (stable storage)
	gs := NewCertified(sub.mux, "cls", store.NewMemLog(), subDedup, sub.record, fastOpts())
	gs.SetDurableID("durable-sub")
	defer gs.Close()

	if err := gp.SetSubscribers([]CertSubscriber{{DurableID: "durable-sub", Addr: "sub"}}); err != nil {
		t.Fatal(err)
	}

	// Deliver one message normally.
	_ = gp.Broadcast([]byte("before-crash"))
	waitFor(t, 5*time.Second, "first delivery", func() bool { return sub.count() == 1 })

	// Subscriber crashes; publisher keeps publishing.
	net.Crash("sub")
	_ = gp.Broadcast([]byte("while-down-1"))
	_ = gp.Broadcast([]byte("while-down-2"))
	time.Sleep(30 * time.Millisecond) // retransmissions all dropped

	// Subscriber restarts (same address, same durable identity and
	// dedup store).
	net.Restart("sub")
	waitFor(t, 10*time.Second, "redelivery after restart", func() bool { return sub.count() == 3 })

	got := sub.payloads()
	want := map[string]bool{"before-crash": true, "while-down-1": true, "while-down-2": true}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected payload %q", p)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Errorf("missing payloads: %v", want)
	}

	// Eventually all acks arrive and the outbox can be GCed.
	waitFor(t, 10*time.Second, "outbox GC", func() bool {
		n, err := gp.GC()
		return err == nil && pubLog.Len() == 0 || n == 3
	})
}

func TestCertifiedExactlyOnceDespiteAckLoss(t *testing.T) {
	// Heavy loss: data and acks are dropped; redelivery hammers the
	// subscriber, but the dedup set must keep delivery exactly-once.
	net := netsim.New(netsim.Config{LossRate: 0.5, Seed: 23})
	defer net.Close()
	pub := newTestNode(t, net, "pub")
	sub := newTestNode(t, net, "sub")
	gp := NewCertified(pub.mux, "cls", store.NewMemLog(), store.NewMemSet(), pub.record, fastOpts())
	defer gp.Close()
	gs := NewCertified(sub.mux, "cls", store.NewMemLog(), store.NewMemSet(), sub.record, fastOpts())
	defer gs.Close()
	if err := gp.SetSubscribers([]CertSubscriber{{DurableID: "sub", Addr: "sub"}}); err != nil {
		t.Fatal(err)
	}

	const msgs = 10
	for i := 0; i < msgs; i++ {
		_ = gp.Broadcast([]byte(fmt.Sprintf("m%d", i)))
	}
	waitFor(t, 15*time.Second, "all delivered", func() bool { return sub.count() >= msgs })
	time.Sleep(50 * time.Millisecond) // let redeliveries land
	if sub.count() != msgs {
		t.Errorf("delivered %d, want exactly %d", sub.count(), msgs)
	}
}

func TestCertifiedSubscriberMovesAddress(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	pub := newTestNode(t, net, "pub")
	sub1 := newTestNode(t, net, "sub1")

	gp := NewCertified(pub.mux, "cls", store.NewMemLog(), store.NewMemSet(), pub.record, fastOpts())
	defer gp.Close()
	dedup := store.NewMemSet()
	gs1 := NewCertified(sub1.mux, "cls", store.NewMemLog(), dedup, sub1.record, fastOpts())
	gs1.SetDurableID("tenant-7")
	_ = gp.SetSubscribers([]CertSubscriber{{DurableID: "tenant-7", Addr: "sub1"}})

	_ = gp.Broadcast([]byte("m1"))
	waitFor(t, 5*time.Second, "m1 at sub1", func() bool { return sub1.count() == 1 })

	// Subscriber goes away and reappears at a different address with
	// the same durable identity (paper §3.4.1 activate(id)).
	_ = gs1.Close()
	net.Crash("sub1")
	_ = gp.Broadcast([]byte("m2"))

	sub2 := newTestNode(t, net, "sub2")
	gs2 := NewCertified(sub2.mux, "cls", store.NewMemLog(), dedup, sub2.record, fastOpts())
	gs2.SetDurableID("tenant-7")
	defer gs2.Close()
	_ = gp.SetSubscribers([]CertSubscriber{{DurableID: "tenant-7", Addr: "sub2"}})

	waitFor(t, 10*time.Second, "m2 at new address", func() bool { return sub2.count() == 1 })
	if got := sub2.payloads(); got[0] != "m2" {
		t.Errorf("sub2 got %v; m1 was already delivered under this identity", got)
	}
}

func TestGossipReachesAllMembers(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	const n = 20
	var nodes []*testNode
	for i := 0; i < n; i++ {
		nodes = append(nodes, newTestNode(t, net, fmt.Sprintf("n%02d", i)))
	}
	opts := fastOpts()
	opts.GossipFanout = 4
	opts.GossipRounds = 6
	opts.Seed = 99
	var groups []*Gossip
	for i, node := range nodes {
		node := node
		o := opts
		o.Seed = int64(i + 1) // decorrelate peer choices
		groups = append(groups, NewGossip(node.mux, "cls", node.record, o))
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	if err := groups[0].Broadcast([]byte("rumor")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "gossip saturation", func() bool {
		reached := 0
		for _, node := range nodes {
			if node.count() > 0 {
				reached++
			}
		}
		return reached == n
	})
	// Exactly-once at each member despite redundant gossip.
	time.Sleep(50 * time.Millisecond)
	for i, node := range nodes {
		if node.count() != 1 {
			t.Errorf("node %d delivered %d times", i, node.count())
		}
	}
}

func TestGossipToleratesLoss(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 0.2, Seed: 31})
	defer net.Close()
	const n = 16
	var nodes []*testNode
	for i := 0; i < n; i++ {
		nodes = append(nodes, newTestNode(t, net, fmt.Sprintf("n%02d", i)))
	}
	opts := fastOpts()
	opts.GossipFanout = 4
	opts.GossipRounds = 8
	var groups []*Gossip
	for i, node := range nodes {
		node := node
		o := opts
		o.Seed = int64(100 + i)
		groups = append(groups, NewGossip(node.mux, "cls", node.record, o))
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	_ = groups[0].Broadcast([]byte("rumor"))
	// With fanout 4 and 8 rounds at 20% loss, saturation is
	// overwhelmingly likely.
	waitFor(t, 10*time.Second, "gossip under loss", func() bool {
		reached := 0
		for _, node := range nodes {
			if node.count() > 0 {
				reached++
			}
		}
		return reached >= n*9/10
	})
}

func TestBroadcastOnClosedGroupFails(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	gr := NewReliable(a.mux, "r", a.record, fastOpts())
	_ = gr.Close()
	if err := gr.Broadcast([]byte("x")); err == nil {
		t.Error("reliable: broadcast after close should fail")
	}
	gb := NewBestEffort(a.mux, "b", a.record)
	_ = gb.Close()
	if err := gb.Broadcast([]byte("x")); err == nil {
		t.Error("besteffort: broadcast after close should fail")
	}
	gg := NewGossip(a.mux, "g", a.record, fastOpts())
	_ = gg.Close()
	if err := gg.Broadcast([]byte("x")); err == nil {
		t.Error("gossip: broadcast after close should fail")
	}
}

func TestHandlerMayBroadcast(t *testing.T) {
	// A deliver handler publishing a follow-up (the paper's "obvents
	// publishing obvents", §5.3) must not deadlock.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")

	var gb *Reliable
	gb = NewReliable(b.mux, "cls", func(origin string, payload []byte) {
		b.record(origin, payload)
		if string(payload) == "ping" {
			_ = gb.Broadcast([]byte("pong"))
		}
	}, fastOpts())
	ga := NewReliable(a.mux, "cls", a.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	ga.SetMembers([]string{"a", "b"})
	gb.SetMembers([]string{"a", "b"})

	_ = ga.Broadcast([]byte("ping"))
	waitFor(t, 5*time.Second, "pong back at a", func() bool {
		for _, p := range a.payloads() {
			if p == "pong" {
				return true
			}
		}
		return false
	})
}
