package multicast

import (
	"fmt"

	"govents/internal/codec"
)

// BestEffort is the weakest dissemination protocol: a unicast fanout with
// no acknowledgements, retransmissions, or ordering. It models the
// network-level multicast primitives (IP multicast and derivatives) that
// the paper's DACE architecture uses for unreliable obvents (§4.2).
type BestEffort struct {
	mux    *Mux
	stream string
	self   string

	queue   *deliveryQueue
	members membership
	lc      *lifecycle
}

var _ Group = (*BestEffort)(nil)

// NewBestEffort creates a best-effort group on the given stream.
func NewBestEffort(mux *Mux, stream string, deliver Deliver) *BestEffort {
	g := &BestEffort{
		mux:    mux,
		stream: stream,
		self:   mux.Addr(),
		queue:  newDeliveryQueue(deliver),
		lc:     newLifecycle(),
	}
	mux.Handle(stream, g.onMessage)
	return g
}

// SetMembers implements Group.
func (g *BestEffort) SetMembers(members []string) { g.members.set(members) }

// Broadcast implements Group. Errors reaching individual members are
// ignored — the protocol is best-effort by contract. The local node
// always receives its own broadcast, whether or not it appears in the
// membership.
func (g *BestEffort) Broadcast(payload []byte) error {
	return g.BroadcastTo(append(g.members.others(g.self), g.self), payload)
}

// BroadcastTo disseminates to an explicit destination set (which may
// include the local node). It supports publisher-side filtering, where
// the sender prunes destinations per message (paper §2.3.2).
func (g *BestEffort) BroadcastTo(dests []string, payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: besteffort %s: closed", g.stream)
	}
	wire, err := encodeMessage(&message{
		Kind:    kindData,
		Origin:  g.self,
		ID:      codec.NewID(),
		Payload: payload,
	})
	if err != nil {
		return err
	}
	for _, addr := range dests {
		if addr == g.self {
			// Local delivery: the publishing node may itself
			// subscribe.
			g.queue.push(g.self, payload)
			continue
		}
		_ = g.mux.Send(addr, g.stream, wire)
	}
	return nil
}

// Close implements Group.
func (g *BestEffort) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	g.queue.close()
	return nil
}

func (g *BestEffort) onMessage(_ string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil || m.Kind != kindData {
		return
	}
	g.queue.push(m.Origin, m.Payload)
}
