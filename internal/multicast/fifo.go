package multicast

import "sync"

// FIFO layers publisher-side ordering on top of Reliable: two obvents
// published through the same publisher are delivered to every member in
// publication order (paper §3.1.2, FIFO ordered obvents). Messages from
// different publishers are not ordered relative to each other.
type FIFO struct {
	inner   *Reliable
	deliver Deliver

	mu       sync.Mutex
	nextSeq  uint64                       // local publication counter
	expected map[string]uint64            // origin -> next seq to deliver
	hold     map[string]map[uint64][]byte // origin -> seq -> payload
}

var _ Group = (*FIFO)(nil)

// NewFIFO creates a FIFO-ordered group on the given stream.
func NewFIFO(mux *Mux, stream string, deliver Deliver, opts Options) *FIFO {
	g := &FIFO{
		deliver:  deliver,
		expected: make(map[string]uint64),
		hold:     make(map[string]map[uint64][]byte),
	}
	g.inner = NewReliable(mux, stream, g.onInner, opts)
	return g
}

// SetMembers implements Group.
func (g *FIFO) SetMembers(members []string) { g.inner.SetMembers(members) }

// Broadcast implements Group.
func (g *FIFO) Broadcast(payload []byte) error {
	g.mu.Lock()
	g.nextSeq++
	seq := g.nextSeq
	g.mu.Unlock()
	wire, err := encodeMessage(&message{Kind: kindData, Seq: seq, Payload: payload})
	if err != nil {
		return err
	}
	return g.inner.Broadcast(wire)
}

// Close implements Group.
func (g *FIFO) Close() error { return g.inner.Close() }

// onInner receives reliably-delivered messages and releases them in
// per-origin sequence order.
func (g *FIFO) onInner(origin string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil {
		return
	}

	var ready [][]byte
	g.mu.Lock()
	if _, ok := g.expected[origin]; !ok {
		g.expected[origin] = 1
	}
	switch {
	case m.Seq == g.expected[origin]:
		ready = append(ready, m.Payload)
		g.expected[origin]++
		// Release any consecutively buffered successors.
		for {
			q := g.hold[origin]
			p, ok := q[g.expected[origin]]
			if !ok {
				break
			}
			delete(q, g.expected[origin])
			ready = append(ready, p)
			g.expected[origin]++
		}
	case m.Seq > g.expected[origin]:
		if g.hold[origin] == nil {
			g.hold[origin] = make(map[uint64][]byte)
		}
		g.hold[origin][m.Seq] = m.Payload
	default:
		// Stale duplicate below the expected sequence: drop.
	}
	g.mu.Unlock()

	for _, p := range ready {
		g.deliver(origin, p)
	}
}
