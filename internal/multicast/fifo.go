package multicast

import "sync"

// FIFO layers publisher-side ordering on top of Reliable: two obvents
// published through the same publisher are delivered to every member in
// publication order (paper §3.1.2, FIFO ordered obvents). Messages from
// different publishers are not ordered relative to each other.
//
// The class is interest-aware: BroadcastSplit ships data frames only to
// the destinations the publisher's routing plane marks interested, and
// every frame carries the per-destination sequence range it covers
// (SkipFrom..Seq), so a destination that was pruned for a while
// consumes the gap from the next frame it does receive. Destinations
// pruned with no follow-up data get lightweight skip markers on a
// periodic flush, keeping per-origin sequences gap-free everywhere
// without payload transfer.
type FIFO struct {
	inner   *Reliable
	deliver Deliver
	lc      *lifecycle

	mu       sync.Mutex
	nextSeq  uint64                          // local publication counter
	tracker  *skipTracker                    // per-destination covered sequences
	observer PruneObserver                   // optional pruning counters sink
	expected map[string]uint64               // origin -> next seq to deliver
	hold     map[string]map[uint64]heldFrame // origin -> top seq -> frame
}

// heldFrame is a buffered out-of-order frame: the sequence range it
// covers ends at its hold key; skip marks a payload-less marker.
type heldFrame struct {
	from    uint64
	skip    bool
	payload []byte
}

var _ Group = (*FIFO)(nil)

// NewFIFO creates a FIFO-ordered group on the given stream.
func NewFIFO(mux *Mux, stream string, deliver Deliver, opts Options) *FIFO {
	opts = opts.withDefaults()
	g := &FIFO{
		deliver:  deliver,
		lc:       newLifecycle(),
		tracker:  newSkipTracker(),
		expected: make(map[string]uint64),
		hold:     make(map[string]map[uint64]heldFrame),
	}
	g.inner = NewReliable(mux, stream, g.onInner, opts)
	g.lc.goTick(opts.RetransmitInterval, g.flush)
	return g
}

// SetMembers implements Group.
func (g *FIFO) SetMembers(members []string) {
	g.inner.SetMembers(members)
	g.mu.Lock()
	g.tracker.retain(members)
	g.mu.Unlock()
}

// SetPruneObserver installs the pruning-counters sink.
func (g *FIFO) SetPruneObserver(obs PruneObserver) {
	g.mu.Lock()
	g.observer = obs
	g.mu.Unlock()
}

// Broadcast implements Group: an unpruned publication to the whole
// membership (including self).
func (g *FIFO) Broadcast(payload []byte) error {
	return g.BroadcastSplit([]Send{{Dests: append(g.inner.members.others(g.inner.self), g.inner.self), Payload: payload}})
}

// BroadcastSplit publishes one event under a single FIFO sequence
// number, shipping each Send's payload variant to its destinations
// only. Destinations of no Send receive nothing now; their sequence
// hole is healed by the range carried on the next data frame they do
// receive, or by a skip marker at the next flush tick.
func (g *FIFO) BroadcastSplit(sends []Send) error {
	type frame struct {
		dests []string
		wire  []byte
	}
	var frames []frame
	sent := 0
	g.mu.Lock()
	g.nextSeq++
	seq := g.nextSeq
	g.tracker.mark(seq)
	for _, s := range sends {
		sent += len(s.Dests)
		for from, dests := range g.tracker.advance(s.Dests, seq) {
			wire, err := encodeMessage(&message{Kind: kindData, Seq: seq, SkipFrom: from, Payload: s.Payload})
			if err != nil {
				g.mu.Unlock()
				return err
			}
			frames = append(frames, frame{dests: dests, wire: wire})
		}
	}
	pruned := len(g.inner.members.snapshot()) - sent
	obs := g.observer
	g.mu.Unlock()
	if obs != nil && pruned > 0 {
		obs(uint64(pruned), 0)
	}
	for _, f := range frames {
		if err := g.inner.BroadcastTo(f.dests, f.wire); err != nil {
			return err
		}
	}
	return nil
}

// flush ships skip markers to every destination trailing the head —
// including the local node, whose holder consumes the marker through
// the ordinary local delivery path. Marker frames ride the reliable
// inner layer, so loss and reordering are already handled.
func (g *FIFO) flush() {
	type frame struct {
		dests []string
		wire  []byte
	}
	var frames []frame
	var skips uint64
	g.mu.Lock()
	head := g.tracker.head
	for from, dests := range g.tracker.lagging(g.inner.members.snapshot()) {
		wire, err := encodeMessage(&message{Kind: kindSkip, Seq: head, SkipFrom: from})
		if err != nil {
			continue
		}
		frames = append(frames, frame{dests: dests, wire: wire})
		skips += uint64(len(dests))
	}
	obs := g.observer
	g.mu.Unlock()
	if obs != nil && skips > 0 {
		obs(0, skips)
	}
	for _, f := range frames {
		_ = g.inner.BroadcastTo(f.dests, f.wire)
	}
}

// Close implements Group.
func (g *FIFO) Close() error {
	g.lc.close()
	return g.inner.Close()
}

// onInner receives reliably-delivered frames and releases them in
// per-origin sequence order. A frame is consumable once the range it
// covers reaches the expected sequence; everything in the range below
// its top was deliberately skipped for this node and is simply stepped
// over.
func (g *FIFO) onInner(origin string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil || (m.Kind != kindData && m.Kind != kindSkip) {
		return
	}
	from := coveredFrom(m.SkipFrom, m.Seq)
	f := heldFrame{from: from, skip: m.Kind == kindSkip, payload: m.Payload}

	var ready [][]byte
	g.mu.Lock()
	if _, ok := g.expected[origin]; !ok {
		g.expected[origin] = 1
	}
	switch exp := g.expected[origin]; {
	case m.Seq < exp:
		// Entirely below the expected sequence: already covered.
	case from <= exp:
		if !f.skip {
			ready = append(ready, f.payload)
		}
		g.expected[origin] = m.Seq + 1
		ready = g.drainLocked(origin, ready)
	default:
		if g.hold[origin] == nil {
			g.hold[origin] = make(map[uint64]heldFrame)
		}
		g.hold[origin][m.Seq] = f
	}
	g.mu.Unlock()

	for _, p := range ready {
		g.deliver(origin, p)
	}
}

// drainLocked releases buffered frames whose covered range now reaches
// the expected sequence. Per destination the publisher emits disjoint
// contiguous ranges, so at most one held frame is consumable at a time
// and delivery order is deterministic; the scan repeats until a
// fixpoint. Caller holds g.mu.
func (g *FIFO) drainLocked(origin string, ready [][]byte) [][]byte {
	q := g.hold[origin]
	for {
		progress := false
		for top, f := range q {
			exp := g.expected[origin]
			switch {
			case top < exp:
				delete(q, top)
				progress = true
			case f.from <= exp:
				delete(q, top)
				if !f.skip {
					ready = append(ready, f.payload)
				}
				g.expected[origin] = top + 1
				progress = true
			}
		}
		if !progress {
			return ready
		}
	}
}
