package multicast

import (
	"sync"
	"time"
)

// Options tune the timing and fault-tolerance parameters shared by the
// protocols. Zero values select the defaults below.
type Options struct {
	// RetransmitInterval is the period between retransmissions of
	// unacknowledged messages (Reliable, Certified, Total).
	RetransmitInterval time.Duration
	// RetransmitLimit bounds retransmission attempts per message for
	// the Reliable protocol; 0 means retry forever.
	RetransmitLimit int
	// GossipPeriod is the interval between gossip rounds.
	GossipPeriod time.Duration
	// GossipFanout is the number of peers gossiped to per round.
	GossipFanout int
	// GossipRounds is the rounds-to-live of a gossiped event.
	GossipRounds int
	// Seed seeds the gossip peer-selection randomness (0 = fixed
	// default, keeping runs reproducible).
	Seed int64
}

// Default protocol timing parameters.
const (
	DefaultRetransmitInterval = 20 * time.Millisecond
	DefaultGossipPeriod       = 10 * time.Millisecond
	DefaultGossipFanout       = 3
	DefaultGossipRounds       = 5
)

// withDefaults fills zero fields with defaults.
func (o Options) withDefaults() Options {
	if o.RetransmitInterval == 0 {
		o.RetransmitInterval = DefaultRetransmitInterval
	}
	if o.GossipPeriod == 0 {
		o.GossipPeriod = DefaultGossipPeriod
	}
	if o.GossipFanout == 0 {
		o.GossipFanout = DefaultGossipFanout
	}
	if o.GossipRounds == 0 {
		o.GossipRounds = DefaultGossipRounds
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// membership is the shared mutable member list of a group.
type membership struct {
	mu      sync.RWMutex
	members []string
}

// set replaces the membership.
func (m *membership) set(members []string) {
	cp := make([]string, len(members))
	copy(cp, members)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.members = cp
}

// snapshot returns the current member list (shared slice; callers must
// not mutate).
func (m *membership) snapshot() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.members
}

// others returns the members excluding self.
func (m *membership) others(self string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.members))
	for _, addr := range m.members {
		if addr != self {
			out = append(out, addr)
		}
	}
	return out
}

// queuedMsg is one pending delivery.
type queuedMsg struct {
	origin  string
	payload []byte
}

// deliveryQueue serializes a group's deliveries on a single goroutine.
// This guarantees per-group delivery order regardless of which transport
// goroutine received the message, and prevents re-entrancy deadlocks when
// a handler publishes from inside a delivery (paper §5.3 explicitly
// allows obvents publishing obvents).
type deliveryQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queuedMsg
	closed bool
	wg     sync.WaitGroup
}

// newDeliveryQueue starts the drain goroutine invoking deliver for each
// queued message in order.
func newDeliveryQueue(deliver Deliver) *deliveryQueue {
	q := &deliveryQueue{}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		for {
			q.mu.Lock()
			for len(q.items) == 0 && !q.closed {
				q.cond.Wait()
			}
			if len(q.items) == 0 && q.closed {
				q.mu.Unlock()
				return
			}
			item := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			deliver(item.origin, item.payload)
		}
	}()
	return q
}

// push enqueues a delivery; it never blocks. Pushes after close are
// dropped.
func (q *deliveryQueue) push(origin string, payload []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, queuedMsg{origin: origin, payload: payload})
	q.cond.Signal()
}

// close drains remaining items and stops the goroutine.
func (q *deliveryQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Signal()
	q.mu.Unlock()
	q.wg.Wait()
}

// lifecycle manages the background-goroutine shutdown of a protocol.
type lifecycle struct {
	once sync.Once
	done chan struct{}
	wg   sync.WaitGroup
}

func newLifecycle() *lifecycle {
	return &lifecycle{done: make(chan struct{})}
}

// goTick runs fn every interval until close.
func (l *lifecycle) goTick(interval time.Duration, fn func()) {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-l.done:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// close stops the background goroutines and waits for them.
func (l *lifecycle) close() {
	l.once.Do(func() { close(l.done) })
	l.wg.Wait()
}

// closed reports whether close has been requested.
func (l *lifecycle) closed() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}
