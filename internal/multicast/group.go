package multicast

import (
	"log/slog"
	"sync"
	"time"
)

// Options tune the timing and fault-tolerance parameters shared by the
// protocols. Zero values select the defaults below.
type Options struct {
	// RetransmitInterval is the period between retransmissions of
	// unacknowledged messages (Reliable, Certified, Total).
	RetransmitInterval time.Duration
	// RetransmitLimit bounds retransmission attempts per message for
	// the Reliable protocol; 0 means retry forever.
	RetransmitLimit int
	// GossipPeriod is the interval between gossip rounds.
	GossipPeriod time.Duration
	// GossipFanout is the number of peers gossiped to per round.
	GossipFanout int
	// GossipRounds is the rounds-to-live of a gossiped event.
	GossipRounds int
	// GossipRandomEdges is the floor of uniformly random peers each
	// interest-biased gossip round contacts per event in addition to the
	// interested fanout — the anti-entropy edges that keep rumors
	// crossing interest boundaries (and reaching nodes whose interest
	// the local routing view has not learned yet). It only applies when
	// an interest function is installed (SetInterest); plain gossip
	// rounds are already uniformly random. Negative disables the floor;
	// 0 selects the default.
	GossipRandomEdges int
	// Seed seeds the gossip peer-selection randomness (0 = fixed
	// default, keeping runs reproducible).
	Seed int64
	// Logger receives protocol diagnostics that have no error-return
	// path (undecodable frames, failed redeliveries). Nil means discard.
	Logger *slog.Logger
}

// Default protocol timing parameters.
const (
	DefaultRetransmitInterval = 20 * time.Millisecond
	DefaultGossipPeriod       = 10 * time.Millisecond
	DefaultGossipFanout       = 3
	DefaultGossipRounds       = 5
	DefaultGossipRandomEdges  = 1
)

// withDefaults fills zero fields with defaults.
func (o Options) withDefaults() Options {
	if o.RetransmitInterval == 0 {
		o.RetransmitInterval = DefaultRetransmitInterval
	}
	if o.GossipPeriod == 0 {
		o.GossipPeriod = DefaultGossipPeriod
	}
	if o.GossipFanout == 0 {
		o.GossipFanout = DefaultGossipFanout
	}
	if o.GossipRounds == 0 {
		o.GossipRounds = DefaultGossipRounds
	}
	if o.GossipRandomEdges == 0 {
		o.GossipRandomEdges = DefaultGossipRandomEdges
	} else if o.GossipRandomEdges < 0 {
		o.GossipRandomEdges = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// A Send is one slice of an interest-pruned publication: the payload
// variant owed to a set of destinations. A publication splits into
// several Sends when destinations need different encodings of the same
// event (e.g. a compact payload for wire-capable peers and a gob
// transcode for a legacy one); all Sends of one BroadcastSplit call
// share a single publication sequence number.
type Send struct {
	Dests   []string
	Payload []byte
}

// PruneObserver receives the interest-pruning counters of a group:
// prunedSends counts per-destination data frames not sent because the
// destination had no matching subscriber, skipFrames the
// per-destination skip-marker frames shipped instead (amortized over
// flush ticks, so typically far fewer). Implementations must be safe
// for concurrent use and must not call back into the group.
type PruneObserver func(prunedSends, skipFrames uint64)

// skipTracker is the publisher-side bookkeeping of the skip-marker
// protocol shared by the ordered classes: per destination, the highest
// publication sequence already covered by something handed to the
// reliable layer (a data frame or a skip marker), plus the head — the
// latest sequence published at all. Any destination whose covered
// sequence trails the head is owed a skip marker at the next flush.
// Callers hold their group's mutex.
type skipTracker struct {
	head uint64
	last map[string]uint64
}

func newSkipTracker() *skipTracker {
	return &skipTracker{last: make(map[string]uint64)}
}

// advance records a data send of seq to dests and returns them grouped
// by the SkipFrom their frame must carry (one past each destination's
// covered sequence, so the frame also heals any pruning gap behind it).
func (t *skipTracker) advance(dests []string, seq uint64) map[uint64][]string {
	if seq > t.head {
		t.head = seq
	}
	groups := make(map[uint64][]string, 1)
	for _, d := range dests {
		from := t.last[d] + 1
		groups[from] = append(groups[from], d)
		t.last[d] = seq
	}
	return groups
}

// mark advances the head without sending (a publication pruned for
// every destination still advances the sequence space).
func (t *skipTracker) mark(seq uint64) {
	if seq > t.head {
		t.head = seq
	}
}

// lagging returns the members whose covered sequence trails the head,
// grouped by the SkipFrom their skip marker must carry, recording them
// as covered through the head (the marker rides the reliable layer, so
// handing it over is enough).
func (t *skipTracker) lagging(members []string) map[uint64][]string {
	if t.head == 0 {
		return nil
	}
	var groups map[uint64][]string
	for _, d := range members {
		if t.last[d] >= t.head {
			continue
		}
		if groups == nil {
			groups = make(map[uint64][]string)
		}
		from := t.last[d] + 1
		groups[from] = append(groups[from], d)
		t.last[d] = t.head
	}
	return groups
}

// retain drops tracking state for departed members.
func (t *skipTracker) retain(members []string) {
	keep := make(map[string]bool, len(members))
	for _, m := range members {
		keep[m] = true
	}
	for d := range t.last {
		if !keep[d] {
			delete(t.last, d)
		}
	}
}

// coveredFrom normalizes a frame's skip range start against its top
// sequence: zero (a pre-pruning sender) or a start beyond the top
// (corrupt) collapses the range to the top alone.
func coveredFrom(skipFrom, top uint64) uint64 {
	if skipFrom == 0 || skipFrom > top {
		return top
	}
	return skipFrom
}

// membership is the shared mutable member list of a group.
type membership struct {
	mu      sync.RWMutex
	members []string
}

// set replaces the membership.
func (m *membership) set(members []string) {
	cp := make([]string, len(members))
	copy(cp, members)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.members = cp
}

// snapshot returns the current member list (shared slice; callers must
// not mutate).
func (m *membership) snapshot() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.members
}

// others returns the members excluding self.
func (m *membership) others(self string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.members))
	for _, addr := range m.members {
		if addr != self {
			out = append(out, addr)
		}
	}
	return out
}

// queuedMsg is one pending delivery.
type queuedMsg struct {
	origin  string
	payload []byte
}

// deliveryQueue serializes a group's deliveries on a single goroutine.
// This guarantees per-group delivery order regardless of which transport
// goroutine received the message, and prevents re-entrancy deadlocks when
// a handler publishes from inside a delivery (paper §5.3 explicitly
// allows obvents publishing obvents).
type deliveryQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queuedMsg
	closed bool
	paused bool
	wg     sync.WaitGroup
}

// newDeliveryQueue starts the drain goroutine invoking deliver for each
// queued message in order.
func newDeliveryQueue(deliver Deliver) *deliveryQueue {
	q := &deliveryQueue{}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		for {
			q.mu.Lock()
			for !q.closed && (q.paused || len(q.items) == 0) {
				q.cond.Wait()
			}
			if len(q.items) == 0 && q.closed {
				q.mu.Unlock()
				return
			}
			item := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			deliver(item.origin, item.payload)
		}
	}()
	return q
}

// push enqueues a delivery; it never blocks. Pushes after close are
// dropped.
func (q *deliveryQueue) push(origin string, payload []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, queuedMsg{origin: origin, payload: payload})
	q.cond.Signal()
}

// pause parks the drain goroutine after its current delivery; pushes
// keep accumulating in order. Used to hold live deliveries back while a
// durable subscription replays its backlog.
func (q *deliveryQueue) pause() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.paused = true
}

// resume releases a pause; the accumulated backlog drains in order.
func (q *deliveryQueue) resume() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.paused = false
	q.cond.Signal()
}

// close drains remaining items and stops the goroutine. Close overrides
// a pause so shutdown never hangs.
func (q *deliveryQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Signal()
	q.mu.Unlock()
	q.wg.Wait()
}

// lifecycle manages the background-goroutine shutdown of a protocol.
type lifecycle struct {
	once sync.Once
	done chan struct{}
	wg   sync.WaitGroup
}

func newLifecycle() *lifecycle {
	return &lifecycle{done: make(chan struct{})}
}

// goTick runs fn every interval until close.
func (l *lifecycle) goTick(interval time.Duration, fn func()) {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-l.done:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// close stops the background goroutines and waits for them.
func (l *lifecycle) close() {
	l.once.Do(func() { close(l.done) })
	l.wg.Wait()
}

// closed reports whether close has been requested.
func (l *lifecycle) closed() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}
