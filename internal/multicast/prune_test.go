package multicast

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/netsim"
)

func TestSkipTrackerRanges(t *testing.T) {
	tr := newSkipTracker()
	// seq 1 to b only.
	g := tr.advance([]string{"b"}, 1)
	if len(g) != 1 || len(g[1]) != 1 || g[1][0] != "b" {
		t.Fatalf("advance(1) = %v", g)
	}
	// seq 2 to b and c: b continues at 2, c heals 1..2.
	g = tr.advance([]string{"b", "c"}, 2)
	if len(g[2]) != 1 || g[2][0] != "b" || len(g[1]) != 1 || g[1][0] != "c" {
		t.Fatalf("advance(2) = %v", g)
	}
	// seq 3 pruned for everyone.
	tr.mark(3)
	lag := tr.lagging([]string{"b", "c", "d"})
	// b and c trail from 3, the never-seen d from 1.
	if len(lag[3]) != 2 || len(lag[1]) != 1 || lag[1][0] != "d" {
		t.Fatalf("lagging = %v", lag)
	}
	if lag2 := tr.lagging([]string{"b", "c", "d"}); lag2 != nil {
		t.Fatalf("second lagging = %v, want nil (already covered)", lag2)
	}
	tr.retain([]string{"b"})
	if _, ok := tr.last["c"]; ok {
		t.Fatal("retain kept departed member")
	}
}

func TestCoveredFrom(t *testing.T) {
	for _, tc := range []struct{ from, top, want uint64 }{
		{0, 7, 7}, // pre-pruning sender: top only
		{9, 7, 7}, // corrupt range: top only
		{3, 7, 3}, // real range
		{7, 7, 7}, // single
	} {
		if got := coveredFrom(tc.from, tc.top); got != tc.want {
			t.Errorf("coveredFrom(%d,%d) = %d, want %d", tc.from, tc.top, got, tc.want)
		}
	}
}

// TestFIFOSplitPrunesAndHeals pins the skip protocol on FIFO: data
// frames go only to the Send destinations, and the range carried on the
// next frame a destination does receive heals its sequence hole without
// waiting for a flush.
func TestFIFOSplitPrunesAndHeals(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	c := newTestNode(t, net, "c")
	ga := NewFIFO(a.mux, "cls", a.record, fastOpts())
	gb := NewFIFO(b.mux, "cls", b.record, fastOpts())
	gc := NewFIFO(c.mux, "cls", c.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	defer gc.Close()
	all := []string{"a", "b", "c"}
	ga.SetMembers(all)
	gb.SetMembers(all)
	gc.SetMembers(all)

	var pruned, skips atomic.Uint64
	ga.SetPruneObserver(func(p, s uint64) { pruned.Add(p); skips.Add(s) })

	// seq 1,2 to b only; seq 3 to both.
	_ = ga.BroadcastSplit([]Send{{Dests: []string{"b"}, Payload: []byte("m1")}})
	_ = ga.BroadcastSplit([]Send{{Dests: []string{"b"}, Payload: []byte("m2")}})
	_ = ga.BroadcastSplit([]Send{{Dests: []string{"b", "c"}, Payload: []byte("m3")}})

	waitFor(t, 5*time.Second, "b gets all three", func() bool { return b.count() == 3 })
	waitFor(t, 5*time.Second, "c gets m3 over the healed gap", func() bool { return c.count() == 1 })
	if got := b.payloads(); got[0] != "m1" || got[1] != "m2" || got[2] != "m3" {
		t.Fatalf("b order = %v", got)
	}
	if got := c.payloads(); got[0] != "m3" {
		t.Fatalf("c = %v, want [m3]", got)
	}
	// a pruned itself on every publication and c on the first two.
	if pruned.Load() < 5 {
		t.Errorf("pruned = %d, want >= 5", pruned.Load())
	}
}

// TestFIFOFlushAdvancesIdleDestination pins the flush path: a
// destination that stops being interested receives amortized skip
// markers, so its holder's expected sequence keeps up without data.
func TestFIFOFlushAdvancesIdleDestination(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	c := newTestNode(t, net, "c")
	ga := NewFIFO(a.mux, "cls", a.record, fastOpts())
	gc := NewFIFO(c.mux, "cls", c.record, fastOpts())
	defer ga.Close()
	defer gc.Close()
	ga.SetMembers([]string{"a", "c"})
	gc.SetMembers([]string{"a", "c"})

	var skips atomic.Uint64
	ga.SetPruneObserver(func(_, s uint64) { skips.Add(s) })

	for i := 0; i < 5; i++ {
		_ = ga.BroadcastSplit([]Send{{Dests: nil, Payload: []byte("x")}})
	}
	waitFor(t, 5*time.Second, "c's expected advanced by skips", func() bool {
		gc.mu.Lock()
		defer gc.mu.Unlock()
		return gc.expected["a"] == 6
	})
	if c.count() != 0 {
		t.Fatalf("c delivered %d pruned events", c.count())
	}
	if skips.Load() == 0 {
		t.Error("no skip frames counted")
	}
	// a's own holder advanced too (flush includes self).
	waitFor(t, 5*time.Second, "a's own expected advanced", func() bool {
		ga.mu.Lock()
		defer ga.mu.Unlock()
		return ga.expected["a"] == 6
	})
}

// TestCausalSkipFlushCrossOriginLiveness pins the liveness role of the
// causal flush: a publishes e1 only to b; b's causally dependent e2
// reaches c, which must hold it until a's skip marker carries the clock
// advance — without the flush c would wait forever for data it was
// deliberately not sent.
func TestCausalSkipFlushCrossOriginLiveness(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	c := newTestNode(t, net, "c")
	ga := NewCausal(a.mux, "cls", a.record, fastOpts())
	gb := NewCausal(b.mux, "cls", b.record, fastOpts())
	gc := NewCausal(c.mux, "cls", c.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	defer gc.Close()
	all := []string{"a", "b", "c"}
	ga.SetMembers(all)
	gb.SetMembers(all)
	gc.SetMembers(all)

	// e1 from a, pruned for everyone but b.
	_ = ga.BroadcastSplit([]Send{{Dests: []string{"b"}, Payload: []byte("e1")}})
	waitFor(t, 5*time.Second, "b delivers e1", func() bool { return b.count() == 1 })
	// e2 from b causally follows e1 and goes to everyone.
	_ = gb.Broadcast([]byte("e2"))

	waitFor(t, 5*time.Second, "c delivers e2 after a's flush", func() bool { return c.count() == 1 })
	if got := c.payloads(); got[0] != "e2" {
		t.Fatalf("c = %v, want [e2]", got)
	}
	// b delivered e1 then e2, in causal order.
	waitFor(t, 5*time.Second, "b delivers e2", func() bool { return b.count() == 2 })
	if got := b.payloads(); got[0] != "e1" || got[1] != "e2" {
		t.Fatalf("b order = %v, want [e1 e2]", got)
	}
}

// TestTotalPlannerFiltersAfterStamping pins the sequencer rule: the
// global sequence is stamped before interest filtering, so every member
// observes a gap-free sequence and any two members deliver their common
// events in the same relative order. An uninterested origin receives an
// immediate stamped skip carrying its request ID, stopping its
// retransmission loop.
func TestTotalPlannerFiltersAfterStamping(t *testing.T) {
	net := netsim.New(netsim.Config{MaxLatency: 2 * time.Millisecond, Seed: 7})
	defer net.Close()
	seq := newTestNode(t, net, "seq")
	b := newTestNode(t, net, "b")
	c := newTestNode(t, net, "c")
	gs := NewTotal(seq.mux, "cls", "seq", seq.record, fastOpts())
	gb := NewTotal(b.mux, "cls", "seq", b.record, fastOpts())
	gc := NewTotal(c.mux, "cls", "seq", c.record, fastOpts())
	defer gs.Close()
	defer gb.Close()
	defer gc.Close()
	all := []string{"seq", "b", "c"}
	gs.SetMembers(all)
	gb.SetMembers(all)
	gc.SetMembers(all)

	// Payload prefix names the interested members.
	gs.SetPlanner(func(payload []byte) ([]Send, bool) {
		parts := strings.SplitN(string(payload), ":", 2)
		if parts[0] == "all" {
			return []Send{{Dests: []string{"seq", "b", "c"}, Payload: payload}}, true
		}
		return []Send{{Dests: strings.Split(parts[0], "+"), Payload: payload}}, true
	})

	const per = 8
	var wg sync.WaitGroup
	for name, g := range map[string]*Total{"b": gb, "c": gc} {
		wg.Add(1)
		go func(name string, g *Total) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Each origin alternates: own-only (origin interested),
				// other-only (origin NOT interested), all.
				other := "c"
				if name == "c" {
					other = "b"
				}
				_ = g.Broadcast([]byte(fmt.Sprintf("%s:%s%d", name, name, i)))
				_ = g.Broadcast([]byte(fmt.Sprintf("%s:%s-x%d", other, name, i)))
				_ = g.Broadcast([]byte(fmt.Sprintf("all:%s-a%d", name, i)))
			}
		}(name, g)
	}
	wg.Wait()

	// b delivers its own-only + the other's other-only + all the alls.
	wantB := per + per + 2*per
	wantC := per + per + 2*per
	wantSeq := 2 * per
	waitFor(t, 15*time.Second, "pruned total delivery", func() bool {
		return b.count() == wantB && c.count() == wantC && seq.count() == wantSeq
	})

	// Pending requests all drained — including those whose origin was
	// not interested (the stamped skip carries the request ID).
	waitFor(t, 5*time.Second, "pending drained", func() bool {
		gb.mu.Lock()
		pb := len(gb.pending)
		gb.mu.Unlock()
		gc.mu.Lock()
		pc := len(gc.pending)
		gc.mu.Unlock()
		return pb == 0 && pc == 0
	})

	// Any two members deliver their common events in the same relative
	// order (a single gap-free global sequence).
	pair := func(x, y []string) {
		t.Helper()
		set := make(map[string]bool, len(y))
		for _, p := range y {
			set[p] = true
		}
		var common []string
		for _, p := range x {
			if set[p] {
				common = append(common, p)
			}
		}
		j := 0
		for _, p := range y {
			if j < len(common) && p == common[j] {
				j++
			}
		}
		if j != len(common) {
			t.Fatalf("common events ordered differently:\n%v\nvs\n%v", x, y)
		}
	}
	pair(b.payloads(), c.payloads())
	pair(b.payloads(), seq.payloads())
	pair(c.payloads(), seq.payloads())
}

// TestTotalPlannerFailOpen pins the fail-open rule: a planner that
// cannot evaluate a payload reports ok=false and the publication is
// broadcast to the whole group.
func TestTotalPlannerFailOpen(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	seq := newTestNode(t, net, "seq")
	b := newTestNode(t, net, "b")
	gs := NewTotal(seq.mux, "cls", "seq", seq.record, fastOpts())
	gb := NewTotal(b.mux, "cls", "seq", b.record, fastOpts())
	defer gs.Close()
	defer gb.Close()
	gs.SetMembers([]string{"seq", "b"})
	gb.SetMembers([]string{"seq", "b"})
	gs.SetPlanner(func(payload []byte) ([]Send, bool) { return nil, false })

	_ = gs.Broadcast([]byte("opaque"))
	waitFor(t, 5*time.Second, "fail-open delivery everywhere", func() bool {
		return seq.count() == 1 && b.count() == 1
	})
}

// TestGossipInterestBias pins interest-biased fanout: rumors reach
// every interested member, and the pruning counters record rounds that
// contacted fewer peers than the plain fanout would have.
func TestGossipInterestBias(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	const n = 12
	interested := map[string]bool{"n00": true, "n01": true, "n02": true, "n03": true}
	var nodes []*testNode
	for i := 0; i < n; i++ {
		nodes = append(nodes, newTestNode(t, net, fmt.Sprintf("n%02d", i)))
	}
	// Fanout well above the interested-set size, so biased rounds
	// contact measurably fewer peers than plain fanout would.
	opts := fastOpts()
	opts.GossipFanout = 8
	opts.GossipRounds = 6
	var groups []*Gossip
	var pruned atomic.Uint64
	for i, node := range nodes {
		node := node
		o := opts
		o.Seed = int64(i + 1)
		g := NewGossip(node.mux, "cls", node.record, o)
		g.SetInterest(func(payload []byte) ([]string, bool) {
			return []string{"n00", "n01", "n02", "n03"}, true
		})
		g.SetPruneObserver(func(p, _ uint64) { pruned.Add(p) })
		groups = append(groups, g)
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	_ = groups[0].Broadcast([]byte("rumor"))
	waitFor(t, 10*time.Second, "all interested members infected", func() bool {
		for i, node := range nodes {
			if interested[fmt.Sprintf("n%02d", i)] && node.count() == 0 {
				return false
			}
		}
		return true
	})
	if pruned.Load() == 0 {
		t.Error("no pruned gossip sends counted despite sparse interest")
	}
}

// TestGossipRandomEdgesCrossInterestBoundary pins the anti-entropy
// floor: even when the interest function names nobody, the random edges
// keep the rumor moving, so uninterested members still learn it
// (gossip's eventual-delivery contract is probabilistic, never
// partitioned by interest).
func TestGossipRandomEdgesCrossInterestBoundary(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	const n = 8
	var nodes []*testNode
	for i := 0; i < n; i++ {
		nodes = append(nodes, newTestNode(t, net, fmt.Sprintf("n%02d", i)))
	}
	opts := fastOpts()
	opts.GossipFanout = 3
	opts.GossipRounds = 10
	opts.GossipRandomEdges = 2
	var groups []*Gossip
	for i, node := range nodes {
		node := node
		o := opts
		o.Seed = int64(i + 1)
		g := NewGossip(node.mux, "cls", node.record, o)
		g.SetInterest(func(payload []byte) ([]string, bool) { return nil, true })
		groups = append(groups, g)
	}
	for _, g := range groups {
		g.SetMembers(addrs(nodes))
	}
	defer func() {
		for _, g := range groups {
			_ = g.Close()
		}
	}()

	_ = groups[0].Broadcast([]byte("rumor"))
	waitFor(t, 10*time.Second, "random edges saturate the group", func() bool {
		reached := 0
		for _, node := range nodes {
			if node.count() > 0 {
				reached++
			}
		}
		return reached >= n*3/4
	})
}

// TestFIFOPrunedInteropWithUnprunedFrames pins wire compatibility: a
// holder must consume both range-carrying frames and pre-pruning frames
// (SkipFrom zero) from the same origin.
func TestFIFOPrunedInteropWithUnprunedFrames(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	ga := NewFIFO(a.mux, "cls", a.record, fastOpts())
	gb := NewFIFO(b.mux, "cls", b.record, fastOpts())
	defer ga.Close()
	defer gb.Close()
	ga.SetMembers([]string{"a", "b"})
	gb.SetMembers([]string{"a", "b"})

	// Plain broadcasts produce full-membership sends whose frames carry
	// from == last+1 ranges; interleave with explicit splits.
	_ = ga.Broadcast([]byte("m1"))
	_ = ga.BroadcastSplit([]Send{{Dests: []string{"b"}, Payload: []byte("m2")}})
	_ = ga.Broadcast([]byte("m3"))
	waitFor(t, 5*time.Second, "b gets all", func() bool { return b.count() == 3 })
	if got := b.payloads(); got[0] != "m1" || got[1] != "m2" || got[2] != "m3" {
		t.Fatalf("b order = %v", got)
	}
	// a skipped m2 for itself (not in the Send), so it delivers m1,m3.
	waitFor(t, 5*time.Second, "a gets its two", func() bool { return a.count() == 2 })
	if got := a.payloads(); got[0] != "m1" || got[1] != "m3" {
		t.Fatalf("a order = %v", got)
	}
}
