package multicast

import (
	"sync"

	"govents/internal/vclock"
)

// Causal layers vector-clock causal ordering (CBCAST-style) on top of
// Reliable: obvents are delivered in an order consistent with the
// happens-before relationship of their publications (paper §3.1.2,
// [Lam78]). A message from origin j carrying clock V is deliverable at a
// node once V[j] equals the node's clock for j plus one and V[k] is not
// ahead of the node's clock for any other k; otherwise it is held back.
type Causal struct {
	inner   *Reliable
	self    string
	deliver Deliver

	mu    sync.Mutex
	clock vclock.VC
	hold  []heldMsg
}

// heldMsg is a message waiting for its causal predecessors.
type heldMsg struct {
	origin  string
	vc      vclock.VC
	payload []byte
}

var _ Group = (*Causal)(nil)

// NewCausal creates a causally ordered group on the given stream.
func NewCausal(mux *Mux, stream string, deliver Deliver, opts Options) *Causal {
	g := &Causal{
		self:    mux.Addr(),
		deliver: deliver,
		clock:   vclock.New(),
	}
	g.inner = NewReliable(mux, stream, g.onInner, opts)
	return g
}

// SetMembers implements Group.
func (g *Causal) SetMembers(members []string) { g.inner.SetMembers(members) }

// Broadcast implements Group.
func (g *Causal) Broadcast(payload []byte) error {
	g.mu.Lock()
	g.clock.Tick(g.self)
	vc := g.clock.Copy()
	g.mu.Unlock()
	wire, err := encodeMessage(&message{Kind: kindData, VC: vc, Payload: payload})
	if err != nil {
		return err
	}
	return g.inner.Broadcast(wire)
}

// Close implements Group.
func (g *Causal) Close() error { return g.inner.Close() }

// Held returns the number of messages waiting for causal predecessors
// (test and monitoring aid).
func (g *Causal) Held() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.hold)
}

// onInner runs on the inner group's single delivery goroutine.
func (g *Causal) onInner(origin string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil {
		return
	}

	if origin == g.self {
		// Own publications were ticked at Broadcast and are always
		// locally deliverable in publication order.
		g.deliver(origin, m.Payload)
		return
	}

	g.mu.Lock()
	g.hold = append(g.hold, heldMsg{origin: origin, vc: m.VC, payload: m.Payload})
	ready := g.releaseLocked()
	g.mu.Unlock()

	for _, h := range ready {
		g.deliver(h.origin, h.payload)
	}
}

// releaseLocked repeatedly scans the hold-back queue, releasing every
// message whose causal predecessors have been delivered, until a
// fixpoint is reached. Caller holds g.mu.
func (g *Causal) releaseLocked() []heldMsg {
	var ready []heldMsg
	for {
		progress := false
		for i := 0; i < len(g.hold); i++ {
			h := g.hold[i]
			if !g.deliverableLocked(h) {
				continue
			}
			// Deliver: advance the local clock to include it.
			g.clock.Merge(h.vc)
			ready = append(ready, h)
			g.hold = append(g.hold[:i], g.hold[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			return ready
		}
	}
}

// deliverableLocked applies the CBCAST condition.
func (g *Causal) deliverableLocked(h heldMsg) bool {
	for k, v := range h.vc {
		if k == h.origin {
			if v != g.clock.Get(k)+1 {
				return false
			}
			continue
		}
		if v > g.clock.Get(k) {
			return false
		}
	}
	return true
}
