package multicast

import (
	"sync"

	"govents/internal/vclock"
)

// Causal layers vector-clock causal ordering (CBCAST-style) on top of
// Reliable: obvents are delivered in an order consistent with the
// happens-before relationship of their publications (paper §3.1.2,
// [Lam78]). A message from origin j carrying clock V is deliverable at a
// node once V[j] equals the node's clock for j plus one and V[k] is not
// ahead of the node's clock for any other k; otherwise it is held back.
//
// The class is interest-aware: BroadcastSplit ships data frames only to
// interested destinations, and every frame carries the range of the
// origin's own ticks it covers (SkipFrom..V[j]), so a destination
// pruned for a while advances its clock for j over the skipped ticks
// from the next frame it does receive. Destinations with no follow-up
// data get periodic skip markers carrying the publisher's latest clock;
// consuming one merges that clock without an upcall. Skipping is sound
// because causal order only constrains the events a node actually
// delivers, and a skipped event's causal successors still wait for
// the clock advance the marker carries.
type Causal struct {
	inner   *Reliable
	self    string
	deliver Deliver
	lc      *lifecycle

	mu       sync.Mutex
	clock    vclock.VC
	lastVC   vclock.VC // clock of the latest publication (skip-marker body)
	tracker  *skipTracker
	observer PruneObserver
	hold     []heldMsg
}

// heldMsg is a message waiting for its causal predecessors. from is the
// first of the origin's ticks the frame covers; skip marks a
// payload-less marker.
type heldMsg struct {
	origin  string
	vc      vclock.VC
	from    uint64
	skip    bool
	payload []byte
}

var _ Group = (*Causal)(nil)

// NewCausal creates a causally ordered group on the given stream.
func NewCausal(mux *Mux, stream string, deliver Deliver, opts Options) *Causal {
	opts = opts.withDefaults()
	g := &Causal{
		self:    mux.Addr(),
		deliver: deliver,
		lc:      newLifecycle(),
		clock:   vclock.New(),
		tracker: newSkipTracker(),
	}
	g.inner = NewReliable(mux, stream, g.onInner, opts)
	g.lc.goTick(opts.RetransmitInterval, g.flush)
	return g
}

// SetMembers implements Group.
func (g *Causal) SetMembers(members []string) {
	g.inner.SetMembers(members)
	g.mu.Lock()
	g.tracker.retain(members)
	g.mu.Unlock()
}

// SetPruneObserver installs the pruning-counters sink.
func (g *Causal) SetPruneObserver(obs PruneObserver) {
	g.mu.Lock()
	g.observer = obs
	g.mu.Unlock()
}

// Broadcast implements Group: an unpruned publication to the whole
// membership (including self).
func (g *Causal) Broadcast(payload []byte) error {
	return g.BroadcastSplit([]Send{{Dests: append(g.inner.members.others(g.self), g.self), Payload: payload}})
}

// BroadcastSplit publishes one event under a single vector-clock tick,
// shipping each Send's payload variant to its destinations only.
func (g *Causal) BroadcastSplit(sends []Send) error {
	type frame struct {
		dests []string
		wire  []byte
	}
	var frames []frame
	sent := 0
	g.mu.Lock()
	g.clock.Tick(g.self)
	vc := g.clock.Copy()
	seq := vc.Get(g.self)
	g.lastVC = vc
	g.tracker.mark(seq)
	for _, s := range sends {
		sent += len(s.Dests)
		for from, dests := range g.tracker.advance(s.Dests, seq) {
			wire, err := encodeMessage(&message{Kind: kindData, VC: vc, SkipFrom: from, Payload: s.Payload})
			if err != nil {
				g.mu.Unlock()
				return err
			}
			frames = append(frames, frame{dests: dests, wire: wire})
		}
	}
	pruned := len(g.inner.members.snapshot()) - sent
	obs := g.observer
	g.mu.Unlock()
	if obs != nil && pruned > 0 {
		obs(uint64(pruned), 0)
	}
	for _, f := range frames {
		if err := g.inner.BroadcastTo(f.dests, f.wire); err != nil {
			return err
		}
	}
	return nil
}

// flush ships skip markers carrying the latest publication's clock to
// every destination trailing the head. The pending range of any lagging
// destination always ends at the latest publication, so one clock
// serves every marker. Without the flush a pruned tick could block a
// causal successor at another node forever (the successor's clock
// references a tick its holder never sees data for).
func (g *Causal) flush() {
	type frame struct {
		dests []string
		wire  []byte
	}
	var frames []frame
	var skips uint64
	g.mu.Lock()
	vc := g.lastVC
	for from, dests := range g.tracker.lagging(g.inner.members.snapshot()) {
		wire, err := encodeMessage(&message{Kind: kindSkip, VC: vc, SkipFrom: from})
		if err != nil {
			continue
		}
		frames = append(frames, frame{dests: dests, wire: wire})
		skips += uint64(len(dests))
	}
	obs := g.observer
	g.mu.Unlock()
	if obs != nil && skips > 0 {
		obs(0, skips)
	}
	for _, f := range frames {
		_ = g.inner.BroadcastTo(f.dests, f.wire)
	}
}

// Close implements Group.
func (g *Causal) Close() error {
	g.lc.close()
	return g.inner.Close()
}

// Held returns the number of messages waiting for causal predecessors
// (test and monitoring aid).
func (g *Causal) Held() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.hold)
}

// onInner runs on the inner group's single delivery goroutine.
func (g *Causal) onInner(origin string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil || (m.Kind != kindData && m.Kind != kindSkip) {
		return
	}

	if origin == g.self {
		// Own publications were ticked at Broadcast and are always
		// locally deliverable in publication order; own skip markers
		// carry a clock the local node already holds.
		if m.Kind == kindData {
			g.deliver(origin, m.Payload)
		}
		return
	}

	h := heldMsg{
		origin:  origin,
		vc:      m.VC,
		from:    coveredFrom(m.SkipFrom, m.VC.Get(origin)),
		skip:    m.Kind == kindSkip,
		payload: m.Payload,
	}
	g.mu.Lock()
	g.hold = append(g.hold, h)
	ready := g.releaseLocked()
	g.mu.Unlock()

	for _, r := range ready {
		g.deliver(r.origin, r.payload)
	}
}

// releaseLocked repeatedly scans the hold-back queue, releasing every
// message whose causal predecessors have been delivered (or covered by
// a consumed skip range) and dropping frames entirely below the local
// clock, until a fixpoint is reached. Consuming a skip marker merges
// its clock without producing a delivery. Caller holds g.mu.
func (g *Causal) releaseLocked() []heldMsg {
	var ready []heldMsg
	for {
		progress := false
		for i := 0; i < len(g.hold); i++ {
			h := g.hold[i]
			if h.vc.Get(h.origin) <= g.clock.Get(h.origin) {
				// Already covered (a stale or duplicate range): drop.
				g.hold = append(g.hold[:i], g.hold[i+1:]...)
				i--
				progress = true
				continue
			}
			if !g.deliverableLocked(h) {
				continue
			}
			// Deliver: advance the local clock to include it (for a
			// range frame this steps over every skipped tick at once).
			g.clock.Merge(h.vc)
			if !h.skip {
				ready = append(ready, h)
			}
			g.hold = append(g.hold[:i], g.hold[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			return ready
		}
	}
}

// deliverableLocked applies the CBCAST condition, range-aware: the
// frame is deliverable once the start of the origin-tick range it
// covers is next (everything between it and the frame's own tick was
// deliberately skipped for this node) and no other origin's entry is
// ahead of the local clock.
func (g *Causal) deliverableLocked(h heldMsg) bool {
	if h.from > g.clock.Get(h.origin)+1 {
		return false
	}
	for k, v := range h.vc {
		if k == h.origin {
			continue
		}
		if v > g.clock.Get(k) {
			return false
		}
	}
	return true
}
