package multicast

import (
	"encoding/binary"
	"fmt"

	"govents/internal/vclock"
)

// msgKind enumerates protocol message types.
type msgKind byte

const (
	kindData     msgKind = iota + 1 // broadcast payload
	kindAck                         // reliable-broadcast acknowledgement
	kindCertData                    // certified payload (per-consumer ack)
	kindCertAck                     // certified acknowledgement
	kindGossip                      // gossip event batch
	kindOrderReq                    // total-order sequencing request
	kindSkip                        // sequence-range skip marker (no payload)
)

// message is the wire record exchanged by all protocols in this package.
// Fields are used selectively per kind; unused fields stay zero and cost
// almost nothing on the wire.
//
// SkipFrom carries the interest-aware pruning protocol of the ordered
// classes: a frame covers the per-destination sequence range
// [SkipFrom, Seq] (or [SkipFrom, GSeq] for total order), of which every
// number below the last is a publication the sender deliberately did
// not ship to this destination (no matching subscriber there). A
// kindData frame's payload belongs to the top of the range; a kindSkip
// frame is all range and no payload. SkipFrom zero (or beyond the top)
// means "no skip information": the frame covers only its own sequence,
// which is exactly the pre-pruning wire behavior.
type message struct {
	Kind     msgKind
	Origin   string // original publisher address (or durable consumer ID in cert acks)
	Seq      uint64 // per-origin sequence number
	GSeq     uint64 // sequencer-assigned global sequence
	SkipFrom uint64 // first sequence covered by this frame (0 = Seq/GSeq only)
	Rounds   uint8  // gossip rounds-to-live
	ID       string // unique message ID
	VC       vclock.VC
	Payload  []byte
}

const maxWireString = 0xFFFF

// encodeMessage renders a message in a compact binary form.
func encodeMessage(m *message) ([]byte, error) {
	if len(m.Origin) > maxWireString || len(m.ID) > maxWireString {
		return nil, fmt.Errorf("multicast: string field too long")
	}
	if len(m.VC) > maxWireString {
		return nil, fmt.Errorf("multicast: vector clock too large")
	}
	size := 1 + 2 + len(m.Origin) + 8 + 8 + 8 + 1 + 2 + len(m.ID) + 2 + 4 + len(m.Payload)
	for k := range m.VC {
		size += 2 + len(k) + 8
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(m.Kind))
	buf = appendString(buf, m.Origin)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, m.GSeq)
	buf = binary.BigEndian.AppendUint64(buf, m.SkipFrom)
	buf = append(buf, m.Rounds)
	buf = appendString(buf, m.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.VC)))
	for k, v := range m.VC {
		if len(k) > maxWireString {
			return nil, fmt.Errorf("multicast: vector clock key too long")
		}
		buf = appendString(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf, nil
}

// decodeMessage parses a message from wire bytes.
func decodeMessage(data []byte) (*message, error) {
	d := &decoder{buf: data}
	m := &message{}
	m.Kind = msgKind(d.u8())
	m.Origin = d.str()
	m.Seq = d.u64()
	m.GSeq = d.u64()
	m.SkipFrom = d.u64()
	m.Rounds = d.u8()
	m.ID = d.str()
	nvc := int(d.u16())
	if nvc > 0 {
		m.VC = make(vclock.VC, nvc)
		for i := 0; i < nvc; i++ {
			k := d.str()
			v := d.u64()
			if d.err != nil {
				break
			}
			m.VC[k] = v
		}
	}
	m.Payload = d.blob()
	if d.err != nil {
		return nil, fmt.Errorf("multicast: decode message: %w", d.err)
	}
	return m, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over wire bytes with sticky error handling.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated at offset %d", d.off)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) blob() []byte {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return nil
	}
	n := int(binary.BigEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	if d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}
