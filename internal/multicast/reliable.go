package multicast

import (
	"fmt"
	"sync"

	"govents/internal/codec"
)

// Reliable is an acknowledgement-based, sender-driven reliable broadcast:
// the publisher retransmits a message to each member until that member
// acknowledges it (or the retransmit limit is reached). Receivers
// deduplicate by message ID. It realizes the paper's Reliable delivery
// semantics (§3.1.2): "once successfully published, a reliable obvent
// will be received by any notifiable that is up for long enough".
//
// The protocol tolerates message loss and duplication but not publisher
// crash (there is no relay phase); that stronger guarantee is the domain
// of the Certified protocol backed by stable storage.
type Reliable struct {
	mux    *Mux
	stream string
	self   string
	opts   Options

	queue   *deliveryQueue
	members membership
	lc      *lifecycle

	mu        sync.Mutex
	nextSeq   uint64
	outbox    map[string]*outEntry // message ID -> retransmission state
	delivered map[string]bool      // message IDs already delivered locally
}

// outEntry tracks one unacknowledged broadcast.
type outEntry struct {
	wire     []byte
	pending  map[string]bool // members that have not acked yet
	attempts int
}

var _ Group = (*Reliable)(nil)

// NewReliable creates a reliable group on the given stream.
func NewReliable(mux *Mux, stream string, deliver Deliver, opts Options) *Reliable {
	opts = opts.withDefaults()
	g := &Reliable{
		mux:       mux,
		stream:    stream,
		self:      mux.Addr(),
		opts:      opts,
		queue:     newDeliveryQueue(deliver),
		lc:        newLifecycle(),
		outbox:    make(map[string]*outEntry),
		delivered: make(map[string]bool),
	}
	mux.Handle(stream, g.onMessage)
	g.lc.goTick(opts.RetransmitInterval, g.retransmit)
	return g
}

// SetMembers implements Group. Members added after a broadcast do not
// retroactively receive it; members removed are dropped from pending
// acknowledgement sets at the next retransmission sweep.
func (g *Reliable) SetMembers(members []string) { g.members.set(members) }

// Broadcast implements Group. The local node always receives its own
// broadcast, whether or not it appears in the membership.
func (g *Reliable) Broadcast(payload []byte) error {
	return g.BroadcastTo(append(g.members.others(g.self), g.self), payload)
}

// BroadcastTo reliably disseminates to an explicit destination set
// (which may include the local node), supporting publisher-side
// filtering (paper §2.3.2). Destinations that subsequently leave the
// membership stop being owed retransmissions.
func (g *Reliable) BroadcastTo(dests []string, payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: reliable %s: closed", g.stream)
	}
	toSelf := false
	others := make([]string, 0, len(dests))
	for _, addr := range dests {
		if addr == g.self {
			toSelf = true
			continue
		}
		others = append(others, addr)
	}

	g.mu.Lock()
	g.nextSeq++
	m := &message{
		Kind:    kindData,
		Origin:  g.self,
		Seq:     g.nextSeq,
		ID:      codec.NewID(),
		Payload: payload,
	}
	wire, err := encodeMessage(m)
	if err != nil {
		g.mu.Unlock()
		return err
	}
	if len(others) > 0 {
		pending := make(map[string]bool, len(others))
		for _, addr := range others {
			pending[addr] = true
		}
		g.outbox[m.ID] = &outEntry{wire: wire, pending: pending}
	}
	g.delivered[m.ID] = true
	g.mu.Unlock()

	for _, addr := range others {
		_ = g.mux.Send(addr, g.stream, wire)
	}
	if toSelf {
		g.queue.push(g.self, payload)
	}
	return nil
}

// Close implements Group.
func (g *Reliable) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	g.queue.close()
	return nil
}

// Outstanding returns the number of broadcasts still awaiting
// acknowledgements (test and monitoring aid).
func (g *Reliable) Outstanding() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.outbox)
}

// retransmit resends unacknowledged messages and enforces the limit.
func (g *Reliable) retransmit() {
	type resend struct {
		wire  []byte
		addrs []string
	}
	current := make(map[string]bool)
	for _, addr := range g.members.snapshot() {
		current[addr] = true
	}

	g.mu.Lock()
	var work []resend
	for id, e := range g.outbox {
		// Members that left the group no longer owe an ack.
		for addr := range e.pending {
			if !current[addr] {
				delete(e.pending, addr)
			}
		}
		if len(e.pending) == 0 {
			delete(g.outbox, id)
			continue
		}
		e.attempts++
		if g.opts.RetransmitLimit > 0 && e.attempts > g.opts.RetransmitLimit {
			delete(g.outbox, id) // give up
			continue
		}
		addrs := make([]string, 0, len(e.pending))
		for addr := range e.pending {
			addrs = append(addrs, addr)
		}
		work = append(work, resend{wire: e.wire, addrs: addrs})
	}
	g.mu.Unlock()

	for _, r := range work {
		for _, addr := range r.addrs {
			_ = g.mux.Send(addr, g.stream, r.wire)
		}
	}
}

func (g *Reliable) onMessage(from string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil {
		return
	}
	switch m.Kind {
	case kindData:
		// Always ack, even for duplicates: the ack may have been lost.
		ack, err := encodeMessage(&message{Kind: kindAck, Origin: g.self, ID: m.ID})
		if err == nil {
			_ = g.mux.Send(from, g.stream, ack)
		}
		g.mu.Lock()
		dup := g.delivered[m.ID]
		if !dup {
			g.delivered[m.ID] = true
		}
		g.mu.Unlock()
		if !dup {
			g.queue.push(m.Origin, m.Payload)
		}
	case kindAck:
		g.mu.Lock()
		if e, ok := g.outbox[m.ID]; ok {
			delete(e.pending, m.Origin)
			if len(e.pending) == 0 {
				delete(g.outbox, m.ID)
			}
		}
		g.mu.Unlock()
	}
}
