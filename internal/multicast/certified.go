package multicast

import (
	"fmt"
	"sync"

	"govents/internal/codec"
	"govents/internal/store"
)

// CertSubscriber identifies a durable subscriber of a certified group:
// its stable durable ID (the paper's activate(long id), §3.4.1, which
// lets a subscription outlive its hosting process) and its current
// transport address, which may change across restarts.
type CertSubscriber struct {
	DurableID string
	Addr      string
}

// Stager is the durable subscriber-side staging hook: incoming
// certified events are staged — durably appended and deduplicated by
// event ID — BEFORE they are acknowledged to the publisher. fresh
// reports whether the event was new; a false return means the event is
// already durable here (a redelivery) and must be re-acked but not
// delivered again. A Stager subsumes the store.Set dedup: when one is
// installed the set is not consulted.
type Stager interface {
	Stage(id, origin string, payload []byte) (fresh bool, err error)
}

// Certified implements the paper's Certified delivery semantics
// (§3.1.2): "even if a notifiable temporarily disconnects or fails, it
// will eventually deliver the obvent". The publisher persists every
// broadcast in a store.Log and retransmits to each registered durable
// subscriber until that subscriber acknowledges; subscribers
// deduplicate through a durable store.Set so redeliveries after a crash
// are delivered exactly once.
type Certified struct {
	mux    *Mux
	stream string
	self   string
	opts   Options

	queue *deliveryQueue
	lc    *lifecycle

	log   store.Log // publisher-side durable outbox
	dedup store.Set // subscriber-side durable delivered set

	mu        sync.Mutex
	subs      map[string]string // durable ID -> current address
	durableID string            // our identity when acknowledging
	stager    Stager            // optional durable staging inbox
}

var _ Group = (*Certified)(nil)

// NewCertified creates a certified group. log is the publisher-side
// durable outbox; dedup is the subscriber-side durable delivered set
// (pass store.NewMemSet() when at-least-once is acceptable or the node
// never subscribes).
func NewCertified(mux *Mux, stream string, log store.Log, dedup store.Set, deliver Deliver, opts Options) *Certified {
	opts = opts.withDefaults()
	g := &Certified{
		mux:    mux,
		stream: stream,
		self:   mux.Addr(),
		opts:   opts,
		queue:  newDeliveryQueue(deliver),
		lc:     newLifecycle(),
		log:    log,
		dedup:  dedup,
		subs:   make(map[string]string),
	}
	mux.Handle(stream, g.onMessage)
	g.lc.goTick(opts.RetransmitInterval, g.redeliver)
	return g
}

// SetSubscribers replaces the set of durable subscribers. New durable
// IDs are registered as consumers of the outbox log and are owed every
// entry not yet garbage-collected; a subscriber reconnecting under a new
// address receives its pending backlog there.
func (g *Certified) SetSubscribers(subs []CertSubscriber) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	next := make(map[string]string, len(subs))
	for _, s := range subs {
		next[s.DurableID] = s.Addr
		if _, known := g.subs[s.DurableID]; !known {
			if err := g.log.RegisterConsumer(s.DurableID); err != nil {
				return fmt.Errorf("multicast: certified %s: register %s: %w", g.stream, s.DurableID, err)
			}
		}
	}
	// Note: durable IDs that disappear are intentionally NOT
	// unregistered from the log — a disconnected subscriber is exactly
	// the case certified delivery exists for. Use Unsubscribe for a
	// permanent goodbye.
	g.subs = next
	return nil
}

// Unsubscribe permanently removes a durable subscriber; its pending
// entries become garbage-collectable.
func (g *Certified) Unsubscribe(durableID string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.subs, durableID)
	return g.log.UnregisterConsumer(durableID)
}

// SetMembers implements Group by treating each address as a durable
// subscriber whose ID is the address itself. Groups needing durable IDs
// distinct from addresses use SetSubscribers.
func (g *Certified) SetMembers(members []string) {
	subs := make([]CertSubscriber, 0, len(members))
	for _, addr := range members {
		if addr == g.self {
			continue
		}
		subs = append(subs, CertSubscriber{DurableID: addr, Addr: addr})
	}
	_ = g.SetSubscribers(subs)
}

// Broadcast implements Group: the payload is persisted before any
// transmission (write-ahead), then pushed to all currently connected
// subscribers. Retransmission to absent or unacknowledged subscribers is
// driven by the redelivery tick.
func (g *Certified) Broadcast(payload []byte) error {
	return g.BroadcastWithID(codec.NewID(), payload)
}

// BroadcastWithID is Broadcast under a caller-chosen event identity.
// Callers whose payload already carries an ID (envelopes) pass it here,
// so the durable staging inbox and the application-level delivery
// acknowledgements key the same event by the same string.
func (g *Certified) BroadcastWithID(id string, payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: certified %s: closed", g.stream)
	}
	if err := g.log.Append(store.Entry{ID: id, Payload: payload}); err != nil {
		return fmt.Errorf("multicast: certified %s: persist: %w", g.stream, err)
	}
	wire, err := encodeMessage(&message{Kind: kindCertData, Origin: g.self, ID: id, Payload: payload})
	if err != nil {
		return err
	}
	g.mu.Lock()
	addrs := make([]string, 0, len(g.subs))
	for _, addr := range g.subs {
		addrs = append(addrs, addr)
	}
	stager := g.stager
	g.mu.Unlock()
	// Record the local delivery in the dedup state BEFORE pushing it,
	// so the wire copy a self-subscribed node receives back is
	// suppressed instead of delivered twice.
	localFresh := true
	if stager != nil {
		fresh, err := stager.Stage(id, g.self, payload)
		if err != nil {
			return fmt.Errorf("multicast: certified %s: stage local: %w", g.stream, err)
		}
		localFresh = fresh
		// A publisher subscribed under its own durable identity has, by
		// staging, durably received its own event: self-ack the outbox.
		_ = g.log.Ack(g.DurableID(), id)
	} else if g.dedup != nil {
		if seen, err := g.dedup.Has(id); err == nil && !seen {
			if err := g.dedup.Add(id); err != nil {
				localFresh = false
			}
		} else {
			localFresh = false
		}
	}
	for _, addr := range addrs {
		_ = g.mux.Send(addr, g.stream, wire)
	}
	// Local delivery for a publishing subscriber node.
	if localFresh {
		g.queue.push(g.self, payload)
	}
	return nil
}

// Close implements Group.
func (g *Certified) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	g.queue.close()
	return nil
}

// GC drops fully acknowledged entries from the outbox.
func (g *Certified) GC() (int, error) { return g.log.GC() }

// redeliver pushes each subscriber's pending backlog.
func (g *Certified) redeliver() {
	g.mu.Lock()
	subs := make(map[string]string, len(g.subs))
	for id, addr := range g.subs {
		subs[id] = addr
	}
	g.mu.Unlock()

	for durableID, addr := range subs {
		pending, err := g.log.Pending(durableID)
		if err != nil {
			g.opts.Logger.Warn("multicast: certified redelivery cannot read outbox",
				"stream", g.stream, "subscriber", durableID, "err", err)
			continue
		}
		for _, e := range pending {
			wire, err := encodeMessage(&message{Kind: kindCertData, Origin: g.self, ID: e.ID, Payload: e.Payload})
			if err != nil {
				g.opts.Logger.Warn("multicast: certified redelivery cannot encode entry",
					"stream", g.stream, "id", e.ID, "err", err)
				continue
			}
			if err := g.mux.Send(addr, g.stream, wire); err != nil {
				g.opts.Logger.Debug("multicast: certified redelivery send failed",
					"stream", g.stream, "subscriber", durableID, "addr", addr, "err", err)
			}
		}
	}
}

// DurableID returns the durable subscriber identity this node
// acknowledges under. It defaults to the node address; override with
// SetDurableID before subscribing durably.
func (g *Certified) DurableID() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.durableID != "" {
		return g.durableID
	}
	return g.self
}

// SetDurableID sets the durable identity used in acknowledgements.
func (g *Certified) SetDurableID(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.durableID = id
}

// SetStager installs the durable staging inbox. With a stager, incoming
// events are staged before acknowledgement and the store.Set dedup is
// bypassed — the stager's own ID dedup takes over.
func (g *Certified) SetStager(s Stager) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stager = s
}

// Pause parks the group's delivery goroutine; incoming events continue
// to be staged and acknowledged but are not delivered until Resume.
// Used to make the replay→live handoff of a durable subscription
// seamless: nothing is delivered live while the backlog replays.
func (g *Certified) Pause() { g.queue.pause() }

// Resume releases a Pause, draining accumulated deliveries in order.
func (g *Certified) Resume() { g.queue.resume() }

func (g *Certified) onMessage(from string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil {
		g.opts.Logger.Warn("multicast: certified dropping undecodable frame",
			"stream", g.stream, "from", from, "bytes", len(data), "err", err)
		return
	}
	switch m.Kind {
	case kindCertData:
		// Acknowledge under our durable identity — after durably
		// recording the delivery, so a crash between deliver and ack
		// causes redelivery that the dedup state suppresses.
		g.mu.Lock()
		stager := g.stager
		g.mu.Unlock()
		if stager != nil {
			fresh, err := stager.Stage(m.ID, m.Origin, m.Payload)
			if err != nil {
				g.opts.Logger.Warn("multicast: certified staging failed; withholding ack",
					"stream", g.stream, "id", m.ID, "err", err)
				return // no ack: the publisher keeps redelivering
			}
			if fresh {
				g.queue.push(m.Origin, m.Payload)
			}
		} else {
			seen, err := g.dedup.Has(m.ID)
			if err != nil {
				return
			}
			if !seen {
				if err := g.dedup.Add(m.ID); err != nil {
					return // do not ack what we could not record
				}
				g.queue.push(m.Origin, m.Payload)
			}
		}
		ack, err := encodeMessage(&message{Kind: kindCertAck, Origin: g.DurableID(), ID: m.ID})
		if err == nil {
			_ = g.mux.Send(from, g.stream, ack)
		}
	case kindCertAck:
		_ = g.log.Ack(m.Origin, m.ID)
	}
}
