package multicast

import (
	"bytes"
	"testing"
	"testing/quick"

	"govents/internal/vclock"
)

func TestMessageRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		m    message
	}{
		{"data", message{Kind: kindData, Origin: "node-a", Seq: 7, ID: "id-1", Payload: []byte("payload")}},
		{"ack", message{Kind: kindAck, Origin: "node-b", ID: "id-2"}},
		{"empty payload", message{Kind: kindData, Origin: "x", ID: "y"}},
		{"with vclock", message{Kind: kindData, Origin: "p", VC: vclock.VC{"a": 1, "b": 9}, Payload: []byte{0}}},
		{"with gseq+rounds", message{Kind: kindGossip, GSeq: 99, Rounds: 5, ID: "z"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			wire, err := encodeMessage(&tt.m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := decodeMessage(wire)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != tt.m.Kind || got.Origin != tt.m.Origin || got.Seq != tt.m.Seq ||
				got.GSeq != tt.m.GSeq || got.Rounds != tt.m.Rounds || got.ID != tt.m.ID {
				t.Errorf("header mismatch: %+v vs %+v", got, tt.m)
			}
			if !bytes.Equal(got.Payload, tt.m.Payload) {
				t.Errorf("payload mismatch")
			}
			if !got.VC.Equal(tt.m.VC) {
				t.Errorf("vclock mismatch: %v vs %v", got.VC, tt.m.VC)
			}
		})
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(origin, id string, seq, gseq uint64, rounds uint8, payload []byte) bool {
		if len(origin) > maxWireString || len(id) > maxWireString {
			return true // out of contract
		}
		m := &message{Kind: kindData, Origin: origin, Seq: seq, GSeq: gseq, Rounds: rounds, ID: id, Payload: payload}
		wire, err := encodeMessage(m)
		if err != nil {
			return false
		}
		got, err := decodeMessage(wire)
		if err != nil {
			return false
		}
		return got.Origin == origin && got.ID == id && got.Seq == seq &&
			got.GSeq == gseq && got.Rounds == rounds && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMessageTruncated(t *testing.T) {
	m := &message{Kind: kindData, Origin: "origin", ID: "id", Payload: []byte("data")}
	wire, err := encodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(wire); cut++ {
		if _, err := decodeMessage(wire[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes should fail", cut, len(wire))
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	batch := []*message{
		{Kind: kindGossip, Origin: "a", ID: "1", Rounds: 3, Payload: []byte("x")},
		{Kind: kindGossip, Origin: "b", ID: "2", Rounds: 1, Payload: nil},
	}
	wire, err := encodeBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatch(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "1" || got[1].ID != "2" || got[1].Rounds != 1 {
		t.Errorf("batch = %+v", got)
	}
}

func TestDecodeBatchCorrupt(t *testing.T) {
	if _, err := decodeBatch(nil); err == nil {
		t.Error("nil batch should fail")
	}
	if _, err := decodeBatch([]byte{0, 5}); err == nil {
		t.Error("batch claiming 5 events with no bytes should fail")
	}
}
