// Package multicast implements the dissemination-protocol suite of the
// DACE architecture (paper §4.2): every obvent class is mapped to a
// dissemination channel — a "multicast class" — and each channel can be
// implemented by a different multicast protocol, "with guarantees ranging
// from strong guarantees (exploiting ... group communication, e.g., for
// causal ordering) to primitives with weaker guarantees but strong focus
// on scalability (network-level protocols like IP multicast ... or
// gossip-based protocols)".
//
// The protocols provided are:
//
//   - BestEffort — unicast fanout, no guarantees (the IP-multicast stand-in)
//   - Reliable   — ack/retransmit sender-driven reliable broadcast
//   - FIFO       — per-publisher order on top of Reliable
//   - Causal     — vector-clock causal order on top of Reliable
//   - Total      — fixed-sequencer total order on top of Reliable
//   - Certified  — durable delivery backed by a store.Log, surviving
//     subscriber disconnection
//   - Gossip     — probabilistic broadcast in the style of lpbcast
//
// All protocols run over a Mux, which multiplexes named streams onto a
// single point-to-point netsim.Transport endpoint.
package multicast

import (
	"encoding/binary"
	"fmt"
	"sync"

	"govents/internal/netsim"
)

// Deliver is the upcall invoked for every message delivered by a group,
// carrying the address of the original publisher and the payload.
// Deliver runs on the transport's delivery goroutine (or the caller's
// goroutine for local self-delivery) and must not block indefinitely.
type Deliver func(origin string, payload []byte)

// Group is a dissemination channel: the runtime realization of one of
// the paper's multicast classes.
type Group interface {
	// Broadcast disseminates payload to all members of the group,
	// including the local node.
	Broadcast(payload []byte) error
	// SetMembers replaces the full membership (addresses, including
	// the local node).
	SetMembers(members []string)
	// Close stops the group's background work. The group must not be
	// used afterwards.
	Close() error
}

// Mux multiplexes named streams over one Transport endpoint so that many
// groups (one per obvent class, per paper §4.2) share a node's single
// address. Handlers are registered per stream; frames for unknown
// streams are dropped.
type Mux struct {
	tr netsim.Transport

	mu       sync.RWMutex
	handlers map[string]netsim.Handler
	fallback func(stream, from string, payload []byte)
}

// NewMux wraps a transport endpoint. It installs itself as the
// transport's handler.
func NewMux(tr netsim.Transport) *Mux {
	m := &Mux{tr: tr, handlers: make(map[string]netsim.Handler)}
	tr.SetHandler(m.dispatch)
	return m
}

// Addr returns the underlying endpoint address.
func (m *Mux) Addr() string { return m.tr.Addr() }

// Handle registers the handler for a stream, replacing any previous one.
func (m *Mux) Handle(stream string, h netsim.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[stream] = h
}

// Unhandle removes the stream's handler.
func (m *Mux) Unhandle(stream string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, stream)
}

// SetFallback installs a handler for frames on streams with no
// registered handler. It enables lazy group creation: the fallback may
// register a handler for the stream and re-dispatch the frame with
// Redeliver. Without a fallback, unknown-stream frames are dropped.
func (m *Mux) SetFallback(f func(stream, from string, payload []byte)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fallback = f
}

// Redeliver routes a frame to the now-registered handler of a stream
// (used by fallbacks after creating the handling group). The frame is
// dropped if the stream is still unhandled.
func (m *Mux) Redeliver(stream, from string, payload []byte) {
	m.mu.RLock()
	h := m.handlers[stream]
	m.mu.RUnlock()
	if h != nil {
		h(from, payload)
	}
}

// Send transmits payload on the named stream to the destination address.
func (m *Mux) Send(to, stream string, payload []byte) error {
	if len(stream) > 0xFFFF {
		return fmt.Errorf("multicast: stream name too long (%d bytes)", len(stream))
	}
	buf := make([]byte, 0, 2+len(stream)+len(payload))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(stream)))
	buf = append(buf, stream...)
	buf = append(buf, payload...)
	return m.tr.Send(to, buf)
}

// dispatch routes an inbound transport frame to its stream handler.
func (m *Mux) dispatch(from string, data []byte) {
	if len(data) < 2 {
		return
	}
	n := int(binary.BigEndian.Uint16(data[:2]))
	if 2+n > len(data) {
		return
	}
	stream := string(data[2 : 2+n])
	m.mu.RLock()
	h := m.handlers[stream]
	fb := m.fallback
	m.mu.RUnlock()
	switch {
	case h != nil:
		h(from, data[2+n:])
	case fb != nil:
		fb(stream, from, data[2+n:])
	}
}
