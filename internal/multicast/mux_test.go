package multicast

import (
	"sync"
	"testing"

	"govents/internal/netsim"
)

func TestMuxFallbackAndRedeliver(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")

	var mu sync.Mutex
	var fallbackStreams []string
	var delivered []string
	b.mux.SetFallback(func(stream, from string, payload []byte) {
		mu.Lock()
		fallbackStreams = append(fallbackStreams, stream)
		mu.Unlock()
		// Lazily register, then re-dispatch — the dace pattern.
		b.mux.Handle(stream, func(from string, p []byte) {
			mu.Lock()
			defer mu.Unlock()
			delivered = append(delivered, string(p))
		})
		b.mux.Redeliver(stream, from, payload)
	})

	_ = a.mux.Send("b", "lazy/stream", []byte("first"))
	net.Settle()
	_ = a.mux.Send("b", "lazy/stream", []byte("second"))
	net.Settle()

	mu.Lock()
	defer mu.Unlock()
	if len(fallbackStreams) != 1 || fallbackStreams[0] != "lazy/stream" {
		t.Errorf("fallback invocations = %v, want exactly one", fallbackStreams)
	}
	if len(delivered) != 2 || delivered[0] != "first" || delivered[1] != "second" {
		t.Errorf("delivered = %v; the fallback must not lose the first frame", delivered)
	}
}

func TestMuxRedeliverUnknownStreamIsDropped(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	// No handler, no panic.
	a.mux.Redeliver("ghost", "nobody", []byte("x"))
}

func TestMuxUnhandleStopsDelivery(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	b := newTestNode(t, net, "b")
	var mu sync.Mutex
	n := 0
	b.mux.Handle("s", func(string, []byte) {
		mu.Lock()
		defer mu.Unlock()
		n++
	})
	_ = a.mux.Send("b", "s", []byte("1"))
	net.Settle()
	b.mux.Unhandle("s")
	_ = a.mux.Send("b", "s", []byte("2"))
	net.Settle()
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Errorf("delivered %d, want 1", n)
	}
}

func TestMuxMalformedFramesIgnored(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a, _ := net.NewEndpoint("raw")
	b := newTestNode(t, net, "b")
	b.mux.Handle("s", func(string, []byte) { t.Error("malformed frame dispatched") })
	// Too short, and stream-length pointing past the end.
	_ = a.Send("b", []byte{0x00})
	_ = a.Send("b", []byte{0xFF, 0xFF, 'x'})
	net.Settle()
}

func TestMuxStreamNameTooLong(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	a := newTestNode(t, net, "a")
	long := make([]byte, 0x10001)
	for i := range long {
		long[i] = 's'
	}
	if err := a.mux.Send("a", string(long), nil); err == nil {
		t.Error("oversized stream name must fail")
	}
}
