package multicast

import (
	"fmt"
	"sync"

	"govents/internal/codec"
)

// Total implements totally ordered broadcast with a fixed sequencer: all
// members deliver all messages in the same (subscriber-side) order, the
// paper's TotalOrder delivery semantics (§3.1.2).
//
// Publications are routed to the sequencer, which assigns a global
// sequence number and reliably broadcasts the stamped message; members
// deliver in global-sequence order. Publishers retransmit unstamped
// requests until they observe their own message sequenced, so the
// protocol tolerates loss of both requests and stamped broadcasts; it
// does not tolerate sequencer crash (sequencer election is outside the
// paper's scope).
//
// The class is interest-aware through a Planner installed on the
// sequencer: filtering happens strictly AFTER stamping, so the global
// sequence is assigned to every publication and stays gap-free at every
// member. Stamped data frames go only to interested destinations;
// everyone else learns the covered range from the SkipFrom carried on
// the next frame they do receive, from a periodic flush skip marker, or
// — for an uninterested origin — from an immediate targeted skip
// carrying the message ID (which also stops the origin's request
// retransmission). A Planner returning ok=false fails open to a full
// broadcast.
type Total struct {
	mux       *Mux
	stream    string // sequencing-request stream
	self      string
	sequencer string
	opts      Options
	inner     *Reliable
	deliver   Deliver
	lc        *lifecycle

	mu       sync.Mutex
	planner  Planner         // sequencer: interest filter (nil = broadcast all)
	tracker  *skipTracker    // sequencer: per-destination covered sequences
	observer PruneObserver   // optional pruning counters sink
	nextGSeq uint64          // sequencer only
	seenReqs map[string]bool // sequencer: deduplicated request IDs
	pending  map[string][]byte
	expected uint64 // next global sequence to deliver
	hold     map[uint64]totalHeld
}

// Planner maps a stamped publication's payload to its interest-pruned
// Sends. ok=false means the payload could not be evaluated; the caller
// fails open to a full broadcast. Called by the sequencer once per
// publication, serialized with stamping.
type Planner func(payload []byte) ([]Send, bool)

// totalHeld is a buffered out-of-order frame: the global-sequence range
// it covers ends at its hold key; skip marks a payload-less marker.
type totalHeld struct {
	origin  string
	from    uint64
	skip    bool
	payload []byte
}

var _ Group = (*Total)(nil)

// NewTotal creates a totally ordered group on the given stream with the
// designated sequencer address (every member must configure the same
// sequencer).
func NewTotal(mux *Mux, stream, sequencer string, deliver Deliver, opts Options) *Total {
	opts = opts.withDefaults()
	g := &Total{
		mux:       mux,
		stream:    stream + "!ord",
		self:      mux.Addr(),
		sequencer: sequencer,
		opts:      opts,
		deliver:   deliver,
		lc:        newLifecycle(),
		tracker:   newSkipTracker(),
		seenReqs:  make(map[string]bool),
		pending:   make(map[string][]byte),
		expected:  1,
		hold:      make(map[uint64]totalHeld),
	}
	g.inner = NewReliable(mux, stream, g.onInner, opts)
	mux.Handle(g.stream, g.onOrderReq)
	g.lc.goTick(opts.RetransmitInterval, g.retransmitRequests)
	if g.self == sequencer {
		g.lc.goTick(opts.RetransmitInterval, g.flush)
	}
	return g
}

// SetMembers implements Group.
func (g *Total) SetMembers(members []string) {
	g.inner.SetMembers(members)
	g.mu.Lock()
	g.tracker.retain(members)
	g.mu.Unlock()
}

// SetPlanner installs the sequencer-side interest filter. Only the
// sequencer consults it; installing it everywhere is harmless.
func (g *Total) SetPlanner(p Planner) {
	g.mu.Lock()
	g.planner = p
	g.mu.Unlock()
}

// SetPruneObserver installs the pruning-counters sink.
func (g *Total) SetPruneObserver(obs PruneObserver) {
	g.mu.Lock()
	g.observer = obs
	g.mu.Unlock()
}

// Broadcast implements Group.
func (g *Total) Broadcast(payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: total %s: closed", g.stream)
	}
	id := codec.NewID()
	if g.self == g.sequencer {
		return g.sequence(id, g.self, payload)
	}
	req, err := encodeMessage(&message{Kind: kindOrderReq, Origin: g.self, ID: id, Payload: payload})
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.pending[id] = req
	g.mu.Unlock()
	return g.mux.Send(g.sequencer, g.stream, req)
}

// Close implements Group.
func (g *Total) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	return g.inner.Close()
}

// sequence stamps a message with the next global sequence number and
// disseminates it: a full reliable broadcast without a planner, an
// interest-pruned split with one. Sequencer only.
func (g *Total) sequence(id, origin string, payload []byte) error {
	g.mu.Lock()
	if g.seenReqs[id] {
		g.mu.Unlock()
		return nil // duplicate request
	}
	g.seenReqs[id] = true
	planner := g.planner
	g.mu.Unlock()

	if planner == nil {
		g.mu.Lock()
		g.nextGSeq++
		gseq := g.nextGSeq
		g.mu.Unlock()
		wire, err := encodeMessage(&message{Kind: kindData, Origin: origin, GSeq: gseq, ID: id, Payload: payload})
		if err != nil {
			return err
		}
		return g.inner.Broadcast(wire)
	}

	// Plan before stamping (the plan does not depend on the sequence
	// number); fail open to a full broadcast on an unevaluable payload.
	sends, ok := planner(payload)
	if !ok {
		sends = []Send{{Dests: g.inner.members.snapshot(), Payload: payload}}
	}

	type frame struct {
		dests []string
		wire  []byte
	}
	var frames []frame
	var originSkips uint64
	sent := 0
	originSent := false

	// Stamping and skip-tracker bookkeeping are one critical section:
	// ranges handed to destinations must be assigned in global-sequence
	// order to stay contiguous.
	g.mu.Lock()
	g.nextGSeq++
	gseq := g.nextGSeq
	g.tracker.mark(gseq)
	for _, s := range sends {
		sent += len(s.Dests)
		for _, d := range s.Dests {
			if d == origin {
				originSent = true
			}
		}
		for from, dests := range g.tracker.advance(s.Dests, gseq) {
			wire, err := encodeMessage(&message{Kind: kindData, Origin: origin, GSeq: gseq, SkipFrom: from, ID: id, Payload: s.Payload})
			if err != nil {
				g.mu.Unlock()
				return err
			}
			frames = append(frames, frame{dests: dests, wire: wire})
		}
	}
	if !originSent {
		// The origin is not interested in its own publication: send it a
		// stamped skip carrying the message ID immediately, so its
		// pending-request retransmission stops.
		for from, dests := range g.tracker.advance([]string{origin}, gseq) {
			wire, err := encodeMessage(&message{Kind: kindSkip, GSeq: gseq, SkipFrom: from, ID: id})
			if err != nil {
				break
			}
			frames = append(frames, frame{dests: dests, wire: wire})
			originSkips++
		}
	}
	pruned := len(g.inner.members.snapshot()) - sent
	obs := g.observer
	g.mu.Unlock()

	if obs != nil && (pruned > 0 || originSkips > 0) {
		if pruned < 0 {
			pruned = 0
		}
		obs(uint64(pruned), originSkips)
	}
	for _, f := range frames {
		if err := g.inner.BroadcastTo(f.dests, f.wire); err != nil {
			return err
		}
	}
	return nil
}

// flush ships stamped skip markers to every destination trailing the
// sequencer's head, keeping the global sequence gap-free at members no
// recent publication was sent to. Sequencer only.
func (g *Total) flush() {
	type frame struct {
		dests []string
		wire  []byte
	}
	var frames []frame
	var skips uint64
	g.mu.Lock()
	head := g.tracker.head
	for from, dests := range g.tracker.lagging(g.inner.members.snapshot()) {
		wire, err := encodeMessage(&message{Kind: kindSkip, GSeq: head, SkipFrom: from})
		if err != nil {
			continue
		}
		frames = append(frames, frame{dests: dests, wire: wire})
		skips += uint64(len(dests))
	}
	obs := g.observer
	g.mu.Unlock()
	if obs != nil && skips > 0 {
		obs(0, skips)
	}
	for _, f := range frames {
		_ = g.inner.BroadcastTo(f.dests, f.wire)
	}
}

// onOrderReq handles sequencing requests (sequencer only; other nodes
// never receive on this stream).
func (g *Total) onOrderReq(_ string, data []byte) {
	if g.self != g.sequencer {
		return
	}
	m, err := decodeMessage(data)
	if err != nil || m.Kind != kindOrderReq {
		return
	}
	_ = g.sequence(m.ID, m.Origin, m.Payload)
}

// retransmitRequests resends sequencing requests not yet observed as
// stamped broadcasts.
func (g *Total) retransmitRequests() {
	g.mu.Lock()
	reqs := make([][]byte, 0, len(g.pending))
	for _, req := range g.pending {
		reqs = append(reqs, req)
	}
	g.mu.Unlock()
	for _, req := range reqs {
		_ = g.mux.Send(g.sequencer, g.stream, req)
	}
}

// onInner receives stamped frames from the sequencer's reliable
// broadcast and releases them in global-sequence order. A frame is
// consumable once the range it covers reaches the expected sequence;
// everything in the range below its top was deliberately skipped for
// this node. Runs on the inner group's single delivery goroutine.
func (g *Total) onInner(_ string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil || (m.Kind != kindData && m.Kind != kindSkip) || m.GSeq == 0 {
		return
	}
	h := totalHeld{
		origin:  m.Origin,
		from:    coveredFrom(m.SkipFrom, m.GSeq),
		skip:    m.Kind == kindSkip,
		payload: m.Payload,
	}

	var ready []totalHeld
	g.mu.Lock()
	if m.ID != "" {
		delete(g.pending, m.ID) // our own request has been sequenced
	}
	switch {
	case m.GSeq < g.expected:
		// Entirely below the expected sequence: already covered.
	case h.from <= g.expected:
		if !h.skip {
			ready = append(ready, h)
		}
		g.expected = m.GSeq + 1
		ready = g.drainLocked(ready)
	default:
		g.hold[m.GSeq] = h
	}
	g.mu.Unlock()

	for _, r := range ready {
		g.deliver(r.origin, r.payload)
	}
}

// drainLocked releases buffered frames whose covered range now reaches
// the expected global sequence. The sequencer emits disjoint contiguous
// ranges per destination, so at most one held frame is consumable at a
// time; the scan repeats until a fixpoint. Caller holds g.mu.
func (g *Total) drainLocked(ready []totalHeld) []totalHeld {
	for {
		progress := false
		for top, h := range g.hold {
			switch {
			case top < g.expected:
				delete(g.hold, top)
				progress = true
			case h.from <= g.expected:
				delete(g.hold, top)
				if !h.skip {
					ready = append(ready, h)
				}
				g.expected = top + 1
				progress = true
			}
		}
		if !progress {
			return ready
		}
	}
}
