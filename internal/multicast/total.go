package multicast

import (
	"fmt"
	"sync"

	"govents/internal/codec"
)

// Total implements totally ordered broadcast with a fixed sequencer: all
// members deliver all messages in the same (subscriber-side) order, the
// paper's TotalOrder delivery semantics (§3.1.2).
//
// Publications are routed to the sequencer, which assigns a global
// sequence number and reliably broadcasts the stamped message; members
// deliver in global-sequence order. Publishers retransmit unstamped
// requests until they observe their own message sequenced, so the
// protocol tolerates loss of both requests and stamped broadcasts; it
// does not tolerate sequencer crash (sequencer election is outside the
// paper's scope).
type Total struct {
	mux       *Mux
	stream    string // sequencing-request stream
	self      string
	sequencer string
	opts      Options
	inner     *Reliable
	deliver   Deliver
	lc        *lifecycle

	mu       sync.Mutex
	nextGSeq uint64            // sequencer only
	seenReqs map[string]bool   // sequencer: deduplicated request IDs
	pending  map[string][]byte // our requests not yet observed sequenced
	expected uint64            // next global sequence to deliver
	hold     map[uint64]*message
}

var _ Group = (*Total)(nil)

// NewTotal creates a totally ordered group on the given stream with the
// designated sequencer address (every member must configure the same
// sequencer).
func NewTotal(mux *Mux, stream, sequencer string, deliver Deliver, opts Options) *Total {
	opts = opts.withDefaults()
	g := &Total{
		mux:       mux,
		stream:    stream + "!ord",
		self:      mux.Addr(),
		sequencer: sequencer,
		opts:      opts,
		deliver:   deliver,
		lc:        newLifecycle(),
		seenReqs:  make(map[string]bool),
		pending:   make(map[string][]byte),
		expected:  1,
		hold:      make(map[uint64]*message),
	}
	g.inner = NewReliable(mux, stream, g.onInner, opts)
	mux.Handle(g.stream, g.onOrderReq)
	g.lc.goTick(opts.RetransmitInterval, g.retransmitRequests)
	return g
}

// SetMembers implements Group.
func (g *Total) SetMembers(members []string) { g.inner.SetMembers(members) }

// Broadcast implements Group.
func (g *Total) Broadcast(payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: total %s: closed", g.stream)
	}
	id := codec.NewID()
	if g.self == g.sequencer {
		return g.sequence(id, g.self, payload)
	}
	req, err := encodeMessage(&message{Kind: kindOrderReq, Origin: g.self, ID: id, Payload: payload})
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.pending[id] = req
	g.mu.Unlock()
	return g.mux.Send(g.sequencer, g.stream, req)
}

// Close implements Group.
func (g *Total) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	return g.inner.Close()
}

// sequence stamps a message with the next global sequence number and
// reliably broadcasts it. Sequencer only.
func (g *Total) sequence(id, origin string, payload []byte) error {
	g.mu.Lock()
	if g.seenReqs[id] {
		g.mu.Unlock()
		return nil // duplicate request
	}
	g.seenReqs[id] = true
	g.nextGSeq++
	gseq := g.nextGSeq
	g.mu.Unlock()
	wire, err := encodeMessage(&message{Kind: kindData, Origin: origin, GSeq: gseq, ID: id, Payload: payload})
	if err != nil {
		return err
	}
	return g.inner.Broadcast(wire)
}

// onOrderReq handles sequencing requests (sequencer only; other nodes
// never receive on this stream).
func (g *Total) onOrderReq(_ string, data []byte) {
	if g.self != g.sequencer {
		return
	}
	m, err := decodeMessage(data)
	if err != nil || m.Kind != kindOrderReq {
		return
	}
	_ = g.sequence(m.ID, m.Origin, m.Payload)
}

// retransmitRequests resends sequencing requests not yet observed as
// stamped broadcasts.
func (g *Total) retransmitRequests() {
	g.mu.Lock()
	reqs := make([][]byte, 0, len(g.pending))
	for _, req := range g.pending {
		reqs = append(reqs, req)
	}
	g.mu.Unlock()
	for _, req := range reqs {
		_ = g.mux.Send(g.sequencer, g.stream, req)
	}
}

// onInner receives stamped messages from the sequencer's reliable
// broadcast and releases them in global-sequence order. Runs on the
// inner group's single delivery goroutine.
func (g *Total) onInner(_ string, data []byte) {
	m, err := decodeMessage(data)
	if err != nil || m.GSeq == 0 {
		return
	}

	var ready []*message
	g.mu.Lock()
	delete(g.pending, m.ID) // our own request has been sequenced
	if m.GSeq >= g.expected {
		g.hold[m.GSeq] = m
	}
	for {
		next, ok := g.hold[g.expected]
		if !ok {
			break
		}
		delete(g.hold, g.expected)
		g.expected++
		ready = append(ready, next)
	}
	g.mu.Unlock()

	for _, r := range ready {
		g.deliver(r.Origin, r.Payload)
	}
}
