package multicast

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"govents/internal/codec"
)

// Gossip implements probabilistic broadcast in the style of lpbcast
// ([EGH+01], which the paper's DACE architecture uses for scalable
// dissemination with weak guarantees, §4.2). Each node buffers recently
// seen events; every gossip period it forwards its active events to a
// few random peers (the fanout); events age out after a fixed number of
// rounds. Delivery is probabilistic: with adequate fanout and rounds the
// protocol delivers to almost all members with high probability, at a
// per-node cost independent of group size.
type Gossip struct {
	mux    *Mux
	stream string
	self   string
	opts   Options

	queue *deliveryQueue
	lc    *lifecycle

	members membership

	mu     sync.Mutex
	rng    *rand.Rand
	seen   map[string]bool         // event IDs ever seen (dedup)
	active map[string]*gossipEvent // events still being relayed
}

// gossipEvent is a buffered event with remaining rounds-to-live.
type gossipEvent struct {
	origin  string
	rounds  int
	payload []byte
}

var _ Group = (*Gossip)(nil)

// NewGossip creates a gossip group on the given stream.
func NewGossip(mux *Mux, stream string, deliver Deliver, opts Options) *Gossip {
	opts = opts.withDefaults()
	g := &Gossip{
		mux:    mux,
		stream: stream,
		self:   mux.Addr(),
		opts:   opts,
		queue:  newDeliveryQueue(deliver),
		lc:     newLifecycle(),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		seen:   make(map[string]bool),
		active: make(map[string]*gossipEvent),
	}
	mux.Handle(stream, g.onMessage)
	g.lc.goTick(opts.GossipPeriod, g.round)
	return g
}

// SetMembers implements Group.
func (g *Gossip) SetMembers(members []string) { g.members.set(members) }

// Broadcast implements Group: the event is delivered locally and enters
// the gossip buffer; dissemination happens over subsequent rounds.
func (g *Gossip) Broadcast(payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: gossip %s: closed", g.stream)
	}
	id := codec.NewID()
	g.mu.Lock()
	g.seen[id] = true
	g.active[id] = &gossipEvent{origin: g.self, rounds: g.opts.GossipRounds, payload: payload}
	g.mu.Unlock()
	g.queue.push(g.self, payload)
	return nil
}

// Close implements Group.
func (g *Gossip) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	g.queue.close()
	return nil
}

// round performs one gossip round: pick fanout random peers and push all
// active events to each, then age the events.
func (g *Gossip) round() {
	peers := g.pickPeers()
	if len(peers) == 0 {
		return
	}

	g.mu.Lock()
	batch := make([]*message, 0, len(g.active))
	for id, ev := range g.active {
		batch = append(batch, &message{
			Kind:    kindGossip,
			Origin:  ev.origin,
			ID:      id,
			Rounds:  uint8(ev.rounds),
			Payload: ev.payload,
		})
		ev.rounds--
		if ev.rounds <= 0 {
			delete(g.active, id) // infect-and-die: stop relaying
		}
	}
	g.mu.Unlock()

	if len(batch) == 0 {
		return
	}
	wire, err := encodeBatch(batch)
	if err != nil {
		return
	}
	for _, peer := range peers {
		_ = g.mux.Send(peer, g.stream, wire)
	}
}

// pickPeers selects up to fanout random members other than self.
func (g *Gossip) pickPeers() []string {
	others := g.members.others(g.self)
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(others) <= g.opts.GossipFanout {
		return others
	}
	g.rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	return others[:g.opts.GossipFanout]
}

func (g *Gossip) onMessage(_ string, data []byte) {
	batch, err := decodeBatch(data)
	if err != nil {
		return
	}
	for _, m := range batch {
		if m.Kind != kindGossip {
			continue
		}
		g.mu.Lock()
		if g.seen[m.ID] {
			g.mu.Unlock()
			continue
		}
		g.seen[m.ID] = true
		if rounds := int(m.Rounds) - 1; rounds > 0 {
			g.active[m.ID] = &gossipEvent{origin: m.Origin, rounds: rounds, payload: m.Payload}
		}
		g.mu.Unlock()
		g.queue.push(m.Origin, m.Payload)
	}
}

// encodeBatch frames a slice of messages as [count u16] ([len u32][msg])*.
func encodeBatch(batch []*message) ([]byte, error) {
	if len(batch) > 0xFFFF {
		return nil, fmt.Errorf("multicast: gossip batch too large (%d)", len(batch))
	}
	out := binary.BigEndian.AppendUint16(nil, uint16(len(batch)))
	for _, m := range batch {
		wire, err := encodeMessage(m)
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(wire)))
		out = append(out, wire...)
	}
	return out, nil
}

// decodeBatch parses a gossip batch.
func decodeBatch(data []byte) ([]*message, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("multicast: short gossip batch")
	}
	count := int(binary.BigEndian.Uint16(data[:2]))
	off := 2
	out := make([]*message, 0, count)
	for i := 0; i < count; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("multicast: truncated gossip batch")
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+n > len(data) {
			return nil, fmt.Errorf("multicast: truncated gossip event")
		}
		m, err := decodeMessage(data[off : off+n])
		if err != nil {
			return nil, err
		}
		off += n
		out = append(out, m)
	}
	return out, nil
}
