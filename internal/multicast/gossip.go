package multicast

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"govents/internal/codec"
)

// Gossip implements probabilistic broadcast in the style of lpbcast
// ([EGH+01], which the paper's DACE architecture uses for scalable
// dissemination with weak guarantees, §4.2). Each node buffers recently
// seen events; every gossip period it forwards its active events to a
// few random peers (the fanout); events age out after a fixed number of
// rounds. Delivery is probabilistic: with adequate fanout and rounds the
// protocol delivers to almost all members with high probability, at a
// per-node cost independent of group size.
//
// With an Interest function installed, rumor fanout is biased toward
// peers the routing plane marks interested: each round an event goes to
// up to fanout interested peers plus GossipRandomEdges uniformly random
// peers (the anti-entropy floor that keeps rumors crossing interest
// boundaries and reaching peers whose interest the local view has not
// learned yet). An unevaluable payload fails open to the plain uniform
// fanout. Interest is computed once when the event enters the buffer,
// not per round.
type Gossip struct {
	mux    *Mux
	stream string
	self   string
	opts   Options

	queue *deliveryQueue
	lc    *lifecycle

	members membership

	mu       sync.Mutex
	rng      *rand.Rand
	interest Interest
	observer PruneObserver
	seen     map[string]bool         // event IDs ever seen (dedup)
	active   map[string]*gossipEvent // events still being relayed
}

// Interest maps an event payload to the peers with a matching
// subscriber. ok=false means the payload could not be evaluated; the
// event falls back to uniform random fanout (fail-open).
type Interest func(payload []byte) ([]string, bool)

// gossipEvent is a buffered event with remaining rounds-to-live.
// interested is nil when no interest information is available (no
// Interest function, or it failed open); then rounds use the plain
// uniform fanout.
type gossipEvent struct {
	origin     string
	rounds     int
	payload    []byte
	interested map[string]bool
}

var _ Group = (*Gossip)(nil)

// NewGossip creates a gossip group on the given stream.
func NewGossip(mux *Mux, stream string, deliver Deliver, opts Options) *Gossip {
	opts = opts.withDefaults()
	g := &Gossip{
		mux:    mux,
		stream: stream,
		self:   mux.Addr(),
		opts:   opts,
		queue:  newDeliveryQueue(deliver),
		lc:     newLifecycle(),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		seen:   make(map[string]bool),
		active: make(map[string]*gossipEvent),
	}
	mux.Handle(stream, g.onMessage)
	g.lc.goTick(opts.GossipPeriod, g.round)
	return g
}

// SetMembers implements Group.
func (g *Gossip) SetMembers(members []string) { g.members.set(members) }

// SetInterest installs the interest function biasing rumor fanout.
func (g *Gossip) SetInterest(fn Interest) {
	g.mu.Lock()
	g.interest = fn
	g.mu.Unlock()
}

// SetPruneObserver installs the pruning-counters sink.
func (g *Gossip) SetPruneObserver(obs PruneObserver) {
	g.mu.Lock()
	g.observer = obs
	g.mu.Unlock()
}

// Broadcast implements Group: the event is delivered locally and enters
// the gossip buffer; dissemination happens over subsequent rounds.
func (g *Gossip) Broadcast(payload []byte) error {
	if g.lc.closed() {
		return fmt.Errorf("multicast: gossip %s: closed", g.stream)
	}
	id := codec.NewID()
	interested := g.computeInterest(payload)
	g.mu.Lock()
	g.seen[id] = true
	g.active[id] = &gossipEvent{origin: g.self, rounds: g.opts.GossipRounds, payload: payload, interested: interested}
	g.mu.Unlock()
	g.queue.push(g.self, payload)
	return nil
}

// computeInterest evaluates the interest function outside the gossip
// lock (it typically decodes the payload and consults the routing
// table). nil means no information: uniform fanout.
func (g *Gossip) computeInterest(payload []byte) map[string]bool {
	g.mu.Lock()
	fn := g.interest
	g.mu.Unlock()
	if fn == nil {
		return nil
	}
	dests, ok := fn(payload)
	if !ok {
		return nil
	}
	set := make(map[string]bool, len(dests))
	for _, d := range dests {
		set[d] = true
	}
	return set
}

// Close implements Group.
func (g *Gossip) Close() error {
	g.mux.Unhandle(g.stream)
	g.lc.close()
	g.queue.close()
	return nil
}

// round performs one gossip round: pick each active event's target peers
// (interest-biased when interest information is available, uniformly
// random otherwise), batch events per peer, send, then age the events.
func (g *Gossip) round() {
	others := g.members.others(g.self)
	if len(others) == 0 {
		return
	}

	g.mu.Lock()
	perPeer := make(map[string][]*message)
	var pruned uint64
	for id, ev := range g.active {
		targets := g.targetsLocked(ev, others)
		if ev.interested != nil {
			baseline := g.opts.GossipFanout
			if len(others) < baseline {
				baseline = len(others)
			}
			if len(targets) < baseline {
				pruned += uint64(baseline - len(targets))
			}
		}
		m := &message{
			Kind:    kindGossip,
			Origin:  ev.origin,
			ID:      id,
			Rounds:  uint8(ev.rounds),
			Payload: ev.payload,
		}
		for _, peer := range targets {
			perPeer[peer] = append(perPeer[peer], m)
		}
		ev.rounds--
		if ev.rounds <= 0 {
			delete(g.active, id) // infect-and-die: stop relaying
		}
	}
	obs := g.observer
	g.mu.Unlock()

	if obs != nil && pruned > 0 {
		obs(pruned, 0)
	}
	for peer, batch := range perPeer {
		wire, err := encodeBatch(batch)
		if err != nil {
			continue
		}
		_ = g.mux.Send(peer, g.stream, wire)
	}
}

// targetsLocked selects one event's target peers for this round. With no
// interest information: up to fanout uniformly random peers. With
// interest information: up to fanout interested peers plus up to
// GossipRandomEdges random peers not already picked. Caller holds g.mu.
func (g *Gossip) targetsLocked(ev *gossipEvent, others []string) []string {
	if ev.interested == nil {
		return g.pickLocked(others, g.opts.GossipFanout, nil)
	}
	interested := make([]string, 0, len(others))
	for _, p := range others {
		if ev.interested[p] {
			interested = append(interested, p)
		}
	}
	targets := g.pickLocked(interested, g.opts.GossipFanout, nil)
	if g.opts.GossipRandomEdges > 0 {
		taken := make(map[string]bool, len(targets))
		for _, p := range targets {
			taken[p] = true
		}
		targets = append(targets, g.pickLocked(others, g.opts.GossipRandomEdges, taken)...)
	}
	return targets
}

// pickLocked returns up to n random members of pool not in exclude. The
// result is always freshly allocated. Caller holds g.mu.
func (g *Gossip) pickLocked(pool []string, n int, exclude map[string]bool) []string {
	candidates := make([]string, 0, len(pool))
	for _, p := range pool {
		if !exclude[p] {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) > n {
		g.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		candidates = candidates[:n]
	}
	return candidates
}

func (g *Gossip) onMessage(_ string, data []byte) {
	batch, err := decodeBatch(data)
	if err != nil {
		return
	}
	for _, m := range batch {
		if m.Kind != kindGossip {
			continue
		}
		g.mu.Lock()
		if g.seen[m.ID] {
			g.mu.Unlock()
			continue
		}
		g.seen[m.ID] = true
		rounds := int(m.Rounds) - 1
		g.mu.Unlock()
		if rounds > 0 {
			interested := g.computeInterest(m.Payload)
			g.mu.Lock()
			g.active[m.ID] = &gossipEvent{origin: m.Origin, rounds: rounds, payload: m.Payload, interested: interested}
			g.mu.Unlock()
		}
		g.queue.push(m.Origin, m.Payload)
	}
}

// encodeBatch frames a slice of messages as [count u16] ([len u32][msg])*.
func encodeBatch(batch []*message) ([]byte, error) {
	if len(batch) > 0xFFFF {
		return nil, fmt.Errorf("multicast: gossip batch too large (%d)", len(batch))
	}
	out := binary.BigEndian.AppendUint16(nil, uint16(len(batch)))
	for _, m := range batch {
		wire, err := encodeMessage(m)
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(wire)))
		out = append(out, wire...)
	}
	return out, nil
}

// decodeBatch parses a gossip batch.
func decodeBatch(data []byte) ([]*message, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("multicast: short gossip batch")
	}
	count := int(binary.BigEndian.Uint16(data[:2]))
	off := 2
	out := make([]*message, 0, count)
	for i := 0; i < count; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("multicast: truncated gossip batch")
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+n > len(data) {
			return nil, fmt.Errorf("multicast: truncated gossip event")
		}
		m, err := decodeMessage(data[off : off+n])
		if err != nil {
			return nil, err
		}
		off += n
		out = append(out, m)
	}
	return out, nil
}
