// Package telemetry is the engine's observability plane: lock-free
// log-bucketed latency histograms recording per-stage timings across the
// delivery pipeline, queue-occupancy gauges sampled on drain, a
// drop-reason counter map, and a sampled structured event-trace hook.
//
// Everything here is built for the hot path. Recording a latency is a
// handful of atomic adds with zero allocations (pinned by benchmark and
// an allocs/op test); the disabled trace path is a single atomic load;
// a fully disabled plane costs one atomic bool load per stage probe.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the histogram resolution: bucket i holds durations whose
// nanosecond value has bit length i, i.e. [2^(i-1), 2^i) ns, so 64
// buckets cover every representable duration (bucket 0 is exactly 0).
const numBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two bucket
// boundaries (the HDR-style log bucketing): Record is wait-free — three
// unconditional atomic adds plus a CAS loop for the max — and Snapshot
// is a consistent-enough racing read (each counter individually exact;
// cross-counter skew is bounded by in-flight records, which is the usual
// contract for streaming histograms).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf maps a nanosecond latency to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// BucketBound returns the inclusive upper bound, in nanoseconds, of
// bucket i (2^i - 1... the largest value with bit length i). Bucket 0's
// bound is 0.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return (int64(1) << i) - 1
}

// Record adds one latency observation. Negative durations (clock skew on
// cross-node stages) clamp to zero rather than corrupting a bucket.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.max.Load()
		if uint64(ns) <= cur || h.max.CompareAndSwap(cur, uint64(ns)) {
			return
		}
	}
}

// Snapshot copies the histogram's counters into an immutable value.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of one histogram (or a merge of
// several shards of the same stage). Count/Sum/Max are in nanoseconds.
type Snapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [numBuckets]uint64
}

// Merge folds another snapshot into s (sharded histograms of one stage
// combine losslessly: bucket boundaries are identical by construction).
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket containing the q*Count-th observation, clamped to Max — the
// standard conservative estimate for log-bucketed histograms (at most
// one power of two above the true value). Returns 0 for an empty
// snapshot.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen >= rank {
			bound := BucketBound(i)
			if uint64(bound) > s.Max {
				bound = int64(s.Max)
			}
			return time.Duration(bound)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the arithmetic mean latency, exact (Sum/Count are exact
// even though the buckets are logarithmic).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
