package telemetry

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// oracle is the mutex-guarded reference implementation the lock-free
// histogram is checked against.
type oracle struct {
	mu      sync.Mutex
	count   uint64
	sum     uint64
	max     uint64
	buckets [numBuckets]uint64
}

func (o *oracle) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	o.mu.Lock()
	o.count++
	o.sum += uint64(ns)
	o.buckets[bucketOf(ns)]++
	if uint64(ns) > o.max {
		o.max = uint64(ns)
	}
	o.mu.Unlock()
}

func TestHistogramConcurrentVsOracle(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
	)
	var h Histogram
	var o oracle
	var wg sync.WaitGroup
	// Snapshot concurrently with recording: values must stay internally
	// sane (no torn counters, monotone counts) even mid-stream.
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d < %d", s.Count, last)
				return
			}
			last = s.Count
			// Busy-spinning would starve the recorders on a single-CPU
			// box; the test is about concurrent correctness, not spin
			// throughput.
			runtime.Gosched()
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				ns := rng.Int63n(1 << 40)
				if i%97 == 0 {
					ns = -ns // skew clamp path
				}
				h.Record(ns)
				o.record(ns)
			}
		}(int64(g + 1))
	}
	// Recorders finish first; then stop the snapshotter so the final
	// snapshot is quiescent and must match the oracle exactly.
	wg.Wait()
	close(stop)
	<-snapDone

	s := h.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	if s.Count != o.count || s.Sum != o.sum || s.Max != o.max {
		t.Fatalf("snapshot mismatch: got count=%d sum=%d max=%d, want count=%d sum=%d max=%d",
			s.Count, s.Sum, s.Max, o.count, o.sum, o.max)
	}
	for i := range s.Buckets {
		if s.Buckets[i] != o.buckets[i] {
			t.Fatalf("bucket %d: got %d want %d", i, s.Buckets[i], o.buckets[i])
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	vals := []int64{0, 1, 2, 3, 1000, 1 << 20, 1<<40 + 7}
	for i, v := range vals {
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())

	var whole Histogram
	for _, v := range vals {
		whole.Record(v)
	}
	want := whole.Snapshot()
	if merged != want {
		t.Fatalf("merge mismatch:\n got  %+v\n want %+v", merged, want)
	}
}

// TestBucketBoundary checks the bucket invariant for every boundary:
// each value lands in the bucket whose bound range contains it, and
// BucketBound(i) is the largest value mapping to bucket i.
func TestBucketBoundary(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", got)
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("bucketOf(-5) = %d, want 0", got)
	}
	for i := 1; i < 63; i++ {
		lo := int64(1) << (i - 1) // smallest value with bit length i
		hi := BucketBound(i)      // largest
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(2^%d=%d) = %d, want %d", i-1, lo, got, i)
		}
		if got := bucketOf(hi); got != i {
			t.Fatalf("bucketOf(BucketBound(%d)=%d) = %d, want %d", i, hi, got, i)
		}
		if got := bucketOf(hi + 1); got != i+1 {
			t.Fatalf("bucketOf(%d) = %d, want %d", hi+1, got, i+1)
		}
		if hi != lo*2-1 {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, hi, lo*2-1)
		}
	}
	maxNS := int64(^uint64(0) >> 1)
	if got := bucketOf(maxNS); got != 63 {
		t.Fatalf("bucketOf(MaxInt64) = %d, want 63", got)
	}
	if BucketBound(63) != maxNS {
		t.Fatalf("BucketBound(63) = %d, want MaxInt64", BucketBound(63))
	}
}

// TestBucketProperty fuzzes random values against the containment
// invariant lo <= v <= BucketBound(bucketOf(v)) with lo = bound/2+1.
func TestBucketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		v := rng.Int63()
		b := bucketOf(v)
		hi := BucketBound(b)
		var lo int64
		if b > 0 {
			lo = int64(1) << (b - 1)
		}
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d range [%d, %d]", v, b, lo, hi)
		}
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// 100 observations at exactly 1000ns: every quantile is the bucket
	// bound clamped to Max = 1000.
	for i := 0; i < 100; i++ {
		h.Record(1000)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if got := s.Quantile(q); got != 1000*time.Nanosecond {
			t.Fatalf("Quantile(%v) = %v, want 1µs", q, got)
		}
	}
	if s.Mean() != 1000*time.Nanosecond {
		t.Fatalf("Mean = %v, want 1µs", s.Mean())
	}
	// Bimodal: 90 fast (100ns) + 10 slow (1ms). p50 must report the
	// fast bucket, p99 the slow one.
	var h2 Histogram
	for i := 0; i < 90; i++ {
		h2.Record(100)
	}
	for i := 0; i < 10; i++ {
		h2.Record(1_000_000)
	}
	s2 := h2.Snapshot()
	if p50 := s2.Quantile(0.5); p50 > time.Microsecond {
		t.Fatalf("p50 = %v, want <= 1µs (fast mode)", p50)
	}
	if p99 := s2.Quantile(0.99); p99 < 500*time.Microsecond {
		t.Fatalf("p99 = %v, want >= 500µs (slow mode)", p99)
	}
}

// TestRecordAllocs pins the zero-allocation contract of the record path
// and of the plane's stage probe.
func TestRecordAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %v per op, want 0", n)
	}
	p := NewPlane()
	if n := testing.AllocsPerRun(1000, func() { p.Record(3, StageDispatch, 777) }); n != 0 {
		t.Fatalf("Plane.Record allocates %v per op, want 0", n)
	}
	p.SetEnabled(false)
	if n := testing.AllocsPerRun(1000, func() { p.Record(3, StageDispatch, 777) }); n != 0 {
		t.Fatalf("disabled Plane.Record allocates %v per op, want 0", n)
	}
	var nilPlane *Plane
	if n := testing.AllocsPerRun(1000, func() { nilPlane.Record(3, StageDispatch, 777) }); n != 0 {
		t.Fatalf("nil Plane.Record allocates %v per op, want 0", n)
	}
}

func TestPlaneShardingAndSnapshot(t *testing.T) {
	p := NewPlane()
	for i := 0; i < 64; i++ {
		p.Record(uint32(i), StageDispatch, int64(1000+i))
	}
	s := p.StageSnapshot(StageDispatch)
	if s.Count != 64 {
		t.Fatalf("merged count = %d, want 64", s.Count)
	}
	hs := p.Histograms()
	if hs["dispatch"].Count != 64 {
		t.Fatalf("Histograms()[dispatch].Count = %d, want 64", hs["dispatch"].Count)
	}
	if hs["e2e"].Count != 0 {
		t.Fatalf("Histograms()[e2e].Count = %d, want 0", hs["e2e"].Count)
	}
	if len(hs) != int(numStages) {
		t.Fatalf("Histograms() has %d stages, want %d", len(hs), numStages)
	}
}

func TestPlaneDisabled(t *testing.T) {
	p := NewPlane()
	p.SetEnabled(false)
	p.Record(0, StageE2E, 500)
	if s := p.StageSnapshot(StageE2E); s.Count != 0 {
		t.Fatalf("disabled plane recorded %d observations", s.Count)
	}
	var nilPlane *Plane
	nilPlane.Record(0, StageE2E, 500) // must not panic
	nilPlane.Drop(ReasonExpired)
	nilPlane.Trace("id", "class", StageE2E, 1, OutcomeDelivered)
	nilPlane.SampleQueue(0, 10)
	if m := nilPlane.DroppedByReason(); len(m) != 0 {
		t.Fatalf("nil plane DroppedByReason = %v", m)
	}
	if nilPlane.Enabled() || nilPlane.TraceEnabled() {
		t.Fatal("nil plane reports enabled")
	}
}

func TestDropCounters(t *testing.T) {
	p := NewPlane()
	p.Drop(ReasonExpired)
	p.Drop(ReasonExpired)
	p.Drop(ReasonHandlerPanic)
	m := p.DroppedByReason()
	if m["expired"] != 2 || m["handler_panic"] != 1 || m["decode_error"] != 0 {
		t.Fatalf("DroppedByReason = %v", m)
	}
}

func TestTraceSamplingAndFailureBypass(t *testing.T) {
	p := NewPlane()
	p.SetNode("n1")
	var mu sync.Mutex
	var got []TraceEvent
	p.SetTraceHook(func(ev TraceEvent) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}, 10)
	if !p.TraceEnabled() {
		t.Fatal("TraceEnabled = false after SetTraceHook")
	}
	for i := 0; i < 100; i++ {
		p.Trace("ev", "demo.Quote", StageDispatch, 100, OutcomeDelivered)
	}
	// Failure outcomes bypass sampling entirely.
	for i := 0; i < 5; i++ {
		p.Trace("ev", "demo.Quote", StageDispatch, 0, ReasonExpired.String())
	}
	mu.Lock()
	defer mu.Unlock()
	var delivered, expired int
	for _, ev := range got {
		switch ev.Outcome {
		case OutcomeDelivered:
			delivered++
		case "expired":
			expired++
		}
		if ev.Node != "n1" || ev.Stage != "dispatch" {
			t.Fatalf("bad event %+v", ev)
		}
	}
	if delivered != 10 {
		t.Fatalf("sampled %d delivered spans of 100 at 1-in-10, want 10", delivered)
	}
	if expired != 5 {
		t.Fatalf("got %d expired spans, want all 5 (failures bypass sampling)", expired)
	}
	p.SetTraceHook(nil, 0)
	if p.TraceEnabled() {
		t.Fatal("TraceEnabled = true after removing hook")
	}
}

func TestLaneGauges(t *testing.T) {
	p := NewPlane()
	p.SetLanes(3)
	p.SampleQueue(0, 5)
	p.SampleQueue(0, 2)
	p.SampleQueue(2, 9)
	occ := p.LaneOccupancies()
	if len(occ) != 3 {
		t.Fatalf("len(occ) = %d, want 3", len(occ))
	}
	if occ[0].Lane != -1 || occ[0].Depth != 2 || occ[0].HighWater != 5 {
		t.Fatalf("serial gauge = %+v", occ[0])
	}
	if occ[2].Lane != 1 || occ[2].Depth != 9 || occ[2].HighWater != 9 {
		t.Fatalf("lane 1 gauge = %+v", occ[2])
	}
	p.SampleQueue(7, 1) // out of range: ignored
}

func TestNowMonotone(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("Now not increasing: %d then %d", a, b)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkPlaneRecord(b *testing.B) {
	p := NewPlane()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Record(uint32(i), StageDispatch, int64(i))
	}
}

func BenchmarkPlaneRecordDisabled(b *testing.B) {
	p := NewPlane()
	p.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Record(uint32(i), StageDispatch, int64(i))
	}
}
