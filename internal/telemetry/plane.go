package telemetry

import (
	"sync/atomic"
	"time"
)

// Stage identifies one timed segment of the delivery pipeline. The
// histogram names exported on /metrics and by Domain.Histograms use the
// String form.
type Stage int

const (
	// StagePublishRoute: Disseminator.PublishEnvelope entry to the
	// moment the destination set (or broadcast frame) is resolved —
	// routing-plane evaluation plus payload framing.
	StagePublishRoute Stage = iota
	// StageRouteWrite: destinations resolved to the transport write
	// handed off (Broadcast/BroadcastTo/BroadcastSplit returned).
	StageRouteWrite
	// StageWireLane: inbound frame arrival (envelope unmarshal started)
	// to the envelope enqueued on its dispatch lane.
	StageWireLane
	// StageLaneWait: lane enqueue to lane dequeue — the queueing delay
	// that grows under overload.
	StageLaneWait
	// StageDispatch: lane dequeue to handler return — matching, cloning
	// and handler execution.
	StageDispatch
	// StageE2E: publish (the envelope's publish timestamp, stamped at
	// encode) to handler return, across nodes — wall-clock, so
	// cross-node values include clock offset.
	StageE2E

	numStages
)

// stageNames are the exported histogram names, index-aligned with the
// Stage constants.
var stageNames = [numStages]string{
	"publish_to_route",
	"route_to_write",
	"wire_to_lane",
	"lane_wait",
	"dispatch",
	"e2e",
}

// String returns the stage's histogram name.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage, in export order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Reason classifies a dropped (or failed) delivery for the
// DroppedByReason counter map and the trace outcome field.
type Reason int

const (
	// ReasonExpired: a timely envelope was obsolete at dispatch.
	ReasonExpired Reason = iota
	// ReasonDecodeError: the envelope or a clone failed to decode.
	ReasonDecodeError
	// ReasonHandlerPanic: the application handler panicked (the clone
	// was consumed, but the delivery did not complete).
	ReasonHandlerPanic
	// ReasonExecutorClosed: the subscription's executor was already
	// closed when the clone was submitted (shutdown race).
	ReasonExecutorClosed
	// ReasonOverloadShed: a bounded dispatch lane at capacity shed an
	// envelope under the DropOldest overload policy (or degraded to
	// shedding after a spill-log failure).
	ReasonOverloadShed
	// ReasonSlowConsumer: a quarantined slow consumer's bounded mailbox
	// overflowed; the delivery was dropped for that subscription only.
	ReasonSlowConsumer

	numReasons
)

var reasonNames = [numReasons]string{
	"expired",
	"decode_error",
	"handler_panic",
	"executor_closed",
	"overload_shed",
	"slow_consumer",
}

// String returns the reason's counter-map key.
func (r Reason) String() string {
	if r < 0 || r >= numReasons {
		return "unknown"
	}
	return reasonNames[r]
}

// OutcomeDelivered is the trace outcome of a completed delivery; failed
// outcomes use the Reason names.
const OutcomeDelivered = "delivered"

// TraceEvent is one structured span record handed to the trace hook.
type TraceEvent struct {
	// EventID is the publication ID (shared by every delivery of one
	// publish; clones are distinct objects but trace as one event).
	EventID string
	// Class is the obvent's wire type name.
	Class string
	// Node is the observing domain member (SetNode).
	Node string
	// Stage names the pipeline segment the span covers.
	Stage string
	// Duration is the span length; zero when the outcome made the
	// segment unmeasurable (e.g. a decode error before any timing).
	Duration time.Duration
	// Outcome is OutcomeDelivered or a Reason name
	// (expired/decode_error/handler_panic/executor_closed).
	Outcome string
}

// traceCfg is the installed hook; swapped atomically so the disabled
// path is exactly one pointer load.
type traceCfg struct {
	hook  func(TraceEvent)
	every uint64 // sample 1 of every N delivered-outcome spans
	n     atomic.Uint64
}

// numShards spreads recording across shards to keep concurrent
// recorders (lanes, publisher goroutines, executor goroutines) off each
// other's cache lines. Power of two; shard keys are masked.
const numShards = 16

// laneGauge is one lane's occupancy gauge, sampled on drain.
type laneGauge struct {
	depth atomic.Int64 // last sampled backlog
	high  atomic.Int64 // high-water backlog
}

// LaneOccupancy is the exported form of one lane's queue gauge.
type LaneOccupancy struct {
	// Lane is the parallel lane index; -1 is the serial lane.
	Lane int
	// Depth is the backlog at the last drain sample.
	Depth int
	// HighWater is the largest sampled backlog.
	HighWater int
}

// Plane is one domain's telemetry state. All methods are safe for
// concurrent use and safe on a nil receiver (a nil plane is fully
// disabled at zero cost beyond the nil check).
type Plane struct {
	node atomic.Pointer[string]
	on   atomic.Bool

	trace atomic.Pointer[traceCfg]

	drops  [numReasons]atomic.Uint64
	shards [numShards]struct {
		h [numStages]Histogram
	}

	// gauges is sized by SetLanes before traffic flows (engine
	// construction); index 0 is the serial lane, 1..n the parallel ones.
	gauges atomic.Pointer[[]laneGauge]
}

// NewPlane returns an enabled plane.
func NewPlane() *Plane {
	p := &Plane{}
	p.on.Store(true)
	return p
}

// SetEnabled toggles histogram and gauge recording. The trace hook is
// governed independently by SetTraceHook.
func (p *Plane) SetEnabled(on bool) {
	if p != nil {
		p.on.Store(on)
	}
}

// Enabled reports whether timing probes should run. Call sites guard
// their time.Now/Now() reads with this so a disabled plane costs one
// atomic load per probe.
func (p *Plane) Enabled() bool {
	return p != nil && p.on.Load()
}

// SetNode names the observing domain member in trace events.
func (p *Plane) SetNode(node string) {
	if p != nil {
		p.node.Store(&node)
	}
}

// Node returns the observing member's name.
func (p *Plane) Node() string {
	if p == nil {
		return ""
	}
	if n := p.node.Load(); n != nil {
		return *n
	}
	return ""
}

// Record adds one observation to a stage histogram. shard spreads
// contention: lanes pass their lane index, concurrent publisher and
// executor paths pass any cheap per-event value (masked internally).
// ns may be a duration in nanoseconds; negative values clamp to 0.
func (p *Plane) Record(shard uint32, st Stage, ns int64) {
	if p == nil || !p.on.Load() {
		return
	}
	p.shards[shard&(numShards-1)].h[st].Record(ns)
}

// Drop counts one dropped delivery by reason.
func (p *Plane) Drop(r Reason) {
	if p == nil || r < 0 || r >= numReasons {
		return
	}
	p.drops[r].Add(1)
}

// DroppedByReason snapshots the drop counters as a reason -> count map.
func (p *Plane) DroppedByReason() map[string]uint64 {
	out := make(map[string]uint64, numReasons)
	if p == nil {
		return out
	}
	for i := range p.drops {
		out[Reason(i).String()] = p.drops[i].Load()
	}
	return out
}

// SetLanes sizes the lane-occupancy gauge array: n is the total lane
// count including the serial lane. Call before traffic flows.
func (p *Plane) SetLanes(n int) {
	if p == nil || n <= 0 {
		return
	}
	g := make([]laneGauge, n)
	p.gauges.Store(&g)
}

// SampleQueue records a lane's backlog observed on drain. lane is the
// gauge index (0 = serial, 1..n = parallel lane i-1).
func (p *Plane) SampleQueue(lane, depth int) {
	if p == nil || !p.on.Load() {
		return
	}
	gp := p.gauges.Load()
	if gp == nil || lane < 0 || lane >= len(*gp) {
		return
	}
	g := &(*gp)[lane]
	g.depth.Store(int64(depth))
	for {
		cur := g.high.Load()
		if int64(depth) <= cur || g.high.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// LaneOccupancies snapshots the per-lane queue gauges, serial lane
// first (Lane -1), matching Engine.LaneStats order.
func (p *Plane) LaneOccupancies() []LaneOccupancy {
	if p == nil {
		return nil
	}
	gp := p.gauges.Load()
	if gp == nil {
		return nil
	}
	out := make([]LaneOccupancy, len(*gp))
	for i := range *gp {
		g := &(*gp)[i]
		out[i] = LaneOccupancy{Lane: i - 1, Depth: int(g.depth.Load()), HighWater: int(g.high.Load())}
	}
	return out
}

// SetTraceHook installs (or, with a nil hook, removes) the event-trace
// hook. every samples delivered-outcome spans 1-in-N (values < 1 mean
// every span); failure outcomes (expired, decode errors, panics,
// closed executors) always fire, so sampling never hides a drop.
func (p *Plane) SetTraceHook(hook func(TraceEvent), every int) {
	if p == nil {
		return
	}
	if hook == nil {
		p.trace.Store(nil)
		return
	}
	if every < 1 {
		every = 1
	}
	p.trace.Store(&traceCfg{hook: hook, every: uint64(every)})
}

// TraceEnabled reports whether a trace hook is installed — one atomic
// load, the entire cost of the disabled path.
func (p *Plane) TraceEnabled() bool {
	return p != nil && p.trace.Load() != nil
}

// Trace emits one span record through the hook, applying the sample
// rate to delivered outcomes. The disabled path is one atomic load.
func (p *Plane) Trace(eventID, class string, st Stage, ns int64, outcome string) {
	if p == nil {
		return
	}
	cfg := p.trace.Load()
	if cfg == nil {
		return
	}
	if outcome == OutcomeDelivered && cfg.every > 1 && cfg.n.Add(1)%cfg.every != 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	cfg.hook(TraceEvent{
		EventID:  eventID,
		Class:    class,
		Node:     p.Node(),
		Stage:    st.String(),
		Duration: time.Duration(ns),
		Outcome:  outcome,
	})
}

// Histograms merges every shard and returns one snapshot per stage,
// keyed by stage name.
func (p *Plane) Histograms() map[string]Snapshot {
	out := make(map[string]Snapshot, numStages)
	if p == nil {
		return out
	}
	for st := Stage(0); st < numStages; st++ {
		var merged Snapshot
		for i := range p.shards {
			merged.Merge(p.shards[i].h[st].Snapshot())
		}
		out[st.String()] = merged
	}
	return out
}

// StageSnapshot merges every shard of one stage.
func (p *Plane) StageSnapshot(st Stage) Snapshot {
	var merged Snapshot
	if p == nil || st < 0 || st >= numStages {
		return merged
	}
	for i := range p.shards {
		merged.Merge(p.shards[i].h[st].Snapshot())
	}
	return merged
}

// base anchors the process-local monotonic clock; Now is a duration
// since base, so subtraction of two Now values is skew-free.
var base = time.Now()

// Now returns the monotonic process clock in nanoseconds. It is the
// timestamp all single-node stages use; cross-node (e2e) timing uses
// wall-clock UnixNano carried in the envelope.
func Now() int64 { return int64(time.Since(base)) }
