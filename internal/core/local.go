package core

import (
	"sync"

	"govents/internal/codec"
)

// Local is the in-process dissemination substrate: publications loop
// back to the local engine only. It preserves publication order (a
// serial queue), which trivially satisfies every ordering semantics
// within a single process, and is the substrate of choice for
// single-process applications and tests. Distributed dissemination is
// provided by package dace.
type Local struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*codec.Envelope
	sink   func(*codec.Envelope)
	closed bool
	wg     sync.WaitGroup
}

var _ Disseminator = (*Local)(nil)

// NewLocal returns a loopback disseminator.
func NewLocal() *Local {
	l := &Local{}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.loop()
	return l
}

// SetSink implements Disseminator.
func (l *Local) SetSink(sink func(*codec.Envelope)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = sink
}

// PublishEnvelope implements Disseminator.
func (l *Local) PublishEnvelope(env *codec.Envelope) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrEngineClosed
	}
	l.queue = append(l.queue, env)
	l.cond.Signal()
	return nil
}

// SubscriptionChanged implements Disseminator; the loopback has no
// remote parties to advertise to.
func (l *Local) SubscriptionChanged([]SubscriptionInfo) error { return nil }

// Close implements Disseminator.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	l.wg.Wait()
	return nil
}

func (l *Local) loop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		env := l.queue[0]
		l.queue = l.queue[1:]
		sink := l.sink
		l.mu.Unlock()
		if sink != nil {
			sink(env)
		}
	}
}
