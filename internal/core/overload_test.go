package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/codec"
	"govents/internal/obvent"
)

// This file pins the overload-resilience contract of the lane layer:
// bounded queues with the three overload policies, whole-publisher
// work-stealing, and slow-consumer quarantine. The property stress test
// runs the full engine against an unbounded naive oracle; the rest are
// deterministic lane- and executor-level tests for each mechanism.

// TestOverloadPropertyStress is the overload property test (run under
// -race in CI): a hot publisher bursts into a bounded engine with a
// deliberately wedged consumer, concurrently with ordered traffic from
// several normal publishers. For every policy the ordering contracts
// must survive (per-publisher FIFO, Causal/Total serial order); under
// the lossless policies (Block, Spill) the non-wedged subscriptions
// must reach exactly the oracle's delivery set; and the wedged handler
// must never block the other subscriptions' deliveries — which are all
// asserted complete while the wedge is still held.
func TestOverloadPropertyStress(t *testing.T) {
	const (
		nPubs   = 4
		nEvents = 90
		bound   = 32
		budget  = 20 * time.Millisecond
		mailbox = 64
	)
	cases := []struct {
		name     string
		policy   OverloadPolicy
		lossless bool
	}{
		{"block", OverloadBlock, true},
		{"drop-oldest", OverloadDropOldest, false},
		{"spill", OverloadSpill, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obvent.NewRegistry()
			registerTickTypes(reg)

			opts := []Option{
				WithRegistry(reg), WithDispatchLanes(4),
				WithLaneQueueBound(bound), WithOverloadPolicy(tc.policy),
				WithSlowConsumerBudget(budget, mailbox),
			}
			if tc.policy == OverloadSpill {
				opts = append(opts, WithSpillDir(t.TempDir()))
			}
			bounded := NewEngine("bounded", NewLocal(), opts...)
			t.Cleanup(func() { _ = bounded.Close() })
			oracle := NewEngine("oracle", NewLocal(), WithRegistry(reg),
				WithNaiveDispatch(), WithDispatchLanes(1))
			t.Cleanup(func() { _ = oracle.Close() })

			mustActivate := func(sub *Subscription, err error) *Subscription {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				if err := sub.Activate(); err != nil {
					t.Fatal(err)
				}
				return sub
			}

			// The wedged consumer: single-threaded, every delivery blocks
			// until release. It must quarantine, shed into its own
			// accounting, and never slow anyone else down.
			release := make(chan struct{})
			var wedgeHeld atomic.Int64
			wedged := mustActivate(Subscribe(bounded, nil, func(o freeTick) {
				wedgeHeld.Add(1)
				<-release
			}))
			wedged.SetSingleThreading()

			// Delivery logs. The slow local filters (bounded engine only)
			// throttle the dispatch lanes so the burst genuinely overloads
			// the bounded queues; the oracle's filters pass instantly.
			// Delivery sets are keyed (subscription, publisher, N).
			type key struct {
				sub string
				pub string
				n   int
			}
			type rec struct {
				pub string
				n   int
			}
			var mu sync.Mutex
			sets := map[string]map[key]int{"bounded": {}, "oracle": {}}
			logs := map[string][]rec{} // ordered logs, bounded engine only
			counts := map[string]*atomic.Int64{"bounded": {}, "oracle": {}}
			collectFree := func(which, sub string, slow bool) func(freeTick) bool {
				return func(o freeTick) bool {
					if slow {
						time.Sleep(50 * time.Microsecond)
					}
					mu.Lock()
					sets[which][key{sub, o.Pub, o.N}]++
					mu.Unlock()
					counts[which].Add(1)
					return true
				}
			}
			appendLog := func(which, kind string, slow bool) func(pub string, n int) {
				return func(pub string, n int) {
					if slow {
						time.Sleep(50 * time.Microsecond)
					}
					mu.Lock()
					logs[kind] = append(logs[kind], rec{pub, n})
					mu.Unlock()
					counts[which].Add(1)
				}
			}
			// Bounded engine: a plain collector riding a slow local filter
			// (dispatch-lane work, so lanes actually back up), plus ordered
			// collectors. SubscribeFiltered's local predicate runs on the
			// lane goroutine, which is what makes the lanes saturate.
			mustActivate(SubscribeFiltered(bounded, nil,
				collectFree("bounded", "plain", true), func(freeTick) {}))
			fifoLog := appendLog("bounded", "fifo", false)
			mustActivate(Subscribe(bounded, nil, func(o fifoTick) { fifoLog(o.Pub, o.N) }))
			causalLog := appendLog("bounded", "causal", true)
			mustActivate(SubscribeFiltered(bounded, nil,
				func(o causalTick) bool { time.Sleep(50 * time.Microsecond); return true },
				func(o causalTick) { causalLog(o.Pub, o.N) }))
			totalLog := appendLog("bounded", "total", false)
			mustActivate(Subscribe(bounded, nil, func(o totalTick) { totalLog(o.Pub, o.N) }))

			// Oracle mirrors of the free set (the ordered contracts are
			// checked directly on the bounded log; the free delivery set is
			// compared against the oracle's).
			mustActivate(SubscribeFiltered(oracle, nil,
				collectFree("oracle", "plain", false), func(freeTick) {}))
			oracleOrdered := func(pub string, n int) { counts["oracle"].Add(1) }
			mustActivate(Subscribe(oracle, nil, func(o fifoTick) { oracleOrdered(o.Pub, o.N) }))
			mustActivate(Subscribe(oracle, nil, func(o causalTick) { oracleOrdered(o.Pub, o.N) }))
			mustActivate(Subscribe(oracle, nil, func(o totalTick) { oracleOrdered(o.Pub, o.N) }))

			deliverBoth := func(o obvent.Obvent, pub string) {
				env, err := bounded.codec.Encode(o)
				if err != nil {
					t.Error(err)
					return
				}
				env.Publisher = pub
				bounded.deliver(env)
				oracle.deliver(env)
			}

			// Normal publishers: interleaved free + ordered traffic.
			var wg sync.WaitGroup
			for p := 0; p < nPubs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					pub := fmt.Sprintf("pub-%d", p)
					for n := 0; n < nEvents; n++ {
						deliverBoth(freeTick{Pub: pub, N: n}, pub)
						switch n % 3 {
						case 0:
							deliverBoth(fifoTick{Pub: pub, N: n}, pub)
						case 1:
							deliverBoth(causalTick{Pub: pub, N: n}, pub)
						default:
							deliverBoth(totalTick{Pub: pub, N: n}, pub)
						}
					}
				}(p)
			}

			// The hot publisher bursts in waves until the wedged consumer
			// has provably quarantined and overflowed its mailbox.
			var hotSent int
			wg.Add(1)
			go func() {
				defer wg.Done()
				const wave, maxWaves = 200, 60
				for w := 0; w < maxWaves; w++ {
					for i := 0; i < wave; i++ {
						deliverBoth(freeTick{Pub: "hot", N: hotSent}, "hot")
						hotSent++
					}
					st := bounded.Stats()
					if st.Quarantines >= 1 && st.SlowConsumerDrops >= 1 && w >= 4 {
						return
					}
				}
			}()
			wg.Wait()

			nFree := hotSent + nPubs*nEvents
			nOrderedEach := nPubs * nEvents / 3
			waitDrained := func(e *Engine, what string, cond func() bool) {
				t.Helper()
				deadline := time.Now().Add(60 * time.Second)
				for !cond() {
					if time.Now().After(deadline) {
						t.Fatalf("timeout waiting for %s: stats=%+v lanes=%+v",
							what, e.Stats(), e.LaneStats())
					}
					time.Sleep(time.Millisecond)
				}
			}
			// All routed traffic must leave the lanes (memory and spill)
			// no matter the policy — a wedged consumer must not wedge a
			// lane. This is asserted while the wedge is still held.
			waitDrained(bounded, "bounded lanes drained", func() bool {
				var enq uint64
				for _, l := range bounded.LaneStats() {
					enq += l.Enqueued
					if l.Queued != 0 || l.SpillBacklog != 0 {
						return false
					}
				}
				return enq+bounded.Stats().Shed >= uint64(nFree+3*nOrderedEach)
			})
			waitDrained(oracle, "oracle complete", func() bool {
				return counts["oracle"].Load() == int64(nFree+3*nOrderedEach)
			})

			if tc.lossless {
				// Lossless policies: every non-wedged subscription reaches
				// the oracle's exact delivery set — again while the wedged
				// handler is still blocked, proving isolation.
				waitDrained(bounded, "bounded deliveries complete", func() bool {
					return counts["bounded"].Load() == int64(nFree+3*nOrderedEach)
				})
				mu.Lock()
				bset, oset := sets["bounded"], sets["oracle"]
				if len(bset) != len(oset) {
					t.Errorf("delivery sets differ in size: bounded %d, oracle %d", len(bset), len(oset))
				}
				for k, n := range oset {
					if bset[k] != n {
						t.Errorf("delivery %+v: bounded %d, oracle %d", k, bset[k], n)
					}
				}
				mu.Unlock()
				if shed := bounded.Stats().Shed; shed != 0 {
					t.Errorf("lossless policy %v shed %d envelopes", tc.policy, shed)
				}
			} else {
				// DropOldest: let in-flight handlers finish, then check
				// below that what was delivered is ordered.
				time.Sleep(50 * time.Millisecond)
			}
			if tc.policy == OverloadSpill && bounded.Stats().Spilled == 0 {
				t.Error("spill policy never spilled; burst did not overload the bounded lanes")
			}
			if tc.policy == OverloadSpill {
				if st := bounded.Stats(); st.SpillDrained != st.Spilled {
					t.Errorf("spill backlog not fully drained: spilled %d, drained %d", st.Spilled, st.SpillDrained)
				}
			}

			// Ordering contracts: per-publisher delivery order must be a
			// strictly increasing subsequence of publication order for all
			// three ordered kinds, under every policy (sheds may leave
			// gaps; they must never reorder).
			mu.Lock()
			for kind, log := range logs {
				last := map[string]int{}
				for i, r := range log {
					if prev, seen := last[r.pub]; seen && r.n <= prev {
						t.Fatalf("%s: publisher %s delivered out of order at %d: %d after %d",
							kind, r.pub, i, r.n, prev)
					}
					last[r.pub] = r.n
				}
				if tc.lossless && len(log) != nOrderedEach {
					t.Errorf("%s: delivered %d, want %d", kind, len(log), nOrderedEach)
				}
			}
			mu.Unlock()

			// The wedge really was held the whole time: exactly one
			// handler invocation entered and none left.
			if got := wedgeHeld.Load(); got != 1 {
				t.Errorf("wedged handler invocations = %d, want exactly 1 (single-threaded wedge)", got)
			}
			st := bounded.Stats()
			if st.Quarantines < 1 {
				t.Errorf("Quarantines = %d, want >= 1", st.Quarantines)
			}
			if st.SlowConsumerDrops < 1 {
				t.Errorf("SlowConsumerDrops = %d, want >= 1", st.SlowConsumerDrops)
			}

			close(release)
		})
	}
}

// TestFifoLaneWorkStealing wedges one parallel lane on a blocker and
// keeps publishing a colliding publisher's envelopes at it. The idle
// sibling must wake up, steal the backlog whole-publisher batches at a
// time, and dispatch them in publication order — all while the victim
// lane is still stuck.
func TestFifoLaneWorkStealing(t *testing.T) {
	reg := obvent.NewRegistry()
	var mu sync.Mutex
	var got []int                    // stolen publisher's dispatched sequence
	states := map[*laneState]int{}   // which lane dispatched what
	blockerStarted := make(chan struct{})
	release := make(chan struct{})
	var delivered atomic.Int64
	ls := newLaneSet(reg, 2, func(env *codec.Envelope, st *laneState) {
		if env.ID == "blocker" {
			close(blockerStarted)
			<-release
			return
		}
		mu.Lock()
		got = append(got, int(env.Seq))
		states[st]++
		mu.Unlock()
		delivered.Add(1)
	}, nil, laneConfig{})
	defer func() {
		close(release)
		ls.close()
	}()

	// Two distinct publishers that hash onto the same lane.
	victimPub := "victim-pub"
	victimLane := laneIndex(victimPub, 2)
	hotPub := ""
	for i := 0; ; i++ {
		p := fmt.Sprintf("hot-%d", i)
		if laneIndex(p, 2) == victimLane {
			hotPub = p
			break
		}
	}

	ls.par[victimLane].push(&codec.Envelope{ID: "blocker"}, victimPub)
	<-blockerStarted // victim lane goroutine now wedged in dispatch

	// Keep the hot publisher producing until the thief has moved a solid
	// batch; every eighth queued envelope wakes an idle sibling.
	const want = 100
	deadline := time.Now().Add(30 * time.Second)
	for n := 0; delivered.Load() < want; n++ {
		if time.Now().After(deadline) {
			t.Fatalf("thief never drained the hot publisher: delivered %d/%d, lanes %+v",
				delivered.Load(), want, ls.laneStats())
		}
		ls.par[victimLane].push(&codec.Envelope{ID: fmt.Sprintf("hot-%d", n), Seq: uint64(n)}, hotPub)
	}

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("stolen batch reordered at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	// Every dispatch of the hot publisher happened on the thief lane: the
	// victim's goroutine is provably still inside the blocker.
	thief := &ls.par[1-victimLane].st
	for st, n := range states {
		if st != thief {
			t.Errorf("%d hot envelopes dispatched off the thief lane", n)
		}
	}
	var steals, stolen uint64
	for _, l := range ls.laneStats() {
		steals += l.Stats.Steals
		stolen += l.Stats.StolenEvents
	}
	if steals < 1 {
		t.Errorf("Steals = %d, want >= 1", steals)
	}
	if stolen < want {
		t.Errorf("StolenEvents = %d, want >= %d (all deliveries while victim wedged)", stolen, want)
	}
}

// TestFifoLaneOverloadPolicies pins each policy's exact lane-level
// semantics deterministically, with the lane goroutine wedged so the
// queue state is fully controlled.
func TestFifoLaneOverloadPolicies(t *testing.T) {
	newWedgedLane := func(t *testing.T, cfg laneConfig) (*fifoLane, *[]string, chan struct{}, *sync.Mutex) {
		t.Helper()
		var mu sync.Mutex
		var order []string
		started := make(chan struct{})
		release := make(chan struct{})
		l := newFifoLane(func(env *codec.Envelope, _ *laneState) {
			if env.ID == "blocker" {
				close(started)
				<-release
				return
			}
			mu.Lock()
			order = append(order, env.ID)
			mu.Unlock()
		}, nil, 1, cfg, nil)
		l.push(&codec.Envelope{ID: "blocker"}, "b")
		<-started
		return l, &order, release, &mu
	}

	t.Run("drop-oldest", func(t *testing.T) {
		l, order, release, _ := newWedgedLane(t, laneConfig{bound: 4, policy: OverloadDropOldest})
		for i := 0; i < 10; i++ {
			l.push(&codec.Envelope{ID: fmt.Sprintf("e%d", i)}, "p")
		}
		close(release)
		l.close()
		want := "[e6 e7 e8 e9]"
		if got := fmt.Sprint(*order); got != want {
			t.Errorf("dispatched %v, want %s (last bound survivors, in order)", got, want)
		}
		if shed := l.st.counters.shed.Load(); shed != 6 {
			t.Errorf("shed = %d, want 6", shed)
		}
	})

	t.Run("spill", func(t *testing.T) {
		l, order, release, _ := newWedgedLane(t, laneConfig{
			bound: 2, policy: OverloadSpill, spillDir: t.TempDir(),
		})
		for i := 0; i < 10; i++ {
			env := &codec.Envelope{ID: fmt.Sprintf("e%d", i), Type: "freeTick", Publisher: "p"}
			l.push(env, "p")
		}
		if b := l.spillBacklog(); b != 8 {
			t.Fatalf("spill backlog = %d, want 8 (bound 2 in memory, rest on disk)", b)
		}
		close(release)
		l.close() // drains memory then the spill backlog, in arrival order
		want := "[e0 e1 e2 e3 e4 e5 e6 e7 e8 e9]"
		if got := fmt.Sprint(*order); got != want {
			t.Errorf("dispatched %v, want %s (spill must preserve arrival order)", got, want)
		}
		if sp, dr := l.st.counters.spilled.Load(), l.st.counters.spillDrained.Load(); sp != 8 || dr != 8 {
			t.Errorf("spilled/drained = %d/%d, want 8/8", sp, dr)
		}
	})

	t.Run("block", func(t *testing.T) {
		l, order, release, _ := newWedgedLane(t, laneConfig{bound: 2, policy: OverloadBlock})
		l.push(&codec.Envelope{ID: "e0"}, "p")
		l.push(&codec.Envelope{ID: "e1"}, "p")
		unblocked := make(chan struct{})
		go func() {
			l.push(&codec.Envelope{ID: "e2"}, "p") // full: must block
			close(unblocked)
		}()
		select {
		case <-unblocked:
			t.Fatal("push into a full Block-policy lane returned immediately")
		case <-time.After(50 * time.Millisecond):
		}
		close(release) // lane drains; blocked pusher must complete
		select {
		case <-unblocked:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked pusher never unblocked after the lane drained")
		}
		l.close()
		if got := fmt.Sprint(*order); got != "[e0 e1 e2]" {
			t.Errorf("dispatched %v, want [e0 e1 e2]", got)
		}
	})
}

// TestSerialInboxOverloadPolicies covers the serial (causal/total/
// prioritary) lane's bounded behavior: DropOldest sheds the oldest
// arrival, and Spill preserves arrival order through the disk round
// trip for equal priorities.
func TestSerialInboxOverloadPolicies(t *testing.T) {
	newWedgedInbox := func(t *testing.T, cfg laneConfig) (*priorityInbox, *[]string, chan struct{}) {
		t.Helper()
		var mu sync.Mutex
		var order []string
		started := make(chan struct{})
		release := make(chan struct{})
		in := newPriorityInbox(func(env *codec.Envelope, _ *laneState) {
			if env.ID == "blocker" {
				close(started)
				<-release
				return
			}
			mu.Lock()
			order = append(order, env.ID)
			mu.Unlock()
		}, nil, cfg)
		in.push(&codec.Envelope{ID: "blocker"}, 0)
		<-started
		return in, &order, release
	}

	t.Run("drop-oldest", func(t *testing.T) {
		in, order, release := newWedgedInbox(t, laneConfig{bound: 3, policy: OverloadDropOldest})
		for i := 0; i < 8; i++ {
			in.push(&codec.Envelope{ID: fmt.Sprintf("e%d", i)}, 0)
		}
		close(release)
		in.close()
		want := "[e5 e6 e7]"
		if got := fmt.Sprint(*order); got != want {
			t.Errorf("dispatched %v, want %s", got, want)
		}
		if shed := in.st.counters.shed.Load(); shed != 5 {
			t.Errorf("shed = %d, want 5", shed)
		}
	})

	t.Run("spill", func(t *testing.T) {
		in, order, release := newWedgedInbox(t, laneConfig{
			bound: 2, policy: OverloadSpill, spillDir: t.TempDir(),
		})
		for i := 0; i < 8; i++ {
			in.push(&codec.Envelope{ID: fmt.Sprintf("e%d", i), Type: "totalTick"}, 0)
		}
		if b := in.spillBacklog(); b != 6 {
			t.Fatalf("spill backlog = %d, want 6", b)
		}
		close(release)
		in.close()
		want := "[e0 e1 e2 e3 e4 e5 e6 e7]"
		if got := fmt.Sprint(*order); got != want {
			t.Errorf("dispatched %v, want %s (equal-priority arrival order through spill)", got, want)
		}
	})
}

// TestBoundedLaneQueueShrinksAfterOverload extends the PR 2 memory pin
// to bounded lanes: a queue that filled to a large bound under
// sustained overload must still release its high-water backing array
// once drained, on both lane flavors.
func TestBoundedLaneQueueShrinksAfterOverload(t *testing.T) {
	const bound = 4096
	t.Run("fifo", func(t *testing.T) {
		started := make(chan struct{})
		release := make(chan struct{})
		l := newFifoLane(func(env *codec.Envelope, _ *laneState) {
			if env.ID == "blocker" {
				close(started)
				<-release
			}
		}, nil, 1, laneConfig{bound: bound, policy: OverloadDropOldest}, nil)
		l.push(&codec.Envelope{ID: "blocker"}, "b")
		<-started
		for i := 0; i < 2*bound; i++ { // second half sheds, queue stays full
			l.push(&codec.Envelope{}, "p")
		}
		l.mu.Lock()
		grown := cap(l.queue)
		queued := len(l.queue) - l.head
		l.mu.Unlock()
		if grown < bound || queued != bound {
			t.Fatalf("overload did not fill the bound: cap=%d queued=%d want bound %d", grown, queued, bound)
		}
		close(release)
		l.close()
		if c := cap(l.queue); c > laneShrinkMin {
			t.Errorf("queue capacity after overload drain = %d, want <= %d", c, laneShrinkMin)
		}
	})
	t.Run("serial", func(t *testing.T) {
		started := make(chan struct{})
		release := make(chan struct{})
		in := newPriorityInbox(func(env *codec.Envelope, _ *laneState) {
			if env.ID == "blocker" {
				close(started)
				<-release
			}
		}, nil, laneConfig{bound: bound, policy: OverloadDropOldest})
		in.push(&codec.Envelope{ID: "blocker"}, 0)
		<-started
		for i := 0; i < 2*bound; i++ {
			in.push(&codec.Envelope{}, i%7)
		}
		in.mu.Lock()
		grown := cap(in.heap)
		in.mu.Unlock()
		if grown < bound {
			t.Fatalf("overload did not fill the bound: cap = %d", grown)
		}
		close(release)
		in.close()
		if c := cap(in.heap); c > laneShrinkMin {
			t.Errorf("heap capacity after overload drain = %d, want <= %d", c, laneShrinkMin)
		}
	})
}

// TestExecutorQuarantineLifecycle drives one executor through the full
// slow-consumer isolation cycle: stall detection → quarantine →
// bounded-mailbox sheds → recovery once the handler resumes.
func TestExecutorQuarantineLifecycle(t *testing.T) {
	const (
		budget  = 5 * time.Millisecond
		mailbox = 8
	)
	counters := &overloadCounters{}
	started := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Int64
	var once sync.Once
	x := newExecutor(func(s submission) bool {
		if s.id == "wedge" {
			once.Do(func() { close(started) })
			<-release
		}
		done.Add(1)
		return true
	}, nil, budget, mailbox, counters)
	defer x.close()
	x.setLimit(1) // wedge the intake inline, the worst case

	x.submit(freeTick{N: 0}, false, 0, 0, "wedge", "freeTick")
	<-started
	time.Sleep(3 * budget) // the era is now provably past the budget

	// Feed until the mailbox overflows: the first post-stall submit with
	// a queued backlog flips the quarantine, bound kicks in after.
	var shed int
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; shed == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("mailbox never overflowed: quarantines=%d quarantined=%v",
				counters.quarantines.Load(), x.quarantined.Load())
		}
		if x.submit(freeTick{N: i}, false, 0, 0, fmt.Sprintf("e%d", i), "freeTick") == submitShed {
			shed++
		}
	}
	if q := counters.quarantines.Load(); q != 1 {
		t.Errorf("quarantines = %d, want 1", q)
	}
	if d := counters.slowDrops.Load(); d < 1 {
		t.Errorf("slowDrops = %d, want >= 1", d)
	}
	if !x.quarantined.Load() {
		t.Error("executor not marked quarantined")
	}

	// Recovery: release the handler; the mailbox drains, the quarantine
	// lifts, and new submissions flow again.
	close(release)
	waitFor(t, 10*time.Second, "quarantine release", func() bool {
		return !x.quarantined.Load()
	})
	before := done.Load()
	if st := x.submit(freeTick{N: -1}, false, 0, 0, "after", "freeTick"); st != submitOK {
		t.Fatalf("post-recovery submit = %v, want submitOK", st)
	}
	waitFor(t, 10*time.Second, "post-recovery delivery", func() bool {
		return done.Load() > before
	})
}

// TestWedgedConsumerShutdownAndLeak pins the teardown half of
// slow-consumer isolation: an engine hosting a provably wedged handler
// must (1) let Deactivate return immediately, (2) close without
// hanging on the wedged handler, and (3) leak no goroutines beyond the
// handler's own lifetime — once the handler returns, everything drains.
func TestWedgedConsumerShutdownAndLeak(t *testing.T) {
	countGoroutines := func() int { return runtime.NumGoroutine() }
	baseline := countGoroutines()

	const budget = 5 * time.Millisecond
	e := NewEngine("leak", NewLocal(), WithDispatchLanes(2),
		WithSlowConsumerBudget(budget, 16))
	registerTickTypes(e.Registry())

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sub, err := Subscribe(e, nil, func(o freeTick) {
		once.Do(func() { close(started) })
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.SetSingleThreading()
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		e.deliver(encodeFrom(t, e, freeTick{Pub: "p", N: i}, "p"))
	}
	<-started
	time.Sleep(3 * budget) // make the stall provable

	if err := sub.Deactivate(); err != nil {
		t.Fatalf("Deactivate with a wedged handler: %v", err)
	}

	closed := make(chan struct{})
	go func() {
		_ = e.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("engine close hung on the wedged handler")
	}

	// The wedged handler still holds its goroutine (and the abandoned
	// intake); once it returns, everything must drain back to baseline.
	close(release)
	waitFor(t, 10*time.Second, "goroutines drained after handler release", func() bool {
		runtime.GC()
		return countGoroutines() <= baseline+2
	})
}
