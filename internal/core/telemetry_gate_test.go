package core

import (
	"testing"
	"time"

	"govents/internal/telemetry"
)

// TestExecutorE2EGatedOnPublishStamp proves the legacy-publisher
// witness: a delivery whose envelope carried no publish stamp (pub ==
// 0, as sent by a pre-telemetry binary) closes the dispatch stage but
// records nothing in the end-to-end histogram, while a stamped delivery
// records both.
func TestExecutorE2EGatedOnPublishStamp(t *testing.T) {
	p := telemetry.NewPlane()
	x := newExecutor(func(submission) bool { return true }, p, 0, 0, &overloadCounters{})
	defer x.close()

	deq := telemetry.Now()
	if x.submit(freeTick{N: 1}, false, deq, 0, "legacy-1", "freeTick") != submitOK {
		t.Fatal("submit refused")
	}
	if x.submit(freeTick{N: 2}, false, deq, time.Now().UnixNano(), "modern-1", "freeTick") != submitOK {
		t.Fatal("submit refused")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && p.StageSnapshot(telemetry.StageDispatch).Count < 2 {
		time.Sleep(time.Millisecond)
	}
	if got := p.StageSnapshot(telemetry.StageDispatch).Count; got != 2 {
		t.Fatalf("dispatch samples = %d, want 2", got)
	}
	if got := p.StageSnapshot(telemetry.StageE2E).Count; got != 1 {
		t.Errorf("e2e samples = %d, want 1 (the stamped delivery only)", got)
	}
}
