package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/filter"
	"govents/internal/obvent"
)

// The paper's Figure 1/2 type hierarchy.

type StockObvent struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

func (s StockObvent) GetCompany() string { return s.Company }
func (s StockObvent) GetPrice() float64  { return s.Price }
func (s StockObvent) GetAmount() int     { return s.Amount }

type StockQuote struct {
	StockObvent
}

type StockRequest struct {
	StockObvent
}

type SpotPrice struct {
	StockRequest
}

type MarketPrice struct {
	StockRequest
}

// Priced is an abstract obvent type (explicit declaration).
type Priced interface {
	obvent.Obvent
	GetPrice() float64
}

type prioAlert struct {
	obvent.Base
	obvent.PriorityBase
	Msg string
}

type timelyTick struct {
	obvent.Base
	obvent.TimelyBase
	N int
}

func newLocalEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine("test-node", NewLocal())
	t.Cleanup(func() { _ = e.Close() })
	reg := e.Registry()
	reg.MustRegister(StockObvent{})
	reg.MustRegister(StockQuote{})
	reg.MustRegister(StockRequest{})
	reg.MustRegister(SpotPrice{})
	reg.MustRegister(MarketPrice{})
	reg.MustRegister(prioAlert{})
	reg.MustRegister(timelyTick{})
	return e
}

// collectorOf subscribes with a handler accumulating received values.
type collector[T obvent.Obvent] struct {
	mu   sync.Mutex
	got  []T
	subn *Subscription
}

func subscribeCollector[T obvent.Obvent](t *testing.T, e *Engine, f *filter.Expr) *collector[T] {
	t.Helper()
	c := &collector[T]{}
	sub, err := Subscribe(e, f, func(v T) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.got = append(c.got, v)
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := sub.Activate(); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	c.subn = sub
	return c
}

func (c *collector[T]) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector[T]) all() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]T, len(c.got))
	copy(out, c.got)
	return out
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPublishSubscribeRoundTrip(t *testing.T) {
	e := newLocalEngine(t)
	c := subscribeCollector[StockQuote](t, e, nil)
	q := StockQuote{StockObvent{Company: "Telco Mobiles", Price: 80, Amount: 10}}
	if err := Publish(e, q); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "delivery", func() bool { return c.count() == 1 })
	if got := c.all()[0]; got.Company != "Telco Mobiles" || got.Price != 80 {
		t.Errorf("got %+v", got)
	}
}

func TestFig1SubtypeDelivery(t *testing.T) {
	// Paper Figure 1: p3 subscribing to StockObvent receives all
	// instances of StockQuote and StockRequest, and hence all objects
	// of type SpotPrice and MarketPrice.
	e := newLocalEngine(t)
	base := subscribeCollector[StockObvent](t, e, nil)
	requests := subscribeCollector[StockRequest](t, e, nil)
	quotes := subscribeCollector[StockQuote](t, e, nil)

	_ = Publish(e, StockQuote{StockObvent{Company: "T"}})
	_ = Publish(e, SpotPrice{StockRequest{StockObvent{Company: "S"}}})
	_ = Publish(e, MarketPrice{StockRequest{StockObvent{Company: "M"}}})
	_ = Publish(e, StockObvent{Company: "B"})

	waitFor(t, time.Second, "base receives everything", func() bool { return base.count() == 4 })
	waitFor(t, time.Second, "requests receive spot+market", func() bool { return requests.count() == 2 })
	waitFor(t, time.Second, "quotes receive quote only", func() bool { return quotes.count() == 1 })

	// No cross-delivery: publishing a base instance reaches neither
	// sibling subscription (checked by the exact counts above).
}

func TestSubscribeToAbstractType(t *testing.T) {
	e := newLocalEngine(t)
	c := &collector[Priced]{}
	sub, err := Subscribe(e, nil, func(p Priced) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.got = append(c.got, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}
	_ = Publish(e, StockQuote{StockObvent{Price: 42}})
	waitFor(t, time.Second, "interface delivery", func() bool { return c.count() == 1 })
	if c.all()[0].GetPrice() != 42 {
		t.Error("interface method dispatch failed")
	}
}

func TestPaperSubscriptionExample(t *testing.T) {
	// §2.3.3: price < 100 && company contains "Telco".
	e := newLocalEngine(t)
	f := filter.And(
		filter.Path("GetPrice").Lt(filter.Float(100)),
		filter.Path("GetCompany").Contains(filter.Str("Telco")),
	)
	c := subscribeCollector[StockQuote](t, e, f)

	_ = Publish(e, StockQuote{StockObvent{Company: "Telco Mobiles", Price: 80, Amount: 10}}) // match
	_ = Publish(e, StockQuote{StockObvent{Company: "Telco Mobiles", Price: 150}})            // too expensive
	_ = Publish(e, StockQuote{StockObvent{Company: "Acme", Price: 10}})                      // wrong company

	waitFor(t, time.Second, "filtered delivery", func() bool { return c.count() == 1 })
	time.Sleep(20 * time.Millisecond)
	if c.count() != 1 {
		t.Fatalf("delivered %d, want 1", c.count())
	}
	if got := c.all()[0]; got.Price != 80 {
		t.Errorf("got %+v", got)
	}
}

func TestLocalFilterClosure(t *testing.T) {
	// An opaque Go closure with a captured variable — the paper's
	// non-migratable filter, applied locally (§3.3.4).
	e := newLocalEngine(t)
	threshold := 100.0
	c := &collector[StockQuote]{}
	sub, err := SubscribeLocal(e, func(q StockQuote) bool {
		return q.Price < threshold
	}, func(q StockQuote) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.got = append(c.got, q)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Activate()
	_ = Publish(e, StockQuote{StockObvent{Price: 80}})
	_ = Publish(e, StockQuote{StockObvent{Price: 120}})
	waitFor(t, time.Second, "local filter", func() bool { return c.count() == 1 })
}

func TestSubscribeFilteredCombines(t *testing.T) {
	e := newLocalEngine(t)
	c := &collector[StockQuote]{}
	sub, err := SubscribeFiltered(e,
		filter.Path("GetPrice").Lt(filter.Float(100)),
		func(q StockQuote) bool { return q.Amount > 5 },
		func(q StockQuote) {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.got = append(c.got, q)
		})
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Activate()
	_ = Publish(e, StockQuote{StockObvent{Price: 80, Amount: 10}})  // passes both
	_ = Publish(e, StockQuote{StockObvent{Price: 80, Amount: 1}})   // fails local
	_ = Publish(e, StockQuote{StockObvent{Price: 200, Amount: 10}}) // fails remote
	waitFor(t, time.Second, "combined filters", func() bool { return c.count() == 1 })
	time.Sleep(10 * time.Millisecond)
	if c.count() != 1 {
		t.Fatalf("count = %d", c.count())
	}
}

func TestObventLocalUniqueness(t *testing.T) {
	// §2.1.2: two notifiables in the same address space receive
	// references to two distinct clones.
	type mutableObvent struct {
		obvent.Base
		Tags []string
	}
	e := NewEngine("uniq", NewLocal())
	defer e.Close()
	e.Registry().MustRegister(mutableObvent{})

	seen := make(chan []string, 2)
	for i := 0; i < 2; i++ {
		sub, err := Subscribe(e, nil, func(m mutableObvent) {
			m.Tags[0] = fmt.Sprintf("mutated-by-%p", &m) // mutate our copy
			seen <- m.Tags
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	orig := mutableObvent{Tags: []string{"original"}}
	if err := Publish(e, orig); err != nil {
		t.Fatal(err)
	}
	a := <-seen
	b := <-seen
	if &a[0] == &b[0] {
		t.Error("subscribers shared a clone")
	}
	// The publisher's object is untouched.
	if orig.Tags[0] != "original" {
		t.Error("published obvent mutated by a subscriber")
	}
}

func TestPublishSameObventTwiceCreatesNewClones(t *testing.T) {
	// §2.1.2: "if the same obvent is published twice, two distinct
	// copies will be created again for every subscriber."
	e := newLocalEngine(t)
	c := subscribeCollector[StockQuote](t, e, nil)
	q := StockQuote{StockObvent{Company: "X"}}
	_ = Publish(e, q)
	_ = Publish(e, q)
	waitFor(t, time.Second, "two deliveries", func() bool { return c.count() == 2 })
}

func TestActivateDeactivateLifecycle(t *testing.T) {
	e := newLocalEngine(t)
	var n atomic.Int32
	sub, err := Subscribe(e, nil, func(StockQuote) { n.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	// Not yet activated: no delivery.
	_ = Publish(e, StockQuote{})
	time.Sleep(20 * time.Millisecond)
	if n.Load() != 0 {
		t.Fatal("delivery before activation")
	}

	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}
	// Double activation fails (paper §3.4.1).
	if err := sub.Activate(); !errors.Is(err, ErrCannotSubscribe) {
		t.Errorf("double activate err = %v", err)
	}

	_ = Publish(e, StockQuote{})
	waitFor(t, time.Second, "active delivery", func() bool { return n.Load() == 1 })

	if err := sub.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Deactivate(); !errors.Is(err, ErrCannotUnsubscribe) {
		t.Errorf("double deactivate err = %v", err)
	}

	_ = Publish(e, StockQuote{})
	time.Sleep(20 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatal("delivery while deactivated")
	}

	// Interleaved re-activation works an unlimited number of times
	// (§3.4.2).
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}
	_ = Publish(e, StockQuote{})
	waitFor(t, time.Second, "reactivated delivery", func() bool { return n.Load() == 2 })
}

func TestDeactivateFromInsideHandler(t *testing.T) {
	// §3.4.2: "subscriptions can be cancelled also from inside a
	// subscription, i.e., its associated handler."
	e := newLocalEngine(t)
	var n atomic.Int32
	var sub *Subscription
	var err error
	done := make(chan struct{})
	sub, err = Subscribe(e, nil, func(StockQuote) {
		if n.Add(1) == 1 {
			if derr := sub.Deactivate(); derr != nil {
				t.Errorf("deactivate from handler: %v", derr)
			}
			close(done)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Activate()
	_ = Publish(e, StockQuote{})
	<-done
	_ = Publish(e, StockQuote{})
	time.Sleep(20 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatalf("delivered %d after self-deactivation", n.Load())
	}
}

func TestSingleThreadingPolicy(t *testing.T) {
	e := newLocalEngine(t)
	var concurrent, maxConcurrent atomic.Int32
	var n atomic.Int32
	sub, err := Subscribe(e, nil, func(StockQuote) {
		cur := concurrent.Add(1)
		for {
			m := maxConcurrent.Load()
			if cur <= m || maxConcurrent.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		concurrent.Add(-1)
		n.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.SetSingleThreading()
	_ = sub.Activate()
	for i := 0; i < 20; i++ {
		_ = Publish(e, StockQuote{})
	}
	waitFor(t, 5*time.Second, "all handled", func() bool { return n.Load() == 20 })
	if maxConcurrent.Load() != 1 {
		t.Errorf("max concurrency = %d, want 1", maxConcurrent.Load())
	}
}

func TestBoundedMultiThreadingPolicy(t *testing.T) {
	e := newLocalEngine(t)
	var concurrent, maxConcurrent atomic.Int32
	var n atomic.Int32
	block := make(chan struct{})
	sub, err := Subscribe(e, nil, func(StockQuote) {
		cur := concurrent.Add(1)
		for {
			m := maxConcurrent.Load()
			if cur <= m || maxConcurrent.CompareAndSwap(m, cur) {
				break
			}
		}
		<-block
		concurrent.Add(-1)
		n.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.SetMultiThreading(3)
	_ = sub.Activate()
	for i := 0; i < 10; i++ {
		_ = Publish(e, StockQuote{})
	}
	// Let the executor saturate the limit.
	waitFor(t, 5*time.Second, "3 handlers in flight", func() bool { return concurrent.Load() == 3 })
	time.Sleep(10 * time.Millisecond)
	if maxConcurrent.Load() != 3 {
		t.Errorf("max concurrency = %d, want 3", maxConcurrent.Load())
	}
	close(block)
	waitFor(t, 5*time.Second, "all handled", func() bool { return n.Load() == 10 })
}

func TestPriorityOvertakesBacklog(t *testing.T) {
	// Two obvents queued behind a blocked dispatcher: the higher
	// priority one must be dispatched first even though it arrived
	// later.
	e := newLocalEngine(t)

	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	first := make(chan struct{}, 1)
	sub, err := Subscribe(e, nil, func(a prioAlert) {
		select {
		case first <- struct{}{}:
			// First delivery blocks the single dispatcher pipeline
			// while the rest of the backlog accumulates.
			<-release
		default:
		}
		mu.Lock()
		order = append(order, a.Msg)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.SetSingleThreading()
	_ = sub.Activate()

	_ = Publish(e, prioAlert{Msg: "blocker", PriorityBase: obvent.PriorityBase{Prio: 0}})
	waitFor(t, time.Second, "blocker in handler", func() bool { return len(first) == 1 })
	_ = Publish(e, prioAlert{Msg: "low", PriorityBase: obvent.PriorityBase{Prio: 1}})
	_ = Publish(e, prioAlert{Msg: "high", PriorityBase: obvent.PriorityBase{Prio: 9}})
	time.Sleep(20 * time.Millisecond) // both reach the priority inbox
	close(release)

	waitFor(t, 5*time.Second, "all delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if order[1] != "high" || order[2] != "low" {
		t.Errorf("order = %v, want [blocker high low]", order)
	}
}

func TestTimelyExpiredDropped(t *testing.T) {
	e := newLocalEngine(t)
	c := subscribeCollector[timelyTick](t, e, nil)
	// An obvent born long ago with a tiny TTL is dropped at dispatch.
	_ = Publish(e, timelyTick{TimelyBase: obvent.TimelyBase{TTL: time.Millisecond, BirthTime: time.Now().Add(-time.Second)}, N: 1})
	_ = Publish(e, timelyTick{TimelyBase: obvent.TimelyBase{TTL: time.Minute}, N: 2})
	waitFor(t, time.Second, "fresh tick", func() bool { return c.count() == 1 })
	time.Sleep(10 * time.Millisecond)
	if c.count() != 1 {
		t.Fatalf("count = %d; expired obvent delivered", c.count())
	}
	if c.all()[0].N != 2 {
		t.Error("wrong tick delivered")
	}
}

func TestPublishErrors(t *testing.T) {
	e := newLocalEngine(t)
	if err := e.Publish(nil); !errors.Is(err, ErrCannotPublish) {
		t.Errorf("nil publish err = %v", err)
	}
	_ = e.Close()
	if err := Publish(e, StockQuote{}); !errors.Is(err, ErrCannotPublish) {
		t.Errorf("closed publish err = %v", err)
	}
}

func TestSubscribeErrors(t *testing.T) {
	e := newLocalEngine(t)
	if _, err := Subscribe[StockQuote](e, nil, nil); !errors.Is(err, ErrCannotSubscribe) {
		t.Errorf("nil handler err = %v", err)
	}
	if _, err := Subscribe(e, filter.And(), func(StockQuote) {}); !errors.Is(err, ErrCannotSubscribe) {
		t.Errorf("invalid filter err = %v", err)
	}
}

func TestSubscriptionsHaveUniqueIDs(t *testing.T) {
	e := newLocalEngine(t)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		sub, err := Subscribe(e, nil, func(StockQuote) {})
		if err != nil {
			t.Fatal(err)
		}
		if seen[sub.ID()] {
			t.Fatalf("duplicate subscription ID %s", sub.ID())
		}
		seen[sub.ID()] = true
	}
}

func TestHandlerMayPublish(t *testing.T) {
	// §5.3: an obvent handler publishing obvents must not deadlock.
	e := newLocalEngine(t)
	got := make(chan string, 2)
	sub1, err := Subscribe(e, filter.Path("GetCompany").Eq(filter.Str("first")), func(q StockQuote) {
		got <- "first"
		_ = Publish(e, StockQuote{StockObvent{Company: "second"}})
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sub1.Activate()
	sub2, err := Subscribe(e, filter.Path("GetCompany").Eq(filter.Str("second")), func(q StockQuote) {
		got <- "second"
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sub2.Activate()

	_ = Publish(e, StockQuote{StockObvent{Company: "first"}})
	for _, want := range []string{"first", "second"} {
		select {
		case g := <-got:
			if g != want {
				t.Fatalf("got %q, want %q", g, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timeout: handler publish deadlocked?")
		}
	}
}

func TestEngineCloseIsIdempotentAndStopsDelivery(t *testing.T) {
	e := NewEngine("x", NewLocal())
	e.Registry().MustRegister(StockQuote{})
	var n atomic.Int32
	sub, _ := Subscribe(e, nil, func(StockQuote) { n.Add(1) })
	_ = sub.Activate()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableActivation(t *testing.T) {
	e := newLocalEngine(t)
	sub, err := Subscribe(e, nil, func(StockQuote) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.ActivateDurable(""); !errors.Is(err, ErrCannotSubscribe) {
		t.Error("empty durable ID must fail")
	}
	if err := sub.ActivateDurable("broker-7"); err != nil {
		t.Fatal(err)
	}
	if got := sub.info().DurableID; got != "broker-7" {
		t.Errorf("DurableID = %q", got)
	}
}
