package core

import (
	"sync"
	"sync/atomic"

	"govents/internal/codec"
	"govents/internal/obvent"
	"govents/internal/telemetry"
)

// This file implements the engine's sharded multi-lane dispatcher.
//
// The paper's transmission semantics (§3.1.2) only constrain delivery
// order for obvents whose type requests ordering (FIFO/Causal/Total) or
// priority. Everything else is embarrassingly parallel once per-envelope
// matching is cheap, so the engine fans unordered traffic out across N
// parallel lanes and reserves one strictly serial lane for the traffic
// whose semantics demand it:
//
//	              ┌► serial lane (priority heap) ── ordered / prioritary
//	deliver ─► route
//	              └► lane[hash(publisher) % N]  ── everything else
//
// Routing rules, in order:
//
//   - env.HasPriority or env.Ordering > NoOrder (stamped by the
//     publishing codec) → serial lane. The heap preserves today's
//     Prioritary-overtaking behavior exactly; ordered envelopes share
//     priority 0 and therefore drain in arrival order.
//   - the envelope's class resolves (Registry.ClassSemantics, a cached
//     lock-free lookup — never a decode) to an ordering or priority →
//     serial lane. This catches peers that forgot to stamp the wire
//     metadata.
//   - otherwise → parallel lane chosen by hashing the publisher ID (the
//     publication ID when there is none), so one publisher's envelopes
//     always share a lane and per-publisher arrival order stays stable.
//
// Each lane owns its queue, its dispatchScratch and its dispatchCounters,
// so lanes never contend on dispatch state; Engine.Stats folds the
// per-lane counters, Engine.LaneStats exposes them individually.

// laneState is one lane's private dispatch working set. The scratch is
// touched only by the lane's goroutine; the counters are atomic so
// Stats() can read them live.
type laneState struct {
	scratch  dispatchScratch
	counters dispatchCounters
	enqueued atomic.Uint64
	// deq is the telemetry dequeue timestamp of the envelope currently
	// being dispatched on this lane (0 when telemetry is off). Written
	// by the lane goroutine before each dispatch; dispatch threads it
	// into executor submissions so handler-return timing can close the
	// dequeue→handler span.
	deq int64
}

// LaneStat is one dispatch lane's observable state (Engine.LaneStats).
type LaneStat struct {
	// Lane is the parallel lane index; -1 identifies the serial lane.
	Lane int
	// Serial reports whether this is the serial (ordered/prioritary) lane.
	Serial bool
	// Enqueued counts envelopes ever routed to this lane.
	Enqueued uint64
	// Queued is the instantaneous backlog length.
	Queued int
	// Stats are the lane's cumulative dispatch counters.
	Stats DispatchStats
}

// laneSet is the engine's dispatcher: one serial priority lane plus N
// parallel FIFO lanes.
type laneSet struct {
	reg    *obvent.Registry
	serial *priorityInbox
	par    []*fifoLane
}

func newLaneSet(reg *obvent.Registry, n int, dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane) *laneSet {
	if n < 1 {
		n = 1
	}
	ls := &laneSet{
		reg:    reg,
		serial: newPriorityInbox(dispatch, tele),
		par:    make([]*fifoLane, n),
	}
	for i := range ls.par {
		// Gauge index i+1: the serial lane owns gauge 0.
		ls.par[i] = newFifoLane(dispatch, tele, i+1)
	}
	return ls
}

// route steers one envelope to its lane. Safe for concurrent use: the
// dissemination substrate may deliver from many goroutines.
func (ls *laneSet) route(env *codec.Envelope) {
	if ls.routeSerial(env) {
		prio := 0
		if env.HasPriority {
			prio = env.Priority
		}
		ls.serial.push(env, prio)
		return
	}
	ls.par[ls.laneFor(env)].push(env)
}

// routeSerial is the semantics-aware routing decision. It costs two
// envelope field reads and, for unordered wire metadata, one lock-free
// cached class-semantics lookup — never a payload decode and zero
// steady-state allocations (pinned by TestLaneRoutingZeroAlloc).
func (ls *laneSet) routeSerial(env *codec.Envelope) bool {
	if env.HasPriority || env.Ordering > obvent.NoOrder {
		return true
	}
	if sem, ok := ls.reg.ClassSemantics(env.Type); ok {
		return sem.Prioritary || sem.Ordering > obvent.NoOrder
	}
	return false
}

// laneFor hashes the envelope's publisher (or, lacking one, its
// publication ID) onto a parallel lane: one publisher's unordered
// envelopes always share a lane, keeping per-publisher arrival order
// stable. FNV-1a, inlined to stay allocation-free.
func (ls *laneSet) laneFor(env *codec.Envelope) int {
	key := env.Publisher
	if key == "" {
		key = env.ID
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(ls.par)))
}

// stats folds every lane's counters into one engine-wide snapshot.
func (ls *laneSet) stats() DispatchStats {
	total := ls.serial.st.counters.snapshot()
	for _, l := range ls.par {
		total.add(l.st.counters.snapshot())
	}
	return total
}

// laneStats snapshots each lane individually, serial lane first.
func (ls *laneSet) laneStats() []LaneStat {
	out := make([]LaneStat, 0, len(ls.par)+1)
	out = append(out, LaneStat{
		Lane:     -1,
		Serial:   true,
		Enqueued: ls.serial.st.enqueued.Load(),
		Queued:   ls.serial.queued(),
		Stats:    ls.serial.st.counters.snapshot(),
	})
	for i, l := range ls.par {
		out = append(out, LaneStat{
			Lane:     i,
			Enqueued: l.st.enqueued.Load(),
			Queued:   l.queued(),
			Stats:    l.st.counters.snapshot(),
		})
	}
	return out
}

// close shuts every lane down, draining their backlogs first.
func (ls *laneSet) close() {
	var wg sync.WaitGroup
	wg.Add(1 + len(ls.par))
	go func() {
		defer wg.Done()
		ls.serial.close()
	}()
	for _, l := range ls.par {
		go func(l *fifoLane) {
			defer wg.Done()
			l.close()
		}(l)
	}
	wg.Wait()
}

// laneItem is one queued envelope plus its telemetry enqueue timestamp
// (0 when telemetry is off at enqueue time). The timestamp rides the
// queue, never the envelope: the same *Envelope may be routed
// concurrently many times (loopback fan-in, benchmarks), so envelopes
// must stay immutable through the dispatcher.
type laneItem struct {
	env *codec.Envelope
	enq int64
}

// fifoLane is one parallel dispatch lane: a single goroutine draining an
// unbounded FIFO queue in arrival order.
type fifoLane struct {
	dispatch func(*codec.Envelope, *laneState)
	tele     *telemetry.Plane
	gauge    int // telemetry occupancy-gauge index (serial lane = 0)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []laneItem
	head   int // index of the next envelope to pop
	closed bool
	wg     sync.WaitGroup

	st laneState
}

func newFifoLane(dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane, gauge int) *fifoLane {
	l := &fifoLane{dispatch: dispatch, tele: tele, gauge: gauge}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.loop()
	return l
}

func (l *fifoLane) push(env *codec.Envelope) {
	var enq int64
	if l.tele.Enabled() {
		enq = telemetry.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.st.enqueued.Add(1)
	l.queue = append(l.queue, laneItem{env: env, enq: enq})
	l.cond.Signal()
}

// queued returns the instantaneous backlog length.
func (l *fifoLane) queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue) - l.head
}

func (l *fifoLane) loop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for l.head == len(l.queue) && !l.closed {
			l.cond.Wait()
		}
		if l.head == len(l.queue) && l.closed {
			l.mu.Unlock()
			return
		}
		item := l.queue[l.head]
		l.queue[l.head] = laneItem{} // drop the reference for the GC
		l.head++
		l.compactLocked()
		backlog := len(l.queue) - l.head
		l.mu.Unlock()
		l.st.deq = 0
		if item.enq != 0 {
			// lane_wait closes on dequeue; the dequeue timestamp is
			// reused as the dispatch-span start so the two stages tile
			// without a second clock read.
			now := telemetry.Now()
			l.tele.Record(uint32(l.gauge), telemetry.StageLaneWait, now-item.enq)
			l.tele.SampleQueue(l.gauge, backlog)
			l.st.deq = now
		}
		l.dispatch(item.env, &l.st)
	}
}

// compactLocked keeps the queue's memory proportional to its live
// backlog. Without it, append would grow the slice forever (head only
// advances) and a one-time burst would pin its high-water array for the
// engine's lifetime.
func (l *fifoLane) compactLocked() {
	live := len(l.queue) - l.head
	switch {
	case live == 0:
		// Empty: restart at the front; release a burst-sized array.
		if cap(l.queue) > laneShrinkMin {
			l.queue = nil
		} else {
			l.queue = l.queue[:0]
		}
		l.head = 0
	case cap(l.queue) > laneShrinkMin && cap(l.queue) > 4*live:
		// Backlog occupies under a quarter of the array: right-size it.
		shrunk := make([]laneItem, live)
		copy(shrunk, l.queue[l.head:])
		l.queue = shrunk
		l.head = 0
	case l.head >= laneShrinkMin && 2*l.head >= len(l.queue):
		// Mostly dead prefix: slide the live tail down in place so
		// append reuses the front instead of growing.
		copy(l.queue, l.queue[l.head:])
		for i := live; i < len(l.queue); i++ {
			l.queue[i] = laneItem{}
		}
		l.queue = l.queue[:live]
		l.head = 0
	}
}

// close marks the lane closed and waits for the backlog to drain.
// Broadcast for the same reason as priorityInbox.close.
func (l *fifoLane) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
}
