package core

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"govents/internal/codec"
	"govents/internal/obvent"
	"govents/internal/telemetry"
)

// This file implements the engine's sharded multi-lane dispatcher.
//
// The paper's transmission semantics (§3.1.2) only constrain delivery
// order for obvents whose type requests ordering (FIFO/Causal/Total) or
// priority. FIFO needs only *per-publisher* order, which the parallel
// lanes already provide (one publisher's envelopes always share a lane),
// so FIFO traffic fans out with the unordered traffic; only the
// semantics that need a single global arrival order — Causal, Total and
// Prioritary — share the strictly serial lane:
//
//	              ┌► serial lane (priority heap) ── causal/total/prioritary
//	deliver ─► route
//	              └► lane[hash(publisher) % N]  ── FIFO + everything else
//
// Routing rules, in order:
//
//   - env.HasPriority, or env.Ordering stronger than FIFO (stamped by
//     the publishing codec) → serial lane. The heap preserves
//     Prioritary-overtaking behavior exactly; ordered envelopes share
//     priority 0 and therefore drain in arrival order.
//   - env.Ordering == FIFO → parallel lane by publisher hash: the lane
//     is FIFO per publisher, which is the whole FIFO contract.
//   - the envelope's class resolves (Registry.ClassSemantics, a cached
//     lock-free lookup — never a decode) to a stronger-than-FIFO
//     ordering or priority → serial lane. This catches peers that
//     forgot to stamp the wire metadata.
//   - otherwise → parallel lane chosen by hashing the publisher ID (the
//     publication ID when there is none), so one publisher's envelopes
//     always share a lane and per-publisher arrival order stays stable.
//
// Every lane queue may be bounded (laneConfig.bound); a full lane
// applies the engine's OverloadPolicy. Idle parallel lanes steal
// whole-publisher batches from the hottest sibling (the loan protocol
// below), so one hot publisher no longer pins one lane while the others
// sleep.
//
// Each lane owns its queue, its dispatchScratch and its dispatchCounters,
// so lanes never contend on dispatch state; Engine.Stats folds the
// per-lane counters, Engine.LaneStats exposes them individually.

// OverloadPolicy selects what a bounded dispatch lane does with new
// arrivals once its queue is full (laneConfig.bound reached). The zero
// value is OverloadBlock.
type OverloadPolicy int

const (
	// OverloadBlock applies backpressure: the push blocks until the lane
	// drains below its bound (or the lane closes). Publishers on this
	// process and transport reader goroutines slow down; nothing is lost.
	OverloadBlock OverloadPolicy = iota
	// OverloadDropOldest sheds the oldest queued envelope to admit the
	// new one. Sheds are counted (DispatchStats.Shed, telemetry reason
	// "overload_shed"), never silent.
	OverloadDropOldest
	// OverloadSpill overflows to a per-lane durable segment log and
	// drains it once the lane catches up. Arrival order is preserved:
	// while a spill backlog exists every new arrival spills too, so the
	// disk backlog is always older than the memory queue.
	OverloadSpill
)

// String returns the policy's stable diagnostic name.
func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadDropOldest:
		return "drop-oldest"
	case OverloadSpill:
		return "spill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// laneConfig is the per-lane overload configuration, shared by every
// lane of a laneSet.
type laneConfig struct {
	// bound caps each lane's in-memory queue; 0 means unbounded (the
	// default), and then policy never applies.
	bound int
	// policy is applied by a full lane.
	policy OverloadPolicy
	// spillDir hosts the per-lane spill segment logs (OverloadSpill).
	spillDir string
	// spillSeg is the spill segment roll threshold (0 = durable default).
	spillSeg int64
	// logger receives spill failures and drain diagnostics.
	logger *slog.Logger
}

// laneState is one lane's private dispatch working set. The scratch is
// touched only by the lane's goroutine; the counters are atomic so
// Stats() can read them live.
type laneState struct {
	scratch  dispatchScratch
	counters dispatchCounters
	enqueued atomic.Uint64
	// deq is the telemetry dequeue timestamp of the envelope currently
	// being dispatched on this lane (0 when telemetry is off). Written
	// by the lane goroutine before each dispatch; dispatch threads it
	// into executor submissions so handler-return timing can close the
	// dequeue→handler span.
	deq int64
}

// LaneStat is one dispatch lane's observable state (Engine.LaneStats).
type LaneStat struct {
	// Lane is the parallel lane index; -1 identifies the serial lane.
	Lane int
	// Serial reports whether this is the serial (causal/total/prioritary)
	// lane.
	Serial bool
	// Enqueued counts envelopes ever routed to this lane.
	Enqueued uint64
	// Queued is the instantaneous in-memory backlog length.
	Queued int
	// Bound is the lane's queue bound (0 = unbounded).
	Bound int
	// Policy is the lane's overload policy (meaningful when Bound > 0).
	Policy OverloadPolicy
	// SpillBacklog counts envelopes currently spilled to the lane's
	// overflow segment log and not yet drained.
	SpillBacklog int
	// Stats are the lane's cumulative dispatch counters.
	Stats DispatchStats
}

// laneSet is the engine's dispatcher: one serial priority lane plus N
// parallel FIFO lanes.
type laneSet struct {
	reg    *obvent.Registry
	cfg    laneConfig
	serial *priorityInbox
	par    []*fifoLane
}

func newLaneSet(reg *obvent.Registry, n int, dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane, cfg laneConfig) *laneSet {
	if n < 1 {
		n = 1
	}
	if cfg.logger == nil {
		cfg.logger = slog.New(slog.DiscardHandler)
	}
	if cfg.bound > 0 && cfg.policy == OverloadSpill && cfg.spillDir == "" {
		// No spill destination: degrade to shedding rather than grow
		// without bound (NewEngine has no error return; the facade
		// validates this at Open).
		cfg.logger.Warn("overload policy spill without a spill directory; degrading to drop-oldest")
		cfg.policy = OverloadDropOldest
	}
	ls := &laneSet{
		reg:    reg,
		cfg:    cfg,
		serial: newPriorityInbox(dispatch, tele, cfg),
		par:    make([]*fifoLane, n),
	}
	for i := range ls.par {
		// Gauge index i+1: the serial lane owns gauge 0.
		ls.par[i] = makeFifoLane(dispatch, tele, i+1, cfg, ls)
	}
	// Start the loops only once every sibling is in par: an idle lane's
	// first act is a steal scan over set.par, which must never observe
	// the slice mid-construction.
	for _, l := range ls.par {
		l.start()
	}
	return ls
}

// route steers one envelope to its lane. Safe for concurrent use: the
// dissemination substrate may deliver from many goroutines.
func (ls *laneSet) route(env *codec.Envelope) {
	if ls.routeSerial(env) {
		prio := 0
		if env.HasPriority {
			prio = env.Priority
		}
		ls.serial.push(env, prio)
		return
	}
	key := laneKey(env)
	ls.par[laneIndex(key, len(ls.par))].push(env, key)
}

// routeSerial is the semantics-aware routing decision. It costs two
// envelope field reads and, for unordered wire metadata, one lock-free
// cached class-semantics lookup — never a payload decode and zero
// steady-state allocations (pinned by TestLaneRoutingZeroAlloc). FIFO
// deliberately routes parallel: per-publisher order is exactly what the
// publisher-hashed lanes preserve.
func (ls *laneSet) routeSerial(env *codec.Envelope) bool {
	if env.HasPriority || env.Ordering > obvent.FIFO {
		return true
	}
	if env.Ordering == obvent.FIFO {
		return false
	}
	if sem, ok := ls.reg.ClassSemantics(env.Type); ok {
		return sem.Prioritary || sem.Ordering > obvent.FIFO
	}
	return false
}

// laneKey is the envelope's publisher identity for lane hashing and
// per-publisher stealing: the publisher ID, or the publication ID when
// there is none.
func laneKey(env *codec.Envelope) string {
	if env.Publisher != "" {
		return env.Publisher
	}
	return env.ID
}

// laneFor returns the parallel lane an envelope hashes onto.
func (ls *laneSet) laneFor(env *codec.Envelope) int {
	return laneIndex(laneKey(env), len(ls.par))
}

// laneIndex hashes a publisher key onto a parallel lane: one publisher's
// envelopes always share a lane, keeping per-publisher arrival order
// stable. FNV-1a, inlined to stay allocation-free.
func laneIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// stats folds every lane's counters into one engine-wide snapshot.
func (ls *laneSet) stats() DispatchStats {
	total := ls.serial.st.counters.snapshot()
	for _, l := range ls.par {
		total.add(l.st.counters.snapshot())
	}
	return total
}

// laneStats snapshots each lane individually, serial lane first.
func (ls *laneSet) laneStats() []LaneStat {
	out := make([]LaneStat, 0, len(ls.par)+1)
	out = append(out, LaneStat{
		Lane:         -1,
		Serial:       true,
		Enqueued:     ls.serial.st.enqueued.Load(),
		Queued:       ls.serial.queued(),
		Bound:        ls.cfg.bound,
		Policy:       ls.cfg.policy,
		SpillBacklog: ls.serial.spillBacklog(),
		Stats:        ls.serial.st.counters.snapshot(),
	})
	for i, l := range ls.par {
		out = append(out, LaneStat{
			Lane:         i,
			Enqueued:     l.st.enqueued.Load(),
			Queued:       l.queued(),
			Bound:        ls.cfg.bound,
			Policy:       ls.cfg.policy,
			SpillBacklog: l.spillBacklog(),
			Stats:        l.st.counters.snapshot(),
		})
	}
	return out
}

// close shuts every lane down, draining their backlogs (including any
// spill backlog) first.
func (ls *laneSet) close() {
	var wg sync.WaitGroup
	wg.Add(1 + len(ls.par))
	go func() {
		defer wg.Done()
		ls.serial.close()
	}()
	for _, l := range ls.par {
		go func(l *fifoLane) {
			defer wg.Done()
			l.close()
		}(l)
	}
	wg.Wait()
}

// laneItem is one queued envelope plus its publisher key (for
// per-publisher stealing) and its telemetry enqueue timestamp (0 when
// telemetry is off at enqueue time). The timestamp rides the queue,
// never the envelope: the same *Envelope may be routed concurrently many
// times (loopback fan-in, benchmarks), so envelopes must stay immutable
// through the dispatcher — which is also what lets the spill path
// re-encode them safely.
type laneItem struct {
	env *codec.Envelope
	pub string
	enq int64
}

// pubLoan is one publisher's backlog on loan to a thief lane: while the
// loan is open, every arrival for that publisher lands in buf (guarded
// by the owning lane's mu) and the thief drains it before closing the
// loan, so per-publisher order survives the steal.
type pubLoan struct {
	buf []laneItem
}

// stealMinBacklog is the sibling backlog below which stealing does not
// pay: moving a couple of envelopes costs more in synchronization than
// letting the owner drain them.
const stealMinBacklog = 8

// spillDrainBatch bounds how many spilled records one refill moves back
// into memory.
const spillDrainBatch = 64

// fifoLane is one parallel dispatch lane: a single goroutine draining a
// FIFO queue in arrival order. The queue may be bounded (laneConfig);
// an idle lane steals whole-publisher batches from the hottest sibling.
type fifoLane struct {
	dispatch func(*codec.Envelope, *laneState)
	tele     *telemetry.Plane
	gauge    int // telemetry occupancy-gauge index (serial lane = 0)
	cfg      laneConfig
	set      *laneSet // sibling access for work-stealing (nil in tests)

	mu      sync.Mutex
	cond    *sync.Cond // work available (lane goroutine waits here)
	notFull *sync.Cond // space available (OverloadBlock pushers wait here)
	queue   []laneItem
	head    int // index of the next envelope to pop
	closed  bool
	wg      sync.WaitGroup

	// busyPub is the publisher key of the envelope currently being
	// dispatched by this lane's goroutine ("" when idle); guarded by mu.
	// A thief never steals the busy publisher — its in-flight dispatch
	// would race the stolen batch.
	busyPub string
	// loans are the publishers currently on loan to thief lanes.
	loans map[string]*pubLoan

	spill laneSpill

	st laneState
}

func newFifoLane(dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane, gauge int, cfg laneConfig, set *laneSet) *fifoLane {
	l := makeFifoLane(dispatch, tele, gauge, cfg, set)
	l.start()
	return l
}

// makeFifoLane constructs a lane without starting its goroutine;
// newLaneSet starts all lanes only after par is fully populated so a
// thief's steal scan never races the set's construction.
func makeFifoLane(dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane, gauge int, cfg laneConfig, set *laneSet) *fifoLane {
	l := &fifoLane{dispatch: dispatch, tele: tele, gauge: gauge, cfg: cfg, set: set}
	l.cond = sync.NewCond(&l.mu)
	l.notFull = sync.NewCond(&l.mu)
	l.spill.init(cfg, gauge)
	return l
}

func (l *fifoLane) start() {
	l.wg.Add(1)
	go l.loop()
}

func (l *fifoLane) push(env *codec.Envelope, pub string) {
	var enq int64
	if l.tele.Enabled() {
		enq = telemetry.Now()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.st.enqueued.Add(1)
	item := laneItem{env: env, pub: pub, enq: enq}
	// The routing decision re-runs from the top after every Block wait:
	// while the pusher was parked a thief may have put this publisher on
	// loan (its extraction is what frees the space and wakes us), and
	// appending to the queue then would let the victim dispatch this item
	// after the thief delivers later ones — a per-publisher reorder.
	for {
		// A publisher on loan: its backlog belongs to the thief until the
		// loan closes. Appending to the loan buffer (never the queue)
		// keeps per-publisher order — the thief drains it before
		// returning.
		if lo, ok := l.loans[pub]; ok {
			lo.buf = append(lo.buf, item)
			l.mu.Unlock()
			return
		}
		// Spill mode is sticky: while a disk backlog exists it is older
		// than any new arrival, so arrivals keep spilling until it fully
		// drains.
		if l.spill.count > 0 {
			l.spillItem(item)
			l.cond.Signal()
			l.mu.Unlock()
			return
		}
		if l.cfg.bound <= 0 || len(l.queue)-l.head < l.cfg.bound {
			break
		}
		switch l.cfg.policy {
		case OverloadDropOldest:
			l.shedOldestLocked()
		case OverloadSpill:
			l.spillItem(item)
			l.cond.Signal()
			l.mu.Unlock()
			return
		default: // OverloadBlock
			for !l.closed && len(l.queue)-l.head >= l.cfg.bound {
				l.notFull.Wait()
			}
			if l.closed {
				l.mu.Unlock()
				return
			}
			continue
		}
		break
	}
	l.queue = append(l.queue, item)
	l.cond.Signal()
	// A backlog crossing (or re-crossing) the steal threshold means this
	// lane is hot while a sibling may be parked: wake one idle thief.
	// The wake runs after releasing our own lock — lane locks never nest.
	backlog := len(l.queue) - l.head
	wake := l.set != nil && backlog >= stealMinBacklog && backlog%stealMinBacklog == 0
	l.mu.Unlock()
	if wake {
		l.set.wakeThief(l)
	}
}

// shedOldestLocked drops the oldest queued envelope (OverloadDropOldest).
func (l *fifoLane) shedOldestLocked() {
	item := l.queue[l.head]
	l.queue[l.head] = laneItem{}
	l.head++
	l.noteShed(item.env)
}

// noteShed counts one shed envelope in the lane counters and the
// telemetry drop map. It runs under l.mu, so it must not invoke user
// hooks (a trace hook calling back into LaneStats would deadlock).
func (l *fifoLane) noteShed(env *codec.Envelope) {
	l.st.counters.shed.Add(1)
	l.tele.Drop(telemetry.ReasonOverloadShed)
}

// spillItem appends one envelope to the lane's overflow segment log
// (caller holds mu). A spill failure degrades to a counted shed — the
// lane must keep draining even with a broken disk.
func (l *fifoLane) spillItem(item laneItem) {
	if l.spill.append(marshalSpill(item.env, 0)) {
		l.st.counters.spilled.Add(1)
	} else {
		l.noteShed(item.env)
	}
}

// queued returns the instantaneous in-memory backlog length.
func (l *fifoLane) queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue) - l.head
}

// spillBacklog returns the number of spilled, not-yet-drained envelopes.
func (l *fifoLane) spillBacklog() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spill.count
}

func (l *fifoLane) loop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		l.busyPub = ""
		for l.head == len(l.queue) {
			if l.spill.count > 0 {
				// Refill from the spill backlog before anything newer:
				// spilled records are older than every queued arrival.
				l.refillFromSpillLocked()
				continue
			}
			if l.closed {
				l.mu.Unlock()
				return
			}
			if l.set != nil && l.stealLocked() {
				continue
			}
			l.cond.Wait()
		}
		item := l.queue[l.head]
		l.queue[l.head] = laneItem{}
		l.head++
		l.compactLocked()
		l.busyPub = item.pub
		backlog := len(l.queue) - l.head
		l.notFull.Signal()
		l.mu.Unlock()
		l.runItem(item, backlog)
	}
}

// runItem records the queue-wait telemetry for one envelope and
// dispatches it on this lane's private state.
func (l *fifoLane) runItem(item laneItem, backlog int) {
	l.st.deq = 0
	if item.enq != 0 {
		// lane_wait closes on dequeue; the dequeue timestamp is
		// reused as the dispatch-span start so the two stages tile
		// without a second clock read.
		now := telemetry.Now()
		l.tele.Record(uint32(l.gauge), telemetry.StageLaneWait, now-item.enq)
		l.tele.SampleQueue(l.gauge, backlog)
		l.st.deq = now
	}
	l.dispatch(item.env, &l.st)
}

// refillFromSpillLocked moves up to spillDrainBatch spilled records back
// into the in-memory queue (caller holds mu; the segment log is
// internally synchronized, so concurrent drains by a blocked pusher are
// impossible but concurrent appends would be safe).
func (l *fifoLane) refillFromSpillLocked() {
	l.spill.drain(func(data []byte) {
		env, _, err := unmarshalSpill(data)
		if err != nil {
			l.st.counters.decodeErrors.Add(1)
			l.tele.Drop(telemetry.ReasonDecodeError)
			return
		}
		var enq int64
		if l.tele.Enabled() {
			enq = telemetry.Now()
		}
		l.queue = append(l.queue, laneItem{env: env, pub: laneKey(env), enq: enq})
	})
	l.st.counters.spillDrained.Add(uint64(l.spill.lastDrained))
	if l.spill.count == 0 {
		// Disk backlog fully drained: new arrivals queue in memory again
		// and Block-policy pushers may have space.
		l.notFull.Broadcast()
	}
}

// wakeThief signals the first idle parallel lane other than hot, so a
// parked sibling gets a chance to steal hot's backlog. Called with no
// lane lock held.
func (ls *laneSet) wakeThief(hot *fifoLane) {
	for _, s := range ls.par {
		if s == hot {
			continue
		}
		s.mu.Lock()
		idle := s.head == len(s.queue) && s.spill.count == 0 && !s.closed
		if idle {
			s.cond.Signal()
		}
		s.mu.Unlock()
		if idle {
			return
		}
	}
}

// stealLocked is called by the lane goroutine when its own queue is
// empty (caller holds mu). It releases the lane's own lock, steals and
// dispatches the hottest sibling's hottest publisher batch, and
// re-acquires the lock. Returns true when any work was done (caller
// re-checks its queue), false when there was nothing to steal (caller
// may sleep).
func (l *fifoLane) stealLocked() bool {
	l.mu.Unlock()
	stole := l.stealCycle()
	l.mu.Lock()
	return stole || l.head < len(l.queue) || l.spill.count > 0 || l.closed
}

// stealCycle performs one complete loan: pick a victim and publisher,
// extract the publisher's queued batch, dispatch it here, then drain any
// arrivals that accumulated in the loan buffer until it runs dry.
func (l *fifoLane) stealCycle() bool {
	victim, pub, batch := l.stealBatch()
	if victim == nil {
		return false
	}
	l.st.counters.steals.Add(1)
	for {
		l.st.counters.stolen.Add(uint64(len(batch)))
		for _, item := range batch {
			l.runItem(item, 0)
		}
		victim.mu.Lock()
		lo := victim.loans[pub]
		if len(lo.buf) == 0 {
			delete(victim.loans, pub)
			victim.mu.Unlock()
			return true
		}
		batch, lo.buf = lo.buf, nil
		victim.mu.Unlock()
	}
}

// stealBatch picks the sibling with the largest backlog and extracts
// every queued envelope of its hottest stealable publisher, installing
// a loan so later arrivals for that publisher follow the batch instead
// of racing it. Lock discipline: only the victim's mu is held — lane
// locks never nest, so steals cannot deadlock.
func (l *fifoLane) stealBatch() (victim *fifoLane, pub string, batch []laneItem) {
	var best *fifoLane
	bestLen := stealMinBacklog - 1
	for _, s := range l.set.par {
		if s == l {
			continue
		}
		if n := s.queued(); n > bestLen {
			best, bestLen = s, n
		}
	}
	if best == nil {
		return nil, "", nil
	}
	best.mu.Lock()
	defer best.mu.Unlock()
	if best.spill.count > 0 {
		// A spilling lane's disk backlog may hold newer envelopes of any
		// publisher; stealing its in-memory window would reorder them.
		return nil, "", nil
	}
	// Hottest publisher among the queued items, skipping the one in
	// dispatch right now and those already on loan. The map allocates,
	// but only on this rare idle-lane path — never per envelope.
	counts := make(map[string]int)
	for i := best.head; i < len(best.queue); i++ {
		p := best.queue[i].pub
		if p == best.busyPub {
			continue
		}
		if _, loaned := best.loans[p]; loaned {
			continue
		}
		counts[p]++
	}
	bestCount := 0
	for p, c := range counts {
		if c > bestCount || (c == bestCount && p < pub) {
			pub, bestCount = p, c
		}
	}
	if bestCount == 0 {
		return nil, "", nil
	}
	w := best.head
	for i := best.head; i < len(best.queue); i++ {
		if best.queue[i].pub == pub {
			batch = append(batch, best.queue[i])
		} else {
			best.queue[w] = best.queue[i]
			w++
		}
	}
	for i := w; i < len(best.queue); i++ {
		best.queue[i] = laneItem{}
	}
	best.queue = best.queue[:w]
	if best.loans == nil {
		best.loans = make(map[string]*pubLoan)
	}
	best.loans[pub] = &pubLoan{}
	// The extraction freed queue space: wake Block-policy pushers.
	best.notFull.Broadcast()
	return best, pub, batch
}

// compactLocked keeps the queue's memory proportional to its live
// backlog. Without it, append would grow the slice forever (head only
// advances) and a one-time burst would pin its high-water array for the
// engine's lifetime.
func (l *fifoLane) compactLocked() {
	live := len(l.queue) - l.head
	switch {
	case live == 0:
		// Empty: restart at the front; release a burst-sized array.
		if cap(l.queue) > laneShrinkMin {
			l.queue = nil
		} else {
			l.queue = l.queue[:0]
		}
		l.head = 0
	case cap(l.queue) > laneShrinkMin && cap(l.queue) > 4*live:
		// Backlog occupies under a quarter of the array: right-size it.
		shrunk := make([]laneItem, live)
		copy(shrunk, l.queue[l.head:])
		l.queue = shrunk
		l.head = 0
	case l.head >= laneShrinkMin && 2*l.head >= len(l.queue):
		// Mostly dead prefix: slide the live tail down in place so
		// append reuses the front instead of growing.
		copy(l.queue, l.queue[l.head:])
		for i := live; i < len(l.queue); i++ {
			l.queue[i] = laneItem{}
		}
		l.queue = l.queue[:live]
		l.head = 0
	}
}

// close marks the lane closed, wakes everyone (drain goroutine and any
// blocked pushers) and waits for the backlog — memory and spill — to
// drain. Broadcast for the same reason as priorityInbox.close.
func (l *fifoLane) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.notFull.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
	l.spill.close()
}
