package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govents/internal/codec"
	"govents/internal/filter"
	"govents/internal/matching"
	"govents/internal/obvent"
	"govents/internal/telemetry"
)

// This file implements the engine's indexed delivery pipeline:
//
//	wire type name ──► dispatchTable ──► typeBucket ──► compound match
//	                   (atomic COW)      (per class)    ──► clone per match
//
// The table is an immutable snapshot of the active subscription set,
// republished through an atomic pointer on every activate/deactivate, so
// the per-envelope hot path never takes the engine mutex and never sorts.
// Each concrete obvent class gets a lazily compiled bucket holding its
// candidate subscriptions (expanded through the registry's conformance
// relation) and a compound matcher (package matching) that factors all
// their remote filters, so an event's conditions are evaluated once
// across all subscribers instead of once per subscription. The envelope
// is decoded once into a canonical value used only for remote-filter
// matching; the per-subscriber clones required by obvent local
// uniqueness (§2.1.2) are produced only for the subscriptions whose
// remote matching passed, and opaque local filters run on the
// subscriber's own clone (as in the naive path), so filters can never
// observe another subscriber's state.

// DispatchStats are the engine's cumulative delivery counters. They make
// silently dropped traffic (expired envelopes, undecodable payloads)
// observable instead of vanishing in the dispatch loop.
type DispatchStats struct {
	// EventsIn counts envelopes entering dispatch.
	EventsIn uint64
	// Expired counts timely envelopes dropped as obsolete (§3.1.2).
	Expired uint64
	// Matched counts (subscription, event) pairs that passed type,
	// activation, remote-filter and local-filter matching.
	Matched uint64
	// Delivered counts clones actually handed to subscription
	// executors. A clone that fails to decode surfaces in DecodeErrors
	// before it can match, and a quarantined slow consumer's mailbox
	// overflow surfaces in SlowConsumerDrops, so Matched and Delivered
	// coincide; both exclude dropped deliveries.
	Delivered uint64
	// DecodeErrors counts envelopes or clones that failed to decode.
	DecodeErrors uint64
	// HandlerPanics counts application handler panics recovered by the
	// delivery pipeline (engine-wide; per-event, not per-lane).
	HandlerPanics uint64

	// Shed counts envelopes dropped by bounded lanes under the
	// DropOldest overload policy (plus spill-failure degradations) —
	// telemetry reason "overload_shed".
	Shed uint64
	// Spilled / SpillDrained count envelopes written to and drained back
	// from the per-lane overflow segment logs (OverloadSpill). Spilled
	// minus SpillDrained is the aggregate on-disk backlog.
	Spilled      uint64
	SpillDrained uint64
	// Steals counts whole-publisher batch steals performed by idle
	// parallel lanes; StolenEvents counts the envelopes they moved.
	Steals       uint64
	StolenEvents uint64
	// SlowConsumerDrops counts deliveries dropped because a quarantined
	// slow consumer's bounded mailbox overflowed (engine-wide; telemetry
	// reason "slow_consumer"). Other subscriptions are unaffected.
	SlowConsumerDrops uint64
	// Quarantines counts slow-consumer quarantine transitions
	// (engine-wide): a handler exceeded its stall budget with deliveries
	// waiting and was moved to a bounded, serialized mailbox.
	Quarantines uint64

	// AccessorPrograms counts the accessor programs compiled by the live
	// dispatch table's compound matchers: one per (event type, unique
	// filter path) first seen by a bucket. Counters follow the current
	// table — buckets (and their matchers) are recompiled on
	// subscription churn and registry growth, restarting the count.
	AccessorPrograms uint64
	// AccessorFallbacks counts per-event path resolutions in the live
	// table's matchers that fell back to name-based reflection (path
	// does not compile for the event type; fail-open is preserved).
	AccessorFallbacks uint64
	// CopierCompiles counts pointer-bearing classes for which the
	// engine's codec compiled a deep copier (cumulative; a class is
	// decided once).
	CopierCompiles uint64
	// CopierFallbacks counts classes the copier compiler rejected to the
	// gob-decode-per-clone fallback (unsupported layout).
	CopierFallbacks uint64

	// WireCompiles / WireRejects count per-class wire-codec program
	// compilation outcomes in the engine's codec (each class is decided
	// once; rejected classes keep the gob payload encoding).
	WireCompiles uint64
	WireRejects  uint64
	// WireEncodes / WireDecodes count compact payload encodes and full
	// compact decodes (materializations) by the engine's codec.
	WireEncodes uint64
	WireDecodes uint64
	// GobPayloadEncodes / GobPayloadDecodes count gob-fallback payload
	// traffic (rejected classes, legacy peers, wire-disabled codecs).
	GobPayloadEncodes uint64
	GobPayloadDecodes uint64
	// WireDowngrades counts per-destination gob transcodes performed for
	// peers that did not advertise wire capability.
	WireDowngrades uint64
	// PartialDecodes counts wire-encoded events the live table's
	// matchers evaluated straight from the compact payload, without
	// materializing the event at all.
	PartialDecodes uint64
	// WireMaterializations counts wire-encoded events the matchers had
	// to decode fully (plans referencing accessor methods).
	WireMaterializations uint64
}

// dispatchCounters is the engine-internal atomic form of DispatchStats.
type dispatchCounters struct {
	eventsIn     atomic.Uint64
	expired      atomic.Uint64
	matched      atomic.Uint64
	delivered    atomic.Uint64
	decodeErrors atomic.Uint64
	shed         atomic.Uint64
	spilled      atomic.Uint64
	spillDrained atomic.Uint64
	steals       atomic.Uint64
	stolen       atomic.Uint64
}

func (c *dispatchCounters) snapshot() DispatchStats {
	return DispatchStats{
		EventsIn:     c.eventsIn.Load(),
		Expired:      c.expired.Load(),
		Matched:      c.matched.Load(),
		Delivered:    c.delivered.Load(),
		DecodeErrors: c.decodeErrors.Load(),
		Shed:         c.shed.Load(),
		Spilled:      c.spilled.Load(),
		SpillDrained: c.spillDrained.Load(),
		Steals:       c.steals.Load(),
		StolenEvents: c.stolen.Load(),
	}
}

// add folds another snapshot into s (used to aggregate per-lane counters).
func (s *DispatchStats) add(o DispatchStats) {
	s.EventsIn += o.EventsIn
	s.Expired += o.Expired
	s.Matched += o.Matched
	s.Delivered += o.Delivered
	s.DecodeErrors += o.DecodeErrors
	s.Shed += o.Shed
	s.Spilled += o.Spilled
	s.SpillDrained += o.SpillDrained
	s.Steals += o.Steals
	s.StolenEvents += o.StolenEvents
}

// Stats returns a snapshot of the engine's delivery counters, folded
// across all dispatch lanes, plus the compile-step counters of the
// reflection-free pipeline: accessor programs in the live dispatch
// table's matchers and deep copiers in the engine's codec.
func (e *Engine) Stats() DispatchStats {
	st := e.lanes.stats()
	st.HandlerPanics = e.handlerPanics.Load()
	st.SlowConsumerDrops = e.overload.slowDrops.Load()
	st.Quarantines = e.overload.quarantines.Load()
	cs := e.codec.CopierStats()
	st.CopierCompiles = cs.Compiles
	st.CopierFallbacks = cs.Rejects
	ws := e.codec.WireStats()
	st.WireCompiles = ws.Compiles
	st.WireRejects = ws.Rejects
	st.WireEncodes = ws.Encodes
	st.WireDecodes = ws.Decodes
	st.GobPayloadEncodes = ws.GobEncodes
	st.GobPayloadDecodes = ws.GobDecodes
	st.WireDowngrades = ws.Downgrades
	e.table.Load().buckets.Range(func(_, v any) bool {
		if b := v.(*typeBucket); b.compound != nil {
			ms := b.compound.Stats()
			st.AccessorPrograms += ms.AccessorPrograms
			st.AccessorFallbacks += ms.AccessorFallbacks
			st.PartialDecodes += ms.PartialDecodes
			st.WireMaterializations += ms.WireMaterializations
		}
		return true
	})
	return st
}

// LaneStats returns a per-lane snapshot of the dispatcher: the serial
// (ordered/prioritary) lane first, then each parallel lane.
func (e *Engine) LaneStats() []LaneStat { return e.lanes.laneStats() }

// DispatchLanes returns the number of parallel dispatch lanes (the
// serial lane is additional).
func (e *Engine) DispatchLanes() int { return len(e.lanes.par) }

// dispatchTable is an immutable snapshot of the active subscriptions,
// grouped by subscribed (target) type name. It is published via
// Engine.table; dispatch loads it lock-free. Buckets for concrete
// classes are compiled on first use and cached in a sync.Map — the cache
// is monotone per table (a bucket is only ever replaced by an equivalent
// recompilation after a registry mutation), so racing compilations are
// harmless.
type dispatchTable struct {
	reg *obvent.Registry
	// byTarget maps each subscribed type name to its active
	// subscriptions, each group sorted by subscription ID.
	byTarget map[string][]*Subscription
	// targets is the sorted key set of byTarget, for deterministic
	// bucket compilation order.
	targets []string
	// buckets caches concrete wire type name -> *typeBucket.
	buckets sync.Map
}

// typeBucket is the precompiled dispatch state for one concrete obvent
// class: every active subscription the class conforms to, with all
// remote filters factored into one compound matcher.
type typeBucket struct {
	// gen is the registry generation the bucket was compiled under; a
	// later registration (e.g. of an abstract type) invalidates it.
	gen uint64
	// subs is every candidate subscription, sorted by ID — the
	// deterministic dispatch order.
	subs []*Subscription
	// unfiltered are the candidates without a remote filter (always
	// match, modulo local predicates), sorted by ID.
	unfiltered []*Subscription
	// compound factors the remote filters of the remaining candidates;
	// nil when no candidate has a remote filter — then no canonical
	// decode is needed at all.
	compound *matching.Compound
	// byID resolves compound match results back to subscriptions.
	byID map[string]*Subscription
}

// newDispatchTable snapshots the active subscription set. Caller must
// not hold subscription mutexes.
func newDispatchTable(reg *obvent.Registry, subs map[string]*Subscription) *dispatchTable {
	t := &dispatchTable{reg: reg, byTarget: make(map[string][]*Subscription)}
	for _, s := range subs {
		if !s.active() {
			continue
		}
		t.byTarget[s.typeName] = append(t.byTarget[s.typeName], s)
	}
	for name, group := range t.byTarget {
		sort.Slice(group, func(i, j int) bool { return group[i].id < group[j].id })
		t.targets = append(t.targets, name)
	}
	sort.Strings(t.targets)
	return t
}

// bucket returns the compiled dispatch state for a concrete class,
// compiling and caching it on first use (and recompiling when the type
// registry has grown since, which can extend conformance). Wire names
// the registry does not know are never cached: env.Type comes off the
// wire, and caching arbitrary peer-supplied strings would grow the
// table without bound.
func (t *dispatchTable) bucket(concrete string) *typeBucket {
	gen := t.reg.Gen()
	if v, ok := t.buckets.Load(concrete); ok {
		b := v.(*typeBucket)
		if b.gen == gen {
			return b
		}
	}
	b := t.compileBucket(concrete, gen)
	if _, known := t.reg.TypeByName(concrete); known {
		t.buckets.Store(concrete, b)
	}
	return b
}

// compileBucket gathers the candidates for one concrete class and
// factors their remote filters into a compound matcher.
func (t *dispatchTable) compileBucket(concrete string, gen uint64) *typeBucket {
	var cands []*Subscription
	for _, target := range t.targets {
		if t.reg.ConformsTo(concrete, target) {
			cands = append(cands, t.byTarget[target]...)
		}
	}
	if len(cands) == 0 {
		return &typeBucket{gen: gen}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })

	b := &typeBucket{gen: gen, subs: cands}
	var filters map[string]*filter.Expr
	for _, s := range cands {
		if s.remoteFilter == nil {
			b.unfiltered = append(b.unfiltered, s)
			continue
		}
		if filters == nil {
			filters = make(map[string]*filter.Expr)
			b.byID = make(map[string]*Subscription)
		}
		filters[s.id] = s.remoteFilter
		b.byID[s.id] = s
	}
	if filters != nil {
		b.compound = matching.New()
		// One batch add = one plan compilation (per-Add compilation
		// would be quadratic in candidates, on the dispatcher
		// goroutine). Validated at Subscribe; AddBatch cannot fail.
		_ = b.compound.AddBatch(filters)
	}
	return b
}

// dispatchScratch is one dispatch lane's reusable working state. Each
// lane has exactly one drain goroutine, so no pooling or locking is
// needed; the slices just survive across that lane's envelopes.
type dispatchScratch struct {
	ids     []string          // compound match output buffer
	deliver []*Subscription   // delivery list for the current envelope
	src     codec.CloneSource // clone source, reset per envelope
	// full materializes the current envelope's event from src — the
	// fallback the wire match path invokes when lazy extraction cannot
	// decide a plan. One persistent closure per lane (created on first
	// use, capturing the lane's stable scratch pointer) so the hot path
	// does not allocate a closure per envelope.
	full func() (any, error)
}

// dispatch matches one envelope against the indexed subscription table
// and hands a fresh clone to each matching subscription's executor. It
// runs on a lane goroutine with that lane's private state ln; lanes
// dispatch concurrently, sharing only the immutable table snapshot, the
// codec and the (internally synchronized) executors.
func (e *Engine) dispatch(env *codec.Envelope, ln *laneState) {
	ln.counters.eventsIn.Add(1)
	// Timely obvents: obsolete envelopes are dropped, not delivered
	// (§3.1.2).
	if env.Expired(time.Now()) {
		ln.counters.expired.Add(1)
		e.noteDrop(env, telemetry.ReasonExpired)
		return
	}
	if e.naiveDispatch {
		e.dispatchNaive(env, ln)
		return
	}

	b := e.table.Load().bucket(env.Type)
	if len(b.subs) == 0 {
		return
	}

	// Decode once: one canonical value drives all remote-filter
	// evaluation; buckets without remote filters skip the decode. The
	// CloneSource lives in the lane scratch — resolving a source must
	// not allocate per envelope.
	sc := &ln.scratch
	src := &sc.src
	if err := e.codec.SourceInto(env, src); err != nil {
		ln.counters.decodeErrors.Add(1)
		e.noteDrop(env, telemetry.ReasonDecodeError)
		sc.src = codec.CloneSource{} // do not pin the failed envelope
		return
	}
	matched := sc.ids[:0]
	if b.compound != nil {
		// Wire-encoded payloads evaluate lazily: the compound extracts
		// the referenced fields straight from the compact payload and
		// materializes the event (through sc.full) only when a plan path
		// goes through an accessor method. Gob payloads decode once into
		// a canonical value, as before.
		if wp, payload, isWire := src.Wire(); isWire {
			if sc.full == nil {
				sc.full = func() (any, error) { return sc.src.Clone() }
			}
			m, err := b.compound.MatchWireAppend(wp, payload, sc.full, matched)
			if err != nil {
				ln.counters.decodeErrors.Add(1)
				e.noteDrop(env, telemetry.ReasonDecodeError)
				sc.src = codec.CloneSource{} // do not pin the failed envelope
				return
			}
			matched = m
		} else {
			canonical, err := src.Clone()
			if err != nil {
				ln.counters.decodeErrors.Add(1)
				e.noteDrop(env, telemetry.ReasonDecodeError)
				sc.src = codec.CloneSource{} // do not pin the failed envelope
				return
			}
			matched = b.compound.MatchAppend(canonical, matched)
		}
	}

	// Merge the unfiltered candidates with the compound matches in
	// subscription-ID order (both lists are sorted), dropping inactive
	// members.
	deliver := sc.deliver[:0]
	ui, mi := 0, 0
	for ui < len(b.unfiltered) || mi < len(matched) {
		var s *Subscription
		if mi >= len(matched) || (ui < len(b.unfiltered) && b.unfiltered[ui].id < matched[mi]) {
			s = b.unfiltered[ui]
			ui++
		} else {
			s = b.byID[matched[mi]]
			mi++
		}
		if !s.active() {
			continue
		}
		deliver = append(deliver, s)
	}

	// Clone per match (§2.1.2): only subscriptions whose remote
	// matching passed pay a decode, O(matches)+1 instead of
	// O(subscriptions). Opaque local filters run on the subscriber's
	// own clone — exactly as in the naive path — so a mutating local
	// filter can never leak state across subscriptions.
	ordered := e.orderedDelivery(env)
	decodeFailed := false // count decode errors once per envelope
	for _, s := range deliver {
		o, err := src.Clone()
		if err != nil {
			if !decodeFailed {
				decodeFailed = true
				ln.counters.decodeErrors.Add(1)
				e.noteDrop(env, telemetry.ReasonDecodeError)
			}
			continue
		}
		if s.localFilter != nil && !s.localFilter(o) {
			continue
		}
		switch s.executor.submit(o, ordered, ln.deq, env.PubNanos, env.ID, env.Type) {
		case submitOK:
			ln.counters.matched.Add(1)
			ln.counters.delivered.Add(1)
		case submitShed:
			e.noteDrop(env, telemetry.ReasonSlowConsumer)
		default: // submitClosed
			e.noteDrop(env, telemetry.ReasonExecutorClosed)
		}
	}
	// Retain any buffer growth for this lane's next envelope; drop the
	// clone source's payload and prototype references so an idle lane
	// does not pin its last envelope's obvent for the GC.
	sc.ids = matched[:0]
	sc.deliver = deliver[:0]
	sc.src = codec.CloneSource{}
}

// orderedDelivery reports whether this envelope's deliveries must run
// in order on the subscriber executors: stamped wire ordering, or the
// envelope's class resolving to an ordering. It mirrors the ordering
// half of the lane router's rule (lanes.go routeSerial), so an envelope
// steered to the serial lane because its class is ordered — e.g. a peer
// that forgot to stamp the wire metadata — is also executed serially,
// not just queued serially. Deliberately narrower than routeSerial:
// Prioritary envelopes are queued serially (so they can overtake
// backlog) but execute under the normal thread policy — priority and
// ordering cannot combine (Figure 4), and forcing inline execution here
// would change Prioritary handler concurrency from the paper's default.
func (e *Engine) orderedDelivery(env *codec.Envelope) bool {
	if env.Ordering > obvent.NoOrder {
		return true
	}
	if sem, ok := e.reg.ClassSemantics(env.Type); ok {
		return sem.Ordering > obvent.NoOrder
	}
	return false
}

// dispatchNaive is the pre-index delivery path: snapshot and sort the
// whole subscription table, then decode and evaluate per subscription.
// It is retained, behind WithNaiveDispatch, as the transparency oracle
// for tests and the baseline for BenchmarkDispatch.
func (e *Engine) dispatchNaive(env *codec.Envelope, ln *laneState) {
	e.mu.Lock()
	subs := make([]*Subscription, 0, len(e.subs))
	for _, s := range e.subs {
		subs = append(subs, s)
	}
	e.mu.Unlock()
	// Deterministic dispatch order (map iteration is random).
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })

	ordered := e.orderedDelivery(env)
	// One clone source per envelope — the same decode entry point as the
	// indexed path (SourceInto on the lane scratch), resolved lazily so
	// an envelope no subscription conforms to never decodes at all.
	src := &ln.scratch.src
	srcResolved := false
	decodeFailed := false // count decode errors once per envelope, as the indexed path does
	for _, s := range subs {
		if !s.active() {
			continue
		}
		if !e.reg.ConformsTo(env.Type, s.typeName) {
			continue
		}
		if !srcResolved {
			if err := e.codec.SourceInto(env, src); err != nil {
				ln.counters.decodeErrors.Add(1)
				e.noteDrop(env, telemetry.ReasonDecodeError)
				ln.scratch.src = codec.CloneSource{}
				return
			}
			srcResolved = true
		}
		// Obvent local uniqueness (§2.1.2): each subscription gets
		// its own clone.
		o, err := src.Clone()
		if err != nil {
			if !decodeFailed {
				decodeFailed = true
				ln.counters.decodeErrors.Add(1)
				e.noteDrop(env, telemetry.ReasonDecodeError)
			}
			continue
		}
		if s.remoteFilter != nil {
			ok, err := filter.Evaluate(s.remoteFilter, o)
			if err != nil || !ok {
				continue
			}
		}
		if s.localFilter != nil && !s.localFilter(o) {
			continue
		}
		switch s.executor.submit(o, ordered, ln.deq, env.PubNanos, env.ID, env.Type) {
		case submitOK:
			ln.counters.matched.Add(1)
			ln.counters.delivered.Add(1)
		case submitShed:
			e.noteDrop(env, telemetry.ReasonSlowConsumer)
		default: // submitClosed
			e.noteDrop(env, telemetry.ReasonExecutorClosed)
		}
	}
	// Do not pin the envelope's payload or prototype on an idle lane.
	ln.scratch.src = codec.CloneSource{}
}

// noteDrop feeds one dropped delivery into the telemetry plane: the
// by-reason counter map always, plus an always-on (never sampled away)
// trace span so drop outcomes are visible to the hook. No-op without a
// plane; the expired/decode counters in DispatchStats are unaffected.
func (e *Engine) noteDrop(env *codec.Envelope, r telemetry.Reason) {
	e.tele.Drop(r)
	e.tele.Trace(env.ID, env.Type, telemetry.StageDispatch, 0, r.String())
}

// rebuildTable republishes the dispatch table from the current
// subscription set. Called whenever the active set changes. Snapshot
// and Store happen under the engine mutex so concurrent
// activate/deactivate calls cannot publish tables out of snapshot
// order (a stale table overwriting a newer one would silently drop an
// active subscription from dispatch until the next change).
func (e *Engine) rebuildTable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.table.Store(newDispatchTable(e.reg, e.subs))
}
