package core

import (
	"fmt"
	"reflect"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"govents/internal/filter"
	"govents/internal/obvent"
	"govents/internal/telemetry"
)

// Subscription is the handle returned by the subscribe primitive (paper
// Figure 3): it uniquely identifies a subscription and controls its
// lifecycle (activate/deactivate, §3.4) and thread semantics (§3.3.5).
// The zero value is not usable; subscriptions are created by Subscribe.
type Subscription struct {
	id       string
	engine   *Engine
	typeName string
	goType   reflect.Type

	remoteFilter *filter.Expr
	localFilter  func(obvent.Obvent) bool
	handler      func(obvent.Obvent)
	// deliveryHandler, when set, is invoked instead of handler and
	// additionally receives the delivery metadata (event ID, concrete
	// class). Durable subscriptions use it to acknowledge exactly the
	// delivered event in their inbox.
	deliveryHandler func(obvent.Obvent, Delivery)
	executor        *executor

	mu        sync.Mutex
	activated bool
	durableID string
}

// ID returns the engine-unique subscription identifier.
func (s *Subscription) ID() string { return s.id }

// TypeName returns the wire name of the subscribed type.
func (s *Subscription) TypeName() string { return s.typeName }

// Active reports whether the subscription currently receives obvents.
func (s *Subscription) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activated
}

// active is the internal spelling used by the engine snapshot paths.
func (s *Subscription) active() bool { return s.Active() }

// info snapshots the substrate-visible description.
func (s *Subscription) info() SubscriptionInfo {
	s.mu.Lock()
	durable := s.durableID
	s.mu.Unlock()
	var fb []byte
	if s.remoteFilter != nil {
		// Validation happened at Subscribe; Marshal cannot fail then.
		// The canonical form makes semantically identical filters of
		// different subscribers byte-identical on the wire, so filtering
		// hosts can deduplicate them by bytes alone (routing plan keys).
		fb, _ = filter.MarshalCanonical(s.remoteFilter)
	}
	return SubscriptionInfo{
		ID:        s.id,
		TypeName:  s.typeName,
		Filter:    fb,
		DurableID: durable,
		Certified: s.certifiedType(),
	}
}

// certifiedType reports whether the subscribed type itself requests
// certified delivery (determinable only for concrete types).
func (s *Subscription) certifiedType() bool {
	if s.goType.Kind() == reflect.Interface {
		return s.goType.Implements(obvent.TypeOf[obvent.Certified]())
	}
	return reflect.PointerTo(s.goType).Implements(obvent.TypeOf[obvent.Certified]()) ||
		s.goType.Implements(obvent.TypeOf[obvent.Certified]())
}

// Activate starts delivery for this subscription — the effective action
// of subscribing (§3.4.1). Activating an already active subscription
// fails with ErrCannotSubscribe, as the paper specifies.
func (s *Subscription) Activate() error {
	return s.activate("")
}

// ActivateDurable activates the subscription under a stable durable
// identity, the analog of the paper's activate(long id) used with
// certified obvents: the subscription's lifetime may exceed the hosting
// process, and a recovering process reclaims it by presenting the same
// identity (§3.4.1).
func (s *Subscription) ActivateDurable(durableID string) error {
	if durableID == "" {
		return fmt.Errorf("%w: empty durable id", ErrCannotSubscribe)
	}
	return s.activate(durableID)
}

func (s *Subscription) activate(durableID string) error {
	s.mu.Lock()
	if s.activated {
		s.mu.Unlock()
		return fmt.Errorf("%w: subscription %s already activated", ErrCannotSubscribe, s.id)
	}
	s.activated = true
	s.durableID = durableID
	s.mu.Unlock()

	if err := s.engine.subscriptionChanged(); err != nil {
		s.mu.Lock()
		s.activated = false
		s.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
	}
	return nil
}

// Deactivate stops delivery — the action of unsubscribing (§3.4.2).
// Deactivating an inactive subscription fails with ErrCannotUnsubscribe.
// Activation and deactivation can be interleaved an unlimited number of
// times; a deactivated subscription handle stays valid.
func (s *Subscription) Deactivate() error {
	s.mu.Lock()
	if !s.activated {
		s.mu.Unlock()
		return fmt.Errorf("%w: subscription %s not active", ErrCannotUnsubscribe, s.id)
	}
	s.activated = false
	s.mu.Unlock()

	if err := s.engine.subscriptionChanged(); err != nil {
		return fmt.Errorf("%w: %w", ErrCannotUnsubscribe, err)
	}
	return nil
}

// SetSingleThreading makes the handler process at most one obvent at a
// time (paper §3.3.5). Already-queued work is unaffected.
func (s *Subscription) SetSingleThreading() {
	s.executor.setLimit(1)
}

// SetMultiThreading lets the handler process up to maxNb obvents
// concurrently; maxNb <= 0 means unlimited, the paper's default for
// unordered obvents.
func (s *Subscription) SetMultiThreading(maxNb int) {
	s.executor.setLimit(maxNb)
}

// invoke runs the application handler for one obvent, reporting whether
// it completed. A panicking handler is contained here — on the executor
// goroutine it would otherwise kill the whole process — counted in the
// engine's HandlerPanics stat and the telemetry drop map, and logged
// with its stack so the crash stays diagnosable (the net/http handler
// convention); other subscriptions' deliveries of the same event are
// unaffected.
func (s *Subscription) invoke(item submission) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.engine.handlerPanics.Add(1)
			s.engine.tele.Drop(telemetry.ReasonHandlerPanic)
			s.engine.tele.Trace(item.id, item.class, telemetry.StageDispatch, 0,
				telemetry.ReasonHandlerPanic.String())
			s.engine.log.Error("recovered panic in obvent handler",
				"subscription", s.id,
				"type", s.typeName,
				"event", item.id,
				"panic", r,
				"stack", string(debug.Stack()))
		}
	}()
	if s.deliveryHandler != nil {
		s.deliveryHandler(item.o, Delivery{EventID: item.id, Class: item.class})
	} else {
		s.handler(item.o)
	}
	return true
}

// executor runs a subscription's handler according to its thread policy:
// a serial intake goroutine pulls obvents off an unbounded queue and
// either runs the handler inline (single-threading) or spawns handler
// goroutines gated by a semaphore (multi-threading with a cap).
//
// When the engine configures a slow-consumer stall budget, the executor
// additionally watches its own progress: a handler that has been running
// past the budget without completing anything, while deliveries queue
// behind it, quarantines the subscription — its queue becomes a bounded
// mailbox (overflow drops are counted as slow-consumer drops, never
// blocking the dispatch lane) and execution serializes until the handler
// makes progress again. One wedged subscriber can therefore never
// head-of-line-block the lane, the engine, or — via the close-abandon
// path below — shutdown.
type executor struct {
	run  func(submission) bool // reports whether the handler completed
	tele *telemetry.Plane

	// Slow-consumer isolation (quarantine) configuration: a zero
	// stallBudget disables it and every probe short-circuits.
	stallBudget time.Duration
	mailbox     int
	counters    *overloadCounters

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []submission
	limit  int // 0 = unlimited, 1 = single, n = bounded
	closed bool

	// quarantined is the isolation state; transitions happen under mu,
	// reads may be lock-free.
	quarantined atomic.Bool

	// Stall detection (lock-free): running handlers now; the monotonic
	// time the current busy era began (running went 0→1); the monotonic
	// time of the last handler completion. A healthy pipelined consumer
	// keeps lastDone fresh no matter how old its era is.
	running  atomic.Int64
	eraStart atomic.Int64
	lastDone atomic.Int64

	inflight sync.WaitGroup
	intake   sync.WaitGroup
	sem      chan struct{} // rebuilt when the limit changes
}

// overloadCounters are the engine-wide slow-consumer accounting shared
// by every executor of an engine.
type overloadCounters struct {
	slowDrops   atomic.Uint64
	quarantines atomic.Uint64
}

// submitStatus is the outcome of an executor submit.
type submitStatus int

const (
	submitOK submitStatus = iota
	// submitClosed: the executor was already closed (shutdown race).
	submitClosed
	// submitShed: the quarantined consumer's bounded mailbox was full;
	// the delivery was dropped for this subscription only.
	submitShed
)

// defaultQuarantineMailbox bounds a quarantined consumer's queue when
// the engine enables a stall budget without choosing a mailbox size.
const defaultQuarantineMailbox = 1024

// submission is one queued delivery; ordered deliveries bypass the
// thread policy and run inline on the intake goroutine, because "multi-
// threading ... [is] assumed by default, except in the case of ordered
// obvents" (paper §3.3.5). The telemetry context rides the submission —
// never the envelope or the clone — so handler-return timing can close
// the dequeue→handler and end-to-end spans: deq is the lane's dequeue
// timestamp (0 when telemetry was off), pub the publisher's wall-clock
// UnixNano stamp (0 from legacy peers), id/class the envelope identity
// for trace spans.
type submission struct {
	o       obvent.Obvent
	ordered bool
	deq     int64
	pub     int64
	id      string
	class   string
}

func newExecutor(run func(submission) bool, tele *telemetry.Plane, stallBudget time.Duration, mailbox int, counters *overloadCounters) *executor {
	if stallBudget > 0 && mailbox <= 0 {
		mailbox = defaultQuarantineMailbox
	}
	x := &executor{run: run, tele: tele, stallBudget: stallBudget, mailbox: mailbox, counters: counters}
	x.cond = sync.NewCond(&x.mu)
	x.intake.Add(1)
	go x.loop()
	return x
}

func (x *executor) setLimit(n int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if n < 0 {
		n = 0
	}
	x.limit = n
	if n > 1 {
		x.sem = make(chan struct{}, n)
	} else {
		x.sem = nil
	}
}

// submit enqueues one delivery; the status reports when the executor is
// already closed (the obvent will never reach the handler, so the
// engine's delivery counters stay truthful during shutdown) or when the
// quarantined consumer's bounded mailbox overflowed. deq, pub, id and
// class are the delivery's telemetry context (see submission).
func (x *executor) submit(o obvent.Obvent, ordered bool, deq, pub int64, id, class string) submitStatus {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return submitClosed
	}
	if x.stallBudget > 0 {
		if !x.quarantined.Load() && len(x.queue) > 0 && x.stalled(telemetry.Now()) {
			x.quarantined.Store(true)
			x.counters.quarantines.Add(1)
		}
		if x.quarantined.Load() && len(x.queue) >= x.mailbox {
			x.counters.slowDrops.Add(1)
			return submitShed
		}
	}
	x.queue = append(x.queue, submission{o: o, ordered: ordered, deq: deq, pub: pub, id: id, class: class})
	x.cond.Signal()
	return submitOK
}

// stalled reports whether the handler is wedged: work is running, the
// busy era started longer than the stall budget ago, and nothing has
// completed within the budget either. Cheap enough for the submit path
// (three atomic loads); a healthy consumer fails the lastDone check.
func (x *executor) stalled(now int64) bool {
	if x.running.Load() == 0 {
		return false
	}
	budget := int64(x.stallBudget)
	if era := x.eraStart.Load(); era == 0 || now-era <= budget {
		return false
	}
	return now-x.lastDone.Load() > budget
}

// runTracked wraps one handler invocation with the stall-detection
// bookkeeping and the quarantine-recovery check.
func (x *executor) runTracked(item submission) bool {
	if x.stallBudget <= 0 {
		return x.run(item)
	}
	if x.running.Add(1) == 1 {
		x.eraStart.Store(telemetry.Now())
	}
	ok := x.run(item)
	x.lastDone.Store(telemetry.Now())
	x.running.Add(-1)
	if x.quarantined.Load() {
		// A completion is progress: release the quarantine once the
		// mailbox has drained to half, so recovery has headroom before
		// the next overflow.
		x.mu.Lock()
		if x.quarantined.Load() && len(x.queue) <= x.mailbox/2 {
			x.quarantined.Store(false)
		}
		x.mu.Unlock()
	}
	return ok
}

func (x *executor) loop() {
	defer x.intake.Done()
	for {
		x.mu.Lock()
		for len(x.queue) == 0 && !x.closed {
			x.cond.Wait()
		}
		if len(x.queue) == 0 && x.closed {
			x.mu.Unlock()
			return
		}
		item := x.queue[0]
		x.queue = x.queue[1:]
		limit := x.limit
		sem := x.sem
		x.mu.Unlock()

		switch {
		case item.ordered || limit == 1 || x.quarantined.Load():
			// Ordered obvents and single-threading: at most one
			// obvent at a time, in arrival order. For ordered
			// obvents we additionally wait out concurrent unordered
			// handlers so an ordered delivery never races ahead.
			// A quarantined consumer also serializes: spawning more
			// goroutines at a handler that is not finishing any would
			// just grow the leak.
			if item.ordered {
				x.inflight.Wait()
			}
			x.finish(item, x.runTracked(item))
		case sem != nil:
			// Bounded multi-threading.
			sem <- struct{}{}
			x.inflight.Add(1)
			go func(item submission) {
				defer x.inflight.Done()
				defer func() { <-sem }()
				x.finish(item, x.runTracked(item))
			}(item)
		default:
			// Unlimited multi-threading (paper default).
			x.inflight.Add(1)
			go func(item submission) {
				defer x.inflight.Done()
				x.finish(item, x.runTracked(item))
			}(item)
		}
	}
}

// finish closes one delivery's telemetry spans after the handler
// returned: the dequeue→handler-return stage timed against the lane's
// dequeue stamp, the cross-node end-to-end stage timed against the
// envelope's publish stamp (wall clock; negative skew clamps to zero;
// absent — legacy publisher — means no e2e sample), and a sampled
// delivered trace span. The no-telemetry path costs two integer field
// checks plus one atomic load.
func (x *executor) finish(item submission, ok bool) {
	p := x.tele
	if p == nil || !ok {
		return // a panic outcome already traced and counted in invoke
	}
	var dispatchNS, e2eNS int64 = -1, -1
	if item.deq != 0 {
		dispatchNS = telemetry.Now() - item.deq
		p.Record(uint32(item.deq), telemetry.StageDispatch, dispatchNS)
	}
	if item.pub > 0 && p.Enabled() {
		e2eNS = time.Now().UnixNano() - item.pub
		if e2eNS < 0 {
			e2eNS = 0
		}
		p.Record(uint32(item.pub), telemetry.StageE2E, e2eNS)
	}
	if p.TraceEnabled() {
		if e2eNS >= 0 {
			p.Trace(item.id, item.class, telemetry.StageE2E, e2eNS, telemetry.OutcomeDelivered)
		} else {
			p.Trace(item.id, item.class, telemetry.StageDispatch, dispatchNS, telemetry.OutcomeDelivered)
		}
	}
}

// close drains the queue, waits for the intake goroutine and all
// in-flight handlers — unless the consumer is provably stalled past its
// budget, in which case close abandons it instead of hanging the
// engine's shutdown on a wedged handler: the intake goroutine drains
// the remaining queue and exits on its own whenever the handler finally
// returns, so nothing leaks beyond the handler's own lifetime.
func (x *executor) close() {
	x.mu.Lock()
	x.closed = true
	x.cond.Signal()
	abandoned := x.stallBudget > 0 && x.stalled(telemetry.Now())
	x.mu.Unlock()
	if abandoned {
		return
	}
	if x.stallBudget > 0 {
		// A handler may have wedged too recently for stalled() to prove
		// it; with isolation enabled, shutdown waits at most two budgets
		// before abandoning. The waiter goroutine ends when the handler
		// does, like the abandoned intake goroutine.
		done := make(chan struct{})
		go func() {
			x.intake.Wait()
			x.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * x.stallBudget):
		}
		return
	}
	x.intake.Wait()
	x.inflight.Wait()
}
