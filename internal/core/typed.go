package core

import (
	"fmt"
	"reflect"

	"govents/internal/filter"
	"govents/internal/obvent"
)

// As converts a received obvent to the subscribed type T. For interface
// types this is a plain assertion. For struct types it is the Go analog
// of a Java upcast: when the dynamic type is a subtype by embedding
// (implicit declaration, paper §2.2), the embedded T value — the
// supertype view of the obvent — is extracted. Fields of the subtype
// are invisible through that view, exactly as with an upcast.
func As[T obvent.Obvent](o obvent.Obvent) (T, bool) {
	if v, ok := o.(T); ok {
		return v, true
	}
	var zero T
	target := obvent.TypeOf[T]()
	if target.Kind() == reflect.Interface {
		return zero, false
	}
	rv := reflect.ValueOf(o)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return zero, false
		}
		rv = rv.Elem()
	}
	emb, ok := findEmbedded(rv, target)
	if !ok {
		return zero, false
	}
	v, ok := emb.Interface().(T)
	return v, ok
}

// findEmbedded locates the (transitively) embedded field of type target.
func findEmbedded(v reflect.Value, target reflect.Type) (reflect.Value, bool) {
	if v.Kind() != reflect.Struct {
		return reflect.Value{}, false
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.Anonymous {
			continue
		}
		fv := v.Field(i)
		for fv.Kind() == reflect.Pointer && !fv.IsNil() {
			fv = fv.Elem()
		}
		if fv.Type() == target {
			return fv, true
		}
		if emb, ok := findEmbedded(fv, target); ok {
			return emb, true
		}
	}
	return reflect.Value{}, false
}

// Publish is the publish primitive (paper §3.2): it asynchronously
// disseminates the obvent to every concerned notifiable, creating a
// distinct clone per subscriber. The static type constraint plays the
// role of the paper's compile-time check that the published expression
// is a non-null Obvent.
func Publish[T obvent.Obvent](e *Engine, o T) error {
	return e.Publish(o)
}

// Subscribe is the subscribe primitive (paper §2.3.2, §3.3) with a
// migratable filter: it combines a subscription to type T — which, by
// type-based matching, also receives all subtypes of T — with a filter
// expression and a typed handler closure.
//
// The filter is a first-class expression tree (package filter), the Go
// rendering of the paper's deferred code evaluation: it can be shipped
// to filtering hosts and factored with other subscribers' filters.
// Accessors it names must be pure — the engine evaluates all remote
// filters of one event against a single shared clone (see package
// filter). Pass nil (or filter.True()) to receive every instance of T,
// the paper's "subscribe (T t) { return true; } {...}".
//
// The returned Subscription is inactive until Activate is called.
func Subscribe[T obvent.Obvent](e *Engine, f *filter.Expr, handler func(T)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	t := obvent.TypeOf[T]()
	return e.SubscribeDynamic(t, f, nil, func(o obvent.Obvent) {
		if v, ok := As[T](o); ok {
			handler(v)
		}
	})
}

// SubscribeLocal is the subscribe primitive with an opaque local
// predicate: the Go analog of a filter closure that violates the
// mobility restrictions of §3.3.4 and therefore "is applied locally" at
// the subscriber. It has full expressive power (arbitrary Go code, free
// variables) but none of the factoring or traffic-saving benefits of a
// migratable filter.
func SubscribeLocal[T obvent.Obvent](e *Engine, pred func(T) bool, handler func(T)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	t := obvent.TypeOf[T]()
	var local func(obvent.Obvent) bool
	if pred != nil {
		local = func(o obvent.Obvent) bool {
			v, ok := As[T](o)
			return ok && pred(v)
		}
	}
	return e.SubscribeDynamic(t, nil, local, func(o obvent.Obvent) {
		if v, ok := As[T](o); ok {
			handler(v)
		}
	})
}

// SubscribeFiltered combines a migratable filter with an additional
// local predicate; the remote filter prunes traffic at filtering hosts,
// the local predicate applies the residual opaque logic at the
// subscriber.
func SubscribeFiltered[T obvent.Obvent](e *Engine, f *filter.Expr, pred func(T) bool, handler func(T)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	t := obvent.TypeOf[T]()
	var local func(obvent.Obvent) bool
	if pred != nil {
		local = func(o obvent.Obvent) bool {
			v, ok := As[T](o)
			return ok && pred(v)
		}
	}
	return e.SubscribeDynamic(t, f, local, func(o obvent.Obvent) {
		if v, ok := As[T](o); ok {
			handler(v)
		}
	})
}
