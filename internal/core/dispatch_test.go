package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/codec"
	"govents/internal/filter"
	"govents/internal/obvent"
)

// subSpec describes one subscription for the transparency reference
// loop: everything the naive per-subscription matching rule needs.
type subSpec struct {
	target reflect.Type
	remote *filter.Expr
	local  func(obvent.Obvent) bool
	active bool
}

// randLeaf draws a leaf filter from a pool that exercises the threshold
// index (shared and distinct numeric thresholds), string operators,
// direct conditions, and the error paths (missing accessors, type
// mismatches) whose poisoning semantics must match filter.Evaluate.
func randLeaf(rng *rand.Rand) *filter.Expr {
	switch rng.Intn(12) {
	case 0:
		return filter.Path("GetPrice").Lt(filter.Float(float64(rng.Intn(10)) * 25))
	case 1:
		return filter.Path("GetPrice").Ge(filter.Float(float64(rng.Intn(10)) * 25))
	case 2:
		return filter.Path("Price").Gt(filter.Float(float64(rng.Intn(200))))
	case 3:
		return filter.Path("GetAmount").Le(filter.Int(int64(rng.Intn(50))))
	case 4:
		return filter.Path("GetCompany").Contains(filter.Str("Telco"))
	case 5:
		return filter.Path("Company").Eq(filter.Str("Acme"))
	case 6:
		return filter.Path("Company").HasPrefix(filter.Str("Ba"))
	case 7:
		return filter.Path("GetPrice").Eq(filter.Float(float64(rng.Intn(8)) * 50))
	case 8:
		return filter.Path("Missing").Eq(filter.Int(1)) // evaluation error
	case 9:
		return filter.Path("GetCompany").Lt(filter.Int(5)) // type mismatch
	case 10:
		return filter.True()
	default:
		return filter.False()
	}
}

// randFilter draws a random expression tree of bounded depth.
func randFilter(rng *rand.Rand, depth int) *filter.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return randLeaf(rng)
	}
	switch rng.Intn(3) {
	case 0:
		n := 2 + rng.Intn(2)
		kids := make([]*filter.Expr, n)
		for i := range kids {
			kids[i] = randFilter(rng, depth-1)
		}
		return filter.And(kids...)
	case 1:
		n := 2 + rng.Intn(2)
		kids := make([]*filter.Expr, n)
		for i := range kids {
			kids[i] = randFilter(rng, depth-1)
		}
		return filter.Or(kids...)
	default:
		return filter.Not(randFilter(rng, depth-1))
	}
}

// TestDispatchTransparency is the delivery-set equivalence property:
// for a randomized population of subscriptions — concrete, supertype
// (embedding) and abstract (interface) targets, remote filters, opaque
// local filters, inactive members — the engine delivers exactly the
// (subscription, event) pairs that the naive reference rule
// (Registry.ConformsTo + filter.Evaluate + local predicate) produces.
// It runs against both the indexed pipeline and the retained naive
// path, so WithNaiveDispatch stays a valid oracle.
func TestDispatchTransparency(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"indexed", nil},
		{"naive", []Option{WithNaiveDispatch()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testDispatchTransparency(t, tc.opts...)
		})
	}
}

func testDispatchTransparency(t *testing.T, opts ...Option) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine("transparency", NewLocal(), opts...)
	t.Cleanup(func() { _ = e.Close() })
	reg := e.Registry()
	reg.MustRegister(StockObvent{})
	reg.MustRegister(StockQuote{})
	reg.MustRegister(StockRequest{})
	reg.MustRegister(SpotPrice{})
	reg.MustRegister(MarketPrice{})

	targets := []reflect.Type{
		reflect.TypeOf(StockQuote{}),
		reflect.TypeOf(StockObvent{}),
		reflect.TypeOf(StockRequest{}),
		reflect.TypeOf(SpotPrice{}),
		obvent.TypeOf[Priced](), // abstract (interface) subscription
	}

	const nSubs = 40
	specs := make([]*subSpec, nSubs)
	var mu sync.Mutex
	got := make(map[[2]int]int) // (sub index, event tag) -> deliveries

	for i := 0; i < nSubs; i++ {
		spec := &subSpec{target: targets[rng.Intn(len(targets))]}
		if rng.Intn(10) < 7 {
			spec.remote = randFilter(rng, 2)
		}
		if rng.Intn(10) < 3 {
			parity := rng.Intn(2)
			spec.local = func(o obvent.Obvent) bool {
				v, ok := As[StockObvent](o)
				return ok && v.Amount%2 == parity
			}
		}
		spec.active = rng.Intn(10) < 8
		specs[i] = spec

		idx := i
		sub, err := e.SubscribeDynamic(spec.target, spec.remote, spec.local, func(o obvent.Obvent) {
			v, ok := As[StockObvent](o)
			if !ok {
				t.Errorf("sub %d: delivered obvent %T lacks StockObvent view", idx, o)
				return
			}
			mu.Lock()
			got[[2]int{idx, v.Amount}]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		if spec.active {
			if err := sub.Activate(); err != nil {
				t.Fatalf("activate %d: %v", i, err)
			}
		} else if rng.Intn(2) == 0 {
			// Half of the inactive members were live once: activate and
			// deactivate so stale table entries would be caught.
			if err := sub.Activate(); err != nil {
				t.Fatalf("activate %d: %v", i, err)
			}
			if err := sub.Deactivate(); err != nil {
				t.Fatalf("deactivate %d: %v", i, err)
			}
		}
	}

	// Publish a mixed event stream; Amount is the unique event tag.
	companies := []string{"Telco Mobiles", "Acme", "Banco", "Telco Fixed", "Zeta"}
	const nEvents = 150
	events := make([]obvent.Obvent, nEvents)
	for i := 0; i < nEvents; i++ {
		base := StockObvent{
			Company: companies[rng.Intn(len(companies))],
			Price:   float64(rng.Intn(10)) * 25,
			Amount:  i,
		}
		switch rng.Intn(5) {
		case 0:
			events[i] = StockQuote{StockObvent: base}
		case 1:
			events[i] = base
		case 2:
			events[i] = StockRequest{StockObvent: base}
		case 3:
			events[i] = SpotPrice{StockRequest: StockRequest{StockObvent: base}}
		default:
			events[i] = MarketPrice{StockRequest: StockRequest{StockObvent: base}}
		}
		if err := e.Publish(events[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	// Reference delivery set: the naive per-subscription rule.
	want := make(map[[2]int]int)
	for i, ev := range events {
		evName := obvent.TypeName(reflect.TypeOf(ev))
		for si, spec := range specs {
			if !spec.active {
				continue
			}
			if !reg.ConformsTo(evName, obvent.TypeName(spec.target)) {
				continue
			}
			if spec.remote != nil {
				ok, err := filter.Evaluate(spec.remote, ev)
				if err != nil || !ok {
					continue
				}
			}
			if spec.local != nil && !spec.local(ev) {
				continue
			}
			want[[2]int{si, i}]++
		}
	}

	expected := 0
	for _, n := range want {
		expected += n
	}
	waitFor(t, 10*time.Second, "all deliveries", func() bool {
		if e.Stats().EventsIn < nEvents {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, n := range got {
			total += n
		}
		return total >= expected
	})
	time.Sleep(20 * time.Millisecond) // catch spurious extra deliveries

	mu.Lock()
	defer mu.Unlock()
	for pair, n := range want {
		if got[pair] != n {
			t.Errorf("sub %d event %d: delivered %d times, want %d", pair[0], pair[1], got[pair], n)
		}
	}
	for pair, n := range got {
		if want[pair] == 0 {
			t.Errorf("sub %d event %d: delivered %d times, want none", pair[0], pair[1], n)
		}
	}
	st := e.Stats()
	if st.DecodeErrors != 0 {
		t.Errorf("DecodeErrors = %d, want 0", st.DecodeErrors)
	}
	if st.Delivered != uint64(expected) {
		t.Errorf("Delivered = %d, want %d", st.Delivered, expected)
	}
}

// TestDispatchStats checks every counter of the DispatchStats satellite:
// events in, matches, deliveries, expired drops and decode errors (which
// the seed engine used to swallow silently).
func TestDispatchStats(t *testing.T) {
	e := newLocalEngine(t)
	c := subscribeCollector[StockQuote](t, e, filter.Path("GetPrice").Lt(filter.Float(100)))

	_ = Publish(e, StockQuote{StockObvent: StockObvent{Company: "Acme", Price: 50}})
	_ = Publish(e, StockQuote{StockObvent: StockObvent{Company: "Acme", Price: 150}})
	_ = Publish(e, StockQuote{StockObvent: StockObvent{Company: "Acme", Price: 60}})
	// Born long ago with a tiny TTL: dropped as expired at dispatch.
	_ = Publish(e, timelyTick{TimelyBase: obvent.TimelyBase{TTL: time.Millisecond, BirthTime: time.Now().Add(-time.Second)}, N: 1})
	// A corrupt payload for a class with live candidates: decode error.
	e.deliver(&codec.Envelope{
		ID:      codec.NewID(),
		Type:    obvent.TypeName(reflect.TypeOf(StockQuote{})),
		Payload: []byte{0xff, 0x00, 0xba, 0xad},
	})

	waitFor(t, 5*time.Second, "stats settled", func() bool {
		st := e.Stats()
		return st.EventsIn == 5 && st.DecodeErrors == 1 && c.count() == 2
	})
	st := e.Stats()
	if st.Expired != 1 {
		t.Errorf("Expired = %d, want 1", st.Expired)
	}
	if st.Matched != 2 || st.Delivered != 2 {
		t.Errorf("Matched/Delivered = %d/%d, want 2/2", st.Matched, st.Delivered)
	}
}

// TestLateRegistrationExtendsConformance pins the bucket-invalidation
// rule: a dispatch bucket compiled before a supertype was registered is
// recompiled once the registry generation moves, so conformance answers
// never go stale. (The naive path gets this for free by querying
// ConformsTo per event; the indexed path must invalidate its cache.)
func TestLateRegistrationExtendsConformance(t *testing.T) {
	e := NewEngine("late-reg", NewLocal())
	t.Cleanup(func() { _ = e.Close() })
	reg := e.Registry()
	reg.MustRegister(SpotPrice{}) // StockObvent deliberately unregistered

	c := &collector[obvent.Obvent]{}
	sub, err := e.SubscribeDynamic(reflect.TypeOf(StockObvent{}), nil, nil, func(o obvent.Obvent) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.got = append(c.got, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}

	// While StockObvent is unregistered, SpotPrice does not conform to it.
	mk := func(n int) SpotPrice {
		return SpotPrice{StockRequest: StockRequest{StockObvent: StockObvent{Company: "Acme", Amount: n}}}
	}
	if err := e.Publish(mk(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first event dispatched", func() bool { return e.Stats().EventsIn >= 1 })
	time.Sleep(10 * time.Millisecond)
	if n := c.count(); n != 0 {
		t.Fatalf("delivered %d obvents before supertype registration, want 0", n)
	}

	// Registering the embedded supertype extends the subtype closure;
	// the cached bucket must be recompiled, not reused.
	reg.MustRegister(StockObvent{})
	if err := e.Publish(mk(2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "post-registration delivery", func() bool { return c.count() == 1 })
}

// TestConcurrentActivationTablePublication is the regression test for
// the copy-on-write table's lost-update hazard: concurrent
// activate/deactivate calls must publish tables in snapshot order, or a
// stale table could overwrite a newer one and silently drop an active
// subscription from dispatch. After the churn settles with every
// subscription active, a final event must reach all of them.
func TestConcurrentActivationTablePublication(t *testing.T) {
	e := newLocalEngine(t)
	const nSubs = 8
	counts := make([]atomic.Int64, nSubs)
	subs := make([]*Subscription, nSubs)
	for i := 0; i < nSubs; i++ {
		i := i
		sub, err := Subscribe(e, nil, func(q StockQuote) {
			if q.Amount == -1 {
				counts[i].Add(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}

	var wg sync.WaitGroup
	for _, sub := range subs {
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := s.Activate(); err != nil {
					t.Error(err)
					return
				}
				if err := s.Deactivate(); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.Activate(); err != nil {
				t.Error(err)
			}
		}(sub)
	}
	wg.Wait()

	// All subscriptions are now active; the published table must
	// contain every one of them.
	if err := Publish(e, StockQuote{StockObvent: StockObvent{Company: "Acme", Amount: -1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "final event reaches all subscriptions", func() bool {
		for i := range counts {
			if counts[i].Load() == 0 {
				return false
			}
		}
		return true
	})
}

// TestUnknownWireTypeNotCached pins the bucket-cache admission rule:
// env.Type comes off the wire, so names the registry does not know must
// not be cached (a peer sending unique garbage names would otherwise
// grow the table without bound), while registered classes are.
func TestUnknownWireTypeNotCached(t *testing.T) {
	e := newLocalEngine(t)
	c := subscribeCollector[StockQuote](t, e, nil)

	for i := 0; i < 3; i++ {
		e.deliver(&codec.Envelope{ID: codec.NewID(), Type: fmt.Sprintf("garbage.Type%d", i), Payload: []byte{1}})
	}
	_ = Publish(e, StockQuote{StockObvent: StockObvent{Company: "Acme", Price: 1}})
	waitFor(t, 5*time.Second, "traffic dispatched", func() bool {
		return e.Stats().EventsIn >= 4 && c.count() == 1
	})

	cached := map[string]bool{}
	e.table.Load().buckets.Range(func(k, v any) bool {
		cached[k.(string)] = true
		return true
	})
	for name := range cached {
		if len(name) >= 7 && name[:7] == "garbage" {
			t.Errorf("bucket cached for unknown wire type %q", name)
		}
	}
	if !cached[obvent.TypeName(reflect.TypeOf(StockQuote{}))] {
		t.Errorf("bucket not cached for registered class; cache = %v", cached)
	}
}

// TestStatsAccessorConcurrent exercises Stats() under live traffic so
// the counters run under -race.
func TestStatsAccessorConcurrent(t *testing.T) {
	e := newLocalEngine(t)
	c := subscribeCollector[StockQuote](t, e, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = e.Stats()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		if err := Publish(e, StockQuote{StockObvent: StockObvent{Company: fmt.Sprintf("c%d", i), Price: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	waitFor(t, 5*time.Second, "all delivered", func() bool { return c.count() == 50 })
	if st := e.Stats(); st.Delivered != 50 {
		t.Errorf("Delivered = %d, want 50", st.Delivered)
	}
}

// bookQuote is a pointer-bearing class for the compiled-copier
// integration tests: clones must come off the compiled deep copier, not
// a per-clone gob decode.
type bookQuote struct {
	obvent.Base
	Company string
	Levels  []float64
	Info    *tickInfo
}

type tickInfo struct {
	Venue string
}

// loopQuote is a recursive class: the copier compiler rejects it at
// compile time and clones take the gob fallback.
type loopQuote struct {
	obvent.Base
	V    int
	Next *loopQuote
}

// TestDispatchSourceScratchAllocs pins the allocation budget of the
// indexed dispatch loop: with the clone source resolved into per-lane
// scratch (never heap-allocated per envelope, regardless of escape
// analysis) and field-path filters compiled to accessor programs, a
// full dispatch — route, decode-once, compound match over 50
// subscriptions — allocates no more than the bare Source+Clone sequence
// it wraps. Everything the matcher itself touches is allocation-free.
func TestDispatchSourceScratchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	e := newLocalEngine(t)
	for i := 0; i < 50; i++ {
		// None of these match the published price: the measured work is
		// route + decode-once + compound match, with no deliveries.
		f := filter.Path("Price").Gt(filter.Float(10000 + float64(i)))
		sub, err := Subscribe(e, f, func(q StockQuote) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	env, err := e.codec.Encode(StockQuote{StockObvent: StockObvent{Company: "Acme", Price: 50}})
	if err != nil {
		t.Fatal(err)
	}
	ls := &laneState{}
	e.dispatch(env, ls) // warm: bucket, compound plan, accessor programs, scratch

	dispatchAllocs := testing.AllocsPerRun(300, func() {
		e.dispatch(env, ls)
	})
	baseline := testing.AllocsPerRun(300, func() {
		src, err := e.codec.Source(env)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.Clone(); err != nil {
			t.Fatal(err)
		}
	})
	if dispatchAllocs > baseline {
		t.Errorf("dispatch allocates %.1f/op vs Source+Clone baseline %.1f/op; the matching pipeline must add zero allocations", dispatchAllocs, baseline)
	}
	if st := e.Stats(); st.AccessorFallbacks != 0 {
		t.Errorf("AccessorFallbacks = %d, want 0 (field path must compile)", st.AccessorFallbacks)
	}
}

// TestEngineStatsCompileCounters pins the observability satellite:
// Engine.Stats surfaces the accessor programs compiled by the live
// dispatch table and the codec's copier compile/reject decisions.
func TestEngineStatsCompileCounters(t *testing.T) {
	e := newLocalEngine(t)
	e.Registry().MustRegister(bookQuote{})
	e.Registry().MustRegister(loopQuote{})

	_ = subscribeCollector[StockQuote](t, e, filter.Path("GetPrice").Lt(filter.Float(100)))
	book := subscribeCollector[bookQuote](t, e, nil)
	loop := subscribeCollector[loopQuote](t, e, nil)

	_ = Publish(e, StockQuote{StockObvent: StockObvent{Company: "Acme", Price: 50}})
	_ = Publish(e, bookQuote{Company: "Acme", Levels: []float64{1, 2}, Info: &tickInfo{Venue: "X"}})
	_ = Publish(e, loopQuote{V: 1, Next: &loopQuote{V: 2}})
	waitFor(t, 5*time.Second, "all classes delivered", func() bool {
		return book.count() == 1 && loop.count() == 1 && e.Stats().Delivered >= 3
	})

	st := e.Stats()
	if st.AccessorPrograms == 0 {
		t.Errorf("AccessorPrograms = 0, want > 0 after filtered dispatch")
	}
	if st.CopierCompiles != 1 {
		t.Errorf("CopierCompiles = %d, want 1 (bookQuote)", st.CopierCompiles)
	}
	if st.CopierFallbacks != 1 {
		t.Errorf("CopierFallbacks = %d, want 1 (recursive loopQuote)", st.CopierFallbacks)
	}
	if got := loop.all()[0]; got.Next == nil || got.Next.V != 2 {
		t.Errorf("gob-fallback delivery mangled recursive obvent: %+v", got)
	}
}

// TestCopierClonesAreIndependentAcrossSubscribers is the end-to-end
// obvent local uniqueness check (§2.1.2) on the copier path: two
// subscribers to a pointer-bearing class receive clones that are equal
// in content but share no pointees.
func TestCopierClonesAreIndependentAcrossSubscribers(t *testing.T) {
	e := newLocalEngine(t)
	e.Registry().MustRegister(bookQuote{})
	c1 := subscribeCollector[bookQuote](t, e, nil)
	c2 := subscribeCollector[bookQuote](t, e, nil)

	in := bookQuote{Company: "Acme", Levels: []float64{9, 8}, Info: &tickInfo{Venue: "X"}}
	if err := Publish(e, in); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "both subscribers delivered", func() bool {
		return c1.count() == 1 && c2.count() == 1
	})
	a, b := c1.all()[0], c2.all()[0]
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clones differ: %+v vs %+v", a, b)
	}
	if a.Info == b.Info {
		t.Error("clones share a pointee: local uniqueness violated")
	}
	if &a.Levels[0] == &b.Levels[0] {
		t.Error("clones share slice backing: local uniqueness violated")
	}
	a.Info.Venue = "MUT"
	a.Levels[0] = -1
	if b.Info.Venue != "X" || b.Levels[0] != 9 {
		t.Errorf("mutation leaked across subscribers: %+v", b)
	}
}
