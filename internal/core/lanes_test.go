package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/codec"
	"govents/internal/filter"
	"govents/internal/obvent"
)

// Ordered tick types spanning the ordering lattice, plus an unordered
// one, for the lane routing and ordering stress tests. Pub/N identify
// the logical publisher and its per-type publication sequence.

type fifoTick struct {
	obvent.Base
	obvent.FIFOOrderBase
	Pub string
	N   int
}

type causalTick struct {
	obvent.Base
	obvent.CausalOrderBase
	Pub string
	N   int
}

type totalTick struct {
	obvent.Base
	obvent.TotalOrderBase
	Pub string
	N   int
}

type freeTick struct {
	obvent.Base
	Pub string
	N   int
}

func registerTickTypes(reg *obvent.Registry) {
	reg.MustRegister(fifoTick{})
	reg.MustRegister(causalTick{})
	reg.MustRegister(totalTick{})
	reg.MustRegister(freeTick{})
}

// encodeFrom encodes an obvent and stamps it with a publisher identity,
// as a remote peer's envelope would arrive.
func encodeFrom(t *testing.T, e *Engine, o obvent.Obvent, pub string) *codec.Envelope {
	t.Helper()
	env, err := e.codec.Encode(o)
	if err != nil {
		t.Fatalf("encode %T: %v", o, err)
	}
	env.Publisher = pub
	return env
}

// TestLaneRoutingSemantics pins the routing rules: causal/total and
// prioritary envelopes go serial (whether identified by wire metadata
// or by the cached class semantics); FIFO and unordered envelopes go
// parallel (FIFO needs only per-publisher order, which the
// publisher-hashed lanes preserve); and one publisher's parallel
// envelopes always share a lane.
func TestLaneRoutingSemantics(t *testing.T) {
	e := NewEngine("routing", NewLocal(), WithDispatchLanes(4))
	t.Cleanup(func() { _ = e.Close() })
	reg := e.Registry()
	reg.MustRegister(StockQuote{})
	reg.MustRegister(prioAlert{})
	registerTickTypes(reg)

	ordered := []obvent.Obvent{
		causalTick{Pub: "p", N: 1},
		totalTick{Pub: "p", N: 1},
	}
	for _, o := range ordered {
		env := encodeFrom(t, e, o, "p")
		if !e.lanes.routeSerial(env) {
			t.Errorf("%T: stamped ordered envelope not routed serial", o)
		}
		// A peer that forgot to stamp the ordering metadata must still
		// be caught by the class-semantics lookup.
		env.Ordering = obvent.NoOrder
		if !e.lanes.routeSerial(env) {
			t.Errorf("%T: unstamped ordered envelope not routed serial", o)
		}
	}

	// FIFO routes parallel — stamped or unstamped — and stays stable on
	// the publisher's lane.
	fifo := encodeFrom(t, e, fifoTick{Pub: "p", N: 1}, "p")
	if e.lanes.routeSerial(fifo) {
		t.Error("stamped FIFO envelope routed serial, want parallel sub-lane")
	}
	fifo.Ordering = obvent.NoOrder
	if e.lanes.routeSerial(fifo) {
		t.Error("unstamped FIFO envelope routed serial (class semantics), want parallel")
	}

	prio := encodeFrom(t, e, prioAlert{Msg: "x", PriorityBase: obvent.PriorityBase{Prio: 3}}, "p")
	if !e.lanes.routeSerial(prio) {
		t.Error("prioritary envelope not routed serial")
	}
	prio.HasPriority = false
	prio.Priority = 0
	if !e.lanes.routeSerial(prio) {
		t.Error("unstamped prioritary envelope not routed serial (class semantics)")
	}

	free := encodeFrom(t, e, StockQuote{StockObvent: StockObvent{Company: "A"}}, "p")
	if e.lanes.routeSerial(free) {
		t.Error("unordered envelope routed serial")
	}

	// Per-publisher lane stability, and a spread across lanes overall.
	lanesSeen := map[int]bool{}
	for p := 0; p < 16; p++ {
		pub := fmt.Sprintf("pub-%d", p)
		env := encodeFrom(t, e, StockQuote{}, pub)
		lane := e.lanes.laneFor(env)
		for i := 0; i < 5; i++ {
			if got := e.lanes.laneFor(env); got != lane {
				t.Fatalf("publisher %s: lane flapped %d -> %d", pub, lane, got)
			}
		}
		lanesSeen[lane] = true
	}
	if len(lanesSeen) < 2 {
		t.Errorf("16 publishers hashed onto %d lane(s), want a spread", len(lanesSeen))
	}

	// A publisher-less envelope falls back to its publication ID.
	anon := encodeFrom(t, e, StockQuote{}, "")
	_ = e.lanes.laneFor(anon) // must not panic; distribution covered above
}

// TestLaneRoutingZeroAlloc pins the acceptance criterion that the
// routing decision adds zero steady-state allocations: wire-metadata
// routing, cached class-semantics routing, and lane hashing.
func TestLaneRoutingZeroAlloc(t *testing.T) {
	e := NewEngine("route-alloc", NewLocal(), WithDispatchLanes(4))
	t.Cleanup(func() { _ = e.Close() })
	reg := e.Registry()
	reg.MustRegister(StockQuote{})
	registerTickTypes(reg)

	free := encodeFrom(t, e, StockQuote{}, "pub-7")
	ordered := encodeFrom(t, e, causalTick{Pub: "p", N: 1}, "p")
	fifo := encodeFrom(t, e, fifoTick{Pub: "p", N: 1}, "p")
	unstamped := encodeFrom(t, e, totalTick{Pub: "p", N: 1}, "p")
	unstamped.Ordering = obvent.NoOrder

	// Warm the class-semantics cache.
	e.lanes.routeSerial(free)
	e.lanes.routeSerial(unstamped)

	allocs := testing.AllocsPerRun(1000, func() {
		if e.lanes.routeSerial(free) || e.lanes.routeSerial(fifo) {
			t.Fatal("unordered/FIFO routed serial")
		}
		if !e.lanes.routeSerial(ordered) || !e.lanes.routeSerial(unstamped) {
			t.Fatal("ordered not routed serial")
		}
		_ = e.lanes.laneFor(free)
	})
	if allocs != 0 {
		t.Errorf("routing decision allocates %.1f times per envelope, want 0", allocs)
	}
}

// TestSerialLanePriorityOvertaking is the deterministic lane-level
// overtaking test: with the lane goroutine blocked on a first envelope,
// later high-priority arrivals must be dispatched before earlier
// low-priority backlog, FIFO among equals.
func TestSerialLanePriorityOvertaking(t *testing.T) {
	var mu sync.Mutex
	var order []string
	started := make(chan struct{})
	release := make(chan struct{})
	in := newPriorityInbox(func(env *codec.Envelope, _ *laneState) {
		if env.ID == "blocker" {
			started <- struct{}{}
			<-release
		}
		mu.Lock()
		order = append(order, env.ID)
		mu.Unlock()
	}, nil, laneConfig{})

	in.push(&codec.Envelope{ID: "blocker"}, 0)
	<-started // lane goroutine is now inside dispatch; pushes below queue up
	in.push(&codec.Envelope{ID: "low-1"}, 1)
	in.push(&codec.Envelope{ID: "high"}, 9)
	in.push(&codec.Envelope{ID: "low-2"}, 1)
	close(release)
	in.close() // drains the backlog before returning

	want := []string{"blocker", "high", "low-1", "low-2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("dispatch order = %v, want %v", order, want)
	}
	if got := in.st.enqueued.Load(); got != 4 {
		t.Errorf("enqueued = %d, want 4", got)
	}
}

// TestLaneQueuesShrinkAfterBurst pins the memory satellite: a one-time
// backlog spike must not pin its high-water backing array for the
// engine's lifetime, on either lane flavor.
func TestLaneQueuesShrinkAfterBurst(t *testing.T) {
	const burst = 5000
	t.Run("serial", func(t *testing.T) {
		started := make(chan struct{})
		release := make(chan struct{})
		in := newPriorityInbox(func(env *codec.Envelope, _ *laneState) {
			if env.ID == "blocker" {
				started <- struct{}{}
				<-release
			}
		}, nil, laneConfig{})
		in.push(&codec.Envelope{ID: "blocker"}, 0)
		<-started
		for i := 0; i < burst; i++ {
			in.push(&codec.Envelope{}, i%5)
		}
		in.mu.Lock()
		grown := cap(in.heap)
		in.mu.Unlock()
		if grown < burst {
			t.Fatalf("burst did not accumulate: cap = %d", grown)
		}
		close(release)
		in.close()
		if c := cap(in.heap); c > laneShrinkMin {
			t.Errorf("heap capacity after drain = %d, want <= %d", c, laneShrinkMin)
		}
	})
	t.Run("fifo", func(t *testing.T) {
		started := make(chan struct{})
		release := make(chan struct{})
		l := newFifoLane(func(env *codec.Envelope, _ *laneState) {
			if env.ID == "blocker" {
				started <- struct{}{}
				<-release
			}
		}, nil, 1, laneConfig{}, nil)
		l.push(&codec.Envelope{ID: "blocker"}, "blocker")
		<-started
		for i := 0; i < burst; i++ {
			l.push(&codec.Envelope{}, "burst")
		}
		l.mu.Lock()
		grown := cap(l.queue)
		l.mu.Unlock()
		if grown < burst {
			t.Fatalf("burst did not accumulate: cap = %d", grown)
		}
		close(release)
		l.close()
		if c := cap(l.queue); c > laneShrinkMin {
			t.Errorf("queue capacity after drain = %d, want <= %d", c, laneShrinkMin)
		}
	})
}

// TestFifoLaneSteadyStateMemory: a lane alternating one push and one pop
// must not grow its queue without bound (the head index only advances;
// compaction must reclaim the dead prefix).
func TestFifoLaneSteadyStateMemory(t *testing.T) {
	var n atomic.Int64
	l := newFifoLane(func(*codec.Envelope, *laneState) { n.Add(1) }, nil, 1, laneConfig{}, nil)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 5000; i++ {
		l.push(&codec.Envelope{}, "p")
		for n.Load() != int64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("lane stalled at %d/%d", n.Load(), i+1)
			}
			runtime.Gosched()
		}
	}
	l.mu.Lock()
	c := cap(l.queue)
	l.mu.Unlock()
	l.close()
	if c > laneShrinkMin {
		t.Errorf("steady-state queue capacity = %d, want <= %d", c, laneShrinkMin)
	}
}

// TestOrderingStress is the multi-lane semantics stress test: several
// concurrent publishers interleave FIFO/Causal/Total and unordered
// envelopes into a multi-lane engine (and, mirrored, into a single-lane
// WithNaiveDispatch oracle). Ordered types must preserve per-publisher
// delivery order; unordered types must reach exactly the same
// (subscription, event) delivery set as the oracle.
func TestOrderingStress(t *testing.T) {
	const (
		nPubs   = 8
		nEvents = 120
	)
	reg := obvent.NewRegistry()
	registerTickTypes(reg)

	indexed := NewEngine("indexed", NewLocal(), WithRegistry(reg), WithDispatchLanes(4))
	t.Cleanup(func() { _ = indexed.Close() })
	naive := NewEngine("naive", NewLocal(), WithRegistry(reg), WithNaiveDispatch(), WithDispatchLanes(1))
	t.Cleanup(func() { _ = naive.Close() })

	// Ordered collectors (indexed engine): per-type append-only logs.
	type rec struct {
		pub string
		n   int
	}
	var logMu sync.Mutex
	logs := map[string][]rec{}
	appendLog := func(kind, pub string, n int) {
		logMu.Lock()
		logs[kind] = append(logs[kind], rec{pub, n})
		logMu.Unlock()
	}
	mustActivate := func(sub *Subscription, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	mustActivate(Subscribe(indexed, nil, func(o fifoTick) { appendLog("fifo", o.Pub, o.N) }))
	mustActivate(Subscribe(indexed, nil, func(o causalTick) { appendLog("causal", o.Pub, o.N) }))
	mustActivate(Subscribe(indexed, nil, func(o totalTick) { appendLog("total", o.Pub, o.N) }))

	// Unordered delivery sets, mirrored on both engines: one unfiltered
	// subscription, one remote-filtered, one with an opaque local filter.
	type key struct {
		sub int
		pub string
		n   int
	}
	sets := map[string]map[key]int{"indexed": {}, "naive": {}}
	counts := map[string]*atomic.Int64{"indexed": {}, "naive": {}}
	subscribeSet := func(e *Engine, which string) {
		count := counts[which]
		collect := func(idx int) func(o freeTick) {
			return func(o freeTick) {
				logMu.Lock()
				sets[which][key{idx, o.Pub, o.N}]++
				logMu.Unlock()
				count.Add(1)
			}
		}
		mustActivate(Subscribe(e, nil, collect(0)))
		mustActivate(Subscribe(e, filter.Path("N").Lt(filter.Int(nEvents/2)), collect(1)))
		mustActivate(SubscribeFiltered(e, nil, func(o freeTick) bool { return o.N%3 == 0 }, collect(2)))
	}
	subscribeSet(indexed, "indexed")
	subscribeSet(naive, "naive")

	// Publishers: each goroutine is one logical publisher, delivering
	// the same envelope stream to both engines, as a dissemination
	// substrate would from its receive goroutines.
	var wg sync.WaitGroup
	for p := 0; p < nPubs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pub := fmt.Sprintf("pub-%d", p)
			for n := 0; n < nEvents; n++ {
				events := []obvent.Obvent{freeTick{Pub: pub, N: n}}
				switch n % 3 {
				case 0:
					events = append(events, fifoTick{Pub: pub, N: n})
				case 1:
					events = append(events, causalTick{Pub: pub, N: n})
				default:
					events = append(events, totalTick{Pub: pub, N: n})
				}
				for _, o := range events {
					env, err := indexed.codec.Encode(o)
					if err != nil {
						t.Error(err)
						return
					}
					env.Publisher = pub
					indexed.deliver(env)
					naive.deliver(env)
				}
			}
		}(p)
	}
	wg.Wait()

	const total = nPubs * nEvents * 2 // one free + one ordered per event
	// Expected unordered deliveries per engine: the unfiltered sub gets
	// every freeTick, the remote filter passes N < nEvents/2, the local
	// filter passes every third N.
	const wantFree = nPubs*nEvents + nPubs*(nEvents/2) + nPubs*((nEvents+2)/3)
	cond := func() bool {
		return indexed.Stats().EventsIn == total && naive.Stats().EventsIn == total &&
			counts["indexed"].Load() == wantFree && counts["naive"].Load() == wantFree
	}
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: indexed in=%d naive in=%d (want %d) indexed free=%d naive free=%d (want %d)\nindexed lanes=%+v",
				indexed.Stats().EventsIn, naive.Stats().EventsIn, total,
				counts["indexed"].Load(), counts["naive"].Load(), wantFree, indexed.LaneStats())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // catch stragglers / extra deliveries

	logMu.Lock()
	defer logMu.Unlock()

	// Ordered types: per-publisher delivery order == publication order.
	for kind, log := range logs {
		last := map[string]int{}
		for i, r := range log {
			if prev, seen := last[r.pub]; seen && r.n <= prev {
				t.Fatalf("%s: publisher %s delivered out of order at %d: %d after %d", kind, r.pub, i, r.n, prev)
			}
			last[r.pub] = r.n
		}
		if len(log) != nPubs*nEvents/3 {
			t.Errorf("%s: delivered %d, want %d", kind, len(log), nPubs*nEvents/3)
		}
	}

	// Unordered type: exact delivery-set equivalence with the oracle.
	if len(sets["indexed"]) != len(sets["naive"]) {
		t.Fatalf("delivery sets differ in size: indexed %d, naive %d", len(sets["indexed"]), len(sets["naive"]))
	}
	for k, n := range sets["naive"] {
		if sets["indexed"][k] != n {
			t.Errorf("delivery %+v: indexed %d, naive %d", k, sets["indexed"][k], n)
		}
	}

	// The serial lane carried exactly the causal+total traffic (two of
	// every three ordered events); FIFO rides the parallel sub-lanes.
	for _, l := range indexed.LaneStats() {
		if l.Serial && l.Enqueued != nPubs*nEvents*2/3 {
			t.Errorf("serial lane carried %d envelopes, want %d (causal+total only)", l.Enqueued, nPubs*nEvents*2/3)
		}
		if l.Queued != 0 {
			t.Errorf("lane %d: backlog %d after drain", l.Lane, l.Queued)
		}
	}
}

// TestUnstampedOrderedExecutesSerially: an ordered-class envelope whose
// wire metadata was not stamped must not only be routed to the serial
// lane but also executed in order on the subscriber executor (ordered
// deliveries run inline; unordered ones fan out to handler goroutines,
// which would let a slow early delivery be overtaken).
func TestUnstampedOrderedExecutesSerially(t *testing.T) {
	e := NewEngine("unstamped", NewLocal(), WithDispatchLanes(4))
	t.Cleanup(func() { _ = e.Close() })
	registerTickTypes(e.Registry())

	var mu sync.Mutex
	var order []int
	sub, err := Subscribe(e, nil, func(o totalTick) {
		if o.N == 0 {
			// Give later deliveries every chance to overtake if they
			// were (incorrectly) run on their own goroutines.
			time.Sleep(20 * time.Millisecond)
		}
		mu.Lock()
		order = append(order, o.N)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}

	const n = 10
	for i := 0; i < n; i++ {
		env := encodeFrom(t, e, totalTick{Pub: "p", N: i}, "p")
		env.Ordering = 0 // the peer forgot to stamp the wire metadata
		e.deliver(env)
	}
	waitFor(t, 10*time.Second, "all delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order = %v, want ascending", order)
		}
	}
}

// TestEngineCloseDrainsLanes: closing an engine with backlog on several
// lanes must terminate (the Broadcast-on-close regression) and leave
// every lane drained.
func TestEngineCloseDrainsLanes(t *testing.T) {
	e := NewEngine("close-drain", NewLocal(), WithDispatchLanes(4))
	reg := e.Registry()
	reg.MustRegister(StockQuote{})
	registerTickTypes(reg)

	for p := 0; p < 8; p++ {
		pub := fmt.Sprintf("pub-%d", p)
		for n := 0; n < 50; n++ {
			env := encodeFrom(t, e, freeTick{Pub: pub, N: n}, pub)
			e.deliver(env)
			env = encodeFrom(t, e, totalTick{Pub: pub, N: n}, pub)
			e.deliver(env)
		}
	}
	done := make(chan struct{})
	go func() {
		_ = e.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("engine close hung with lane backlog")
	}
	if st := e.Stats(); st.EventsIn != 800 {
		t.Errorf("EventsIn = %d, want 800 (lanes must drain before close returns)", st.EventsIn)
	}
}

// TestLaneStatsFold: Engine.Stats must equal the fold of LaneStats.
func TestLaneStatsFold(t *testing.T) {
	e := NewEngine("fold", NewLocal(), WithDispatchLanes(3))
	t.Cleanup(func() { _ = e.Close() })
	e.Registry().MustRegister(StockQuote{})
	registerTickTypes(e.Registry())
	var got atomic.Int64
	sub, err := Subscribe(e, nil, func(freeTick) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Activate(); err != nil {
		t.Fatal(err)
	}

	for p := 0; p < 6; p++ {
		pub := fmt.Sprintf("pub-%d", p)
		for n := 0; n < 20; n++ {
			e.deliver(encodeFrom(t, e, freeTick{Pub: pub, N: n}, pub))
		}
	}
	e.deliver(encodeFrom(t, e, totalTick{Pub: "pub-0", N: 0}, "pub-0"))

	waitFor(t, 10*time.Second, "all dispatched", func() bool {
		return e.Stats().EventsIn == 121 && got.Load() == 120
	})
	var fold DispatchStats
	var routed uint64
	serialSeen := false
	for _, l := range e.LaneStats() {
		fold.add(l.Stats)
		routed += l.Enqueued
		if l.Serial {
			serialSeen = true
			if l.Enqueued != 1 {
				t.Errorf("serial lane enqueued = %d, want 1", l.Enqueued)
			}
		}
	}
	if !serialSeen {
		t.Fatal("no serial lane in LaneStats")
	}
	got2 := e.Stats()
	// Codec-level wire counters are engine-wide, not per-lane; blank them
	// so the comparison checks exactly the lane-folded fields.
	got2.WireCompiles, got2.WireRejects = 0, 0
	got2.WireEncodes, got2.WireDecodes = 0, 0
	got2.GobPayloadEncodes, got2.GobPayloadDecodes = 0, 0
	got2.WireDowngrades = 0
	got2.PartialDecodes, got2.WireMaterializations = 0, 0
	if got2 != fold {
		t.Errorf("Stats() = %+v, fold of LaneStats = %+v", got2, fold)
	}
	if routed != 121 {
		t.Errorf("sum of lane Enqueued = %d, want 121", routed)
	}
	if n := e.DispatchLanes(); n != 3 {
		t.Errorf("DispatchLanes() = %d, want 3", n)
	}
}
