package core

import (
	"testing"

	"govents/internal/obvent"
)

func TestAsDirect(t *testing.T) {
	q := StockQuote{StockObvent{Company: "X"}}
	got, ok := As[StockQuote](q)
	if !ok || got.Company != "X" {
		t.Fatalf("As direct = %+v, %v", got, ok)
	}
}

func TestAsUpcastExtractsEmbedded(t *testing.T) {
	sp := SpotPrice{StockRequest{StockObvent{Company: "Y", Price: 5}}}
	// One level.
	req, ok := As[StockRequest](sp)
	if !ok || req.Company != "Y" {
		t.Fatalf("As parent = %+v, %v", req, ok)
	}
	// Two levels.
	base, ok := As[StockObvent](sp)
	if !ok || base.Price != 5 {
		t.Fatalf("As grandparent = %+v, %v", base, ok)
	}
}

func TestAsPointerObvent(t *testing.T) {
	sp := &SpotPrice{StockRequest{StockObvent{Company: "Z"}}}
	base, ok := As[StockObvent](sp)
	if !ok || base.Company != "Z" {
		t.Fatalf("As via pointer = %+v, %v", base, ok)
	}
}

func TestAsInterface(t *testing.T) {
	q := StockQuote{StockObvent{Price: 42}}
	p, ok := As[Priced](q)
	if !ok || p.GetPrice() != 42 {
		t.Fatalf("As interface = %v, %v", p, ok)
	}
	// An obvent NOT implementing the interface.
	type bare struct{ obvent.Base }
	if _, ok := As[Priced](bare{}); ok {
		t.Fatal("bare obvent must not convert to Priced")
	}
}

func TestAsUnrelatedStructFails(t *testing.T) {
	if _, ok := As[StockQuote](StockRequest{}); ok {
		t.Fatal("sibling conversion must fail")
	}
	if _, ok := As[SpotPrice](StockObvent{}); ok {
		t.Fatal("downcast must fail")
	}
}

func TestAsUpcastIsViewOnly(t *testing.T) {
	// The supertype view is a copy: mutating it does not affect the
	// original (value semantics of the paper's clones).
	sp := SpotPrice{StockRequest{StockObvent{Company: "orig"}}}
	base, _ := As[StockObvent](sp)
	base.Company = "mutated"
	if sp.Company != "orig" {
		t.Fatal("upcast view aliased the subtype value")
	}
}

func TestSubscribeDynamicValidatesInputs(t *testing.T) {
	e := newLocalEngine(t)
	if _, err := e.SubscribeDynamic(obvent.TypeOf[StockQuote](), nil, nil, nil); err == nil {
		t.Fatal("nil handler must fail")
	}
}
