//go:build race

package core

// raceEnabled disables allocation-count assertions: the race detector's
// instrumentation allocates on its own.
const raceEnabled = true
