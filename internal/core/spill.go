package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"

	"govents/internal/codec"
	"govents/internal/durable"
)

// laneSpill is a dispatch lane's overflow log for the OverloadSpill
// policy: a per-lane durable segment log holding the envelopes a full
// lane could not queue in memory, drained back (oldest first) when the
// lane catches up and compacted away once empty. All methods are called
// under the owning lane's mutex, so the bookkeeping fields need no
// further synchronization; the segment log itself is internally
// synchronized and its files touch disk outside any engine lock users
// can observe.
type laneSpill struct {
	dir    string // "" = spill unconfigured
	seg    int64
	logger *slog.Logger
	gauge  int

	log    *durable.SegmentLog
	next   uint64 // offset of the next record to drain
	count  int    // spilled records not yet drained
	failed bool   // the log broke; degrade to shedding
	// lastDrained reports how many records the latest drain call moved,
	// for the caller's counters.
	lastDrained int
}

// errSpillStop aborts a ReadFrom once the drain batch is full.
var errSpillStop = errors.New("core: spill drain batch full")

func (sp *laneSpill) init(cfg laneConfig, gauge int) {
	sp.dir = cfg.spillDir
	sp.seg = cfg.spillSeg
	sp.logger = cfg.logger
	sp.gauge = gauge
}

// append adds one encoded envelope to the overflow log, reporting
// whether it is safely spilled. Any failure (no directory, open error,
// disk error, nil data from a failed encode) returns false and the
// caller sheds the envelope instead — a broken disk must never wedge
// the lane.
func (sp *laneSpill) append(data []byte) bool {
	if sp.failed || sp.dir == "" || data == nil {
		return false
	}
	if sp.log == nil {
		lg, err := durable.OpenSegmentLog(
			filepath.Join(sp.dir, fmt.Sprintf("lane-%d", sp.gauge)),
			durable.SegmentConfig{
				SegmentBytes: sp.seg,
				// Spill is an overload valve, not a durability promise:
				// batch syncs keep the slow path from paying an fsync
				// per envelope.
				Sync:   durable.SyncBatch,
				Logger: sp.logger,
			})
		if err != nil {
			sp.logger.Error("opening lane spill log failed; shedding instead",
				"lane", sp.gauge, "err", err)
			sp.failed = true
			return false
		}
		sp.log = lg
		sp.next = lg.NextOffset()
	}
	if _, err := sp.log.Append(data); err != nil {
		sp.logger.Error("lane spill append failed; shedding instead",
			"lane", sp.gauge, "err", err)
		sp.failed = true
		return false
	}
	sp.count++
	return true
}

// drain streams up to spillDrainBatch spilled records (oldest first) to
// fn and advances the drain cursor. A read error with no progress
// discards the remaining backlog — livelocking the lane on a corrupt
// record would be worse than the counted loss.
func (sp *laneSpill) drain(fn func(data []byte)) {
	sp.lastDrained = 0
	if sp.log == nil || sp.count == 0 {
		sp.count = 0
		return
	}
	end := sp.next + spillDrainBatch
	err := sp.log.ReadFrom(sp.next, func(off uint64, data []byte) error {
		if off >= end {
			return errSpillStop
		}
		fn(data)
		sp.lastDrained++
		return nil
	})
	if err != nil && !errors.Is(err, errSpillStop) && sp.lastDrained == 0 {
		sp.logger.Error("lane spill drain failed; discarding spilled backlog",
			"lane", sp.gauge, "records", sp.count, "err", err)
		sp.next = sp.log.NextOffset()
		sp.count = 0
		return
	}
	sp.next += uint64(sp.lastDrained)
	sp.count -= sp.lastDrained
	if sp.count <= 0 {
		sp.count = 0
		// Fully caught up: seal and drop the on-disk backlog so the next
		// overload starts from an empty log.
		_ = sp.log.Roll()
		_, _, _ = sp.log.Compact(sp.log.NextOffset())
	}
}

func (sp *laneSpill) close() {
	if sp.log != nil {
		_ = sp.log.Close()
	}
}

// spillPrioBytes prefixes each spill record with the envelope's lane
// priority so the serial lane round-trips Prioritary metadata; parallel
// lanes store zero.
const spillPrioBytes = 8

// marshalSpill encodes an envelope (plus its serial-lane priority) as
// one spill record. Returns nil when the envelope does not encode —
// the caller sheds it.
func marshalSpill(env *codec.Envelope, prio int) []byte {
	body, err := codec.Marshal(env)
	if err != nil {
		return nil
	}
	rec := make([]byte, spillPrioBytes+len(body))
	binary.BigEndian.PutUint64(rec, uint64(int64(prio)))
	copy(rec[spillPrioBytes:], body)
	return rec
}

// unmarshalSpill decodes one spill record.
func unmarshalSpill(data []byte) (*codec.Envelope, int, error) {
	if len(data) < spillPrioBytes {
		return nil, 0, fmt.Errorf("core: spill record too short (%d bytes)", len(data))
	}
	prio := int(int64(binary.BigEndian.Uint64(data)))
	env, err := codec.Unmarshal(data[spillPrioBytes:])
	if err != nil {
		return nil, 0, err
	}
	return env, prio, nil
}
