// Package core implements the paper's primary contribution: the two
// linguistic primitives of type-based publish/subscribe — publish and
// subscribe — as a typed Go API (paper §2.3, §3).
//
// The paper integrates the primitives into Java via a precompiler (psc)
// that generates one typed adapter per obvent type (Figure 6). Go's
// generics let this package expose the same statically typed surface
// without code generation:
//
//	sub, err := core.Subscribe(engine, filter, func(q StockQuote) {
//		fmt.Println("Got offer:", q.Price)
//	})
//	err = sub.Activate()
//	...
//	err = core.Publish(engine, StockQuote{Company: "Telco Mobiles", Price: 80})
//
// mirrors the paper's
//
//	Subscription s = subscribe (StockQuote q) {filter} {handler};
//	s.activate();
//	publish q;
//
// The cmd/psc tool additionally reproduces the paper's precompiler
// architecture by generating explicit XxxAdapter types; both roads lead
// to the same engine below.
package core

import "errors"

// The notification errors mirror the paper's exception hierarchy
// (Figure 3: NotificationException and subclasses).
var (
	// ErrCannotPublish signals a problem transmitting an obvent
	// (CannotPublishException).
	ErrCannotPublish = errors.New("core: cannot publish")
	// ErrCannotSubscribe signals that a subscription cannot be issued,
	// e.g. it is already activated (CannotSubscribeException).
	ErrCannotSubscribe = errors.New("core: cannot subscribe")
	// ErrCannotUnsubscribe signals that a subscription cannot be
	// cancelled, e.g. it is not active (CannotUnsubscribeException).
	ErrCannotUnsubscribe = errors.New("core: cannot unsubscribe")
	// ErrEngineClosed is returned by operations on a closed engine.
	ErrEngineClosed = errors.New("core: engine closed")
)
