// Package core implements the paper's primary contribution: the two
// linguistic primitives of type-based publish/subscribe — publish and
// subscribe — as a typed Go API (paper §2.3, §3).
//
// The paper integrates the primitives into Java via a precompiler (psc)
// that generates one typed adapter per obvent type (Figure 6). Go's
// generics let this package expose the same statically typed surface
// without code generation:
//
//	sub, err := core.Subscribe(engine, filter, func(q StockQuote) {
//		fmt.Println("Got offer:", q.Price)
//	})
//	err = sub.Activate()
//	...
//	err = core.Publish(engine, StockQuote{Company: "Telco Mobiles", Price: 80})
//
// mirrors the paper's
//
//	Subscription s = subscribe (StockQuote q) {filter} {handler};
//	s.activate();
//	publish q;
//
// The cmd/psc tool additionally reproduces the paper's precompiler
// architecture by generating explicit XxxAdapter types; both roads lead
// to the same engine below.
//
// # Dispatch architecture
//
// Inbound envelopes flow through an indexed, allocation-light pipeline
// (see dispatch.go):
//
//	envelope ──► priority inbox ──► type index ──► compound match ──► clone per match
//
//  1. Type index: every activation change compiles an immutable
//     dispatchTable published through an atomic pointer; the dispatcher
//     resolves the envelope's wire type to a pre-sorted candidate bucket
//     (expanded through the registry's conformance relation) with a
//     lock-free load, instead of snapshotting and sorting the
//     subscription table per envelope.
//  2. Compound match: each bucket factors its candidates' remote filters
//     into one matching.Compound (paper §2.3.2, [ASS+99]), so an event's
//     conditions are evaluated once across all subscribers — shared path
//     resolution, common-subexpression elimination, threshold binary
//     search — rather than once per subscription.
//  3. Clone per match: the envelope is decoded once into a canonical
//     value used only for remote-filter matching; the distinct
//     per-subscriber clones required by obvent local uniqueness (§2.1.2)
//     are produced only for subscriptions whose remote matching passed
//     (opaque local filters run on the subscriber's own clone), cutting
//     decode work from O(subscriptions) to O(matches)+1.
//
// Engine.Stats exposes the pipeline's cumulative delivery counters;
// WithNaiveDispatch retains the unindexed reference path as the
// transparency oracle and benchmark baseline.
package core

import "errors"

// The notification errors mirror the paper's exception hierarchy
// (Figure 3: NotificationException and subclasses).
var (
	// ErrCannotPublish signals a problem transmitting an obvent
	// (CannotPublishException).
	ErrCannotPublish = errors.New("core: cannot publish")
	// ErrCannotSubscribe signals that a subscription cannot be issued,
	// e.g. it is already activated (CannotSubscribeException).
	ErrCannotSubscribe = errors.New("core: cannot subscribe")
	// ErrCannotUnsubscribe signals that a subscription cannot be
	// cancelled, e.g. it is not active (CannotUnsubscribeException).
	ErrCannotUnsubscribe = errors.New("core: cannot unsubscribe")
	// ErrEngineClosed is returned by operations on a closed engine.
	ErrEngineClosed = errors.New("core: engine closed")
)
