// Package core implements the paper's primary contribution: the two
// linguistic primitives of type-based publish/subscribe — publish and
// subscribe — as a typed Go API (paper §2.3, §3).
//
// The paper integrates the primitives into Java via a precompiler (psc)
// that generates one typed adapter per obvent type (Figure 6). Go's
// generics let this package expose the same statically typed surface
// without code generation:
//
//	sub, err := core.Subscribe(engine, filter, func(q StockQuote) {
//		fmt.Println("Got offer:", q.Price)
//	})
//	err = sub.Activate()
//	...
//	err = core.Publish(engine, StockQuote{Company: "Telco Mobiles", Price: 80})
//
// mirrors the paper's
//
//	Subscription s = subscribe (StockQuote q) {filter} {handler};
//	s.activate();
//	publish q;
//
// The cmd/psc tool additionally reproduces the paper's precompiler
// architecture by generating explicit XxxAdapter types; both roads lead
// to the same engine below.
//
// # Dispatch architecture
//
// Inbound envelopes flow through a sharded, indexed, allocation-light
// pipeline (see lanes.go and dispatch.go). A semantics-aware router
// first shards every envelope across dispatch lanes; each lane then
// runs the indexed matching pipeline with its own private scratch and
// counters:
//
//	           ┌► serial lane (priority heap) ─┐
//	           │   ordered / prioritary        │
//	envelope ─►│                               ├─► type index ──► compound match ──► clone per match
//	           └► lane[hash(publisher) % N] ───┘
//	               unordered (parallel)
//
// Lane routing realizes the transmission semantics of §3.1.2 with the
// least serialization they permit:
//
//   - FIFO, Causal and Total ordered obvents, and Prioritary obvents,
//     drain through the single serial lane: a priority heap (higher
//     priority first, FIFO among equals) whose one goroutine preserves
//     arrival order for ordered traffic and lets Prioritary envelopes
//     overtake lower-priority backlog. Ordering and priority cannot
//     combine (Figure 4 drops priority under any ordering), so the two
//     semantics share the lane without interfering.
//   - Unordered obvents — bound by no delivery-order contract — fan out
//     across N parallel lanes (WithDispatchLanes, default GOMAXPROCS),
//     hashed by publisher so one publisher's envelopes keep their
//     arrival order relative to each other.
//
// The serial-or-parallel decision reads the envelope's wire metadata
// and, for unordered metadata, a per-class semantics lookup cached in
// the type registry (Registry.ClassSemantics, invalidated by the
// registry generation counter) — a lock-free map hit, never a payload
// decode, with zero steady-state allocations.
//
// Within a lane, matching is indexed:
//
//  1. Type index: every activation change compiles an immutable
//     dispatchTable published through an atomic pointer; the dispatcher
//     resolves the envelope's wire type to a pre-sorted candidate bucket
//     (expanded through the registry's conformance relation) with a
//     lock-free load, instead of snapshotting and sorting the
//     subscription table per envelope.
//  2. Compound match: each bucket factors its candidates' remote filters
//     into one matching.Compound (paper §2.3.2, [ASS+99]), so an event's
//     conditions are evaluated once across all subscribers — shared path
//     resolution, common-subexpression elimination, threshold binary
//     search — rather than once per subscription.
//  3. Clone per match: the envelope is decoded once into a canonical
//     value used only for remote-filter matching; the distinct
//     per-subscriber clones required by obvent local uniqueness (§2.1.2)
//     are produced only for subscriptions whose remote matching passed
//     (opaque local filters run on the subscriber's own clone), cutting
//     decode work from O(subscriptions) to O(matches)+1.
//
// Engine.Stats exposes the pipeline's cumulative delivery counters
// (folded across lanes; Engine.LaneStats breaks them out per lane);
// WithNaiveDispatch retains the unindexed reference path as the
// transparency oracle and benchmark baseline.
package core

import "errors"

// The notification errors mirror the paper's exception hierarchy
// (Figure 3: NotificationException and subclasses).
var (
	// ErrCannotPublish signals a problem transmitting an obvent
	// (CannotPublishException).
	ErrCannotPublish = errors.New("core: cannot publish")
	// ErrCannotSubscribe signals that a subscription cannot be issued,
	// e.g. it is already activated (CannotSubscribeException).
	ErrCannotSubscribe = errors.New("core: cannot subscribe")
	// ErrCannotUnsubscribe signals that a subscription cannot be
	// cancelled, e.g. it is not active (CannotUnsubscribeException).
	ErrCannotUnsubscribe = errors.New("core: cannot unsubscribe")
	// ErrEngineClosed is returned by operations on a closed engine.
	ErrEngineClosed = errors.New("core: engine closed")
	// ErrSlowConsumer tags deliveries dropped because a quarantined
	// slow consumer's bounded mailbox overflowed (slow-consumer
	// isolation, WithSlowConsumerBudget). It is an accounting sentinel:
	// such drops appear in DispatchStats.SlowConsumerDrops and under
	// the telemetry drop reason "slow_consumer"; other subscriptions'
	// deliveries are unaffected.
	ErrSlowConsumer = errors.New("core: slow consumer")
)
