package core

import (
	"container/heap"
	"sync"

	"govents/internal/codec"
	"govents/internal/telemetry"
)

// laneShrinkMin is the queue capacity below which lanes never bother
// shrinking their backing arrays: reclaiming a few hundred pointers is
// not worth the copy, and a small warm buffer avoids re-growing under
// ordinary jitter.
const laneShrinkMin = 64

// priorityInbox is the engine's serial dispatch lane: one goroutine
// drains a heap in priority order (higher first), with FIFO order among
// equal priorities. This realizes the Prioritary transmission semantics
// of §3.1.2 — "the delivery of obvents can be delayed to defer to
// obvents with a higher priority" — at the receiving process, where
// backlog actually forms. Because it is strictly serial it also
// preserves arrival order for the ordered semantics (FIFO/Causal/Total),
// whose envelopes the lane router (lanes.go) steers here.
type priorityInbox struct {
	dispatch func(*codec.Envelope, *laneState)
	tele     *telemetry.Plane

	mu     sync.Mutex
	cond   *sync.Cond
	heap   inboxHeap
	nextSq uint64
	closed bool
	wg     sync.WaitGroup

	// st is the lane's private dispatch working set (scratch buffers and
	// delivery counters); only the lane goroutine touches the scratch.
	st laneState
}

type inboxItem struct {
	env  *codec.Envelope
	prio int
	seq  uint64 // arrival order tiebreaker
	enq  int64  // telemetry enqueue timestamp (0 when telemetry is off)
}

func newPriorityInbox(dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane) *priorityInbox {
	in := &priorityInbox{dispatch: dispatch, tele: tele}
	in.cond = sync.NewCond(&in.mu)
	in.wg.Add(1)
	go in.loop()
	return in
}

func (in *priorityInbox) push(env *codec.Envelope, prio int) {
	var enq int64
	if in.tele.Enabled() {
		enq = telemetry.Now()
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return
	}
	in.st.enqueued.Add(1)
	in.nextSq++
	heap.Push(&in.heap, inboxItem{env: env, prio: prio, seq: in.nextSq, enq: enq})
	in.cond.Signal()
}

// queued returns the instantaneous backlog length.
func (in *priorityInbox) queued() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.heap.Len()
}

func (in *priorityInbox) loop() {
	defer in.wg.Done()
	for {
		in.mu.Lock()
		for in.heap.Len() == 0 && !in.closed {
			in.cond.Wait()
		}
		if in.heap.Len() == 0 && in.closed {
			in.mu.Unlock()
			return
		}
		item := heap.Pop(&in.heap).(inboxItem)
		// A burst must not pin its high-water memory for the engine's
		// lifetime: once the backlog occupies under a quarter of the
		// backing array, move it to a right-sized one. A straight copy
		// preserves the heap invariant.
		if c := cap(in.heap); c > laneShrinkMin && c > 4*in.heap.Len() {
			shrunk := make(inboxHeap, in.heap.Len())
			copy(shrunk, in.heap)
			in.heap = shrunk
		}
		backlog := in.heap.Len()
		in.mu.Unlock()
		in.st.deq = 0
		if item.enq != 0 {
			// The serial lane owns gauge (and histogram shard) 0.
			now := telemetry.Now()
			in.tele.Record(0, telemetry.StageLaneWait, now-item.enq)
			in.tele.SampleQueue(0, backlog)
			in.st.deq = now
		}
		in.dispatch(item.env, &in.st)
	}
}

// close marks the lane closed and waits for the backlog to drain.
// Broadcast, not Signal: Signal wakes a single waiter, which would leave
// the remaining ones blocked forever if the condvar ever has more than
// one (several drainers sharing one lane, or a future close/flush waiter).
func (in *priorityInbox) close() {
	in.mu.Lock()
	in.closed = true
	in.cond.Broadcast()
	in.mu.Unlock()
	in.wg.Wait()
}

// inboxHeap orders by descending priority, then ascending arrival.
type inboxHeap []inboxItem

func (h inboxHeap) Len() int { return len(h) }

func (h inboxHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h inboxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *inboxHeap) Push(x any) { *h = append(*h, x.(inboxItem)) }

func (h *inboxHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = inboxItem{} // drop the envelope reference for the GC
	*h = old[:n-1]
	return item
}
