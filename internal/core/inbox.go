package core

import (
	"container/heap"
	"sync"

	"govents/internal/codec"
)

// priorityInbox is the engine's inbound envelope queue: a single
// dispatcher goroutine drains it in priority order (higher first), with
// FIFO order among equal priorities. This realizes the Prioritary
// transmission semantics of §3.1.2 — "the delivery of obvents can be
// delayed to defer to obvents with a higher priority" — at the receiving
// process, where backlog actually forms.
type priorityInbox struct {
	dispatch func(*codec.Envelope)

	mu     sync.Mutex
	cond   *sync.Cond
	heap   inboxHeap
	nextSq uint64
	closed bool
	wg     sync.WaitGroup
}

type inboxItem struct {
	env  *codec.Envelope
	prio int
	seq  uint64 // arrival order tiebreaker
}

func newPriorityInbox(dispatch func(*codec.Envelope)) *priorityInbox {
	in := &priorityInbox{dispatch: dispatch}
	in.cond = sync.NewCond(&in.mu)
	in.wg.Add(1)
	go in.loop()
	return in
}

func (in *priorityInbox) push(env *codec.Envelope, prio int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return
	}
	in.nextSq++
	heap.Push(&in.heap, inboxItem{env: env, prio: prio, seq: in.nextSq})
	in.cond.Signal()
}

func (in *priorityInbox) loop() {
	defer in.wg.Done()
	for {
		in.mu.Lock()
		for in.heap.Len() == 0 && !in.closed {
			in.cond.Wait()
		}
		if in.heap.Len() == 0 && in.closed {
			in.mu.Unlock()
			return
		}
		item := heap.Pop(&in.heap).(inboxItem)
		in.mu.Unlock()
		in.dispatch(item.env)
	}
}

func (in *priorityInbox) close() {
	in.mu.Lock()
	in.closed = true
	in.cond.Signal()
	in.mu.Unlock()
	in.wg.Wait()
}

// inboxHeap orders by descending priority, then ascending arrival.
type inboxHeap []inboxItem

func (h inboxHeap) Len() int { return len(h) }

func (h inboxHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h inboxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *inboxHeap) Push(x any) { *h = append(*h, x.(inboxItem)) }

func (h *inboxHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
