package core

import (
	"container/heap"
	"sync"

	"govents/internal/codec"
	"govents/internal/telemetry"
)

// laneShrinkMin is the queue capacity below which lanes never bother
// shrinking their backing arrays: reclaiming a few hundred pointers is
// not worth the copy, and a small warm buffer avoids re-growing under
// ordinary jitter.
const laneShrinkMin = 64

// priorityInbox is the engine's serial dispatch lane: one goroutine
// drains a heap in priority order (higher first), with FIFO order among
// equal priorities. This realizes the Prioritary transmission semantics
// of §3.1.2 — "the delivery of obvents can be delayed to defer to
// obvents with a higher priority" — at the receiving process, where
// backlog actually forms. Because it is strictly serial it also
// preserves arrival order for the global ordered semantics
// (Causal/Total), whose envelopes the lane router (lanes.go) steers
// here; FIFO traffic needs only per-publisher order and drains through
// the parallel lanes instead.
//
// The heap may be bounded (laneConfig.bound), applying the engine's
// overload policy when full. Under OverloadSpill, overflow preserves
// arrival order (each record carries its priority): priority overtaking
// then applies only within the in-memory window — a documented
// degradation of Prioritary under overload, never of Causal/Total
// arrival order.
type priorityInbox struct {
	dispatch func(*codec.Envelope, *laneState)
	tele     *telemetry.Plane
	cfg      laneConfig

	mu      sync.Mutex
	cond    *sync.Cond // work available (lane goroutine waits here)
	notFull *sync.Cond // space available (OverloadBlock pushers wait here)
	heap    inboxHeap
	nextSq  uint64
	closed  bool
	wg      sync.WaitGroup

	spill laneSpill

	// st is the lane's private dispatch working set (scratch buffers and
	// delivery counters); only the lane goroutine touches the scratch.
	st laneState
}

type inboxItem struct {
	env  *codec.Envelope
	prio int
	seq  uint64 // arrival order tiebreaker
	enq  int64  // telemetry enqueue timestamp (0 when telemetry is off)
}

func newPriorityInbox(dispatch func(*codec.Envelope, *laneState), tele *telemetry.Plane, cfg laneConfig) *priorityInbox {
	in := &priorityInbox{dispatch: dispatch, tele: tele, cfg: cfg}
	in.cond = sync.NewCond(&in.mu)
	in.notFull = sync.NewCond(&in.mu)
	in.spill.init(cfg, 0) // the serial lane owns gauge (and spill dir) 0
	in.wg.Add(1)
	go in.loop()
	return in
}

func (in *priorityInbox) push(env *codec.Envelope, prio int) {
	var enq int64
	if in.tele.Enabled() {
		enq = telemetry.Now()
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return
	}
	in.st.enqueued.Add(1)
	// Spill mode is sticky: while a disk backlog exists it is older than
	// any new arrival, so arrivals keep spilling until it fully drains.
	if in.spill.count > 0 {
		in.spillEnv(env, prio)
		in.cond.Signal()
		return
	}
	if in.cfg.bound > 0 && in.heap.Len() >= in.cfg.bound {
		switch in.cfg.policy {
		case OverloadDropOldest:
			in.shedOldestLocked()
		case OverloadSpill:
			in.spillEnv(env, prio)
			in.cond.Signal()
			return
		default: // OverloadBlock
			for !in.closed && in.heap.Len() >= in.cfg.bound {
				in.notFull.Wait()
			}
			if in.closed {
				return
			}
		}
	}
	in.pushLocked(env, prio, enq)
	in.cond.Signal()
}

func (in *priorityInbox) pushLocked(env *codec.Envelope, prio int, enq int64) {
	in.nextSq++
	heap.Push(&in.heap, inboxItem{env: env, prio: prio, seq: in.nextSq, enq: enq})
}

// shedOldestLocked drops the oldest queued envelope — the minimum
// arrival sequence, regardless of priority. An O(n) scan, but the shed
// path only runs at the overload boundary, never in steady state.
func (in *priorityInbox) shedOldestLocked() {
	oldest := 0
	for i := 1; i < len(in.heap); i++ {
		if in.heap[i].seq < in.heap[oldest].seq {
			oldest = i
		}
	}
	item := heap.Remove(&in.heap, oldest).(inboxItem)
	in.st.counters.shed.Add(1)
	in.tele.Drop(telemetry.ReasonOverloadShed)
	_ = item
}

// spillEnv appends one envelope (with its priority) to the overflow log
// (caller holds mu); a spill failure degrades to a counted shed.
func (in *priorityInbox) spillEnv(env *codec.Envelope, prio int) {
	if in.spill.append(marshalSpill(env, prio)) {
		in.st.counters.spilled.Add(1)
	} else {
		in.st.counters.shed.Add(1)
		in.tele.Drop(telemetry.ReasonOverloadShed)
	}
}

// queued returns the instantaneous in-memory backlog length.
func (in *priorityInbox) queued() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.heap.Len()
}

// spillBacklog returns the number of spilled, not-yet-drained envelopes.
func (in *priorityInbox) spillBacklog() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.spill.count
}

func (in *priorityInbox) loop() {
	defer in.wg.Done()
	for {
		in.mu.Lock()
		for in.heap.Len() == 0 {
			if in.spill.count > 0 {
				in.refillFromSpillLocked()
				continue
			}
			if in.closed {
				in.mu.Unlock()
				return
			}
			in.cond.Wait()
		}
		item := heap.Pop(&in.heap).(inboxItem)
		// A burst must not pin its high-water memory for the engine's
		// lifetime: once the backlog occupies under a quarter of the
		// backing array, move it to a right-sized one. A straight copy
		// preserves the heap invariant.
		if c := cap(in.heap); c > laneShrinkMin && c > 4*in.heap.Len() {
			shrunk := make(inboxHeap, in.heap.Len())
			copy(shrunk, in.heap)
			in.heap = shrunk
		}
		backlog := in.heap.Len()
		in.notFull.Signal()
		in.mu.Unlock()
		in.st.deq = 0
		if item.enq != 0 {
			// The serial lane owns gauge (and histogram shard) 0.
			now := telemetry.Now()
			in.tele.Record(0, telemetry.StageLaneWait, now-item.enq)
			in.tele.SampleQueue(0, backlog)
			in.st.deq = now
		}
		in.dispatch(item.env, &in.st)
	}
}

// refillFromSpillLocked moves a batch of spilled records back into the
// heap (caller holds mu), re-sequencing them in spill (arrival) order.
func (in *priorityInbox) refillFromSpillLocked() {
	in.spill.drain(func(data []byte) {
		env, prio, err := unmarshalSpill(data)
		if err != nil {
			in.st.counters.decodeErrors.Add(1)
			in.tele.Drop(telemetry.ReasonDecodeError)
			return
		}
		var enq int64
		if in.tele.Enabled() {
			enq = telemetry.Now()
		}
		in.pushLocked(env, prio, enq)
	})
	in.st.counters.spillDrained.Add(uint64(in.spill.lastDrained))
	if in.spill.count == 0 {
		in.notFull.Broadcast()
	}
}

// close marks the lane closed and waits for the backlog — memory and
// spill — to drain. Broadcast, not Signal: Signal wakes a single waiter,
// which would leave the remaining ones blocked forever if the condvar
// ever has more than one (several drainers sharing one lane, or a
// future close/flush waiter).
func (in *priorityInbox) close() {
	in.mu.Lock()
	in.closed = true
	in.cond.Broadcast()
	in.notFull.Broadcast()
	in.mu.Unlock()
	in.wg.Wait()
	in.spill.close()
}

// inboxHeap orders by descending priority, then ascending arrival.
type inboxHeap []inboxItem

func (h inboxHeap) Len() int { return len(h) }

func (h inboxHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h inboxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *inboxHeap) Push(x any) { *h = append(*h, x.(inboxItem)) }

func (h *inboxHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = inboxItem{} // drop the envelope reference for the GC
	*h = old[:n-1]
	return item
}
