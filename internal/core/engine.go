package core

import (
	"fmt"
	"log/slog"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govents/internal/codec"
	"govents/internal/filter"
	"govents/internal/obvent"
	"govents/internal/telemetry"
)

// Disseminator abstracts the dissemination substrate beneath an Engine:
// the local loopback (NewLocal) for single-process use, or a DACE node
// (package dace) for distributed operation. The engine encodes obvents
// into envelopes and hands them down; the disseminator hands arriving
// envelopes back up through the sink installed with SetSink.
type Disseminator interface {
	// PublishEnvelope disseminates an encoded obvent to every process
	// hosting matching subscriptions (possibly including this one).
	PublishEnvelope(env *codec.Envelope) error
	// SetSink installs the engine's delivery entry point. It must be
	// called once before any traffic flows.
	SetSink(sink func(env *codec.Envelope))
	// SubscriptionChanged notifies the substrate that the set of
	// local subscriptions changed (for advertisement to filtering
	// hosts / membership maintenance). info lists all currently
	// active local subscriptions.
	SubscriptionChanged(info []SubscriptionInfo) error
	// Close releases the substrate.
	Close() error
}

// SubscriptionInfo is the substrate-visible description of an active
// subscription: what the control plane advertises to other processes
// (paper §4.2 — subscription requests are themselves disseminated as
// obvents).
type SubscriptionInfo struct {
	// ID is the engine-unique subscription identifier.
	ID string
	// TypeName is the wire name of the subscribed type.
	TypeName string
	// Filter is the marshaled remote filter (nil when the subscription
	// uses an opaque local filter, which cannot leave the process —
	// paper §3.3.4).
	Filter []byte
	// DurableID is non-empty for certified subscriptions activated
	// with an identity that outlives the process (paper §3.4.1).
	DurableID string
	// Certified reports whether the subscribed type requests
	// certified delivery.
	Certified bool
}

// Engine is one process's publish/subscribe runtime: it owns the type
// registry, the local subscription table, and the delivery pipeline
// that enforces the obvent semantics of §3.1.2.
type Engine struct {
	id    string
	reg   *obvent.Registry
	codec *codec.Codec
	diss  Disseminator

	mu     sync.Mutex
	subs   map[string]*Subscription
	nextID int
	closed bool

	// Inbound delivery: the sharded multi-lane dispatcher (lanes.go).
	// Ordered and Prioritary envelopes drain through one serial
	// priority-aware lane — preserving arrival order except that
	// Prioritary envelopes overtake lower-priority backlog (§3.1.2
	// transmission semantics) — while unordered envelopes fan out
	// across parallel lanes hashed by publisher.
	lanes *laneSet

	// table is the copy-on-write dispatch index (see dispatch.go):
	// republished on every activation change, loaded lock-free per
	// envelope.
	table atomic.Pointer[dispatchTable]
	// handlerPanics counts application handler panics recovered by the
	// delivery pipeline: a panicking handler must not take down the
	// process or starve other subscriptions of the same event.
	handlerPanics atomic.Uint64
	// overload aggregates slow-consumer isolation accounting across all
	// subscription executors (quarantine transitions, mailbox drops).
	overload overloadCounters
	// stallBudget/mailbox configure slow-consumer isolation for every
	// subscription executor (WithSlowConsumerBudget); a zero budget
	// disables it.
	stallBudget time.Duration
	mailbox     int
	// naiveDispatch routes envelopes through the unindexed
	// per-subscription path (WithNaiveDispatch).
	naiveDispatch bool

	// tele is the engine's telemetry plane (per-stage latency
	// histograms, drop reasons, trace hook). May be nil: a nil plane is
	// fully disabled and every probe short-circuits on the nil check.
	tele *telemetry.Plane
	// log receives the engine's diagnostics (handler panics); defaults
	// to a discard logger so embedding programs stay silent unless they
	// inject one.
	log *slog.Logger
}

// Option configures an Engine.
type Option func(*engineConfig)

type engineConfig struct {
	registry    *obvent.Registry
	naive       bool
	lanes       int
	legacyWire  bool
	tele        *telemetry.Plane
	teleSet     bool
	logger      *slog.Logger
	laneBound   int
	policy      OverloadPolicy
	spillDir    string
	stallBudget time.Duration
	mailbox     int
}

// WithRegistry makes the engine use a shared obvent type registry
// (useful when several engines in one process must agree on type
// names).
func WithRegistry(reg *obvent.Registry) Option {
	return func(c *engineConfig) { c.registry = reg }
}

// WithDispatchLanes sets the number of parallel dispatch lanes for
// unordered traffic. Zero (or leaving the option unset) means
// GOMAXPROCS; negative values are clamped to 1. Ordered and Prioritary
// envelopes always drain through one additional serial lane regardless
// of n, so their delivery semantics are unaffected by the lane count.
func WithDispatchLanes(n int) Option {
	return func(c *engineConfig) { c.lanes = n }
}

// WithNaiveDispatch disables the indexed dispatch pipeline: every
// envelope is matched by iterating the whole subscription table and
// evaluating each remote filter independently with filter.Evaluate.
// Delivery semantics are identical to the indexed path (property-tested);
// this exists as the transparency oracle and benchmark baseline, not for
// production use.
func WithNaiveDispatch() Option {
	return func(c *engineConfig) { c.naive = true }
}

// WithLegacyWire disables the compact per-class payload encoding in the
// engine's codec: every payload is gob-encoded and compact payloads are
// refused, making the engine observationally a pre-wire binary. This is
// the mixed-version test and operational escape hatch; distributed
// deployments also disable the encoding on the dissemination substrate
// (dace Config.LegacyWire) so the node advertises accordingly.
func WithLegacyWire() Option {
	return func(c *engineConfig) { c.legacyWire = true }
}

// WithTelemetry installs the engine's telemetry plane. Passing nil
// disables telemetry entirely (every probe short-circuits on a nil
// check); leaving the option unset gives the engine its own enabled
// plane. Domains share one plane between the engine and the
// dissemination substrate so cross-layer stages land in one place.
func WithTelemetry(p *telemetry.Plane) Option {
	return func(c *engineConfig) { c.tele = p; c.teleSet = true }
}

// WithEngineLogger injects the logger the engine uses for diagnostics
// that have no error-return path (handler panics). Default: discard.
func WithEngineLogger(l *slog.Logger) Option {
	return func(c *engineConfig) { c.logger = l }
}

// WithLaneQueueBound caps every dispatch lane's in-memory queue at n
// envelopes. A full lane applies the engine's overload policy
// (WithOverloadPolicy). Zero or negative restores the default unbounded
// queues.
func WithLaneQueueBound(n int) Option {
	return func(c *engineConfig) { c.laneBound = n }
}

// WithOverloadPolicy selects what a bounded lane (WithLaneQueueBound)
// does once full: block the publisher path (default), shed the oldest
// queued envelope, or spill overflow to a per-lane durable segment log
// (requires WithSpillDir). Without a queue bound the policy is idle.
func WithOverloadPolicy(p OverloadPolicy) Option {
	return func(c *engineConfig) { c.policy = p }
}

// WithSpillDir hosts the per-lane overflow segment logs used by the
// OverloadSpill policy. The directory is created on first spill; an
// engine configured with OverloadSpill but no spill directory degrades
// to OverloadDropOldest with a logged warning.
func WithSpillDir(dir string) Option {
	return func(c *engineConfig) { c.spillDir = dir }
}

// WithSlowConsumerBudget enables slow-consumer isolation: a
// subscription whose handler has been running longer than stall without
// completing anything, while deliveries queue behind it, is quarantined
// — its delivery queue becomes a bounded mailbox of the given size
// (<= 0 selects a default of 1024) whose overflow is dropped for that
// subscription only, counted in DispatchStats.SlowConsumerDrops and
// tagged ErrSlowConsumer in telemetry, so a wedged handler can never
// head-of-line-block a dispatch lane or engine shutdown. A zero stall
// disables isolation (the default).
func WithSlowConsumerBudget(stall time.Duration, mailbox int) Option {
	return func(c *engineConfig) { c.stallBudget = stall; c.mailbox = mailbox }
}

// NewEngine creates an engine with identifier id over the given
// dissemination substrate.
func NewEngine(id string, diss Disseminator, opts ...Option) *Engine {
	cfg := engineConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.registry
	if reg == nil {
		reg = obvent.NewRegistry()
	}
	lanes := cfg.lanes
	if lanes == 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	tele := cfg.tele
	if !cfg.teleSet {
		tele = telemetry.NewPlane()
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	e := &Engine{
		id:            id,
		reg:           reg,
		codec:         codec.New(reg),
		diss:          diss,
		subs:          make(map[string]*Subscription),
		naiveDispatch: cfg.naive,
		tele:          tele,
		log:           logger,
		stallBudget:   cfg.stallBudget,
		mailbox:       cfg.mailbox,
	}
	if cfg.legacyWire {
		e.codec.SetWireDisabled(true)
	}
	if e.tele.Node() == "" {
		e.tele.SetNode(id)
	}
	e.tele.SetLanes(lanes + 1) // +1: the serial lane's gauge is index 0
	e.table.Store(newDispatchTable(reg, nil))
	e.lanes = newLaneSet(reg, lanes, e.dispatch, e.tele, laneConfig{
		bound:    cfg.laneBound,
		policy:   cfg.policy,
		spillDir: cfg.spillDir,
		logger:   logger,
	})
	diss.SetSink(e.deliver)
	return e
}

// Telemetry returns the engine's telemetry plane (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Plane { return e.tele }

// ID returns the engine identifier.
func (e *Engine) ID() string { return e.id }

// Registry returns the engine's obvent type registry, for registering
// application obvent classes and abstract types.
func (e *Engine) Registry() *obvent.Registry { return e.reg }

// Codec returns the engine's codec (used by substrates and tools).
func (e *Engine) Codec() *codec.Codec { return e.codec }

// Close deactivates all subscriptions and shuts the engine down.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	subs := make([]*Subscription, 0, len(e.subs))
	for _, s := range e.subs {
		subs = append(subs, s)
	}
	e.mu.Unlock()

	for _, s := range subs {
		_ = s.Deactivate() // best effort; already-inactive is fine
		s.executor.close()
	}
	e.lanes.close()
	return e.diss.Close()
}

// Publish disseminates an obvent to all subscribers with matching
// subscriptions — the engine half of the publish primitive (§3.2).
// It is the distributed analog of object creation: each subscriber
// receives a distinct clone (§2.1.2).
func (e *Engine) Publish(o obvent.Obvent) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("%w: %w", ErrCannotPublish, ErrEngineClosed)
	}
	if o == nil {
		return fmt.Errorf("%w: nil obvent", ErrCannotPublish)
	}
	env, err := e.codec.Encode(o)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrCannotPublish, err)
	}
	env.Publisher = e.id
	if err := e.diss.PublishEnvelope(env); err != nil {
		return fmt.Errorf("%w: %w", ErrCannotPublish, err)
	}
	return nil
}

// deliver is the sink invoked by the disseminator for every inbound
// envelope. It routes the envelope to its dispatch lane (serial for
// ordered/prioritary semantics, hashed-parallel otherwise); actual
// matching and handler execution happen on the lane goroutines.
func (e *Engine) deliver(env *codec.Envelope) {
	e.lanes.route(env)
}

// register installs a constructed subscription (called by Subscribe).
func (e *Engine) register(s *Subscription) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("%w: %w", ErrCannotSubscribe, ErrEngineClosed)
	}
	e.nextID++
	s.id = fmt.Sprintf("%s/sub-%d", e.id, e.nextID)
	e.subs[s.id] = s
	return nil
}

// infoLocked snapshots all active subscriptions for the substrate.
func (e *Engine) infoLocked() []SubscriptionInfo {
	infos := make([]SubscriptionInfo, 0, len(e.subs))
	for _, s := range e.subs {
		if !s.active() {
			continue
		}
		infos = append(infos, s.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// subscriptionChanged recompiles the dispatch index and pushes the
// current subscription set to the substrate.
func (e *Engine) subscriptionChanged() error {
	e.rebuildTable()
	e.mu.Lock()
	infos := e.infoLocked()
	e.mu.Unlock()
	return e.diss.SubscriptionChanged(infos)
}

// SubscribeDynamic creates a subscription to the (possibly abstract)
// type t with an optional remote filter and an optional opaque local
// predicate. Most callers use the typed generic Subscribe /
// SubscribeLocal wrappers; this entry point exists for tooling (psc
// adapters) and tests that work with reflect.Type directly.
//
// The returned subscription is inactive: call Activate to start
// receiving (paper §3.4.1).
func (e *Engine) SubscribeDynamic(t reflect.Type, remote *filter.Expr, local func(obvent.Obvent) bool, handler func(obvent.Obvent)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	if remote != nil {
		if err := remote.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
	}
	typeName := obvent.TypeName(t)
	if t.Kind() == reflect.Interface {
		if _, err := e.reg.RegisterInterface(t); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCannotSubscribe, err)
		}
	}
	s := &Subscription{
		engine:       e,
		typeName:     typeName,
		goType:       t,
		remoteFilter: remote,
		localFilter:  local,
		handler:      handler,
	}
	s.executor = newExecutor(s.invoke, e.tele, e.stallBudget, e.mailbox, &e.overload)
	if err := e.register(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Delivery is the per-event metadata handed to a delivery-aware
// handler: the envelope's unique event ID and the event's concrete
// class name. Durable subscriptions acknowledge deliveries in their
// inbox keyed by exactly this pair.
type Delivery struct {
	EventID string
	Class   string
}

// SubscribeDynamicDelivery is SubscribeDynamic for handlers that need
// the delivery metadata alongside the obvent — the entry point durable
// subscriptions build on.
func (e *Engine) SubscribeDynamicDelivery(t reflect.Type, remote *filter.Expr, local func(obvent.Obvent) bool, handler func(obvent.Obvent, Delivery)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrCannotSubscribe)
	}
	s, err := e.SubscribeDynamic(t, remote, local, func(obvent.Obvent) {})
	if err != nil {
		return nil, err
	}
	s.deliveryHandler = handler
	return s, nil
}
