package obvent

import (
	"fmt"
	"time"
)

// Reliability is the delivery-reliability level of an obvent
// (paper §3.1.2: Unreliable / Reliable / Certified).
type Reliability int

// Reliability levels, weakest first.
const (
	Unreliable Reliability = iota + 1
	ReliableDelivery
	CertifiedDelivery
)

// String implements fmt.Stringer.
func (r Reliability) String() string {
	switch r {
	case Unreliable:
		return "unreliable"
	case ReliableDelivery:
		return "reliable"
	case CertifiedDelivery:
		return "certified"
	default:
		return fmt.Sprintf("Reliability(%d)", int(r))
	}
}

// Ordering is the delivery-ordering level of an obvent (paper §3.1.2).
type Ordering int

// Ordering levels, weakest first. The paper's Figure 4 shows FIFO below
// both Causal and Total; Causal extends FIFO (Figure 3), and we place
// Total above Causal so that combining order markers resolves to the
// strongest requested guarantee.
const (
	NoOrder Ordering = iota + 1
	FIFO
	Causal
	Total
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case NoOrder:
		return "none"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case Total:
		return "total"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Semantics is the resolved quality-of-service context of an obvent: the
// effective combination of the delivery semantics and transmission
// semantics its type composes (paper §3.1.2–§3.1.3). Every obvent carries
// its semantics "such that a correct handling of the obvent can be assured
// at every moment of the transfer".
type Semantics struct {
	Reliability Reliability
	Ordering    Ordering

	// Timely is true when the obvent carries an expiry; TTL and Birth
	// are its transmission window. Dropped (per Figure 4 precedence)
	// when the obvent is also Reliable or stronger.
	Timely bool
	TTL    time.Duration
	Birth  time.Time

	// Prioritary is true when the obvent carries a priority. Dropped
	// (per Figure 4 precedence) when the obvent requests any ordering.
	Prioritary bool
	Priority   int

	// Dropped lists the semantics that were requested by the type but
	// suppressed by a stronger contradicting semantics, in resolution
	// order. It allows applications and tests to observe precedence
	// decisions (paper: "the first type takes precedence").
	Dropped []string
}

// Resolve computes the effective Semantics of an obvent from the QoS
// markers its type composes, applying the implications and precedence
// rules of the paper's Figures 3 and 4:
//
//   - Certified, TotalOrder, FIFOOrder and CausalOrder all imply Reliable.
//   - CausalOrder implies FIFOOrder; Total is the strongest ordering.
//   - Reliable (or stronger) contradicts Timely: reliability wins and the
//     timely semantics is dropped.
//   - Any ordering contradicts Prioritary: ordering wins and the priority
//     is dropped.
func Resolve(o Obvent) Semantics {
	s := Semantics{Reliability: Unreliable, Ordering: NoOrder}

	if _, ok := o.(Reliable); ok {
		s.Reliability = ReliableDelivery
	}
	if _, ok := o.(Certified); ok {
		s.Reliability = CertifiedDelivery
	}

	if _, ok := o.(FIFOOrder); ok {
		s.Ordering = FIFO
	}
	if _, ok := o.(CausalOrder); ok {
		s.Ordering = Causal
	}
	if _, ok := o.(TotalOrder); ok {
		s.Ordering = Total
	}
	// Any ordering implies reliable delivery (Figure 4: all order
	// semantics sit above Reliable).
	if s.Ordering > NoOrder && s.Reliability < ReliableDelivery {
		s.Reliability = ReliableDelivery
	}

	if t, ok := o.(Timely); ok {
		if s.Reliability >= ReliableDelivery {
			// Contradiction between reliable and timely-limited
			// obvents: the delivery semantics takes precedence.
			s.Dropped = append(s.Dropped, "timely")
		} else {
			s.Timely = true
			s.TTL = t.TimeToLive()
			s.Birth = t.Birth()
		}
	}

	if p, ok := o.(Prioritary); ok {
		if s.Ordering > NoOrder {
			// Contradiction between total/fifo/causal order and
			// priorities: the order takes precedence.
			s.Dropped = append(s.Dropped, "priority")
		} else {
			s.Prioritary = true
			s.Priority = p.Priority()
		}
	}

	return s
}

// StrongerThan reports whether s requests a strictly stronger guarantee
// than other on at least one axis and no weaker guarantee on any axis
// (the partial order induced by the paper's Figure 4 lattice).
func (s Semantics) StrongerThan(other Semantics) bool {
	if s.Reliability < other.Reliability || s.Ordering < other.Ordering {
		return false
	}
	return s.Reliability > other.Reliability || s.Ordering > other.Ordering
}

// String implements fmt.Stringer.
func (s Semantics) String() string {
	out := fmt.Sprintf("%s/%s", s.Reliability, s.Ordering)
	if s.Timely {
		out += fmt.Sprintf("/timely(ttl=%s)", s.TTL)
	}
	if s.Prioritary {
		out += fmt.Sprintf("/prio(%d)", s.Priority)
	}
	return out
}
