package obvent

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
)

// A Registry tracks the obvent types known to a process and the subtype
// relation between them. It is the runtime analog of the type knowledge
// the paper's psc precompiler extracts at compile time: it maps wire-level
// type names to Go types and answers the type-based matching question
// "is an instance of concrete class C also an instance of subscribed
// type T?" (paper §2.2).
//
// Two declaration forms are supported, mirroring the paper's §2.2:
//
//   - Explicit declaration: a Go interface registered with RegisterInterface
//     declares an abstract obvent type; any registered concrete type whose
//     pointer or value type implements it is a subtype.
//   - Implicit declaration: a registered concrete struct type declares a
//     type; a struct that *embeds* another registered obvent struct is a
//     subtype of the embedded type (the analog of class inheritance).
//
// The zero value is not usable; create registries with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]entry
	ifaces map[string]reflect.Type // registered abstract types

	// gen counts mutations of the type universe. Caches derived from
	// conformance queries (e.g. the engine's per-class dispatch buckets)
	// key on it to detect staleness without taking the registry lock.
	gen atomic.Uint64

	// semCache caches ClassSemantics answers (wire name -> *classSem),
	// stamped with the generation they were computed under. Lookups are
	// lock-free; entries are recomputed lazily after a registry mutation.
	semCache sync.Map
}

// classSem is one cached ClassSemantics answer.
type classSem struct {
	gen uint64
	sem Semantics
}

type entry struct {
	typ    reflect.Type // concrete struct type (not pointer)
	supers map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]entry),
		ifaces: make(map[string]reflect.Type),
	}
}

// TypeName returns the wire-level name of a Go type: its package path
// qualified name.
func TypeName(t reflect.Type) string {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.PkgPath() == "" {
		return t.Name()
	}
	return t.PkgPath() + "." + t.Name()
}

// TypeOf returns the reflect.Type described by the type parameter, which
// may be an interface type (unlike reflect.TypeOf on a value).
func TypeOf[T any]() reflect.Type {
	return reflect.TypeOf((*T)(nil)).Elem()
}

// Register records the concrete type of sample as an obvent class and
// returns its wire name. Registration is idempotent. The sample must be a
// struct or pointer to struct embedding Base.
func (r *Registry) Register(sample Obvent) (string, error) {
	t := reflect.TypeOf(sample)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return "", fmt.Errorf("obvent: register %s: obvent classes must be structs", t)
	}
	name := TypeName(t)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return name, nil
	}
	r.byName[name] = entry{typ: t, supers: r.computeSupersLocked(t)}
	// Registering a new class can extend the subtype closure of classes
	// that embed it, and vice versa; recompute everything. Registration
	// is rare (startup time), so O(n^2) here is irrelevant.
	r.recomputeLocked()
	r.gen.Add(1)
	return name, nil
}

// MustRegister is Register, panicking on error. Intended for package-level
// setup in examples and tests.
func (r *Registry) MustRegister(sample Obvent) string {
	name, err := r.Register(sample)
	if err != nil {
		panic(err)
	}
	return name
}

// RegisterInterface records an abstract obvent type (a Go interface that
// embeds Obvent) so that subscriptions to it can be matched by name on
// remote hosts. Use the TypeOf helper to obtain the reflect.Type:
//
//	reg.RegisterInterface(obvent.TypeOf[StockObvent]())
func (r *Registry) RegisterInterface(t reflect.Type) (string, error) {
	if t.Kind() != reflect.Interface {
		return "", fmt.Errorf("obvent: RegisterInterface: %s is not an interface", t)
	}
	if !t.Implements(TypeOf[Obvent]()) && t != TypeOf[Obvent]() {
		return "", fmt.Errorf("obvent: RegisterInterface: %s does not embed Obvent", t)
	}
	name := TypeName(t)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifaces[name] = t
	r.recomputeLocked()
	r.gen.Add(1)
	return name, nil
}

// Gen returns the registry's mutation generation: it changes whenever a
// class or abstract type is registered, so lock-free consumers can
// detect that previously computed conformance answers may be stale.
func (r *Registry) Gen() uint64 { return r.gen.Load() }

// recomputeLocked rebuilds the supertype closure of every registered class.
func (r *Registry) recomputeLocked() {
	for name, e := range r.byName {
		e.supers = r.computeSupersLocked(e.typ)
		r.byName[name] = e
	}
}

// computeSupersLocked returns the names of all registered supertypes of
// concrete struct type t: registered interfaces it implements and
// registered structs it embeds (transitively).
func (r *Registry) computeSupersLocked(t reflect.Type) map[string]bool {
	supers := make(map[string]bool)
	pt := reflect.PointerTo(t)
	for name, it := range r.ifaces {
		if t.Implements(it) || pt.Implements(it) {
			supers[name] = true
		}
	}
	var walkEmbedded func(st reflect.Type)
	walkEmbedded = func(st reflect.Type) {
		for i := 0; i < st.NumField(); i++ {
			f := st.Field(i)
			if !f.Anonymous {
				continue
			}
			ft := f.Type
			for ft.Kind() == reflect.Pointer {
				ft = ft.Elem()
			}
			if ft.Kind() != reflect.Struct {
				continue
			}
			if _, ok := r.byName[TypeName(ft)]; ok {
				supers[TypeName(ft)] = true
			}
			walkEmbedded(ft)
		}
	}
	walkEmbedded(t)
	return supers
}

// ClassSemantics returns the type-level Semantics of the registered
// class named name: the QoS resolution of a zero value of the class, so
// the value-dependent fields (Priority, TTL, Birth) are zero while the
// type-derived ones (Reliability, Ordering, Timely, Prioritary, Dropped)
// are exact. It is the cheap per-class lookup behind semantics-aware
// routing decisions (e.g. the engine's dispatch lanes): after the first
// call for a class the answer is a single lock-free map hit, invalidated
// by the registry generation counter. Unknown names report ok == false
// and are never cached (they may be registered later).
func (r *Registry) ClassSemantics(name string) (sem Semantics, ok bool) {
	gen := r.gen.Load()
	if v, hit := r.semCache.Load(name); hit {
		cs := v.(*classSem)
		if cs.gen == gen {
			return cs.sem, true
		}
	}
	t, known := r.TypeByName(name)
	if !known {
		return Semantics{}, false
	}
	zero, isObvent := reflect.New(t).Elem().Interface().(Obvent)
	if !isObvent {
		return Semantics{}, false
	}
	sem = Resolve(zero)
	r.semCache.Store(name, &classSem{gen: gen, sem: sem})
	return sem, true
}

// NameOf returns the wire name of o's dynamic type, registering it if
// needed.
func (r *Registry) NameOf(o Obvent) (string, error) {
	t := reflect.TypeOf(o)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	name := TypeName(t)
	r.mu.RLock()
	_, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		return name, nil
	}
	return r.Register(o)
}

// TypeByName returns the registered concrete type for a wire name.
func (r *Registry) TypeByName(name string) (reflect.Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	return e.typ, true
}

// Supertypes returns the sorted wire names of all registered supertypes of
// the class named name (not including the class itself).
func (r *Registry) Supertypes(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(e.supers))
	for s := range e.supers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Classes returns the sorted wire names of all registered concrete classes.
func (r *Registry) Classes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ConformsTo reports whether an instance of the concrete class named
// concrete conforms to the subscribed type named target: either the same
// class, a registered interface it implements, or a registered struct it
// embeds. This is the wire-level (name-based) matching used by remote
// hosts that may not host the Go types themselves.
func (r *Registry) ConformsTo(concrete, target string) bool {
	if concrete == target {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[concrete]
	if !ok {
		return false
	}
	return e.supers[target]
}

// Conforms reports whether obvent o conforms to the Go type target
// (interface or struct), using Go-level type checks. It is the local
// (typed) matching complement of ConformsTo.
func Conforms(o Obvent, target reflect.Type) bool {
	t := reflect.TypeOf(o)
	if target.Kind() == reflect.Interface {
		return t.Implements(target)
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	for target.Kind() == reflect.Pointer {
		target = target.Elem()
	}
	if t == target {
		return true
	}
	return embedsStruct(t, target)
}

// embedsStruct reports whether struct type t transitively embeds struct
// type target (the implicit-declaration subtype relation of paper §2.2).
func embedsStruct(t, target reflect.Type) bool {
	if t.Kind() != reflect.Struct {
		return false
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.Anonymous {
			continue
		}
		ft := f.Type
		for ft.Kind() == reflect.Pointer {
			ft = ft.Elem()
		}
		if ft == target || embedsStruct(ft, target) {
			return true
		}
	}
	return false
}
