package obvent

import (
	"testing"
	"time"
)

// Test obvent types mirroring the paper's Figure 1 hierarchy.

type stockObvent struct {
	Base
	Company string
	Price   float64
	Amount  int
}

type stockQuote struct {
	stockObvent
}

type stockRequest struct {
	stockObvent
}

type spotPrice struct {
	stockRequest
}

type marketPrice struct {
	stockRequest
}

// QoS-composed types.

type reliableQuote struct {
	Base
	ReliableBase
	Price float64
}

type certifiedTotalTrade struct {
	Base
	CertifiedBase
	TotalOrderBase
}

type causalChat struct {
	Base
	CausalOrderBase
	Text string
}

type fifoTick struct {
	Base
	FIFOOrderBase
	N int
}

type timelyTick struct {
	Base
	TimelyBase
	N int
}

type priorityAlarm struct {
	Base
	PriorityBase
}

// Contradictory compositions (Figure 4 precedence).

type reliableTimely struct {
	Base
	ReliableBase
	TimelyBase
}

type orderedPriority struct {
	Base
	TotalOrderBase
	PriorityBase
}

type certifiedTimelyPriority struct {
	Base
	CertifiedBase
	CausalOrderBase
	TimelyBase
	PriorityBase
}

func TestBaseSatisfiesObvent(t *testing.T) {
	var o Obvent = stockQuote{}
	if o == nil {
		t.Fatal("stockQuote should satisfy Obvent")
	}
}

func TestFig4SemanticsLattice(t *testing.T) {
	tests := []struct {
		name        string
		o           Obvent
		reliability Reliability
		ordering    Ordering
		timely      bool
		prioritary  bool
		dropped     []string
	}{
		{"default unreliable", stockQuote{}, Unreliable, NoOrder, false, false, nil},
		{"reliable", reliableQuote{}, ReliableDelivery, NoOrder, false, false, nil},
		{"certified+total", certifiedTotalTrade{}, CertifiedDelivery, Total, false, false, nil},
		{"causal implies reliable", causalChat{}, ReliableDelivery, Causal, false, false, nil},
		{"fifo implies reliable", fifoTick{}, ReliableDelivery, FIFO, false, false, nil},
		{"timely alone", timelyTick{TimelyBase: TimelyBase{TTL: time.Second}}, Unreliable, NoOrder, true, false, nil},
		{"priority alone", priorityAlarm{PriorityBase: PriorityBase{Prio: 7}}, Unreliable, NoOrder, false, true, nil},
		{"reliable beats timely", reliableTimely{}, ReliableDelivery, NoOrder, false, false, []string{"timely"}},
		{"order beats priority", orderedPriority{}, ReliableDelivery, Total, false, false, []string{"priority"}},
		{"certified+causal drops both", certifiedTimelyPriority{}, CertifiedDelivery, Causal, false, false, []string{"timely", "priority"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := Resolve(tt.o)
			if s.Reliability != tt.reliability {
				t.Errorf("reliability = %v, want %v", s.Reliability, tt.reliability)
			}
			if s.Ordering != tt.ordering {
				t.Errorf("ordering = %v, want %v", s.Ordering, tt.ordering)
			}
			if s.Timely != tt.timely {
				t.Errorf("timely = %v, want %v", s.Timely, tt.timely)
			}
			if s.Prioritary != tt.prioritary {
				t.Errorf("prioritary = %v, want %v", s.Prioritary, tt.prioritary)
			}
			if len(s.Dropped) != len(tt.dropped) {
				t.Fatalf("dropped = %v, want %v", s.Dropped, tt.dropped)
			}
			for i := range s.Dropped {
				if s.Dropped[i] != tt.dropped[i] {
					t.Errorf("dropped[%d] = %q, want %q", i, s.Dropped[i], tt.dropped[i])
				}
			}
		})
	}
}

func TestResolveIdempotentOverMarkers(t *testing.T) {
	// Resolving twice (semantics do not change the value) yields equal
	// results: Resolve is a pure function of the dynamic type + fields.
	o := certifiedTimelyPriority{}
	a := Resolve(o)
	b := Resolve(o)
	if a.String() != b.String() {
		t.Fatalf("Resolve not deterministic: %v vs %v", a, b)
	}
}

func TestStrongerThan(t *testing.T) {
	unrel := Resolve(stockQuote{})
	rel := Resolve(reliableQuote{})
	cert := Resolve(certifiedTotalTrade{})
	causal := Resolve(causalChat{})

	if !rel.StrongerThan(unrel) {
		t.Error("reliable should be stronger than unreliable")
	}
	if !cert.StrongerThan(rel) {
		t.Error("certified/total should be stronger than reliable")
	}
	if !cert.StrongerThan(causal) {
		t.Error("certified/total should be stronger than reliable/causal")
	}
	if rel.StrongerThan(rel) {
		t.Error("StrongerThan must be irreflexive")
	}
	if unrel.StrongerThan(rel) {
		t.Error("unreliable must not be stronger than reliable")
	}
}

func TestTimelyExpiry(t *testing.T) {
	now := time.Now()
	tb := TimelyBase{TTL: 100 * time.Millisecond, BirthTime: now}
	if tb.Expired(now.Add(50 * time.Millisecond)) {
		t.Error("should not be expired before TTL")
	}
	if !tb.Expired(now.Add(150 * time.Millisecond)) {
		t.Error("should be expired after TTL")
	}
	forever := TimelyBase{}
	if forever.Expired(now.Add(time.Hour)) {
		t.Error("zero TTL means never expires")
	}
}

func TestSemanticsString(t *testing.T) {
	s := Resolve(certifiedTotalTrade{})
	if got := s.String(); got != "certified/total" {
		t.Errorf("String() = %q, want certified/total", got)
	}
	s2 := Resolve(timelyTick{TimelyBase: TimelyBase{TTL: time.Second}})
	if got := s2.String(); got != "unreliable/none/timely(ttl=1s)" {
		t.Errorf("String() = %q", got)
	}
}
