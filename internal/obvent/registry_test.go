package obvent

import (
	"reflect"
	"testing"
)

// Abstract obvent types (explicit declaration, paper §2.2).

type priced interface {
	Obvent
	GetPrice() float64
}

func (s stockObvent) GetPrice() float64 { return s.Price }

func newHierarchyRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.MustRegister(stockObvent{})
	r.MustRegister(stockQuote{})
	r.MustRegister(stockRequest{})
	r.MustRegister(spotPrice{})
	r.MustRegister(marketPrice{})
	if _, err := r.RegisterInterface(TypeOf[priced]()); err != nil {
		t.Fatalf("RegisterInterface: %v", err)
	}
	return r
}

func TestRegisterAndLookup(t *testing.T) {
	r := newHierarchyRegistry(t)
	name, err := r.NameOf(stockQuote{})
	if err != nil {
		t.Fatalf("NameOf: %v", err)
	}
	typ, ok := r.TypeByName(name)
	if !ok {
		t.Fatalf("TypeByName(%q) not found", name)
	}
	if typ != reflect.TypeOf(stockQuote{}) {
		t.Errorf("TypeByName = %v", typ)
	}
}

func TestRegisterRejectsNonStruct(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(obventFunc(nil)); err == nil {
		t.Fatal("expected error registering non-struct obvent")
	}
}

// obventFunc is a non-struct Obvent used to exercise the error path.
type obventFunc func()

func (obventFunc) obventMarker() {}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.MustRegister(stockQuote{})
	b := r.MustRegister(stockQuote{})
	if a != b {
		t.Fatalf("names differ: %q vs %q", a, b)
	}
	if got := len(r.Classes()); got != 1 {
		t.Fatalf("Classes() len = %d, want 1", got)
	}
}

func TestFig1SubtypeClosure(t *testing.T) {
	r := newHierarchyRegistry(t)
	base := TypeName(reflect.TypeOf(stockObvent{}))
	req := TypeName(reflect.TypeOf(stockRequest{}))
	spot := TypeName(reflect.TypeOf(spotPrice{}))
	quote := TypeName(reflect.TypeOf(stockQuote{}))

	// Paper Figure 1: subscribing to StockObvent receives all instances
	// of StockQuote, StockRequest, SpotPrice and MarketPrice.
	for _, sub := range []string{quote, req, spot} {
		if !r.ConformsTo(sub, base) {
			t.Errorf("%s should conform to %s", sub, base)
		}
	}
	if !r.ConformsTo(spot, req) {
		t.Errorf("SpotPrice should conform to StockRequest")
	}
	if r.ConformsTo(base, spot) {
		t.Errorf("supertype must not conform to subtype")
	}
	if r.ConformsTo(quote, req) {
		t.Errorf("siblings must not conform")
	}
	// Reflexivity.
	if !r.ConformsTo(spot, spot) {
		t.Errorf("conformance must be reflexive")
	}
}

func TestInterfaceConformance(t *testing.T) {
	r := newHierarchyRegistry(t)
	quote := TypeName(reflect.TypeOf(stockQuote{}))
	pr := TypeName(TypeOf[priced]())
	if !r.ConformsTo(quote, pr) {
		t.Errorf("stockQuote should conform to priced interface")
	}
}

func TestLateInterfaceRegistrationExtendsClosure(t *testing.T) {
	r := NewRegistry()
	quote := r.MustRegister(stockQuote{})
	pr := TypeName(TypeOf[priced]())
	if r.ConformsTo(quote, pr) {
		t.Fatal("priced not yet registered; should not conform")
	}
	if _, err := r.RegisterInterface(TypeOf[priced]()); err != nil {
		t.Fatalf("RegisterInterface: %v", err)
	}
	if !r.ConformsTo(quote, pr) {
		t.Error("registering the interface later must extend existing classes' closures")
	}
}

func TestLateClassRegistrationExtendsClosure(t *testing.T) {
	r := NewRegistry()
	spot := r.MustRegister(spotPrice{})
	base := TypeName(reflect.TypeOf(stockObvent{}))
	if r.ConformsTo(spot, base) {
		t.Fatal("stockObvent not yet registered; should not conform")
	}
	r.MustRegister(stockObvent{})
	if !r.ConformsTo(spot, base) {
		t.Error("registering the embedded class later must extend the closure")
	}
}

func TestSupertypes(t *testing.T) {
	r := newHierarchyRegistry(t)
	spot := TypeName(reflect.TypeOf(spotPrice{}))
	supers := r.Supertypes(spot)
	want := map[string]bool{
		TypeName(reflect.TypeOf(stockObvent{})):  true,
		TypeName(reflect.TypeOf(stockRequest{})): true,
		TypeName(TypeOf[priced]()):               true,
	}
	if len(supers) != len(want) {
		t.Fatalf("Supertypes = %v, want %d entries", supers, len(want))
	}
	for _, s := range supers {
		if !want[s] {
			t.Errorf("unexpected supertype %q", s)
		}
	}
}

func TestConformsGoLevel(t *testing.T) {
	tests := []struct {
		name   string
		o      Obvent
		target reflect.Type
		want   bool
	}{
		{"same struct", stockQuote{}, reflect.TypeOf(stockQuote{}), true},
		{"embedded struct", spotPrice{}, reflect.TypeOf(stockObvent{}), true},
		{"pointer obvent embedded", &spotPrice{}, reflect.TypeOf(stockRequest{}), true},
		{"interface", stockQuote{}, TypeOf[priced](), true},
		{"obvent root", stockQuote{}, TypeOf[Obvent](), true},
		{"sibling", stockQuote{}, reflect.TypeOf(stockRequest{}), false},
		{"reverse", stockObvent{}, reflect.TypeOf(spotPrice{}), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Conforms(tt.o, tt.target); got != tt.want {
				t.Errorf("Conforms = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRegisterInterfaceRejectsNonObvent(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterInterface(TypeOf[interface{ Foo() }]()); err == nil {
		t.Fatal("expected error for interface not embedding Obvent")
	}
	if _, err := r.RegisterInterface(reflect.TypeOf(stockQuote{})); err == nil {
		t.Fatal("expected error for non-interface type")
	}
}

func TestTypeNameFormats(t *testing.T) {
	if got := TypeName(reflect.TypeOf(stockQuote{})); got != "govents/internal/obvent.stockQuote" {
		t.Errorf("TypeName = %q", got)
	}
	if got := TypeName(reflect.TypeOf(&stockQuote{})); got != "govents/internal/obvent.stockQuote" {
		t.Errorf("TypeName(ptr) = %q", got)
	}
}

// QoS-composed fixtures for ClassSemantics.

type totalQuote struct {
	Base
	TotalOrderBase
	stockObvent
}

type prioQuote struct {
	Base
	PriorityBase
	stockObvent
}

func TestClassSemantics(t *testing.T) {
	r := newHierarchyRegistry(t)
	plain := r.MustRegister(stockQuote{})
	total := r.MustRegister(totalQuote{})
	prio := r.MustRegister(prioQuote{})

	if sem, ok := r.ClassSemantics(plain); !ok || sem.Ordering != NoOrder || sem.Prioritary {
		t.Errorf("plain class semantics = %v ok=%v, want unordered/non-prioritary", sem, ok)
	}
	if sem, ok := r.ClassSemantics(total); !ok || sem.Ordering != Total || sem.Reliability != ReliableDelivery {
		t.Errorf("total class semantics = %v ok=%v, want total/reliable", sem, ok)
	}
	if sem, ok := r.ClassSemantics(prio); !ok || !sem.Prioritary {
		t.Errorf("prioritary class semantics = %v ok=%v, want prioritary", sem, ok)
	}
	if _, ok := r.ClassSemantics("no.such.Class"); ok {
		t.Error("unknown class reported semantics")
	}

	// Cached answers stay correct across a registry mutation (the cache
	// keys on the generation counter), and a class unknown at first
	// lookup is found once registered — unknowns must not be cached.
	before := r.Gen()
	if _, err := r.RegisterInterface(TypeOf[Obvent]()); err != nil {
		t.Fatal(err)
	}
	if r.Gen() == before {
		t.Fatal("RegisterInterface did not bump the generation")
	}
	if sem, ok := r.ClassSemantics(total); !ok || sem.Ordering != Total {
		t.Errorf("post-mutation semantics = %v ok=%v, want total", sem, ok)
	}
	type lateQuote struct {
		Base
		FIFOOrderBase
		stockObvent
	}
	lateName := TypeName(reflect.TypeOf(lateQuote{}))
	if _, ok := r.ClassSemantics(lateName); ok {
		t.Fatal("unregistered class reported semantics")
	}
	r.MustRegister(lateQuote{})
	if sem, ok := r.ClassSemantics(lateName); !ok || sem.Ordering != FIFO {
		t.Errorf("late-registered semantics = %v ok=%v, want fifo", sem, ok)
	}
}

func TestClassSemanticsZeroAllocWhenCached(t *testing.T) {
	r := newHierarchyRegistry(t)
	total := r.MustRegister(totalQuote{})
	r.ClassSemantics(total) // warm
	allocs := testing.AllocsPerRun(1000, func() {
		if sem, ok := r.ClassSemantics(total); !ok || sem.Ordering != Total {
			t.Fatal("cached lookup failed")
		}
	})
	if allocs != 0 {
		t.Errorf("cached ClassSemantics allocates %.1f per call, want 0", allocs)
	}
}
