// Package obvent implements the event-object ("obvent") model of
// type-based publish/subscribe, following Eugster, Guerraoui and Damm,
// "Linguistic Support for Large-Scale Distributed Programming" (ICDCS 2004).
//
// Obvents are first-class, application-defined, serializable objects
// (paper LP2, LP3). An application type becomes an obvent by embedding
// Base, which plays the role of subtyping java.pubsub.Obvent in the
// paper's Figure 3:
//
//	type StockQuote struct {
//		obvent.Base
//		Company string
//		Price   float64
//		Amount  int
//	}
//
// Quality-of-service semantics are expressed through *multiple subtyping*
// (paper LM2, Figure 3): embedding the corresponding QoS base composes the
// semantics onto the type. Go's struct embedding provides the multiple
// specialization relationships the paper requires; contradictions between
// combined semantics are resolved by Resolve according to the precedence
// lattice of the paper's Figure 4.
//
//	type Trade struct {
//		obvent.Base
//		obvent.CertifiedBase  // delivery: certified
//		obvent.TotalOrderBase // ordering: total
//		...
//	}
//
// Unlike the paper's Java rendering, the QoS marker interfaces here are
// mutually independent at the method level (CertifiedBase does not embed
// ReliableBase): Go promotes methods through embedding, and two embedded
// bases sharing a method would make the selector ambiguous and silently
// strip the composed type of its markers. The paper's subtype implications
// (Certified => Reliable, CausalOrder => FIFOOrder, any order => Reliable)
// are instead enforced by Resolve, which is the single source of truth for
// the Figure 4 lattice.
package obvent

import "time"

// Obvent is the root type of all event objects (paper Figure 3,
// java.pubsub.Obvent). Application types satisfy it by embedding Base.
//
// The unexported marker method forces the embedding, mirroring the paper's
// requirement that obvents subtype a designated serializable root rather
// than being arbitrary objects (paper §5.3: "not every object can be an
// obvent").
type Obvent interface {
	obventMarker()
}

// Base is embedded by application structs to declare them obvents.
// The zero value is ready to use.
type Base struct{}

func (Base) obventMarker() {}

// Reliable marks obvents with reliable delivery: once successfully
// published, a reliable obvent is received by any notifiable that stays up
// long enough (paper §3.1.2).
type Reliable interface {
	Obvent
	reliableMarker()
}

// ReliableBase is embedded (together with Base) to mark a type Reliable.
type ReliableBase struct{}

func (ReliableBase) reliableMarker() {}

// Certified marks obvents that survive subscriber disconnection: even if a
// notifiable temporarily disconnects or fails, it eventually delivers the
// obvent (paper §3.1.2). Certified implies Reliable (enforced by Resolve).
type Certified interface {
	Obvent
	certifiedMarker()
}

// CertifiedBase is embedded to mark a type Certified.
type CertifiedBase struct{}

func (CertifiedBase) certifiedMarker() {}

// TotalOrder marks obvents delivered in the same (subscriber-side) order by
// all notifiables (paper §3.1.2). Implies Reliable.
type TotalOrder interface {
	Obvent
	totalOrderMarker()
}

// TotalOrderBase is embedded to mark a type TotalOrder.
type TotalOrderBase struct{}

func (TotalOrderBase) totalOrderMarker() {}

// FIFOOrder marks obvents delivered in publisher-side order: two obvents
// published through the same publisher are delivered in publication order
// to every matching subscriber (paper §3.1.2). Implies Reliable.
type FIFOOrder interface {
	Obvent
	fifoOrderMarker()
}

// FIFOOrderBase is embedded to mark a type FIFOOrder.
type FIFOOrderBase struct{}

func (FIFOOrderBase) fifoOrderMarker() {}

// CausalOrder marks obvents delivered in an order consistent with the
// happens-before relationship of their publications (paper §3.1.2,
// [Lam78]). Implies FIFOOrder and Reliable.
type CausalOrder interface {
	Obvent
	causalOrderMarker()
}

// CausalOrderBase is embedded to mark a type CausalOrder.
type CausalOrderBase struct{}

func (CausalOrderBase) causalOrderMarker() {}

// Timely obvents may be delayed to prioritize more recent obvents, and
// expire once their time-to-live has elapsed (paper §3.1.2, Figure 3).
// Unlike the pure marker interfaces, Timely carries state and therefore
// declares accessor methods exactly as the paper's interface does.
type Timely interface {
	Obvent
	// TimeToLive returns how long after Birth the obvent stays valid.
	TimeToLive() time.Duration
	// Birth returns the publication instant of the obvent.
	Birth() time.Time
}

// TimelyBase is embedded to mark a type Timely. The publishing engine
// stamps BirthTime at publication when it is left zero.
type TimelyBase struct {
	TTL       time.Duration
	BirthTime time.Time
}

// TimeToLive implements Timely.
func (t TimelyBase) TimeToLive() time.Duration { return t.TTL }

// Birth implements Timely.
func (t TimelyBase) Birth() time.Time { return t.BirthTime }

// Expired reports whether the obvent is obsolete at instant now.
// A zero TTL means the obvent never expires.
func (t TimelyBase) Expired(now time.Time) bool {
	if t.TTL == 0 || t.BirthTime.IsZero() {
		return false
	}
	return now.After(t.BirthTime.Add(t.TTL))
}

// Prioritary obvents carry a priority: delivery of lower-priority obvents
// can be delayed to defer to higher priorities (paper §3.1.2, Figure 3).
type Prioritary interface {
	Obvent
	// Priority returns the obvent priority; higher values are more urgent.
	Priority() int
}

// PriorityBase is embedded to mark a type Prioritary.
type PriorityBase struct {
	Prio int
}

// Priority implements Prioritary.
func (p PriorityBase) Priority() int { return p.Prio }

// Compile-time checks that the bases satisfy their interfaces when
// composed with Base.
var (
	_ Obvent      = compositeCheck{}
	_ Reliable    = compositeCheck{}
	_ Certified   = compositeCheck{}
	_ TotalOrder  = compositeCheck{}
	_ FIFOOrder   = compositeCheck{}
	_ CausalOrder = compositeCheck{}
	_ Timely      = compositeCheck{}
	_ Prioritary  = compositeCheck{}
)

// compositeCheck composes every base; it exists only for the compile-time
// interface checks above, proving that full composition is unambiguous.
type compositeCheck struct {
	Base
	ReliableBase
	CertifiedBase
	TotalOrderBase
	FIFOOrderBase
	CausalOrderBase
	TimelyBase
	PriorityBase
}
