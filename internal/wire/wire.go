// Package wire implements the compact binary obvent encoding: per-class
// encoder/decoder programs compiled once, at first sight of a class, by
// walking its struct type the same way the codec's deep-copier compiler
// does (internal/codec/copier.go). Gob — the paper's "default
// serialization mechanism" stand-in — self-describes every payload: each
// encode re-transmits the type structure and each decode re-interprets
// it, costing ~190 allocations per event for a three-field struct. But
// an obvent class's layout never changes once registered, so everything
// structural about its encoding is a function of the type alone and can
// be decided at compile time; the payload then carries values only.
//
// # Format
//
// All values encode in field order with no tags, names, or type
// information (both sides compile the same program from the same type):
//
//   - bool: one byte, 0 or 1.
//   - signed integers (including named types like time.Duration):
//     zigzag-encoded unsigned varint.
//   - unsigned integers: unsigned varint.
//   - float32 / float64: IEEE 754 bits, little-endian, 4 / 8 bytes.
//   - complex64 / complex128: real then imaginary parts as floats.
//   - string: unsigned varint byte length, then the bytes.
//   - slice, map: unsigned varint 0 for nil, else element count + 1,
//     then the elements (key then value for maps). Nil-ness is
//     preserved exactly — unlike gob, a round trip is the identity.
//   - pointer: one presence byte (0 nil, 1 present), then the pointee.
//   - array: the elements, nothing else (length is part of the type).
//   - struct: the exported fields in declaration order. Unexported
//     fields do not travel (gob's rule; they are always zero in a
//     decoded value).
//
// # Compilation and rejection
//
// Compile is conservative, mirroring the copier compiler's rejection
// rules: a class containing interface, chan, func, unsafe.Pointer or
// uintptr fields, any custom gob/binary/text marshaler anywhere in its
// layout (the marshaler exists precisely because the layout is not the
// whole state), map keys that are not flat, or recursive pointer types
// is rejected at compile time and keeps gob as its payload encoding.
// The codec negotiates the fallback per destination (package dace), so
// a mixed fleet is never misread: rejection costs performance, never
// correctness.
//
// Decoding is defensive: every length and count read off the wire is
// validated against the remaining input before allocation, and a
// payload with trailing garbage is an error, so a corrupt or hostile
// payload cannot allocate unbounded memory or silently truncate.
package wire

import (
	"encoding"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// encFn appends v's encoding to dst.
type encFn func(dst []byte, v reflect.Value) []byte

// decFn decodes into v (settable) from data at pos, returning the next
// position.
type decFn func(data []byte, pos int, v reflect.Value) (int, error)

// skipFn advances past one encoded value without materializing it.
type skipFn func(data []byte, pos int) (int, error)

// Prog is one class's compiled codec program pair. Programs are
// immutable and safe for concurrent use.
type Prog struct {
	t      reflect.Type
	enc    encFn
	dec    decFn
	native *NativeCodec
}

// Type returns the class type the program encodes.
func (p *Prog) Type() reflect.Type { return p.t }

// Append appends the encoding of v (which must have the program's type)
// to dst and returns the extended buffer.
func (p *Prog) Append(dst []byte, v reflect.Value) []byte {
	return p.enc(dst, v)
}

// Decode decodes data into v, a settable zero value of the program's
// type. The whole input must be consumed: trailing bytes are an error
// (a truncated or mis-framed payload must not decode "successfully").
func (p *Prog) Decode(data []byte, v reflect.Value) error {
	pos, err := p.dec(data, 0, v)
	if err != nil {
		return err
	}
	if pos != len(data) {
		return fmt.Errorf("wire: %s: %d trailing bytes", p.t, len(data)-pos)
	}
	return nil
}

// Native returns the registered hand- or generator-written typed codec
// for the program's class, nil when none. Native codecs produce and
// consume exactly the bytes the compiled program does; they exist to
// skip even the compiled program's reflection (package psc emits them
// per generated class).
func (p *Prog) Native() *NativeCodec {
	return p.native
}

// NativeCodec is a typed, reflection-free implementation of one class's
// wire format, registered via RegisterNative (psc-generated code routes
// through the public govents.RegisterWireCodec hook).
type NativeCodec struct {
	// Enc appends the encoding of o — a value (or pointer to a value) of
	// the registered class — to dst.
	Enc func(dst []byte, o any) []byte
	// Dec decodes one value of the class from data, consuming all of it.
	Dec func(data []byte) (any, error)
}

// natives is the process-wide typed-codec registry: reflect.Type ->
// *NativeCodec. Registration happens in init functions of generated
// packages, before any codec compiles programs.
var natives sync.Map

// RegisterNative installs a typed codec for class type t. The codec
// must produce byte-for-byte the compiled program's encoding (the psc
// generator's tests enforce this); it is consulted only for classes
// whose layout Compile accepts, so the format is always well defined
// even if a registration is wrong about its own class.
func RegisterNative(t reflect.Type, nc *NativeCodec) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	natives.Store(t, nc)
}

// Compile builds the codec program for class type t, or returns an
// error describing why the class must keep the gob fallback. Callers
// cache the outcome per type (a layout never changes).
func Compile(t reflect.Type) (*Prog, error) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	b := &builder{building: make(map[reflect.Type]bool)}
	enc, dec, _, err := b.build(t)
	if err != nil {
		return nil, err
	}
	p := &Prog{t: t, enc: enc, dec: dec}
	if v, ok := natives.Load(t); ok {
		p.native = v.(*NativeCodec)
	}
	return p, nil
}

// customMarshalIfaces are the interfaces that opt a type out of
// field-wise encoding under gob (and therefore out of the wire format:
// the custom marshaler exists because the exported layout is not the
// whole state).
var customMarshalIfaces = []reflect.Type{
	reflect.TypeOf((*gob.GobEncoder)(nil)).Elem(),
	reflect.TypeOf((*gob.GobDecoder)(nil)).Elem(),
	reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem(),
	reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem(),
	reflect.TypeOf((*encoding.TextMarshaler)(nil)).Elem(),
	reflect.TypeOf((*encoding.TextUnmarshaler)(nil)).Elem(),
}

// hasCustomMarshal reports whether t (or its pointer type) implements a
// custom marshaling interface.
func hasCustomMarshal(t reflect.Type) bool {
	pt := reflect.PointerTo(t)
	for _, it := range customMarshalIfaces {
		if t.Implements(it) || pt.Implements(it) {
			return true
		}
	}
	return false
}

// builder compiles one class, tracking in-progress types to detect
// recursion.
type builder struct {
	building map[reflect.Type]bool
}

// build compiles the encoder, decoder and skipper for t.
func (b *builder) build(t reflect.Type) (encFn, decFn, skipFn, error) {
	if hasCustomMarshal(t) {
		return nil, nil, nil, fmt.Errorf("wire: %s has a custom marshaler", t)
	}
	if b.building[t] {
		// Recursive pointer type: a compiled program would chase any
		// depth with no cycle check. Rejected once, at compile time,
		// like the copier compiler.
		return nil, nil, nil, fmt.Errorf("wire: %s is recursive", t)
	}
	b.building[t] = true
	enc, dec, skip, err := b.buildKind(t)
	delete(b.building, t)
	return enc, dec, skip, err
}

func (b *builder) buildKind(t reflect.Type) (encFn, decFn, skipFn, error) {
	switch t.Kind() {
	case reflect.Bool:
		return encBool, decBool, skipFixed(1), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return encInt, b.decInt(t), skipUvarint, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return encUint, b.decUint(t), skipUvarint, nil
	case reflect.Float32:
		return encFloat32, decFloat32, skipFixed(4), nil
	case reflect.Float64:
		return encFloat64, decFloat64, skipFixed(8), nil
	case reflect.Complex64:
		return encComplex64, decComplex64, skipFixed(8), nil
	case reflect.Complex128:
		return encComplex128, decComplex128, skipFixed(16), nil
	case reflect.String:
		return encString, decString, skipString, nil
	case reflect.Struct:
		return b.buildStruct(t)
	case reflect.Pointer:
		return b.buildPointer(t)
	case reflect.Slice:
		return b.buildSlice(t)
	case reflect.Array:
		return b.buildArray(t)
	case reflect.Map:
		return b.buildMap(t)
	default:
		// Interface (dynamic type unknown statically), chan, func,
		// unsafe.Pointer, uintptr: no value-only encoding exists.
		return nil, nil, nil, fmt.Errorf("wire: unsupported kind %s (%s)", t.Kind(), t)
	}
}

// minSize returns a static lower bound on the encoded size of a value
// of t, used to validate wire counts before allocating. Zero only for
// types that can legitimately encode to nothing (structs with no
// exported fields, empty arrays).
func minSize(t reflect.Type) int {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.String, reflect.Slice, reflect.Map, reflect.Pointer:
		return 1
	case reflect.Float32:
		return 4
	case reflect.Float64:
		return 8
	case reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.Struct:
		n := 0
		for i := 0; i < t.NumField(); i++ {
			if f := t.Field(i); f.IsExported() {
				n += minSize(f.Type)
			}
		}
		return n
	case reflect.Array:
		return t.Len() * minSize(t.Elem())
	default:
		return 0
	}
}

// maxZeroSizeCount caps wire element counts for types whose encoding
// can be empty: with no per-element bytes to bound the count, a corrupt
// count could otherwise demand an arbitrary allocation.
const maxZeroSizeCount = 1 << 16

// checkCount validates an element count against the remaining input.
func checkCount(n uint64, elemMin, remaining int) error {
	if elemMin > 0 {
		if n > uint64(remaining/elemMin) {
			return fmt.Errorf("wire: count %d exceeds remaining input", n)
		}
		return nil
	}
	if n > maxZeroSizeCount {
		return fmt.Errorf("wire: count %d exceeds zero-size element cap", n)
	}
	return nil
}

// --- primitive codecs ---

func encBool(dst []byte, v reflect.Value) []byte {
	if v.Bool() {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decBool(data []byte, pos int, v reflect.Value) (int, error) {
	if pos >= len(data) {
		return 0, errShort
	}
	switch data[pos] {
	case 0:
		v.SetBool(false)
	case 1:
		v.SetBool(true)
	default:
		return 0, fmt.Errorf("wire: invalid bool byte %d", data[pos])
	}
	return pos + 1, nil
}

// zigzag maps signed to unsigned so small magnitudes stay short.
func zigzag(i int64) uint64 { return uint64(i<<1) ^ uint64(i>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func encInt(dst []byte, v reflect.Value) []byte {
	return binary.AppendUvarint(dst, zigzag(v.Int()))
}

func (b *builder) decInt(t reflect.Type) decFn {
	bits := t.Bits()
	return func(data []byte, pos int, v reflect.Value) (int, error) {
		u, pos, err := readUvarint(data, pos)
		if err != nil {
			return 0, err
		}
		i := unzigzag(u)
		if bits < 64 && (i>>(bits-1) != 0 && i>>(bits-1) != -1) {
			return 0, fmt.Errorf("wire: value %d overflows %s", i, t)
		}
		v.SetInt(i)
		return pos, nil
	}
}

func encUint(dst []byte, v reflect.Value) []byte {
	return binary.AppendUvarint(dst, v.Uint())
}

func (b *builder) decUint(t reflect.Type) decFn {
	bits := t.Bits()
	return func(data []byte, pos int, v reflect.Value) (int, error) {
		u, pos, err := readUvarint(data, pos)
		if err != nil {
			return 0, err
		}
		if bits < 64 && u>>bits != 0 {
			return 0, fmt.Errorf("wire: value %d overflows %s", u, t)
		}
		v.SetUint(u)
		return pos, nil
	}
}

func encFloat32(dst []byte, v reflect.Value) []byte {
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v.Float())))
}

func decFloat32(data []byte, pos int, v reflect.Value) (int, error) {
	if pos+4 > len(data) {
		return 0, errShort
	}
	v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(data[pos:]))))
	return pos + 4, nil
}

func encFloat64(dst []byte, v reflect.Value) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
}

func decFloat64(data []byte, pos int, v reflect.Value) (int, error) {
	if pos+8 > len(data) {
		return 0, errShort
	}
	v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])))
	return pos + 8, nil
}

func encComplex64(dst []byte, v reflect.Value) []byte {
	c := v.Complex()
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(real(c))))
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(imag(c))))
}

func decComplex64(data []byte, pos int, v reflect.Value) (int, error) {
	if pos+8 > len(data) {
		return 0, errShort
	}
	re := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[pos:])))
	im := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4:])))
	v.SetComplex(complex(re, im))
	return pos + 8, nil
}

func encComplex128(dst []byte, v reflect.Value) []byte {
	c := v.Complex()
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(c)))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(c)))
}

func decComplex128(data []byte, pos int, v reflect.Value) (int, error) {
	if pos+16 > len(data) {
		return 0, errShort
	}
	re := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
	im := math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8:]))
	v.SetComplex(complex(re, im))
	return pos + 16, nil
}

func encString(dst []byte, v reflect.Value) []byte {
	s := v.String()
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decString(data []byte, pos int, v reflect.Value) (int, error) {
	n, pos, err := readUvarint(data, pos)
	if err != nil {
		return 0, err
	}
	if n > uint64(len(data)-pos) {
		return 0, fmt.Errorf("wire: string length %d exceeds remaining input", n)
	}
	v.SetString(string(data[pos : pos+int(n)]))
	return pos + int(n), nil
}

// --- composite codecs ---

func (b *builder) buildStruct(t reflect.Type) (encFn, decFn, skipFn, error) {
	type fieldProg struct {
		idx  int
		enc  encFn
		dec  decFn
		skip skipFn
	}
	var fields []fieldProg
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		enc, dec, skip, err := b.build(f.Type)
		if err != nil {
			return nil, nil, nil, err
		}
		fields = append(fields, fieldProg{idx: i, enc: enc, dec: dec, skip: skip})
	}
	enc := func(dst []byte, v reflect.Value) []byte {
		for i := range fields {
			f := &fields[i]
			dst = f.enc(dst, v.Field(f.idx))
		}
		return dst
	}
	dec := func(data []byte, pos int, v reflect.Value) (int, error) {
		var err error
		for i := range fields {
			f := &fields[i]
			if pos, err = f.dec(data, pos, v.Field(f.idx)); err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	skip := func(data []byte, pos int) (int, error) {
		var err error
		for i := range fields {
			if pos, err = fields[i].skip(data, pos); err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	return enc, dec, skip, nil
}

func (b *builder) buildPointer(t reflect.Type) (encFn, decFn, skipFn, error) {
	elemEnc, elemDec, elemSkip, err := b.build(t.Elem())
	if err != nil {
		return nil, nil, nil, err
	}
	et := t.Elem()
	enc := func(dst []byte, v reflect.Value) []byte {
		if v.IsNil() {
			return append(dst, 0)
		}
		return elemEnc(append(dst, 1), v.Elem())
	}
	dec := func(data []byte, pos int, v reflect.Value) (int, error) {
		if pos >= len(data) {
			return 0, errShort
		}
		switch data[pos] {
		case 0:
			v.SetZero()
			return pos + 1, nil
		case 1:
			n := reflect.New(et)
			pos, err := elemDec(data, pos+1, n.Elem())
			if err != nil {
				return 0, err
			}
			v.Set(n)
			return pos, nil
		default:
			return 0, fmt.Errorf("wire: invalid presence byte %d", data[pos])
		}
	}
	skip := func(data []byte, pos int) (int, error) {
		if pos >= len(data) {
			return 0, errShort
		}
		if data[pos] == 0 {
			return pos + 1, nil
		}
		return elemSkip(data, pos+1)
	}
	return enc, dec, skip, nil
}

func (b *builder) buildSlice(t reflect.Type) (encFn, decFn, skipFn, error) {
	et := t.Elem()
	// []byte (and any byte-kind slice): bulk copy.
	if et.Kind() == reflect.Uint8 {
		enc := func(dst []byte, v reflect.Value) []byte {
			if v.IsNil() {
				return binary.AppendUvarint(dst, 0)
			}
			dst = binary.AppendUvarint(dst, uint64(v.Len())+1)
			return append(dst, v.Bytes()...)
		}
		dec := func(data []byte, pos int, v reflect.Value) (int, error) {
			n, pos, err := readUvarint(data, pos)
			if err != nil {
				return 0, err
			}
			if n == 0 {
				v.SetZero()
				return pos, nil
			}
			n--
			if n > uint64(len(data)-pos) {
				return 0, fmt.Errorf("wire: byte-slice length %d exceeds remaining input", n)
			}
			s := reflect.MakeSlice(t, int(n), int(n))
			reflect.Copy(s, reflect.ValueOf(data[pos:pos+int(n)]))
			v.Set(s)
			return pos + int(n), nil
		}
		skip := func(data []byte, pos int) (int, error) {
			n, pos, err := readUvarint(data, pos)
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return pos, nil
			}
			n--
			if n > uint64(len(data)-pos) {
				return 0, fmt.Errorf("wire: byte-slice length %d exceeds remaining input", n)
			}
			return pos + int(n), nil
		}
		return enc, dec, skip, nil
	}

	elemEnc, elemDec, elemSkip, err := b.build(et)
	if err != nil {
		return nil, nil, nil, err
	}
	elemMin := minSize(et)
	enc := func(dst []byte, v reflect.Value) []byte {
		if v.IsNil() {
			return binary.AppendUvarint(dst, 0)
		}
		l := v.Len()
		dst = binary.AppendUvarint(dst, uint64(l)+1)
		for i := 0; i < l; i++ {
			dst = elemEnc(dst, v.Index(i))
		}
		return dst
	}
	dec := func(data []byte, pos int, v reflect.Value) (int, error) {
		n, pos, err := readUvarint(data, pos)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			v.SetZero()
			return pos, nil
		}
		n--
		if err := checkCount(n, elemMin, len(data)-pos); err != nil {
			return 0, err
		}
		s := reflect.MakeSlice(t, int(n), int(n))
		for i := 0; i < int(n); i++ {
			if pos, err = elemDec(data, pos, s.Index(i)); err != nil {
				return 0, err
			}
		}
		v.Set(s)
		return pos, nil
	}
	skip := func(data []byte, pos int) (int, error) {
		n, pos, err := readUvarint(data, pos)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return pos, nil
		}
		n--
		if err := checkCount(n, elemMin, len(data)-pos); err != nil {
			return 0, err
		}
		for i := 0; i < int(n); i++ {
			if pos, err = elemSkip(data, pos); err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	return enc, dec, skip, nil
}

func (b *builder) buildArray(t reflect.Type) (encFn, decFn, skipFn, error) {
	elemEnc, elemDec, elemSkip, err := b.build(t.Elem())
	if err != nil {
		return nil, nil, nil, err
	}
	l := t.Len()
	enc := func(dst []byte, v reflect.Value) []byte {
		for i := 0; i < l; i++ {
			dst = elemEnc(dst, v.Index(i))
		}
		return dst
	}
	dec := func(data []byte, pos int, v reflect.Value) (int, error) {
		var err error
		for i := 0; i < l; i++ {
			if pos, err = elemDec(data, pos, v.Index(i)); err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	skip := func(data []byte, pos int) (int, error) {
		var err error
		for i := 0; i < l; i++ {
			if pos, err = elemSkip(data, pos); err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	return enc, dec, skip, nil
}

// isFlatKeyable mirrors the copier's flat-key rule: map keys must not
// contain reference kinds (fresh deep-copied keys would break lookup
// identity there; here the rule is kept for parity, so every wire-coded
// class also clones through the flat or compiled-copier fastpath).
func isFlatKeyable(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return true
	case reflect.Array:
		return isFlatKeyable(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isFlatKeyable(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (b *builder) buildMap(t reflect.Type) (encFn, decFn, skipFn, error) {
	if !isFlatKeyable(t.Key()) {
		return nil, nil, nil, fmt.Errorf("wire: map key %s contains reference kinds", t.Key())
	}
	keyEnc, keyDec, keySkip, err := b.build(t.Key())
	if err != nil {
		return nil, nil, nil, err
	}
	valEnc, valDec, valSkip, err := b.build(t.Elem())
	if err != nil {
		return nil, nil, nil, err
	}
	kt, vt := t.Key(), t.Elem()
	entryMin := minSize(kt) + minSize(vt)
	enc := func(dst []byte, v reflect.Value) []byte {
		if v.IsNil() {
			return binary.AppendUvarint(dst, 0)
		}
		dst = binary.AppendUvarint(dst, uint64(v.Len())+1)
		iter := v.MapRange()
		for iter.Next() {
			dst = keyEnc(dst, iter.Key())
			dst = valEnc(dst, iter.Value())
		}
		return dst
	}
	dec := func(data []byte, pos int, v reflect.Value) (int, error) {
		n, pos, err := readUvarint(data, pos)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			v.SetZero()
			return pos, nil
		}
		n--
		if err := checkCount(n, entryMin, len(data)-pos); err != nil {
			return 0, err
		}
		m := reflect.MakeMapWithSize(t, int(n))
		kv := reflect.New(kt).Elem()
		vv := reflect.New(vt).Elem()
		for i := 0; i < int(n); i++ {
			kv.SetZero()
			vv.SetZero()
			if pos, err = keyDec(data, pos, kv); err != nil {
				return 0, err
			}
			if pos, err = valDec(data, pos, vv); err != nil {
				return 0, err
			}
			m.SetMapIndex(kv, vv)
		}
		v.Set(m)
		return pos, nil
	}
	skip := func(data []byte, pos int) (int, error) {
		n, pos, err := readUvarint(data, pos)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return pos, nil
		}
		n--
		if err := checkCount(n, entryMin, len(data)-pos); err != nil {
			return 0, err
		}
		for i := 0; i < int(n); i++ {
			if pos, err = keySkip(data, pos); err != nil {
				return 0, err
			}
			if pos, err = valSkip(data, pos); err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	return enc, dec, skip, nil
}

// --- low-level readers ---

var errShort = fmt.Errorf("wire: unexpected end of input")

// readUvarint reads one unsigned varint, rejecting malformed or
// oversized encodings.
func readUvarint(data []byte, pos int) (uint64, int, error) {
	u, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, 0, errShort
	}
	return u, pos + n, nil
}

// skipFixed skips n bytes.
func skipFixed(n int) skipFn {
	return func(data []byte, pos int) (int, error) {
		if pos+n > len(data) {
			return 0, errShort
		}
		return pos + n, nil
	}
}

// skipUvarint skips one varint of either signedness.
func skipUvarint(data []byte, pos int) (int, error) {
	_, pos, err := readUvarint(data, pos)
	return pos, err
}

// skipString skips one length-prefixed string.
func skipString(data []byte, pos int) (int, error) {
	n, pos, err := readUvarint(data, pos)
	if err != nil {
		return 0, err
	}
	if n > uint64(len(data)-pos) {
		return 0, fmt.Errorf("wire: string length %d exceeds remaining input", n)
	}
	return pos + int(n), nil
}
