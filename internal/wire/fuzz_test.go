package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"govents/internal/filter"
)

// fuzzEvent exercises every encoding family the compiler emits: varint
// signed/unsigned at several widths, floats, strings, bulk []byte,
// general slices, maps, pointers, nested structs and arrays.
type fuzzEvent struct {
	B   bool
	I   int64
	I8  int8
	I32 int32
	U   uint64
	U16 uint16
	F   float64
	F32 float32
	S   string
	Bs  []byte
	Is  []int32
	M   map[string]int64
	P   *int64
	N   fuzzNested
	Arr [3]uint16
}

type fuzzNested struct {
	X int
	Y string
}

// buildFuzzEvent derives a fuzzEvent from primitive fuzz arguments. It
// normalizes empty collections to nil (the gob oracle conflates nil and
// empty) and NaN to zero (reflect.DeepEqual cannot compare NaN).
func buildFuzzEvent(b bool, i int64, i8 int8, i32 int32, u uint64, u16 uint16,
	f float64, f32 float32, s string, bs []byte, n int, pSet bool, x int, y string) fuzzEvent {
	if f != f {
		f = 0
	}
	if f32 != f32 {
		f32 = 0
	}
	ev := fuzzEvent{B: b, I: i, I8: i8, I32: i32, U: u, U16: u16, F: f, F32: f32, S: s,
		N: fuzzNested{X: x, Y: y}, Arr: [3]uint16{u16, u16 + 1, u16 + 2}}
	if len(bs) > 0 {
		ev.Bs = bs
	}
	if n < 0 {
		n = -n
	}
	n %= 8
	if n > 0 {
		ev.Is = make([]int32, n)
		ev.M = make(map[string]int64, n)
		for k := 0; k < n; k++ {
			ev.Is[k] = i32 + int32(k)
			ev.M[string(rune('a'+k))] = i + int64(k)
		}
	}
	if pSet {
		// gob drops zero values even through indirection, decoding
		// &0 back to nil; keep the pointee nonzero so the oracle can
		// represent it.
		v := i
		if v == 0 {
			v = 1
		}
		ev.P = &v
	}
	return ev
}

// FuzzWireRoundTrip is the differential fuzz harness of the compact
// codec against the gob oracle: every generated value must survive a
// wire round trip exactly, agree with gob's round trip, and its lazy
// field extraction must equal the fields of the fully decoded value.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(false, int64(0), int8(0), int32(0), uint64(0), uint16(0), 0.0, float32(0), "", []byte(nil), 0, false, 0, "")
	f.Add(true, int64(-1), int8(-128), int32(1<<30), ^uint64(0), uint16(65535), -1.5, float32(3.25), "hello", []byte{1, 2, 3}, 5, true, -42, "nested")
	f.Add(true, int64(1)<<62, int8(127), int32(-1), uint64(300), uint16(7), 1e-300, float32(0), "\x00\xff", []byte{0}, 1, false, 1<<40, "")

	prog, err := Compile(reflect.TypeOf(fuzzEvent{}))
	if err != nil {
		f.Fatal(err)
	}
	// The extractor reads primitive leaves across the struct, including
	// one through the pointer field and one inside the nested struct.
	chains := [][]int{
		{0},      // B
		{1},      // I
		{3},      // I32
		{8},      // S
		{12, -1}, // *P
		{13, 1},  // N.Y
	}
	ext, err := CompileExtract(reflect.TypeOf(fuzzEvent{}), chains)
	if err != nil {
		f.Fatal(err)
	}
	if !ext.AllAble() {
		f.Fatal("all fuzz chains must be extractable")
	}

	f.Fuzz(func(t *testing.T, b bool, i int64, i8 int8, i32 int32, u uint64, u16 uint16,
		f64 float64, f32 float32, s string, bs []byte, n int, pSet bool, x int, y string) {
		ev := buildFuzzEvent(b, i, i8, i32, u, u16, f64, f32, s, bs, n, pSet, x, y)

		data := prog.Append(nil, reflect.ValueOf(ev))
		rv := reflect.New(reflect.TypeOf(ev)).Elem()
		if err := prog.Decode(data, rv); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		got := rv.Interface().(fuzzEvent)
		if !reflect.DeepEqual(got, ev) {
			t.Fatalf("wire round trip diverged:\n got %#v\nwant %#v", got, ev)
		}

		// Gob oracle: both codecs must tell the same story about the
		// value (after the normalizations buildFuzzEvent applied).
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ev); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var oracle fuzzEvent
		if err := gob.NewDecoder(&buf).Decode(&oracle); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(got, oracle) {
			t.Fatalf("wire and gob round trips disagree:\nwire %#v\n gob %#v", got, oracle)
		}

		// Lazy extraction must equal the fully decoded fields.
		vals := make([]filter.Constant, len(chains))
		ok := make([]bool, len(chains))
		if err := ext.Extract(data, vals, ok); err != nil {
			t.Fatalf("extract: %v", err)
		}
		checkSlot := func(slot int, wantResolved bool, check func() bool) {
			t.Helper()
			if ok[slot] != wantResolved {
				t.Fatalf("slot %d resolved = %v, want %v", slot, ok[slot], wantResolved)
			}
			if wantResolved && !check() {
				t.Fatalf("slot %d value %+v disagrees with decoded field", slot, vals[slot])
			}
		}
		checkSlot(0, true, func() bool { return vals[0].B == got.B })
		checkSlot(1, true, func() bool { return vals[1].I == got.I })
		checkSlot(2, true, func() bool { return vals[2].I == int64(got.I32) })
		checkSlot(3, true, func() bool { return vals[3].S == got.S })
		if got.P != nil {
			checkSlot(4, true, func() bool { return vals[4].I == *got.P })
		} else {
			checkSlot(4, false, nil)
		}
		checkSlot(5, true, func() bool { return vals[5].S == got.N.Y })
	})
}

// FuzzWireDecode throws raw bytes at the compiled decoder and the
// extractor: malformed payloads must error (never panic, never
// over-allocate), and any payload both accept must tell one story.
func FuzzWireDecode(f *testing.F) {
	prog, err := Compile(reflect.TypeOf(fuzzEvent{}))
	if err != nil {
		f.Fatal(err)
	}
	ext, err := CompileExtract(reflect.TypeOf(fuzzEvent{}), [][]int{{1}, {8}})
	if err != nil {
		f.Fatal(err)
	}
	seed := prog.Append(nil, reflect.ValueOf(fuzzEvent{S: "seed", Bs: []byte{1}, P: new(int64)}))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		rv := reflect.New(reflect.TypeOf(fuzzEvent{})).Elem()
		decErr := prog.Decode(data, rv)

		vals := make([]filter.Constant, 2)
		ok := make([]bool, 2)
		extErr := ext.Extract(data, vals, ok)

		if decErr == nil {
			// A fully decodable payload must also extract (the
			// extractor validates a prefix of what the decoder
			// validates), and the extracted fields must match.
			if extErr != nil {
				t.Fatalf("decode accepted but extract rejected: %v", extErr)
			}
			got := rv.Interface().(fuzzEvent)
			if !ok[0] || vals[0].I != got.I {
				t.Fatalf("extracted I = %+v (ok=%v), decoded %d", vals[0], ok[0], got.I)
			}
			if !ok[1] || vals[1].S != got.S {
				t.Fatalf("extracted S = %+v (ok=%v), decoded %q", vals[1], ok[1], got.S)
			}
			// Re-encoding the decoded value must round-trip to an
			// equal value (bytes may legally differ: map iteration
			// order and non-minimal varints are not canonicalized).
			re := prog.Append(nil, rv)
			rv2 := reflect.New(reflect.TypeOf(fuzzEvent{})).Elem()
			if err := prog.Decode(re, rv2); err != nil {
				t.Fatalf("decode of re-encoding: %v", err)
			}
			if !reflect.DeepEqual(rv2.Interface(), got) {
				t.Fatalf("re-encode round trip diverged:\n got %#v\nwant %#v", rv2.Interface(), got)
			}
		}
	})
}
