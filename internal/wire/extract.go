package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"govents/internal/filter"
)

// An Extractor is one (class, plan) lazy partial decoder: it resolves a
// fixed set of structural accessor chains (field-index paths as
// reported by accessor.Program.FieldSteps) directly from a class's wire
// encoding, materializing nothing. A compound plan references only a
// handful of paths; walking the encoded bytes field by field — skipping
// everything the plan does not mention and stopping after the last
// referenced field — costs a few varint reads where a full decode costs
// a whole event's worth of allocation.
//
// Extractors are immutable and safe for concurrent use; the per-call
// state lives entirely in the caller's scratch slices.
type Extractor struct {
	t    reflect.Type
	able []bool
	all  bool
	run  extFn
}

// extFn walks one encoded subvalue, filling resolved slots.
type extFn func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error)

// islot is one chain still to be resolved below the current node.
type islot struct {
	idx   int
	chain []int
}

// CompileExtract builds the extractor for class type t over the given
// chains (one per plan path; -1 entries are pointer dereferences). A
// nil chain, or one whose leaf is not a filter primitive, is marked not
// extractable and simply never resolves — Able reports which chains the
// extractor covers, AllAble whether lazy evaluation can replace a full
// decode for this plan. CompileExtract fails only when t itself is not
// wire-encodable (callers gate on a compiled class program first).
func CompileExtract(t reflect.Type, chains [][]int) (*Extractor, error) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	ex := &Extractor{t: t, able: make([]bool, len(chains)), all: true}
	var slots []islot
	for i, c := range chains {
		if c != nil && chainExtractable(t, c) {
			ex.able[i] = true
			slots = append(slots, islot{idx: i, chain: c})
		} else {
			ex.all = false
		}
	}
	b := &builder{building: make(map[reflect.Type]bool)}
	run, err := buildWalk(b, t, slots, false)
	if err != nil {
		return nil, err
	}
	ex.run = run
	return ex, nil
}

// Type returns the class type the extractor reads.
func (e *Extractor) Type() reflect.Type { return e.t }

// Able reports whether chain i resolves from wire bytes.
func (e *Extractor) Able(i int) bool { return e.able[i] }

// AllAble reports whether every chain resolves from wire bytes — the
// precondition for evaluating a plan without materializing the event.
func (e *Extractor) AllAble() bool { return e.all }

// Extract resolves the extractable chains from one encoded payload into
// vals, setting ok per slot. Slots left false are unresolved — either
// not extractable, or unresolved on this value (nil pointer along the
// path, unsigned overflow) exactly where the materialized path's
// resolution would have failed. A non-nil error means the payload is
// malformed; the caller falls back to a full decode, which fails the
// same way, so corrupt input is observed identically on both paths.
func (e *Extractor) Extract(data []byte, vals []filter.Constant, ok []bool) error {
	for i := range ok {
		ok[i] = false
	}
	_, err := e.run(data, 0, vals, ok)
	return err
}

// chainExtractable reports whether a chain lands on a filter-primitive
// leaf through struct fields and pointer derefs only.
func chainExtractable(t reflect.Type, chain []int) bool {
	for _, s := range chain {
		if s < 0 {
			if t.Kind() != reflect.Pointer {
				return false
			}
			t = t.Elem()
			continue
		}
		if t.Kind() != reflect.Struct || s >= t.NumField() {
			return false
		}
		f := t.Field(s)
		if !f.IsExported() {
			// Unexported fields do not travel on the wire.
			return false
		}
		t = f.Type
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return true
	default:
		return false
	}
}

// buildWalk compiles the walk over t resolving slots. needTail is true
// when the caller must know the position after t's encoding (there is
// something interesting, or something to validate, later) — when false,
// the walk stops at the last resolved slot instead of skipping the rest
// of the payload.
func buildWalk(b *builder, t reflect.Type, slots []islot, needTail bool) (extFn, error) {
	if len(slots) == 0 {
		if !needTail {
			return func(_ []byte, pos int, _ []filter.Constant, _ []bool) (int, error) {
				return pos, nil
			}, nil
		}
		_, _, skip, err := b.build(t)
		if err != nil {
			return nil, err
		}
		return func(data []byte, pos int, _ []filter.Constant, _ []bool) (int, error) {
			return skip(data, pos)
		}, nil
	}

	switch t.Kind() {
	case reflect.Pointer:
		// Consume the leading deref (an empty chain here is a leaf
		// pointer: ValueOf dereferences it, so the walk does too).
		sub := make([]islot, len(slots))
		for i, s := range slots {
			if len(s.chain) > 0 && s.chain[0] == -1 {
				sub[i] = islot{idx: s.idx, chain: s.chain[1:]}
			} else {
				sub[i] = s
			}
		}
		inner, err := buildWalk(b, t.Elem(), sub, needTail)
		if err != nil {
			return nil, err
		}
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			if pos >= len(data) {
				return 0, errShort
			}
			switch data[pos] {
			case 0:
				// Nil pointer: every slot below stays unresolved, like
				// the materialized path's nil-deref failure.
				return pos + 1, nil
			case 1:
				return inner(data, pos+1, vals, ok)
			default:
				return 0, fmt.Errorf("wire: invalid presence byte %d", data[pos])
			}
		}, nil

	case reflect.Struct:
		byField := make(map[int][]islot)
		last := -1
		for _, s := range slots {
			if len(s.chain) == 0 {
				return nil, fmt.Errorf("wire: chain ends on struct %s", t)
			}
			f := s.chain[0]
			byField[f] = append(byField[f], islot{idx: s.idx, chain: s.chain[1:]})
			if f > last {
				last = f
			}
		}
		var acts []extFn
		for i := 0; i < t.NumField(); i++ {
			if i > last && !needTail {
				break
			}
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fn, err := buildWalk(b, f.Type, byField[i], needTail || i < last)
			if err != nil {
				return nil, err
			}
			acts = append(acts, fn)
		}
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			var err error
			for _, fn := range acts {
				if pos, err = fn(data, pos, vals, ok); err != nil {
					return 0, err
				}
			}
			return pos, nil
		}, nil
	}

	// Primitive leaf: every slot's chain must be exhausted.
	for _, s := range slots {
		if len(s.chain) != 0 {
			return nil, fmt.Errorf("wire: chain extends past %s", t)
		}
	}
	return buildCapture(t, slots)
}

// buildCapture compiles the leaf read for a primitive, resolving every
// slot that lands on it. The value normalization mirrors filter.ValueOf
// exactly, including its unsigned-overflow rejection.
func buildCapture(t reflect.Type, slots []islot) (extFn, error) {
	resolve := func(vals []filter.Constant, ok []bool, c filter.Constant) {
		for _, s := range slots {
			vals[s.idx] = c
			ok[s.idx] = true
		}
	}
	switch t.Kind() {
	case reflect.Bool:
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			if pos >= len(data) {
				return 0, errShort
			}
			switch data[pos] {
			case 0:
				resolve(vals, ok, filter.Constant{Kind: filter.ConstBool})
			case 1:
				resolve(vals, ok, filter.Constant{Kind: filter.ConstBool, B: true})
			default:
				return 0, fmt.Errorf("wire: invalid bool byte %d", data[pos])
			}
			return pos + 1, nil
		}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		bits := t.Bits()
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			u, pos, err := readUvarint(data, pos)
			if err != nil {
				return 0, err
			}
			i := unzigzag(u)
			if bits < 64 && (i>>(bits-1) != 0 && i>>(bits-1) != -1) {
				return 0, fmt.Errorf("wire: value %d overflows %s", i, t)
			}
			resolve(vals, ok, filter.Constant{Kind: filter.ConstInt, I: i})
			return pos, nil
		}, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		bits := t.Bits()
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			u, pos, err := readUvarint(data, pos)
			if err != nil {
				return 0, err
			}
			if bits < 64 && u>>bits != 0 {
				return 0, fmt.Errorf("wire: value %d overflows %s", u, t)
			}
			if u <= 1<<62 {
				resolve(vals, ok, filter.Constant{Kind: filter.ConstInt, I: int64(u)})
			}
			// Above 1<<62 the slot stays unresolved, exactly where
			// filter.ValueOf rejects the value on the materialized path.
			return pos, nil
		}, nil
	case reflect.Float32:
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			if pos+4 > len(data) {
				return 0, errShort
			}
			f := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[pos:])))
			resolve(vals, ok, filter.Constant{Kind: filter.ConstFloat, F: f})
			return pos + 4, nil
		}, nil
	case reflect.Float64:
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			if pos+8 > len(data) {
				return 0, errShort
			}
			f := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			resolve(vals, ok, filter.Constant{Kind: filter.ConstFloat, F: f})
			return pos + 8, nil
		}, nil
	case reflect.String:
		return func(data []byte, pos int, vals []filter.Constant, ok []bool) (int, error) {
			n, pos, err := readUvarint(data, pos)
			if err != nil {
				return 0, err
			}
			if n > uint64(len(data)-pos) {
				return 0, fmt.Errorf("wire: string length %d exceeds remaining input", n)
			}
			resolve(vals, ok, filter.Constant{Kind: filter.ConstString, S: string(data[pos : pos+int(n)])})
			return pos + int(n), nil
		}, nil
	default:
		return nil, fmt.Errorf("wire: unextractable leaf kind %s", t.Kind())
	}
}
