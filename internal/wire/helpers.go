package wire

// Typed primitive encode/decode helpers for generated codecs. A
// psc-generated native codec is a straight-line sequence of these calls
// — one per exported field, in declared order — and must produce
// byte-for-byte the compiled reflect program's encoding; keeping both
// on the same primitive routines is what makes that an identity rather
// than a convention.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendBool appends the 1-byte encoding of b.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendInt appends the zigzag-varint encoding of i (all signed integer
// widths and time.Duration share it).
func AppendInt(dst []byte, i int64) []byte {
	return binary.AppendUvarint(dst, zigzag(i))
}

// AppendUint appends the varint encoding of u (all unsigned widths).
func AppendUint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

// AppendFloat32 appends the 4-byte little-endian IEEE 754 bits of f.
func AppendFloat32(dst []byte, f float32) []byte {
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
}

// AppendFloat64 appends the 8-byte little-endian IEEE 754 bits of f.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendString appends the length-prefixed bytes of s.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Decoder reads primitives off a compact payload in field order. It is
// sticky-error: after the first malformed read every further read
// returns a zero value, and Finish reports what went wrong (including
// unconsumed trailing bytes, which the compiled decoder also rejects).
type Decoder struct {
	data []byte
	pos  int
	err  error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{data: data}
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Bool reads one strict 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.data) {
		d.fail(errShort)
		return false
	}
	b := d.data[d.pos]
	d.pos++
	if b > 1 {
		d.fail(fmt.Errorf("wire: invalid bool byte %d", b))
		return false
	}
	return b == 1
}

// Int reads a zigzag-varint signed integer.
func (d *Decoder) Int() int64 {
	return d.IntBits(64)
}

// IntBits reads a zigzag-varint signed integer and rejects values that
// do not fit in bits, exactly as the compiled decoder rejects overflow
// of a narrow field.
func (d *Decoder) IntBits(bits int) int64 {
	if d.err != nil {
		return 0
	}
	u, pos, err := readUvarint(d.data, d.pos)
	if err != nil {
		d.fail(err)
		return 0
	}
	d.pos = pos
	i := unzigzag(u)
	if bits < 64 && (i < -1<<(bits-1) || i >= 1<<(bits-1)) {
		d.fail(fmt.Errorf("wire: value %d overflows int%d", i, bits))
		return 0
	}
	return i
}

// Uint reads a varint unsigned integer.
func (d *Decoder) Uint() uint64 {
	return d.UintBits(64)
}

// UintBits reads a varint unsigned integer and rejects values that do
// not fit in bits.
func (d *Decoder) UintBits(bits int) uint64 {
	if d.err != nil {
		return 0
	}
	u, pos, err := readUvarint(d.data, d.pos)
	if err != nil {
		d.fail(err)
		return 0
	}
	d.pos = pos
	if bits < 64 && u >= 1<<bits {
		d.fail(fmt.Errorf("wire: value %d overflows uint%d", u, bits))
		return 0
	}
	return u
}

// Float32 reads 4 little-endian IEEE 754 bytes.
func (d *Decoder) Float32() float32 {
	if d.err != nil {
		return 0
	}
	if d.pos+4 > len(d.data) {
		d.fail(errShort)
		return 0
	}
	f := math.Float32frombits(binary.LittleEndian.Uint32(d.data[d.pos:]))
	d.pos += 4
	return f
}

// Float64 reads 8 little-endian IEEE 754 bytes.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.data) {
		d.fail(errShort)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return f
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	if d.err != nil {
		return ""
	}
	n, pos, err := readUvarint(d.data, d.pos)
	if err != nil {
		d.fail(err)
		return ""
	}
	if n > uint64(len(d.data)-pos) {
		d.fail(errShort)
		return ""
	}
	s := string(d.data[pos : pos+int(n)])
	d.pos = pos + int(n)
	return s
}

// Finish reports the first decode error, or an error if the payload was
// not fully consumed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.data) {
		return fmt.Errorf("wire: %d trailing bytes after decode", len(d.data)-d.pos)
	}
	return nil
}
