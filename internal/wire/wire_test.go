package wire

import (
	"math"
	"reflect"
	"testing"
	"time"

	"govents/internal/filter"
)

type flatEvent struct {
	B  bool
	I  int
	I8 int8
	U  uint64
	F  float64
	F3 float32
	S  string
	D  time.Duration
}

type inner struct {
	X int
	Y string
}

type richEvent struct {
	Name    string
	Ptr     *inner
	PP      **int
	Sl      []int
	SlS     []string
	By      []byte
	M       map[string]int
	Arr     [3]float64
	Nested  inner
	Cx      complex128
	private int // must not travel
}

func mustCompile(t *testing.T, v any) *Prog {
	t.Helper()
	p, err := Compile(reflect.TypeOf(v))
	if err != nil {
		t.Fatalf("Compile(%T): %v", v, err)
	}
	return p
}

func roundTrip(t *testing.T, p *Prog, v any) any {
	t.Helper()
	data := p.Append(nil, reflect.ValueOf(v))
	out := reflect.New(p.Type())
	if err := p.Decode(data, out.Elem()); err != nil {
		t.Fatalf("Decode(%#v): %v", v, err)
	}
	return out.Elem().Interface()
}

func TestRoundTripFlat(t *testing.T) {
	p := mustCompile(t, flatEvent{})
	for _, v := range []flatEvent{
		{},
		{B: true, I: -42, I8: -128, U: math.MaxUint64, F: 3.14, F3: -0.5, S: "hello", D: 5 * time.Second},
		{I: math.MaxInt64, F: math.Inf(-1), S: ""},
		{I: math.MinInt64, F: math.NaN()},
	} {
		got := roundTrip(t, p, v).(flatEvent)
		if v.F != v.F { // NaN
			if got.F == got.F {
				t.Fatalf("NaN not preserved: %v", got.F)
			}
			v.F, got.F = 0, 0
		}
		if got != v {
			t.Fatalf("round trip: got %#v want %#v", got, v)
		}
	}
}

func TestRoundTripRichExact(t *testing.T) {
	p := mustCompile(t, richEvent{})
	two := 2
	ptwo := &two
	for _, v := range []richEvent{
		{},
		{
			Name:   "r",
			Ptr:    &inner{X: 1, Y: "y"},
			PP:     &ptwo,
			Sl:     []int{1, -2, 3},
			SlS:    []string{"a", ""},
			By:     []byte{0, 255},
			M:      map[string]int{"k": -1, "": 0},
			Arr:    [3]float64{1, 2, 3},
			Nested: inner{X: 9},
			Cx:     complex(1.5, -2.5),
		},
		// Nil-vs-empty must round-trip exactly (gob cannot do this).
		{Sl: []int{}, SlS: nil, By: []byte{}, M: map[string]int{}},
		{Ptr: &inner{}}, // pointer to zero value preserved
	} {
		got := roundTrip(t, p, v).(richEvent)
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip: got %#v want %#v", got, v)
		}
		// DeepEqual conflates nil and empty; check nil-ness explicitly.
		if (got.Sl == nil) != (v.Sl == nil) || (got.M == nil) != (v.M == nil) ||
			(got.By == nil) != (v.By == nil) || (got.SlS == nil) != (v.SlS == nil) {
			t.Fatalf("nil-ness not preserved: got %#v want %#v", got, v)
		}
	}
}

func TestUnexportedFieldsDoNotTravel(t *testing.T) {
	p := mustCompile(t, richEvent{})
	got := roundTrip(t, p, richEvent{Name: "n", private: 7}).(richEvent)
	if got.private != 0 {
		t.Fatalf("unexported field traveled: %d", got.private)
	}
	if got.Name != "n" {
		t.Fatalf("exported field lost: %q", got.Name)
	}
}

type withIface struct{ V any }
type withChan struct{ C chan int }
type withTime struct{ T time.Time } // custom gob marshaler
type recur struct {
	Next *recur
}
type badKey struct {
	M map[*int]string
}

func TestCompileRejects(t *testing.T) {
	for _, v := range []any{withIface{}, withChan{}, withTime{}, recur{}, badKey{}} {
		if _, err := Compile(reflect.TypeOf(v)); err == nil {
			t.Fatalf("Compile(%T): expected rejection", v)
		}
	}
}

func TestDecodeDefensive(t *testing.T) {
	p := mustCompile(t, richEvent{})
	valid := p.Append(nil, reflect.ValueOf(richEvent{Name: "x", Sl: []int{1, 2}}))

	// Trailing garbage must not decode.
	out := reflect.New(p.Type()).Elem()
	if err := p.Decode(append(append([]byte{}, valid...), 0), out); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
	// Every truncation must fail, never panic or misread silently.
	for i := 0; i < len(valid); i++ {
		out := reflect.New(p.Type()).Elem()
		if err := p.Decode(valid[:i], out); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
	// A huge claimed count must be rejected before allocation.
	huge := []byte{0x0b} // Name: string len 11, but no bytes follow
	out = reflect.New(p.Type()).Elem()
	if err := p.Decode(huge, out); err == nil {
		t.Fatal("oversized length decoded successfully")
	}
}

func TestExtractorFlat(t *testing.T) {
	type ev struct {
		A int
		B string
		C float64
		D bool
	}
	p := mustCompile(t, ev{})
	et := reflect.TypeOf(ev{})
	// Chains: C, A, B, D and one non-extractable (nil).
	ex, err := CompileExtract(et, [][]int{{2}, {0}, {1}, {3}, nil})
	if err != nil {
		t.Fatalf("CompileExtract: %v", err)
	}
	if ex.AllAble() {
		t.Fatal("AllAble with a nil chain")
	}
	for i, want := range []bool{true, true, true, true, false} {
		if ex.Able(i) != want {
			t.Fatalf("Able(%d) = %v", i, ex.Able(i))
		}
	}
	v := ev{A: -7, B: "str", C: 2.5, D: true}
	data := p.Append(nil, reflect.ValueOf(v))
	vals := make([]filter.Constant, 5)
	ok := make([]bool, 5)
	if err := ex.Extract(data, vals, ok); err != nil {
		t.Fatalf("Extract: %v", err)
	}
	want := []filter.Constant{
		{Kind: filter.ConstFloat, F: 2.5},
		{Kind: filter.ConstInt, I: -7},
		{Kind: filter.ConstString, S: "str"},
		{Kind: filter.ConstBool, B: true},
		{},
	}
	for i := range want {
		if ok[i] != (i < 4) || (ok[i] && vals[i] != want[i]) {
			t.Fatalf("slot %d: ok=%v val=%#v want %#v", i, ok[i], vals[i], want[i])
		}
	}
}

func TestExtractorNested(t *testing.T) {
	type leaf struct {
		V int
	}
	type ev struct {
		Skip []string
		P    *leaf
		Tail string
	}
	p := mustCompile(t, ev{})
	et := reflect.TypeOf(ev{})
	// Chain P(-1 deref).V and Tail.
	ex, err := CompileExtract(et, [][]int{{1, -1, 0}, {2}})
	if err != nil {
		t.Fatalf("CompileExtract: %v", err)
	}
	if !ex.AllAble() {
		t.Fatal("expected all chains extractable")
	}
	vals := make([]filter.Constant, 2)
	ok := make([]bool, 2)

	v := ev{Skip: []string{"a", "b"}, P: &leaf{V: 11}, Tail: "t"}
	data := p.Append(nil, reflect.ValueOf(v))
	if err := ex.Extract(data, vals, ok); err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if !ok[0] || vals[0] != (filter.Constant{Kind: filter.ConstInt, I: 11}) {
		t.Fatalf("slot 0: ok=%v val=%#v", ok[0], vals[0])
	}
	if !ok[1] || vals[1].S != "t" {
		t.Fatalf("slot 1: ok=%v val=%#v", ok[1], vals[1])
	}

	// Nil pointer: slot 0 unresolved, slot 1 still resolves.
	v = ev{Tail: "u"}
	data = p.Append(nil, reflect.ValueOf(v))
	if err := ex.Extract(data, vals, ok); err != nil {
		t.Fatalf("Extract nil ptr: %v", err)
	}
	if ok[0] {
		t.Fatal("slot through nil pointer resolved")
	}
	if !ok[1] || vals[1].S != "u" {
		t.Fatalf("slot 1 after nil: ok=%v val=%#v", ok[1], vals[1])
	}
}

func TestExtractorCorruptFallsBack(t *testing.T) {
	type ev struct {
		S string
		V int
	}
	ex, err := CompileExtract(reflect.TypeOf(ev{}), [][]int{{1}})
	if err != nil {
		t.Fatalf("CompileExtract: %v", err)
	}
	vals := make([]filter.Constant, 1)
	ok := make([]bool, 1)
	// String claims 200 bytes, input ends: must error, not panic.
	if err := ex.Extract([]byte{200, 1}, vals, ok); err == nil {
		t.Fatal("corrupt payload extracted successfully")
	}
}

func TestNativeRegistration(t *testing.T) {
	type natEv struct {
		N int
	}
	typ := reflect.TypeOf(natEv{})
	RegisterNative(typ, &NativeCodec{
		Enc: func(dst []byte, o any) []byte { return dst },
		Dec: func(data []byte) (any, error) { return natEv{}, nil },
	})
	p, err := Compile(typ)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Native() == nil {
		t.Fatal("native codec not attached")
	}
	// A class without a registration has none.
	if mustCompile(t, flatEvent{}).Native() != nil {
		t.Fatal("unexpected native codec")
	}
}

func TestZigzag(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(i)); got != i {
			t.Fatalf("zigzag(%d) round trip = %d", i, got)
		}
	}
}
