package durable

import (
	"encoding/binary"
	"fmt"
)

// Tiny length-prefixed encoding helpers shared by the outbox and inbox
// record formats. Records live inside CRC-verified segment frames, so
// decode errors here indicate a version/logic bug, not disk corruption —
// they are still surfaced as errors rather than panics so a mixed-
// version restart degrades loudly instead of crashing.

// appendBlob appends [u32 len][bytes].
func appendBlob(dst []byte, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// appendUint32 appends a big-endian u32.
func appendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// appendUint64 appends a big-endian u64.
func appendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// takeUint32 consumes a big-endian u32 from src.
func takeUint32(src []byte) (v uint32, rest []byte, err error) {
	if len(src) < 4 {
		return 0, nil, fmt.Errorf("durable: short uint32")
	}
	return binary.BigEndian.Uint32(src), src[4:], nil
}

// takeBlob consumes [u32 len][bytes] from src.
func takeBlob(src []byte) (blob, rest []byte, err error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("durable: short blob header")
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint32(len(src)) < n {
		return nil, nil, fmt.Errorf("durable: short blob body (%d < %d)", len(src), n)
	}
	return src[:n], src[n:], nil
}

// takeUint64 consumes a big-endian u64 from src.
func takeUint64(src []byte) (v uint64, rest []byte, err error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("durable: short uint64")
	}
	return binary.BigEndian.Uint64(src), src[8:], nil
}
