// Package durable is the persistence layer beneath durable domains: a
// per-class append-only segment log with CRC-framed records, an outbox
// implementing store.Log over it (publisher-side certified state), and
// an inbox with offset-tracked cursors (subscriber-side staged
// deliveries and resumable durable subscriptions, paper §3.1.2/§3.4.1).
//
// The design goal is crash-restart recovery, not raw throughput: every
// record is individually CRC-framed so a torn tail (a crash mid-append)
// is detected and truncated at open, and every state mutation is either
// an appended record or a whole-segment drop, so recovery is a replay.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record (the default): a
	// record acknowledged to a caller is on stable storage. This is the
	// policy certified delivery assumes — the subscriber-side ack is
	// sent only after the staged record is durable.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs only on segment roll, explicit Sync and Close.
	// A crash can lose the tail of the active segment; certified
	// redelivery heals the loss (the publisher was never acked), at the
	// cost of possible duplicate deliveries above the at-least-once
	// floor.
	SyncBatch
)

// DefaultSegmentBytes is the segment roll threshold when the config
// leaves it zero.
const DefaultSegmentBytes = 1 << 20

// maxRecordBytes bounds one record; a framed length beyond it is treated
// as corruption rather than allocated.
const maxRecordBytes = 64 << 20

// frameHeader is [dataLen u32][crc32(data) u32], both big-endian.
const frameHeader = 8

// ErrCorrupt reports corruption in the interior of a segment log — a
// bad CRC or frame before the final record of the final segment, which
// no crash can produce (torn tails are truncated at open instead).
var ErrCorrupt = errors.New("durable: corrupt segment log")

// ErrLogClosed reports an operation on a closed segment log.
var ErrLogClosed = errors.New("durable: log closed")

// SegmentConfig tunes a SegmentLog.
type SegmentConfig struct {
	// SegmentBytes is the roll threshold: an append that would grow the
	// active segment past it starts a new segment. Zero selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Logger receives recovery diagnostics (torn-tail truncations).
	// Nil discards.
	Logger *slog.Logger
}

// SegmentStats are a SegmentLog's counters.
type SegmentStats struct {
	// Segments and Records count the live (non-compacted) segments and
	// the records they hold; Bytes is their on-disk size.
	Segments int
	Records  uint64
	Bytes    int64
	// FirstOffset and NextOffset bound the live offset range:
	// [FirstOffset, NextOffset). FirstOffset > 1 after compaction.
	FirstOffset uint64
	NextOffset  uint64
	// Appends and Syncs count appended records and fsync calls.
	Appends uint64
	Syncs   uint64
	// TornTails counts torn tail records truncated at open.
	TornTails uint64
	// Compacted counts segments dropped by Compact over the log's
	// lifetime (this process).
	Compacted uint64
	// ReclaimedRecords and ReclaimedBytes sum the records and on-disk
	// bytes of the compacted segments (this process).
	ReclaimedRecords uint64
	ReclaimedBytes   int64
}

// segment is one on-disk log file holding records [base, base+count).
type segment struct {
	base  uint64
	count uint64
	size  int64
	path  string
}

func (s *segment) end() uint64 { return s.base + s.count }

// SegmentLog is an append-only log of CRC-framed records split across
// size-bounded segment files, each named by the offset of its first
// record. Offsets are 1-based and strictly monotonic across segments;
// compaction drops whole segments from the front. Safe for concurrent
// use.
type SegmentLog struct {
	dir string
	cfg SegmentConfig
	log *slog.Logger

	mu      sync.Mutex
	segs    []*segment
	active  *os.File // append handle of segs[len(segs)-1]
	next    uint64   // next offset to assign
	closed  bool
	appends uint64
	syncs   uint64
	torn    uint64
	compact uint64

	reclaimedRecs  uint64
	reclaimedBytes int64
}

// OpenSegmentLog opens (or creates) the segment log in dir, replaying
// existing segments to rebuild the offset space. A torn tail record in
// the final segment — the artifact of a crash mid-append — is truncated
// away and logged; corruption anywhere else fails the open with
// ErrCorrupt.
func OpenSegmentLog(dir string, cfg SegmentConfig) (*SegmentLog, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	l := &SegmentLog{dir: dir, cfg: cfg, log: logger, next: 1}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.newSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: reopen %s: %w", last.path, err)
		}
		l.active = f
	}
	return l, nil
}

// segPath names the segment whose first record is offset base.
func segPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d.seg", base))
}

// scan discovers and verifies the existing segments.
func (l *SegmentLog) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("durable: scan %s: %w", l.dir, err)
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for i, base := range bases {
		seg := &segment{base: base, path: segPath(l.dir, base)}
		if base != l.next && i > 0 {
			return fmt.Errorf("%w: %s: segment %d does not chain onto offset %d",
				ErrCorrupt, seg.path, base, l.next)
		}
		if i == 0 {
			l.next = base // compaction may have dropped the front
		}
		final := i == len(bases)-1
		if err := l.scanSegment(seg, final); err != nil {
			return err
		}
		l.segs = append(l.segs, seg)
		l.next = seg.end()
	}
	return nil
}

// scanSegment replays one segment file, counting records and — in the
// final segment only — truncating a torn tail to the last whole-record
// boundary.
func (l *SegmentLog) scanSegment(seg *segment, final bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("durable: scan %s: %w", seg.path, err)
	}
	defer f.Close()
	var good int64
	for {
		data, n, err := readFrame(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !final {
				return fmt.Errorf("%w: %s at byte %d: %v", ErrCorrupt, seg.path, good, err)
			}
			// Torn tail: a crash mid-append left a partial (or
			// garbage-length) frame. Truncate to the last whole record;
			// the lost record was never acknowledged to anyone.
			if terr := os.Truncate(seg.path, good); terr != nil {
				return fmt.Errorf("durable: truncate torn tail of %s: %w", seg.path, terr)
			}
			l.torn++
			l.log.Warn("durable: truncated torn tail record",
				"segment", seg.path, "offset", seg.base+seg.count,
				"goodBytes", good, "err", err)
			break
		}
		_ = data
		good += n
		seg.count++
	}
	seg.size = good
	return nil
}

// readFrame reads one [len][crc][data] frame, returning the data and the
// framed byte count. io.EOF at a frame boundary is the clean end; any
// other failure (short header, short body, oversized length, CRC
// mismatch) is reported as an error for the caller to classify.
func readFrame(r io.Reader) ([]byte, int64, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("torn frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxRecordBytes {
		return nil, 0, fmt.Errorf("frame length %d exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, 0, fmt.Errorf("torn frame body: %w", err)
	}
	if crc := crc32.ChecksumIEEE(data); crc != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, 0, fmt.Errorf("crc mismatch")
	}
	return data, frameHeader + int64(n), nil
}

// newSegmentLocked starts a fresh active segment at the current offset.
func (l *SegmentLog) newSegmentLocked() error {
	seg := &segment{base: l.next, path: segPath(l.dir, l.next)}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", seg.path, err)
	}
	l.segs = append(l.segs, seg)
	l.active = f
	return nil
}

// rollLocked seals the active segment (fsynced regardless of policy — a
// sealed segment must be durable) and starts a new one.
func (l *SegmentLog) rollLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("durable: sync on roll: %w", err)
	}
	l.syncs++
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("durable: close on roll: %w", err)
	}
	return l.newSegmentLocked()
}

// Append frames and appends one record, returning its offset. Under
// SyncAlways the record is on stable storage when Append returns.
func (l *SegmentLog) Append(data []byte) (uint64, error) {
	if len(data) > maxRecordBytes {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds limit", len(data))
	}
	frame := make([]byte, frameHeader+len(data))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(data))
	copy(frame[frameHeader:], data)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	seg := l.segs[len(l.segs)-1]
	if seg.size > 0 && seg.size+int64(len(frame)) > l.cfg.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
		seg = l.segs[len(l.segs)-1]
	}
	if _, err := l.active.Write(frame); err != nil {
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	if l.cfg.Sync == SyncAlways {
		if err := l.active.Sync(); err != nil {
			return 0, fmt.Errorf("durable: sync: %w", err)
		}
		l.syncs++
	}
	off := l.next
	l.next++
	seg.count++
	seg.size += int64(len(frame))
	l.appends++
	return off, nil
}

// Sync fsyncs the active segment (a no-op barrier under SyncAlways).
func (l *SegmentLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("durable: sync: %w", err)
	}
	l.syncs++
	return nil
}

// Roll seals the active segment and starts a new one regardless of
// size — the hook for snapshot-then-compact schemes: append a snapshot
// record, Roll, then Compact everything before the snapshot.
func (l *SegmentLog) Roll() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	return l.rollLocked()
}

// NextOffset returns the offset the next Append will be assigned.
func (l *SegmentLog) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// FirstOffset returns the smallest live offset (== NextOffset when the
// log is empty or fully compacted).
func (l *SegmentLog) FirstOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// snapshotSegs captures the live segments and their record counts so
// reads can proceed without holding the lock (appends racing a read are
// bounded out by the captured counts; compaction unlinking a captured
// file surfaces as a skipped, fully-acknowledged segment).
func (l *SegmentLog) snapshotSegs() []segment {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]segment, len(l.segs))
	for i, s := range l.segs {
		out[i] = *s
	}
	return out
}

// ReadFrom streams every record with offset >= from, in offset order,
// to fn. fn receives a fresh buffer it may retain; a non-nil fn error
// aborts the read and is returned. ReadFrom does not hold the log lock
// while fn runs, so fn may append to this log.
func (l *SegmentLog) ReadFrom(from uint64, fn func(off uint64, data []byte) error) error {
	for _, seg := range l.snapshotSegs() {
		if seg.end() <= from || seg.count == 0 {
			continue
		}
		if err := readSegment(seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// readSegment streams one captured segment's records to fn.
func readSegment(seg segment, from uint64, fn func(off uint64, data []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // compacted while reading: records were fully acked
		}
		return fmt.Errorf("durable: read %s: %w", seg.path, err)
	}
	defer f.Close()
	for off := seg.base; off < seg.end(); off++ {
		data, _, err := readFrame(f)
		if err != nil {
			return fmt.Errorf("%w: %s record %d: %v", ErrCorrupt, seg.path, off, err)
		}
		if off < from {
			continue
		}
		if err := fn(off, data); err != nil {
			return err
		}
	}
	return nil
}

// Compact drops every sealed segment whose records all have offsets
// below before, returning the segments and records dropped. The active
// segment is never dropped, so the log always accepts appends.
func (l *SegmentLog) Compact(before uint64) (segments int, records uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrLogClosed
	}
	for len(l.segs) > 1 && l.segs[0].end() <= before {
		seg := l.segs[0]
		if err := os.Remove(seg.path); err != nil {
			return segments, records, fmt.Errorf("durable: compact %s: %w", seg.path, err)
		}
		l.segs = l.segs[1:]
		segments++
		records += seg.count
		l.compact++
		l.reclaimedRecs += seg.count
		l.reclaimedBytes += seg.size
	}
	return segments, records, nil
}

// Stats returns the log's counters.
func (l *SegmentLog) Stats() SegmentStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := SegmentStats{
		Segments:         len(l.segs),
		FirstOffset:      l.segs[0].base,
		NextOffset:       l.next,
		Appends:          l.appends,
		Syncs:            l.syncs,
		TornTails:        l.torn,
		Compacted:        l.compact,
		ReclaimedRecords: l.reclaimedRecs,
		ReclaimedBytes:   l.reclaimedBytes,
	}
	for _, s := range l.segs {
		st.Records += s.count
		st.Bytes += s.size
	}
	return st
}

// Close fsyncs and closes the active segment. The log must not be used
// afterwards.
func (l *SegmentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.active.Sync(); err != nil {
		_ = l.active.Close()
		return fmt.Errorf("durable: close sync: %w", err)
	}
	l.syncs++
	return l.active.Close()
}
