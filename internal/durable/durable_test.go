package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"govents/internal/store"
)

func openTestOutbox(t *testing.T, dir string) *Outbox {
	t.Helper()
	o, err := OpenOutbox(filepath.Join(dir, "data"), filepath.Join(dir, "meta"), SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOutboxMatchesMemLogSemantics(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir)
	defer o.Close()
	mem := store.NewMemLog()

	for _, l := range []store.Log{o, mem} {
		if err := l.RegisterConsumer("sub-a"); err != nil {
			t.Fatal(err)
		}
		if err := l.RegisterConsumer("sub-a"); err != nil { // idempotent
			t.Fatal(err)
		}
		for i := range 5 {
			e := store.Entry{ID: fmt.Sprintf("e%d", i), Payload: []byte{byte(i)}}
			if err := l.Append(e); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(e); err != nil { // idempotent
				t.Fatal(err)
			}
		}
		if err := l.Ack("sub-a", "e1"); err != nil {
			t.Fatal(err)
		}
		if err := l.Ack("sub-a", "never-appended"); err != nil { // tolerated
			t.Fatal(err)
		}
		if err := l.Ack("ghost", "e1"); !errors.Is(err, store.ErrUnknownConsumer) {
			t.Fatalf("Ack unknown consumer: %v", err)
		}
		if _, err := l.Pending("ghost"); !errors.Is(err, store.ErrUnknownConsumer) {
			t.Fatalf("Pending unknown consumer: %v", err)
		}
	}
	op, err := o.Pending("sub-a")
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mem.Pending("sub-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(op) != len(mp) {
		t.Fatalf("pending: outbox %d, memlog %d", len(op), len(mp))
	}
	for i := range op {
		if op[i].ID != mp[i].ID {
			t.Fatalf("pending[%d]: outbox %q, memlog %q", i, op[i].ID, mp[i].ID)
		}
	}
}

func TestOutboxSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir)
	if err := o.RegisterConsumer("sub"); err != nil {
		t.Fatal(err)
	}
	for i := range 6 {
		if err := o.Append(store.Entry{ID: fmt.Sprintf("e%d", i), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"e0", "e1", "e3"} {
		if err := o.Ack("sub", id); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// A restarted publisher owes exactly what was unacked: e2, e4, e5.
	o = openTestOutbox(t, dir)
	defer o.Close()
	consumers, err := o.Consumers()
	if err != nil {
		t.Fatal(err)
	}
	if len(consumers) != 1 || consumers[0] != "sub" {
		t.Fatalf("consumers after reopen = %v", consumers)
	}
	pending, err := o.Pending("sub")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"e2", "e4", "e5"}
	if len(pending) != len(want) {
		t.Fatalf("pending after reopen = %d entries, want %d", len(pending), len(want))
	}
	for i, id := range want {
		if pending[i].ID != id {
			t.Fatalf("pending[%d] = %q, want %q", i, pending[i].ID, id)
		}
	}
}

func TestOutboxGCSnapshotCompact(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOutbox(filepath.Join(dir, "data"), filepath.Join(dir, "meta"),
		SegmentConfig{SegmentBytes: 1}) // one record per segment
	if err != nil {
		t.Fatal(err)
	}
	if err := o.RegisterConsumer("sub"); err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if err := o.Append(store.Entry{ID: fmt.Sprintf("e%d", i), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Ack a contiguous prefix plus a gap: e0..e2 compactable, e3 not.
	for _, id := range []string{"e0", "e1", "e2", "e4"} {
		if err := o.Ack("sub", id); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := o.GC()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("GC dropped %d, want 3", dropped)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-GC reopen must reconstruct the surviving state.
	o = openTestOutbox(t, dir)
	defer o.Close()
	pending, err := o.Pending("sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "e3" {
		t.Fatalf("pending after GC+reopen = %v", pending)
	}
	if o.Len() != 2 { // e3 (pending) + e4 (acked, segment not droppable past gap)
		t.Fatalf("Len after GC+reopen = %d, want 2", o.Len())
	}
}

func TestOutboxGCWithoutConsumersRetains(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir)
	defer o.Close()
	if err := o.Append(store.Entry{ID: "e0"}); err != nil {
		t.Fatal(err)
	}
	dropped, err := o.GC()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || o.Len() != 1 {
		t.Fatalf("GC with no consumers dropped %d (len %d), want 0 (1)", dropped, o.Len())
	}
}

func openTestInbox(t *testing.T, dir string) *Inbox {
	t.Helper()
	ib, err := OpenInbox(filepath.Join(dir, "data"), filepath.Join(dir, "acks"), SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return ib
}

// replayIDs collects the event IDs Replay would hand a resuming
// subscription.
func replayIDs(t *testing.T, ib *Inbox, durableID string) []string {
	t.Helper()
	var ids []string
	if err := ib.Replay(durableID, func(id, origin string, payload []byte) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestInboxStageDedupAndCursor(t *testing.T) {
	dir := t.TempDir()
	ib := openTestInbox(t, dir)
	defer ib.Close()

	// Events staged before the cursor exists are not owed to it.
	if _, err := ib.Stage("old", "pub", []byte("x")); err != nil {
		t.Fatal(err)
	}
	resumed, err := ib.EnsureCursor("durable-1")
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("fresh cursor reported resumed")
	}
	for i := range 3 {
		fresh, err := ib.Stage(fmt.Sprintf("e%d", i), "pub", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("e%d not fresh", i)
		}
	}
	if fresh, err := ib.Stage("e1", "pub", []byte{1}); err != nil || fresh {
		t.Fatalf("duplicate stage: fresh=%v err=%v", fresh, err)
	}
	if ids := replayIDs(t, ib, "durable-1"); len(ids) != 3 || ids[0] != "e0" {
		t.Fatalf("replay = %v, want [e0 e1 e2]", ids)
	}
	// Ack out of order: e1 then e0; replay owes only e2.
	if err := ib.Ack("durable-1", "e1"); err != nil {
		t.Fatal(err)
	}
	if err := ib.Ack("durable-1", "e0"); err != nil {
		t.Fatal(err)
	}
	if ids := replayIDs(t, ib, "durable-1"); len(ids) != 1 || ids[0] != "e2" {
		t.Fatalf("replay after acks = %v, want [e2]", ids)
	}
	// Misuse sentinels.
	if err := ib.Ack("durable-1", "no-such-event"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("Ack unknown event: %v", err)
	}
	if err := ib.Ack("ghost", "e2"); !errors.Is(err, ErrUnknownCursor) {
		t.Fatalf("Ack unknown cursor: %v", err)
	}
	if err := ib.Replay("ghost", nil); !errors.Is(err, ErrUnknownCursor) {
		t.Fatalf("Replay unknown cursor: %v", err)
	}
}

func TestInboxSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ib := openTestInbox(t, dir)
	if _, err := ib.EnsureCursor("d1"); err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if _, err := ib.Stage(fmt.Sprintf("e%d", i), "pub", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"e0", "e1", "e3"} {
		if err := ib.Ack("d1", id); err != nil {
			t.Fatal(err)
		}
	}
	if err := ib.Close(); err != nil {
		t.Fatal(err)
	}
	ib = openTestInbox(t, dir)
	defer ib.Close()
	resumed, err := ib.EnsureCursor("d1")
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("cursor lost across reopen")
	}
	if ids := replayIDs(t, ib, "d1"); len(ids) != 2 || ids[0] != "e2" || ids[1] != "e4" {
		t.Fatalf("replay after reopen = %v, want [e2 e4]", ids)
	}
	// Dedup survives: a redelivered event is not fresh.
	if fresh, err := ib.Stage("e2", "pub", []byte{2}); err != nil || fresh {
		t.Fatalf("redelivered stage after reopen: fresh=%v err=%v", fresh, err)
	}
}

func TestInboxCompact(t *testing.T) {
	dir := t.TempDir()
	ib, err := OpenInbox(filepath.Join(dir, "data"), filepath.Join(dir, "acks"),
		SegmentConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ib.EnsureCursor("d1"); err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		if _, err := ib.Stage(fmt.Sprintf("e%d", i), "pub", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"e0", "e1"} {
		if err := ib.Ack("d1", id); err != nil {
			t.Fatal(err)
		}
	}
	if err := ib.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ib.Close(); err != nil {
		t.Fatal(err)
	}
	ib, err = OpenInbox(filepath.Join(dir, "data"), filepath.Join(dir, "acks"), SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ib.Close()
	if ids := replayIDs(t, ib, "d1"); len(ids) != 2 || ids[0] != "e2" || ids[1] != "e3" {
		t.Fatalf("replay after compact+reopen = %v, want [e2 e3]", ids)
	}
}

func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := m.OutboxFor("pkg.Quote")
	if err != nil {
		t.Fatal(err)
	}
	if err := ob.Append(store.Entry{ID: "e0", Payload: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	ib, err := m.InboxFor("pkg.Quote")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ib.EnsureCursor("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ib.Stage("e1", "pub", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := m.AckDelivered("pkg.Quote", "d1", "e1"); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Classes != 1 || st.Staged != 1 || st.Acked != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the class is discovered from disk before any traffic.
	m, err = Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	classes := m.Classes()
	if len(classes) != 1 || classes[0] != "pkg.Quote" {
		t.Fatalf("classes after reopen = %v", classes)
	}
	ib, err = m.InboxFor("pkg.Quote")
	if err != nil {
		t.Fatal(err)
	}
	if !ib.HasCursor("d1") {
		t.Fatal("cursor lost across manager reopen")
	}
}
