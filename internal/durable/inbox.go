package durable

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
)

// ErrUnknownEvent reports an acknowledgement for an event ID the inbox
// never staged — offset misuse by the caller.
var ErrUnknownEvent = errors.New("durable: unknown event")

// ErrUnknownCursor reports an operation against a durable subscription
// ID with no cursor in this inbox.
var ErrUnknownCursor = errors.New("durable: unknown durable cursor")

// Inbox is the subscriber-side staging log for one class. Incoming
// certified events are staged (appended + deduplicated by event ID)
// BEFORE they are acknowledged to the publisher, closing the §3.1.2
// crash window between delivery and acknowledgement: if the process
// dies after the ack but before the handler ran, the event is still on
// disk and is replayed to the durable subscription on restart.
//
// Each durable subscription ID owns a persistent cursor: a start
// offset (events staged before the cursor existed are not owed), a
// contiguous acknowledged frontier, and a sparse set of out-of-order
// acknowledgements. SubscribeDurable resumes by replaying everything
// between the frontier and the log head that is not sparsely acked.
type Inbox struct {
	data *SegmentLog // staged events: [blob id][blob origin][payload]
	acks *SegmentLog // cursor history
	log  *slog.Logger

	mu      sync.Mutex
	byID    map[string]uint64 // staged event ID -> offset
	cursors map[string]*cursorState
	closed  bool

	staged    uint64
	stageDups uint64
	acked     uint64
	replayed  uint64
}

// cursorState is one durable subscription's position in the inbox.
type cursorState struct {
	start    uint64 // offsets <= start are not owed
	frontier uint64 // offsets <= frontier are acknowledged (>= start)
	sparse   map[uint64]bool
}

// Ack-log record kinds.
const (
	ackCursor   = 1 // [blob durableID][u64 start]
	ackAck      = 2 // [blob durableID][u64 offset]
	ackSnapshot = 3 // full cursor state; resets replay
)

// OpenInbox opens (or creates) the inbox under dataDir/acksDir,
// replaying both logs.
func OpenInbox(dataDir, acksDir string, cfg SegmentConfig) (*Inbox, error) {
	data, err := OpenSegmentLog(dataDir, cfg)
	if err != nil {
		return nil, err
	}
	acks, err := OpenSegmentLog(acksDir, cfg)
	if err != nil {
		_ = data.Close()
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ib := &Inbox{
		data:    data,
		acks:    acks,
		log:     logger,
		byID:    make(map[string]uint64),
		cursors: make(map[string]*cursorState),
	}
	if err := ib.replay(); err != nil {
		_ = data.Close()
		_ = acks.Close()
		return nil, err
	}
	return ib, nil
}

// replay rebuilds the dedup index from the data log and the cursors
// from the ack log. Dedup knowledge for compacted events is gone, but a
// compacted event was acknowledged by every cursor AND acknowledged to
// its publisher, so a redelivery of it can only come from a publisher
// that itself lost the ack — a duplicate within the at-least-once
// floor, not a correctness break.
func (ib *Inbox) replay() error {
	err := ib.data.ReadFrom(ib.data.FirstOffset(), func(off uint64, rec []byte) error {
		id, _, err := takeBlob(rec)
		if err != nil {
			return fmt.Errorf("durable: inbox data record %d: %w", off, err)
		}
		ib.byID[string(id)] = off
		return nil
	})
	if err != nil {
		return err
	}
	return ib.acks.ReadFrom(ib.acks.FirstOffset(), func(off uint64, rec []byte) error {
		if err := ib.applyAck(rec); err != nil {
			return fmt.Errorf("durable: inbox ack record %d: %w", off, err)
		}
		return nil
	})
}

// applyAck applies one ack-log record during replay.
func (ib *Inbox) applyAck(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("empty record")
	}
	kind, rest := rec[0], rec[1:]
	switch kind {
	case ackCursor:
		id, rest, err := takeBlob(rest)
		if err != nil {
			return err
		}
		start, _, err := takeUint64(rest)
		if err != nil {
			return err
		}
		if _, ok := ib.cursors[string(id)]; !ok {
			ib.cursors[string(id)] = &cursorState{
				start: start, frontier: start, sparse: make(map[uint64]bool),
			}
		}
	case ackAck:
		id, rest, err := takeBlob(rest)
		if err != nil {
			return err
		}
		off, _, err := takeUint64(rest)
		if err != nil {
			return err
		}
		if cs, ok := ib.cursors[string(id)]; ok {
			cs.record(off)
		}
	case ackSnapshot:
		cursors, err := decodeCursorSnapshot(rest)
		if err != nil {
			return err
		}
		ib.cursors = cursors
	default:
		return fmt.Errorf("unknown ack kind %d", kind)
	}
	return nil
}

// record folds one acknowledged offset into the cursor, advancing the
// contiguous frontier through any sparse backlog it unlocks.
func (cs *cursorState) record(off uint64) {
	if off <= cs.frontier || cs.sparse[off] {
		return
	}
	if off == cs.frontier+1 {
		cs.frontier++
		for cs.sparse[cs.frontier+1] {
			delete(cs.sparse, cs.frontier+1)
			cs.frontier++
		}
		return
	}
	cs.sparse[off] = true
}

// acked reports whether the cursor has acknowledged the offset.
func (cs *cursorState) ackedAt(off uint64) bool {
	return off <= cs.frontier || cs.sparse[off]
}

// encodeCursorSnapshot serialises all cursors.
func encodeCursorSnapshot(cursors map[string]*cursorState) []byte {
	out := []byte{ackSnapshot}
	out = appendUint32(out, uint32(len(cursors)))
	for id, cs := range cursors {
		out = appendBlob(out, []byte(id))
		out = appendUint64(out, cs.start)
		out = appendUint64(out, cs.frontier)
		out = appendUint32(out, uint32(len(cs.sparse)))
		for off := range cs.sparse {
			out = appendUint64(out, off)
		}
	}
	return out
}

// decodeCursorSnapshot is the inverse of encodeCursorSnapshot (minus
// the kind byte).
func decodeCursorSnapshot(rec []byte) (map[string]*cursorState, error) {
	n, rec, err := takeUint32(rec)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*cursorState, n)
	for range n {
		var id []byte
		id, rec, err = takeBlob(rec)
		if err != nil {
			return nil, err
		}
		cs := &cursorState{sparse: make(map[uint64]bool)}
		cs.start, rec, err = takeUint64(rec)
		if err != nil {
			return nil, err
		}
		cs.frontier, rec, err = takeUint64(rec)
		if err != nil {
			return nil, err
		}
		var cnt uint32
		cnt, rec, err = takeUint32(rec)
		if err != nil {
			return nil, err
		}
		for range cnt {
			var off uint64
			off, rec, err = takeUint64(rec)
			if err != nil {
				return nil, err
			}
			cs.sparse[off] = true
		}
		out[string(id)] = cs
	}
	return out, nil
}

// Stage appends an incoming event if its ID is new, reporting whether
// it was fresh. A false return with nil error is the dedup hit: the
// event is already durable here, so the caller should re-acknowledge
// it to the publisher but not deliver it again. Stage succeeding means
// the event survives a crash — callers must stage BEFORE acking.
func (ib *Inbox) Stage(id, origin string, payload []byte) (fresh bool, err error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false, ErrLogClosed
	}
	if _, ok := ib.byID[id]; ok {
		ib.stageDups++
		return false, nil
	}
	rec := appendBlob(nil, []byte(id))
	rec = appendBlob(rec, []byte(origin))
	rec = append(rec, payload...)
	off, err := ib.data.Append(rec)
	if err != nil {
		return false, err
	}
	ib.byID[id] = off
	ib.staged++
	return true, nil
}

// EnsureCursor creates (and persists) the cursor for a durable
// subscription ID if it does not exist, reporting whether it already
// did. A fresh cursor starts at the current log head: a brand-new
// durable subscription is owed events from now on, not history.
func (ib *Inbox) EnsureCursor(durableID string) (resumed bool, err error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false, ErrLogClosed
	}
	if _, ok := ib.cursors[durableID]; ok {
		return true, nil
	}
	start := ib.data.NextOffset() - 1
	rec := appendBlob([]byte{ackCursor}, []byte(durableID))
	rec = appendUint64(rec, start)
	if _, err := ib.acks.Append(rec); err != nil {
		return false, err
	}
	ib.cursors[durableID] = &cursorState{
		start: start, frontier: start, sparse: make(map[uint64]bool),
	}
	return false, nil
}

// HasCursor reports whether the durable ID owns a cursor here.
func (ib *Inbox) HasCursor(durableID string) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	_, ok := ib.cursors[durableID]
	return ok
}

// Ack durably marks the staged event delivered to the durable
// subscription. Unknown event IDs are ErrUnknownEvent (the caller is
// confusing offsets or classes); duplicate acks are a no-op.
func (ib *Inbox) Ack(durableID, eventID string) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return ErrLogClosed
	}
	cs, ok := ib.cursors[durableID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCursor, durableID)
	}
	off, ok := ib.byID[eventID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, eventID)
	}
	if cs.ackedAt(off) {
		return nil
	}
	rec := appendBlob([]byte{ackAck}, []byte(durableID))
	rec = appendUint64(rec, off)
	if _, err := ib.acks.Append(rec); err != nil {
		return err
	}
	cs.record(off)
	ib.acked++
	return nil
}

// Replay streams, in staging order, every event the durable
// subscription has not acknowledged — the "missed while down" set. fn
// runs without the inbox lock held, so it may Stage and Ack (the usual
// flow: handler runs, then Ack). Events staged after the snapshot was
// taken are not included; callers pause live delivery around Replay to
// make the handoff seamless.
func (ib *Inbox) Replay(durableID string, fn func(eventID, origin string, payload []byte) error) error {
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return ErrLogClosed
	}
	cs, ok := ib.cursors[durableID]
	if !ok {
		ib.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownCursor, durableID)
	}
	from := cs.frontier + 1
	sparse := make(map[uint64]bool, len(cs.sparse))
	for off := range cs.sparse {
		sparse[off] = true
	}
	ib.mu.Unlock()

	return ib.data.ReadFrom(from, func(off uint64, rec []byte) error {
		if sparse[off] {
			return nil
		}
		id, rest, err := takeBlob(rec)
		if err != nil {
			return fmt.Errorf("durable: inbox data record %d: %w", off, err)
		}
		origin, payload, err := takeBlob(rest)
		if err != nil {
			return fmt.Errorf("durable: inbox data record %d: %w", off, err)
		}
		ib.mu.Lock()
		ib.replayed++
		ib.mu.Unlock()
		return fn(string(id), string(origin), payload)
	})
}

// Compact drops data segments every cursor has fully acknowledged and
// snapshots the cursor state into the ack log. With no cursors, all
// sealed segments are droppable — nobody is owed anything.
func (ib *Inbox) Compact() error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return ErrLogClosed
	}
	frontier := ib.data.NextOffset() - 1
	for _, cs := range ib.cursors {
		if cs.frontier < frontier {
			frontier = cs.frontier
		}
	}
	if _, _, err := ib.data.Compact(frontier + 1); err != nil {
		return err
	}
	snap := encodeCursorSnapshot(ib.cursors)
	snapOff, err := ib.acks.Append(snap)
	if err != nil {
		return err
	}
	if err := ib.acks.Roll(); err != nil {
		return err
	}
	_, _, err = ib.acks.Compact(snapOff)
	return err
}

// InboxStats are an Inbox's counters.
type InboxStats struct {
	Staged    uint64
	StageDups uint64
	Acked     uint64
	Replayed  uint64
	Data      SegmentStats
	Acks      SegmentStats
}

// Stats returns the inbox counters.
func (ib *Inbox) Stats() InboxStats {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return InboxStats{
		Staged:    ib.staged,
		StageDups: ib.stageDups,
		Acked:     ib.acked,
		Replayed:  ib.replayed,
		Data:      ib.data.Stats(),
		Acks:      ib.acks.Stats(),
	}
}

// Close closes both logs. The inbox must not be used afterwards.
func (ib *Inbox) Close() error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return nil
	}
	ib.closed = true
	err := ib.data.Close()
	if aerr := ib.acks.Close(); err == nil {
		err = aerr
	}
	return err
}
