package durable

import (
	"errors"
	"fmt"
	"log/slog"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNoDurability reports a durable operation on a domain opened
// without WithDurability.
var ErrNoDurability = errors.New("durable: domain has no durability directory")

// ErrDurableConflict reports a durable subscription ID already active
// in this process — durable identity is exclusive while live (§3.4.1).
var ErrDurableConflict = errors.New("durable: durable ID already active")

// Config tunes a Manager.
type Config struct {
	// Dir is the durability root; each class gets a subdirectory.
	Dir string
	// SegmentBytes is the per-log segment roll threshold (0 = default).
	SegmentBytes int64
	// Sync is the fsync policy for every log under the manager.
	Sync SyncPolicy
	// Logger receives recovery diagnostics. Nil discards.
	Logger *slog.Logger
}

// Stats aggregates durability counters across every class.
type Stats struct {
	// Classes is the number of classes with durable state on disk.
	Classes int
	// Segments, Records and Bytes sum across all segment logs.
	Segments int
	Records  uint64
	Bytes    int64
	// TornTails counts torn tail records truncated during recovery.
	TornTails uint64
	// Appends and Syncs sum the low-level log operations.
	Appends uint64
	Syncs   uint64
	// SegmentsCompacted counts segments dropped by compaction;
	// ReclaimedRecords and ReclaimedBytes sum the records and on-disk
	// bytes those segments held — the space compaction (manual or the
	// retention ticker) gave back over this process's lifetime.
	SegmentsCompacted uint64
	ReclaimedRecords  uint64
	ReclaimedBytes    int64
	// Staged, StageDups, Acked and Replayed sum the inbox flow: events
	// staged for durable delivery, duplicate arrivals suppressed,
	// deliveries durably acknowledged, and events replayed to resuming
	// durable subscriptions.
	Staged    uint64
	StageDups uint64
	Acked     uint64
	Replayed  uint64
}

// classState is the lazily opened per-class pair.
type classState struct {
	outbox *Outbox
	inbox  *Inbox
}

// Manager owns the durable state of one domain: per-class outboxes
// (publisher-side certified entries) and inboxes (subscriber-side
// staged deliveries and cursors), each under
// dir/<escaped class>/{outbox-data,outbox-meta,inbox-data,inbox-acks}.
type Manager struct {
	cfg Config
	log *slog.Logger

	mu      sync.Mutex
	classes map[string]*classState
	known   map[string]bool // classes with a directory on disk
	closed  bool
}

// Open opens the durability root, creating it if needed, and indexes
// the classes that already have state (their logs open lazily).
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("durable: empty durability directory")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", cfg.Dir, err)
	}
	m := &Manager{
		cfg:     cfg,
		log:     cfg.Logger,
		classes: make(map[string]*classState),
		known:   make(map[string]bool),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scan %s: %w", cfg.Dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		class, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // foreign directory; leave it alone
		}
		m.known[class] = true
	}
	return m, nil
}

// classDir returns the directory for one class's state.
func (m *Manager) classDir(class string) string {
	return filepath.Join(m.cfg.Dir, url.PathEscape(class))
}

// segCfg renders the per-log segment config.
func (m *Manager) segCfg() SegmentConfig {
	return SegmentConfig{SegmentBytes: m.cfg.SegmentBytes, Sync: m.cfg.Sync, Logger: m.log}
}

// stateFor opens (or returns) the class's outbox+inbox pair.
func (m *Manager) stateFor(class string) (*classState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrLogClosed
	}
	if cs, ok := m.classes[class]; ok {
		return cs, nil
	}
	dir := m.classDir(class)
	outbox, err := OpenOutbox(
		filepath.Join(dir, "outbox-data"), filepath.Join(dir, "outbox-meta"), m.segCfg())
	if err != nil {
		return nil, err
	}
	inbox, err := OpenInbox(
		filepath.Join(dir, "inbox-data"), filepath.Join(dir, "inbox-acks"), m.segCfg())
	if err != nil {
		_ = outbox.Close()
		return nil, err
	}
	cs := &classState{outbox: outbox, inbox: inbox}
	m.classes[class] = cs
	m.known[class] = true
	return cs, nil
}

// OutboxFor returns the class's outbox, opening it on first use.
func (m *Manager) OutboxFor(class string) (*Outbox, error) {
	cs, err := m.stateFor(class)
	if err != nil {
		return nil, err
	}
	return cs.outbox, nil
}

// InboxFor returns the class's inbox, opening it on first use.
func (m *Manager) InboxFor(class string) (*Inbox, error) {
	cs, err := m.stateFor(class)
	if err != nil {
		return nil, err
	}
	return cs.inbox, nil
}

// AckDelivered durably acknowledges one delivered event for a durable
// subscription; class must be the event's concrete class. The cursor
// is created on first use: a certified class that appears after the
// durable subscription resumed starts being owed events from its first
// live delivery onward (the delivery being acknowledged was just made,
// so it lands at or before the fresh cursor and the ack is a no-op).
func (m *Manager) AckDelivered(class, durableID, eventID string) error {
	cs, err := m.stateFor(class)
	if err != nil {
		return err
	}
	if !cs.inbox.HasCursor(durableID) {
		if _, err := cs.inbox.EnsureCursor(durableID); err != nil {
			return err
		}
	}
	return cs.inbox.Ack(durableID, eventID)
}

// Classes returns every class with durable state, sorted.
func (m *Manager) Classes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.known))
	for c := range m.known {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// openStates snapshots the open class states.
func (m *Manager) openStates() map[string]*classState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*classState, len(m.classes))
	for c, cs := range m.classes {
		out[c] = cs
	}
	return out
}

// Compact runs snapshot+compact on every open class: outbox GC drops
// fully-acknowledged publisher entries, inbox compaction drops staged
// events every cursor has consumed. Classes never touched this run are
// left as-is on disk.
func (m *Manager) Compact() error {
	var firstErr error
	for class, cs := range m.openStates() {
		if _, err := cs.outbox.GC(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("durable: compact outbox %s: %w", class, err)
		}
		if err := cs.inbox.Compact(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("durable: compact inbox %s: %w", class, err)
		}
	}
	return firstErr
}

// Stats aggregates counters across every open class plus the on-disk
// class count.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	known := len(m.known)
	m.mu.Unlock()
	st := Stats{Classes: known}
	for _, cs := range m.openStates() {
		od, om := cs.outbox.Stats()
		ist := cs.inbox.Stats()
		for _, s := range []SegmentStats{od, om, ist.Data, ist.Acks} {
			st.Segments += s.Segments
			st.Records += s.Records
			st.Bytes += s.Bytes
			st.TornTails += s.TornTails
			st.Appends += s.Appends
			st.Syncs += s.Syncs
			st.SegmentsCompacted += s.Compacted
			st.ReclaimedRecords += s.ReclaimedRecords
			st.ReclaimedBytes += s.ReclaimedBytes
		}
		st.Staged += ist.Staged
		st.StageDups += ist.StageDups
		st.Acked += ist.Acked
		st.Replayed += ist.Replayed
	}
	return st
}

// Close closes every open class's logs. The manager must not be used
// afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	classes := m.classes
	m.classes = nil
	m.mu.Unlock()
	var firstErr error
	for class, cs := range classes {
		if err := cs.outbox.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("durable: close outbox %s: %w", class, err)
		}
		if err := cs.inbox.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("durable: close inbox %s: %w", class, err)
		}
	}
	return firstErr
}
