package durable

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"govents/internal/store"
)

// Outbox is the publisher-side certified-delivery state for one class,
// persisted across crash-restart: a data segment log of published
// entries plus a meta segment log of consumer registrations and
// acknowledgements. It implements store.Log, so it drops into the
// certified multicast protocol where MemLog sits today — the difference
// is that a restarted publisher still owes its durable subscribers
// everything they have not acknowledged (paper §3.1.2).
type Outbox struct {
	data *SegmentLog
	meta *SegmentLog
	log  *slog.Logger

	mu        sync.Mutex
	offsets   []uint64 // live entry offsets, ascending
	entries   map[uint64]store.Entry
	byID      map[string]uint64
	consumers map[string]map[uint64]bool // consumer -> acked offsets
	closed    bool
}

var _ store.Log = (*Outbox)(nil)

// Meta-log record kinds.
const (
	metaRegister   = 1 // [blob consumer]
	metaUnregister = 2 // [blob consumer]
	metaAck        = 3 // [blob consumer][u64 offset]
	metaSnapshot   = 4 // full consumer/ack state; resets replay
)

// OpenOutbox opens (or creates) the outbox under dataDir/metaDir,
// replaying both logs to rebuild the pending state.
func OpenOutbox(dataDir, metaDir string, cfg SegmentConfig) (*Outbox, error) {
	data, err := OpenSegmentLog(dataDir, cfg)
	if err != nil {
		return nil, err
	}
	meta, err := OpenSegmentLog(metaDir, cfg)
	if err != nil {
		_ = data.Close()
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	o := &Outbox{
		data:      data,
		meta:      meta,
		log:       logger,
		entries:   make(map[uint64]store.Entry),
		byID:      make(map[string]uint64),
		consumers: make(map[string]map[uint64]bool),
	}
	if err := o.replay(); err != nil {
		_ = data.Close()
		_ = meta.Close()
		return nil, err
	}
	return o, nil
}

// replay rebuilds in-memory state from the two logs. Data first, then
// meta: acks reference data offsets, and an ack for an offset that was
// compacted away is simply below every live offset and harmless.
func (o *Outbox) replay() error {
	err := o.data.ReadFrom(o.data.FirstOffset(), func(off uint64, rec []byte) error {
		id, payload, err := takeBlob(rec)
		if err != nil {
			return fmt.Errorf("durable: outbox data record %d: %w", off, err)
		}
		e := store.Entry{ID: string(id), Payload: append([]byte(nil), payload...)}
		o.offsets = append(o.offsets, off)
		o.entries[off] = e
		o.byID[e.ID] = off
		return nil
	})
	if err != nil {
		return err
	}
	return o.meta.ReadFrom(o.meta.FirstOffset(), func(off uint64, rec []byte) error {
		if err := o.applyMeta(rec); err != nil {
			return fmt.Errorf("durable: outbox meta record %d: %w", off, err)
		}
		return nil
	})
}

// applyMeta applies one meta record during replay.
func (o *Outbox) applyMeta(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("empty record")
	}
	kind, rest := rec[0], rec[1:]
	switch kind {
	case metaRegister:
		name, _, err := takeBlob(rest)
		if err != nil {
			return err
		}
		if _, ok := o.consumers[string(name)]; !ok {
			o.consumers[string(name)] = make(map[uint64]bool)
		}
	case metaUnregister:
		name, _, err := takeBlob(rest)
		if err != nil {
			return err
		}
		delete(o.consumers, string(name))
	case metaAck:
		name, rest, err := takeBlob(rest)
		if err != nil {
			return err
		}
		off, _, err := takeUint64(rest)
		if err != nil {
			return err
		}
		if acked, ok := o.consumers[string(name)]; ok {
			acked[off] = true
		}
	case metaSnapshot:
		cs, err := decodeConsumerSnapshot(rest)
		if err != nil {
			return err
		}
		o.consumers = cs
	default:
		return fmt.Errorf("unknown meta kind %d", kind)
	}
	return nil
}

// encodeConsumerSnapshot serialises the full consumer/ack state.
func encodeConsumerSnapshot(consumers map[string]map[uint64]bool) []byte {
	names := make([]string, 0, len(consumers))
	for n := range consumers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := []byte{metaSnapshot}
	out = appendUint32(out, uint32(len(names)))
	for _, n := range names {
		out = appendBlob(out, []byte(n))
		acked := consumers[n]
		offs := make([]uint64, 0, len(acked))
		for off := range acked {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		out = appendUint32(out, uint32(len(offs)))
		for _, off := range offs {
			out = appendUint64(out, off)
		}
	}
	return out
}

// decodeConsumerSnapshot is the inverse of encodeConsumerSnapshot
// (minus the kind byte, already consumed).
func decodeConsumerSnapshot(rec []byte) (map[string]map[uint64]bool, error) {
	n, rec, err := takeUint32(rec)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[uint64]bool, n)
	for range n {
		var name []byte
		name, rec, err = takeBlob(rec)
		if err != nil {
			return nil, err
		}
		var cnt uint32
		cnt, rec, err = takeUint32(rec)
		if err != nil {
			return nil, err
		}
		acked := make(map[uint64]bool, cnt)
		for range cnt {
			var off uint64
			off, rec, err = takeUint64(rec)
			if err != nil {
				return nil, err
			}
			acked[off] = true
		}
		out[string(name)] = acked
	}
	return out, nil
}

// Append implements store.Log: idempotent by entry ID.
func (o *Outbox) Append(e store.Entry) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return ErrLogClosed
	}
	if _, ok := o.byID[e.ID]; ok {
		return nil
	}
	rec := appendBlob(nil, []byte(e.ID))
	rec = append(rec, e.Payload...)
	off, err := o.data.Append(rec)
	if err != nil {
		return err
	}
	cp := store.Entry{ID: e.ID, Payload: append([]byte(nil), e.Payload...)}
	o.offsets = append(o.offsets, off)
	o.entries[off] = cp
	o.byID[e.ID] = off
	return nil
}

// RegisterConsumer implements store.Log: idempotent, and a known
// consumer costs no meta write.
func (o *Outbox) RegisterConsumer(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return ErrLogClosed
	}
	if _, ok := o.consumers[id]; ok {
		return nil
	}
	rec := append([]byte{metaRegister}, appendBlob(nil, []byte(id))...)
	if _, err := o.meta.Append(rec); err != nil {
		return err
	}
	o.consumers[id] = make(map[uint64]bool)
	return nil
}

// UnregisterConsumer implements store.Log.
func (o *Outbox) UnregisterConsumer(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return ErrLogClosed
	}
	if _, ok := o.consumers[id]; !ok {
		return nil
	}
	rec := append([]byte{metaUnregister}, appendBlob(nil, []byte(id))...)
	if _, err := o.meta.Append(rec); err != nil {
		return err
	}
	delete(o.consumers, id)
	return nil
}

// Consumers implements store.Log.
func (o *Outbox) Consumers() ([]string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.consumers))
	for id := range o.consumers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Ack implements store.Log. Acknowledging an unknown (or already
// compacted) entry is a no-op, mirroring MemLog's tolerance; an unknown
// consumer is an error.
func (o *Outbox) Ack(consumer, entryID string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return ErrLogClosed
	}
	acked, ok := o.consumers[consumer]
	if !ok {
		return fmt.Errorf("%w: %q", store.ErrUnknownConsumer, consumer)
	}
	off, ok := o.byID[entryID]
	if !ok || acked[off] {
		return nil
	}
	rec := appendBlob([]byte{metaAck}, []byte(consumer))
	rec = appendUint64(rec, off)
	if _, err := o.meta.Append(rec); err != nil {
		return err
	}
	acked[off] = true
	return nil
}

// Pending implements store.Log: in append (offset) order.
func (o *Outbox) Pending(consumer string) ([]store.Entry, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	acked, ok := o.consumers[consumer]
	if !ok {
		return nil, fmt.Errorf("%w: %q", store.ErrUnknownConsumer, consumer)
	}
	var out []store.Entry
	for _, off := range o.offsets {
		if !acked[off] {
			e := o.entries[off]
			out = append(out, store.Entry{ID: e.ID, Payload: append([]byte(nil), e.Payload...)})
		}
	}
	return out, nil
}

// GC implements store.Log: the snapshot+compact step. It computes the
// contiguous fully-acknowledged frontier, drops whole data segments
// below it, then snapshots the consumer state into the meta log and
// compacts the meta history behind the snapshot. Dropping is
// segment-granular, so GC may retire fewer entries than are eligible —
// the remainder go in a later pass once their segment seals.
func (o *Outbox) GC() (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return 0, ErrLogClosed
	}
	if len(o.consumers) == 0 {
		return 0, nil // nobody registered: retain everything
	}
	// Contiguous frontier: every offset <= frontier acked by all.
	frontier := o.data.FirstOffset() - 1
	for _, off := range o.offsets {
		ackedByAll := true
		for _, acked := range o.consumers {
			if !acked[off] {
				ackedByAll = false
				break
			}
		}
		if !ackedByAll || off != frontier+1 {
			break
		}
		frontier = off
	}
	_, records, err := o.data.Compact(frontier + 1)
	if err != nil {
		return 0, err
	}
	// Prune memory to match disk, so a restart reconstructs the same
	// state the live process holds.
	newFirst := o.data.FirstOffset()
	dropped := 0
	for len(o.offsets) > 0 && o.offsets[0] < newFirst {
		off := o.offsets[0]
		delete(o.byID, o.entries[off].ID)
		delete(o.entries, off)
		for _, acked := range o.consumers {
			delete(acked, off)
		}
		o.offsets = o.offsets[1:]
		dropped++
	}
	if uint64(dropped) != records {
		// Disk and memory disagree on what was dropped; loud but
		// non-fatal — the durable state on disk is authoritative.
		o.log.Warn("durable: outbox GC drop mismatch", "disk", records, "memory", dropped)
	}
	// Snapshot consumer state so the meta log does not grow without
	// bound; everything before the snapshot is then redundant.
	snap := encodeConsumerSnapshot(o.consumers)
	snapOff, err := o.meta.Append(snap)
	if err != nil {
		return dropped, err
	}
	if err := o.meta.Roll(); err != nil {
		return dropped, err
	}
	if _, _, err := o.meta.Compact(snapOff); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// Stats returns the underlying segment-log counters (data, meta).
func (o *Outbox) Stats() (data, meta SegmentStats) {
	return o.data.Stats(), o.meta.Stats()
}

// Len returns the number of live entries (test aid, mirrors MemLog).
func (o *Outbox) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.offsets)
}

// Close implements store.Log.
func (o *Outbox) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil
	}
	o.closed = true
	err := o.data.Close()
	if merr := o.meta.Close(); err == nil {
		err = merr
	}
	return err
}
