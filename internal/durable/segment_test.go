package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect reads every record with offset >= from into a map.
func collect(t *testing.T, l *SegmentLog, from uint64) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	if err := l.ReadFrom(from, func(off uint64, data []byte) error {
		out[off] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return out
}

func TestSegmentLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := range 20 {
		rec := []byte(fmt.Sprintf("record-%d", i))
		off, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got := uint64(i + 1); off != got {
			t.Fatalf("offset = %d, want %d", off, got)
		}
		want = append(want, rec)
	}
	check := func(l *SegmentLog) {
		t.Helper()
		got := collect(t, l, 1)
		if len(got) != len(want) {
			t.Fatalf("got %d records, want %d", len(got), len(want))
		}
		for i, rec := range want {
			if !bytes.Equal(got[uint64(i+1)], rec) {
				t.Fatalf("record %d = %q, want %q", i+1, got[uint64(i+1)], rec)
			}
		}
	}
	check(l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: same contents, offsets continue.
	l, err = OpenSegmentLog(dir, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	check(l)
	if got := l.NextOffset(); got != 21 {
		t.Fatalf("NextOffset after reopen = %d, want 21", got)
	}
}

func TestSegmentLogRollAndCompact(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record (plus frame) overflows 1 byte, so
	// each record lands in its own segment.
	l, err := OpenSegmentLog(dir, SegmentConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := range 5 {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments != 5 {
		t.Fatalf("segments = %d, want 5", st.Segments)
	}
	segs, recs, err := l.Compact(4) // drop offsets 1..3
	if err != nil {
		t.Fatal(err)
	}
	if segs != 3 || recs != 3 {
		t.Fatalf("Compact dropped %d segs / %d recs, want 3/3", segs, recs)
	}
	if got := l.FirstOffset(); got != 4 {
		t.Fatalf("FirstOffset = %d, want 4", got)
	}
	got := collect(t, l, 1)
	if len(got) != 2 || got[4] == nil || got[5] == nil {
		t.Fatalf("post-compact records = %v", got)
	}
	// The active segment is never dropped, even when eligible.
	if _, _, err := l.Compact(100); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after full compact = %d, want the active 1", st.Segments)
	}
}

func TestSegmentLogCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir, SegmentConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := l.Compact(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenSegmentLog(dir, SegmentConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.FirstOffset(); got != 3 {
		t.Fatalf("FirstOffset after reopen = %d, want 3", got)
	}
	if got := l.NextOffset(); got != 5 {
		t.Fatalf("NextOffset after reopen = %d, want 5", got)
	}
}

// TestSegmentLogTornTailEveryByte is the property test for torn-write
// recovery at the segment layer: truncating the final segment at every
// byte offset inside the final record must still open, replaying the
// longest valid prefix.
func TestSegmentLogTornTailEveryByte(t *testing.T) {
	base := t.TempDir()
	// Build a reference log once to learn the file layout.
	refDir := filepath.Join(base, "ref")
	l, err := OpenSegmentLog(refDir, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	records := [][]byte{
		[]byte("alpha"), []byte("beta-beta"), []byte("gamma!"), []byte("the final record"),
	}
	for _, rec := range records {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segFile := segPath(refDir, 1)
	full, err := os.ReadFile(segFile)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeader + len(records[len(records)-1])
	goodBytes := len(full) - lastFrame

	for cut := goodBytes; cut < len(full); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(dir, 1), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenSegmentLog(dir, SegmentConfig{})
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		got := collect(t, l, 1)
		if len(got) != len(records)-1 {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), len(records)-1)
		}
		for i, rec := range records[:len(records)-1] {
			if !bytes.Equal(got[uint64(i+1)], rec) {
				t.Fatalf("cut at %d: record %d = %q, want %q", cut, i+1, got[uint64(i+1)], rec)
			}
		}
		// A cut exactly on the frame boundary is a clean EOF (the final
		// record simply never made it to disk); any cut inside the
		// frame is a torn tail and must be counted.
		wantTorn := uint64(1)
		if cut == goodBytes {
			wantTorn = 0
		}
		if st := l.Stats(); st.TornTails != wantTorn {
			t.Fatalf("cut at %d: TornTails = %d, want %d", cut, st.TornTails, wantTorn)
		}
		// The log must accept appends after recovery, reusing the
		// truncated record's offset.
		off, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if off != uint64(len(records)) {
			t.Fatalf("cut at %d: post-recovery offset = %d, want %d", cut, off, len(records))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// A flipped byte in the interior of a sealed segment is corruption, not
// a torn tail: Open must refuse rather than silently drop records.
func TestSegmentLogInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir, SegmentConfig{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 3 {
		if _, err := l.Append([]byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first (sealed, non-final) segment's record body.
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentLog(dir, SegmentConfig{}); err == nil {
		t.Fatal("Open accepted interior corruption")
	}
}

func TestSegmentLogSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch} {
		dir := t.TempDir()
		l, err := OpenSegmentLog(dir, SegmentConfig{Sync: policy})
		if err != nil {
			t.Fatal(err)
		}
		for i := range 10 {
			if _, err := l.Append([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		st := l.Stats()
		if policy == SyncAlways && st.Syncs != 10 {
			t.Fatalf("SyncAlways: %d syncs for 10 appends", st.Syncs)
		}
		if policy == SyncBatch && st.Syncs != 0 {
			t.Fatalf("SyncBatch: %d syncs before any barrier", st.Syncs)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
