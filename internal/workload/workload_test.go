package workload

import (
	"testing"

	"govents/internal/filter"
	"govents/internal/obvent"
)

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewQuoteGen(7, 50), NewQuoteGen(7, 50)
	for i := 0; i < 100; i++ {
		qa, qb := a.Next(), b.Next()
		if qa != qb {
			t.Fatalf("iteration %d: %+v vs %+v", i, qa, qb)
		}
	}
}

func TestQuoteRanges(t *testing.T) {
	g := NewQuoteGen(1, 20)
	for i := 0; i < 1000; i++ {
		q := g.Next()
		if q.Price < 1 || q.Price >= 1000 {
			t.Fatalf("price out of range: %v", q.Price)
		}
		if q.Amount < 1 || q.Amount > 100 {
			t.Fatalf("amount out of range: %v", q.Amount)
		}
		if q.Company == "" {
			t.Fatal("empty company")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewQuoteGen(3, 100)
	counts := make(map[string]int)
	for i := 0; i < 5000; i++ {
		counts[g.Next().Company]++
	}
	// The most popular company must dominate a uniform share by far.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000/100*5 {
		t.Errorf("top company count %d suggests no Zipf skew", max)
	}
}

func TestInterestFilterAgreesWithOracle(t *testing.T) {
	g := NewQuoteGen(11, 30)
	specs := g.Interests(20)
	for _, spec := range specs {
		f := spec.Filter()
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid filter: %v", err)
		}
		for i := 0; i < 50; i++ {
			q := g.Next()
			got, err := filter.Evaluate(f, q)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if got != spec.Matches(q) {
				t.Fatalf("filter and oracle disagree on %+v for %+v", q, spec)
			}
		}
	}
}

func TestQoSVariantsResolve(t *testing.T) {
	tests := []struct {
		o   obvent.Obvent
		rel obvent.Reliability
		ord obvent.Ordering
	}{
		{StockQuote{}, obvent.Unreliable, obvent.NoOrder},
		{QuoteReliable{}, obvent.ReliableDelivery, obvent.NoOrder},
		{QuoteFIFO{}, obvent.ReliableDelivery, obvent.FIFO},
		{QuoteCausal{}, obvent.ReliableDelivery, obvent.Causal},
		{QuoteTotal{}, obvent.ReliableDelivery, obvent.Total},
		{QuoteCertified{}, obvent.CertifiedDelivery, obvent.NoOrder},
	}
	for _, tt := range tests {
		s := obvent.Resolve(tt.o)
		if s.Reliability != tt.rel || s.Ordering != tt.ord {
			t.Errorf("%T resolved to %v", tt.o, s)
		}
	}
}

func TestRegisterTypesSubtypeClosure(t *testing.T) {
	reg := obvent.NewRegistry()
	RegisterTypes(reg)
	spot := obvent.TypeName(obvent.TypeOf[SpotPrice]())
	base := obvent.TypeName(obvent.TypeOf[StockObvent]())
	if !reg.ConformsTo(spot, base) {
		t.Error("SpotPrice should conform to StockObvent")
	}
}
