// Package workload provides the synthetic workloads driving the
// benchmark harness: stock-quote streams in the mold of the paper's
// recurring stock-trade example (§2.1.3), Zipf-distributed subscriber
// interests, and obvent types spanning the full QoS lattice for the
// delivery-semantics experiments.
//
// The paper reports no quantitative workloads of its own (its
// evaluation is qualitative); these generators are the synthetic
// substitute, with seeds fixed so every run is reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"govents/internal/filter"
	"govents/internal/obvent"
)

// StockObvent is the root of the benchmark obvent hierarchy (paper
// Figure 2), with accessor methods so that migratable filters preserve
// encapsulation (LP2).
type StockObvent struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

// GetCompany returns the quoted company.
func (s StockObvent) GetCompany() string { return s.Company }

// GetPrice returns the quoted price.
func (s StockObvent) GetPrice() float64 { return s.Price }

// GetAmount returns the quoted amount.
func (s StockObvent) GetAmount() int { return s.Amount }

// StockQuote is a published quote (unreliable delivery by default).
type StockQuote struct {
	StockObvent
}

// StockRequest is a purchase request (paper Figure 1).
type StockRequest struct {
	StockObvent
}

// SpotPrice is a request to be satisfied immediately.
type SpotPrice struct {
	StockRequest
}

// MarketPrice is a request pending until a criterion is met.
type MarketPrice struct {
	StockRequest
}

// QoS-composed variants of the quote, one per delivery semantics, for
// the C2 experiment (cost of semantics).

// QuoteReliable requests reliable delivery.
type QuoteReliable struct {
	obvent.Base
	obvent.ReliableBase
	StockObvent
}

// QuoteFIFO requests FIFO order.
type QuoteFIFO struct {
	obvent.Base
	obvent.FIFOOrderBase
	StockObvent
}

// QuoteCausal requests causal order.
type QuoteCausal struct {
	obvent.Base
	obvent.CausalOrderBase
	StockObvent
}

// QuoteTotal requests total order.
type QuoteTotal struct {
	obvent.Base
	obvent.TotalOrderBase
	StockObvent
}

// QuoteCertified requests certified delivery.
type QuoteCertified struct {
	obvent.Base
	obvent.CertifiedBase
	StockObvent
}

// RegisterTypes registers the full benchmark hierarchy in a registry.
func RegisterTypes(reg *obvent.Registry) {
	reg.MustRegister(StockObvent{})
	reg.MustRegister(StockQuote{})
	reg.MustRegister(StockRequest{})
	reg.MustRegister(SpotPrice{})
	reg.MustRegister(MarketPrice{})
	reg.MustRegister(QuoteReliable{})
	reg.MustRegister(QuoteFIFO{})
	reg.MustRegister(QuoteCausal{})
	reg.MustRegister(QuoteTotal{})
	reg.MustRegister(QuoteCertified{})
}

// QuoteGen produces a deterministic quote stream.
type QuoteGen struct {
	rng       *rand.Rand
	companies []string
	zipf      *rand.Zipf
}

// NewQuoteGen returns a generator over nCompanies tickers with a Zipf
// popularity skew (s=1.2), seeded for reproducibility.
func NewQuoteGen(seed int64, nCompanies int) *QuoteGen {
	if nCompanies < 1 {
		nCompanies = 1
	}
	rng := rand.New(rand.NewSource(seed))
	companies := make([]string, nCompanies)
	for i := range companies {
		companies[i] = fmt.Sprintf("Company-%03d", i)
	}
	return &QuoteGen{
		rng:       rng,
		companies: companies,
		zipf:      rand.NewZipf(rng, 1.2, 1, uint64(nCompanies-1)),
	}
}

// Companies returns the ticker universe.
func (g *QuoteGen) Companies() []string {
	out := make([]string, len(g.companies))
	copy(out, g.companies)
	return out
}

// Next produces the next quote: Zipf-popular company, log-uniform-ish
// price in [1, 1000), amount in [1, 100].
func (g *QuoteGen) Next() StockQuote {
	c := g.companies[g.zipf.Uint64()]
	price := 1 + g.rng.Float64()*999
	return StockQuote{StockObvent{
		Company: c,
		Price:   float64(int(price*100)) / 100,
		Amount:  1 + g.rng.Intn(100),
	}}
}

// InterestSpec describes one subscriber's interest: a company and a
// price ceiling (the paper's §2.3.3 example filter shape).
type InterestSpec struct {
	Company  string
	MaxPrice float64
}

// Interests draws n subscriber interests: Zipf-popular companies (so
// filters overlap heavily, the factoring-friendly regime of [ASS+99])
// and uniformly random price ceilings.
func (g *QuoteGen) Interests(n int) []InterestSpec {
	out := make([]InterestSpec, n)
	for i := range out {
		out[i] = InterestSpec{
			Company:  g.companies[g.zipf.Uint64()],
			MaxPrice: 50 + g.rng.Float64()*950,
		}
	}
	return out
}

// Filter renders an interest as a migratable filter expression:
// GetPrice < MaxPrice && GetCompany == Company.
func (s InterestSpec) Filter() *filter.Expr {
	return filter.And(
		filter.Path("GetPrice").Lt(filter.Float(s.MaxPrice)),
		filter.Path("GetCompany").Eq(filter.Str(s.Company)),
	)
}

// Matches reports whether a quote satisfies the interest (the oracle
// used to validate deliveries in benches).
func (s InterestSpec) Matches(q StockQuote) bool {
	return q.Price < s.MaxPrice && q.Company == s.Company
}
