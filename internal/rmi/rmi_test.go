package rmi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"govents/internal/netsim"
)

// stockMarket is the paper's Figure 8 remote object.
type stockMarket struct {
	mu     sync.Mutex
	bought []string
}

func (m *stockMarket) Buy(company string, price float64, amount int, buyer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bought = append(m.bought, fmt.Sprintf("%s:%g:%d:%s", company, price, amount, buyer))
	return true
}

func (m *stockMarket) Quote(company string) (float64, error) {
	if company == "" {
		return 0, errors.New("unknown company")
	}
	return 42.5, nil
}

func (m *stockMarket) Purchases() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.bought)
}

func newPair(t *testing.T, netCfg netsim.Config, opts Options) (*Runtime, *Runtime, *netsim.Network) {
	t.Helper()
	net := netsim.New(netCfg)
	srvEp, err := net.NewEndpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cliEp, err := net.NewEndpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(srvEp, opts)
	cli := New(cliEp, opts)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = cli.Close()
		_ = net.Close()
	})
	return srv, cli, net
}

func TestBasicCall(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{}, Options{})
	market := &stockMarket{}
	if err := srv.Bind("market", market); err != nil {
		t.Fatal(err)
	}
	p := cli.Dial("server", "market")
	var ok bool
	if err := p.Call("Buy", []any{"Telco", 80.0, 10, "broker-1"}, &ok); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !ok || market.Purchases() != 1 {
		t.Errorf("ok=%v purchases=%d", ok, market.Purchases())
	}
}

func TestCallWithErrorResult(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{}, Options{})
	if err := srv.Bind("market", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	p := cli.Dial("server", "market")

	var price float64
	if err := p.Call("Quote", []any{"Telco"}, &price); err != nil {
		t.Fatal(err)
	}
	if price != 42.5 {
		t.Errorf("price = %v", price)
	}
	if err := p.Call("Quote", []any{""}, &price); err == nil || err.Error() != "unknown company" {
		t.Errorf("remote error = %v", err)
	}
}

func TestCallErrors(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{}, Options{CallTimeout: 300 * time.Millisecond})
	if err := srv.Bind("market", &stockMarket{}); err != nil {
		t.Fatal(err)
	}

	p := cli.Dial("server", "ghost")
	if err := p.Call("Buy", nil); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("unknown object err = %v", err)
	}

	p = cli.Dial("server", "market")
	if err := p.Call("NoSuchMethod", nil); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("unknown method err = %v", err)
	}
	if err := p.Call("Buy", []any{"only-one-arg"}); !errors.Is(err, ErrBadArguments) {
		t.Errorf("bad arity err = %v", err)
	}
}

func TestCallTimeoutOnLoss(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{LossRate: 1.0}, Options{CallTimeout: 100 * time.Millisecond})
	if err := srv.Bind("market", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	p := cli.Dial("server", "market")
	if err := p.Call("Purchases", nil); !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{MaxLatency: 2 * time.Millisecond}, Options{})
	market := &stockMarket{}
	if err := srv.Bind("market", market); err != nil {
		t.Fatal(err)
	}
	p := cli.Dial("server", "market")
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ok bool
			if err := p.Call("Buy", []any{"T", float64(i), i, "b"}, &ok); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if market.Purchases() != 20 {
		t.Errorf("purchases = %d", market.Purchases())
	}
}

func TestBindErrors(t *testing.T) {
	srv, _, _ := newPair(t, netsim.Config{}, Options{})
	if err := srv.Bind("x", nil); err == nil {
		t.Error("nil receiver must fail")
	}
	if err := srv.Bind("m", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind("m", &stockMarket{}); err == nil {
		t.Error("duplicate bind must fail")
	}
}

func TestRefResolve(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{}, Options{})
	if err := srv.Bind("market", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	ref := srv.RefTo("market") // the value an obvent would carry
	p := cli.Resolve(ref)
	var n int
	if err := p.Call("Purchases", nil, &n); err != nil {
		t.Fatal(err)
	}
}

func TestDGCCaveatPinnedMode(t *testing.T) {
	// Paper §5.4.2: with RMI-style DGC, "if a single subscriber
	// crashes, the remote object will never be garbage collected."
	opts := Options{DGC: DGCPinned, LeaseDuration: 40 * time.Millisecond}
	srv, cli, net := newPair(t, netsim.Config{}, opts)
	if err := srv.Export("session", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	_ = cli.Dial("server", "session")
	time.Sleep(30 * time.Millisecond) // attach lands

	net.Crash("client") // subscriber crashes without releasing

	time.Sleep(200 * time.Millisecond) // many lease periods pass
	if !srv.Exported("session") {
		t.Fatal("pinned mode collected an object referenced by a crashed client; the paper's caveat should reproduce")
	}
}

func TestDGCLeasedCollectsAfterCrash(t *testing.T) {
	// The [CNH99]-style fix: leases from the crashed client expire and
	// the object is collected.
	opts := Options{DGC: DGCLeased, LeaseDuration: 40 * time.Millisecond}
	srv, cli, net := newPair(t, netsim.Config{}, opts)
	if err := srv.Export("session", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	_ = cli.Dial("server", "session")
	time.Sleep(30 * time.Millisecond)

	net.Crash("client")

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !srv.Exported("session") {
			return // collected
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("leased mode failed to collect after client crash")
}

func TestDGCLeasedRenewalKeepsAlive(t *testing.T) {
	opts := Options{DGC: DGCLeased, LeaseDuration: 60 * time.Millisecond}
	srv, cli, _ := newPair(t, netsim.Config{}, opts)
	if err := srv.Export("session", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	p := cli.Dial("server", "session")
	// Across several lease periods the renewal loop keeps it alive.
	time.Sleep(300 * time.Millisecond)
	if !srv.Exported("session") {
		t.Fatal("live proxy's lease expired despite renewals")
	}
	p.Release()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !srv.Exported("session") {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("object not collected after explicit release")
}

func TestAnchoredBindSurvivesGC(t *testing.T) {
	opts := Options{DGC: DGCLeased, LeaseDuration: 30 * time.Millisecond}
	srv, _, _ := newPair(t, netsim.Config{}, opts)
	if err := srv.Bind("registry-root", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if !srv.Exported("registry-root") {
		t.Fatal("anchored bind must never be collected")
	}
}

func TestUnbind(t *testing.T) {
	srv, cli, _ := newPair(t, netsim.Config{}, Options{CallTimeout: 300 * time.Millisecond})
	if err := srv.Bind("m", &stockMarket{}); err != nil {
		t.Fatal(err)
	}
	srv.Unbind("m")
	p := cli.Dial("server", "m")
	if err := p.Call("Purchases", nil); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("err = %v", err)
	}
}
