// Package rmi implements a remote-method-invocation substrate in the
// style of Java RMI, the interaction paradigm the paper positions as
// complementary to publish/subscribe (§5.4): "a combination of both
// represents a very powerful tool for devising distributed
// applications, e.g., by passing object references with obvents."
//
// A server Binds named receivers; clients Dial proxies and invoke
// methods by name with gob-encoded arguments (the reflection dispatch
// plays the part of rmic-generated skeletons). Ref values — serializable
// remote references — can travel inside obvents, enabling the paper's
// Figure 8 scenario where a stock quote carries a reference to the
// stock market on which a broker then synchronously buys.
//
// Distributed garbage collection is modeled both ways the paper
// discusses:
//
//   - DGCPinned reproduces the Java RMI caveat of §5.4.2: a remotely
//     accessible object is pinned while at least one proxy exists, so a
//     crashed subscriber holding a proxy pins the object forever.
//   - DGCLeased implements the "weaker" lease-based scheme of [CNH99]
//     that the paper suggests as the fix: proxies renew leases, and an
//     object whose leases all expire is collected.
package rmi

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"time"

	"govents/internal/codec"
	"govents/internal/netsim"
)

// Errors returned by remote invocations.
var (
	// ErrNoSuchObject reports an unknown (or collected) target.
	ErrNoSuchObject = errors.New("rmi: no such object")
	// ErrNoSuchMethod reports an unknown method on the target.
	ErrNoSuchMethod = errors.New("rmi: no such method")
	// ErrBadArguments reports an arity or type mismatch.
	ErrBadArguments = errors.New("rmi: bad arguments")
	// ErrTimeout reports a call that received no reply in time.
	ErrTimeout = errors.New("rmi: call timed out")
	// ErrClosed reports use of a closed runtime.
	ErrClosed = errors.New("rmi: closed")
)

// DGCMode selects the distributed garbage collection scheme.
type DGCMode int

const (
	// DGCPinned: an exported object lives while any proxy reference
	// exists; references from crashed clients are never reclaimed
	// (the Java RMI behavior the paper criticizes, §5.4.2).
	DGCPinned DGCMode = iota + 1
	// DGCLeased: proxy references expire unless renewed (the [CNH99]
	// remedy).
	DGCLeased
)

// Ref is a serializable remote reference: the value placed inside
// obvents when passing objects by reference (paper §5.4.1). Resolve it
// against a local Runtime to obtain an invocable Proxy.
type Ref struct {
	Addr string // server transport address
	Name string // exported object name
}

// wire message kinds.
type wireKind byte

const (
	kindCall wireKind = iota + 1
	kindResult
	kindAttach  // register interest in an exported object (DGC)
	kindRenew   // renew a lease
	kindRelease // drop a reference explicitly
)

// wireMsg is the single request/response record.
type wireMsg struct {
	Kind    wireKind
	ReqID   string
	Target  string
	Method  string
	Client  string
	Args    [][]byte
	Results [][]byte
	Err     string
}

// Options tunes a Runtime.
type Options struct {
	// DGC selects the garbage-collection scheme (default DGCLeased).
	DGC DGCMode
	// LeaseDuration is how long an unrenewed reference survives in
	// DGCLeased mode (default 200ms — short, for simulation scale).
	LeaseDuration time.Duration
	// RenewInterval is the client-side lease renewal period (default
	// LeaseDuration/4).
	RenewInterval time.Duration
	// CallTimeout bounds a synchronous invocation (default 5s).
	CallTimeout time.Duration
	// Logger receives runtime diagnostics that have no error-return
	// path (undecodable inbound messages). Nil means discard.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.DGC == 0 {
		o.DGC = DGCLeased
	}
	if o.LeaseDuration == 0 {
		o.LeaseDuration = 200 * time.Millisecond
	}
	if o.RenewInterval == 0 {
		o.RenewInterval = o.LeaseDuration / 4
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Runtime is one process's RMI endpoint: server (exported objects) and
// client (proxies) share the transport.
type Runtime struct {
	tr   netsim.Transport
	self string
	opts Options

	mu      sync.Mutex
	exports map[string]*export
	pending map[string]chan *wireMsg // reqID -> reply
	proxies map[string]*Proxy        // key addr+"/"+name
	closed  bool

	lc   sync.WaitGroup
	done chan struct{}
}

// export is one remotely accessible object.
type export struct {
	recv     reflect.Value
	anchored bool                 // Bind roots are never collected
	refs     map[string]time.Time // client -> last renewal
}

// New creates an RMI runtime over a transport endpoint.
func New(tr netsim.Transport, opts Options) *Runtime {
	r := &Runtime{
		tr:      tr,
		self:    tr.Addr(),
		opts:    opts.withDefaults(),
		exports: make(map[string]*export),
		pending: make(map[string]chan *wireMsg),
		proxies: make(map[string]*Proxy),
		done:    make(chan struct{}),
	}
	tr.SetHandler(r.onMessage)
	r.lc.Add(1)
	go r.gcLoop()
	return r
}

// Addr returns the runtime's transport address.
func (r *Runtime) Addr() string { return r.self }

// Close shuts the runtime down.
func (r *Runtime) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	r.mu.Unlock()
	r.lc.Wait()
	return nil
}

// --- server side ---

// Bind exports a receiver under a stable name as a collection root: it
// stays exported regardless of references (like an RMI registry entry).
func (r *Runtime) Bind(name string, recv any) error {
	return r.export(name, recv, true)
}

// Export exports a receiver subject to distributed garbage collection:
// it lives while references last (per the configured DGCMode). This is
// what happens implicitly when an object reference is passed out.
func (r *Runtime) Export(name string, recv any) error {
	return r.export(name, recv, false)
}

func (r *Runtime) export(name string, recv any, anchored bool) error {
	if recv == nil {
		return fmt.Errorf("rmi: export %q: nil receiver", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.exports[name]; ok {
		return fmt.Errorf("rmi: export %q: already bound", name)
	}
	r.exports[name] = &export{
		recv:     reflect.ValueOf(recv),
		anchored: anchored,
		refs:     make(map[string]time.Time),
	}
	return nil
}

// Unbind removes an export explicitly.
func (r *Runtime) Unbind(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.exports, name)
}

// Exported reports whether name is currently exported (test aid for
// the DGC experiments).
func (r *Runtime) Exported(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.exports[name]
	return ok
}

// RefTo returns a serializable reference to an export of this runtime.
func (r *Runtime) RefTo(name string) Ref {
	return Ref{Addr: r.self, Name: name}
}

// gcLoop retires unreferenced non-anchored exports.
func (r *Runtime) gcLoop() {
	defer r.lc.Done()
	tick := time.NewTicker(r.opts.LeaseDuration / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		r.mu.Lock()
		for name, ex := range r.exports {
			if ex.anchored {
				continue
			}
			if r.opts.DGC == DGCLeased {
				for client, last := range ex.refs {
					if now.Sub(last) > r.opts.LeaseDuration {
						delete(ex.refs, client)
					}
				}
			}
			// In DGCPinned mode references never expire: a crashed
			// client keeps the object alive forever — the paper's
			// caveat.
			if len(ex.refs) == 0 {
				delete(r.exports, name)
			}
		}
		r.mu.Unlock()
	}
}

// onMessage handles both server requests and client replies.
func (r *Runtime) onMessage(from string, payload []byte) {
	var m wireMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		r.opts.Logger.Warn("rmi: dropping undecodable message",
			"from", from, "bytes", len(payload), "err", err)
		return
	}
	switch m.Kind {
	case kindCall:
		reply := r.handleCall(&m)
		r.send(from, reply)
	case kindResult:
		r.mu.Lock()
		ch, ok := r.pending[m.ReqID]
		delete(r.pending, m.ReqID)
		r.mu.Unlock()
		if ok {
			ch <- &m
		}
	case kindAttach, kindRenew:
		r.mu.Lock()
		if ex, ok := r.exports[m.Target]; ok {
			ex.refs[m.Client] = time.Now()
		}
		r.mu.Unlock()
	case kindRelease:
		r.mu.Lock()
		if ex, ok := r.exports[m.Target]; ok {
			delete(ex.refs, m.Client)
		}
		r.mu.Unlock()
	}
}

// handleCall dispatches an invocation by reflection.
func (r *Runtime) handleCall(m *wireMsg) *wireMsg {
	reply := &wireMsg{Kind: kindResult, ReqID: m.ReqID}
	r.mu.Lock()
	ex, ok := r.exports[m.Target]
	r.mu.Unlock()
	if !ok {
		reply.Err = ErrNoSuchObject.Error() + ": " + m.Target
		return reply
	}
	method := ex.recv.MethodByName(m.Method)
	if !method.IsValid() {
		reply.Err = ErrNoSuchMethod.Error() + ": " + m.Method
		return reply
	}
	mt := method.Type()
	if mt.NumIn() != len(m.Args) {
		reply.Err = fmt.Sprintf("%v: %s takes %d args, got %d", ErrBadArguments, m.Method, mt.NumIn(), len(m.Args))
		return reply
	}
	in := make([]reflect.Value, len(m.Args))
	for i, raw := range m.Args {
		v := reflect.New(mt.In(i))
		if err := gob.NewDecoder(bytes.NewReader(raw)).DecodeValue(v); err != nil {
			reply.Err = fmt.Sprintf("%v: arg %d: %v", ErrBadArguments, i, err)
			return reply
		}
		in[i] = v.Elem()
	}
	out := method.Call(in)

	// A trailing error result travels in Err.
	if n := mt.NumOut(); n > 0 && mt.Out(n-1) == reflect.TypeOf((*error)(nil)).Elem() {
		if errV := out[n-1]; !errV.IsNil() {
			reply.Err = errV.Interface().(error).Error()
		}
		out = out[:n-1]
	}
	for _, v := range out {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).EncodeValue(v); err != nil {
			reply.Err = fmt.Sprintf("rmi: encode result: %v", err)
			return reply
		}
		reply.Results = append(reply.Results, buf.Bytes())
	}
	return reply
}

func (r *Runtime) send(to string, m *wireMsg) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return
	}
	_ = r.tr.Send(to, buf.Bytes())
}

// --- client side ---

// Proxy is a client-side stub for a remote object (the analog of an
// rmic-generated stub). Obtain one with Dial or Resolve.
type Proxy struct {
	rt   *Runtime
	addr string
	name string

	mu       sync.Mutex
	released bool
	stopped  chan struct{}
}

// Dial returns a proxy for the object name exported at addr and
// registers the reference with the server's DGC.
func (r *Runtime) Dial(addr, name string) *Proxy {
	key := addr + "/" + name
	r.mu.Lock()
	if p, ok := r.proxies[key]; ok {
		r.mu.Unlock()
		return p
	}
	p := &Proxy{rt: r, addr: addr, name: name, stopped: make(chan struct{})}
	r.proxies[key] = p
	r.mu.Unlock()

	r.send(addr, &wireMsg{Kind: kindAttach, Target: name, Client: r.self})
	if r.opts.DGC == DGCLeased {
		r.lc.Add(1)
		go p.renewLoop()
	}
	return p
}

// Resolve turns a Ref (e.g. received inside an obvent) into a proxy.
func (r *Runtime) Resolve(ref Ref) *Proxy {
	return r.Dial(ref.Addr, ref.Name)
}

// Call synchronously invokes a remote method. results receives the
// non-error return values gob-decoded into the pointed-to variables:
//
//	var ok bool
//	err := proxy.Call("Buy", []any{"Telco", 80.0}, &ok)
func (p *Proxy) Call(method string, args []any, results ...any) error {
	r := p.rt
	m := &wireMsg{
		Kind:   kindCall,
		ReqID:  codec.NewID(),
		Target: p.name,
		Method: method,
		Client: r.self,
	}
	for i, a := range args {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(a)); err != nil {
			return fmt.Errorf("rmi: encode arg %d: %w", i, err)
		}
		m.Args = append(m.Args, buf.Bytes())
	}

	ch := make(chan *wireMsg, 1)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.pending[m.ReqID] = ch
	r.mu.Unlock()

	r.send(p.addr, m)

	var reply *wireMsg
	select {
	case reply = <-ch:
	case <-time.After(r.opts.CallTimeout):
		r.mu.Lock()
		delete(r.pending, m.ReqID)
		r.mu.Unlock()
		return fmt.Errorf("%w: %s.%s", ErrTimeout, p.name, method)
	}
	if reply.Err != "" {
		return remoteError(reply.Err)
	}
	if len(results) > len(reply.Results) {
		return fmt.Errorf("%w: %d results, want %d", ErrBadArguments, len(reply.Results), len(results))
	}
	for i, out := range results {
		v := reflect.ValueOf(out)
		if v.Kind() != reflect.Pointer || v.IsNil() {
			return fmt.Errorf("rmi: result %d must be a non-nil pointer", i)
		}
		if err := gob.NewDecoder(bytes.NewReader(reply.Results[i])).DecodeValue(v.Elem()); err != nil {
			return fmt.Errorf("rmi: decode result %d: %w", i, err)
		}
	}
	return nil
}

// Release drops the client's reference, letting the server collect the
// object once all references are gone.
func (p *Proxy) Release() {
	p.mu.Lock()
	if p.released {
		p.mu.Unlock()
		return
	}
	p.released = true
	close(p.stopped)
	p.mu.Unlock()

	p.rt.mu.Lock()
	delete(p.rt.proxies, p.addr+"/"+p.name)
	p.rt.mu.Unlock()
	p.rt.send(p.addr, &wireMsg{Kind: kindRelease, Target: p.name, Client: p.rt.self})
}

// renewLoop keeps the lease alive until Release or runtime close.
func (p *Proxy) renewLoop() {
	defer p.rt.lc.Done()
	tick := time.NewTicker(p.rt.opts.RenewInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopped:
			return
		case <-p.rt.done:
			return
		case <-tick.C:
			p.rt.send(p.addr, &wireMsg{Kind: kindRenew, Target: p.name, Client: p.rt.self})
		}
	}
}

// remoteError maps a wire error string back to a sentinel when
// possible, so errors.Is works across the wire.
func remoteError(s string) error {
	for _, sentinel := range []error{ErrNoSuchObject, ErrNoSuchMethod, ErrBadArguments} {
		if strings.HasPrefix(s, sentinel.Error()) {
			return fmt.Errorf("%w%s", sentinel, strings.TrimPrefix(s, sentinel.Error()))
		}
	}
	return errors.New(s)
}
