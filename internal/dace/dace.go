// Package dace implements the Distributed Asynchronous Computing
// Environment of the paper's §4.2: the distributed dissemination
// substrate beneath the publish/subscribe engine.
//
// Its architecture follows the paper's class-based dissemination:
//
//   - Every obvent class is mapped to a dissemination channel (a
//     "multicast class"), realized as a multicast.Group on a stream
//     named after the class, with the protocol chosen by the class's
//     resolved QoS semantics (besteffort/gossip, reliable, fifo,
//     causal, total-order, certified).
//
//   - The control plane is reflexive: subscription advertisements are
//     themselves obvents, published on a dedicated control channel,
//     "allowing distributed processes to learn about other, possibly
//     new, multicast classes". Advertisements are versioned and come in
//     two forms: idempotent full snapshots and deltas (add/remove per
//     subscription ID) reconciled by per-node sequence numbers.
//
//   - Remote filters travel in the advertisements; with publisher-side
//     filter placement, a publishing node evaluates the filters of each
//     destination before spending network bandwidth on it (paper §2.3.2
//     and §3.3.3: filters are applied "at a more favourable stage
//     (e.g., a remote host) to reduce network load").
//
// The advertisement stream feeds the node's routing plane (package
// routing), which compiles it into per-class compound matchers whose
// match IDs are destination nodes:
//
//	control channel (subscription ads: snapshots + deltas)
//	        │ onControl (decode outside locks)
//	        ▼
//	routing.Table ── per-node snapshots, seq-reconciled
//	        │ compiled lazily per published class
//	        ▼
//	classPlan: always-match nodes + one matching.Compound
//	        │ one evaluation per published event
//	        ▼
//	destination fan-out: BroadcastTo(prunedNodes, payload)
//
// so publishing an unordered event costs one indexed compound
// evaluation total instead of one filter interpretation per remote
// subscription.
//
// Ordered and gossip classes are interest-aware too (unless
// Config.NoOrderedPruning): FIFO and Causal publishers split data
// frames to interested nodes and let the multicast layer heal the
// sequence holes of the rest with skip markers; Total publications
// still route to the sequencer, which filters after stamping so the
// global sequence stays gap-free; gossip biases rumor fanout toward
// interested peers with a random-edge floor for anti-entropy. All
// pruning fails open — an unevaluable event is shipped to every
// candidate, each subscriber's local pass deciding — so delivery
// contracts are preserved and only bandwidth changes. Certified
// classes already address their durable subscribers explicitly.
package dace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"govents/internal/codec"
	"govents/internal/core"
	"govents/internal/durable"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/routing"
	"govents/internal/store"
	"govents/internal/telemetry"
)

// Placement selects where remote filters are evaluated.
type Placement int

const (
	// AtSubscriber ships every matching-typed obvent to the
	// subscriber's node, which filters locally (the unoptimized
	// baseline).
	AtSubscriber Placement = iota + 1
	// AtPublisher evaluates migrated filters at the publishing node
	// and sends only to nodes with at least one passing subscription,
	// saving bandwidth (paper §2.3.2). Unordered classes prune per
	// message; ordered and gossip classes prune through the
	// interest-aware multicast protocols (see Config.NoOrderedPruning);
	// certified classes address durable subscribers explicitly.
	AtPublisher
)

// Config tunes a Node.
type Config struct {
	// Placement selects filter placement (default AtSubscriber).
	Placement Placement
	// GossipUnreliable routes unreliable classes through the gossip
	// protocol instead of plain best-effort fanout.
	GossipUnreliable bool
	// Multicast tunes the protocol timers.
	Multicast multicast.Options
	// CertLog is the publisher-side durable outbox for certified
	// classes (default: in-memory).
	CertLog store.Log
	// CertDedup is the subscriber-side durable delivered-set for
	// certified classes (default: in-memory).
	CertDedup store.Set
	// Durable, when set, replaces CertLog/CertDedup with per-class
	// crash-recoverable state: each certified class gets its own
	// segment-log outbox, and incoming certified events are staged in a
	// per-class inbox BEFORE they are acknowledged to the publisher, so
	// delivery state survives crash-restart, not just disconnect.
	Durable *durable.Manager
	// DurableID is this node's default durable identity for certified
	// subscriptions activated without one.
	DurableID string
	// AdTTL enables ad-stream GC: the node re-advertises its
	// subscription state as a liveness heartbeat (several times per
	// TTL) and drops any peer's routing entries once that peer has
	// been silent for AdTTL, even without a membership change — a dead
	// node must stop being owed events, certified deliveries and
	// routing-table memory. Zero disables both heartbeats and expiry.
	// Set it uniformly across the domain: a node with AdTTL unset
	// sends no heartbeats and would be wrongly expired by peers that
	// have it set.
	AdTTL time.Duration
	// NoOrderedPruning disables interest-aware pruning of the ordered
	// (FIFO/Causal/Total) and gossip classes, reverting them to full
	// group broadcasts with subscriber-side filtering. The zero value
	// keeps pruning on: data frames go only to nodes the routing plane
	// marks interested (fail-open — an unevaluable event or unknown
	// node counts as interested) and the rest receive amortized skip
	// markers preserving each class's ordering contract.
	NoOrderedPruning bool
	// LegacyWire makes the node behave as a pre-wire binary: its codec
	// gob-encodes every payload and refuses compact ones, and its
	// advertisements carry the delta-capable but wire-incapable schema
	// version, so peers transcode this node's traffic per destination
	// instead of downgrading the whole domain. Pair it with the
	// engine-side core.WithLegacyWire (the engine encodes publications
	// with its own codec).
	LegacyWire bool
	// Telemetry is the node's telemetry plane, shared with the engine
	// above it so publisher-side stages (publish→route, route→write) and
	// receiver-side stages (wire→lane) land in one place. Nil disables
	// substrate telemetry.
	Telemetry *telemetry.Plane
	// Logger receives substrate diagnostics that have no error-return
	// path (undecodable data frames, rejected advertisements). Default:
	// discard.
	Logger *slog.Logger
}

// Node is a DACE process: it owns the dissemination channels of one
// address space and implements core.Disseminator.
type Node struct {
	mux  *multicast.Mux
	self string
	reg  *obvent.Registry
	cdc  *codec.Codec
	cfg  Config
	tele *telemetry.Plane // Config.Telemetry (nil = disabled)
	log  *slog.Logger     // Config.Logger (never nil; default discard)

	// routes is the routing plane: every node's advertised
	// subscriptions (including our own, under our address) compiled
	// into per-class destination matchers. It has its own internal
	// locking and is never touched under n.mu.
	routes *routing.Table

	mu        sync.Mutex
	peers     []string
	sink      func(*codec.Envelope)
	localSubs []core.SubscriptionInfo
	groups    map[string]multicast.Group
	closed    bool

	// epoch is this process incarnation's boot stamp, carried in every
	// advertisement so peers can tell a restarted node (whose ad
	// sequence restarts at 1) from a stale retransmission of its
	// previous life. See routing.Table.NoteEpoch.
	epoch int64

	adVer        int                              // ad schema version we advertise (adSchemaVersion, capped by LegacyWire)
	adSeq        uint64                           // our advertisement sequence number
	lastAdv      map[string]core.SubscriptionInfo // snapshot described by ad adSeq (delta base)
	adsSinceSnap int                              // deltas sent since the last full snapshot
	peerVer      map[string]int                   // newest ad schema version witnessed per node

	control *multicast.Reliable

	// hbStop ends the ad-TTL heartbeat goroutine (nil when AdTTL is
	// unset); hbWG waits it out on Close.
	hbStop chan struct{}
	hbWG   sync.WaitGroup

	// destBuf pools destination scratch so routing a publication does
	// not allocate per event.
	destBuf sync.Pool
}

var _ core.Disseminator = (*Node)(nil)

// Advertisement schema versions. Ver in a subscriptionAd witnesses the
// newest protocol generation its sender speaks; capabilities are
// cumulative:
//
//   - Version 0 (the zero value, what the oldest nodes encode) knows
//     only full snapshots.
//   - adVerDelta adds delta advertisements. A node sends deltas only
//     once every current peer has been witnessed at >= adVerDelta — a
//     version-0 peer (or one not heard from yet, which might be one)
//     would gob-decode a delta into the old struct, silently drop the
//     unknown fields and misapply it as a full snapshot.
//   - adVerWire adds the compact per-class payload encoding
//     (internal/wire). Publishers send compact payloads only to
//     destinations witnessed at >= adVerWire and transcode to gob for
//     the rest, so a legacy peer downgrades its own traffic, never the
//     whole fleet's.
//   - adVerTelemetry witnesses the telemetry-era envelope schema: the
//     node stamps PubNanos (the publish wall clock) on its publications
//     and times end-to-end latency against stamps it receives. The
//     stamp itself needs no gating — gob omits the zero field on encode
//     and ignores the unknown field on decode, and receivers gate on
//     PubNanos > 0 — so a mixed-version fleet simply records no e2e
//     samples for legacy publishers; the version exists so operators
//     can see which peers contribute e2e data.
const (
	adVerDelta     = 1
	adVerWire      = 2
	adVerTelemetry = 3
	// adSchemaVersion is the newest version this binary speaks — what a
	// node advertises unless Config.LegacyWire caps it at adVerDelta.
	adSchemaVersion = adVerTelemetry
)

// maxAdBytes bounds a control-channel advertisement payload. A frame
// beyond it is rejected before the gob decoder ever sees it (and
// counted via routing.Table.NoteAdRejected): the control plane must not
// let one corrupt or hostile peer allocate unbounded decode state.
const maxAdBytes = 1 << 20

// snapshotEvery bounds how many consecutive delta ads may be sent
// before a full snapshot is forced, so a node that somehow lost the
// chain resynchronizes within a bounded number of changes.
const snapshotEvery = 8

// subscriptionAd is the reflexive control obvent: the paper's
// subscription/unsubscription requests disseminated as obvents (§4.2).
// Two forms travel on the control channel, distinguished by Delta:
//
//   - A full snapshot (Delta false): Subs is the node's complete
//     subscription set at Seq. Idempotent; receivers apply the newest.
//   - A delta (Delta true, Ver >= 1): Subs are additions and Removed
//     are removals relative to the snapshot described by BaseSeq.
//     Receivers apply a delta only on top of exactly BaseSeq and park
//     it otherwise (the reliable control channel does not order).
//
// Advertised filters are canonical filter.Marshal bytes
// (filter.MarshalCanonical), so identical filters of different
// subscribers are byte-identical and deduplicate as routing plan keys.
type subscriptionAd struct {
	obvent.Base
	Node string
	// Seq orders a node's advertisements: receivers apply only newer
	// ones (a late joiner must not be blocked behind ads it never
	// received).
	Seq  uint64
	Subs []core.SubscriptionInfo
	// Ver is the ad schema version (adSchemaVersion); 0 identifies a
	// legacy snapshot-only sender.
	Ver int
	// Delta marks a delta advertisement; BaseSeq is the sequence it
	// applies on top of and Removed the subscription IDs it retires.
	Delta   bool
	BaseSeq uint64
	Removed []string
	// Epoch is the sender's process-incarnation boot stamp. A receiver
	// seeing a higher epoch than recorded for Node forgets the previous
	// incarnation's routing state (its ad sequence died with it); a
	// lower epoch marks a late retransmission from a dead incarnation
	// and the whole ad is dropped. Zero (a legacy sender) disables the
	// check. Gob's unknown-field tolerance makes this a compatible
	// addition — no ad schema version bump needed.
	Epoch int64
}

// NewNode creates a DACE node over a transport endpoint. The registry
// must be shared with the engine created on top (use core.WithRegistry).
func NewNode(tr netsim.Transport, reg *obvent.Registry, cfg Config) *Node {
	if cfg.Placement == 0 {
		cfg.Placement = AtSubscriber
	}
	if cfg.CertLog == nil {
		cfg.CertLog = store.NewMemLog()
	}
	if cfg.CertDedup == nil {
		cfg.CertDedup = store.NewMemSet()
	}
	mux := multicast.NewMux(tr)
	n := &Node{
		mux:     mux,
		self:    mux.Addr(),
		reg:     reg,
		cdc:     codec.New(reg),
		cfg:     cfg,
		routes:  routing.NewTable(reg),
		groups:  make(map[string]multicast.Group),
		lastAdv: make(map[string]core.SubscriptionInfo),
		peerVer: make(map[string]int),
	}
	n.destBuf.New = func() any { return &destScratch{} }
	n.epoch = time.Now().UnixNano()
	n.tele = cfg.Telemetry
	n.log = cfg.Logger
	if n.log == nil {
		n.log = slog.New(slog.DiscardHandler)
	}
	if cfg.Multicast.Logger == nil {
		// The multicast groups inherit the node's logger unless the
		// caller wired their own. n.cfg (used by groupLocked for the
		// per-class groups) and the local cfg (used for the control
		// group below) must both see it.
		cfg.Multicast.Logger = n.log
		n.cfg.Multicast.Logger = n.log
	}
	n.adVer = adSchemaVersion
	if cfg.LegacyWire {
		n.adVer = adVerDelta
		n.cdc.SetWireDisabled(true)
	}
	reg.MustRegister(subscriptionAd{})
	n.control = multicast.NewReliable(mux, "dace/ctrl", n.onControl, cfg.Multicast)
	mux.SetFallback(n.onUnknownStream)
	if cfg.AdTTL > 0 {
		n.routes.SetAdTTL(cfg.AdTTL)
		n.hbStop = make(chan struct{})
		n.hbWG.Add(1)
		go n.heartbeatLoop(cfg.AdTTL)
	}
	if cfg.Durable != nil {
		// Recovered certified classes resume retransmission immediately:
		// a restarted publisher owes its durable subscribers the pending
		// outbox backlog even if it never publishes again, so the groups
		// (and their redelivery tickers) must not wait for traffic.
		for _, class := range cfg.Durable.Classes() {
			n.group("cert", class)
		}
	}
	return n
}

// heartbeatLoop re-advertises this node's subscription state several
// times per TTL (so peers never expire a live node) and expires peers
// silent past the TTL. Heartbeat ads that change nothing are applied by
// receivers as liveness refreshes without invalidating compiled plans.
// Expired peers also leave the multicast memberships, so the reliable
// protocols' retransmission loops stop resending to dead destinations.
func (n *Node) heartbeatLoop(ttl time.Duration) {
	defer n.hbWG.Done()
	period := ttl / 3
	if period <= 0 {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-tick.C:
			n.advertise(false)
			if expired := n.routes.ExpireSilent(n.self); len(expired) > 0 {
				n.dropPeers(expired)
			}
		}
	}
}

// dropPeers removes TTL-expired nodes from the domain membership
// without a SetPeers call: a dead node must stop being owed
// retransmissions by every multicast channel, or the reliable
// protocols' outboxes grow (and the network carries resends) forever.
func (n *Node) dropPeers(expired []string) {
	dead := make(map[string]bool, len(expired))
	for _, p := range expired {
		dead[p] = true
	}
	n.mu.Lock()
	kept := n.peers[:0]
	for _, p := range n.peers {
		if !dead[p] {
			kept = append(kept, p)
		}
	}
	n.peers = kept
	for p := range dead {
		delete(n.peerVer, p)
	}
	peers := append([]string(nil), n.peers...)
	groups := n.groupsSnapshotLocked()
	n.mu.Unlock()
	n.control.SetMembers(peers)
	n.setGroupsMembers(groups, peers)
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.self }

// Registry returns the node's obvent type registry.
func (n *Node) Registry() *obvent.Registry { return n.reg }

// SetPeers installs the domain membership (all node addresses,
// including this one) and re-advertises local subscriptions to it.
// Nodes no longer in the membership are dropped from the routing table:
// a departed node must stop being owed events and certified deliveries.
func (n *Node) SetPeers(peers []string) {
	n.mu.Lock()
	n.peers = append([]string(nil), peers...)
	for node := range n.peerVer {
		found := node == n.self
		for _, p := range peers {
			if p == node {
				found = true
				break
			}
		}
		if !found {
			delete(n.peerVer, node)
		}
	}
	groups := n.groupsSnapshotLocked()
	n.mu.Unlock()
	n.routes.RetainNodes(append([]string{n.self}, peers...))
	n.control.SetMembers(peers)
	n.setGroupsMembers(groups, peers)
	// Full snapshot: a joiner gaining membership has no delta base.
	n.advertise(true)
}

// groupsSnapshotLocked snapshots the live groups with their streams.
func (n *Node) groupsSnapshotLocked() map[string]multicast.Group {
	groups := make(map[string]multicast.Group, len(n.groups))
	for stream, g := range n.groups {
		groups[stream] = g
	}
	return groups
}

// setGroupsMembers pushes a membership change to every group. Certified
// groups are special-cased: their membership is the set of durable
// subscribers from the routing plane, not the raw peer list — treating
// every peer address as a durable consumer would register phantom
// outbox consumers that never acknowledge, pinning the durable outbox's
// GC frontier at zero forever.
func (n *Node) setGroupsMembers(groups map[string]multicast.Group, peers []string) {
	for stream, g := range groups {
		if c, ok := g.(*multicast.Certified); ok {
			if class := strings.TrimPrefix(stream, "dace/cert/"); class != stream {
				if err := c.SetSubscribers(n.certSubscribersFor(class)); err != nil {
					n.log.Warn("dace: certified membership update failed",
						"stream", stream, "err", err)
				}
				continue
			}
		}
		g.SetMembers(peers)
	}
}

// SetSink implements core.Disseminator.
func (n *Node) SetSink(sink func(*codec.Envelope)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sink = sink
}

// Close implements core.Disseminator.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.hbStop != nil {
		close(n.hbStop)
	}
	groups := make([]multicast.Group, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.mu.Unlock()
	n.hbWG.Wait()
	for _, g := range groups {
		_ = g.Close()
	}
	return n.control.Close()
}

// --- class channels ---

// protoFor maps resolved semantics to a protocol tag.
func (n *Node) protoFor(env *codec.Envelope) string {
	switch {
	case env.Reliability == obvent.CertifiedDelivery:
		return "cert"
	case env.Ordering == obvent.Total:
		return "total"
	case env.Ordering == obvent.Causal:
		return "causal"
	case env.Ordering == obvent.FIFO:
		return "fifo"
	case env.Reliability == obvent.ReliableDelivery:
		return "rel"
	case n.cfg.GossipUnreliable:
		return "gossip"
	default:
		return "be"
	}
}

// streamName builds the per-class channel name — the paper's multicast
// class (§4.2).
func streamName(proto, class string) string {
	return "dace/" + proto + "/" + class
}

// group returns (creating lazily) the channel for a proto/class pair.
func (n *Node) group(proto, class string) multicast.Group {
	stream := streamName(proto, class)
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.groupLocked(proto, class, stream)
}

func (n *Node) groupLocked(proto, class, stream string) multicast.Group {
	if g, ok := n.groups[stream]; ok {
		return g
	}
	deliver := n.onData
	prune := !n.cfg.NoOrderedPruning
	var g multicast.Group
	switch proto {
	case "cert":
		log, dedup := n.cfg.CertLog, n.cfg.CertDedup
		var stager multicast.Stager
		if n.cfg.Durable != nil {
			// Per-class crash-recoverable state replaces the shared
			// in-memory defaults. Failure to open falls back loudly —
			// delivery semantics degrade to disconnect-only recovery,
			// they do not disappear.
			if ob, err := n.cfg.Durable.OutboxFor(class); err != nil {
				n.log.Warn("dace: durable outbox unavailable; using default cert log",
					"class", class, "err", err)
			} else {
				log = ob
			}
			if ib, err := n.cfg.Durable.InboxFor(class); err != nil {
				n.log.Warn("dace: durable inbox unavailable; using default cert dedup",
					"class", class, "err", err)
			} else {
				stager = ib
			}
		}
		c := multicast.NewCertified(n.mux, stream, log, dedup, deliver, n.cfg.Multicast)
		if stager != nil {
			c.SetStager(stager)
		}
		if id := n.durableIDForLocked(class); id != "" {
			c.SetDurableID(id)
		}
		g = c
	case "total":
		t := multicast.NewTotal(n.mux, stream, n.sequencerLocked(), deliver, n.cfg.Multicast)
		if prune {
			t.SetPlanner(n.plannerFor(class))
			t.SetPruneObserver(n.pruneObserver(class))
		}
		g = t
	case "causal":
		c := multicast.NewCausal(n.mux, stream, deliver, n.cfg.Multicast)
		if prune {
			c.SetPruneObserver(n.pruneObserver(class))
		}
		g = c
	case "fifo":
		f := multicast.NewFIFO(n.mux, stream, deliver, n.cfg.Multicast)
		if prune {
			f.SetPruneObserver(n.pruneObserver(class))
		}
		g = f
	case "rel":
		g = multicast.NewReliable(n.mux, stream, deliver, n.cfg.Multicast)
	case "gossip":
		gg := multicast.NewGossip(n.mux, stream, deliver, n.cfg.Multicast)
		if prune {
			gg.SetInterest(n.interestFor(class))
			gg.SetPruneObserver(n.pruneObserver(class))
		}
		g = gg
	default:
		g = multicast.NewBestEffort(n.mux, stream, deliver)
	}
	if c, ok := g.(*multicast.Certified); ok {
		// Certified membership is the durable-subscriber set, never the
		// raw peer list (see setGroupsMembers).
		if err := c.SetSubscribers(n.certSubscribersFor(class)); err != nil {
			n.log.Warn("dace: certified membership update failed",
				"stream", stream, "err", err)
		}
	} else {
		g.SetMembers(n.peers)
	}
	n.groups[stream] = g
	return g
}

// durableIDForLocked resolves the durable identity this node
// acknowledges under for one certified class: the durable ID of the
// first local subscription conforming to the class, else the node-wide
// Config.DurableID, else empty (the group falls back to the node
// address). Callers hold n.mu.
func (n *Node) durableIDForLocked(class string) string {
	for _, info := range n.localSubs {
		if info.DurableID != "" && n.reg.ConformsTo(class, info.TypeName) {
			return info.DurableID
		}
	}
	return n.cfg.DurableID
}

// certifiedGroup returns (creating lazily) the certified group of a
// class.
func (n *Node) certifiedGroup(class string) *multicast.Certified {
	g := n.group("cert", class)
	c, _ := g.(*multicast.Certified)
	return c
}

// PauseCertified parks a certified class's local delivery: incoming
// events keep being staged and acknowledged, but nothing reaches the
// engine until ResumeCertified. Durable subscriptions pause around
// their backlog replay so replay and live delivery never interleave.
func (n *Node) PauseCertified(class string) {
	if c := n.certifiedGroup(class); c != nil {
		c.Pause()
	}
}

// ResumeCertified releases PauseCertified, draining held deliveries in
// arrival order.
func (n *Node) ResumeCertified(class string) {
	if c := n.certifiedGroup(class); c != nil {
		c.Resume()
	}
}

// pruneObserver funnels a group's pruning counters into the routing
// table's per-class stats.
func (n *Node) pruneObserver(class string) multicast.PruneObserver {
	return func(prunedSends, skipFrames uint64) {
		n.routes.NotePrunedSends(class, prunedSends)
		n.routes.NoteSkipFrames(class, skipFrames)
	}
}

// plannerFor builds the sequencer-side interest filter of a total-order
// class: stamped payloads are routed like any publication, split per
// destination encoding capability. Any failure to evaluate reports
// ok=false, failing open to a full broadcast.
func (n *Node) plannerFor(class string) multicast.Planner {
	return func(payload []byte) ([]multicast.Send, bool) {
		env, err := codec.Unmarshal(payload)
		if err != nil || env.Type != class {
			return nil, false
		}
		buf := n.destBuf.Get().(*destScratch)
		dests := n.destinationsFor(env, buf, buf.ids[:0])
		sends, err := n.freshSends(env, payload, dests)
		buf.ids = dests[:0]
		n.destBuf.Put(buf)
		if err != nil {
			return nil, false
		}
		return sends, true
	}
}

// freshSends builds the per-encoding Sends of a planned publication in
// freshly allocated slices (the caller hands them to a multicast layer
// that may use them after this node's scratch is reused). payload must
// be the marshaled form of env, reused verbatim for capable
// destinations.
func (n *Node) freshSends(env *codec.Envelope, payload []byte, dests []string) ([]multicast.Send, error) {
	if len(dests) == 0 {
		return nil, nil
	}
	if env.Enc != codec.EncWire {
		return []multicast.Send{{Dests: append([]string(nil), dests...), Payload: payload}}, nil
	}
	var capable, legacy []string
	n.mu.Lock()
	for _, d := range dests {
		if d == n.self || n.peerVer[d] >= adVerWire {
			capable = append(capable, d)
		} else {
			legacy = append(legacy, d)
		}
	}
	n.mu.Unlock()
	sends := make([]multicast.Send, 0, 2)
	if len(legacy) > 0 {
		genv, err := n.cdc.TranscodeGob(env)
		if err != nil {
			return nil, err
		}
		gp, err := codec.Marshal(genv)
		if err != nil {
			return nil, err
		}
		sends = append(sends, multicast.Send{Dests: legacy, Payload: gp})
	}
	if len(capable) > 0 {
		sends = append(sends, multicast.Send{Dests: capable, Payload: payload})
	}
	return sends, nil
}

// interestFor builds the gossip interest function of a class: the
// routed destination set, freshly allocated. An unevaluable payload
// reports ok=false (uniform fanout).
func (n *Node) interestFor(class string) multicast.Interest {
	return func(payload []byte) ([]string, bool) {
		env, err := codec.Unmarshal(payload)
		if err != nil || env.Type != class {
			return nil, false
		}
		buf := n.destBuf.Get().(*destScratch)
		dests := n.destinationsFor(env, buf, nil)
		n.destBuf.Put(buf)
		return dests, true
	}
}

// sequencerLocked returns the domain's total-order sequencer: the
// lexicographically smallest peer address, on which all correctly
// configured nodes agree.
func (n *Node) sequencerLocked() string {
	if len(n.peers) == 0 {
		return n.self
	}
	seq := n.peers[0]
	for _, p := range n.peers[1:] {
		if p < seq {
			seq = p
		}
	}
	return seq
}

// onUnknownStream lazily creates the group for a class channel the
// first time a frame for it arrives, then re-dispatches the frame.
func (n *Node) onUnknownStream(stream, from string, payload []byte) {
	// Auxiliary streams (the total-order "!ord" request stream) belong
	// to the group of their base stream; creating the base group also
	// registers the auxiliary handler.
	base := strings.TrimSuffix(stream, "!ord")
	parts := strings.SplitN(base, "/", 3)
	if len(parts) != 3 || parts[0] != "dace" {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.groupLocked(parts[1], parts[2], base)
	n.mu.Unlock()
	n.mux.Redeliver(stream, from, payload)
}

// --- publishing ---

// PublishEnvelope implements core.Disseminator. The telemetry plane
// times two publisher-side stages around each protocol branch:
// publish→route (entry until the destination set or outbound frame is
// resolved, closed by markRoute) and route→write (until the multicast
// send hands off to the transport, closed by markWrite).
func (n *Node) PublishEnvelope(env *codec.Envelope) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("dace: node %s closed", n.self)
	}
	n.mu.Unlock()

	var t0 int64
	if n.tele.Enabled() {
		t0 = telemetry.Now()
	}
	proto := n.protoFor(env)
	g := n.group(proto, env.Type)

	switch proto {
	case "cert":
		// Certified classes address durable subscribers explicitly.
		cert := g.(*multicast.Certified)
		if err := cert.SetSubscribers(n.certSubscribersFor(env.Type)); err != nil {
			return err
		}
		payload, err := n.marshalForBroadcast(env)
		if err != nil {
			return err
		}
		t1 := n.markRoute(t0)
		// The envelope ID is the certified event identity end to end:
		// outbox entry, staging inbox record and the engine's delivery
		// acknowledgement all key the same string.
		err = cert.BroadcastWithID(env.ID, payload)
		n.markWrite(t1)
		return err
	case "be", "rel":
		// Unordered classes support per-message destination pruning and
		// per-destination payload encoding.
		tg, canTarget := g.(interface {
			BroadcastTo(dests []string, payload []byte) error
		})
		if !canTarget {
			payload, err := n.marshalForBroadcast(env)
			if err != nil {
				return err
			}
			t1 := n.markRoute(t0)
			err = g.Broadcast(payload)
			n.markWrite(t1)
			return err
		}
		buf := n.destBuf.Get().(*destScratch)
		dests := n.destinationsFor(env, buf, buf.ids[:0])
		t1 := n.markRoute(t0)
		err := n.sendTargeted(tg, env, dests, buf)
		n.markWrite(t1)
		// BroadcastTo copies what it keeps; the scratch can be reused.
		buf.ids = dests[:0]
		n.destBuf.Put(buf)
		return err
	case "fifo", "causal":
		// Interest-aware ordered classes: data frames only to nodes the
		// routing plane marks interested, split per destination encoding
		// capability; the multicast layer heals the sequence holes of
		// the rest with skip markers.
		sp, canSplit := g.(interface {
			BroadcastSplit(sends []multicast.Send) error
		})
		if n.cfg.NoOrderedPruning || !canSplit {
			payload, err := n.marshalForBroadcast(env)
			if err != nil {
				return err
			}
			t1 := n.markRoute(t0)
			err = g.Broadcast(payload)
			n.markWrite(t1)
			return err
		}
		buf := n.destBuf.Get().(*destScratch)
		dests := n.destinationsFor(env, buf, buf.ids[:0])
		t1 := n.markRoute(t0)
		err := n.publishSplit(sp, env, dests, buf)
		n.markWrite(t1)
		// BroadcastSplit copies what it keeps; the scratch can be reused.
		buf.ids = dests[:0]
		n.destBuf.Put(buf)
		return err
	case "total":
		if !n.cfg.NoOrderedPruning {
			// Publications route to the sequencer, which filters after
			// stamping (plannerFor); the publisher only ensures the
			// sequencer itself can decode the payload.
			payload, err := n.marshalForSequencer(env)
			if err != nil {
				return err
			}
			t1 := n.markRoute(t0)
			err = g.Broadcast(payload)
			n.markWrite(t1)
			return err
		}
		payload, err := n.marshalForBroadcast(env)
		if err != nil {
			return err
		}
		t1 := n.markRoute(t0)
		err = g.Broadcast(payload)
		n.markWrite(t1)
		return err
	default:
		// Gossip and unknown classes broadcast whole frames (gossip
		// biases its per-round fanout via interestFor instead; relayed
		// frames must stay decodable by every peer, so a legacy peer
		// still downgrades the frame at the origin).
		payload, err := n.marshalForBroadcast(env)
		if err != nil {
			return err
		}
		t1 := n.markRoute(t0)
		err = g.Broadcast(payload)
		n.markWrite(t1)
		return err
	}
}

// markRoute closes the publish→route span opened at t0 (0 = telemetry
// was off at entry) and opens route→write, returning its start.
func (n *Node) markRoute(t0 int64) int64 {
	if t0 == 0 {
		return 0
	}
	now := telemetry.Now()
	n.tele.Record(uint32(t0), telemetry.StagePublishRoute, now-t0)
	return now
}

// markWrite closes the route→write span opened by markRoute.
func (n *Node) markWrite(t1 int64) {
	if t1 == 0 {
		return
	}
	n.tele.Record(uint32(t1), telemetry.StageRouteWrite, telemetry.Now()-t1)
}

// publishSplit hands an interest-pruned publication to a
// split-broadcasting ordered group, transcoding the payload to gob for
// destinations that have not advertised wire capability — only the
// legacy destinations' traffic downgrades, never the whole frame. An
// empty destination set still publishes (the sequence number must
// advance; every member is healed by skip markers).
func (n *Node) publishSplit(sp interface {
	BroadcastSplit(sends []multicast.Send) error
}, env *codec.Envelope, dests []string, buf *destScratch) error {
	if env.Enc != codec.EncWire {
		payload, err := codec.Marshal(env)
		if err != nil {
			return err
		}
		return sp.BroadcastSplit([]multicast.Send{{Dests: dests, Payload: payload}})
	}
	capable, legacy := n.splitWireDests(dests, buf)
	defer func() {
		buf.capable, buf.legacy = capable[:0], legacy[:0]
	}()
	sends := make([]multicast.Send, 0, 2)
	if len(legacy) > 0 {
		genv, err := n.cdc.TranscodeGob(env)
		if err != nil {
			return err
		}
		payload, err := codec.Marshal(genv)
		if err != nil {
			return err
		}
		sends = append(sends, multicast.Send{Dests: legacy, Payload: payload})
	}
	if len(capable) > 0 {
		payload, err := codec.Marshal(env)
		if err != nil {
			return err
		}
		sends = append(sends, multicast.Send{Dests: capable, Payload: payload})
	}
	return sp.BroadcastSplit(sends)
}

// marshalForSequencer frames env for its trip to the total-order
// sequencer. Only the sequencer must decode it before redistribution
// (plannerFor transcodes for legacy destinations there), so a compact
// payload downgrades only when the sequencer itself is a legacy node.
func (n *Node) marshalForSequencer(env *codec.Envelope) ([]byte, error) {
	if env.Enc == codec.EncWire {
		n.mu.Lock()
		seqr := n.sequencerLocked()
		legacySeqr := seqr != n.self && n.peerVer[seqr] < adVerWire
		n.mu.Unlock()
		if legacySeqr {
			genv, err := n.cdc.TranscodeGob(env)
			if err != nil {
				return nil, err
			}
			return codec.Marshal(genv)
		}
	}
	return codec.Marshal(env)
}

// marshalForBroadcast frames env for a whole-group send. A compact
// payload is transcoded to gob first unless every peer advertised wire
// capability: broadcast protocols deliver one frame to the whole
// membership, so a single legacy peer downgrades that send (but never a
// send on a targeted channel, which splits per destination instead).
func (n *Node) marshalForBroadcast(env *codec.Envelope) ([]byte, error) {
	if env.Enc == codec.EncWire && !n.allPeersWireCapable() {
		var err error
		if env, err = n.cdc.TranscodeGob(env); err != nil {
			return nil, err
		}
	}
	return codec.Marshal(env)
}

// sendTargeted delivers env to dests over a targeted channel,
// transcoding the payload to gob for destinations that have not
// advertised wire capability. The common cases — gob payload, or every
// destination wire-capable — marshal exactly once.
func (n *Node) sendTargeted(tg interface {
	BroadcastTo(dests []string, payload []byte) error
}, env *codec.Envelope, dests []string, buf *destScratch) error {
	if env.Enc != codec.EncWire {
		payload, err := codec.Marshal(env)
		if err != nil {
			return err
		}
		return tg.BroadcastTo(dests, payload)
	}
	capable, legacy := n.splitWireDests(dests, buf)
	defer func() {
		buf.capable, buf.legacy = capable[:0], legacy[:0]
	}()
	if len(legacy) > 0 {
		genv, err := n.cdc.TranscodeGob(env)
		if err != nil {
			return err
		}
		payload, err := codec.Marshal(genv)
		if err != nil {
			return err
		}
		if err := tg.BroadcastTo(legacy, payload); err != nil {
			return err
		}
		if len(capable) == 0 {
			return nil
		}
	}
	payload, err := codec.Marshal(env)
	if err != nil {
		return err
	}
	return tg.BroadcastTo(capable, payload)
}

// splitWireDests partitions dests into wire-capable and legacy
// destinations using the witnessed ad schema versions. The local node
// counts as capable: a compact envelope this node produced is decodable
// by this node's engine.
func (n *Node) splitWireDests(dests []string, buf *destScratch) (capable, legacy []string) {
	capable, legacy = buf.capable[:0], buf.legacy[:0]
	n.mu.Lock()
	for _, d := range dests {
		if d == n.self || n.peerVer[d] >= adVerWire {
			capable = append(capable, d)
		} else {
			legacy = append(legacy, d)
		}
	}
	n.mu.Unlock()
	return capable, legacy
}

// destScratch is the pooled per-publication destination buffer. The two
// closures are created once per scratch and capture the scratch pointer
// (stable for the scratch's lifetime), so routing a publication
// allocates neither closures nor decode state; src is reset after every
// event.
type destScratch struct {
	ids     []string
	capable []string
	legacy  []string
	src     codec.CloneSource
	full    func() (any, error)
	dec     func() any
}

// destinationsFor appends the nodes owed a copy of env: nodes hosting
// at least one active subscription whose type matches, further pruned
// by publisher-side compound-filter evaluation when Placement is
// AtPublisher — one indexed evaluation per event against the class's
// compiled routing plan, not one interpretation per remote
// subscription. A compact payload is evaluated lazily: the plan reads
// only the fields it references straight off the wire bytes and the
// event is materialized only when some referenced path needs a method
// accessor. Gob payloads decode at most once, and only when some
// candidate node actually advertised filters; an undecodable event
// fails open to all candidates (each subscriber's local pass decides).
func (n *Node) destinationsFor(env *codec.Envelope, buf *destScratch, dst []string) []string {
	if n.cfg.Placement != AtPublisher {
		return n.routes.NodesFor(env.Type, dst)
	}
	if err := n.cdc.SourceInto(env, &buf.src); err != nil {
		return n.routes.Destinations(env.Type, nil, dst)
	}
	if wp, payload, ok := buf.src.Wire(); ok {
		if buf.full == nil {
			buf.full = func() (any, error) { return buf.src.Clone() }
		}
		dst = n.routes.DestinationsWire(env.Type, wp, payload, buf.full, dst)
	} else {
		if buf.dec == nil {
			buf.dec = func() any {
				o, err := buf.src.Clone()
				if err != nil {
					return nil
				}
				return o
			}
		}
		dst = n.routes.Destinations(env.Type, buf.dec, dst)
	}
	buf.src = codec.CloneSource{}
	return dst
}

// RoutingStats returns the node's cumulative routing-plane counters
// (advertisement ingestion plus per-event routing, folded over all
// classes).
func (n *Node) RoutingStats() routing.Stats { return n.routes.Stats() }

// RoutingStatsByClass breaks the routing counters out per obvent class.
func (n *Node) RoutingStatsByClass() map[string]routing.Stats { return n.routes.StatsByClass() }

// certSubscribersFor lists the durable subscribers of a certified
// class across the domain.
func (n *Node) certSubscribersFor(class string) []multicast.CertSubscriber {
	var subs []multicast.CertSubscriber
	n.routes.ForEachConforming(class, func(node string, info core.SubscriptionInfo) {
		id := info.DurableID
		if id == "" {
			id = node // fall back to the node address as identity
		}
		subs = append(subs, multicast.CertSubscriber{DurableID: id, Addr: node})
	})
	return subs
}

// onData receives a class-channel payload and hands the envelope to the
// engine. The wire→lane stage spans the envelope decode plus the sink
// call (the sink is Engine.deliver, which returns once the envelope is
// enqueued on its dispatch lane).
func (n *Node) onData(stream string, payload []byte) {
	var t0 int64
	if n.tele.Enabled() {
		t0 = telemetry.Now()
	}
	env, err := codec.Unmarshal(payload)
	if err != nil {
		// An undecodable frame was a silent vanish: make it count and
		// make it loggable.
		n.tele.Drop(telemetry.ReasonDecodeError)
		n.tele.Trace("", "", telemetry.StageWireLane, 0, telemetry.ReasonDecodeError.String())
		n.log.Warn("dace: dropping undecodable data frame",
			"stream", stream, "bytes", len(payload), "err", err)
		return
	}
	n.mu.Lock()
	sink := n.sink
	n.mu.Unlock()
	if sink != nil {
		sink(env)
		if t0 != 0 {
			n.tele.Record(uint32(t0), telemetry.StageWireLane, telemetry.Now()-t0)
		}
	}
}

// --- control plane ---

// SubscriptionChanged implements core.Disseminator.
func (n *Node) SubscriptionChanged(infos []core.SubscriptionInfo) error {
	n.mu.Lock()
	n.localSubs = append([]core.SubscriptionInfo(nil), infos...)
	// Certified groups created before a durable activation must learn
	// the durable identity they now acknowledge under.
	for stream, g := range n.groups {
		c, ok := g.(*multicast.Certified)
		if !ok {
			continue
		}
		class := strings.TrimPrefix(stream, "dace/cert/")
		if class == stream {
			continue
		}
		if id := n.durableIDForLocked(class); id != "" {
			c.SetDurableID(id)
		}
	}
	n.mu.Unlock()
	n.advertise(false)
	return nil
}

// advertise publishes this node's subscription state on the control
// channel — as an obvent, per the reflexive design of §4.2 — and
// mirrors it into the local routing table under our own address. When
// the change against the previously advertised snapshot is small, the
// wire carries a delta (add/remove per subscription ID) instead of the
// full set; a full snapshot is forced by forceSnapshot (membership
// changes, anti-entropy introductions), every snapshotEvery deltas,
// and whenever a legacy (snapshot-only) peer has been witnessed.
//
// Only the sequence bump and diff run under n.mu; gob encoding and the
// control broadcast happen outside every lock.
func (n *Node) advertise(forceSnapshot bool) {
	n.mu.Lock()
	n.adSeq++
	ad := subscriptionAd{Node: n.self, Seq: n.adSeq, Ver: n.adVer, Epoch: n.epoch}
	cur := append([]core.SubscriptionInfo(nil), n.localSubs...)

	var added []core.SubscriptionInfo
	var removed []string
	curByID := make(map[string]core.SubscriptionInfo, len(cur))
	for _, info := range cur {
		curByID[info.ID] = info
		prev, ok := n.lastAdv[info.ID]
		if !ok || !sameInfo(prev, info) {
			added = append(added, info)
		}
	}
	for id := range n.lastAdv {
		if _, ok := curByID[id]; !ok {
			removed = append(removed, id)
		}
	}
	n.lastAdv = curByID

	useDelta := !forceSnapshot && n.allPeersSpeakDeltasLocked() && n.adSeq > 1 &&
		n.adsSinceSnap < snapshotEvery && len(added)+len(removed) < len(cur)
	if useDelta {
		n.adsSinceSnap++
		ad.Delta = true
		ad.BaseSeq = n.adSeq - 1
		ad.Subs = added
		ad.Removed = removed
	} else {
		n.adsSinceSnap = 0
		ad.Subs = cur
	}
	closed := n.closed
	n.mu.Unlock()

	// Our own state enters the routing table directly (the control
	// echo of our broadcast is discarded in onControl).
	n.routes.ApplySnapshot(n.self, ad.Seq, cur)
	if closed {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ad); err != nil {
		return
	}
	_ = n.control.Broadcast(buf.Bytes())
}

// allPeersSpeakDeltasLocked reports whether every current peer has been
// witnessed advertising schema version >= adVerDelta. Until then full
// snapshots are sent: an unheard-from peer might be a legacy node that
// would misread a delta as a snapshot.
func (n *Node) allPeersSpeakDeltasLocked() bool {
	for _, p := range n.peers {
		if p == n.self {
			continue
		}
		if n.peerVer[p] < adVerDelta {
			return false
		}
	}
	return true
}

// allPeersWireCapable reports whether every current peer has been
// witnessed advertising schema version >= adVerWire. Unheard-from peers
// count as incapable: they might be legacy nodes that would fail to
// decode a compact payload.
func (n *Node) allPeersWireCapable() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		if p == n.self {
			continue
		}
		if n.peerVer[p] < adVerWire {
			return false
		}
	}
	return true
}

// sameInfo reports whether two advertised descriptions are identical
// (filters compare by their canonical wire bytes).
func sameInfo(a, b core.SubscriptionInfo) bool {
	return a.ID == b.ID && a.TypeName == b.TypeName && a.DurableID == b.DurableID &&
		a.Certified == b.Certified && bytes.Equal(a.Filter, b.Filter)
}

// onControl processes a subscription advertisement. The gob decode,
// filter parsing and plan bookkeeping all happen outside n.mu — a
// slow, huge or corrupt advertisement must never stall the publish
// path (PublishEnvelope briefly takes n.mu); the routing table has its
// own short-held lock.
func (n *Node) onControl(_ string, payload []byte) {
	if len(payload) > maxAdBytes {
		n.routes.NoteAdRejected()
		n.log.Warn("dace: rejecting oversized advertisement", "bytes", len(payload))
		return // oversized advertisement: refuse before decoding
	}
	var ad subscriptionAd
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ad); err != nil {
		n.routes.NoteAdRejected()
		n.log.Warn("dace: rejecting undecodable advertisement",
			"bytes", len(payload), "err", err)
		return // corrupt advertisement: ignore
	}
	if ad.Node == n.self {
		return // our own broadcast echoed back
	}
	if !n.routes.NoteEpoch(ad.Node, ad.Epoch) {
		n.log.Debug("dace: dropping advertisement from dead incarnation",
			"node", ad.Node, "epoch", ad.Epoch)
		return
	}
	n.mu.Lock()
	if ad.Ver > n.peerVer[ad.Node] {
		n.peerVer[ad.Node] = ad.Ver
	}
	n.mu.Unlock()
	var res routing.ApplyResult
	if ad.Delta {
		res = n.routes.ApplyDelta(ad.Node, ad.Seq, ad.BaseSeq, ad.Subs, ad.Removed)
	} else {
		res = n.routes.ApplySnapshot(ad.Node, ad.Seq, ad.Subs)
	}
	if res.NewNode {
		// Anti-entropy: introduce ourselves to newly seen nodes so a
		// late joiner learns the existing subscription tables. Full
		// snapshot — the joiner has no delta base of ours.
		n.advertise(true)
	}
	if res.Applied {
		// Certified redelivery targets the routing plane's current
		// durable-subscriber view; refresh it here so a subscriber that
		// moved or resubscribed starts receiving its backlog without
		// waiting for the next local publish.
		n.refreshCertSubscribers()
	}
}

// refreshCertSubscribers pushes the routing plane's durable-subscriber
// view into every live certified group.
func (n *Node) refreshCertSubscribers() {
	n.mu.Lock()
	groups := n.groupsSnapshotLocked()
	n.mu.Unlock()
	for stream, g := range groups {
		c, ok := g.(*multicast.Certified)
		if !ok {
			continue
		}
		class := strings.TrimPrefix(stream, "dace/cert/")
		if class == stream {
			continue
		}
		if err := c.SetSubscribers(n.certSubscribersFor(class)); err != nil {
			n.log.Warn("dace: certified membership update failed",
				"stream", stream, "err", err)
		}
	}
}

// RemoteSubscriptionCount reports how many remote subscriptions this
// node currently knows (test and monitoring aid).
func (n *Node) RemoteSubscriptionCount() int {
	return n.routes.SubscriptionCount(n.self)
}
