// Package dace implements the Distributed Asynchronous Computing
// Environment of the paper's §4.2: the distributed dissemination
// substrate beneath the publish/subscribe engine.
//
// Its architecture follows the paper's class-based dissemination:
//
//   - Every obvent class is mapped to a dissemination channel (a
//     "multicast class"), realized as a multicast.Group on a stream
//     named after the class, with the protocol chosen by the class's
//     resolved QoS semantics (besteffort/gossip, reliable, fifo,
//     causal, total-order, certified).
//
//   - The control plane is reflexive: subscription advertisements are
//     themselves obvents, published on a dedicated control channel,
//     "allowing distributed processes to learn about other, possibly
//     new, multicast classes".
//
//   - Remote filters travel in the advertisements; with publisher-side
//     filter placement, a publishing node evaluates the filters of each
//     destination before spending network bandwidth on it (paper §2.3.2
//     and §3.3.3: filters are applied "at a more favourable stage
//     (e.g., a remote host) to reduce network load").
package dace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"

	"govents/internal/codec"
	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/store"
)

// Placement selects where remote filters are evaluated.
type Placement int

const (
	// AtSubscriber ships every matching-typed obvent to the
	// subscriber's node, which filters locally (the unoptimized
	// baseline).
	AtSubscriber Placement = iota + 1
	// AtPublisher evaluates migrated filters at the publishing node
	// and sends only to nodes with at least one passing subscription,
	// saving bandwidth (paper §2.3.2). Applies to unordered classes;
	// ordered and certified classes always ship to all subscriber
	// nodes to keep group membership uniform.
	AtPublisher
)

// Config tunes a Node.
type Config struct {
	// Placement selects filter placement (default AtSubscriber).
	Placement Placement
	// GossipUnreliable routes unreliable classes through the gossip
	// protocol instead of plain best-effort fanout.
	GossipUnreliable bool
	// Multicast tunes the protocol timers.
	Multicast multicast.Options
	// CertLog is the publisher-side durable outbox for certified
	// classes (default: in-memory).
	CertLog store.Log
	// CertDedup is the subscriber-side durable delivered-set for
	// certified classes (default: in-memory).
	CertDedup store.Set
	// DurableID is this node's default durable identity for certified
	// subscriptions activated without one.
	DurableID string
}

// Node is a DACE process: it owns the dissemination channels of one
// address space and implements core.Disseminator.
type Node struct {
	mux  *multicast.Mux
	self string
	reg  *obvent.Registry
	cfg  Config

	mu        sync.Mutex
	peers     []string
	sink      func(*codec.Envelope)
	localSubs []core.SubscriptionInfo
	// remote subscription table: node -> advertised subscriptions.
	remote map[string][]subEntry
	groups map[string]multicast.Group
	seen   map[string]bool // nodes whose ads we have witnessed
	closed bool

	adSeq   uint64            // our advertisement sequence number
	lastAd  map[string]uint64 // newest ad sequence seen per node
	control *multicast.Reliable
}

// subEntry is a deserialized advertised subscription.
type subEntry struct {
	info core.SubscriptionInfo
	expr *filter.Expr // nil when the filter is opaque/local
}

var _ core.Disseminator = (*Node)(nil)

// subscriptionAd is the reflexive control obvent: the paper's
// subscription/unsubscription requests disseminated as obvents
// (§4.2). A full snapshot per node keeps the protocol idempotent.
type subscriptionAd struct {
	obvent.Base
	Node string
	// Seq orders a node's snapshots: receivers apply only the newest
	// (the reliable control channel does not order, and a late joiner
	// must not be blocked behind snapshots it never received).
	Seq  uint64
	Subs []core.SubscriptionInfo
}

// NewNode creates a DACE node over a transport endpoint. The registry
// must be shared with the engine created on top (use core.WithRegistry).
func NewNode(tr netsim.Transport, reg *obvent.Registry, cfg Config) *Node {
	if cfg.Placement == 0 {
		cfg.Placement = AtSubscriber
	}
	if cfg.CertLog == nil {
		cfg.CertLog = store.NewMemLog()
	}
	if cfg.CertDedup == nil {
		cfg.CertDedup = store.NewMemSet()
	}
	mux := multicast.NewMux(tr)
	n := &Node{
		mux:    mux,
		self:   mux.Addr(),
		reg:    reg,
		cfg:    cfg,
		remote: make(map[string][]subEntry),
		groups: make(map[string]multicast.Group),
		seen:   make(map[string]bool),
		lastAd: make(map[string]uint64),
	}
	reg.MustRegister(subscriptionAd{})
	n.control = multicast.NewReliable(mux, "dace/ctrl", n.onControl, cfg.Multicast)
	mux.SetFallback(n.onUnknownStream)
	return n
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.self }

// Registry returns the node's obvent type registry.
func (n *Node) Registry() *obvent.Registry { return n.reg }

// SetPeers installs the domain membership (all node addresses,
// including this one) and re-advertises local subscriptions to it.
func (n *Node) SetPeers(peers []string) {
	n.mu.Lock()
	n.peers = append([]string(nil), peers...)
	groups := make([]multicast.Group, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.mu.Unlock()
	n.control.SetMembers(peers)
	for _, g := range groups {
		g.SetMembers(peers)
	}
	n.advertise()
}

// SetSink implements core.Disseminator.
func (n *Node) SetSink(sink func(*codec.Envelope)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sink = sink
}

// Close implements core.Disseminator.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	groups := make([]multicast.Group, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.mu.Unlock()
	for _, g := range groups {
		_ = g.Close()
	}
	return n.control.Close()
}

// --- class channels ---

// protoFor maps resolved semantics to a protocol tag.
func (n *Node) protoFor(env *codec.Envelope) string {
	switch {
	case env.Reliability == obvent.CertifiedDelivery:
		return "cert"
	case env.Ordering == obvent.Total:
		return "total"
	case env.Ordering == obvent.Causal:
		return "causal"
	case env.Ordering == obvent.FIFO:
		return "fifo"
	case env.Reliability == obvent.ReliableDelivery:
		return "rel"
	case n.cfg.GossipUnreliable:
		return "gossip"
	default:
		return "be"
	}
}

// streamName builds the per-class channel name — the paper's multicast
// class (§4.2).
func streamName(proto, class string) string {
	return "dace/" + proto + "/" + class
}

// group returns (creating lazily) the channel for a proto/class pair.
func (n *Node) group(proto, class string) multicast.Group {
	stream := streamName(proto, class)
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.groupLocked(proto, stream)
}

func (n *Node) groupLocked(proto, stream string) multicast.Group {
	if g, ok := n.groups[stream]; ok {
		return g
	}
	deliver := n.onData
	var g multicast.Group
	switch proto {
	case "cert":
		g = multicast.NewCertified(n.mux, stream, n.cfg.CertLog, n.cfg.CertDedup, deliver, n.cfg.Multicast)
		if c, ok := g.(*multicast.Certified); ok && n.cfg.DurableID != "" {
			c.SetDurableID(n.cfg.DurableID)
		}
	case "total":
		g = multicast.NewTotal(n.mux, stream, n.sequencerLocked(), deliver, n.cfg.Multicast)
	case "causal":
		g = multicast.NewCausal(n.mux, stream, deliver, n.cfg.Multicast)
	case "fifo":
		g = multicast.NewFIFO(n.mux, stream, deliver, n.cfg.Multicast)
	case "rel":
		g = multicast.NewReliable(n.mux, stream, deliver, n.cfg.Multicast)
	case "gossip":
		g = multicast.NewGossip(n.mux, stream, deliver, n.cfg.Multicast)
	default:
		g = multicast.NewBestEffort(n.mux, stream, deliver)
	}
	g.SetMembers(n.peers)
	n.groups[stream] = g
	return g
}

// sequencerLocked returns the domain's total-order sequencer: the
// lexicographically smallest peer address, on which all correctly
// configured nodes agree.
func (n *Node) sequencerLocked() string {
	if len(n.peers) == 0 {
		return n.self
	}
	seq := n.peers[0]
	for _, p := range n.peers[1:] {
		if p < seq {
			seq = p
		}
	}
	return seq
}

// onUnknownStream lazily creates the group for a class channel the
// first time a frame for it arrives, then re-dispatches the frame.
func (n *Node) onUnknownStream(stream, from string, payload []byte) {
	// Auxiliary streams (the total-order "!ord" request stream) belong
	// to the group of their base stream; creating the base group also
	// registers the auxiliary handler.
	base := strings.TrimSuffix(stream, "!ord")
	parts := strings.SplitN(base, "/", 3)
	if len(parts) != 3 || parts[0] != "dace" {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.groupLocked(parts[1], base)
	n.mu.Unlock()
	n.mux.Redeliver(stream, from, payload)
}

// --- publishing ---

// PublishEnvelope implements core.Disseminator.
func (n *Node) PublishEnvelope(env *codec.Envelope) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("dace: node %s closed", n.self)
	}
	n.mu.Unlock()

	payload, err := codec.Marshal(env)
	if err != nil {
		return err
	}
	proto := n.protoFor(env)
	g := n.group(proto, env.Type)

	switch proto {
	case "cert":
		// Certified classes address durable subscribers explicitly.
		cert := g.(*multicast.Certified)
		if err := cert.SetSubscribers(n.certSubscribersFor(env.Type)); err != nil {
			return err
		}
		return cert.Broadcast(payload)
	case "be", "rel":
		// Unordered classes support per-message destination pruning.
		dests := n.destinationsFor(env)
		switch t := g.(type) {
		case *multicast.BestEffort:
			return t.BroadcastTo(dests, payload)
		case *multicast.Reliable:
			return t.BroadcastTo(dests, payload)
		default:
			return g.Broadcast(payload)
		}
	default:
		// Ordered and gossip classes broadcast to the full group;
		// filtering happens subscriber-side to keep membership
		// uniform.
		return g.Broadcast(payload)
	}
}

// destinationsFor computes the nodes owed a copy of env: nodes hosting
// at least one active subscription whose type matches, further pruned
// by publisher-side filter evaluation when Placement is AtPublisher.
func (n *Node) destinationsFor(env *codec.Envelope) []string {
	n.mu.Lock()
	defer n.mu.Unlock()

	var decoded obvent.Obvent
	decodeOnce := func() obvent.Obvent {
		if decoded == nil {
			o, err := codec.New(n.reg).Decode(env)
			if err != nil {
				return nil
			}
			decoded = o
		}
		return decoded
	}

	dests := make(map[string]bool)
	consider := func(node string, e subEntry) {
		if dests[node] {
			return
		}
		if !n.reg.ConformsTo(env.Type, e.info.TypeName) {
			return
		}
		if n.cfg.Placement == AtPublisher && e.expr != nil {
			o := decodeOnce()
			if o != nil {
				ok, err := filter.Evaluate(e.expr, o)
				if err == nil && !ok {
					return // filtered out at the publisher
				}
				// Evaluation errors fail open: the subscriber's
				// local pass decides.
			}
		}
		dests[node] = true
	}

	for _, e := range n.localEntriesLocked() {
		consider(n.self, e)
	}
	for node, entries := range n.remote {
		for _, e := range entries {
			consider(node, e)
		}
	}
	out := make([]string, 0, len(dests))
	for d := range dests {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// certSubscribersFor lists the durable subscribers of a certified
// class across the domain.
func (n *Node) certSubscribersFor(class string) []multicast.CertSubscriber {
	n.mu.Lock()
	defer n.mu.Unlock()
	var subs []multicast.CertSubscriber
	add := func(node string, e subEntry) {
		if !n.reg.ConformsTo(class, e.info.TypeName) {
			return
		}
		id := e.info.DurableID
		if id == "" {
			id = node // fall back to the node address as identity
		}
		subs = append(subs, multicast.CertSubscriber{DurableID: id, Addr: node})
	}
	for _, e := range n.localEntriesLocked() {
		add(n.self, e)
	}
	for node, entries := range n.remote {
		for _, e := range entries {
			add(node, e)
		}
	}
	return subs
}

// onData receives a class-channel payload and hands the envelope to the
// engine.
func (n *Node) onData(_ string, payload []byte) {
	env, err := codec.Unmarshal(payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	sink := n.sink
	n.mu.Unlock()
	if sink != nil {
		sink(env)
	}
}

// --- control plane ---

// SubscriptionChanged implements core.Disseminator.
func (n *Node) SubscriptionChanged(infos []core.SubscriptionInfo) error {
	n.mu.Lock()
	n.localSubs = append([]core.SubscriptionInfo(nil), infos...)
	n.mu.Unlock()
	n.advertise()
	return nil
}

// localEntriesLocked adapts the local subscription snapshot to entries.
func (n *Node) localEntriesLocked() []subEntry {
	out := make([]subEntry, 0, len(n.localSubs))
	for _, info := range n.localSubs {
		out = append(out, toEntry(info))
	}
	return out
}

func toEntry(info core.SubscriptionInfo) subEntry {
	e := subEntry{info: info}
	if len(info.Filter) > 0 {
		if expr, err := filter.Unmarshal(info.Filter); err == nil {
			e.expr = expr
		}
	}
	return e
}

// advertise broadcasts this node's full subscription snapshot on the
// control channel — as an obvent, per the reflexive design of §4.2.
func (n *Node) advertise() {
	n.mu.Lock()
	n.adSeq++
	ad := subscriptionAd{Node: n.self, Seq: n.adSeq, Subs: append([]core.SubscriptionInfo(nil), n.localSubs...)}
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ad); err != nil {
		return
	}
	_ = n.control.Broadcast(buf.Bytes())
}

// onControl processes a subscription advertisement.
func (n *Node) onControl(_ string, payload []byte) {
	var ad subscriptionAd
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ad); err != nil {
		return
	}
	if ad.Node == n.self {
		return // our own broadcast echoed back
	}
	entries := make([]subEntry, 0, len(ad.Subs))
	for _, info := range ad.Subs {
		entries = append(entries, toEntry(info))
	}
	n.mu.Lock()
	if ad.Seq <= n.lastAd[ad.Node] {
		// Stale snapshot overtaken by a newer one: ignore.
		n.mu.Unlock()
		return
	}
	n.lastAd[ad.Node] = ad.Seq
	n.remote[ad.Node] = entries
	isNew := !n.seen[ad.Node]
	n.seen[ad.Node] = true
	n.mu.Unlock()
	if isNew {
		// Anti-entropy: introduce ourselves to newly seen nodes so a
		// late joiner learns the existing subscription tables.
		n.advertise()
	}
}

// RemoteSubscriptionCount reports how many remote subscriptions this
// node currently knows (test and monitoring aid).
func (n *Node) RemoteSubscriptionCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, entries := range n.remote {
		total += len(entries)
	}
	return total
}
