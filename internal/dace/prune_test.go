package dace

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
)

// relPing is plain reliable delivery (no ordering), so its stream maps
// to a *multicast.Reliable whose Outstanding() the TTL-expiry test can
// observe.
type relPing struct {
	obvent.Base
	obvent.ReliableBase
	N int
}

// classLog records deliveries per class at one node.
type classLog struct {
	mu  sync.Mutex
	got map[string][]string
}

func newClassLog() *classLog { return &classLog{got: make(map[string][]string)} }

func (l *classLog) add(class, id string) {
	l.mu.Lock()
	l.got[class] = append(l.got[class], id)
	l.mu.Unlock()
}

func (l *classLog) count(class string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.got[class])
}

func (l *classLog) seq(class string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.got[class]...)
}

// runPruneScenario drives the same workload — three multicast classes,
// sparse subscriptions, a mid-batch partition/heal, and subscription
// churn — and returns each node's per-class delivery log. The caller
// runs it with pruning on and off and uses the unpruned run as the
// oracle.
func runPruneScenario(t *testing.T, pruneOff bool) []*classLog {
	t.Helper()
	net := netsim.New(netsim.Config{MaxLatency: time.Millisecond, Seed: 11})
	defer net.Close()
	cfg := fastCfg()
	cfg.NoOrderedPruning = pruneOff
	nodes := newDomain(t, net, 5, cfg)
	logs := make([]*classLog, len(nodes))
	for i := range logs {
		logs[i] = newClassLog()
	}

	sub := func(i int, class string) {
		t.Helper()
		var s *core.Subscription
		var err error
		switch class {
		case "fifo":
			s, err = core.Subscribe(nodes[i].engine, nil, func(o fifoTick) { logs[i].add("fifo", fmt.Sprintf("f%d", o.N)) })
		case "total":
			s, err = core.Subscribe(nodes[i].engine, nil, func(o orderedTick) { logs[i].add("total", fmt.Sprintf("t%d", o.N)) })
		case "causal":
			s, err = core.Subscribe(nodes[i].engine, nil, func(o causalMsg) { logs[i].add("causal", o.Text) })
		}
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	// Sparse interest: every class has a strict subscriber subset, and
	// node-4 starts uninterested in everything.
	sub(1, "fifo")
	sub(1, "total")
	sub(2, "total")
	sub(2, "causal")
	sub(3, "fifo")
	sub(3, "causal")
	// Publishers must have witnessed all six ads before the batches, so
	// both runs prune against the same routing state.
	waitAds(t, nodes[0].node, 6)
	waitAds(t, nodes[1].node, 4) // node-1's own two are local

	pubFifo := func(from, n int) {
		if err := core.Publish(nodes[from].engine, fifoTick{N: n}); err != nil {
			t.Fatal(err)
		}
	}
	pubTotal := func(from, n int) {
		if err := core.Publish(nodes[from].engine, orderedTick{N: n}); err != nil {
			t.Fatal(err)
		}
	}
	pubCausal := func(from int, text string) {
		if err := core.Publish(nodes[from].engine, causalMsg{Text: text}); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: batches from a non-subscriber origin (node-0) and a
	// subscriber origin (node-1), with node-3 partitioned away for the
	// middle of the FIFO batch — the retransmission and skip machinery
	// must heal it.
	for i := 0; i < 3; i++ {
		pubFifo(0, i)
		pubTotal(0, i)
		pubCausal(0, fmt.Sprintf("c%d", i))
	}
	net.Partition([]string{"node-3"}, []string{"node-0", "node-1", "node-2", "node-4"})
	for i := 3; i < 6; i++ {
		pubFifo(0, i)
		pubTotal(1, 100+i)
		pubCausal(1, fmt.Sprintf("c1-%d", i))
	}
	net.Heal()
	for i := 6; i < 9; i++ {
		pubFifo(0, i)
		pubTotal(0, i)
	}

	// Phase 2: churn — node-4 becomes interested in fifoTick; once the
	// publisher has witnessed the new ad, the remaining batch must reach
	// it too.
	sub(4, "fifo")
	waitAds(t, nodes[0].node, 7)
	for i := 9; i < 12; i++ {
		pubFifo(0, i)
	}

	wantFifo, wantTotal, wantCausal := 12, 9, 6
	defer func() {
		if t.Failed() {
			for i, l := range logs {
				t.Logf("node-%d: fifo=%v total=%v causal=%v", i, l.seq("fifo"), l.seq("total"), l.seq("causal"))
			}
		}
	}()
	// node-4 must deliver the post-churn batch. The pre-churn batch is
	// deterministic only with pruning on (never sent): with pruning off
	// those payloads reach node-4's engine, and whether they beat the
	// phase-2 activation is a race — so only the suffix is asserted and
	// compared across runs (lateFifo).
	hasLate := func(l *classLog) bool {
		got := make(map[string]bool)
		for _, id := range l.seq("fifo") {
			got[id] = true
		}
		return got["f9"] && got["f10"] && got["f11"]
	}
	waitFor(t, 20*time.Second, "scenario deliveries", func() bool {
		return logs[1].count("fifo") == wantFifo &&
			logs[3].count("fifo") == wantFifo &&
			hasLate(logs[4]) &&
			logs[1].count("total") == wantTotal &&
			logs[2].count("total") == wantTotal &&
			logs[2].count("causal") == wantCausal &&
			logs[3].count("causal") == wantCausal
	})
	if !pruneOff && logs[4].count("fifo") != 3 {
		t.Errorf("pruning on: churn node delivered %v, want exactly the post-churn batch", logs[4].seq("fifo"))
	}

	// Pruning saves traffic only when on; the stats pin which mode ran.
	stats := nodes[0].node.RoutingStats()
	if pruneOff && stats.PrunedSends != 0 {
		t.Errorf("pruning off: PrunedSends = %d, want 0", stats.PrunedSends)
	}
	if !pruneOff && stats.PrunedSends == 0 {
		t.Error("pruning on: PrunedSends = 0, want > 0 under sparse interest")
	}
	return logs
}

// perOriginAscending checks that ids sharing a numeric-prefix origin
// band appear in increasing order — the FIFO (and causal's per-origin)
// contract. split classifies an id into (origin, rank).
func perOriginAscending(t *testing.T, node, class string, ids []string, rank func(string) (origin string, n int)) {
	t.Helper()
	lastRank := make(map[string]int)
	for _, id := range ids {
		o, n := rank(id)
		if prev, ok := lastRank[o]; ok && n <= prev {
			t.Errorf("%s %s: per-origin order violated: %v", node, class, ids)
			return
		}
		lastRank[o] = n
	}
}

// commonOrderAgrees checks two nodes delivered their shared events in
// the same relative order.
func commonOrderAgrees(t *testing.T, what string, x, y []string) {
	t.Helper()
	inY := make(map[string]bool, len(y))
	for _, p := range y {
		inY[p] = true
	}
	var common []string
	for _, p := range x {
		if inY[p] {
			common = append(common, p)
		}
	}
	j := 0
	for _, p := range y {
		if j < len(common) && p == common[j] {
			j++
		}
	}
	if j != len(common) {
		t.Errorf("%s: common events ordered differently:\n%v\nvs\n%v", what, x, y)
	}
}

func sorted(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

// TestOrderedPruningEquivalence is the property test for the
// interest-aware multicast layer: running the identical workload with
// pruning on and off must produce the same delivery sets at every node,
// and each run must independently satisfy its class's ordering
// contract — FIFO/causal per-origin order and total-order pairwise
// agreement — under a partition/heal and subscription churn.
func TestOrderedPruningEquivalence(t *testing.T) {
	pruned := runPruneScenario(t, false)
	oracle := runPruneScenario(t, true)

	// node-4's pre-churn fifo deliveries are racy with pruning off (see
	// runPruneScenario); only the deterministic post-churn suffix is
	// compared there.
	lateFifo := func(ids []string) []string {
		var out []string
		for _, id := range ids {
			if id == "f9" || id == "f10" || id == "f11" {
				out = append(out, id)
			}
		}
		return out
	}
	for i := range pruned {
		for _, class := range []string{"fifo", "total", "causal"} {
			pv, ov := pruned[i].seq(class), oracle[i].seq(class)
			if i == 4 && class == "fifo" {
				pv, ov = lateFifo(pv), lateFifo(ov)
			}
			a, b := sorted(pv), sorted(ov)
			if len(a) != len(b) {
				t.Fatalf("node-%d %s: pruned run delivered %d, oracle %d", i, class, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("node-%d %s: delivery sets differ: %v vs %v", i, class, a, b)
				}
			}
		}
	}

	fifoRank := func(id string) (string, int) {
		var n int
		fmt.Sscanf(id, "f%d", &n)
		return "node-0", n // single fifo origin in this scenario
	}
	causalRank := func(id string) (string, int) {
		var n int
		if _, err := fmt.Sscanf(id, "c1-%d", &n); err == nil {
			return "node-1", n
		}
		fmt.Sscanf(id, "c%d", &n)
		return "node-0", n
	}
	for runName, logs := range map[string][]*classLog{"pruned": pruned, "oracle": oracle} {
		for _, i := range []int{1, 3, 4} {
			perOriginAscending(t, fmt.Sprintf("%s node-%d", runName, i), "fifo", logs[i].seq("fifo"), fifoRank)
		}
		for _, i := range []int{2, 3} {
			perOriginAscending(t, fmt.Sprintf("%s node-%d", runName, i), "causal", logs[i].seq("causal"), causalRank)
		}
		commonOrderAgrees(t, runName+" total node-1 vs node-2", logs[1].seq("total"), logs[2].seq("total"))
	}
}

// TestExpiredNodeDropsFromRetransmission pins the dead-node gap fix: a
// crashed node that the ad-TTL expires must also leave the multicast
// membership, so reliable retransmission queues stop owing it frames
// instead of retrying forever.
func TestExpiredNodeDropsFromRetransmission(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	cfg := fastCfg()
	cfg.AdTTL = 200 * time.Millisecond
	nodes := newDomain(t, net, 3, cfg)
	pub, live, doomed := nodes[0], nodes[1], nodes[2]

	var gotLive, gotDoomed int32
	var mu sync.Mutex
	for _, s := range []struct {
		n *testNode
		c *int32
	}{{live, &gotLive}, {doomed, &gotDoomed}} {
		c := s.c
		sub, err := core.Subscribe(s.n.engine, nil, func(p relPing) {
			mu.Lock()
			*c++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = sub.Activate()
	}
	waitAds(t, pub.node, 2)

	if err := core.Publish(pub.engine, relPing{N: 0}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "warm-up delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotLive == 1 && gotDoomed == 1
	})

	// Find the reliable group carrying relPing on the publisher.
	relGroup := func() *multicast.Reliable {
		pub.node.mu.Lock()
		defer pub.node.mu.Unlock()
		for stream, g := range pub.node.groups {
			if r, ok := g.(*multicast.Reliable); ok && stream != "dace/control" {
				return r
			}
		}
		return nil
	}
	waitFor(t, 5*time.Second, "reliable group exists", func() bool { return relGroup() != nil })

	net.Crash(doomed.node.Addr())
	for i := 1; i <= 3; i++ {
		if err := core.Publish(pub.engine, relPing{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	// The crashed destination never acks, so the outbox holds frames
	// for it.
	waitFor(t, 5*time.Second, "outstanding while crashed peer is a member", func() bool {
		return relGroup().Outstanding() > 0
	})

	// After the TTL the silent peer expires, which must propagate into
	// multicast membership and drain the queue.
	waitFor(t, 10*time.Second, "outstanding drained after expiry", func() bool {
		return relGroup().Outstanding() == 0
	})
	if st := pub.node.RoutingStats(); st.NodesExpired == 0 {
		t.Errorf("NodesExpired = 0, want > 0; stats %+v", st)
	}
	mu.Lock()
	liveN := gotLive
	mu.Unlock()
	if liveN != 4 {
		t.Errorf("live subscriber got %d, want 4", liveN)
	}
}
