package dace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/filter"
	"govents/internal/multicast"
	"govents/internal/netsim"
	"govents/internal/obvent"
	"govents/internal/store"
)

// Shared obvent hierarchy (paper Figures 1/2).

type StockObvent struct {
	obvent.Base
	Company string
	Price   float64
	Amount  int
}

func (s StockObvent) GetCompany() string { return s.Company }
func (s StockObvent) GetPrice() float64  { return s.Price }

type StockQuote struct {
	StockObvent
}

type orderedTick struct {
	obvent.Base
	obvent.TotalOrderBase
	N int
}

type fifoTick struct {
	obvent.Base
	obvent.FIFOOrderBase
	N int
}

type causalMsg struct {
	obvent.Base
	obvent.CausalOrderBase
	Text string
}

type certTrade struct {
	obvent.Base
	obvent.CertifiedBase
	N int
}

// testNode bundles a DACE node with its engine.
type testNode struct {
	node   *Node
	engine *core.Engine
}

func registerAll(reg *obvent.Registry) {
	reg.MustRegister(StockObvent{})
	reg.MustRegister(StockQuote{})
	reg.MustRegister(orderedTick{})
	reg.MustRegister(fifoTick{})
	reg.MustRegister(causalMsg{})
	reg.MustRegister(certTrade{})
	reg.MustRegister(relPing{}) // defined in prune_test.go
}

func fastCfg() Config {
	return Config{Multicast: multicast.Options{RetransmitInterval: 5 * time.Millisecond, GossipPeriod: 3 * time.Millisecond}}
}

// newDomain builds n connected nodes with engines over a fresh netsim.
func newDomain(t *testing.T, net *netsim.Network, count int, cfg Config) []*testNode {
	t.Helper()
	nodes := make([]*testNode, count)
	addrs := make([]string, count)
	for i := range nodes {
		addr := fmt.Sprintf("node-%d", i)
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		dn := NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, core.WithRegistry(reg))
		nodes[i] = &testNode{node: dn, engine: eng}
		addrs[i] = addr
	}
	for _, n := range nodes {
		n.node.SetPeers(addrs)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.engine.Close()
		}
	})
	return nodes
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// waitAds waits until node knows at least n remote subscriptions.
func waitAds(t *testing.T, n *Node, want int) {
	t.Helper()
	waitFor(t, 5*time.Second, fmt.Sprintf("%d remote subscriptions at %s", want, n.Addr()),
		func() bool { return n.RemoteSubscriptionCount() >= want })
}

func TestCrossNodeDelivery(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 3, fastCfg())
	pub, subA, subB := nodes[0], nodes[1], nodes[2]

	var gotA, gotB atomic.Int32
	sa, err := core.Subscribe(subA.engine, nil, func(q StockQuote) { gotA.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = sa.Activate()
	sb, err := core.Subscribe(subB.engine, nil, func(q StockQuote) { gotB.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = sb.Activate()
	waitAds(t, pub.node, 2)

	if err := core.Publish(pub.engine, StockQuote{StockObvent{Company: "Telco", Price: 80}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "cross-node delivery", func() bool {
		return gotA.Load() == 1 && gotB.Load() == 1
	})
}

func TestCrossNodeSubtypeMatching(t *testing.T) {
	// Figure 1 across processes: a node subscribing to the base type
	// receives subtype instances published elsewhere.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var got atomic.Int32
	s, err := core.Subscribe(sub.engine, nil, func(o StockObvent) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()
	waitAds(t, pub.node, 1)

	_ = core.Publish(pub.engine, StockQuote{StockObvent{Company: "X"}})
	_ = core.Publish(pub.engine, StockObvent{Company: "Y"})
	waitFor(t, 5*time.Second, "subtype delivery", func() bool { return got.Load() == 2 })
}

func TestRemoteFilterAppliedAtPublisherSavesTraffic(t *testing.T) {
	run := func(placement Placement) int64 {
		net := netsim.New(netsim.Config{})
		defer net.Close()
		cfg := fastCfg()
		cfg.Placement = placement
		nodes := newDomain(t, net, 2, cfg)
		pub, sub := nodes[0], nodes[1]

		var got atomic.Int32
		f := filter.Path("GetPrice").Lt(filter.Float(100))
		s, err := core.Subscribe(sub.engine, f, func(q StockQuote) { got.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
		waitAds(t, pub.node, 1)
		net.Settle()
		net.ResetStats()

		// 100 quotes, only 10 match the filter.
		for i := 0; i < 100; i++ {
			price := 1000.0
			if i%10 == 0 {
				price = 50
			}
			_ = core.Publish(pub.engine, StockQuote{StockObvent{Company: "T", Price: price}})
		}
		waitFor(t, 10*time.Second, "matching deliveries", func() bool { return got.Load() == 10 })
		time.Sleep(20 * time.Millisecond)
		if got.Load() != 10 {
			t.Fatalf("placement %v delivered %d, want 10", placement, got.Load())
		}
		net.Settle()
		sent, _, _, _ := net.Stats()
		return sent
	}

	atSub := run(AtSubscriber)
	atPub := run(AtPublisher)
	// Publisher-side filtering must send far fewer messages (10 data
	// messages + acks instead of 100 + acks).
	if atPub >= atSub/2 {
		t.Errorf("publisher-side filtering sent %d messages vs %d at subscriber; expected a large saving", atPub, atSub)
	}
}

func TestTotalOrderAcrossNodes(t *testing.T) {
	net := netsim.New(netsim.Config{MaxLatency: 2 * time.Millisecond, Seed: 7})
	defer net.Close()
	nodes := newDomain(t, net, 3, fastCfg())

	type rec struct {
		mu  sync.Mutex
		seq []int
	}
	recs := make([]*rec, len(nodes))
	for i, n := range nodes {
		r := &rec{}
		recs[i] = r
		s, err := core.Subscribe(n.engine, nil, func(o orderedTick) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.seq = append(r.seq, o.N)
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	for _, n := range nodes {
		waitAds(t, n.node, 2)
	}

	// Two publishers interleave.
	const per = 10
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = core.Publish(nodes[p].engine, orderedTick{N: p*1000 + i})
			}
		}(p)
	}
	wg.Wait()

	total := 2 * per
	waitFor(t, 15*time.Second, "total-order delivery", func() bool {
		for _, r := range recs {
			r.mu.Lock()
			n := len(r.seq)
			r.mu.Unlock()
			if n != total {
				return false
			}
		}
		return true
	})
	ref := recs[0].seq
	for i, r := range recs[1:] {
		for j := range ref {
			if r.seq[j] != ref[j] {
				t.Fatalf("node %d delivered %v, node 0 delivered %v: total order violated", i+1, r.seq, ref)
			}
		}
	}
}

func TestFIFOOrderAcrossNodes(t *testing.T) {
	net := netsim.New(netsim.Config{LossRate: 0.2, MaxLatency: 2 * time.Millisecond, Seed: 13})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var mu sync.Mutex
	var seq []int
	s, err := core.Subscribe(sub.engine, nil, func(o fifoTick) {
		mu.Lock()
		defer mu.Unlock()
		seq = append(seq, o.N)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()
	waitAds(t, pub.node, 1)

	const msgs = 25
	for i := 0; i < msgs; i++ {
		_ = core.Publish(pub.engine, fifoTick{N: i})
	}
	waitFor(t, 15*time.Second, "fifo delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seq) == msgs
	})
	mu.Lock()
	defer mu.Unlock()
	for i, n := range seq {
		if n != i {
			t.Fatalf("position %d = %d: publisher order violated (%v)", i, n, seq)
		}
	}
}

func TestCausalOrderAcrossNodes(t *testing.T) {
	// a publishes "cause"; b replies "effect" from inside the handler;
	// c must deliver cause before effect.
	net := netsim.New(netsim.Config{MaxLatency: 3 * time.Millisecond, Seed: 3})
	defer net.Close()
	nodes := newDomain(t, net, 3, fastCfg())
	a, b, c := nodes[0], nodes[1], nodes[2]

	sb, err := core.Subscribe(b.engine, nil, func(m causalMsg) {
		if m.Text == "cause" {
			_ = core.Publish(b.engine, causalMsg{Text: "effect"})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sb.Activate()

	var mu sync.Mutex
	var order []string
	sc, err := core.Subscribe(c.engine, nil, func(m causalMsg) {
		mu.Lock()
		defer mu.Unlock()
		order = append(order, m.Text)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sc.Activate()
	// a must know both subscriptions (b's and c's); b must know c's.
	waitAds(t, a.node, 2)
	waitAds(t, b.node, 1)

	_ = core.Publish(a.engine, causalMsg{Text: "cause"})
	waitFor(t, 10*time.Second, "both at c", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "cause" || order[1] != "effect" {
		t.Fatalf("order = %v: causal order violated", order)
	}
}

func TestCertifiedSurvivesSubscriberCrash(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()

	pubLog := store.NewMemLog()
	cfgPub := fastCfg()
	cfgPub.CertLog = pubLog
	cfgSub := fastCfg()
	cfgSub.DurableID = "durable-trader"
	subDedup := store.NewMemSet()
	cfgSub.CertDedup = subDedup

	// Build the two nodes with distinct configs.
	epPub, _ := net.NewEndpoint("pub")
	regPub := obvent.NewRegistry()
	registerAll(regPub)
	dnPub := NewNode(epPub, regPub, cfgPub)
	engPub := core.NewEngine("pub", dnPub, core.WithRegistry(regPub))
	defer engPub.Close()

	epSub, _ := net.NewEndpoint("sub")
	regSub := obvent.NewRegistry()
	registerAll(regSub)
	dnSub := NewNode(epSub, regSub, cfgSub)
	engSub := core.NewEngine("sub", dnSub, core.WithRegistry(regSub))
	defer engSub.Close()

	peers := []string{"pub", "sub"}
	dnPub.SetPeers(peers)
	dnSub.SetPeers(peers)

	var got atomic.Int32
	s, err := core.Subscribe(engSub, nil, func(tr certTrade) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateDurable("durable-trader"); err != nil {
		t.Fatal(err)
	}
	waitAds(t, dnPub, 1)

	// Normal delivery first.
	_ = core.Publish(engPub, certTrade{N: 1})
	waitFor(t, 5*time.Second, "first certified delivery", func() bool { return got.Load() == 1 })

	// Subscriber crashes; the publisher keeps publishing.
	net.Crash("sub")
	_ = core.Publish(engPub, certTrade{N: 2})
	_ = core.Publish(engPub, certTrade{N: 3})
	time.Sleep(30 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("delivered %d while crashed", got.Load())
	}

	// Subscriber restarts; pending certified obvents are redelivered
	// (its durable identity and dedup set survived on stable storage).
	net.Restart("sub")
	waitFor(t, 10*time.Second, "redelivery after restart", func() bool { return got.Load() == 3 })
	time.Sleep(50 * time.Millisecond)
	if got.Load() != 3 {
		t.Fatalf("delivered %d, want exactly 3 (dedup)", got.Load())
	}
}

func TestLateJoinerLearnsSubscriptions(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	early := nodes[1]

	var got atomic.Int32
	s, err := core.Subscribe(early.engine, nil, func(q StockQuote) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()

	// A third node joins after the subscription was advertised.
	ep, err := net.NewEndpoint("node-late")
	if err != nil {
		t.Fatal(err)
	}
	reg := obvent.NewRegistry()
	registerAll(reg)
	late := NewNode(ep, reg, fastCfg())
	lateEng := core.NewEngine("node-late", late, core.WithRegistry(reg))
	defer lateEng.Close()

	all := []string{"node-0", "node-1", "node-late"}
	late.SetPeers(all)
	nodes[0].node.SetPeers(all)
	nodes[1].node.SetPeers(all)

	// Anti-entropy: the late node must learn node-1's subscription.
	waitAds(t, late, 1)

	_ = core.Publish(lateEng, StockQuote{StockObvent{Company: "late"}})
	waitFor(t, 5*time.Second, "delivery from late publisher", func() bool { return got.Load() == 1 })
}

func TestSpaceDecoupling(t *testing.T) {
	// Participants do not know each other (paper §1.2): the publisher
	// node's engine API never references subscriber addresses.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 4, fastCfg())

	var total atomic.Int32
	for _, n := range nodes[1:] {
		s, err := core.Subscribe(n.engine, nil, func(q StockQuote) { total.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	waitAds(t, nodes[0].node, 3)
	_ = core.Publish(nodes[0].engine, StockQuote{StockObvent{Company: "anon"}})
	waitFor(t, 5*time.Second, "fanout to anonymous subscribers", func() bool { return total.Load() == 3 })
}

func TestUnsubscribeStopsCrossNodeTraffic(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	nodes := newDomain(t, net, 2, fastCfg())
	pub, sub := nodes[0], nodes[1]

	var got atomic.Int32
	s, err := core.Subscribe(sub.engine, nil, func(q StockQuote) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Activate()
	waitAds(t, pub.node, 1)
	_ = core.Publish(pub.engine, StockQuote{})
	waitFor(t, 5*time.Second, "first delivery", func() bool { return got.Load() == 1 })

	if err := s.Deactivate(); err != nil {
		t.Fatal(err)
	}
	// Wait for the unsubscription to reach the publisher.
	waitFor(t, 5*time.Second, "unsubscribe propagated", func() bool {
		return pub.node.RemoteSubscriptionCount() == 0
	})
	net.Settle()
	net.ResetStats()
	_ = core.Publish(pub.engine, StockQuote{})
	net.Settle()
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("delivered %d after unsubscribe", got.Load())
	}
	// With no subscribers anywhere, nothing is put on the wire for
	// best-effort/reliable classes.
	sent, _, _, _ := net.Stats()
	if sent != 0 {
		t.Errorf("%d messages sent with zero subscriptions", sent)
	}
}

func TestGossipUnreliableClasses(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	cfg := fastCfg()
	cfg.GossipUnreliable = true
	cfg.Multicast.GossipFanout = 3
	cfg.Multicast.GossipRounds = 6
	nodes := newDomain(t, net, 8, cfg)

	var total atomic.Int32
	for _, n := range nodes[1:] {
		s, err := core.Subscribe(n.engine, nil, func(q StockQuote) { total.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Activate()
	}
	waitAds(t, nodes[0].node, 7)
	_ = core.Publish(nodes[0].engine, StockQuote{StockObvent{Company: "rumor"}})
	waitFor(t, 10*time.Second, "gossip saturation", func() bool { return total.Load() == 7 })
}
