package dace

import (
	"testing"
	"time"

	"govents/internal/core"
	"govents/internal/netsim"
	"govents/internal/obvent"
)

// TestAdTTLExpiresDeadNodeWithoutMembershipChange pins the ad-stream GC
// end to end: with AdTTL set, a node that dies (closes) without any
// SetPeers update stops pinning routing-table entries at its peers once
// it has been silent past the TTL — while live nodes, kept fresh by
// heartbeats, are never expired.
func TestAdTTLExpiresDeadNodeWithoutMembershipChange(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()

	const ttl = 80 * time.Millisecond
	cfg := fastCfg()
	cfg.AdTTL = ttl

	mk := func(addr string) *testNode {
		ep, err := net.NewEndpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := obvent.NewRegistry()
		registerAll(reg)
		dn := NewNode(ep, reg, cfg)
		eng := core.NewEngine(addr, dn, core.WithRegistry(reg))
		return &testNode{node: dn, engine: eng}
	}
	pub, subA, subB := mk("pub"), mk("sub-a"), mk("sub-b")
	peers := []string{"pub", "sub-a", "sub-b"}
	for _, n := range []*testNode{pub, subA, subB} {
		n.node.SetPeers(peers)
	}
	defer pub.engine.Close()
	defer subB.engine.Close()

	for _, n := range []*testNode{subA, subB} {
		sub, err := core.Subscribe(n.engine, nil, func(q StockQuote) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Activate(); err != nil {
			t.Fatal(err)
		}
	}
	waitAds(t, pub.node, 2)

	// sub-a crashes: no SetPeers update, no farewell ad — it just goes
	// silent.
	net.Crash("sub-a")
	_ = subA.engine.Close()

	// The publisher's routing table drops sub-a's entries after the
	// TTL; sub-b keeps heartbeating and survives.
	waitFor(t, 5*time.Second, "dead node expired from routing table", func() bool {
		return pub.node.RoutingStats().NodesExpired >= 1
	})
	if got := pub.node.RemoteSubscriptionCount(); got != 1 {
		t.Fatalf("remote subs after expiry = %d, want 1", got)
	}

	// Well past several TTLs, the live subscriber is still known.
	time.Sleep(4 * ttl)
	if got := pub.node.RemoteSubscriptionCount(); got != 1 {
		t.Fatalf("live heartbeating subscriber expired: remote subs = %d, want 1", got)
	}
}
